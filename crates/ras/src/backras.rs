//! The BackRAS memory structure (Figure 2) and its per-thread table.

use std::collections::HashMap;

use rnr_isa::Addr;

use crate::ThreadId;

/// One entry of the BackRAS array: a saved RAS image plus the count of saved
/// entries ("the counter is needed to know the number of entries that need to
/// be reloaded later on", §4.3).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BackRasEntry {
    entries: Vec<Addr>,
}

impl BackRasEntry {
    /// An empty entry (freshly created thread: nothing to reload).
    pub fn new() -> BackRasEntry {
        BackRasEntry::default()
    }

    /// Wraps saved RAS contents (bottom first).
    pub fn from_entries(entries: Vec<Addr>) -> BackRasEntry {
        BackRasEntry { entries }
    }

    /// The saved return addresses, bottom first.
    pub fn entries(&self) -> &[Addr] {
        &self.entries
    }

    /// Number of saved entries (the `Cnt` field of Figure 2).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was saved.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes this entry occupies in the hypervisor memory area: the count
    /// word plus one word per saved address. This is the unit of the
    /// Figure 6(b) bandwidth accounting.
    pub fn bytes(&self) -> u64 {
        8 + self.entries.len() as u64 * 8
    }
}

/// The hypervisor-side table of per-thread backed-up RASes.
///
/// The paper stores this as "a hash table mapping a thread's ID ('key') to
/// its BackRAS entry ('value')" in memory inaccessible to the guest (§5.2.1).
/// Entries are removed when the guest kernel kills a thread, so reused thread
/// IDs start from a clean entry (§5.2.2).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BackRasTable {
    map: HashMap<ThreadId, BackRasEntry>,
}

impl BackRasTable {
    /// An empty table.
    pub fn new() -> BackRasTable {
        BackRasTable::default()
    }

    /// Stores `entry` as the backed-up RAS of `tid` (context switch out).
    pub fn save(&mut self, tid: ThreadId, entry: BackRasEntry) {
        self.map.insert(tid, entry);
    }

    /// The backed-up RAS for `tid`, or an empty entry for threads that have
    /// never been switched out (e.g. freshly created).
    pub fn load(&self, tid: ThreadId) -> BackRasEntry {
        self.map.get(&tid).cloned().unwrap_or_default()
    }

    /// True if `tid` has a stored entry.
    pub fn contains(&self, tid: ThreadId) -> bool {
        self.map.contains_key(&tid)
    }

    /// Deletes the entry of a killed thread (§5.2.2), returning it if present.
    pub fn remove(&mut self, tid: ThreadId) -> Option<BackRasEntry> {
        self.map.remove(&tid)
    }

    /// Allocates a clean entry for a newly created thread (§5.2.2).
    pub fn allocate(&mut self, tid: ThreadId) {
        self.map.insert(tid, BackRasEntry::new());
    }

    /// Number of threads tracked.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no threads are tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(thread, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, &BackRasEntry)> {
        self.map.iter().map(|(t, e)| (*t, e))
    }

    /// Total bytes the table occupies (sum of entry sizes).
    pub fn bytes(&self) -> u64 {
        self.map.values().map(BackRasEntry::bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_bytes_include_count_word() {
        assert_eq!(BackRasEntry::new().bytes(), 8);
        assert_eq!(BackRasEntry::from_entries(vec![1, 2, 3]).bytes(), 32);
    }

    #[test]
    fn table_save_load_round_trip() {
        let mut t = BackRasTable::new();
        let tid = ThreadId(7);
        t.save(tid, BackRasEntry::from_entries(vec![0xa, 0xb]));
        assert_eq!(t.load(tid).entries(), &[0xa, 0xb]);
    }

    #[test]
    fn unknown_thread_loads_empty() {
        let t = BackRasTable::new();
        assert!(t.load(ThreadId(99)).is_empty());
    }

    #[test]
    fn kill_then_reuse_id_starts_clean() {
        let mut t = BackRasTable::new();
        let tid = ThreadId(3);
        t.save(tid, BackRasEntry::from_entries(vec![0x1]));
        let removed = t.remove(tid).expect("entry existed");
        assert_eq!(removed.len(), 1);
        // The guest reuses the ID for a brand new thread.
        t.allocate(tid);
        assert!(t.load(tid).is_empty());
        assert!(t.contains(tid));
    }

    #[test]
    fn table_bytes_sums_entries() {
        let mut t = BackRasTable::new();
        t.save(ThreadId(1), BackRasEntry::from_entries(vec![1]));
        t.save(ThreadId(2), BackRasEntry::from_entries(vec![1, 2]));
        assert_eq!(t.bytes(), 16 + 24);
        assert_eq!(t.len(), 2);
    }
}
