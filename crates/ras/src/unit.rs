//! The bounded RAS and the extended RAS unit.

use rnr_isa::Addr;

use crate::{BackRasEntry, RasConfig, RasCounters, Whitelists};

/// A bounded hardware return-address stack.
///
/// Pushing onto a full stack evicts the **oldest** (bottom) entry, like the
/// circular-buffer RASes in real processors; the evicted value is returned so
/// the extended unit can dump it to the hypervisor (§4.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ras {
    entries: Vec<Addr>,
    capacity: usize,
}

impl Ras {
    /// Creates an empty RAS with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Ras {
        assert!(capacity > 0, "RAS capacity must be positive");
        Ras { entries: Vec::with_capacity(capacity), capacity }
    }

    /// Pushes a predicted return target; returns the evicted bottom entry if
    /// the stack was full.
    pub fn push(&mut self, addr: Addr) -> Option<Addr> {
        let evicted = if self.entries.len() == self.capacity { Some(self.entries.remove(0)) } else { None };
        self.entries.push(addr);
        evicted
    }

    /// Pops the top prediction, or `None` on underflow.
    pub fn pop(&mut self) -> Option<Addr> {
        self.entries.pop()
    }

    /// The entry that `pop` would return, without removing it.
    pub fn peek(&self) -> Option<Addr> {
        self.entries.last().copied()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The live entries, bottom first.
    pub fn entries(&self) -> &[Addr] {
        &self.entries
    }

    /// Discards all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Replaces the contents with `entries` (bottom first), truncating from
    /// the bottom if more than `capacity` entries are given.
    pub fn load(&mut self, entries: &[Addr]) {
        self.entries.clear();
        let skip = entries.len().saturating_sub(self.capacity);
        self.entries.extend_from_slice(&entries[skip..]);
    }
}

/// Why a return misprediction was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MispredictKind {
    /// `ret` executed with an empty RAS (deep nesting evicted the entry).
    Underflow,
    /// The popped prediction did not match the actual return target —
    /// benign causes: thread interleaving, imperfect nesting; malicious
    /// cause: a ROP payload.
    TargetMismatch,
    /// A whitelisted non-procedural return went to a non-whitelisted target.
    WhitelistViolation,
}

/// Details of a RAS misprediction; becomes a ROP *alarm* when the recording
/// hardware has alarms enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Mispredict {
    /// PC of the return instruction.
    pub ret_pc: Addr,
    /// The RAS prediction, when one was popped.
    pub predicted: Option<Addr>,
    /// The actual resolved return target (from the software stack).
    pub actual: Addr,
    /// Classification.
    pub kind: MispredictKind,
}

/// Outcome of feeding one call/return event to a [`RasUnit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RasOutcome {
    /// Prediction matched, or a push with free space.
    Hit,
    /// A whitelisted return: RAS untouched, no alarm.
    Whitelisted,
    /// A push evicted this bottom entry; with evict records enabled the
    /// hardware raises a VM exit so the hypervisor can log it (§4.5).
    Evicted(Addr),
    /// A misprediction. Raises an alarm only if the configuration says so.
    Mispredict(Mispredict),
}

/// The RAS hardware unit with the RnR-Safe extensions of §4.
///
/// The unit is driven by the CPU core: [`RasUnit::on_call`] at call
/// instructions and [`RasUnit::on_ret`] at returns. Context switches are
/// driven by the (microcoded) virtualization hardware via
/// [`RasUnit::save_backras`]/[`RasUnit::restore_backras`].
#[derive(Debug, Clone)]
pub struct RasUnit {
    ras: Ras,
    config: RasConfig,
    whitelists: Whitelists,
    counters: RasCounters,
}

impl RasUnit {
    /// Creates a unit with empty whitelists.
    pub fn new(config: RasConfig) -> RasUnit {
        RasUnit {
            ras: Ras::new(config.capacity),
            config,
            whitelists: Whitelists::new(),
            counters: RasCounters::default(),
        }
    }

    /// Programs the whitelist tables (hypervisor-only operation, §5.1).
    pub fn set_whitelists(&mut self, whitelists: Whitelists) {
        self.whitelists = whitelists;
    }

    /// The active whitelists.
    pub fn whitelists(&self) -> &Whitelists {
        &self.whitelists
    }

    /// The configuration this unit was built with.
    pub fn config(&self) -> &RasConfig {
        &self.config
    }

    /// Accumulated event counters.
    pub fn counters(&self) -> &RasCounters {
        &self.counters
    }

    /// Resets the counters (e.g. after workload warm-up).
    pub fn reset_counters(&mut self) {
        self.counters = RasCounters::default();
    }

    /// Direct access to the underlying stack (for checkpointing).
    pub fn ras(&self) -> &Ras {
        &self.ras
    }

    /// Feeds a call instruction: pushes `ret_addr`.
    ///
    /// Returns [`RasOutcome::Evicted`] when the push overflowed and evict
    /// records are enabled; the caller (CPU core) must then raise a VM exit
    /// so the hypervisor can append an `Evict` record to the input log.
    pub fn on_call(&mut self, ret_addr: Addr) -> RasOutcome {
        self.counters.calls += 1;
        match self.ras.push(ret_addr) {
            Some(evicted) => {
                self.counters.evictions += 1;
                if self.config.evict_records_enabled {
                    RasOutcome::Evicted(evicted)
                } else {
                    RasOutcome::Hit
                }
            }
            None => RasOutcome::Hit,
        }
    }

    /// Feeds a return instruction at `ret_pc` whose actual resolved target is
    /// `actual`.
    ///
    /// Implements the §4.4 logic: whitelisted returns do not pop the RAS and
    /// only alarm when the target is not whitelisted; other returns pop and
    /// compare.
    pub fn on_ret(&mut self, ret_pc: Addr, actual: Addr) -> RasOutcome {
        self.counters.rets += 1;
        if self.config.whitelist_enabled && self.whitelists.is_whitelisted_ret(ret_pc) {
            return if self.whitelists.is_whitelisted_target(actual) {
                self.counters.whitelist_hits += 1;
                RasOutcome::Whitelisted
            } else {
                self.counters.whitelist_violations += 1;
                RasOutcome::Mispredict(Mispredict {
                    ret_pc,
                    predicted: None,
                    actual,
                    kind: MispredictKind::WhitelistViolation,
                })
            };
        }
        match self.ras.pop() {
            None => {
                self.counters.underflows += 1;
                RasOutcome::Mispredict(Mispredict {
                    ret_pc,
                    predicted: None,
                    actual,
                    kind: MispredictKind::Underflow,
                })
            }
            Some(pred) if pred == actual => {
                self.counters.hits += 1;
                RasOutcome::Hit
            }
            Some(pred) => {
                self.counters.target_mismatches += 1;
                RasOutcome::Mispredict(Mispredict {
                    ret_pc,
                    predicted: Some(pred),
                    actual,
                    kind: MispredictKind::TargetMismatch,
                })
            }
        }
    }

    /// True when mispredictions should raise alarms (recording platform).
    pub fn alarms_enabled(&self) -> bool {
        self.config.alarms_enabled
    }

    /// Saves the current RAS contents into a [`BackRasEntry`] and clears the
    /// stack, as the microcoded hardware does on a VM exit at a context
    /// switch (Figure 3). Returns `None` when the BackRAS feature is off
    /// (`RecNoRAS` mode): the RAS is left as-is across the switch.
    pub fn save_backras(&mut self) -> Option<BackRasEntry> {
        if !self.config.backras_enabled {
            return None;
        }
        let entry = BackRasEntry::from_entries(self.ras.entries().to_vec());
        self.counters.backras_saves += 1;
        self.counters.backras_saved_bytes += entry.bytes();
        self.ras.clear();
        Some(entry)
    }

    /// Restores the RAS from a thread's [`BackRasEntry`] on the way back into
    /// the guest (Figure 3). No-op when the feature is off.
    pub fn restore_backras(&mut self, entry: &BackRasEntry) {
        if !self.config.backras_enabled {
            return;
        }
        self.counters.backras_restores += 1;
        self.counters.backras_restored_bytes += entry.bytes();
        self.ras.load(entry.entries());
    }

    /// Snapshot of the live stack (bottom first) for checkpoints.
    pub fn snapshot(&self) -> Vec<Addr> {
        self.ras.entries().to_vec()
    }

    /// Restores a snapshot taken with [`RasUnit::snapshot`].
    pub fn restore_snapshot(&mut self, entries: &[Addr]) {
        self.ras.load(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ras_push_pop_lifo() {
        let mut ras = Ras::new(4);
        ras.push(1);
        ras.push(2);
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), Some(1));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_evicts_oldest() {
        let mut ras = Ras::new(2);
        assert_eq!(ras.push(1), None);
        assert_eq!(ras.push(2), None);
        assert_eq!(ras.push(3), Some(1));
        assert_eq!(ras.entries(), &[2, 3]);
    }

    #[test]
    fn ras_load_truncates_bottom() {
        let mut ras = Ras::new(2);
        ras.load(&[1, 2, 3, 4]);
        assert_eq!(ras.entries(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        Ras::new(0);
    }

    #[test]
    fn unit_hit_on_matched_return() {
        let mut u = RasUnit::new(RasConfig::extended(8));
        assert_eq!(u.on_call(0x100), RasOutcome::Hit);
        assert_eq!(u.on_ret(0x200, 0x100), RasOutcome::Hit);
        assert_eq!(u.counters().hits, 1);
    }

    #[test]
    fn unit_underflow_mispredicts() {
        let mut u = RasUnit::new(RasConfig::extended(8));
        match u.on_ret(0x200, 0x300) {
            RasOutcome::Mispredict(m) => {
                assert_eq!(m.kind, MispredictKind::Underflow);
                assert_eq!(m.predicted, None);
                assert_eq!(m.actual, 0x300);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(u.counters().underflows, 1);
    }

    #[test]
    fn unit_target_mismatch_is_rop_signature() {
        let mut u = RasUnit::new(RasConfig::extended(8));
        u.on_call(0x100);
        match u.on_ret(0x200, 0xdead) {
            RasOutcome::Mispredict(m) => {
                assert_eq!(m.kind, MispredictKind::TargetMismatch);
                assert_eq!(m.predicted, Some(0x100));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unit_eviction_reported_only_when_enabled() {
        let mut on = RasUnit::new(RasConfig::extended(1));
        on.on_call(0x10);
        assert_eq!(on.on_call(0x20), RasOutcome::Evicted(0x10));

        let mut off = RasUnit::new(RasConfig::baseline(1));
        off.on_call(0x10);
        assert_eq!(off.on_call(0x20), RasOutcome::Hit);
        assert_eq!(off.counters().evictions, 1);
    }

    #[test]
    fn whitelisted_ret_skips_pop() {
        let mut u = RasUnit::new(RasConfig::extended(8));
        u.set_whitelists(Whitelists::from_addrs([0x900], [0xa00]));
        u.on_call(0x100);
        assert_eq!(u.on_ret(0x900, 0xa00), RasOutcome::Whitelisted);
        // The RAS still holds the pending prediction for the real return.
        assert_eq!(u.on_ret(0x500, 0x100), RasOutcome::Hit);
        assert_eq!(u.counters().whitelist_hits, 1);
    }

    #[test]
    fn whitelisted_ret_to_bad_target_alarms() {
        let mut u = RasUnit::new(RasConfig::extended(8));
        u.set_whitelists(Whitelists::from_addrs([0x900], [0xa00]));
        match u.on_ret(0x900, 0xdead) {
            RasOutcome::Mispredict(m) => assert_eq!(m.kind, MispredictKind::WhitelistViolation),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn whitelist_ignored_when_disabled() {
        let mut u = RasUnit::new(RasConfig::baseline(8));
        u.set_whitelists(Whitelists::from_addrs([0x900], [0xa00]));
        // Baseline config: the whitelisted PC still pops (and underflows).
        match u.on_ret(0x900, 0xa00) {
            RasOutcome::Mispredict(m) => assert_eq!(m.kind, MispredictKind::Underflow),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn backras_save_restore_round_trip() {
        let mut u = RasUnit::new(RasConfig::extended(8));
        u.on_call(0x1);
        u.on_call(0x2);
        let saved = u.save_backras().expect("backras enabled");
        assert_eq!(saved.len(), 2);
        assert!(u.ras().is_empty());
        // Another thread runs...
        u.on_call(0x99);
        u.save_backras();
        // ...and the first thread is switched back in.
        u.restore_backras(&saved);
        assert_eq!(u.on_ret(0x500, 0x2), RasOutcome::Hit);
        assert_eq!(u.on_ret(0x500, 0x1), RasOutcome::Hit);
        assert_eq!(u.counters().backras_saves, 2);
        assert_eq!(u.counters().backras_restores, 1);
        assert_eq!(u.counters().backras_saved_bytes, (2 + 1) * 8 + 2 * 8);
    }

    #[test]
    fn backras_disabled_returns_none_and_keeps_ras() {
        let mut u = RasUnit::new(RasConfig::extended(8).without_backras());
        u.on_call(0x1);
        assert!(u.save_backras().is_none());
        assert_eq!(u.ras().len(), 1);
    }

    #[test]
    fn snapshot_restore() {
        let mut u = RasUnit::new(RasConfig::extended(8));
        u.on_call(0x1);
        u.on_call(0x2);
        let snap = u.snapshot();
        u.on_ret(0x10, 0x2);
        u.restore_snapshot(&snap);
        assert_eq!(u.ras().entries(), &[0x1, 0x2]);
    }
}
