//! The software shadow RAS modeled by the alarm replayer (§4.6.2).

use std::collections::HashMap;

use rnr_isa::Addr;

use crate::{BackRasEntry, BackRasTable, ThreadId, Whitelists};

/// Outcome of feeding a return to the [`ShadowRas`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowOutcome {
    /// The tracked entry matched the actual target. `pruned` counts dead
    /// frames discarded because they were deeper than the returning slot —
    /// residue of an earlier non-local unwind.
    Hit {
        /// Dead deeper frames discarded before the match.
        pruned: usize,
    },
    /// Whitelisted non-procedural return with a legal target.
    Whitelisted,
    /// Whitelisted return to an illegal target — a control-flow hijack.
    WhitelistViolation {
        /// The illegal resolved target.
        actual: Addr,
    },
    /// No tracked entry covers this slot. Benign when the thread's history
    /// is deeper than the state the replayer was initialized with (the
    /// bounded BackRAS from a checkpoint); the alarm replayer cross-checks
    /// evict records to decide.
    Underflow {
        /// The actual resolved target.
        actual: Addr,
    },
    /// The tracked entry for this exact stack slot holds a different
    /// address: the on-stack return address was **overwritten** — the ROP
    /// signature.
    Mismatch {
        /// What the shadow stack tracked for this slot.
        predicted: Addr,
        /// The actual resolved target.
        actual: Addr,
    },
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    ret: Addr,
    /// Guest stack slot holding the return address; `None` for entries
    /// seeded from a checkpoint's BackRAS (slot unknown).
    slot: Option<Addr>,
}

/// An **unbounded, multithreaded** software return-address stack: what the
/// alarm replayer models when it traps every call and return (§4.6.2).
///
/// Each entry pairs the pushed return address with the guest stack slot it
/// was stored at, the classic precise-shadow-stack design: returns that
/// skip frames (longjmp, kernel unwinds) prune the dead deeper entries
/// instead of mispredicting, while an overwritten slot — same position,
/// different value — is unambiguously a hijack.
#[derive(Debug, Clone)]
pub struct ShadowRas {
    stacks: HashMap<ThreadId, Vec<Frame>>,
    current: ThreadId,
    whitelists: Whitelists,
}

impl ShadowRas {
    /// Creates a shadow RAS for a single initial thread.
    pub fn new(initial_thread: ThreadId, whitelists: Whitelists) -> ShadowRas {
        let mut stacks = HashMap::new();
        stacks.insert(initial_thread, Vec::new());
        ShadowRas { stacks, current: initial_thread, whitelists }
    }

    /// Initializes the per-thread stacks from a checkpoint's BackRAS
    /// snapshot ("it reads the checkpoint's BackRAS into a software data
    /// structure that it uses to simulate the RAS", §4.6.2). Seeded entries
    /// carry no slot information.
    pub fn from_backras(
        table: &BackRasTable,
        current: ThreadId,
        current_ras: &[Addr],
        whitelists: Whitelists,
    ) -> ShadowRas {
        let seed =
            |entries: &[Addr]| entries.iter().map(|&ret| Frame { ret, slot: None }).collect::<Vec<_>>();
        let mut stacks: HashMap<ThreadId, Vec<Frame>> =
            table.iter().map(|(tid, e)| (tid, seed(e.entries()))).collect();
        stacks.insert(current, seed(current_ras));
        ShadowRas { stacks, current, whitelists }
    }

    /// The thread whose stack is active.
    pub fn current_thread(&self) -> ThreadId {
        self.current
    }

    /// Switches the active thread (no state is lost — per-thread stacks).
    pub fn context_switch(&mut self, next: ThreadId) {
        self.stacks.entry(next).or_default();
        self.current = next;
    }

    /// Drops a killed thread's stack so a reused ID starts clean.
    pub fn kill_thread(&mut self, tid: ThreadId) {
        self.stacks.remove(&tid);
        if self.current == tid {
            self.stacks.insert(tid, Vec::new());
        }
    }

    /// Seeds a thread's stack, replacing any existing content.
    pub fn seed_thread(&mut self, tid: ThreadId, entry: &BackRasEntry) {
        self.stacks.insert(tid, entry.entries().iter().map(|&ret| Frame { ret, slot: None }).collect());
    }

    /// Depth of the current thread's stack.
    pub fn depth(&self) -> usize {
        self.stacks.get(&self.current).map_or(0, Vec::len)
    }

    /// The top tracked return address (the call site the alarm replayer
    /// reports for attack characterization, §6).
    pub fn top(&self) -> Option<Addr> {
        self.stacks.get(&self.current).and_then(|s| s.last().map(|f| f.ret))
    }

    /// Records a call: `ret_addr` stored at stack slot `slot`.
    pub fn on_call(&mut self, ret_addr: Addr, slot: Addr) {
        self.stacks.entry(self.current).or_default().push(Frame { ret: ret_addr, slot: Some(slot) });
    }

    /// Checks a return at `ret_pc` resolving to `actual`, popped from stack
    /// slot `slot`.
    pub fn on_ret(&mut self, ret_pc: Addr, actual: Addr, slot: Addr) -> ShadowOutcome {
        if self.whitelists.is_whitelisted_ret(ret_pc) {
            return if self.whitelists.is_whitelisted_target(actual) {
                ShadowOutcome::Whitelisted
            } else {
                ShadowOutcome::WhitelistViolation { actual }
            };
        }
        let stack = self.stacks.entry(self.current).or_default();
        // Discard dead frames strictly deeper (lower slot) than the
        // returning one: they were skipped by a non-local unwind.
        let mut pruned = 0;
        while stack.last().is_some_and(|f| f.slot.is_some_and(|s| s < slot)) {
            stack.pop();
            pruned += 1;
        }
        match stack.last().copied() {
            None => ShadowOutcome::Underflow { actual },
            Some(Frame { slot: Some(s), .. }) if s > slot => {
                // Returning from deeper than anything tracked.
                ShadowOutcome::Underflow { actual }
            }
            Some(Frame { ret, .. }) => {
                stack.pop();
                if ret == actual {
                    ShadowOutcome::Hit { pruned }
                } else {
                    ShadowOutcome::Mismatch { predicted: ret, actual }
                }
            }
        }
    }

    /// Handles a return belonging to a known non-local-unwind routine
    /// (`longjmp`): discards every frame at or deeper than `slot` and
    /// reports how many were dropped. This is how "the replayer will be
    /// able to identify setjumps and longjumps easily and fix its software
    /// RAS" (§4.5).
    pub fn on_nesting_ret(&mut self, slot: Addr) -> usize {
        let stack = self.stacks.entry(self.current).or_default();
        let mut pruned = 0;
        while stack.last().is_some_and(|f| f.slot.is_none_or(|s| s <= slot)) {
            // Unknown-slot (seeded) frames deeper than a longjmp target are
            // unknowable; stop at the first one to stay conservative.
            if stack.last().is_some_and(|f| f.slot.is_none()) {
                break;
            }
            stack.pop();
            pruned += 1;
        }
        pruned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SP0: Addr = 0x8000;

    fn shadow() -> ShadowRas {
        ShadowRas::new(ThreadId(1), Whitelists::new())
    }

    #[test]
    fn balanced_calls_hit() {
        let mut s = shadow();
        s.on_call(0x10, SP0 - 8);
        s.on_call(0x20, SP0 - 16);
        assert_eq!(s.on_ret(0x100, 0x20, SP0 - 16), ShadowOutcome::Hit { pruned: 0 });
        assert_eq!(s.on_ret(0x100, 0x10, SP0 - 8), ShadowOutcome::Hit { pruned: 0 });
    }

    #[test]
    fn per_thread_stacks_do_not_interfere() {
        let mut s = shadow();
        s.on_call(0xaa, SP0 - 8);
        s.context_switch(ThreadId(2));
        s.on_call(0xbb, SP0 - 0x4000);
        assert_eq!(s.on_ret(0x1, 0xbb, SP0 - 0x4000), ShadowOutcome::Hit { pruned: 0 });
        s.context_switch(ThreadId(1));
        assert_eq!(s.on_ret(0x1, 0xaa, SP0 - 8), ShadowOutcome::Hit { pruned: 0 });
    }

    #[test]
    fn underflow_reported() {
        let mut s = shadow();
        assert_eq!(s.on_ret(0x1, 0x2, SP0), ShadowOutcome::Underflow { actual: 0x2 });
    }

    #[test]
    fn overwritten_slot_is_a_mismatch() {
        let mut s = shadow();
        s.on_call(0x10, SP0 - 8);
        // Same slot, different value: the ROP signature.
        assert_eq!(
            s.on_ret(0x1, 0xdead, SP0 - 8),
            ShadowOutcome::Mismatch { predicted: 0x10, actual: 0xdead }
        );
    }

    #[test]
    fn unwind_prunes_dead_frames_then_hits() {
        let mut s = shadow();
        s.on_call(0x10, SP0 - 8); // outer frame
        s.on_call(0x20, SP0 - 16); // dead after unwind
        s.on_call(0x30, SP0 - 24); // dead after unwind
                                   // A return at the outer slot (e.g. after an exception unwind): the
                                   // deeper frames are pruned, the outer entry still matches.
        assert_eq!(s.on_ret(0x1, 0x10, SP0 - 8), ShadowOutcome::Hit { pruned: 2 });
    }

    #[test]
    fn returning_deeper_than_tracked_is_underflow() {
        let mut s = shadow();
        s.on_call(0x10, SP0 - 8);
        assert_eq!(s.on_ret(0x1, 0x99, SP0 - 64), ShadowOutcome::Underflow { actual: 0x99 });
        // The tracked frame survives.
        assert_eq!(s.on_ret(0x1, 0x10, SP0 - 8), ShadowOutcome::Hit { pruned: 0 });
    }

    #[test]
    fn whitelist_behaviour() {
        let wl = Whitelists::from_addrs([0x900], [0xa00]);
        let mut s = ShadowRas::new(ThreadId(1), wl);
        s.on_call(0x10, SP0 - 8);
        assert_eq!(s.on_ret(0x900, 0xa00, SP0 - 8), ShadowOutcome::Whitelisted);
        assert_eq!(s.on_ret(0x900, 0xbad, SP0 - 8), ShadowOutcome::WhitelistViolation { actual: 0xbad });
        // Stack untouched by whitelisted returns.
        assert_eq!(s.on_ret(0x1, 0x10, SP0 - 8), ShadowOutcome::Hit { pruned: 0 });
    }

    #[test]
    fn from_backras_seeds_threads_with_unknown_slots() {
        let mut table = BackRasTable::new();
        table.save(ThreadId(2), BackRasEntry::from_entries(vec![0x77]));
        let mut s = ShadowRas::from_backras(&table, ThreadId(1), &[0x11], Whitelists::new());
        // Seeded entries match by value at any slot.
        assert_eq!(s.on_ret(0x1, 0x11, SP0 - 8), ShadowOutcome::Hit { pruned: 0 });
        s.context_switch(ThreadId(2));
        assert_eq!(s.on_ret(0x1, 0x77, SP0 - 0x4000), ShadowOutcome::Hit { pruned: 0 });
    }

    #[test]
    fn seeded_entry_value_mismatch_detected() {
        let mut s = ShadowRas::from_backras(&BackRasTable::new(), ThreadId(1), &[0x11], Whitelists::new());
        assert_eq!(
            s.on_ret(0x1, 0xdead, SP0 - 8),
            ShadowOutcome::Mismatch { predicted: 0x11, actual: 0xdead }
        );
    }

    #[test]
    fn kill_thread_clears_stack() {
        let mut s = shadow();
        s.on_call(0x10, SP0 - 8);
        s.kill_thread(ThreadId(1));
        assert_eq!(s.on_ret(0x1, 0x10, SP0 - 8), ShadowOutcome::Underflow { actual: 0x10 });
    }

    #[test]
    fn nesting_ret_discards_frames_at_and_below_slot() {
        let mut s = shadow();
        s.on_call(0x10, SP0 - 8); // survives (shallower)
        s.on_call(0x20, SP0 - 16); // longjmp-crossed
        s.on_call(0x30, SP0 - 24); // the longjmp call itself
        assert_eq!(s.on_nesting_ret(SP0 - 16), 2);
        assert_eq!(s.depth(), 1);
        assert_eq!(s.on_ret(0x1, 0x10, SP0 - 8), ShadowOutcome::Hit { pruned: 0 });
    }

    #[test]
    fn nesting_ret_stops_at_seeded_frames() {
        let mut s = ShadowRas::from_backras(&BackRasTable::new(), ThreadId(1), &[0x11], Whitelists::new());
        s.on_call(0x20, SP0 - 16);
        assert_eq!(s.on_nesting_ret(SP0 - 8), 1);
        assert_eq!(s.depth(), 1); // the seeded frame survives
    }

    #[test]
    fn top_reports_call_site() {
        let mut s = shadow();
        assert_eq!(s.top(), None);
        s.on_call(0x42, SP0 - 8);
        assert_eq!(s.top(), Some(0x42));
        assert_eq!(s.depth(), 1);
    }
}
