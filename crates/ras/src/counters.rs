//! Event counters kept by the RAS unit (drives Figures 6(b) and 8).

/// Counters accumulated by a [`RasUnit`](crate::RasUnit).
///
/// `backras_saved_bytes`/`backras_restored_bytes` feed the Figure 6(b)
/// "bandwidth to save and restore the RAS at context switches" measurement;
/// the misprediction counters feed Figure 8.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RasCounters {
    /// Call instructions observed (RAS pushes attempted).
    pub calls: u64,
    /// Return instructions observed.
    pub rets: u64,
    /// Returns that popped the correct prediction.
    pub hits: u64,
    /// Returns suppressed by the return whitelist (§4.4).
    pub whitelist_hits: u64,
    /// Mispredictions from an empty RAS (§4.5 underflow).
    pub underflows: u64,
    /// Mispredictions where the popped prediction mismatched the target.
    pub target_mismatches: u64,
    /// Whitelisted returns whose target was *not* in the target whitelist.
    pub whitelist_violations: u64,
    /// Entries evicted due to overflow.
    pub evictions: u64,
    /// BackRAS save operations (context switches out).
    pub backras_saves: u64,
    /// BackRAS restore operations (context switches in).
    pub backras_restores: u64,
    /// Total bytes moved RAS→memory by BackRAS saves.
    pub backras_saved_bytes: u64,
    /// Total bytes moved memory→RAS by BackRAS restores.
    pub backras_restored_bytes: u64,
}

impl RasCounters {
    /// All mispredictions that raise (or would raise) ROP alarms.
    pub fn mispredictions(&self) -> u64 {
        self.underflows + self.target_mismatches + self.whitelist_violations
    }

    /// Total bytes moved by BackRAS traffic in both directions.
    pub fn backras_bytes(&self) -> u64 {
        self.backras_saved_bytes + self.backras_restored_bytes
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &RasCounters) {
        self.calls += other.calls;
        self.rets += other.rets;
        self.hits += other.hits;
        self.whitelist_hits += other.whitelist_hits;
        self.underflows += other.underflows;
        self.target_mismatches += other.target_mismatches;
        self.whitelist_violations += other.whitelist_violations;
        self.evictions += other.evictions;
        self.backras_saves += other.backras_saves;
        self.backras_restores += other.backras_restores;
        self.backras_saved_bytes += other.backras_saved_bytes;
        self.backras_restored_bytes += other.backras_restored_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mispredictions_sum() {
        let c = RasCounters {
            underflows: 2,
            target_mismatches: 3,
            whitelist_violations: 1,
            ..Default::default()
        };
        assert_eq!(c.mispredictions(), 6);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = RasCounters { calls: 1, backras_saved_bytes: 100, ..Default::default() };
        let b = RasCounters {
            calls: 2,
            backras_saved_bytes: 50,
            backras_restored_bytes: 25,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.calls, 3);
        assert_eq!(a.backras_bytes(), 175);
    }
}
