//! Return/target whitelists for non-procedural returns (§4.4).

use rnr_isa::Addr;

/// The two whitelist tables of §4.4.
///
/// * `RetWhitelist` — PCs of return instructions that are *non-procedural*:
///   the kernel pushed the target manually, so the RAS holds no entry and
///   must not be popped. In the paper's Linux this is a **single** return at
///   the end of `context_switch`; the table is sized accordingly small.
/// * `TarWhitelist` — the legal targets of those returns (three well-defined
///   kernel locations: finish a fork, start a kernel thread, resume a task).
///
/// Both tables are written only by the hypervisor (through VMCS fields,
/// §5.1) after it extracts the addresses from the guest kernel binary.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Whitelists {
    ret_pcs: Vec<Addr>,
    targets: Vec<Addr>,
}

impl Whitelists {
    /// An empty pair of tables (nothing whitelisted).
    pub fn new() -> Whitelists {
        Whitelists::default()
    }

    /// Builds the tables from explicit address lists.
    pub fn from_addrs(
        ret_pcs: impl IntoIterator<Item = Addr>,
        targets: impl IntoIterator<Item = Addr>,
    ) -> Whitelists {
        Whitelists { ret_pcs: ret_pcs.into_iter().collect(), targets: targets.into_iter().collect() }
    }

    /// Adds a return-instruction PC to the `RetWhitelist`.
    pub fn add_ret_pc(&mut self, pc: Addr) {
        if !self.ret_pcs.contains(&pc) {
            self.ret_pcs.push(pc);
        }
    }

    /// Adds a legal target PC to the `TarWhitelist`.
    pub fn add_target(&mut self, pc: Addr) {
        if !self.targets.contains(&pc) {
            self.targets.push(pc);
        }
    }

    /// True if `pc` is a whitelisted non-procedural return instruction.
    pub fn is_whitelisted_ret(&self, pc: Addr) -> bool {
        self.ret_pcs.contains(&pc)
    }

    /// True if `pc` is a legal target for a whitelisted return.
    pub fn is_whitelisted_target(&self, pc: Addr) -> bool {
        self.targets.contains(&pc)
    }

    /// Number of entries in the `RetWhitelist`.
    pub fn ret_len(&self) -> usize {
        self.ret_pcs.len()
    }

    /// Number of entries in the `TarWhitelist`.
    pub fn target_len(&self) -> usize {
        self.targets.len()
    }

    /// True if both tables are empty.
    pub fn is_empty(&self) -> bool {
        self.ret_pcs.is_empty() && self.targets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership() {
        let wl = Whitelists::from_addrs([0x100], [0x200, 0x208, 0x210]);
        assert!(wl.is_whitelisted_ret(0x100));
        assert!(!wl.is_whitelisted_ret(0x108));
        assert!(wl.is_whitelisted_target(0x208));
        assert!(!wl.is_whitelisted_target(0x100));
        assert_eq!(wl.ret_len(), 1);
        assert_eq!(wl.target_len(), 3);
    }

    #[test]
    fn add_deduplicates() {
        let mut wl = Whitelists::new();
        wl.add_ret_pc(0x10);
        wl.add_ret_pc(0x10);
        wl.add_target(0x20);
        wl.add_target(0x20);
        assert_eq!(wl.ret_len(), 1);
        assert_eq!(wl.target_len(), 1);
        assert!(!wl.is_empty());
    }

    #[test]
    fn empty_matches_nothing() {
        let wl = Whitelists::new();
        assert!(wl.is_empty());
        assert!(!wl.is_whitelisted_ret(0));
        assert!(!wl.is_whitelisted_target(0));
    }
}
