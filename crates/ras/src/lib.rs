//! # rnr-ras: the Return Address Stack hardware model and its RnR-Safe extensions
//!
//! The paper (RnR-Safe, HPCA 2018) uses the processor's **Return Address
//! Stack** as an imprecise-but-sound ROP detector: every ROP payload is
//! guaranteed to cause RAS mispredictions (no false negatives), but a plain
//! RAS also mispredicts on benign executions. This crate models:
//!
//! * [`Ras`] — the bounded hardware stack (IBM POWER7/8 have 32/64 entries;
//!   the paper simulates 48 by default, see [`RasConfig::DEFAULT_CAPACITY`]).
//! * [`RasUnit`] — the RAS plus the paper's §4 extensions:
//!   * **BackRAS** save/restore at context switches (kills the
//!     *multithreading* false positives, §4.3),
//!   * **return/target whitelists** for the kernel's non-procedural return at
//!     the end of a context switch (§4.4),
//!   * **evict records** when the stack overflows, so RAS *underflow*
//!     mispredictions can later be matched and discarded by the checkpointing
//!     replayer (§4.5).
//! * [`BackRasTable`] — the hypervisor-side array of per-thread backed-up
//!   RASes (Figure 2), with the recycling behaviour of §5.2.2.
//! * [`ShadowRas`] — the *unbounded, multithreaded* software RAS that the
//!   alarm replayer models (§4.6.2).
//! * [`RasAttribution`] — a counterfactual analyzer that classifies every
//!   avoided false alarm as "suppressed by whitelist" or "suppressed by
//!   BackRAS", regenerating the paper's Figure 8.
//!
//! ## Example
//!
//! ```
//! use rnr_ras::{RasConfig, RasUnit, RasOutcome};
//!
//! let mut ras = RasUnit::new(RasConfig::extended(48));
//! ras.on_call(0x1008);                    // call pushes the return address
//! match ras.on_ret(0x2000, 0x1008) {      // ret to the matching target
//!     RasOutcome::Hit => {}
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod backras;
mod config;
mod counters;
mod shadow;
mod unit;
mod whitelist;

pub use attribution::{AttributionReport, RasAttribution};
pub use backras::{BackRasEntry, BackRasTable};
pub use config::RasConfig;
pub use counters::RasCounters;
pub use shadow::{ShadowOutcome, ShadowRas};
pub use unit::{Mispredict, MispredictKind, Ras, RasOutcome, RasUnit};
pub use whitelist::Whitelists;

use std::fmt;

/// Identifier of a guest thread, as read from the guest's `task_struct` by
/// hypervisor introspection (§5.2.1). Guest kernels may reuse IDs after a
/// thread dies (§5.2.2), which [`BackRasTable::remove`] must handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct ThreadId(pub u64);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid{}", self.0)
    }
}
