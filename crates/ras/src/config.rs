//! RAS hardware configuration.

/// Configuration of the [`RasUnit`](crate::RasUnit) hardware.
///
/// The four feature toggles correspond to the paper's design points:
/// a *baseline* RAS ([`RasConfig::baseline`]) reproduces the naive detector
/// with many false positives (§4.2), while the *extended* RAS
/// ([`RasConfig::extended`]) adds the BackRAS, whitelists, and evict records
/// of §§4.3–4.5. The replaying platform runs with `alarms_enabled = false`
/// ("the hardware's ability to trigger ROP alarms is disabled", §4.6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RasConfig {
    /// Number of hardware entries. The paper simulates 48 by default.
    pub capacity: usize,
    /// Save/restore the RAS to the per-thread BackRAS at context switches.
    pub backras_enabled: bool,
    /// Enable the return/target whitelists for non-procedural returns.
    pub whitelist_enabled: bool,
    /// Dump about-to-be-evicted entries (for underflow matching by the CR).
    pub evict_records_enabled: bool,
    /// Raise ROP alarms on mispredictions (disabled on the replay platform).
    pub alarms_enabled: bool,
}

impl RasConfig {
    /// The paper's simulated RAS size ("We simulate a 48-entry RAS by
    /// default", §7.5).
    pub const DEFAULT_CAPACITY: usize = 48;

    /// A plain RAS with no RnR-Safe extensions: the §4.2 basic design.
    pub fn baseline(capacity: usize) -> RasConfig {
        RasConfig {
            capacity,
            backras_enabled: false,
            whitelist_enabled: false,
            evict_records_enabled: false,
            alarms_enabled: true,
        }
    }

    /// The full RnR-Safe RAS: BackRAS + whitelists + evict records.
    pub fn extended(capacity: usize) -> RasConfig {
        RasConfig {
            capacity,
            backras_enabled: true,
            whitelist_enabled: true,
            evict_records_enabled: true,
            alarms_enabled: true,
        }
    }

    /// The configuration used on the replaying platform: same structural
    /// behaviour as `extended`, but mispredictions never raise alarms
    /// (§4.6.1: "replay does not create alarms").
    pub fn replay(capacity: usize) -> RasConfig {
        RasConfig { alarms_enabled: false, ..RasConfig::extended(capacity) }
    }

    /// An extended RAS without BackRAS save/restore — the `RecNoRAS` setup
    /// of Figure 5(a).
    pub fn without_backras(self) -> RasConfig {
        RasConfig { backras_enabled: false, ..self }
    }
}

impl Default for RasConfig {
    /// Defaults to [`RasConfig::extended`] with [`RasConfig::DEFAULT_CAPACITY`].
    fn default() -> RasConfig {
        RasConfig::extended(RasConfig::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = RasConfig::default();
        assert_eq!(c.capacity, 48);
        assert!(c.backras_enabled && c.whitelist_enabled && c.evict_records_enabled);
        assert!(c.alarms_enabled);
    }

    #[test]
    fn baseline_disables_extensions() {
        let c = RasConfig::baseline(32);
        assert!(!c.backras_enabled && !c.whitelist_enabled && !c.evict_records_enabled);
        assert!(c.alarms_enabled);
    }

    #[test]
    fn replay_silences_alarms() {
        let c = RasConfig::replay(48);
        assert!(!c.alarms_enabled);
        assert!(c.backras_enabled);
    }

    #[test]
    fn without_backras_is_rec_noras() {
        let c = RasConfig::extended(48).without_backras();
        assert!(!c.backras_enabled);
        assert!(c.whitelist_enabled);
    }
}
