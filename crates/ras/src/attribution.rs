//! Counterfactual false-alarm attribution (regenerates Figure 8).
//!
//! Figure 8 of the paper breaks kernel false alarms into those *suppressed
//! with the whitelist*, those *suppressed with the BackRAS*, and the few
//! *reported to the replayers*. The hardware only observes the extended RAS,
//! so suppression counts are inherently counterfactual: "how often would a
//! lesser RAS have alarmed here?". [`RasAttribution`] answers this by running
//! a whitelist-only RAS (no BackRAS save/restore) *in lockstep* with the full
//! extended RAS on the same call/return/context-switch stream.

use rnr_isa::Addr;

use crate::{BackRasTable, MispredictKind, RasConfig, RasOutcome, RasUnit, ThreadId, Whitelists};

/// Per-category false-alarm counts for one execution (Figure 8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AttributionReport {
    /// Alarms avoided by the §4.4 return/target whitelists.
    pub whitelist_suppressed: u64,
    /// Alarms avoided by the §4.3 BackRAS save/restore.
    pub backras_suppressed: u64,
    /// Underflow alarms that reached the replayers.
    pub passed_underflow: u64,
    /// Target-mismatch alarms that reached the replayers.
    pub passed_mismatch: u64,
    /// Whitelist-violation alarms that reached the replayers.
    pub passed_violation: u64,
    /// Instructions executed, for per-million normalization.
    pub instructions: u64,
}

impl AttributionReport {
    /// All alarms passed to the replayers (the `FalseAlarm` bar of Figure 8
    /// when the run is benign).
    pub fn passed(&self) -> u64 {
        self.passed_underflow + self.passed_mismatch + self.passed_violation
    }

    /// Normalizes a count to events per million instructions.
    pub fn per_million(&self, count: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            count as f64 * 1.0e6 / self.instructions as f64
        }
    }
}

/// Lockstep analyzer: the full extended RAS plus a whitelist-only
/// counterfactual twin.
///
/// Drive it with the same event stream the hardware sees:
/// [`RasAttribution::on_call`], [`RasAttribution::on_ret`],
/// [`RasAttribution::on_context_switch`], [`RasAttribution::on_thread_exit`].
#[derive(Debug, Clone)]
pub struct RasAttribution {
    /// The real extended RAS (whitelist + BackRAS).
    full: RasUnit,
    /// Counterfactual: whitelist, but RAS persists across context switches.
    no_backras: RasUnit,
    backras: BackRasTable,
    current: ThreadId,
    report: AttributionReport,
}

impl RasAttribution {
    /// Creates an analyzer for a RAS of `capacity` entries with the given
    /// whitelists, starting on thread `initial`.
    pub fn new(capacity: usize, whitelists: Whitelists, initial: ThreadId) -> RasAttribution {
        let mut full = RasUnit::new(RasConfig::extended(capacity));
        full.set_whitelists(whitelists.clone());
        let mut no_backras = RasUnit::new(RasConfig::extended(capacity).without_backras());
        no_backras.set_whitelists(whitelists);
        RasAttribution {
            full,
            no_backras,
            backras: BackRasTable::new(),
            current: initial,
            report: AttributionReport::default(),
        }
    }

    /// The report accumulated so far.
    pub fn report(&self) -> AttributionReport {
        self.report
    }

    /// Adds executed-instruction count (used for per-1M normalization).
    pub fn add_instructions(&mut self, n: u64) {
        self.report.instructions += n;
    }

    /// Feeds a call instruction.
    pub fn on_call(&mut self, ret_addr: Addr) {
        self.full.on_call(ret_addr);
        self.no_backras.on_call(ret_addr);
    }

    /// Feeds a return; classifies any alarm divergence between the twins.
    pub fn on_ret(&mut self, ret_pc: Addr, actual: Addr) {
        let full = self.full.on_ret(ret_pc, actual);
        let counterfactual = self.no_backras.on_ret(ret_pc, actual);
        match full {
            RasOutcome::Whitelisted => {
                // Without the whitelist this non-procedural return would have
                // popped an entry that no call pushed: a guaranteed alarm.
                self.report.whitelist_suppressed += 1;
            }
            RasOutcome::Mispredict(m) => match m.kind {
                MispredictKind::Underflow => self.report.passed_underflow += 1,
                MispredictKind::TargetMismatch => self.report.passed_mismatch += 1,
                MispredictKind::WhitelistViolation => self.report.passed_violation += 1,
            },
            RasOutcome::Hit | RasOutcome::Evicted(_) => {
                if matches!(counterfactual, RasOutcome::Mispredict(_)) {
                    // Only the BackRAS kept this return correct.
                    self.report.backras_suppressed += 1;
                }
            }
        }
    }

    /// Feeds a guest context switch to thread `next`.
    pub fn on_context_switch(&mut self, next: ThreadId) {
        if let Some(saved) = self.full.save_backras() {
            self.backras.save(self.current, saved);
        }
        let entry = self.backras.load(next);
        self.full.restore_backras(&entry);
        self.current = next;
        // The counterfactual twin deliberately does nothing here.
    }

    /// Feeds a thread-exit event (BackRAS entry recycled, §5.2.2).
    pub fn on_thread_exit(&mut self, tid: ThreadId) {
        self.backras.remove(tid);
    }

    /// The thread currently accounted as running.
    pub fn current_thread(&self) -> ThreadId {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CS_RET: Addr = 0x900;
    const CS_TARGET: Addr = 0xa00;

    fn analyzer(cap: usize) -> RasAttribution {
        RasAttribution::new(cap, Whitelists::from_addrs([CS_RET], [CS_TARGET]), ThreadId(1))
    }

    #[test]
    fn clean_nesting_produces_no_alarms() {
        let mut a = analyzer(8);
        a.on_call(0x10);
        a.on_call(0x20);
        a.on_ret(0x1, 0x20);
        a.on_ret(0x1, 0x10);
        let r = a.report();
        assert_eq!(r.passed(), 0);
        assert_eq!(r.whitelist_suppressed + r.backras_suppressed, 0);
    }

    #[test]
    fn whitelisted_return_counts_as_suppressed() {
        let mut a = analyzer(8);
        a.on_ret(CS_RET, CS_TARGET);
        assert_eq!(a.report().whitelist_suppressed, 1);
        assert_eq!(a.report().passed(), 0);
    }

    #[test]
    fn cross_thread_pollution_attributed_to_backras() {
        let mut a = analyzer(8);
        // Thread 1 makes a call, then is switched out.
        a.on_call(0x10);
        // Thread 2 runs and leaves a pending call on the RAS when it is
        // switched out in turn.
        a.on_context_switch(ThreadId(2));
        a.on_call(0x20);
        // Back to thread 1; without BackRAS the RAS top is thread 2's 0x20,
        // so thread 1's return only predicts correctly thanks to BackRAS.
        a.on_context_switch(ThreadId(1));
        a.on_ret(0x1, 0x10);
        let r = a.report();
        assert_eq!(r.passed(), 0);
        assert!(r.backras_suppressed >= 1, "expected BackRAS suppression, got {r:?}");
    }

    #[test]
    fn underflow_passes_to_replayers() {
        let mut a = analyzer(2);
        a.on_call(0x1);
        a.on_call(0x2);
        a.on_call(0x3); // evicts 0x1
        a.on_ret(0x9, 0x3);
        a.on_ret(0x9, 0x2);
        a.on_ret(0x9, 0x1); // underflow
        let r = a.report();
        assert_eq!(r.passed_underflow, 1);
        assert_eq!(r.passed_mismatch, 0);
    }

    #[test]
    fn rop_style_mismatch_passes() {
        let mut a = analyzer(8);
        a.on_call(0x10);
        a.on_ret(0x9, 0xdead);
        assert_eq!(a.report().passed_mismatch, 1);
    }

    #[test]
    fn normalization_per_million() {
        let mut a = analyzer(8);
        a.add_instructions(2_000_000);
        a.on_ret(CS_RET, CS_TARGET);
        let r = a.report();
        assert!((r.per_million(r.whitelist_suppressed) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn thread_exit_recycles_entry() {
        let mut a = analyzer(8);
        a.on_call(0x10);
        a.on_context_switch(ThreadId(2));
        a.on_thread_exit(ThreadId(1));
        a.on_context_switch(ThreadId(1)); // reused ID: clean BackRAS
        a.on_ret(0x9, 0x10); // underflow now, not a stale hit
        assert_eq!(a.report().passed_underflow, 1);
    }
}
