//! # rnr-bench: the evaluation harness
//!
//! One binary per table/figure of the paper's evaluation (§7–§8); each
//! regenerates the corresponding rows/series on the simulator. See
//! DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured
//! results.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table 1 — ROP/JOP/DOS detector examples |
//! | `table2` | Table 2 — system configuration |
//! | `table3` | Table 3 — benchmarks and parameters |
//! | `fig5` | Figure 5 — recording overhead + breakdown |
//! | `fig6` | Figure 6 — log rate and BackRAS bandwidth |
//! | `fig7` | Figure 7 — checkpointing replay overhead + breakdown |
//! | `fig8` | Figure 8 — kernel false alarms (suppressed vs passed) |
//! | `fig9` | Figure 9 — alarm replay slowdown |
//! | `fig10` | Figure 10 / §6 — the mounted kernel ROP attack |
//! | `sec84` | §8.4 — detection window, log size, checkpoints |
//! | `all` | Everything above, writing `experiments.md` |
//!
//! Scale the run length with `RNR_BENCH_INSNS` (default 1,500,000 guest
//! instructions per run).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::Arc;

use rnr_hypervisor::{RecordConfig, RecordMode, RecordOutcome, Recorder};
use rnr_log::Category;
use rnr_machine::CallRetTrap;
use rnr_replay::{ReplayConfig, ReplayOutcome, Replayer, VIRTUAL_HZ};
use rnr_workloads::Workload;

/// Default guest instructions per measured run.
pub const DEFAULT_INSNS: u64 = 1_500_000;

/// The shared seed for all harness runs (results are deterministic).
pub const SEED: u64 = 42;

/// Run length, overridable via `RNR_BENCH_INSNS`.
pub fn run_insns() -> u64 {
    std::env::var("RNR_BENCH_INSNS").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_INSNS)
}

/// Records `workload` in `mode` for the harness run length.
///
/// # Panics
///
/// Panics on recording failures (harness runs are expected to succeed).
pub fn record(workload: Workload, mode: RecordMode) -> RecordOutcome {
    record_insns(workload, mode, run_insns())
}

/// Records with an explicit instruction budget.
///
/// # Panics
///
/// Panics on recording failures.
pub fn record_insns(workload: Workload, mode: RecordMode, insns: u64) -> RecordOutcome {
    let spec = workload.spec(mode.is_pv());
    let out = Recorder::new(&spec, RecordConfig::new(mode, SEED, insns)).expect("mode matches kernel").run();
    assert!(out.fault.is_none(), "{}: guest fault {:?}", workload.label(), out.fault);
    out
}

/// Replays a recording with the given checkpoint interval (cycles) and
/// call/return trapping.
///
/// # Panics
///
/// Panics on replay divergence (the determinism guarantee).
pub fn replay(
    workload: Workload,
    rec: &RecordOutcome,
    interval: Option<u64>,
    callret: CallRetTrap,
) -> ReplayOutcome {
    let spec = workload.spec(false);
    let cfg = ReplayConfig {
        checkpoint_interval: interval,
        callret,
        collect_cases: interval.is_some(),
        ..ReplayConfig::default()
    };
    let mut r = Replayer::new(&spec, Arc::clone(&rec.log), cfg);
    r.verify_against(rec.final_digest);
    let out = r.run().unwrap_or_else(|e| panic!("{}: replay failed: {e}", workload.label()));
    assert_eq!(out.verified, Some(true), "{}: digest mismatch", workload.label());
    out
}

/// Converts virtual cycles to virtual seconds.
pub fn secs(cycles: u64) -> f64 {
    cycles as f64 / VIRTUAL_HZ as f64
}

/// Converts a byte count over a cycle span to MB/s of virtual time.
pub fn mb_per_sec(bytes: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    (bytes as f64 / (1024.0 * 1024.0)) / secs(cycles)
}

/// The per-class overhead categories of Figures 5(b)/7(b), in print order.
pub const BREAKDOWN: [Category; 5] =
    [Category::Rdtsc, Category::PioMmio, Category::Interrupt, Category::Network, Category::Ras];

/// A minimal fixed-width table printer (the figures are tables of numbers).
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {c:<w$} |");
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Prints a section banner plus the table.
pub fn emit(title: &str, table: &Table) {
    println!("\n## {title}\n");
    println!("{}", table.to_markdown());
}

/// All workloads in figure order.
pub fn workloads() -> [Workload; 5] {
    Workload::ALL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a"));
        assert!(md.contains("| 1"));
        assert_eq!(md.lines().count(), 3);
    }

    #[test]
    fn unit_conversions() {
        assert!((secs(VIRTUAL_HZ) - 1.0).abs() < 1e-9);
        assert!((mb_per_sec(1024 * 1024, VIRTUAL_HZ) - 1.0).abs() < 1e-9);
        assert_eq!(mb_per_sec(100, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_arity_checked() {
        Table::new(&["a"]).row(vec![]);
    }
}
