//! # rnr-bench: the evaluation harness
//!
//! One binary per table/figure of the paper's evaluation (§7–§8); each
//! regenerates the corresponding rows/series on the simulator. See
//! DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured
//! results.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table 1 — ROP/JOP/DOS detector examples |
//! | `table2` | Table 2 — system configuration |
//! | `table3` | Table 3 — benchmarks and parameters |
//! | `fig5` | Figure 5 — recording overhead + breakdown |
//! | `fig6` | Figure 6 — log rate and BackRAS bandwidth |
//! | `fig7` | Figure 7 — checkpointing replay overhead + breakdown |
//! | `fig8` | Figure 8 — kernel false alarms (suppressed vs passed) |
//! | `fig9` | Figure 9 — alarm replay slowdown |
//! | `fig10` | Figure 10 / §6 — the mounted kernel ROP attack |
//! | `sec84` | §8.4 — detection window, log size, checkpoints |
//! | `all` | Everything above, writing `experiments.md` |
//!
//! Scale the run length with `RNR_BENCH_INSNS` (default 1,500,000 guest
//! instructions per run).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use rnr_hypervisor::{RecordConfig, RecordMode, RecordOutcome, Recorder, VmSpec};
use rnr_log::{Category, FaultPlan};
use rnr_machine::CallRetTrap;
use rnr_replay::{ReplayConfig, ReplayOutcome, Replayer, VIRTUAL_HZ};
use rnr_safe::PipelineConfig;
use rnr_workloads::{Workload, WorkloadParams};

/// Default guest instructions per measured run.
pub const DEFAULT_INSNS: u64 = 1_500_000;

/// The shared seed for all harness runs (results are deterministic).
pub const SEED: u64 = 42;

/// Run length, overridable via `RNR_BENCH_INSNS`.
pub fn run_insns() -> u64 {
    std::env::var("RNR_BENCH_INSNS").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_INSNS)
}

/// Records `workload` in `mode` for the harness run length.
///
/// # Panics
///
/// Panics on recording failures (harness runs are expected to succeed).
pub fn record(workload: Workload, mode: RecordMode) -> RecordOutcome {
    record_insns(workload, mode, run_insns())
}

/// Records with an explicit instruction budget.
///
/// # Panics
///
/// Panics on recording failures.
pub fn record_insns(workload: Workload, mode: RecordMode, insns: u64) -> RecordOutcome {
    let spec = workload.spec(mode.is_pv());
    let out = Recorder::new(&spec, RecordConfig::new(mode, SEED, insns)).expect("mode matches kernel").run();
    assert!(out.fault.is_none(), "{}: guest fault {:?}", workload.label(), out.fault);
    out
}

/// Replays a recording with the given checkpoint interval (cycles) and
/// call/return trapping.
///
/// # Panics
///
/// Panics on replay divergence (the determinism guarantee).
pub fn replay(
    workload: Workload,
    rec: &RecordOutcome,
    interval: Option<u64>,
    callret: CallRetTrap,
) -> ReplayOutcome {
    let spec = workload.spec(false);
    let cfg = ReplayConfig {
        checkpoint_interval: interval,
        callret,
        collect_cases: interval.is_some(),
        ..ReplayConfig::default()
    };
    let mut r = Replayer::new(&spec, Arc::clone(&rec.log), cfg);
    r.verify_against(rec.final_digest);
    let out = r.run().unwrap_or_else(|e| panic!("{}: replay failed: {e}", workload.label()));
    assert_eq!(out.verified, Some(true), "{}: digest mismatch", workload.label());
    out
}

/// Converts virtual cycles to virtual seconds.
pub fn secs(cycles: u64) -> f64 {
    cycles as f64 / VIRTUAL_HZ as f64
}

/// Converts a byte count over a cycle span to MB/s of virtual time.
pub fn mb_per_sec(bytes: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    (bytes as f64 / (1024.0 * 1024.0)) / secs(cycles)
}

/// The per-class overhead categories of Figures 5(b)/7(b), in print order.
pub const BREAKDOWN: [Category; 5] =
    [Category::Rdtsc, Category::PioMmio, Category::Interrupt, Category::Network, Category::Ras];

/// A minimal fixed-width table printer (the figures are tables of numbers).
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {c:<w$} |");
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Prints a section banner plus the table.
pub fn emit(title: &str, table: &Table) {
    println!("\n## {title}\n");
    println!("{}", table.to_markdown());
}

/// All workloads in figure order.
pub fn workloads() -> [Workload; 5] {
    Workload::ALL
}

/// Host CPU cores available to the harness (thread-pool sizing input,
/// shared by every wall-clock binary so "the host" means the same thing in
/// each committed figure).
pub fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// CR span workers the optimized configurations use on this host: one per
/// core up to 8; serial on a single core, where worker threads only add
/// scheduling overhead.
pub fn auto_spans(cores: usize) -> usize {
    if cores >= 2 {
        cores.min(8)
    } else {
        0
    }
}

/// Milliseconds elapsed since `t`.
pub fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// The `p`-th percentile (0–100) of an ascending-sorted sample, by
/// nearest-rank.
///
/// # Panics
///
/// Panics on an empty sample.
pub fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    assert!(!sorted_ms.is_empty(), "percentile of empty sample");
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// Wall-clock estimator over repeated runs of a deterministic pipeline.
/// Shared by `pipeline_speed`, `farm_speed`, and the fault matrix so every
/// committed figure and gate uses the same statistics.
#[derive(Clone, Copy)]
pub enum Estimator {
    /// Best-of-N: least contaminated by scheduler noise; used for the
    /// published figures (both configurations use it, so it stays fair).
    Best(usize),
    /// Median-of-N: robust to a single outlier in either direction; used by
    /// the `--check` regression gates so one lucky (or unlucky) run can't
    /// flip them.
    Median(usize),
}

impl Estimator {
    /// How many repeats to run.
    pub fn repeats(self) -> usize {
        match self {
            Estimator::Best(n) | Estimator::Median(n) => n,
        }
    }

    /// The estimate over an ascending-sorted sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn pick(self, sorted: &[f64]) -> f64 {
        match self {
            Estimator::Best(_) => sorted[0],
            Estimator::Median(_) => sorted[sorted.len() / 2],
        }
    }
}

/// The standard mounted-attack guest (`mount_kernel_rop` over the demo
/// parameters) every attack-driven harness uses.
///
/// # Panics
///
/// Panics if the attack cannot be mounted (fixed inputs; cannot happen).
pub fn attack_spec() -> VmSpec {
    let (spec, _plan) =
        rnr_attacks::mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).expect("attack mounts");
    spec
}

/// The attack-pipeline configuration shared by the fault matrix, the farm
/// harness, and the equivalence tests: 900k instructions at the RepChk0.125
/// interval — long enough to exercise alarms, escalation, and a confirmed
/// ROP verdict.
pub fn attack_session_config(parallel_spans: usize, plan: FaultPlan) -> PipelineConfig {
    PipelineConfig {
        duration_insns: 900_000,
        checkpoint_interval_secs: Some(0.125),
        parallel_spans,
        fault_plan: plan,
        ..PipelineConfig::default()
    }
}

/// Asserts two `PipelineReport::to_json()` documents are byte-identical —
/// the report-identity contract every wall-clock knob (and the replay farm)
/// must uphold. On mismatch, points at the first differing line.
///
/// # Panics
///
/// Panics when the reports differ.
pub fn assert_reports_identical(context: &str, expected: &str, got: &str) {
    if expected == got {
        return;
    }
    let diff = expected
        .lines()
        .zip(got.lines())
        .enumerate()
        .find(|(_, (e, g))| e != g)
        .map(|(n, (e, g))| format!("first differing line {}: expected `{e}`, got `{g}`", n + 1))
        .unwrap_or_else(|| "documents differ only in length".to_string());
    panic!("{context}: reports must be byte-identical; {diff}");
}

/// Repository-root path of the committed wall-clock figures every perf gate
/// reads and the measurement binaries update.
pub const BENCH_PIPELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");

/// Replaces or appends `key` in a JSON object value, preserving the order of
/// the other entries. Lets `pipeline_speed` and `farm_speed` each own their
/// slice of `BENCH_pipeline.json` and be rerun in either order.
///
/// # Panics
///
/// Panics when `doc` is not a JSON object.
pub fn set_json_key(doc: &mut serde_json::Value, key: &str, value: serde_json::Value) {
    let serde_json::Value::Object(entries) = doc else {
        panic!("BENCH document must be a JSON object");
    };
    match entries.iter_mut().find(|(k, _)| k == key) {
        Some((_, slot)) => *slot = value,
        None => entries.push((key.to_string(), value)),
    }
}

/// Removes and returns `key` from a JSON object value (`None` when absent or
/// when `doc` is not an object).
pub fn take_json_key(doc: &mut serde_json::Value, key: &str) -> Option<serde_json::Value> {
    let serde_json::Value::Object(entries) = doc else { return None };
    let at = entries.iter().position(|(k, _)| k == key)?;
    Some(entries.remove(at).1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a"));
        assert!(md.contains("| 1"));
        assert_eq!(md.lines().count(), 3);
    }

    #[test]
    fn unit_conversions() {
        assert!((secs(VIRTUAL_HZ) - 1.0).abs() < 1e-9);
        assert!((mb_per_sec(1024 * 1024, VIRTUAL_HZ) - 1.0).abs() < 1e-9);
        assert_eq!(mb_per_sec(100, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_arity_checked() {
        Table::new(&["a"]).row(vec![]);
    }

    #[test]
    fn estimator_statistics() {
        let sorted = [1.0, 2.0, 9.0];
        assert_eq!(Estimator::Best(3).pick(&sorted), 1.0);
        assert_eq!(Estimator::Median(3).pick(&sorted), 2.0);
        assert_eq!(Estimator::Median(3).repeats(), 3);
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&sorted, 50.0), 20.0);
        assert_eq!(percentile(&sorted, 95.0), 40.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn identical_reports_pass() {
        assert_reports_identical("t", "{\n1\n}", "{\n1\n}");
    }

    #[test]
    #[should_panic(expected = "first differing line 2")]
    fn differing_reports_point_at_the_line() {
        assert_reports_identical("t", "{\n1\n}", "{\n2\n}");
    }

    #[test]
    fn auto_spans_serial_on_one_core() {
        assert_eq!(auto_spans(1), 0);
        assert_eq!(auto_spans(4), 4);
        assert_eq!(auto_spans(32), 8);
    }
}
