//! Figure 7: checkpointing-replay execution time vs `Rec` (a) and the
//! `RepChk1` overhead breakdown (b).

use rnr_bench::{emit, record, replay, workloads, Table, BREAKDOWN};
use rnr_hypervisor::RecordMode;
use rnr_machine::CallRetTrap;
use rnr_replay::VIRTUAL_HZ;

fn main() {
    // RepNoChk plus checkpointing every 5 / 1 / 0.2 virtual seconds.
    let setups: [(&str, Option<u64>); 4] = [
        ("RepNoChk", None),
        ("RepChk5", Some(5 * VIRTUAL_HZ)),
        ("RepChk1", Some(VIRTUAL_HZ)),
        ("RepChk02", Some(VIRTUAL_HZ / 5)),
    ];
    let mut fig7a = Table::new(&["workload", "RepNoChk", "RepChk5", "RepChk1", "RepChk02", "chk@1s"]);
    let mut fig7b =
        Table::new(&["workload", "rdtsc %", "pio/mmio %", "interrupt %", "network %", "RAS %", "Chk %"]);
    let mut means = [0.0f64; 4];

    for w in workloads() {
        let rec = record(w, RecordMode::Rec);
        let mut cells = vec![w.label().to_string()];
        let mut chk1 = None;
        for (i, (_, interval)) in setups.iter().enumerate() {
            let out = replay(w, &rec, *interval, CallRetTrap::None);
            let n = out.cycles as f64 / rec.cycles as f64;
            means[i] += n / 5.0;
            cells.push(format!("{n:.3}"));
            if i == 2 {
                chk1 = Some(out);
            }
        }
        let chk1 = chk1.expect("RepChk1 measured");
        cells.push(format!("{}", chk1.checkpoints_taken));
        fig7a.row(cells);

        // Breakdown of the RepChk1 overhead over Rec: replay-specific costs
        // per class plus checkpoint creation (the `Chk` bucket).
        let attr = &chk1.attribution;
        let total: u64 = BREAKDOWN.iter().map(|&c| attr.for_category(c)).sum::<u64>() + attr.checkpoint();
        let mut cells = vec![w.label().to_string()];
        for &c in &BREAKDOWN {
            let pct = if total == 0 { 0.0 } else { attr.for_category(c) as f64 * 100.0 / total as f64 };
            cells.push(format!("{pct:.1}"));
        }
        let chk_pct = if total == 0 { 0.0 } else { attr.checkpoint() as f64 * 100.0 / total as f64 };
        cells.push(format!("{chk_pct:.1}"));
        fig7b.row(cells);
    }
    fig7a.row(
        std::iter::once("mean".to_string())
            .chain(means.iter().map(|m| format!("{m:.3}")))
            .chain(std::iter::once(String::new()))
            .collect(),
    );

    emit("Figure 7(a): checkpointing replay vs Rec (normalized to Rec)", &fig7a);
    emit("Figure 7(b): breakdown of the RepChk1 overhead over Rec", &fig7b);
    println!("paper: RepChk1 ≈ 1.59x Rec on average; RepNoChk ≈ 1.48x; interrupt landing dominates;");
    println!("paper: shorter checkpoint intervals increase overhead (page copies, COW faults).");
}
