//! Figure 8: kernel false alarms suppressed (whitelist, BackRAS) and
//! reported to the replayers, per million instructions.

use rnr_bench::{emit, run_insns, Table, SEED};
use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_workloads::Workload;

fn main() {
    let mut t = Table::new(&["workload", "whitelist/1M", "backras/1M", "passed/1M", "passed (count)"]);
    for w in Workload::ALL {
        // The paper's functional environment (QEMU emulation mode, §7.2):
        // trap every call/return and run the counterfactual RAS analysis.
        let spec = w.spec(false);
        let mut rc = RecordConfig::new(RecordMode::Rec, SEED, run_insns());
        rc.functional_ras_analysis = true;
        let out = Recorder::new(&spec, rc).expect("spec matches").run();
        assert!(out.fault.is_none(), "{}: {:?}", w.label(), out.fault);
        let fig8 = out.fig8.expect("functional analysis enabled");
        t.row(vec![
            w.label().to_string(),
            format!("{:.1}", fig8.per_million(fig8.whitelist_suppressed)),
            format!("{:.1}", fig8.per_million(fig8.backras_suppressed)),
            format!("{:.2}", fig8.per_million(fig8.passed())),
            format!("{}", fig8.passed()),
        ]);
    }
    emit("Figure 8: kernel false alarms per 1M instructions", &t);
    println!("paper: whitelist and BackRAS suppress nearly all false alarms; only apache passes");
    println!("paper: a few (≈6/1M) RAS underflows from deep network-driver nesting under load.");
}
