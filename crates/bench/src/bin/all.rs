//! Runs every table/figure binary in sequence (convenience driver).
//!
//! Usage: `cargo run --release -p rnr-bench --bin all`

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let bins =
        ["table2", "table3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table1", "sec84", "ablation"];
    for bin in bins {
        eprintln!("=== running {bin} ===");
        let status = Command::new(dir.join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{bin} exited with {s}"),
            Err(e) => eprintln!(
                "failed to launch {bin}: {e} (build with `cargo build --release -p rnr-bench` first)"
            ),
        }
    }
}
