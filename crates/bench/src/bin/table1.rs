//! Table 1: three example uses of RnR-Safe — ROP (this paper), JOP, DOS —
//! each demonstrated live on the simulator.

use rnr_attacks::{dos_control, dos_scenario, DosDetector};
use rnr_bench::{emit, Table, SEED};
use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_safe::{Pipeline, PipelineConfig};
use rnr_workloads::WorkloadParams;

fn main() {
    let mut t = Table::new(&["attack", "alarm trigger", "first detection", "replay role", "demo result"]);

    // Row 1: ROP (the paper's main subject) — full pipeline on the mounted
    // attack.
    let (spec, _plan) = rnr_attacks::mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).unwrap();
    let report = Pipeline::new(
        spec,
        PipelineConfig {
            duration_insns: 900_000,
            checkpoint_interval_secs: Some(0.125),
            ..Default::default()
        },
    )
    .run()
    .unwrap();
    t.row(vec![
        "ROP".into(),
        "RAS misprediction".into(),
        "multithreaded RAS + whitelist".into(),
        "kernel-compatible shadow stack".into(),
        format!("{} attack(s) confirmed", report.attacks_confirmed()),
    ]);

    // Row 2: JOP — the hardware common-function table, recorded end to end,
    // with replay-side resolution against the full table.
    let (jop_spec, jop_plan) = rnr_attacks::mount_jop(900_000);
    let mut rc = RecordConfig::new(RecordMode::Rec, SEED, 700_000);
    rc.jop_common_functions = Some(jop_plan.hw_table_limit);
    let jop_rec = Recorder::new(&jop_spec, rc).unwrap().run();
    let jop_out = rnr_replay::Replayer::new(
        &jop_spec,
        std::sync::Arc::clone(&jop_rec.log),
        rnr_replay::ReplayConfig::default(),
    )
    .run()
    .unwrap();
    let mut jop_attacks = 0;
    let mut jop_fps = 0;
    for case in &jop_out.jop_cases {
        match rnr_replay::resolve_jop(&jop_spec, case) {
            rnr_replay::JopVerdict::JopAttack => jop_attacks += 1,
            rnr_replay::JopVerdict::FalsePositive => jop_fps += 1,
        }
    }
    t.row(vec![
        "JOP".into(),
        "stray indirect branch/call".into(),
        format!("table of {} common functions", jop_plan.hw_table_limit),
        "verify against the full function list".into(),
        format!("{jop_attacks} attack(s) convicted, {jop_fps} false positives cleared"),
    ]);

    // Row 3: DOS — the context-switch watchdog on the interrupt-starvation
    // scenario vs the healthy control.
    let run = |spec: &rnr_hypervisor::VmSpec| {
        let mut rc = RecordConfig::new(RecordMode::Rec, SEED, 1_500_000);
        rc.trace = 1;
        Recorder::new(spec, rc).unwrap().run()
    };
    let attack = run(&dos_scenario(&WorkloadParams::default(), 600));
    let control = run(&dos_control(&WorkloadParams::default()));
    let window = 600_000; // four timer periods
    let alarm = DosDetector::new(window, 1).first_alarm(&attack.switch_trace, attack.cycles);
    let control_alarm = DosDetector::new(window, 1).first_alarm(&control.switch_trace, control.cycles);
    t.row(vec![
        "DOS".into(),
        "kernel scheduler inactivity".into(),
        "context-switch counter watchdog".into(),
        "identify the code dominating execution".into(),
        format!("attack alarm at cycle {alarm:?}; control: {control_alarm:?}"),
    ]);

    emit("Table 1: example uses of RnR-Safe", &t);
}
