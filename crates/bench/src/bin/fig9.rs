//! Figure 9: execution time of alarm replay (trap every kernel call and
//! return), normalized to `Rec`.

use rnr_bench::{emit, record, replay, workloads, Table};
use rnr_hypervisor::RecordMode;
use rnr_machine::CallRetTrap;
use rnr_replay::VIRTUAL_HZ;

fn main() {
    let mut t = Table::new(&["workload", "Rec", "RepChk1", "RepAlarm", "kernel call/ret traps"]);
    let mut mean = 0.0;
    for w in workloads() {
        let rec = record(w, RecordMode::Rec);
        let chk1 = replay(w, &rec, Some(VIRTUAL_HZ), CallRetTrap::None);
        let alarm = replay(w, &rec, None, CallRetTrap::KernelOnly);
        let n_chk = chk1.cycles as f64 / rec.cycles as f64;
        let n_alarm = alarm.cycles as f64 / rec.cycles as f64;
        mean += n_alarm / 5.0;
        t.row(vec![
            w.label().to_string(),
            "1.000".to_string(),
            format!("{n_chk:.2}"),
            format!("{n_alarm:.1}"),
            format!("{}", alarm.callret_traps),
        ]);
    }
    t.row(vec!["mean".into(), String::new(), String::new(), format!("{mean:.1}"), String::new()]);
    emit("Figure 9: alarm replay (kernel call/ret trapping) vs Rec", &t);
    println!("paper: make/mysql 30-40x, apache ≈50x, radiosity ≈2.8x — the slowdown tracks the");
    println!("paper: number of kernel call/return instructions executed.");
}
