//! Wall-clock pipeline speed: per-phase times (record / CR / AR) for every
//! workload, plus an optimized-vs-baseline comparison of the full attack
//! pipeline. Unlike every other harness binary, this one measures *host*
//! time — virtual-cycle figures are asserted identical across
//! configurations, which is what makes the wall-clock comparison fair.
//!
//! Writes `BENCH_pipeline.json` at the repository root.
//!
//! With `--check`, runs only the attack comparison and gates against the
//! committed `BENCH_pipeline.json`: exits nonzero if the baseline and
//! optimized reports differ, or if the measured speedup regresses more than
//! 10% below the committed figure. The committed file is left untouched.

use std::sync::Arc;
use std::time::Instant;

use rnr_bench::{emit, run_insns, Table, SEED};
use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_replay::{AlarmReplayer, ReplayConfig, Replayer};
use rnr_safe::{Pipeline, PipelineConfig};
use rnr_workloads::WorkloadParams;

/// Phase wall-clock for one workload, optimized configuration (sequential
/// phases, so each is attributable).
#[derive(Debug, serde::Serialize)]
struct PhaseTimes {
    workload: String,
    record_ms: f64,
    cr_ms: f64,
    ar_ms: f64,
    alarms_escalated: usize,
}

/// The attack pipeline, baseline vs optimized.
#[derive(Debug, serde::Serialize)]
struct AttackComparison {
    baseline_ms: f64,
    optimized_ms: f64,
    speedup: f64,
    /// Full JSON reports byte-identical (cycles, verdicts, window).
    reports_identical: bool,
    attacks_confirmed: usize,
    window_cycles: Option<u64>,
}

#[derive(Debug, serde::Serialize)]
struct Doc {
    insns_per_workload: u64,
    phases: Vec<PhaseTimes>,
    attack: AttackComparison,
    /// Block-cache counters (recorder + CR + ARs summed) of one optimized
    /// attack run. Diagnostics: these live outside the report JSON that the
    /// equivalence assertions compare.
    block_cache: rnr_machine::BlockStats,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn phase_times(workload: rnr_workloads::Workload, insns: u64) -> PhaseTimes {
    let spec = workload.spec(false);
    let t = Instant::now();
    let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, SEED, insns))
        .expect("record mode matches kernel")
        .run();
    let record_ms = ms(t);
    assert!(rec.fault.is_none(), "{}: guest fault {:?}", workload.label(), rec.fault);

    let cfg = ReplayConfig::default();
    let t = Instant::now();
    let mut cr = Replayer::new(&spec, Arc::clone(&rec.log), cfg.clone());
    cr.verify_against(rec.final_digest);
    let cr_out = cr.run().expect("CR replays the recording");
    let cr_ms = ms(t);
    assert_eq!(cr_out.verified, Some(true), "{}: digest mismatch", workload.label());

    let ar = AlarmReplayer::new(&spec, Arc::clone(&rec.log)).with_config(cfg);
    let t = Instant::now();
    for case in &cr_out.alarm_cases {
        ar.resolve(case).expect("AR resolves the case");
    }
    let ar_ms = ms(t);
    PhaseTimes {
        workload: workload.label().to_string(),
        record_ms,
        cr_ms,
        ar_ms,
        alarms_escalated: cr_out.alarm_cases.len(),
    }
}

/// One attack-pipeline measurement: the deterministic report plus the best
/// wall-clock over the repeats.
struct AttackRun {
    json: String,
    attacks: usize,
    window: Option<u64>,
    best_ms: f64,
    block_stats: rnr_machine::BlockStats,
}

/// Runs the attack pipeline under `cfg` five times and reports the *best*
/// wall-clock (the report itself is deterministic, asserted identical across
/// iterations). Best-of-N is the estimator least contaminated by scheduler
/// noise, which matters on small single-core runners; both configurations
/// use it, so the comparison stays fair.
fn attack_run(cfg: PipelineConfig) -> AttackRun {
    let mut times = Vec::new();
    let mut result = None;
    let mut block_stats = rnr_machine::BlockStats::default();
    for _ in 0..5 {
        let (spec, _plan) =
            rnr_attacks::mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).expect("attack mounts");
        let t = Instant::now();
        let report = Pipeline::new(spec, cfg.clone()).run().expect("attack pipeline completes");
        times.push(ms(t));
        let window = report.detection.as_ref().map(|d| d.window_cycles);
        let outcome = (report.to_json(), report.attacks_confirmed(), window);
        block_stats = report.block_stats;
        if let Some(prev) = &result {
            assert_eq!(prev, &outcome, "pipeline must be deterministic across repeats");
        } else {
            result = Some(outcome);
        }
    }
    times.sort_by(f64::total_cmp);
    let (json, attacks, window) = result.expect("five runs completed");
    AttackRun { json, attacks, window, best_ms: times[0], block_stats }
}

/// Baseline and optimized attack configurations (shared by measurement and
/// `--check` so the gate reruns exactly the committed methodology).
fn attack_configs() -> (PipelineConfig, PipelineConfig) {
    // Long enough that per-instruction execution dominates fixed setup
    // (VM construction, image load, log plumbing) — the knobs under test
    // only affect the former.
    let optimized = PipelineConfig {
        duration_insns: 5_000_000,
        checkpoint_interval_secs: Some(0.05),
        ..PipelineConfig::default()
    };
    let baseline = PipelineConfig {
        streaming: false,
        decode_cache: false,
        block_engine: false,
        parallel_alarm_replay: false,
        ar_workers: 1,
        ..optimized.clone()
    };
    (baseline, optimized)
}

/// Measures the attack comparison, asserting report equivalence.
fn attack_comparison() -> (AttackComparison, rnr_machine::BlockStats) {
    let (baseline_cfg, optimized_cfg) = attack_configs();
    let base = attack_run(baseline_cfg);
    let opt = attack_run(optimized_cfg);
    assert_eq!(base.json, opt.json, "baseline and optimized reports must be identical");
    assert_eq!(base.attacks, opt.attacks);
    assert_eq!(base.window, opt.window);
    let cmp = AttackComparison {
        baseline_ms: base.best_ms,
        optimized_ms: opt.best_ms,
        speedup: base.best_ms / opt.best_ms,
        reports_identical: true,
        attacks_confirmed: opt.attacks,
        window_cycles: opt.window,
    };
    (cmp, opt.block_stats)
}

const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");

/// `--check`: quick CI gate. Reruns the attack comparison (report
/// equivalence is asserted inside) and fails if the measured speedup drops
/// more than 10% below the committed `BENCH_pipeline.json` figure.
fn check() {
    let committed: serde_json::Value = serde_json::from_str(
        &std::fs::read_to_string(BENCH_PATH).expect("read committed BENCH_pipeline.json"),
    )
    .expect("committed BENCH_pipeline.json parses");
    let committed_speedup =
        committed["attack"]["speedup"].as_f64().expect("committed attack.speedup present");

    let (attack, _) = attack_comparison();
    println!(
        "check: reports_identical={} speedup={:.2}x (committed {:.2}x, floor {:.2}x)",
        attack.reports_identical,
        attack.speedup,
        committed_speedup,
        committed_speedup * 0.9,
    );
    if !attack.reports_identical {
        eprintln!("check FAILED: baseline and optimized reports differ");
        std::process::exit(1);
    }
    if attack.speedup < committed_speedup * 0.9 {
        eprintln!(
            "check FAILED: attack-pipeline speedup {:.2}x regressed >10% below committed {:.2}x",
            attack.speedup, committed_speedup
        );
        std::process::exit(1);
    }
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        check();
        return;
    }
    let insns = run_insns();
    let phases: Vec<PhaseTimes> = rnr_bench::workloads().into_iter().map(|w| phase_times(w, insns)).collect();

    let mut t = Table::new(&["workload", "record ms", "CR ms", "AR ms", "escalated"]);
    for p in &phases {
        t.row(vec![
            p.workload.clone(),
            format!("{:.1}", p.record_ms),
            format!("{:.1}", p.cr_ms),
            format!("{:.1}", p.ar_ms),
            p.alarms_escalated.to_string(),
        ]);
    }
    emit("Pipeline phase wall-clock (optimized)", &t);

    let (attack, block_cache) = attack_comparison();

    let mut t = Table::new(&["config", "wall ms", "speedup", "attacks", "window cycles"]);
    t.row(vec![
        "baseline (no streaming, no caches, stepped, 1 AR)".into(),
        format!("{:.1}", attack.baseline_ms),
        "1.00x".into(),
        attack.attacks_confirmed.to_string(),
        attack.window_cycles.map_or("-".into(), |w| w.to_string()),
    ]);
    t.row(vec![
        "optimized (streaming + block engine + AR pool)".into(),
        format!("{:.1}", attack.optimized_ms),
        format!("{:.2}x", attack.speedup),
        attack.attacks_confirmed.to_string(),
        attack.window_cycles.map_or("-".into(), |w| w.to_string()),
    ]);
    emit("Attack pipeline: baseline vs optimized (identical reports)", &t);
    println!(
        "block cache: {} hits, {} builds, {} flushes",
        block_cache.hits, block_cache.builds, block_cache.flushes
    );

    let doc = Doc { insns_per_workload: insns, phases, attack, block_cache };
    std::fs::write(BENCH_PATH, serde_json::to_string_pretty(&doc).expect("doc serializes"))
        .expect("write BENCH_pipeline.json");
    println!("wrote {BENCH_PATH}");
}
