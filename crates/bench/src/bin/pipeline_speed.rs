//! Wall-clock pipeline speed: per-phase times (record / CR / AR) for every
//! workload, plus an optimized-vs-baseline comparison of the full attack
//! pipeline. Unlike every other harness binary, this one measures *host*
//! time — virtual-cycle figures are asserted identical across
//! configurations, which is what makes the wall-clock comparison fair.
//!
//! Writes `BENCH_pipeline.json` at the repository root.

use std::sync::Arc;
use std::time::Instant;

use rnr_bench::{emit, run_insns, Table, SEED};
use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_replay::{AlarmReplayer, ReplayConfig, Replayer};
use rnr_safe::{Pipeline, PipelineConfig};
use rnr_workloads::WorkloadParams;

/// Phase wall-clock for one workload, optimized configuration (sequential
/// phases, so each is attributable).
#[derive(Debug, serde::Serialize)]
struct PhaseTimes {
    workload: String,
    record_ms: f64,
    cr_ms: f64,
    ar_ms: f64,
    alarms_escalated: usize,
}

/// The attack pipeline, baseline vs optimized.
#[derive(Debug, serde::Serialize)]
struct AttackComparison {
    baseline_ms: f64,
    optimized_ms: f64,
    speedup: f64,
    /// Full JSON reports byte-identical (cycles, verdicts, window).
    reports_identical: bool,
    attacks_confirmed: usize,
    window_cycles: Option<u64>,
}

#[derive(Debug, serde::Serialize)]
struct Doc {
    insns_per_workload: u64,
    phases: Vec<PhaseTimes>,
    attack: AttackComparison,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn phase_times(workload: rnr_workloads::Workload, insns: u64) -> PhaseTimes {
    let spec = workload.spec(false);
    let t = Instant::now();
    let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, SEED, insns))
        .expect("record mode matches kernel")
        .run();
    let record_ms = ms(t);
    assert!(rec.fault.is_none(), "{}: guest fault {:?}", workload.label(), rec.fault);

    let cfg = ReplayConfig::default();
    let t = Instant::now();
    let mut cr = Replayer::new(&spec, Arc::clone(&rec.log), cfg.clone());
    cr.verify_against(rec.final_digest);
    let cr_out = cr.run().expect("CR replays the recording");
    let cr_ms = ms(t);
    assert_eq!(cr_out.verified, Some(true), "{}: digest mismatch", workload.label());

    let ar = AlarmReplayer::new(&spec, Arc::clone(&rec.log)).with_config(cfg);
    let t = Instant::now();
    for case in &cr_out.alarm_cases {
        ar.resolve(case).expect("AR resolves the case");
    }
    let ar_ms = ms(t);
    PhaseTimes {
        workload: workload.label().to_string(),
        record_ms,
        cr_ms,
        ar_ms,
        alarms_escalated: cr_out.alarm_cases.len(),
    }
}

/// Runs the attack pipeline under `cfg` three times and reports the median
/// wall-clock (the report itself is deterministic, asserted identical across
/// iterations), so one noisy run cannot skew the comparison.
fn attack_run(cfg: PipelineConfig) -> (String, usize, Option<u64>, f64) {
    let mut times = Vec::new();
    let mut result = None;
    for _ in 0..3 {
        let (spec, _plan) =
            rnr_attacks::mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).expect("attack mounts");
        let t = Instant::now();
        let report = Pipeline::new(spec, cfg.clone()).run().expect("attack pipeline completes");
        times.push(ms(t));
        let window = report.detection.as_ref().map(|d| d.window_cycles);
        let outcome = (report.to_json(), report.attacks_confirmed(), window);
        if let Some(prev) = &result {
            assert_eq!(prev, &outcome, "pipeline must be deterministic across repeats");
        } else {
            result = Some(outcome);
        }
    }
    times.sort_by(f64::total_cmp);
    let (json, attacks, window) = result.expect("three runs completed");
    (json, attacks, window, times[times.len() / 2])
}

fn main() {
    let insns = run_insns();
    let phases: Vec<PhaseTimes> = rnr_bench::workloads().into_iter().map(|w| phase_times(w, insns)).collect();

    let mut t = Table::new(&["workload", "record ms", "CR ms", "AR ms", "escalated"]);
    for p in &phases {
        t.row(vec![
            p.workload.clone(),
            format!("{:.1}", p.record_ms),
            format!("{:.1}", p.cr_ms),
            format!("{:.1}", p.ar_ms),
            p.alarms_escalated.to_string(),
        ]);
    }
    emit("Pipeline phase wall-clock (optimized)", &t);

    let attack_cfg = PipelineConfig {
        duration_insns: 3_000_000,
        checkpoint_interval_secs: Some(0.05),
        ..PipelineConfig::default()
    };
    let baseline_cfg = PipelineConfig {
        streaming: false,
        decode_cache: false,
        parallel_alarm_replay: false,
        ar_workers: 1,
        ..attack_cfg.clone()
    };
    let (base_json, base_attacks, base_window, baseline_ms) = attack_run(baseline_cfg);
    let (opt_json, opt_attacks, opt_window, optimized_ms) = attack_run(attack_cfg);
    assert_eq!(base_json, opt_json, "baseline and optimized reports must be identical");
    assert_eq!(base_attacks, opt_attacks);
    assert_eq!(base_window, opt_window);
    let attack = AttackComparison {
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms,
        reports_identical: true,
        attacks_confirmed: opt_attacks,
        window_cycles: opt_window,
    };

    let mut t = Table::new(&["config", "wall ms", "speedup", "attacks", "window cycles"]);
    t.row(vec![
        "baseline (no streaming, no decode cache, 1 AR)".into(),
        format!("{baseline_ms:.1}"),
        "1.00x".into(),
        attack.attacks_confirmed.to_string(),
        attack.window_cycles.map_or("-".into(), |w| w.to_string()),
    ]);
    t.row(vec![
        "optimized (streaming + decode cache + AR pool)".into(),
        format!("{optimized_ms:.1}"),
        format!("{:.2}x", attack.speedup),
        attack.attacks_confirmed.to_string(),
        attack.window_cycles.map_or("-".into(), |w| w.to_string()),
    ]);
    emit("Attack pipeline: baseline vs optimized (identical reports)", &t);

    let doc = Doc { insns_per_workload: insns, phases, attack };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).expect("doc serializes"))
        .expect("write BENCH_pipeline.json");
    println!("wrote {path}");
}
