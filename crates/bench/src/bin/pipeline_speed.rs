//! Wall-clock pipeline speed: per-phase times (record / CR / AR) for every
//! workload, plus an optimized-vs-baseline comparison of the full attack
//! pipeline. Unlike every other harness binary, this one measures *host*
//! time — virtual-cycle figures are asserted identical across
//! configurations, which is what makes the wall-clock comparison fair.
//!
//! Writes `BENCH_pipeline.json` at the repository root.
//!
//! With `--check`, runs only the attack comparison and gates against the
//! committed `BENCH_pipeline.json`: exits nonzero if the baseline and
//! optimized reports differ, or if the measured speedup regresses more than
//! 20% below the committed figure. The committed file is left untouched.

use std::sync::Arc;
use std::time::Instant;

use rnr_bench::{
    assert_reports_identical, auto_spans, cores, emit, ms, run_insns, set_json_key, take_json_key, Estimator,
    Table, BENCH_PIPELINE_PATH, SEED,
};
use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_replay::{replay_spans, AlarmReplayer, ReplayConfig, Replayer, SpanFeed, VIRTUAL_HZ};
use rnr_safe::{Pipeline, PipelineConfig};
use rnr_workloads::WorkloadParams;

/// Phase wall-clock for one workload, optimized configuration (sequential
/// phases, so each is attributable).
#[derive(Debug, serde::Serialize)]
struct PhaseTimes {
    workload: String,
    record_ms: f64,
    cr_ms: f64,
    ar_ms: f64,
    alarms_escalated: usize,
}

/// The attack pipeline, baseline vs optimized.
#[derive(Debug, serde::Serialize)]
struct AttackComparison {
    baseline_ms: f64,
    /// Optimized configuration with `superblocks` forced off — the PR 2
    /// block engine alone, isolating the trace engine's contribution.
    blocks_ms: f64,
    optimized_ms: f64,
    speedup: f64,
    /// Optimized over block-engine-only: the superblock trace engine's own
    /// wall-clock factor, gated by `--check` like `speedup`.
    superblock_speedup: f64,
    /// Full JSON reports byte-identical (cycles, verdicts, window).
    reports_identical: bool,
    attacks_confirmed: usize,
    window_cycles: Option<u64>,
}

/// On-disk density of the attack recording: the log's size per retired
/// guest instruction in its two durable forms — framed-in-memory (the
/// transport/retained-store representation: checksummed frames) and compact
/// (the durable segment store's varint/delta + RLE encoding, DESIGN.md §13).
#[derive(Debug, serde::Serialize)]
struct LogDensity {
    records: usize,
    retired_insns: u64,
    framed_bytes: u64,
    compact_bytes: u64,
    framed_bytes_per_insn: f64,
    compact_bytes_per_insn: f64,
    /// framed / compact — how much smaller the segment store is.
    compaction_ratio: f64,
}

/// Measures [`LogDensity`] on an attack recording, asserting the compact
/// form decodes back to the exact records it encoded.
fn log_density(insns: u64) -> LogDensity {
    use rnr_log::{decode_segment, encode_frame, encode_segment, Segment, DEFAULT_BATCH};
    let (spec, _plan) =
        rnr_attacks::mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).expect("attack mounts");
    let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, SEED, insns))
        .expect("record mode matches kernel")
        .run();
    assert!(rec.fault.is_none(), "guest fault {:?}", rec.fault);
    let records = rec.log.records();
    let frames: Vec<Vec<rnr_log::Record>> =
        records.chunks(DEFAULT_BATCH).map(<[rnr_log::Record]>::to_vec).collect();
    let framed_bytes: u64 =
        frames.iter().enumerate().map(|(seq, f)| encode_frame(seq as u64, f).len() as u64).sum();
    let compact_bytes: u64 = frames
        .chunks(rnr_log::DEFAULT_FRAMES_PER_SEGMENT)
        .enumerate()
        .map(|(i, group)| {
            let segment = Segment {
                first_seq: (i * rnr_log::DEFAULT_FRAMES_PER_SEGMENT) as u64,
                frames: group.to_vec(),
            };
            let bytes = encode_segment(&segment, true);
            assert_eq!(decode_segment(&bytes).expect("segment decodes"), segment, "lossless compact form");
            bytes.len() as u64
        })
        .sum();
    LogDensity {
        records: records.len(),
        retired_insns: rec.retired,
        framed_bytes,
        compact_bytes,
        framed_bytes_per_insn: framed_bytes as f64 / rec.retired as f64,
        compact_bytes_per_insn: compact_bytes as f64 / rec.retired as f64,
        compaction_ratio: framed_bytes as f64 / compact_bytes as f64,
    }
}

/// The host the numbers were measured on: core count and the thread-pool
/// sizes derived from it. Wall-clock figures are meaningless without this
/// context — a single-core runner and an 8-core workstation produce wildly
/// different (but equally deterministic) reports.
#[derive(Debug, serde::Serialize)]
struct HostContext {
    cores: usize,
    ar_workers: usize,
    cr_span_workers: usize,
}

#[derive(Debug, serde::Serialize)]
struct Doc {
    insns_per_workload: u64,
    host: HostContext,
    phases: Vec<PhaseTimes>,
    attack: AttackComparison,
    /// Verification replay with 0/1/2/4/8 span workers over one recording —
    /// identical cycles and digest, wall-clock only.
    cr_parallel: Vec<CrParallelRow>,
    /// Block-cache counters (recorder + CR + ARs summed) of one optimized
    /// attack run. Diagnostics: these live outside the report JSON that the
    /// equivalence assertions compare.
    block_cache: rnr_machine::BlockStats,
    /// Log bytes per retired instruction, framed vs compact (Figure 6(a)'s
    /// log-rate axis, measured on the durable segment encoding).
    log_density: LogDensity,
}

fn phase_times(workload: rnr_workloads::Workload, insns: u64) -> PhaseTimes {
    let spec = workload.spec(false);
    let t = Instant::now();
    let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, SEED, insns))
        .expect("record mode matches kernel")
        .run();
    let record_ms = ms(t);
    assert!(rec.fault.is_none(), "{}: guest fault {:?}", workload.label(), rec.fault);

    let cfg = ReplayConfig::default();
    let t = Instant::now();
    let mut cr = Replayer::new(&spec, Arc::clone(&rec.log), cfg.clone());
    cr.verify_against(rec.final_digest);
    let cr_out = cr.run().expect("CR replays the recording");
    let cr_ms = ms(t);
    assert_eq!(cr_out.verified, Some(true), "{}: digest mismatch", workload.label());

    // An idle AR phase is exactly 0: timing the no-op loop would report
    // pool-spinup noise (~1e-4 ms) for workloads that never escalate.
    let ar_ms = if cr_out.alarm_cases.is_empty() {
        0.0
    } else {
        let ar = AlarmReplayer::new(&spec, Arc::clone(&rec.log)).with_config(cfg);
        let t = Instant::now();
        for case in &cr_out.alarm_cases {
            ar.resolve(case).expect("AR resolves the case");
        }
        ms(t)
    };
    PhaseTimes {
        workload: workload.label().to_string(),
        record_ms,
        cr_ms,
        ar_ms,
        alarms_escalated: cr_out.alarm_cases.len(),
    }
}

/// One attack-pipeline measurement: the deterministic report plus the
/// chosen wall-clock estimate over the repeats.
struct AttackRun {
    json: String,
    attacks: usize,
    window: Option<u64>,
    wall_ms: f64,
    block_stats: rnr_machine::BlockStats,
}

/// Runs the attack pipeline under `cfg` repeatedly; the report itself is
/// deterministic and asserted identical across every repeat, so only the
/// wall-clock varies.
fn attack_run(cfg: PipelineConfig, estimator: Estimator) -> AttackRun {
    let mut times = Vec::new();
    let mut result = None;
    let mut block_stats = rnr_machine::BlockStats::default();
    for _ in 0..estimator.repeats() {
        let (spec, _plan) =
            rnr_attacks::mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).expect("attack mounts");
        let t = Instant::now();
        let report = Pipeline::new(spec, cfg.clone()).run().expect("attack pipeline completes");
        times.push(ms(t));
        let window = report.detection.as_ref().map(|d| d.window_cycles);
        let outcome = (report.to_json(), report.attacks_confirmed(), window);
        block_stats = report.block_stats;
        if let Some(prev) = &result {
            assert_eq!(prev, &outcome, "pipeline must be deterministic across repeats");
        } else {
            result = Some(outcome);
        }
    }
    times.sort_by(f64::total_cmp);
    let (json, attacks, window) = result.expect("runs completed");
    AttackRun { json, attacks, window, wall_ms: estimator.pick(&times), block_stats }
}

/// Baseline and optimized attack configurations (shared by measurement and
/// `--check` so the gate reruns exactly the committed methodology).
fn attack_configs() -> (PipelineConfig, PipelineConfig) {
    // Long enough that per-instruction execution dominates fixed setup
    // (VM construction, image load, log plumbing) — the knobs under test
    // only affect the former.
    let optimized = PipelineConfig {
        duration_insns: 5_000_000,
        checkpoint_interval_secs: Some(0.05),
        parallel_spans: auto_spans(cores()),
        ..PipelineConfig::default()
    };
    let baseline = PipelineConfig {
        streaming: false,
        decode_cache: false,
        block_engine: false,
        parallel_alarm_replay: false,
        ar_workers: 1,
        parallel_spans: 0,
        ..optimized.clone()
    };
    (baseline, optimized)
}

/// Measures the attack comparison, asserting report equivalence.
///
/// Baseline and optimized runs are interleaved in pairs, and the speedup is
/// the estimator's pick over the *per-pair ratios*: a host-load swing hits
/// both members of a pair, so it largely cancels out of the ratio instead
/// of skewing whichever configuration happened to run during it. (The
/// published speedup is therefore not exactly `baseline_ms/optimized_ms`,
/// which are the estimator's picks over the raw times.)
fn attack_comparison(estimator: Estimator) -> (AttackComparison, rnr_machine::BlockStats) {
    let (baseline_cfg, optimized_cfg) = attack_configs();
    let blocks_cfg = PipelineConfig { superblocks: false, ..optimized_cfg.clone() };
    let one = Estimator::Best(1);
    let mut base_times = Vec::new();
    let mut blocks_times = Vec::new();
    let mut opt_times = Vec::new();
    let mut ratios = Vec::new();
    let mut sb_ratios = Vec::new();
    let mut last: Option<(String, usize, Option<u64>, rnr_machine::BlockStats)> = None;
    for _ in 0..estimator.repeats() {
        let base = attack_run(baseline_cfg.clone(), one);
        let blocks = attack_run(blocks_cfg.clone(), one);
        let opt = attack_run(optimized_cfg.clone(), one);
        assert_reports_identical("attack comparison (baseline vs optimized)", &base.json, &opt.json);
        assert_reports_identical("attack comparison (superblocks off vs on)", &blocks.json, &opt.json);
        assert_eq!(base.attacks, opt.attacks);
        assert_eq!(base.window, opt.window);
        if let Some((prev_json, ..)) = &last {
            assert_eq!(prev_json, &opt.json, "pipeline must be deterministic across repeats");
        }
        ratios.push(base.wall_ms / opt.wall_ms);
        sb_ratios.push(blocks.wall_ms / opt.wall_ms);
        base_times.push(base.wall_ms);
        blocks_times.push(blocks.wall_ms);
        opt_times.push(opt.wall_ms);
        last = Some((opt.json, opt.attacks, opt.window, opt.block_stats));
    }
    base_times.sort_by(f64::total_cmp);
    blocks_times.sort_by(f64::total_cmp);
    opt_times.sort_by(f64::total_cmp);
    ratios.sort_by(f64::total_cmp);
    sb_ratios.sort_by(f64::total_cmp);
    let (_, attacks, window, block_stats) = last.expect("at least one repeat");
    let cmp = AttackComparison {
        baseline_ms: estimator.pick(&base_times),
        blocks_ms: estimator.pick(&blocks_times),
        optimized_ms: estimator.pick(&opt_times),
        speedup: estimator.pick(&ratios),
        superblock_speedup: estimator.pick(&sb_ratios),
        reports_identical: true,
        attacks_confirmed: attacks,
        window_cycles: window,
    };
    (cmp, block_stats)
}

/// One row of the CR span-worker sweep: the same recording verified with
/// `workers` span workers (`0` = the serial engine). Virtual cycles and the
/// final digest are asserted identical to serial inside [`cr_sweep`].
#[derive(Debug, serde::Serialize)]
struct CrParallelRow {
    workers: usize,
    cr_ms: f64,
    speedup_vs_serial: f64,
}

/// Records the attack workload once, then replays it with every span-worker
/// count, asserting virtual cycles, digest, and verdict-relevant outputs
/// identical to the serial engine and timing each with `estimator`.
fn cr_sweep(worker_counts: &[usize], estimator: Estimator) -> Vec<CrParallelRow> {
    let (spec, _plan) =
        rnr_attacks::mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).expect("attack mounts");
    let mut rc = RecordConfig::new(RecordMode::Rec, SEED, 5_000_000);
    rc.span_seed_every_insns = Some(5_000_000 / 32);
    let rec = Recorder::new(&spec, rc).expect("record mode matches kernel").run();
    assert!(rec.fault.is_none(), "guest fault {:?}", rec.fault);
    let cfg = ReplayConfig {
        checkpoint_interval: Some((0.05 * VIRTUAL_HZ as f64) as u64),
        ..ReplayConfig::default()
    };
    let mut serial: Option<(u64, u64)> = None; // (cycles, checkpoints_taken)
    let mut rows = Vec::new();
    for &workers in worker_counts {
        let mut times = Vec::new();
        for _ in 0..estimator.repeats() {
            let t = Instant::now();
            let (cycles, taken) = if workers == 0 {
                let mut cr = Replayer::new(&spec, Arc::clone(&rec.log), cfg.clone());
                cr.verify_against(rec.final_digest);
                let out = cr.run().expect("serial CR replays");
                assert_eq!(out.verified, Some(true), "serial digest mismatch");
                (out.cycles, out.checkpoints_taken)
            } else {
                let pcfg = ReplayConfig { parallel_spans: workers, ..cfg.clone() };
                let feed = SpanFeed::Complete { log: Arc::clone(&rec.log), seeds: rec.span_seeds.clone() };
                let out = replay_spans(&spec, feed, &pcfg, Some(rec.final_digest), None)
                    .expect("parallel CR replays")
                    .outcome;
                assert_eq!(out.verified, Some(true), "{workers}-worker digest mismatch");
                (out.cycles, out.checkpoints_taken)
            };
            times.push(ms(t));
            match &serial {
                None => serial = Some((cycles, taken)),
                Some(s) => assert_eq!(
                    *s,
                    (cycles, taken),
                    "{workers} span workers changed the virtual-cycle figures"
                ),
            }
        }
        times.sort_by(f64::total_cmp);
        rows.push(CrParallelRow { workers, cr_ms: estimator.pick(&times), speedup_vs_serial: 0.0 });
    }
    let serial_ms = rows.iter().find(|r| r.workers == 0).expect("serial row measured").cr_ms;
    for row in &mut rows {
        row.speedup_vs_serial = serial_ms / row.cr_ms;
    }
    rows
}

/// `--check`: quick CI gate. Reruns the attack comparison (report
/// equivalence is asserted inside; median of 5 interleaved triples, so a
/// couple of outliers can't flip the gate) and fails if the measured
/// speedup — overall, or superblocks over the block engine alone — drops
/// more than 20% below the committed `BENCH_pipeline.json` figure. The
/// tolerance is wide because medians of identical configurations have been
/// observed ±15% apart on a loaded 1-core runner; 20% still catches the
/// failure modes that matter (a disabled cache layer or a
/// trace-invalidation storm costs 30%+). On hosts with 4+ cores it
/// additionally requires parallel span replay to verify at least 1.4x
/// faster than the serial engine; on smaller hosts that gate is skipped
/// with a note — a 1-core runner cannot demonstrate parallelism.
fn check() {
    let committed: serde_json::Value = serde_json::from_str(
        &std::fs::read_to_string(BENCH_PIPELINE_PATH).expect("read committed BENCH_pipeline.json"),
    )
    .expect("committed BENCH_pipeline.json parses");
    let committed_speedup =
        committed["attack"]["speedup"].as_f64().expect("committed attack.speedup present");
    let committed_sb =
        committed["attack"]["superblock_speedup"].as_f64().expect("committed superblock_speedup present");

    let (attack, _) = attack_comparison(Estimator::Median(5));
    println!(
        "check: reports_identical={} speedup={:.2}x (committed {:.2}x, floor {:.2}x) superblocks={:.2}x (committed {:.2}x, floor {:.2}x)",
        attack.reports_identical,
        attack.speedup,
        committed_speedup,
        committed_speedup * 0.8,
        attack.superblock_speedup,
        committed_sb,
        committed_sb * 0.8,
    );
    if !attack.reports_identical {
        eprintln!("check FAILED: baseline and optimized reports differ");
        std::process::exit(1);
    }
    if attack.speedup < committed_speedup * 0.8 {
        eprintln!(
            "check FAILED: attack-pipeline speedup {:.2}x regressed >20% below committed {:.2}x",
            attack.speedup, committed_speedup
        );
        std::process::exit(1);
    }
    if attack.superblock_speedup < committed_sb * 0.8 {
        eprintln!(
            "check FAILED: superblock speedup {:.2}x regressed >20% below committed {:.2}x",
            attack.superblock_speedup, committed_sb
        );
        std::process::exit(1);
    }

    let n = cores();
    if n >= 4 {
        let workers = n.min(4);
        let rows = cr_sweep(&[0, workers], Estimator::Best(3));
        let speedup = rows.iter().find(|r| r.workers == workers).expect("parallel row").speedup_vs_serial;
        println!("check: CR span replay x{workers} speedup {speedup:.2}x over serial (floor 1.40x)");
        if speedup < 1.4 {
            eprintln!("check FAILED: {workers}-worker CR verification speedup {speedup:.2}x below 1.4x");
            std::process::exit(1);
        }
    } else {
        println!(
            "check: gate skipped: CR parallel speedup ({n} core(s) < 4; the wall-clock gate needs real parallelism)"
        );
    }
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        check();
        return;
    }
    let insns = run_insns();
    let phases: Vec<PhaseTimes> = rnr_bench::workloads().into_iter().map(|w| phase_times(w, insns)).collect();

    let mut t = Table::new(&["workload", "record ms", "CR ms", "AR ms", "escalated"]);
    for p in &phases {
        t.row(vec![
            p.workload.clone(),
            format!("{:.1}", p.record_ms),
            format!("{:.1}", p.cr_ms),
            format!("{:.1}", p.ar_ms),
            p.alarms_escalated.to_string(),
        ]);
    }
    emit("Pipeline phase wall-clock (optimized)", &t);

    // Median-of-11 for the committed figure (the gate reruns the same
    // methodology at Median-of-5): per-pair ratios over interleaved triples
    // cancel most load swings, and the wide sample tightens the median on a
    // noisy shared runner at ~8s of extra wall time.
    // measurement must come from the same estimator or the 10% regression
    // band silently tightens.
    let (attack, block_cache) = attack_comparison(Estimator::Median(11));

    let cr_parallel = cr_sweep(&[0, 1, 2, 4, 8], Estimator::Best(3));
    let mut t = Table::new(&["span workers", "CR ms", "vs serial"]);
    for row in &cr_parallel {
        t.row(vec![
            if row.workers == 0 { "serial".into() } else { row.workers.to_string() },
            format!("{:.1}", row.cr_ms),
            format!("{:.2}x", row.speedup_vs_serial),
        ]);
    }
    emit("CR verification replay: span-worker sweep (identical cycles + digest)", &t);

    let mut t = Table::new(&["config", "wall ms", "speedup", "attacks", "window cycles"]);
    t.row(vec![
        "baseline (no streaming, no caches, stepped, 1 AR)".into(),
        format!("{:.1}", attack.baseline_ms),
        "1.00x".into(),
        attack.attacks_confirmed.to_string(),
        attack.window_cycles.map_or("-".into(), |w| w.to_string()),
    ]);
    t.row(vec![
        "block engine only (superblocks off)".into(),
        format!("{:.1}", attack.blocks_ms),
        format!("{:.2}x", attack.baseline_ms / attack.blocks_ms),
        attack.attacks_confirmed.to_string(),
        attack.window_cycles.map_or("-".into(), |w| w.to_string()),
    ]);
    t.row(vec![
        "optimized (streaming + superblocks + AR pool)".into(),
        format!("{:.1}", attack.optimized_ms),
        format!("{:.2}x", attack.speedup),
        attack.attacks_confirmed.to_string(),
        attack.window_cycles.map_or("-".into(), |w| w.to_string()),
    ]);
    emit("Attack pipeline: baseline vs optimized (identical reports)", &t);
    println!("superblock trace engine: {:.2}x over block engine alone", attack.superblock_speedup);
    println!(
        "block cache: {} hits, {} builds, {} flushes, {} shared imports",
        block_cache.hits, block_cache.builds, block_cache.flushes, block_cache.shared_imports
    );
    println!(
        "trace cache: {} hits, {} builds, {} flushes, {} fallbacks",
        block_cache.trace_hits,
        block_cache.trace_builds,
        block_cache.trace_flushes,
        block_cache.trace_fallbacks
    );

    let density = log_density(insns);
    let mut t = Table::new(&["log form", "bytes", "bytes/insn", "vs framed"]);
    t.row(vec![
        "framed in-memory (transport frames)".into(),
        density.framed_bytes.to_string(),
        format!("{:.4}", density.framed_bytes_per_insn),
        "1.00x".into(),
    ]);
    t.row(vec![
        "compact segments (varint/delta + RLE)".into(),
        density.compact_bytes.to_string(),
        format!("{:.4}", density.compact_bytes_per_insn),
        format!("{:.2}x smaller", density.compaction_ratio),
    ]);
    emit("Input-log density: framed vs durable segment store", &t);

    let host = HostContext { cores: cores(), ar_workers: cores(), cr_span_workers: auto_spans(cores()) };
    let doc = Doc {
        insns_per_workload: insns,
        host,
        phases,
        attack,
        cr_parallel,
        block_cache,
        log_density: density,
    };
    // The `farm` key is owned by the `farm_speed` binary; carry the
    // committed value across this rewrite so the two measurement binaries
    // can be rerun in either order without clobbering each other.
    let mut value = serde_json::to_value(&doc);
    if let Some(farm) = std::fs::read_to_string(BENCH_PIPELINE_PATH)
        .ok()
        .and_then(|old| serde_json::from_str::<serde_json::Value>(&old).ok())
        .and_then(|mut old| take_json_key(&mut old, "farm"))
    {
        set_json_key(&mut value, "farm", farm);
    }
    std::fs::write(BENCH_PIPELINE_PATH, serde_json::to_string_pretty(&value).expect("doc serializes"))
        .expect("write BENCH_pipeline.json");
    println!("wrote {BENCH_PIPELINE_PATH}");
}
