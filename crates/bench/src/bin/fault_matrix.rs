//! Fault-injection matrix: runs the attack pipeline under every seeded
//! fault scenario from `rnr_log::fault_scenarios` and checks the
//! self-healing contract end to end:
//!
//! * every **recoverable** scenario (corrupted / dropped / duplicated /
//!   truncated / delayed transport batches, injected CR and block-engine
//!   divergences, AR panics, a killed AR worker) must complete with a
//!   `to_json()` report **byte-identical** to the fault-free run, and its
//!   `recovery` block must be non-zero (the fault was actually detected
//!   and healed, not silently missed);
//! * the **unrecoverable** scenario (retained store poisoned, so
//!   re-fetching returns the same damage) must fail with the structured
//!   `ReplayError::Unrecoverable` carrying a rewind trail — never panic.
//!
//! Exits nonzero on any violation. Wired into `scripts/check.sh`.
//!
//! With `--parallel`, the whole matrix reruns with checkpoint-partitioned
//! span replay active (`parallel_spans = 2`): every scenario must heal to a
//! report byte-identical to a *clean run of the same configuration* — which
//! is itself byte-identical to the serial report.
//!
//! A final pair of sections reruns the two adversarial guests: the
//! self-modifying JIT workload — the superblock trace engine's hardest
//! input — fault-free with traces on and off (the reports must be
//! byte-identical) and under a corrupted transport batch (which must heal
//! back to the clean report); and the VRT-armed heap-overflow attack
//! (DESIGN.md §15), whose memory-safety conviction and dismissed false
//! positives must survive the superblock knob and a corrupted batch
//! unchanged.
//!
//! With `--farm`, the matrix instead runs every scenario as a replay-farm
//! fleet (DESIGN.md §14): the faulted attack session shares the global
//! worker pool with a quiet sibling, and the contract extends to
//! *isolation* — the faulted session must still heal to the serial clean
//! report, the sibling's report must stay byte-identical to its own clean
//! reference with a quiet recovery block, and a session failing
//! structurally (budget exhaustion) must not disturb the sibling either.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rnr_bench::{attack_session_config, attack_spec, SEED};
use rnr_log::{
    disk_fault_scenarios, fault_scenarios, unrecoverable_scenario, DurableLogConfig, FaultPlan,
    TransportFault, TransportFaultKind,
};
use rnr_replay::ReplayError;
use rnr_safe::{
    BudgetKind, Farm, FarmConfig, FarmError, Pipeline, PipelineConfig, PipelineError, PipelineReport,
    SessionSpec,
};
use rnr_workloads::Workload;

/// The attack pipeline under one fault plan — same workload and knobs as
/// the pipeline equivalence tests, so the fault-free reference exercises
/// alarms, escalation, and a confirmed ROP verdict.
fn run_with(plan: FaultPlan, parallel_spans: usize) -> Result<PipelineReport, PipelineError> {
    Pipeline::new(attack_spec(), attack_session_config(parallel_spans, plan)).run()
}

fn main() {
    // Injected AR panics are part of the matrix; keep their backtraces out
    // of the gate output. Scenario failures are reported explicitly below.
    std::panic::set_hook(Box::new(|_| {}));
    if std::env::args().any(|a| a == "--farm") {
        let failures = farm_matrix();
        if failures > 0 {
            eprintln!("fault matrix (farm) FAILED: {failures} scenario(s)");
            std::process::exit(1);
        }
        println!("fault matrix (farm) passed");
        return;
    }
    let parallel_spans = if std::env::args().any(|a| a == "--parallel") { 2 } else { 0 };
    let run_with = |plan| run_with(plan, parallel_spans);
    println!(
        "fault matrix: {}",
        if parallel_spans > 0 { "parallel span replay (2 workers)" } else { "serial replay" }
    );
    let mut failures = 0u32;

    let reference = run_with(FaultPlan::default()).expect("fault-free attack pipeline completes");
    let reference_json = reference.to_json();
    if reference.recovery.any() {
        println!("FAIL fault-free: recovery block not quiet: {:?}", reference.recovery);
        failures += 1;
    } else {
        println!(
            "fault-free: {} attack(s) confirmed, {} alarm(s) escalated, recovery quiet",
            reference.attacks_confirmed(),
            reference.replay.alarms_escalated
        );
        let b = &reference.block_stats;
        println!(
            "fault-free: block cache {} hits / {} builds / {} shared imports, \
             trace cache {} hits / {} builds / {} fallbacks",
            b.hits, b.builds, b.shared_imports, b.trace_hits, b.trace_builds, b.trace_fallbacks
        );
    }

    for (name, plan) in fault_scenarios(SEED) {
        match catch_unwind(AssertUnwindSafe(|| run_with(plan))) {
            Err(_) => {
                println!("FAIL {name}: panicked (recoverable scenarios must heal)");
                failures += 1;
            }
            Ok(Err(e)) => {
                println!("FAIL {name}: pipeline error: {e}");
                failures += 1;
            }
            Ok(Ok(report)) => {
                let mut bad = Vec::new();
                if report.to_json() != reference_json {
                    bad.push("report differs from fault-free run");
                }
                if !report.recovery.any() {
                    bad.push("no recovery activity recorded (fault missed?)");
                }
                if !report.recovery.failed_cases.is_empty() {
                    bad.push("alarm cases left unresolved");
                }
                if bad.is_empty() {
                    let r = &report.recovery;
                    println!(
                        "ok   {name}: rewinds={} refetched={} healed={} dup_dropped={} ar_retries={} \
                         panics={} workers_lost={} block_fallbacks={}",
                        r.cr_rewinds,
                        r.transport.batches_refetched,
                        r.transport.reorders_healed,
                        r.transport.duplicates_dropped,
                        r.ar_case_retries,
                        r.ar_panics_caught,
                        r.ar_workers_lost,
                        r.block_fallback_spans
                    );
                } else {
                    println!("FAIL {name}: {}", bad.join("; "));
                    failures += 1;
                }
            }
        }
    }

    let (name, plan) = unrecoverable_scenario(SEED);
    match catch_unwind(AssertUnwindSafe(|| run_with(plan))) {
        Err(_) => {
            println!("FAIL {name}: panicked (must fail with a structured error)");
            failures += 1;
        }
        Ok(Ok(_)) => {
            println!("FAIL {name}: unexpectedly succeeded");
            failures += 1;
        }
        Ok(Err(PipelineError::Replay(ReplayError::Unrecoverable { fault, trail }))) => {
            println!("ok   {name}: unrecoverable after {} rewind(s): {fault}", trail.len());
        }
        Ok(Err(e)) => {
            println!("FAIL {name}: wrong error shape (want Unrecoverable): {e}");
            failures += 1;
        }
    }

    failures += durable_section(parallel_spans, &reference_json);
    failures += jit_section(parallel_spans);
    failures += vrt_section(parallel_spans);

    if failures > 0 {
        eprintln!("fault matrix FAILED: {failures} scenario(s)");
        std::process::exit(1);
    }
    println!("fault matrix passed");
}

/// The durable segment store under every disk-fault scenario (DESIGN.md
/// §13): with `durable_log` on, the recording is persisted to sealed
/// segments and the CR's refetch recovery reads disk first. A clean durable
/// run must be byte-identical to the in-memory reference with a quiet
/// recovery block; every disk-fault scenario (torn tail, bit rot, missing
/// segment, short read, failed fsync — each paired with a dropped transport
/// frame that forces a refetch) must heal back to the very same report,
/// falling back to the in-memory retained store when the disk copy is
/// damaged. Each scenario uses its own temp dir, removed on success.
fn durable_section(parallel_spans: usize, reference_json: &str) -> u32 {
    let mut failures = 0u32;
    let run_durable = |tag: &str, plan: FaultPlan| {
        let dir = std::env::temp_dir()
            .join(format!("rnr-fault-matrix-{tag}-p{parallel_spans}-{}", std::process::id()));
        let mut durable = DurableLogConfig::new(dir.clone());
        // One frame per segment: segment indices equal frame sequence
        // numbers, so the plan's `DiskFault { segment: 2 }` damages exactly
        // the frame the transport drops.
        durable.frames_per_segment = 1;
        let cfg =
            PipelineConfig { durable_log: Some(durable), ..attack_session_config(parallel_spans, plan) };
        let result = Pipeline::new(attack_spec(), cfg).run();
        (dir, result)
    };

    let (dir, clean) = run_durable("clean", FaultPlan::default());
    match clean {
        Ok(report) if report.to_json() == reference_json && !report.recovery.any() => {
            println!("ok   durable-clean: persisted run byte-identical, recovery quiet");
            let _ = std::fs::remove_dir_all(&dir);
        }
        Ok(report) => {
            println!(
                "FAIL durable-clean: identical={} quiet={}",
                report.to_json() == reference_json,
                !report.recovery.any()
            );
            failures += 1;
        }
        Err(e) => {
            println!("FAIL durable-clean: pipeline error: {e}");
            failures += 1;
        }
    }

    for (name, plan) in disk_fault_scenarios(SEED) {
        let wants_disk_hit = name == "disk-serves-refetch";
        match catch_unwind(AssertUnwindSafe(|| run_durable(name, plan))) {
            Err(_) => {
                println!("FAIL {name}: panicked (disk faults must heal)");
                failures += 1;
            }
            Ok((_dir, Err(e))) => {
                println!("FAIL {name}: pipeline error: {e}");
                failures += 1;
            }
            Ok((dir, Ok(report))) => {
                let t = &report.recovery.transport;
                let mut bad = Vec::new();
                if report.to_json() != reference_json {
                    bad.push("report differs from fault-free in-memory run");
                }
                if !report.recovery.any() {
                    bad.push("no recovery activity recorded (fault missed?)");
                }
                if wants_disk_hit && t.disk_refetches == 0 {
                    bad.push("refetch never served from disk");
                }
                if !wants_disk_hit && t.disk_fallbacks == 0 {
                    bad.push("damaged disk copy never fell back to memory");
                }
                if bad.is_empty() {
                    println!(
                        "ok   {name}: refetched={} disk_refetches={} disk_fallbacks={}",
                        t.batches_refetched, t.disk_refetches, t.disk_fallbacks
                    );
                    let _ = std::fs::remove_dir_all(&dir);
                } else {
                    println!("FAIL {name}: {}", bad.join("; "));
                    failures += 1;
                }
            }
        }
    }
    failures
}

/// The `--farm` matrix: every seeded scenario run as a two-session fleet on
/// the shared pool — the faulted attack session beside a quiet sibling.
///
/// The farm records sequentially and feeds span replay from the complete
/// log, so the matrix's *transport* scenarios have no wire to damage: those
/// plans are expected to be inert (report identical, recovery quiet). The
/// replay/AR scenarios (CR and block-engine divergences, AR panics and
/// transient divergences, the killed worker) fire exactly as in serial mode
/// and must heal to the serial clean report with recovery activity — while
/// the sibling's report stays byte-identical to its own clean reference
/// with a quiet recovery block. Two more cases check structural isolation:
/// a budget-exhausted session failing beside an untouched sibling, and a
/// farm-owned durable root laying down one segment store per session.
fn farm_matrix() -> u32 {
    let mut failures = 0u32;
    let attack_reference =
        run_with(FaultPlan::default(), 0).expect("serial clean attack pipeline completes").to_json();
    let quiet_cfg = PipelineConfig { duration_insns: 300_000, ..PipelineConfig::default() };
    let quiet_reference = Pipeline::new(Workload::Make.spec(false), quiet_cfg.clone())
        .run()
        .expect("serial clean quiet pipeline completes")
        .to_json();
    let fleet = |plan: FaultPlan| {
        vec![
            SessionSpec::new("attack", attack_spec(), attack_session_config(0, plan)),
            SessionSpec::new("quiet", Workload::Make.spec(false), quiet_cfg.clone()),
        ]
    };
    let farm = Farm::new(FarmConfig::default());

    // A sibling must come through byte-identical and quiet no matter what
    // happens to the attack session; fold that check into every scenario.
    let check_quiet = |name: &str, report: &rnr_safe::FarmReport, failures: &mut u32| match &report
        .session("quiet")
        .expect("quiet session present")
        .result
    {
        Ok(r) if r.to_json() == quiet_reference && !r.recovery.any() => {}
        Ok(r) => {
            println!(
                "FAIL {name}: quiet sibling disturbed (identical={} quiet={})",
                r.to_json() == quiet_reference,
                !r.recovery.any()
            );
            *failures += 1;
        }
        Err(e) => {
            println!("FAIL {name}: quiet sibling failed: {e}");
            *failures += 1;
        }
    };

    for (name, plan) in fault_scenarios(SEED) {
        // Transport faults need the streaming channel the farm never
        // opens; those plans are inert here and the run must be clean.
        let fires_in_farm = !plan.wants_transport_injection();
        let report = farm.run(&fleet(plan));
        check_quiet(name, &report, &mut failures);
        match &report.session("attack").expect("attack session present").result {
            Err(e) => {
                println!("FAIL {name}: attack session failed: {e}");
                failures += 1;
            }
            Ok(r) => {
                let mut bad = Vec::new();
                if r.to_json() != attack_reference {
                    bad.push("report differs from serial clean run");
                }
                if fires_in_farm && !r.recovery.any() {
                    bad.push("no recovery activity recorded (fault missed?)");
                }
                if !fires_in_farm && r.recovery.any() {
                    bad.push("transport plan fired despite sequential recording");
                }
                if !r.recovery.failed_cases.is_empty() {
                    bad.push("alarm cases left unresolved");
                }
                if bad.is_empty() {
                    let rec = &r.recovery;
                    println!(
                        "ok   {name}: {} rewinds={} ar_retries={} panics={} workers_lost={} block_fallbacks={}",
                        if fires_in_farm { "healed," } else { "inert (no transport in farm mode)," },
                        rec.cr_rewinds,
                        rec.ar_case_retries,
                        rec.ar_panics_caught,
                        rec.ar_workers_lost,
                        rec.block_fallback_spans
                    );
                } else {
                    println!("FAIL {name}: {}", bad.join("; "));
                    failures += 1;
                }
            }
        }
    }

    // Structural isolation: the attack session exhausts its AR-slot budget
    // and fails with a typed error; the sibling is untouched.
    let mut sessions = fleet(FaultPlan::default());
    sessions[0].budget.ar_slots = Some(0);
    let report = farm.run(&sessions);
    check_quiet("farm-budget-exhausted", &report, &mut failures);
    match &report.session("attack").expect("attack session present").result {
        Err(FarmError::BudgetExceeded { session, budget: BudgetKind::ArSlots { needed, max: 0 } }) => {
            println!(
                "ok   farm-budget-exhausted: session {session} failed structurally ({needed} case(s) over budget), sibling untouched"
            );
        }
        other => {
            println!("FAIL farm-budget-exhausted: want BudgetExceeded(ArSlots), got {other:?}");
            failures += 1;
        }
    }

    // Farm-owned durable root: each session gets its own segment store
    // directory, and persistence stays report-invisible.
    let root = std::env::temp_dir().join(format!("rnr-fault-matrix-farm-{}", std::process::id()));
    let durable_farm = Farm::new(FarmConfig { durable_root: Some(root.clone()), ..FarmConfig::default() });
    let report = durable_farm.run(&fleet(FaultPlan::default()));
    check_quiet("farm-durable-root", &report, &mut failures);
    let mut bad = Vec::new();
    match &report.session("attack").expect("attack session present").result {
        Ok(r) if r.to_json() == attack_reference => {}
        Ok(_) => bad.push("attack report differs from serial clean run".to_string()),
        Err(e) => bad.push(format!("attack session failed: {e}")),
    }
    for s in 0..2 {
        let dir = root.join(format!("session-{s}"));
        let populated = std::fs::read_dir(&dir).map(|mut entries| entries.next().is_some()).unwrap_or(false);
        if !populated {
            bad.push(format!("per-session store {} missing or empty", dir.display()));
        }
    }
    if bad.is_empty() {
        println!("ok   farm-durable-root: per-session segment stores laid down, reports identical");
        let _ = std::fs::remove_dir_all(&root);
    } else {
        println!("FAIL farm-durable-root: {}", bad.join("; "));
        failures += 1;
    }

    failures
}

/// The self-modifying JIT workload under the trace engine: superblocks must
/// be invisible in the report (on vs off byte-identical), actually engage
/// (trace dispatches observed despite the code churn), and heal a corrupted
/// transport batch back to the clean report.
fn jit_section(parallel_spans: usize) -> u32 {
    let run = |superblocks: bool, plan: FaultPlan| {
        let cfg = PipelineConfig {
            duration_insns: 400_000,
            checkpoint_interval_secs: Some(0.125),
            parallel_spans,
            superblocks,
            fault_plan: plan,
            ..PipelineConfig::default()
        };
        Pipeline::new(Workload::Jit.spec(false), cfg).run()
    };
    let traced = match run(true, FaultPlan::default()) {
        Ok(r) => r,
        Err(e) => {
            println!("FAIL jit-fault-free: pipeline error: {e}");
            return 1;
        }
    };
    let mut failures = 0;
    let b = &traced.block_stats;
    if traced.recovery.any() {
        println!("FAIL jit-fault-free: recovery block not quiet: {:?}", traced.recovery);
        failures += 1;
    }
    if b.trace_hits == 0 {
        println!("FAIL jit-fault-free: trace cache never dispatched on the JIT workload");
        failures += 1;
    }
    match run(false, FaultPlan::default()) {
        Ok(plain) if plain.to_json() == traced.to_json() => {}
        Ok(_) => {
            println!("FAIL jit-superblocks-off: report differs from superblocks-on run");
            failures += 1;
        }
        Err(e) => {
            println!("FAIL jit-superblocks-off: pipeline error: {e}");
            failures += 1;
        }
    }
    // Frame 0 always exists (the JIT log is far sparser than the attack
    // workload's, so the matrix's usual seq-2 target may never stream).
    let corrupt = FaultPlan {
        seed: SEED,
        transport: vec![TransportFault {
            seq: 0,
            kind: TransportFaultKind::CorruptBit,
            poison_retained: false,
        }],
        ..FaultPlan::default()
    };
    match run(true, corrupt) {
        Ok(healed) if healed.to_json() == traced.to_json() && healed.recovery.any() => {
            println!(
                "ok   jit: {} trace hit(s), superblocks report-invisible, corrupt batch healed \
                 (refetched={})",
                b.trace_hits, healed.recovery.transport.batches_refetched
            );
        }
        Ok(healed) => {
            println!(
                "FAIL jit-corrupt-batch: healed={} identical={}",
                healed.recovery.any(),
                healed.to_json() == traced.to_json()
            );
            failures += 1;
        }
        Err(e) => {
            println!("FAIL jit-corrupt-batch: pipeline error: {e}");
            failures += 1;
        }
    }
    failures
}

/// The second detector family through the healing contract: the VRT-armed
/// heap-overflow attack (DESIGN.md §15) must convict with zero false
/// negatives and dismiss the churn workload's false positives, stay
/// byte-identical with superblocks off, and heal a corrupted transport
/// batch back to the clean report — conviction included.
fn vrt_section(parallel_spans: usize) -> u32 {
    use rnr_safe::VerdictSummary;
    let run = |superblocks: bool, plan: FaultPlan| {
        let (spec, _attack) = rnr_attacks::mount_heap_overflow(&rnr_workloads::WorkloadParams::default(), 40);
        let cfg = PipelineConfig {
            duration_insns: 600_000,
            checkpoint_interval_secs: Some(0.125),
            parallel_spans,
            superblocks,
            vrt: Some(rnr_safe::vrt::VrtParams::default()),
            fault_plan: plan,
            ..PipelineConfig::default()
        };
        Pipeline::new(spec, cfg).run()
    };
    let clean = match run(true, FaultPlan::default()) {
        Ok(r) => r,
        Err(e) => {
            println!("FAIL vrt-fault-free: pipeline error: {e}");
            return 1;
        }
    };
    let mut failures = 0;
    let convicted = clean
        .resolutions
        .iter()
        .filter(|r| {
            matches!(&r.summary, VerdictSummary::MemoryViolation { class, .. } if class == "heap-overflow")
        })
        .count();
    let dismissed = clean
        .resolutions
        .iter()
        .filter(|r| matches!(&r.summary, VerdictSummary::FalsePositive { .. }))
        .count();
    if convicted == 0 {
        println!("FAIL vrt-fault-free: heap overflow not convicted (zero-FN contract broken)");
        failures += 1;
    }
    if dismissed == 0 {
        println!("FAIL vrt-fault-free: churn workload raised no dismissed false positives");
        failures += 1;
    }
    if clean.recovery.any() {
        println!("FAIL vrt-fault-free: recovery block not quiet: {:?}", clean.recovery);
        failures += 1;
    }
    match run(false, FaultPlan::default()) {
        Ok(plain) if plain.to_json() == clean.to_json() => {}
        Ok(_) => {
            println!("FAIL vrt-superblocks-off: report differs from superblocks-on run");
            failures += 1;
        }
        Err(e) => {
            println!("FAIL vrt-superblocks-off: pipeline error: {e}");
            failures += 1;
        }
    }
    let corrupt = FaultPlan {
        seed: SEED,
        transport: vec![TransportFault {
            seq: 0,
            kind: TransportFaultKind::CorruptBit,
            poison_retained: false,
        }],
        ..FaultPlan::default()
    };
    match run(true, corrupt) {
        Ok(healed) if healed.to_json() == clean.to_json() && healed.recovery.any() => {
            println!(
                "ok   vrt: {convicted} heap-overflow conviction(s), {dismissed} FP(s) dismissed, \
                 superblocks report-invisible, corrupt batch healed (refetched={})",
                healed.recovery.transport.batches_refetched
            );
        }
        Ok(healed) => {
            println!(
                "FAIL vrt-corrupt-batch: healed={} identical={}",
                healed.recovery.any(),
                healed.to_json() == clean.to_json()
            );
            failures += 1;
        }
        Err(e) => {
            println!("FAIL vrt-corrupt-batch: pipeline error: {e}");
            failures += 1;
        }
    }
    failures
}
