//! Ablations behind the §4 design choices:
//!
//! 1. Detector precision: the §4.2 *basic* RAS ("suffers from many false
//!    alarms") vs whitelist-only vs the full extension set.
//! 2. RAS capacity: how the paper's 48-entry choice trades eviction traffic
//!    against underflow alarms.

use rnr_bench::{emit, run_insns, Table, SEED};
use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_workloads::Workload;

fn main() {
    // --- Ablation 1: which extension kills which false alarms ------------
    let mut t =
        Table::new(&["workload", "basic RAS alarms/1M (§4.2)", "+whitelist (§4.4)", "+BackRAS too (§4.3)"]);
    for w in Workload::ALL {
        let spec = w.spec(false);
        let mut rc = RecordConfig::new(RecordMode::Rec, SEED, run_insns());
        rc.functional_ras_analysis = true;
        let out = Recorder::new(&spec, rc).unwrap().run();
        let fig8 = out.fig8.expect("functional analysis on");
        // The lockstep twins expose the counterfactuals: every suppressed
        // alarm would have fired on a lesser design.
        let basic = fig8.whitelist_suppressed + fig8.backras_suppressed + fig8.passed();
        let whitelist_only = fig8.backras_suppressed + fig8.passed();
        let full = fig8.passed();
        t.row(vec![
            w.label().to_string(),
            format!("{:.1}", fig8.per_million(basic)),
            format!("{:.1}", fig8.per_million(whitelist_only)),
            format!("{:.2}", fig8.per_million(full)),
        ]);
    }
    emit("Ablation 1: false alarms per 1M instructions by RAS design point", &t);
    println!("§4.2: \"this basic design does not miss an attack, but suffers from many false alarms\" —");
    println!("each extension removes its class; the remainder goes to the replayers.\n");

    // --- Ablation 2: RAS capacity ---------------------------------------
    let mut t = Table::new(&["capacity", "evictions", "alarms (apache)", "alarms (make)"]);
    for capacity in [8usize, 16, 32, 48, 64, 96] {
        let run = |w: Workload| {
            let spec = w.spec(false);
            let mut rc = RecordConfig::new(RecordMode::Rec, SEED, run_insns() / 3);
            rc.ras_capacity = capacity;
            Recorder::new(&spec, rc).unwrap().run()
        };
        let apache = run(Workload::Apache);
        let make = run(Workload::Make);
        t.row(vec![
            format!("{capacity}"),
            format!("{}", apache.ras_counters.evictions + make.ras_counters.evictions),
            format!("{}", apache.alarms),
            format!("{}", make.alarms),
        ]);
    }
    emit("Ablation 2: RAS capacity vs eviction/alarm traffic", &t);
    println!("The paper simulates 48 entries (§7.5; POWER7/8 ship 32/64): deep call");
    println!("chains stop underflowing well before that, so alarms plateau near zero");
    println!("while smaller stacks flood the CR with evict/underflow pairs.");
}
