//! Figure 5: execution time of recording setups (a) and breakdown of the
//! `Rec` overhead over `NoRec` (b).

use rnr_bench::{emit, record, workloads, Table, BREAKDOWN};
use rnr_hypervisor::RecordMode;

fn main() {
    let modes = [RecordMode::NoRecPv, RecordMode::NoRec, RecordMode::RecNoRas, RecordMode::Rec];
    let mut fig5a = Table::new(&["workload", "NoRecPV", "NoRec", "RecNoRAS", "Rec"]);
    let mut fig5b = Table::new(&["workload", "rdtsc %", "pio/mmio %", "interrupt %", "network %", "RAS %"]);
    let mut means = [0.0f64; 4];
    let mut mean_break = [0.0f64; 5];

    for w in workloads() {
        let outs: Vec<_> = modes.iter().map(|&m| record(w, m)).collect();
        // Normalize by cycles per completed guest operation: the modes run
        // the same instruction budget but (especially PV vs emulated I/O)
        // complete different amounts of work in it.
        let per_op = |o: &rnr_hypervisor::RecordOutcome| o.cycles as f64 / o.ops.max(1) as f64;
        let norec = per_op(&outs[1]);
        let normalized: Vec<f64> = outs.iter().map(|o| per_op(o) / norec).collect();
        for (m, n) in means.iter_mut().zip(&normalized) {
            *m += n / 5.0;
        }
        fig5a.row(
            std::iter::once(w.label().to_string())
                .chain(normalized.iter().map(|n| format!("{n:.3}")))
                .collect(),
        );

        // Breakdown of (Rec − NoRec) into event classes (Figure 5(b)).
        let overhead = outs[3].attribution.overhead_vs(&outs[1].attribution);
        let total: u64 = BREAKDOWN.iter().map(|&c| overhead.for_category(c)).sum();
        let mut cells = vec![w.label().to_string()];
        for (i, &c) in BREAKDOWN.iter().enumerate() {
            let pct = if total == 0 { 0.0 } else { overhead.for_category(c) as f64 * 100.0 / total as f64 };
            mean_break[i] += pct / 5.0;
            cells.push(format!("{pct:.1}"));
        }
        fig5b.row(cells);
    }
    fig5a.row(std::iter::once("mean".to_string()).chain(means.iter().map(|m| format!("{m:.3}"))).collect());
    fig5b.row(
        std::iter::once("mean".to_string()).chain(mean_break.iter().map(|m| format!("{m:.1}"))).collect(),
    );

    emit("Figure 5(a): execution time of recording setups (normalized to NoRec)", &fig5a);
    emit("Figure 5(b): breakdown of the Rec overhead over NoRec", &fig5b);
    println!("paper: Rec mean ≈ 1.27x NoRec, RecNoRAS ≈ 1.24x; disabling PV costs 25-150%;");
    println!("paper: rdtsc dominates the breakdown, esp. fileio/mysql; RAS save/restore ≈ 4% of exec time.");
}
