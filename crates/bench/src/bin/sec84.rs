//! §8.4: time window to respond to an attack — window length, log
//! generated, checkpoints retained — swept over checkpoint intervals.

use rnr_attacks::mount_kernel_rop;
use rnr_bench::{emit, Table};
use rnr_safe::{Pipeline, PipelineConfig};
use rnr_workloads::WorkloadParams;

fn main() {
    let mut t = Table::new(&[
        "checkpoint interval (s)",
        "window (s)",
        "log in window (bytes)",
        "checkpoints needed",
        "checkpoints live (CR)",
    ]);
    for interval in [2.0, 1.0, 0.25, 0.125] {
        let (spec, _plan) = mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).unwrap();
        let cfg = PipelineConfig {
            duration_insns: 900_000,
            checkpoint_interval_secs: Some(interval),
            ..PipelineConfig::default()
        };
        let report = Pipeline::new(spec, cfg).run().expect("pipeline");
        let w = report.detection.expect("attack detected");
        t.row(vec![
            format!("{interval}"),
            format!("{:.3}", w.window_secs),
            format!("{}", w.log_bytes_in_window),
            format!("{}", w.checkpoints_needed),
            format!("{}", report.replay.checkpoints_live_max),
        ]);
    }
    emit("Section 8.4: time window to respond to an attack", &t);
    println!("paper: the window is on average a few seconds and the log several MBs; RnR-Safe needs");
    println!("paper: to keep only window-duration + 2 checkpoints unless longer history is wanted.");
}
