//! Table 3: benchmarks executed (paper parameters vs synthetic event-mix
//! equivalents).

use rnr_bench::{emit, Table};
use rnr_workloads::{Workload, WorkloadParams};

fn main() {
    let p = WorkloadParams::default();
    let mut t = Table::new(&["benchmark", "paper parameters", "synthetic equivalent"]);
    for w in Workload::ALL {
        let repro = match w {
            Workload::Apache => format!(
                "{} workers; packets every ~{} cycles, {}–{} B, MTU burst every {}",
                p.workers, p.net_mean, p.packet_sizes.0, p.packet_sizes.1, p.large_every
            ),
            Workload::Fileio => "random 4-sector reads + writes, 4 rdtsc per op".to_string(),
            Workload::Make => "job spawn/exit churn, setjmp/longjmp recovery, header reads".to_string(),
            Workload::Mysql => {
                "B-tree lookups + query compute, 2 rdtsc per transaction, 1/16 disk reads".to_string()
            }
            Workload::Radiosity => "pure compute: recursion depth 22 + xorshift loops".to_string(),
            // Not part of Table 3 (Workload::ALL is the paper's five).
            _ => unreachable!("{} is not a paper benchmark", w.label()),
        };
        t.row(vec![w.label().to_string(), w.paper_parameters().to_string(), repro]);
    }
    emit("Table 3: benchmarks executed", &t);
}
