//! Figure 10 / §6: mount the kernel ROP attack end to end and print the
//! full anatomy — payload, alarm, verdict, gadget chain, forensics.

use rnr_attacks::{mount_kernel_rop, GadgetScanner};
use rnr_safe::{Pipeline, PipelineConfig, Verdict};
use rnr_workloads::WorkloadParams;

fn main() {
    let (spec, plan) =
        mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).expect("gadgets available");

    println!("## Figure 10 / §6: the kernel ROP attack\n");
    println!("### (a) Gadget scan of the kernel image");
    let scanner = GadgetScanner::new(spec.kernel.image(), 2);
    println!("  ret instructions in image: {}", scanner.ret_count());
    println!("  G1 {:#x}: pop r1; ret", plan.g1);
    println!("  G2 {:#x}: ld r9, [r1+0]; ret", plan.g2);
    println!("  G3 {:#x}: callr r9 (followed by sysret)", plan.g3);
    println!("  function-pointer slot {:#x} -> grant_root {:#x}", plan.fptr_slot, plan.grant_root);

    println!("\n### (d) The ROP payload (network packet)");
    for (i, w) in plan.payload.chunks(8).enumerate() {
        let v = u64::from_le_bytes(w.try_into().unwrap());
        let what = match i {
            0..=15 => "junk (fills the 128-byte buffer)",
            16 => "G1 — overwrites the return address",
            17 => "&kfunc_table[0] (popped into r1)",
            18 => "G2 — r9 = grant_root",
            19 => "G3 — call it",
            20 => "sysret flags (user | IE)",
            21 => "getaway target (ap_loop)",
            _ => "terminator",
        };
        if !(1..=14).contains(&i) {
            println!("  word {i:2}: {v:#018x}  {what}");
        }
    }

    println!("\n### Recording + detection + resolution");
    let config = PipelineConfig {
        duration_insns: 900_000,
        checkpoint_interval_secs: Some(0.125),
        ..PipelineConfig::default()
    };
    let report = Pipeline::new(spec, config).run().expect("pipeline runs");
    println!("  alarms recorded: {}", report.record.alarms);
    println!(
        "  CR: {} alarms seen, {} underflows cancelled, {} escalated",
        report.replay.alarms_seen, report.replay.underflows_cancelled, report.replay.alarms_escalated
    );
    println!("  attacks confirmed: {}", report.attacks_confirmed());
    println!("  privilege flag after recorded run: {:#x} (continue policy)", report.record.priv_flag);

    for r in report.resolutions.iter().filter(|r| r.verdict.is_attack()).take(1) {
        let Verdict::RopAttack(rep) = &r.verdict else { unreachable!() };
        println!("\n### Alarm replayer's attack characterization");
        println!("  vulnerable procedure: {:?} (ret at {:#x})", rep.vulnerable_symbol, rep.ret_pc);
        println!("  hijacked to: {:#x}", rep.actual_target);
        println!("  call site (top of simulated RAS): {:?}", rep.call_site.map(|a| format!("{a:#x}")));
        println!("  thread: {}", rep.tid);
        println!("  privilege flag at alarm point: {:#x} (state unpolluted)", rep.priv_flag_at_alarm);
        println!("  decoded stack payload:");
        for g in &rep.gadget_chain {
            println!(
                "    [{:#x}] {:#018x}  {:<14} {}",
                g.stack_addr,
                g.value,
                g.symbol.as_deref().unwrap_or("-"),
                g.listing.as_deref().unwrap_or("-")
            );
        }
    }

    if let Some(w) = &report.detection {
        println!("\n### §8.4 detection window");
        println!("  window: {:.3} virtual seconds ({} cycles)", w.window_secs, w.window_cycles);
        println!("  log generated in the window: {} bytes", w.log_bytes_in_window);
        println!("  checkpoints to retain: {}", w.checkpoints_needed);
    }
}
