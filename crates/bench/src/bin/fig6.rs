//! Figure 6: input log generation rate (a) and BackRAS save/restore
//! bandwidth (b).

use rnr_bench::{emit, mb_per_sec, record, workloads, Table};
use rnr_hypervisor::RecordMode;

fn main() {
    let mut t = Table::new(&["workload", "log rate (MB/s)", "network share %", "BackRAS bw (MB/s)"]);
    for w in workloads() {
        let out = record(w, RecordMode::Rec);
        let rate = mb_per_sec(out.log.total_bytes(), out.cycles);
        let net = out.log.bytes_for(rnr_log::Category::Network);
        let share =
            if out.log.total_bytes() == 0 { 0.0 } else { net as f64 * 100.0 / out.log.total_bytes() as f64 };
        let backras = mb_per_sec(out.ras_counters.backras_bytes(), out.cycles);
        t.row(vec![
            w.label().to_string(),
            format!("{rate:.3}"),
            format!("{share:.1}"),
            format!("{backras:.3}"),
        ]);
    }
    emit("Figure 6: input log rate (a) and BackRAS bandwidth (b)", &t);
    println!("paper: apache has the highest log rate (≈4 MB/s, network payloads); BackRAS bandwidth is small (<1 MB/s).");
}
