//! Replay-farm fleet throughput: N concurrent sessions on the shared
//! global worker pool vs the same N pipelines run serially (DESIGN.md §14).
//! Like `pipeline_speed`, this binary measures *host* time — every
//! session's report is asserted byte-identical between the farm and its
//! serial reference, which is what makes the wall-clock comparison fair.
//!
//! Updates the `farm` key of `BENCH_pipeline.json` at the repository root
//! (read-modify-write; every other key is owned by `pipeline_speed` and
//! left untouched).
//!
//! With `--check`, runs a reduced comparison and gates:
//! * per-session report identity between farm and serial runs (always);
//! * fleet speedup ≥ 1.3x over serial on hosts with 4+ cores — on smaller
//!   hosts that gate prints `gate skipped: <reason>` instead, since a
//!   1-core pool cannot demonstrate cross-session parallelism.

use std::time::Instant;

use rnr_bench::{
    assert_reports_identical, attack_session_config, attack_spec, cores, emit, ms, percentile, set_json_key,
    Estimator, Table, BENCH_PIPELINE_PATH,
};
use rnr_log::FaultPlan;
use rnr_safe::{Farm, FarmConfig, Pipeline, PipelineConfig, SessionSpec};
use rnr_workloads::Workload;

/// The measured fleet: one alarm-storming attack session beside five quiet
/// workloads of assorted lengths, so the scheduler has genuinely uneven
/// lanes to balance.
fn fleet_sessions() -> Vec<SessionSpec> {
    let quiet = |name: &str, workload: Workload, insns: u64| {
        let config = PipelineConfig { duration_insns: insns, ..PipelineConfig::default() };
        SessionSpec::new(name, workload.spec(false), config)
    };
    vec![
        SessionSpec::new("attack", attack_spec(), attack_session_config(0, FaultPlan::default())),
        quiet("mysql", Workload::Mysql, 600_000),
        quiet("make", Workload::Make, 500_000),
        quiet("jit", Workload::Jit, 400_000),
        quiet("radiosity", Workload::Radiosity, 500_000),
        quiet("fileio", Workload::Fileio, 400_000),
    ]
}

/// One serial pass: every session run to completion as its own
/// [`Pipeline`], one after another, on the calling thread. Returns the
/// per-session report JSONs (in fleet order) and the total wall-clock.
fn serial_pass(sessions: &[SessionSpec]) -> (Vec<String>, f64) {
    let t = Instant::now();
    let reports = sessions
        .iter()
        .map(|s| {
            Pipeline::new(s.vm.clone(), s.config.clone())
                .run()
                .unwrap_or_else(|e| panic!("serial session {}: {e}", s.name))
                .to_json()
        })
        .collect();
    (reports, ms(t))
}

/// One farm pass over the same sessions. Returns the per-session report
/// JSONs (fleet order), per-session latencies, total retired instructions,
/// and the fleet wall-clock.
fn farm_pass(farm: &Farm, sessions: &[SessionSpec]) -> (Vec<String>, Vec<f64>, u64, f64) {
    let report = farm.run(sessions);
    let mut jsons = Vec::with_capacity(report.sessions.len());
    let mut latencies = Vec::with_capacity(report.sessions.len());
    let mut retired = 0u64;
    for outcome in &report.sessions {
        let r = outcome.result.as_ref().unwrap_or_else(|e| panic!("farm session {}: {e}", outcome.name));
        retired += r.record.retired;
        jsons.push(r.to_json());
        latencies.push(outcome.wall_ms);
    }
    (jsons, latencies, retired, report.wall_ms)
}

/// The committed fleet figures.
#[derive(Debug, serde::Serialize)]
struct FarmBench {
    sessions: usize,
    workers: usize,
    serial_ms: f64,
    farm_ms: f64,
    /// Estimator's pick over per-pair serial/farm ratios (load swings hit
    /// both members of an interleaved pair, so they cancel out of the
    /// ratio).
    speedup: f64,
    sessions_per_sec: f64,
    aggregate_insns_per_sec: f64,
    latency_p50_ms: f64,
    latency_p95_ms: f64,
    reports_identical: bool,
}

/// Measures the fleet comparison: serial and farm passes interleaved in
/// pairs, per-session identity asserted on every pair.
fn fleet_comparison(estimator: Estimator) -> FarmBench {
    let sessions = fleet_sessions();
    let workers = cores();
    let farm = Farm::new(FarmConfig { workers, ..FarmConfig::default() });
    let mut serial_times = Vec::new();
    let mut farm_times = Vec::new();
    let mut ratios = Vec::new();
    let mut last = None;
    for _ in 0..estimator.repeats() {
        let (serial_jsons, serial_ms) = serial_pass(&sessions);
        let (farm_jsons, latencies, retired, farm_ms) = farm_pass(&farm, &sessions);
        for (i, (serial, farm)) in serial_jsons.iter().zip(&farm_jsons).enumerate() {
            let context = format!("farm session `{}`", sessions[i].name);
            assert_reports_identical(&context, serial, farm);
        }
        serial_times.push(serial_ms);
        farm_times.push(farm_ms);
        ratios.push(serial_ms / farm_ms);
        last = Some((latencies, retired));
    }
    serial_times.sort_by(f64::total_cmp);
    farm_times.sort_by(f64::total_cmp);
    ratios.sort_by(f64::total_cmp);
    let (mut latencies, retired) = last.expect("at least one repeat");
    latencies.sort_by(f64::total_cmp);
    let farm_ms = estimator.pick(&farm_times);
    FarmBench {
        sessions: sessions.len(),
        workers,
        serial_ms: estimator.pick(&serial_times),
        farm_ms,
        speedup: estimator.pick(&ratios),
        sessions_per_sec: sessions.len() as f64 / (farm_ms / 1e3),
        aggregate_insns_per_sec: retired as f64 / (farm_ms / 1e3),
        latency_p50_ms: percentile(&latencies, 50.0),
        latency_p95_ms: percentile(&latencies, 95.0),
        reports_identical: true,
    }
}

/// `--check`: CI gate. Identity is asserted inside the comparison on every
/// pair; the speedup floor only applies on hosts that can actually
/// demonstrate cross-session parallelism.
fn check() {
    let bench = fleet_comparison(Estimator::Median(3));
    println!(
        "check: reports_identical={} fleet speedup {:.2}x (farm {:.0} ms vs serial {:.0} ms, {} workers)",
        bench.reports_identical, bench.speedup, bench.farm_ms, bench.serial_ms, bench.workers
    );
    let n = cores();
    if n >= 4 {
        if bench.speedup < 1.3 {
            eprintln!(
                "check FAILED: fleet speedup {:.2}x below the 1.3x floor on a {n}-core host",
                bench.speedup
            );
            std::process::exit(1);
        }
        println!("check: fleet speedup {:.2}x >= 1.3x floor", bench.speedup);
    } else {
        println!(
            "check: gate skipped: fleet speedup floor ({n} core(s) < 4; a shared pool this small cannot demonstrate cross-session parallelism)"
        );
    }
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        check();
        return;
    }
    let bench = fleet_comparison(Estimator::Median(5));

    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["sessions".into(), bench.sessions.to_string()]);
    t.row(vec!["pool workers".into(), bench.workers.to_string()]);
    t.row(vec!["serial total".into(), format!("{:.1} ms", bench.serial_ms)]);
    t.row(vec!["farm total".into(), format!("{:.1} ms", bench.farm_ms)]);
    t.row(vec!["fleet speedup".into(), format!("{:.2}x", bench.speedup)]);
    t.row(vec!["sessions/sec".into(), format!("{:.2}", bench.sessions_per_sec)]);
    t.row(vec!["aggregate insns/sec".into(), format!("{:.3}M", bench.aggregate_insns_per_sec / 1e6)]);
    t.row(vec!["session latency p50".into(), format!("{:.1} ms", bench.latency_p50_ms)]);
    t.row(vec!["session latency p95".into(), format!("{:.1} ms", bench.latency_p95_ms)]);
    emit("Replay farm: fleet vs serial (byte-identical per-session reports)", &t);

    // Read-modify-write: only the `farm` key belongs to this binary.
    let mut doc: serde_json::Value = std::fs::read_to_string(BENCH_PIPELINE_PATH)
        .ok()
        .and_then(|old| serde_json::from_str(&old).ok())
        .unwrap_or_else(|| serde_json::json!({}));
    set_json_key(&mut doc, "farm", serde_json::to_value(&bench));
    std::fs::write(BENCH_PIPELINE_PATH, serde_json::to_string_pretty(&doc).expect("doc serializes"))
        .expect("write BENCH_pipeline.json");
    println!("updated `farm` in {BENCH_PIPELINE_PATH}");
}
