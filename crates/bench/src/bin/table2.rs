//! Table 2: system configuration for the performance evaluation (paper vs
//! simulator).

use rnr_bench::{emit, Table};

fn main() {
    let mut t = Table::new(&["setting", "paper", "this reproduction"]);
    for row in rnr_safe::table2::rows() {
        t.row(vec![row.name.to_string(), row.paper.to_string(), row.repro]);
    }
    emit("Table 2: system configuration", &t);
}
