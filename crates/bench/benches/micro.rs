//! Criterion micro-benchmarks: the component costs behind the design
//! choices DESIGN.md calls out (RAS operations, BackRAS traffic, log codec,
//! copy-on-write checkpointing, gadget scanning, record/replay throughput).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rnr_guest::KernelBuilder;
use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_log::{InputLog, Record};
use rnr_machine::{Memory, PAGE_SIZE};
use rnr_ras::{BackRasTable, RasConfig, RasUnit, ShadowRas, ThreadId, Whitelists};
use rnr_replay::{ReplayConfig, Replayer};
use rnr_workloads::Workload;

fn bench_ras(c: &mut Criterion) {
    let mut g = c.benchmark_group("ras");
    g.bench_function("push_pop_hit", |b| {
        let mut unit = RasUnit::new(RasConfig::extended(48));
        b.iter(|| {
            unit.on_call(0x1008);
            std::hint::black_box(unit.on_ret(0x2000, 0x1008));
        });
    });
    g.bench_function("backras_save_restore_48", |b| {
        let mut unit = RasUnit::new(RasConfig::extended(48));
        for i in 0..48 {
            unit.on_call(0x1000 + i * 8);
        }
        let mut table = BackRasTable::new();
        b.iter(|| {
            let saved = unit.save_backras().unwrap();
            table.save(ThreadId(1), saved);
            let entry = table.load(ThreadId(1));
            unit.restore_backras(&entry);
        });
    });
    g.bench_function("shadow_ras_call_ret", |b| {
        let mut shadow = ShadowRas::new(ThreadId(1), Whitelists::new());
        b.iter(|| {
            shadow.on_call(0x1008, 0x8000);
            std::hint::black_box(shadow.on_ret(0x2000, 0x1008, 0x8000));
        });
    });
    g.finish();
}

fn bench_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("log");
    let sample: InputLog = (0..1000)
        .map(|i| match i % 3 {
            0 => Record::Rdtsc { value: i },
            1 => Record::Interrupt { irq: (i % 3) as u8, at_insn: i },
            _ => Record::Dma {
                source: rnr_log::DmaSource::Nic,
                addr: 0xF_0000,
                data: vec![0xab; 256],
                at_insn: i,
            },
        })
        .collect();
    g.throughput(Throughput::Bytes(sample.total_bytes()));
    g.bench_function("encode_1000_records", |b| {
        b.iter(|| std::hint::black_box(sample.to_bytes()));
    });
    let bytes = sample.to_bytes();
    g.bench_function("decode_1000_records", |b| {
        b.iter(|| std::hint::black_box(InputLog::from_bytes(bytes.clone()).unwrap()));
    });
    g.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint");
    g.bench_function("snapshot_4mib", |b| {
        let mem = Memory::new(4 << 20);
        b.iter(|| std::hint::black_box(mem.snapshot_pages()));
    });
    g.bench_function("cow_first_write_after_snapshot", |b| {
        b.iter_batched(
            || {
                let mut mem = Memory::new(4 << 20);
                mem.write_u64(0, 1).unwrap();
                let snap = mem.snapshot_pages();
                mem.begin_epoch();
                (mem, snap)
            },
            |(mut mem, snap)| {
                // First write to a shared page copies it.
                mem.write_u64(PAGE_SIZE as u64 * 100, 7).unwrap();
                std::hint::black_box((mem, snap));
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_gadget_scan(c: &mut Criterion) {
    let kernel = KernelBuilder::new().build();
    let mut g = c.benchmark_group("attacks");
    g.throughput(Throughput::Bytes(kernel.image().len() as u64));
    g.bench_function("gadget_scan_kernel", |b| {
        b.iter(|| {
            let scanner = rnr_attacks::GadgetScanner::new(kernel.image(), 2);
            std::hint::black_box(scanner.scan().len());
        });
    });
    g.finish();
}

fn bench_record_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("system");
    g.sample_size(10);
    const INSNS: u64 = 100_000;
    g.throughput(Throughput::Elements(INSNS));
    g.bench_function("record_mysql_100k_insns", |b| {
        let spec = Workload::Mysql.spec(false);
        b.iter(|| {
            let out = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 42, INSNS)).unwrap().run();
            std::hint::black_box(out.cycles);
        });
    });
    g.bench_function("replay_mysql_100k_insns", |b| {
        let spec = Workload::Mysql.spec(false);
        let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 42, INSNS)).unwrap().run();
        let log = Arc::clone(&rec.log);
        b.iter(|| {
            let out = Replayer::new(&spec, Arc::clone(&log), ReplayConfig::default()).run().unwrap();
            std::hint::black_box(out.cycles);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_ras, bench_log, bench_checkpoint, bench_gadget_scan, bench_record_replay);
criterion_main!(benches);
