//! # rnr-vrt: a Variable Record Table–style memory-safety detector
//!
//! The second hardware detector family of the reproduction (DESIGN.md §15),
//! modeled on "Variable Record Table: A Unified Hardware-Assisted Framework
//! for Runtime Security". Where [`rnr-ras`](../rnr_ras/index.html) watches
//! control flow, the VRT watches **data writes**: a small bounded table of
//! live heap-region extents plus a ring of recently returned stack-frame
//! windows, checked on every store. Like the RAS it is deliberately
//! **cheap and noisy** — sound for the attacks it targets (no false
//! negatives by construction, see below) but happy to raise false alarms,
//! because RnR-Safe's replay machinery resolves every alarm precisely in
//! the Alarm Replayer.
//!
//! ## What the hardware tracks
//!
//! * **Heap coverage** — the guest kernel declares each live allocation
//!   through a PIO doorbell ([`rnr-machine`](../rnr_machine/index.html)'s
//!   `PORT_VRT_*`). The table stores only the *granule-rounded interior*
//!   of the region: [`coverage`] rounds the base **up** and the end
//!   **down** to [`VrtParams::granule`], so partial head/tail granules are
//!   never covered. A store into the heap window whose first byte lands in
//!   uncovered ground raises a [`VrtKind::Heap`] alarm.
//! * **Returned stack windows** — calls and returns maintain a bounded
//!   frame stack of `(entry_sp, min_sp)` extents; a return whose frame
//!   spanned at least [`VrtParams::min_frame`] bytes files the dead window
//!   `[min_sp, entry_sp)` into a small ring. A later store landing inside
//!   a filed window raises a [`VrtKind::Stack`] alarm and retires the
//!   window (one alarm per window).
//!
//! ## The noisy-rule inventory (why false positives happen)
//!
//! * **Coarse bounds** — coverage excludes partial granules, so a benign
//!   write into a live region's unaligned head or tail granule alarms.
//! * **Capacity eviction** — the table is FIFO-bounded; a benign write
//!   into a live-but-evicted region alarms.
//! * **Stale frames** — the ring keeps windows with no liveness tracking;
//!   ordinary frame reuse (and `longjmp`, which abandons frames without
//!   returning through them) leaves windows that overlap perfectly live
//!   stack, so benign stores alarm.
//!
//! ## The zero-false-negative argument (heap overflow)
//!
//! The guest allocator places regions in fixed slots whose stride leaves an
//! inter-slot gap of at least two granules. Gap bytes are never part of any
//! declared region, so no table entry — including the shadow entries an
//! alarm inserts — ever covers them *before the first overflowing store
//! arrives*: shadow coverage is only created *by* an alarm on that granule.
//! A linear overflow past a slot therefore puts the first byte of some
//! store into an uncovered gap granule, which alarms unconditionally.
//! Alarm **shadow entries** then bound the storm: the alarmed granule is
//! covered afterwards, so repeats of the same overflow alarm at most once
//! per distinct granule, and the Alarm Replayer proves the verdict from
//! the guest's precise allocation table.
//!
//! ## Example
//!
//! ```
//! use rnr_vrt::{VrtKind, VrtParams, VrtUnit};
//!
//! let p = VrtParams::default();
//! let mut vrt = VrtUnit::new(p.clone());
//! vrt.declare(p.heap_lo + 8, 256);             // unaligned live region
//! let sp = p.stack_hi - 64;
//! assert_eq!(vrt.on_store(p.heap_lo + 8, sp), Some(VrtKind::Heap)); // head granule: coarse-bounds FP
//! assert_eq!(vrt.on_store(p.heap_lo + 64, sp), None);              // interior granule: covered
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;

use rnr_isa::Addr;

/// Geometry and sizing of the [`VrtUnit`].
///
/// The watch windows default to the reference guest's layout (16 KiB
/// kernel stacks below `0x14_0000`, kernel heap at `0x16_0000`); pipelines
/// targeting a different guest override them.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct VrtParams {
    /// First heap address the unit watches (inclusive).
    pub heap_lo: Addr,
    /// First address past the watched heap window.
    pub heap_hi: Addr,
    /// First stack address the unit watches (inclusive).
    pub stack_lo: Addr,
    /// First address past the watched stack window.
    pub stack_hi: Addr,
    /// Heap-table capacity in entries (live regions + alarm shadows).
    pub capacity: usize,
    /// Coverage granule in bytes; bases round up and ends round down to it.
    pub granule: u64,
    /// Returned-window ring capacity.
    pub ring: usize,
    /// Frame-stack depth bound; the oldest frame is dropped past it.
    pub frames: usize,
    /// Minimum frame span (bytes) for a returned window to enter the ring.
    pub min_frame: u64,
}

impl Default for VrtParams {
    fn default() -> Self {
        VrtParams {
            heap_lo: 0x16_0000,
            heap_hi: 0x1A_0000,
            stack_lo: 0x10_0000,
            stack_hi: 0x14_0000,
            capacity: 8,
            granule: 64,
            ring: 4,
            frames: 32,
            min_frame: 256,
        }
    }
}

/// Which watch window a store tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum VrtKind {
    /// Store into the heap window with an uncovered first byte.
    Heap,
    /// Store into a returned stack-frame window.
    Stack,
}

impl VrtKind {
    /// Wire encoding for the input log.
    pub fn as_u8(self) -> u8 {
        match self {
            VrtKind::Heap => 0,
            VrtKind::Stack => 1,
        }
    }

    /// Inverse of [`VrtKind::as_u8`]; unknown bytes decode as `None`.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(VrtKind::Heap),
            1 => Some(VrtKind::Stack),
            _ => None,
        }
    }
}

/// The granule-rounded interior of a region: `[round_up(base), round_down(base + len))`.
///
/// Shared by the hardware table and the Alarm Replayer's precise
/// classifier, so both sides agree on what the noisy rule *would* have
/// covered. A region too small to contain a full aligned granule yields an
/// empty interval (`lo == hi`).
pub fn coverage(base: Addr, len: u64, granule: u64) -> (Addr, Addr) {
    let g = granule.max(1);
    let lo = base.div_ceil(g).saturating_mul(g);
    let hi = (base.saturating_add(len) / g).saturating_mul(g);
    (lo, lo.max(hi))
}

/// One heap-table slot: a declared region's coverage, or an alarm shadow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    /// The declared base (retire key); for shadows, the alarmed granule.
    key: Addr,
    lo: Addr,
    hi: Addr,
    shadow: bool,
}

/// One tracked call frame: entry stack pointer and the lowest sp observed
/// while the frame was on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frame {
    entry_sp: Addr,
    min_sp: Addr,
}

/// A returned frame's dead window `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Window {
    lo: Addr,
    hi: Addr,
}

/// Diagnostic counters (never part of a report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VrtCounters {
    /// Regions declared through the doorbell.
    pub declares: u64,
    /// Regions retired through the doorbell (misses of evicted entries count too).
    pub retires: u64,
    /// Heap-table entries lost to capacity eviction.
    pub evictions: u64,
    /// Shadow entries inserted by heap alarms.
    pub shadows: u64,
    /// Heap alarms raised.
    pub heap_alarms: u64,
    /// Stack alarms raised.
    pub stack_alarms: u64,
    /// Returned windows filed into the ring.
    pub windows: u64,
    /// Frames dropped off the bottom of the bounded frame stack.
    pub frames_dropped: u64,
}

/// The Variable Record Table hardware model: heap coverage table, frame
/// stack, and returned-window ring. Lives inside the *recording* VM only;
/// replay VMs stay unarmed so alarms come from the log, not re-detection.
#[derive(Debug, Clone)]
pub struct VrtUnit {
    params: VrtParams,
    heap: VecDeque<HeapEntry>,
    frames: VecDeque<Frame>,
    ring: VecDeque<Window>,
    counters: VrtCounters,
}

impl VrtUnit {
    /// A fresh, empty unit.
    pub fn new(params: VrtParams) -> Self {
        VrtUnit {
            params,
            heap: VecDeque::new(),
            frames: VecDeque::new(),
            ring: VecDeque::new(),
            counters: VrtCounters::default(),
        }
    }

    /// The unit's geometry.
    pub fn params(&self) -> &VrtParams {
        &self.params
    }

    /// Diagnostic counters.
    pub fn counters(&self) -> &VrtCounters {
        &self.counters
    }

    /// Doorbell: a region `[base, base + len)` went live. Inserts its
    /// coverage, evicting the oldest entry at capacity.
    pub fn declare(&mut self, base: Addr, len: u64) {
        self.counters.declares += 1;
        let (lo, hi) = coverage(base, len, self.params.granule);
        self.insert(HeapEntry { key: base, lo, hi, shadow: false });
    }

    /// Doorbell: the region declared at `base` was freed. Removes its
    /// entry if it survived eviction; otherwise a no-op.
    pub fn retire(&mut self, base: Addr) {
        self.counters.retires += 1;
        if let Some(i) = self.heap.iter().position(|e| !e.shadow && e.key == base) {
            self.heap.remove(i);
        }
    }

    /// Observe the stack pointer (pushes, calls, stores): the top frame's
    /// extent grows downward to the lowest sp seen.
    pub fn note_sp(&mut self, sp: Addr) {
        if let Some(f) = self.frames.back_mut() {
            f.min_sp = f.min_sp.min(sp);
        }
    }

    /// A call retired with `sp` after pushing its return address: a new
    /// frame goes on the bounded stack.
    pub fn on_call(&mut self, sp: Addr) {
        if self.frames.len() >= self.params.frames.max(1) {
            self.frames.pop_front();
            self.counters.frames_dropped += 1;
        }
        self.frames.push_back(Frame { entry_sp: sp, min_sp: sp });
    }

    /// A return retired: the top frame dies, and its window enters the
    /// ring if it spanned at least [`VrtParams::min_frame`] bytes.
    pub fn on_ret(&mut self) {
        let Some(f) = self.frames.pop_back() else { return };
        if f.entry_sp.saturating_sub(f.min_sp) < self.params.min_frame {
            return;
        }
        if self.ring.len() >= self.params.ring.max(1) {
            self.ring.pop_front();
        }
        self.ring.push_back(Window { lo: f.min_sp, hi: f.entry_sp });
        self.counters.windows += 1;
    }

    /// A store's first byte lands at `addr` with the stack pointer at
    /// `sp`. Returns the alarm kind if the noisy rules fire.
    pub fn on_store(&mut self, addr: Addr, sp: Addr) -> Option<VrtKind> {
        self.note_sp(sp);
        if addr >= self.params.stack_lo && addr < self.params.stack_hi {
            if let Some(i) = self.ring.iter().position(|w| addr >= w.lo && addr < w.hi) {
                self.ring.remove(i);
                self.counters.stack_alarms += 1;
                return Some(VrtKind::Stack);
            }
            return None;
        }
        if addr >= self.params.heap_lo && addr < self.params.heap_hi {
            if self.heap.iter().any(|e| addr >= e.lo && addr < e.hi) {
                return None;
            }
            self.counters.heap_alarms += 1;
            self.counters.shadows += 1;
            let g = self.params.granule.max(1);
            let lo = (addr / g) * g;
            self.insert(HeapEntry { key: lo, lo, hi: lo + g, shadow: true });
            return Some(VrtKind::Heap);
        }
        None
    }

    fn insert(&mut self, e: HeapEntry) {
        if self.heap.len() >= self.params.capacity.max(1) {
            self.heap.pop_front();
            self.counters.evictions += 1;
        }
        self.heap.push_back(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> (VrtParams, VrtUnit) {
        let p = VrtParams::default();
        (p.clone(), VrtUnit::new(p))
    }

    #[test]
    fn coverage_excludes_partial_granules() {
        assert_eq!(coverage(0x1000, 256, 64), (0x1000, 0x1100));
        assert_eq!(coverage(0x1008, 256, 64), (0x1040, 0x1100));
        assert_eq!(coverage(0x1008, 48, 64), (0x1040, 0x1040)); // too small: empty
    }

    #[test]
    fn covered_interior_is_quiet_partial_granules_alarm() {
        let (p, mut vrt) = unit();
        let base = p.heap_lo + 8;
        vrt.declare(base, 256);
        let sp = p.stack_hi - 64;
        assert_eq!(vrt.on_store(base, sp), Some(VrtKind::Heap)); // head granule
        assert_eq!(vrt.on_store(p.heap_lo + 0x40, sp), None); // interior
        assert_eq!(vrt.on_store(p.heap_lo + 0xFF, sp), None); // last covered granule
    }

    #[test]
    fn capacity_eviction_makes_live_regions_alarm() {
        let (p, mut vrt) = unit();
        let sp = p.stack_hi - 64;
        for k in 0..=p.capacity as u64 {
            vrt.declare(p.heap_lo + k * 0x400, 0x100);
        }
        assert_eq!(vrt.counters().evictions, 1);
        // The first declaration was FIFO-evicted: its interior now alarms.
        assert_eq!(vrt.on_store(p.heap_lo + 0x40, sp), Some(VrtKind::Heap));
    }

    #[test]
    fn shadow_entry_suppresses_repeat_alarms_per_granule() {
        let (p, mut vrt) = unit();
        let sp = p.stack_hi - 64;
        let gap = p.heap_lo + 0x200;
        assert_eq!(vrt.on_store(gap, sp), Some(VrtKind::Heap));
        assert_eq!(vrt.on_store(gap + 8, sp), None); // same granule: shadowed
        assert_eq!(vrt.on_store(gap + p.granule, sp), Some(VrtKind::Heap)); // next granule
    }

    #[test]
    fn small_frames_never_enter_the_ring() {
        let (p, mut vrt) = unit();
        let sp = p.stack_hi - 64;
        vrt.on_call(sp);
        vrt.note_sp(sp - p.min_frame / 2);
        vrt.on_ret();
        assert_eq!(vrt.counters().windows, 0);
        assert_eq!(vrt.on_store(sp - 16, sp - 128), None);
    }

    #[test]
    fn returned_window_alarms_once() {
        let (p, mut vrt) = unit();
        let sp = p.stack_hi - 64;
        vrt.on_call(sp);
        vrt.note_sp(sp - 2 * p.min_frame);
        vrt.on_ret();
        assert_eq!(vrt.counters().windows, 1);
        assert_eq!(vrt.on_store(sp - 32, sp), Some(VrtKind::Stack));
        assert_eq!(vrt.on_store(sp - 32, sp), None); // window retired with the alarm
    }

    #[test]
    fn retire_is_a_noop_for_evicted_entries() {
        let (p, mut vrt) = unit();
        for k in 0..=p.capacity as u64 {
            vrt.declare(p.heap_lo + k * 0x400, 0x100);
        }
        vrt.retire(p.heap_lo); // evicted: silently absent
        assert_eq!(vrt.counters().retires, 1);
    }
}
