//! The guest VM: interpreter loop, exits, interrupt injection.

use std::fmt;

use rnr_isa::{Addr, Image, Instruction, Opcode, Reg};
use rnr_ras::RasOutcome;

use crate::digest::Fnv1a;
use crate::icache::{
    BlockCache, BlockInfo, BlockStats, TraceBody, TraceOp, TracePage, TraceStep, TRACE_HEAT, TRACE_MAX_OPS,
    TRACE_MAX_PAGES,
};
use crate::{
    is_mmio, CallRetTrap, Cpu, Digest, Exit, ExitControls, FaultKind, FinishIo, MachineConfig, MemError,
    Memory, Mode,
};

/// Run budget for [`GuestVm::run`].
///
/// `until_retired` is an *absolute* retired-instruction count: the replayers
/// use it to stop exactly at an asynchronous event's injection point (§7.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunBudget {
    /// Stop (with [`Exit::BudgetExhausted`]) once the retired-instruction
    /// counter reaches this value. `None` runs until another exit occurs.
    pub until_retired: Option<u64>,
    /// Stop once the cycle counter reaches this value (device-event
    /// deadlines in the hypervisor's virtual-time event loop).
    pub until_cycles: Option<u64>,
}

impl RunBudget {
    /// Run until `count` total instructions have retired.
    pub fn until(count: u64) -> RunBudget {
        RunBudget { until_retired: Some(count), until_cycles: None }
    }

    /// Run until the cycle counter reaches `cycles`.
    pub fn until_cycles(cycles: u64) -> RunBudget {
        RunBudget { until_retired: None, until_cycles: Some(cycles) }
    }

    /// No instruction or cycle bound.
    pub fn unbounded() -> RunBudget {
        RunBudget::default()
    }
}

/// Error from [`GuestVm::inject_interrupt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectError {
    /// The guest has interrupts disabled; request an interrupt window.
    Disabled,
    /// The IVT entry for this IRQ is zero (kernel not initialized).
    BadVector(u8),
    /// The guest stack could not hold the interrupt frame.
    MemFault,
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::Disabled => write!(f, "guest interrupts disabled"),
            InjectError::BadVector(irq) => write!(f, "no handler installed for irq {irq}"),
            InjectError::MemFault => write!(f, "interrupt frame push faulted"),
        }
    }
}

impl std::error::Error for InjectError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingIo {
    rd: Option<Reg>,
}

/// The simulated guest machine: CPU + memory, driven by a hypervisor.
///
/// See the crate docs for the exit model. The VM is deterministic: given the
/// same initial images and the same sequence of hypervisor actions
/// ([`GuestVm::finish_io`], [`GuestVm::inject_interrupt`], breakpoint
/// manipulation), two VMs retire identical instruction streams and end in
/// identical architectural states ([`GuestVm::digest`]).
#[derive(Debug, Clone)]
pub struct GuestVm {
    cpu: Cpu,
    mem: Memory,
    config: MachineConfig,
    icache: BlockCache,
    cycles: u64,
    retired: u64,
    // Breakpoints and armed skips are tiny sets (the hypervisor installs
    // three interposition traps); linear scans beat hashing on the
    // every-instruction fast path.
    breakpoints: Vec<Addr>,
    skip_bp_at: Vec<Addr>,
    pending_io: Option<PendingIo>,
    interrupt_window: bool,
    trace: std::collections::VecDeque<Addr>,
    trace_cap: usize,
    watch_addr: Option<Addr>,
    watch_hits: Vec<(Addr, u64, u64, u64)>,
    // Optional run-wide pool of decoded page caches (see
    // `SharedPageCache`): blocks built here are published, and misses try
    // to adopt a pool entry decoded from the identical page `Arc` before
    // rebuilding. Wall-clock only — never touches guest state.
    shared_cache: Option<std::sync::Arc<crate::icache::SharedPageCache>>,
    // The Variable Record Table memory-safety detector (DESIGN.md §15).
    // Armed on recording VMs only; replay VMs take VRT alarms from the log.
    vrt: Option<rnr_vrt::VrtUnit>,
}

impl GuestVm {
    /// Builds a VM, loads `images` into guest memory, and resets the CPU to
    /// kernel mode at address 0 (call [`GuestVm::set_entry`] next).
    ///
    /// # Panics
    ///
    /// Panics if an image does not fit in guest memory.
    pub fn new(config: MachineConfig, images: &[&Image]) -> GuestVm {
        let mut mem = Memory::new(config.mem_bytes);
        for image in images {
            mem.write_bytes(image.base(), image.bytes()).expect("image must fit in guest memory");
        }
        let cpu = Cpu::new(0, config.ras);
        let vrt = config.vrt.clone().map(rnr_vrt::VrtUnit::new);
        GuestVm {
            cpu,
            mem,
            config,
            vrt,
            icache: BlockCache::new(),
            cycles: 0,
            retired: 0,
            breakpoints: Vec::new(),
            skip_bp_at: Vec::new(),
            pending_io: None,
            interrupt_window: false,
            trace: std::collections::VecDeque::new(),
            trace_cap: 0,
            watch_addr: None,
            watch_hits: Vec::new(),
            shared_cache: None,
        }
    }

    /// Attaches the run-wide shared decode/block cache. All VMs of one run
    /// (recorder, CR span workers, alarm replayers) may share one pool; the
    /// per-page `Arc` identity check makes every adopted entry exact.
    pub fn attach_shared_cache(&mut self, shared: std::sync::Arc<crate::icache::SharedPageCache>) {
        self.shared_cache = Some(shared);
    }

    /// VRT doorbell (hypervisor device emulation): a guest region went
    /// live. No-op on unarmed VMs.
    pub fn vrt_declare(&mut self, base: Addr, len: u64) {
        if let Some(vrt) = &mut self.vrt {
            vrt.declare(base, len);
        }
    }

    /// VRT doorbell (hypervisor device emulation): the region declared at
    /// `base` was freed. No-op on unarmed VMs.
    pub fn vrt_retire(&mut self, base: Addr) {
        if let Some(vrt) = &mut self.vrt {
            vrt.retire(base);
        }
    }

    /// The VRT's diagnostic counters, if the VM is armed.
    pub fn vrt_counters(&self) -> Option<&rnr_vrt::VrtCounters> {
        self.vrt.as_ref().map(|v| v.counters())
    }

    /// Debugging: record every store whose 8-byte window covers `addr`.
    pub fn set_watchpoint(&mut self, addr: Addr) {
        self.watch_addr = Some(addr);
    }

    /// Debugging: `(pc, store_addr, value, retired)` for watchpoint hits.
    pub fn watch_hits(&self) -> &[(Addr, u64, u64, u64)] {
        &self.watch_hits
    }

    /// Enables a debugging ring buffer of the last `n` executed PCs.
    pub fn enable_trace(&mut self, n: usize) {
        self.trace_cap = n;
    }

    /// The last executed PCs, oldest first (empty unless tracing is on).
    pub fn trace(&self) -> impl Iterator<Item = Addr> + '_ {
        self.trace.iter().copied()
    }

    /// Sets the CPU entry point.
    pub fn set_entry(&mut self, entry: Addr) {
        self.cpu.pc = entry;
    }

    /// The CPU state.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable CPU state (hypervisor privilege).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// Guest memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable guest memory (hypervisor privilege: DMA, introspection).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Mutable access to the exit controls (the hypervisor reprograms the
    /// VMCS between recording and replay).
    pub fn exit_controls_mut(&mut self) -> &mut ExitControls {
        &mut self.config.exits
    }

    /// Elapsed virtual cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Charges hypervisor-side costs (VM exits, logging, ...) to the clock.
    pub fn add_cycles(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Retired instruction count.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Restores the retired-instruction and cycle counters (hypervisor
    /// privilege: used when resuming a VM from a checkpoint, so absolute
    /// instruction counts in the input log stay meaningful).
    pub fn restore_counters(&mut self, retired: u64, cycles: u64) {
        self.retired = retired;
        self.cycles = cycles;
    }

    /// Installs a breakpoint: the instruction at `pc` exits *before*
    /// executing (context-switch interposition, §5.2.1).
    pub fn add_breakpoint(&mut self, pc: Addr) {
        if !self.breakpoints.contains(&pc) {
            self.breakpoints.push(pc);
        }
    }

    /// Removes a breakpoint.
    pub fn remove_breakpoint(&mut self, pc: Addr) {
        self.breakpoints.retain(|&bp| bp != pc);
    }

    /// Resume helper: the next execution of the *current* instruction does
    /// not re-trigger its breakpoint (single-step-over). Skips are pinned to
    /// their trapped PCs and independent of each other: if an interrupt is
    /// injected before the instruction re-executes, its skip stays armed
    /// until control returns there — even across other breakpoints trapping
    /// in between — so no breakpoint double-fires or leaks onto other code.
    pub fn skip_breakpoint_once(&mut self) {
        if !self.skip_bp_at.contains(&self.cpu.pc) {
            self.skip_bp_at.push(self.cpu.pc);
        }
    }

    /// Asks for an [`Exit::InterruptWindow`] as soon as the guest can accept
    /// an interrupt.
    pub fn request_interrupt_window(&mut self) {
        self.interrupt_window = true;
    }

    /// True if an interrupt can be injected right now.
    pub fn can_inject(&self) -> bool {
        self.cpu.interrupts_enabled && self.pending_io.is_none()
    }

    /// Injects external interrupt `irq`: pushes the return frame and jumps
    /// to the IVT handler, clearing `halted`.
    ///
    /// # Errors
    ///
    /// Fails if interrupts are disabled, the IVT slot is empty, or the frame
    /// push faults.
    pub fn inject_interrupt(&mut self, irq: u8) -> Result<(), InjectError> {
        if !self.can_inject() {
            return Err(InjectError::Disabled);
        }
        let handler = self
            .mem
            .read_u64(self.config.ivt_base + irq as u64 * 8)
            .map_err(|_| InjectError::BadVector(irq))?;
        if handler == 0 {
            return Err(InjectError::BadVector(irq));
        }
        let flags = self.cpu.mode.to_bits() | (self.cpu.interrupts_enabled as u64) << 1;
        self.push(self.cpu.pc).map_err(|_| InjectError::MemFault)?;
        self.push(flags).map_err(|_| InjectError::MemFault)?;
        self.cpu.interrupts_enabled = false;
        self.cpu.mode = Mode::Kernel;
        self.cpu.halted = false;
        self.cpu.pc = handler;
        Ok(())
    }

    /// Completes a trapped I/O instruction (see [`FinishIo`]).
    ///
    /// # Panics
    ///
    /// Panics if no I/O exit is pending or the completion kind mismatches —
    /// both are hypervisor bugs.
    pub fn finish_io(&mut self, finish: FinishIo) {
        let pending = self.pending_io.take().expect("finish_io without a pending I/O exit");
        match (pending.rd, finish) {
            (Some(rd), FinishIo::Read { rd: frd, value }) => {
                assert_eq!(rd, frd, "completion register mismatch");
                self.cpu.set_reg(rd, value);
            }
            (None, FinishIo::Write) => {}
            (p, f) => panic!("I/O completion kind mismatch: pending {p:?}, finish {f:?}"),
        }
        self.cpu.pc += 8;
        self.retire();
    }

    /// Architectural-state digest (CPU + memory; the hypervisor combines it
    /// with its disk digest).
    pub fn digest(&self) -> Digest {
        let mut h = Fnv1a::new();
        for r in Reg::ALL {
            h.update_u64(self.cpu.reg(r));
        }
        h.update_u64(self.cpu.pc);
        h.update_u64(self.cpu.mode.to_bits());
        h.update_u64(self.cpu.interrupts_enabled as u64);
        h.update_u64(self.cpu.halted as u64);
        for page in self.mem.pages() {
            h.update_words(&page[..]);
        }
        h.finish()
    }

    /// Wall-clock counters of the basic-block cache (hits/builds/flushes).
    pub fn block_stats(&self) -> BlockStats {
        self.icache.stats()
    }

    fn retire(&mut self) {
        self.retired += 1;
        self.cycles += self.config.costs.insn;
    }

    fn push(&mut self, value: u64) -> Result<(), MemError> {
        let sp = self.cpu.sp().wrapping_sub(8);
        self.mem.write_u64(sp, value)?;
        self.cpu.set_sp(sp);
        Ok(())
    }

    fn pop(&mut self) -> Result<u64, MemError> {
        let sp = self.cpu.sp();
        let v = self.mem.read_u64(sp)?;
        self.cpu.set_sp(sp.wrapping_add(8));
        Ok(v)
    }

    fn callret_trapped(&self) -> bool {
        match self.config.exits.callret_trap {
            CallRetTrap::None => false,
            CallRetTrap::KernelOnly => self.cpu.mode == Mode::Kernel,
            CallRetTrap::All => true,
        }
    }

    /// Runs until an exit or until the budget is exhausted.
    ///
    /// With the block engine on, execution proceeds in *event-horizon*
    /// batches: the checks above the horizon — budget, halt, interrupt
    /// window — are evaluated once per block instead of once per
    /// instruction, and whole cached basic blocks retire with a single
    /// counter bump. Every knob involved is wall-clock-only: the retired
    /// stream, virtual cycles, and exit sequence are byte-identical to the
    /// single-step interpreter.
    pub fn run(&mut self, budget: RunBudget) -> Exit {
        assert!(self.pending_io.is_none(), "run() with unfinished I/O exit");
        let blocks = self.block_engine_active();
        loop {
            if let Some(limit) = budget.until_retired {
                if self.retired >= limit {
                    return Exit::BudgetExhausted;
                }
            }
            if let Some(limit) = budget.until_cycles {
                if self.cycles >= limit {
                    return Exit::BudgetExhausted;
                }
            }
            if self.cpu.halted {
                return Exit::Halt;
            }
            if self.interrupt_window && self.cpu.interrupts_enabled {
                self.interrupt_window = false;
                return Exit::InterruptWindow;
            }
            if blocks {
                match self.run_block(budget) {
                    Ok(true) => continue,
                    Ok(false) => {} // no block here: single-step below
                    Err(exit) => return exit,
                }
            }
            if let Some(exit) = self.step() {
                return exit;
            }
        }
    }

    /// Whether the block-engine config knob is currently on.
    pub fn block_engine_enabled(&self) -> bool {
        self.config.block_engine
    }

    /// Toggles block execution at runtime. Replay recovery uses this to
    /// quarantine the block engine after a divergence: the failed span is
    /// re-executed single-stepped (bit-exact by construction), and blocks
    /// are re-enabled once a checkpoint proves the span clean. Purely a
    /// wall-clock knob — virtual cycles and digests never depend on it.
    pub fn set_block_engine(&mut self, on: bool) {
        self.config.block_engine = on;
    }

    /// Whether [`GuestVm::run`] may execute whole basic blocks.
    ///
    /// Besides the config knob, block execution requires every
    /// per-instruction observation point to be absent: a non-zero decode
    /// cost would charge cycles per cache build instead of per fetch, and
    /// the PC trace ring / store watchpoint are debugging aids that want to
    /// see (and timestamp) each instruction individually.
    fn block_engine_active(&self) -> bool {
        self.config.block_engine
            && self.config.costs.decode == 0
            && self.trace_cap == 0
            && self.watch_addr.is_none()
    }

    /// The event horizon: how many instructions may retire before a budget
    /// limit is reached, given the checks at the top of [`GuestVm::run`]
    /// already passed (so both limits are strictly ahead).
    #[inline]
    fn horizon_insns(&self, budget: RunBudget) -> u64 {
        let mut max = u64::MAX;
        if let Some(limit) = budget.until_retired {
            max = limit - self.retired;
        }
        if let Some(limit) = budget.until_cycles {
            let icost = self.config.costs.insn;
            if icost == 1 {
                // Unit cost (the default): this runs once per chained block,
                // so dodge the division.
                max = max.min(limit - self.cycles);
            } else if icost > 0 {
                // Stop once `cycles >= limit`: exactly ceil(room / icost)
                // instructions fit before that.
                max = max.min((limit - self.cycles).div_ceil(icost));
            }
        }
        max
    }

    /// Whether a budget limit has been reached (the stop conditions at the
    /// top of [`GuestVm::run`]).
    #[inline]
    fn budget_exhausted(&self, budget: RunBudget) -> bool {
        budget.until_retired.is_some_and(|l| self.retired >= l)
            || budget.until_cycles.is_some_and(|l| self.cycles >= l)
    }

    /// Executes a *chain* of cached basic blocks starting at the current PC,
    /// staying inside `budget`.
    ///
    /// Each block in the chain is bounded by the event horizon (recomputed
    /// after every block, since terminals may charge extra cycles); the
    /// chain ends when the budget runs out, the CPU halts, an interrupt
    /// window opens, or the next PC has no executable block.
    ///
    /// Returns `Ok(true)` when progress was made (the caller re-checks its
    /// exit conditions), `Ok(false)` when no block is executable at the
    /// current PC and the caller must single-step (unaligned PC, undecodable
    /// entry, or a breakpoint / armed skip at the entry itself), and
    /// `Err(exit)` when execution raised an exit — with counters and PC
    /// positioned exactly as the single-step interpreter would leave them.
    fn run_block(&mut self, budget: RunBudget) -> Result<bool, Exit> {
        // Breakpoint span prefilter: one [min, max] range over all aligned
        // breakpoints and armed skips, computed once per chain. Blocks that
        // don't intersect it (the overwhelmingly common case — trap
        // addresses sit in a handful of kernel pages) skip the exact scan.
        let bp_span = {
            let mut lo = u64::MAX;
            let mut hi = 0;
            for &bp in self.breakpoints.iter().chain(self.skip_bp_at.iter()) {
                if bp & 7 == 0 {
                    lo = lo.min(bp);
                    hi = hi.max(bp);
                }
            }
            (lo <= hi).then_some((lo, hi))
        };
        let icost = self.config.costs.insn;
        let traces = self.config.superblocks;
        let mut progressed = false;
        loop {
            let pc = self.cpu.pc;
            if pc & 7 != 0 {
                // Hijacked-return targets fall back to stepping.
                return Ok(progressed);
            }
            // Superblock dispatch: a hot head with a valid trace executes
            // the longest event-horizon-safe prefix of the chain in one
            // call. Only when not even the head op may run (a breakpoint
            // or armed skip sits on it) does execution fall through to the
            // block path, which hands such PCs to step().
            if traces {
                if let Some(body) = self.icache.trace_at(pc, &self.mem) {
                    let prefix = self.trace_prefix(&body, budget, bp_span);
                    if prefix > 0 {
                        self.icache.note_trace_hit();
                        self.exec_trace(&body, prefix, icost)?;
                        progressed = true;
                        if self.budget_exhausted(budget)
                            || self.cpu.halted
                            || (self.interrupt_window && self.cpu.interrupts_enabled)
                        {
                            return Ok(true);
                        }
                        continue;
                    }
                    self.icache.note_trace_fallback();
                }
            }
            let info = match self.block_info_shared(pc) {
                Some(info) => info,
                None => match self.build_block(pc) {
                    Some(info) => info,
                    None => return Ok(progressed),
                },
            };
            let block_len = info.len as u64;
            let mut exec = block_len.min(self.horizon_insns(budget));
            // Breakpoint hoisting: find the nearest breakpoint or armed
            // skip inside the block once, instead of scanning per
            // instruction. Block PCs are aligned, so unaligned entries can
            // never match.
            if let Some((lo, hi)) = bp_span {
                let end = pc + 8 * block_len;
                if pc <= hi && lo < end {
                    let mut nearest = u64::MAX;
                    for &bp in self.breakpoints.iter().chain(self.skip_bp_at.iter()) {
                        if bp & 7 == 0 && (pc..end).contains(&bp) {
                            nearest = nearest.min((bp - pc) / 8);
                        }
                    }
                    if nearest == 0 {
                        // step() owns breakpoint/skip semantics.
                        return Ok(progressed);
                    }
                    exec = exec.min(nearest);
                }
            }
            let run_terminal = info.has_terminal && exec == block_len;
            let straight = exec - u64::from(run_terminal);

            let page = (pc as usize) / crate::mem::PAGE_SIZE;
            let base_slot = (pc as usize % crate::mem::PAGE_SIZE) / 8;
            let base_version = self.mem.page_version(page);
            let mut done: u64 = 0;
            let mut smc = false;
            while done < straight {
                let insn = self.icache.slot_insn(page, base_slot + done as usize);
                let is_store = matches!(insn.op, Opcode::St | Opcode::St8 | Opcode::Push);
                if let Err(exit) = self.exec_straight(insn) {
                    if matches!(exit, Exit::VrtAlarm { .. }) {
                        // The alarming store *retired* (the write landed):
                        // commit it before exiting, like `execute`. The SMC
                        // version check is safely skipped — the next
                        // dispatch revalidates the page.
                        done += 1;
                    }
                    // Commit partial progress: all other exits from
                    // straight-line instructions (faults, MMIO) do not
                    // retire the instruction, exactly like `execute`.
                    self.cpu.pc = pc + 8 * done;
                    self.retired += done;
                    self.cycles += icost * done;
                    return Err(exit);
                }
                done += 1;
                if is_store && self.mem.page_version(page) != base_version {
                    // The block overwrote its own page (self-modifying
                    // code): commit what retired and rebuild against the
                    // new bytes.
                    smc = true;
                    break;
                }
            }
            // The single per-block counter bump.
            self.cpu.pc = pc + 8 * done;
            self.retired += done;
            self.cycles += icost * done;

            if run_terminal && !smc {
                // Terminals (control flow, privileged/IO, interrupt flags)
                // go through the full interpreter: RAS, JOP whitelist,
                // call/ret traps, and exit semantics all live there. The
                // cached decode is still valid — any store that patched
                // this page was caught by the version check above.
                let tpc = self.cpu.pc;
                let insn = self.icache.slot_insn(page, base_slot + straight as usize);
                if let Some(exit) = self.execute(tpc, insn) {
                    return Err(exit);
                }
                if traces {
                    // Profile the block-exit edge; at the heat threshold,
                    // chain a superblock from this head.
                    if let Some(heat) = self.icache.record_edge(page, base_slot, self.cpu.pc) {
                        if heat == TRACE_HEAT {
                            self.build_trace(pc);
                        }
                    }
                }
            }
            progressed = true;
            // Chain into the next block only while none of the run-loop
            // exit conditions can fire.
            if self.budget_exhausted(budget)
                || self.cpu.halted
                || (self.interrupt_window && self.cpu.interrupts_enabled)
            {
                return Ok(true);
            }
        }
    }

    /// How many leading trace ops may execute right now: a trace never
    /// retires past a budget horizon, and never runs an op whose PC holds
    /// a breakpoint or armed skip (step() owns those semantics). Because
    /// every op boundary is a valid commit point (`ops[i].expect` is the
    /// architectural PC after op `i`), an event horizon that cuts through
    /// the trace truncates the dispatch instead of rejecting it — exactly
    /// like the block engine's hoisted `exec = min(horizon, nearest)`.
    /// Returns 0 when the head op itself can't run (fall back to blocks).
    #[inline]
    fn trace_prefix(&self, body: &TraceBody, budget: RunBudget, bp_span: Option<(u64, u64)>) -> usize {
        let mut n = (body.ops.len() as u64).min(self.horizon_insns(budget)) as usize;
        if let Some((lo, hi)) = bp_span {
            if body.min_pc <= hi && lo <= body.max_pc {
                // Armed PCs are few; resolve each to its first op index
                // with a binary search instead of scanning every op.
                for &bp in self.breakpoints.iter().chain(self.skip_bp_at.iter()) {
                    if let Some(i) = body.first_op_at(bp) {
                        n = n.min(i);
                    }
                }
            }
        }
        n
    }

    /// A partial or full trace commit: position the PC and bump the
    /// counters for `done` retirements in one step.
    #[inline(always)]
    fn trace_commit(&mut self, pc: Addr, done: u64, icost: u64) {
        self.cpu.pc = pc;
        self.retired += done;
        self.cycles += icost * done;
        self.icache.note_trace_insns(done);
    }

    /// Executes one superblock: a single dispatch retiring up to `limit`
    /// leading trace ops with one counter commit on the hot path. Early
    /// exits — faults, MMIO, detector exits, mispredicted guards,
    /// self-modification of a constituent page — commit partial progress
    /// with PC and counters exactly where the block engine and `execute`
    /// would leave them.
    #[allow(clippy::too_many_lines)]
    fn exec_trace(&mut self, body: &TraceBody, limit: usize, icost: u64) -> Result<(), Exit> {
        let ops = &body.ops[..limit];
        let mut done: u64 = 0;
        let mut i = 0usize;
        while i < ops.len() {
            let op = &ops[i];
            match op.step {
                TraceStep::Straight | TraceStep::StraightStore => {
                    if let Err(exit) = self.exec_straight(op.insn) {
                        if matches!(exit, Exit::VrtAlarm { .. }) {
                            // The alarming store retired: commit it at the
                            // next op's PC. The constituent-page write check
                            // is safely skipped — the next lookup
                            // revalidates every page.
                            self.trace_commit(op.expect, done + 1, icost);
                            return Err(exit);
                        }
                        // Other exits from straight-line instructions
                        // (faults, MMIO) do not retire the instruction.
                        self.trace_commit(op.pc, done, icost);
                        return Err(exit);
                    }
                    done += 1;
                    if op.step == TraceStep::StraightStore {
                        // Stores don't write registers, so the effective
                        // address recomputes exactly.
                        let (lo, hi) = match op.insn.op {
                            Opcode::St8 => {
                                let a = self.cpu.reg(op.insn.rs1).wrapping_add(op.insn.imm as i64 as u64);
                                (a, a)
                            }
                            Opcode::St => {
                                let a = self.cpu.reg(op.insn.rs1).wrapping_add(op.insn.imm as i64 as u64);
                                (a, a.wrapping_add(7))
                            }
                            // Push: sp already points at the written slot.
                            _ => (self.cpu.sp(), self.cpu.sp().wrapping_add(7)),
                        };
                        if body.write_hits_ops(lo, hi) {
                            // The store patched a constituent page: commit
                            // what retired and let the next lookup rebuild
                            // against the new bytes.
                            self.trace_commit(op.expect, done, icost);
                            return Ok(());
                        }
                    }
                }
                TraceStep::Jmp => {
                    // The next trace op *is* the jump target: retiring is
                    // all that's left of the instruction.
                    done += 1;
                }
                TraceStep::Branch => {
                    let rs1 = self.cpu.reg(op.insn.rs1);
                    let rs2 = self.cpu.reg(op.insn.rs2);
                    let taken = match op.insn.op {
                        Opcode::Beq => rs1 == rs2,
                        Opcode::Bne => rs1 != rs2,
                        Opcode::Blt => (rs1 as i64) < (rs2 as i64),
                        Opcode::Bge => (rs1 as i64) >= (rs2 as i64),
                        Opcode::Bltu => rs1 < rs2,
                        Opcode::Bgeu => rs1 >= rs2,
                        _ => unreachable!("non-branch classified as Branch"),
                    };
                    let next = if taken { op.insn.target() } else { op.pc + 8 };
                    done += 1;
                    if next != op.expect {
                        // The profiled direction mispredicted: side-exit at
                        // the architecturally correct target.
                        self.trace_commit(next, done, icost);
                        return Ok(());
                    }
                }
                TraceStep::Call | TraceStep::CallR => {
                    let target =
                        if op.step == TraceStep::Call { op.insn.target() } else { self.cpu.reg(op.insn.rs1) };
                    let ret_addr = op.pc + 8;
                    if self.push(ret_addr).is_err() {
                        self.trace_commit(op.pc, done, icost);
                        return Err(Exit::Fault(FaultKind::BadMemory {
                            addr: self.cpu.sp().wrapping_sub(8),
                        }));
                    }
                    let outcome = self.cpu.ras.on_call(ret_addr);
                    let sp = self.cpu.sp();
                    if let Some(vrt) = &mut self.vrt {
                        vrt.on_call(sp);
                    }
                    let mut exit = None;
                    if op.step == TraceStep::CallR {
                        if let Some(table) = &self.config.jop_table {
                            if !table.is_legal(op.pc, target) {
                                exit = Some(Exit::JopAlarm { branch_pc: op.pc, target });
                            }
                        }
                    }
                    if exit.is_none() {
                        if let RasOutcome::Evicted(evicted) = outcome {
                            if self.config.exits.evict_exiting {
                                exit = Some(Exit::RasEvict { evicted, ret_addr });
                            }
                        }
                    }
                    if exit.is_none() && self.callret_trapped() {
                        exit = Some(Exit::CallTrap { ret_addr, pc: op.pc });
                    }
                    done += 1;
                    if let Some(exit) = exit {
                        // Detector exits retire the call first, like
                        // `execute`.
                        self.trace_commit(target, done, icost);
                        return Err(exit);
                    }
                    if target != op.expect {
                        // Indirect target mispredicted (CallR only).
                        self.trace_commit(target, done, icost);
                        return Ok(());
                    }
                    if body.write_hits_ops(self.cpu.sp(), self.cpu.sp().wrapping_add(7)) {
                        // The return-address push landed in a constituent
                        // page.
                        self.trace_commit(op.expect, done, icost);
                        return Ok(());
                    }
                }
                TraceStep::Ret => {
                    let target = match self.pop() {
                        Ok(v) => v,
                        Err(_) => {
                            self.trace_commit(op.pc, done, icost);
                            return Err(Exit::Fault(FaultKind::BadMemory { addr: self.cpu.sp() }));
                        }
                    };
                    let outcome = self.cpu.ras.on_ret(op.pc, target);
                    if let Some(vrt) = &mut self.vrt {
                        vrt.on_ret();
                    }
                    let mut exit = None;
                    if let RasOutcome::Mispredict(m) = outcome {
                        if self.cpu.ras.alarms_enabled() {
                            exit = Some(Exit::RasMispredict(m));
                        }
                    }
                    if exit.is_none() && self.callret_trapped() {
                        exit = Some(Exit::RetTrap { ret_pc: op.pc, target });
                    }
                    done += 1;
                    if let Some(exit) = exit {
                        self.trace_commit(target, done, icost);
                        return Err(exit);
                    }
                    if target != op.expect {
                        self.trace_commit(target, done, icost);
                        return Ok(());
                    }
                }
                TraceStep::JmpR => {
                    let target = self.cpu.reg(op.insn.rs1);
                    let mut exit = None;
                    if let Some(table) = &self.config.jop_table {
                        if !table.is_legal(op.pc, target) {
                            exit = Some(Exit::JopAlarm { branch_pc: op.pc, target });
                        }
                    }
                    done += 1;
                    if let Some(exit) = exit {
                        self.trace_commit(target, done, icost);
                        return Err(exit);
                    }
                    if target != op.expect {
                        self.trace_commit(target, done, icost);
                        return Ok(());
                    }
                }
            }
            i += 1;
        }
        // The prefix retired: the single counter commit. A horizon-cut
        // dispatch (`limit < ops.len()`) continues at the next op's PC —
        // `ops[i].expect` is `ops[i + 1].pc` by construction.
        let cont = if limit < body.ops.len() { body.ops[limit].pc } else { body.end_pc };
        self.trace_commit(cont, done, icost);
        Ok(())
    }

    /// Chains cached blocks from the hot head `head` into a superblock:
    /// straight-line runs flatten in, direct jumps and calls chain
    /// statically, conditional branches follow the profiled direction, and
    /// rets/indirect branches follow the profiled target behind a runtime
    /// guard. Loops unroll through the head until [`TRACE_MAX_OPS`].
    /// Formation stops at any opcode that could change the halt/interrupt
    /// state, observe cycles, or exit to the hypervisor (`Rdtsc`, IO,
    /// syscalls, ...): those stay on the block/step path.
    fn build_trace(&mut self, head: Addr) {
        use std::sync::Arc;
        let mut ops: Vec<TraceOp> = Vec::with_capacity(TRACE_MAX_OPS);
        let mut pages: Vec<TracePage> = Vec::new();
        let mut blocks = 0u32;
        let mut pc = head;
        loop {
            if ops.len() >= TRACE_MAX_OPS || pc & 7 != 0 {
                break;
            }
            let info = match self.block_info_shared(pc) {
                Some(info) => info,
                None => match self.build_block(pc) {
                    Some(info) => info,
                    None => break,
                },
            };
            if ops.len() + info.len as usize > TRACE_MAX_OPS {
                break;
            }
            let page = (pc as usize) / crate::mem::PAGE_SIZE;
            let base_slot = (pc as usize % crate::mem::PAGE_SIZE) / 8;
            if !pages.iter().any(|p| p.index == page) {
                if pages.len() == TRACE_MAX_PAGES {
                    break;
                }
                match self.mem.page_arc(page) {
                    Some(arc) => pages.push(TracePage::new(page, Arc::clone(arc))),
                    None => break,
                }
            }
            let straight = u64::from(info.len) - u64::from(info.has_terminal);
            for k in 0..straight {
                let insn = self.icache.slot_insn(page, base_slot + k as usize);
                let step = if matches!(insn.op, Opcode::St | Opcode::St8 | Opcode::Push) {
                    TraceStep::StraightStore
                } else {
                    TraceStep::Straight
                };
                let opc = pc + 8 * k;
                ops.push(TraceOp { pc: opc, insn, step, expect: opc + 8 });
            }
            if !info.has_terminal {
                // Truncated at the page boundary: chain straight across it
                // (undecodable bytes stop the walk on the next iteration).
                blocks += 1;
                pc += 8 * straight;
                continue;
            }
            let tpc = pc + 8 * straight;
            let insn = self.icache.slot_insn(page, base_slot + straight as usize);
            let continue_at = match insn.op {
                Opcode::Jmp => {
                    let target = insn.target();
                    ops.push(TraceOp { pc: tpc, insn, step: TraceStep::Jmp, expect: target });
                    Some(target)
                }
                Opcode::Call => {
                    let target = insn.target();
                    ops.push(TraceOp { pc: tpc, insn, step: TraceStep::Call, expect: target });
                    Some(target)
                }
                Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge | Opcode::Bltu | Opcode::Bgeu => {
                    // Follow the profiled direction; an edge that was never
                    // observed (or that doesn't match either side — can't
                    // happen architecturally) ends the trace before the
                    // branch.
                    match self.icache.observed_succ(page, base_slot) {
                        Some(succ) if succ == insn.target() || succ == tpc + 8 => {
                            ops.push(TraceOp { pc: tpc, insn, step: TraceStep::Branch, expect: succ });
                            Some(succ)
                        }
                        _ => None,
                    }
                }
                Opcode::Ret | Opcode::CallR | Opcode::JmpR => {
                    match self.icache.observed_succ(page, base_slot) {
                        Some(succ) => {
                            let step = match insn.op {
                                Opcode::Ret => TraceStep::Ret,
                                Opcode::CallR => TraceStep::CallR,
                                _ => TraceStep::JmpR,
                            };
                            ops.push(TraceOp { pc: tpc, insn, step, expect: succ });
                            Some(succ)
                        }
                        None => None,
                    }
                }
                _ => None,
            };
            match continue_at {
                Some(next) => {
                    blocks += 1;
                    pc = next;
                }
                None => {
                    // The terminal stays outside the trace; execution
                    // continues at it on the block/step path.
                    pc = tpc;
                    break;
                }
            }
        }
        if blocks < 2 || ops.len() < 2 {
            // Nothing chained beyond the head block — a trace would only
            // re-label block dispatch. Stop profiling this head.
            self.icache.mark_untraceable(head);
            return;
        }
        // Mark every slot an op decodes from: the body's self-modification
        // checks are exact, so data writes elsewhere in these pages don't
        // kill the trace. Every op's page is in `pages` by construction.
        for op in &ops {
            let pg = (op.pc as usize) / crate::mem::PAGE_SIZE;
            let slot = (op.pc as usize % crate::mem::PAGE_SIZE) / 8;
            if let Some(p) = pages.iter_mut().find(|p| p.index == pg) {
                p.mark_slot(slot);
            }
        }
        let mut pcs: Vec<(Addr, u32)> = ops.iter().enumerate().map(|(i, op)| (op.pc, i as u32)).collect();
        // Stable on pc: ties keep ascending op order, so dedup retains the
        // first occurrence of every unrolled PC.
        pcs.sort_by_key(|&(p, _)| p);
        pcs.dedup_by_key(|&mut (p, _)| p);
        let (min_pc, max_pc) = (pcs[0].0, pcs.last().expect("non-empty").0);
        let body = Arc::new(TraceBody { ops, end_pc: pc, pages, min_pc, max_pc, pcs });
        if self.icache.install_trace(head, body, &self.mem) {
            if let Some(shared) = &self.shared_cache {
                let page = (head as usize) / crate::mem::PAGE_SIZE;
                self.icache.publish_to(shared, page, &self.mem);
            }
        }
    }

    /// Decodes and caches the basic block starting at `pc` (aligned).
    ///
    /// Blocks end at the first terminator (any non-straight-line
    /// instruction, included in the block), at the page boundary, or just
    /// before undecodable bytes. Returns `None` when not even one
    /// instruction decodes — the stepping path raises the proper fault.
    fn build_block(&mut self, pc: Addr) -> Option<BlockInfo> {
        let mut insns: Vec<Instruction> = Vec::with_capacity(16);
        let mut has_terminal = false;
        let mut has_store = false;
        let mut cur = pc;
        loop {
            let mut fetch = [0u8; 8];
            if self.mem.read_bytes(cur, &mut fetch).is_err() {
                break;
            }
            let Ok(insn) = Instruction::decode(&fetch) else { break };
            insns.push(insn);
            if !is_straight(insn.op) {
                has_terminal = true;
                break;
            }
            has_store |= matches!(insn.op, Opcode::St | Opcode::St8 | Opcode::Push);
            cur += 8;
            if (cur as usize).is_multiple_of(crate::mem::PAGE_SIZE) {
                break;
            }
        }
        let len = u16::try_from(insns.len()).expect("blocks fit in a page");
        if len == 0 {
            return None;
        }
        let info = BlockInfo { len, has_terminal, has_store };
        self.icache.insert_block(pc, &insns, info, &self.mem);
        if let Some(shared) = &self.shared_cache {
            let page = (pc as usize) / crate::mem::PAGE_SIZE;
            self.icache.publish_to(shared, page, &self.mem);
        }
        Some(info)
    }

    /// Block lookup with a shared-pool fallback: on a local miss, try to
    /// adopt the pool's decode of the page (valid only if it was decoded
    /// from the identical page `Arc`) and retry. A successful import may
    /// still miss — the publisher never decoded a block at this `pc` — in
    /// which case the caller builds it, growing the adopted page cache.
    fn block_info_shared(&mut self, pc: Addr) -> Option<BlockInfo> {
        if let Some(info) = self.icache.block_info(pc, &self.mem) {
            return Some(info);
        }
        let shared = self.shared_cache.as_ref()?;
        let page = (pc as usize) / crate::mem::PAGE_SIZE;
        if !self.icache.import_from(shared, page, &self.mem) {
            return None;
        }
        self.icache.block_info(pc, &self.mem)
    }

    /// Executes one straight-line (non-terminal) instruction without
    /// advancing the PC or retiring — the block executor batches those.
    /// Mirrors the corresponding arms of [`GuestVm::execute`] exactly.
    #[inline]
    fn exec_straight(&mut self, insn: Instruction) -> Result<(), Exit> {
        use Opcode::*;
        let imm_s = insn.imm as i64 as u64; // sign-extended immediate
        let rs1 = self.cpu.reg(insn.rs1);
        let rs2 = self.cpu.reg(insn.rs2);
        match insn.op {
            Nop => {}
            Mov => self.cpu.set_reg(insn.rd, rs1),
            MovImm => self.cpu.set_reg(insn.rd, imm_s),
            MovHi => {
                let low = self.cpu.reg(insn.rd) & 0xffff_ffff;
                self.cpu.set_reg(insn.rd, low | (insn.imm as u32 as u64) << 32);
            }
            Add => self.cpu.set_reg(insn.rd, rs1.wrapping_add(rs2)),
            Sub => self.cpu.set_reg(insn.rd, rs1.wrapping_sub(rs2)),
            Mul => self.cpu.set_reg(insn.rd, rs1.wrapping_mul(rs2)),
            Divu => self.cpu.set_reg(insn.rd, rs1.checked_div(rs2).unwrap_or(u64::MAX)),
            And => self.cpu.set_reg(insn.rd, rs1 & rs2),
            Or => self.cpu.set_reg(insn.rd, rs1 | rs2),
            Xor => self.cpu.set_reg(insn.rd, rs1 ^ rs2),
            Shl => self.cpu.set_reg(insn.rd, rs1 << (rs2 & 63)),
            Shr => self.cpu.set_reg(insn.rd, rs1 >> (rs2 & 63)),
            Addi => self.cpu.set_reg(insn.rd, rs1.wrapping_add(imm_s)),
            Andi => self.cpu.set_reg(insn.rd, rs1 & imm_s),
            Ori => self.cpu.set_reg(insn.rd, rs1 | imm_s),
            Xori => self.cpu.set_reg(insn.rd, rs1 ^ imm_s),
            Shli => self.cpu.set_reg(insn.rd, rs1 << (insn.imm as u32 & 63)),
            Shri => self.cpu.set_reg(insn.rd, rs1 >> (insn.imm as u32 & 63)),
            Muli => self.cpu.set_reg(insn.rd, rs1.wrapping_mul(imm_s)),
            Ld | Ld8 => {
                let addr = rs1.wrapping_add(imm_s);
                if is_mmio(addr) {
                    self.pending_io = Some(PendingIo { rd: Some(insn.rd) });
                    return Err(Exit::MmioRead { rd: insn.rd, addr });
                }
                let value = if insn.op == Ld {
                    match self.mem.read_u64(addr) {
                        Ok(v) => v,
                        Err(_) => return Err(Exit::Fault(FaultKind::BadMemory { addr })),
                    }
                } else {
                    match self.mem.read_u8(addr) {
                        Ok(v) => v as u64,
                        Err(_) => return Err(Exit::Fault(FaultKind::BadMemory { addr })),
                    }
                };
                self.cpu.set_reg(insn.rd, value);
            }
            St | St8 => {
                let addr = rs1.wrapping_add(imm_s);
                debug_assert!(self.watch_addr.is_none(), "watchpoints disable the block engine");
                if is_mmio(addr) {
                    self.pending_io = Some(PendingIo { rd: None });
                    return Err(Exit::MmioWrite { addr, value: rs2 });
                }
                let res = if insn.op == St {
                    self.mem.write_u64(addr, rs2)
                } else {
                    self.mem.write_u8(addr, rs2 as u8)
                };
                if res.is_err() {
                    return Err(Exit::Fault(FaultKind::BadMemory { addr }));
                }
                let sp = self.cpu.sp();
                if let Some(vrt) = &mut self.vrt {
                    if let Some(kind) = vrt.on_store(addr, sp) {
                        // Unlike faults, this store retired (the write
                        // landed); the block/trace callers commit it.
                        return Err(Exit::VrtAlarm { kind, addr });
                    }
                }
            }
            Push => {
                if self.push(rs1).is_err() {
                    return Err(Exit::Fault(FaultKind::BadMemory { addr: self.cpu.sp().wrapping_sub(8) }));
                }
                let sp = self.cpu.sp();
                if let Some(vrt) = &mut self.vrt {
                    vrt.note_sp(sp);
                }
            }
            Pop => match self.pop() {
                Ok(v) => self.cpu.set_reg(insn.rd, v),
                Err(_) => return Err(Exit::Fault(FaultKind::BadMemory { addr: self.cpu.sp() })),
            },
            // The block builder never classifies these as straight-line.
            Hlt | Call | CallR | Ret | Jmp | JmpR | Beq | Bne | Blt | Bge | Bltu | Bgeu | Rdtsc | In
            | Out | Vmcall | Syscall | Sysret | Iret | Cli | Sti => {
                unreachable!("terminal opcode {:?} inside a straight-line run", insn.op)
            }
        }
        Ok(())
    }

    /// Executes one instruction; returns an exit if one was raised.
    fn step(&mut self) -> Option<Exit> {
        let pc = self.cpu.pc;
        if self.take_skip(pc) {
            // Armed single-step-over: fall through to execution.
        } else if self.breakpoints.contains(&pc) {
            return Some(Exit::Breakpoint { pc });
        }
        let insn = match self.fetch_decode(pc) {
            Ok(i) => i,
            Err(exit) => return Some(exit),
        };
        if self.trace_cap > 0 {
            if self.trace.len() == self.trace_cap {
                self.trace.pop_front();
            }
            self.trace.push_back(pc);
        }
        self.execute(pc, insn)
    }

    /// Consumes an armed single-step-over for `pc`, if any.
    #[inline]
    fn take_skip(&mut self, pc: Addr) -> bool {
        if self.skip_bp_at.is_empty() {
            return false;
        }
        match self.skip_bp_at.iter().position(|&a| a == pc) {
            Some(i) => {
                self.skip_bp_at.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// The instruction at `pc`: from the decode cache when enabled and warm,
    /// otherwise fetched from memory, decoded, and (when enabled) cached.
    #[inline]
    fn fetch_decode(&mut self, pc: Addr) -> Result<Instruction, Exit> {
        if self.config.decode_cache {
            if let Some(insn) = self.icache.get(pc, &self.mem) {
                return Ok(insn);
            }
        }
        let mut fetch = [0u8; 8];
        if self.mem.read_bytes(pc, &mut fetch).is_err() {
            return Err(Exit::Fault(FaultKind::BadMemory { addr: pc }));
        }
        let insn = match Instruction::decode(&fetch) {
            Ok(i) => i,
            Err(_) => return Err(Exit::Fault(FaultKind::BadInstruction { pc })),
        };
        // Decode-cache misses (every instruction, with the cache off) may
        // carry a front-end cost; it defaults to 0 so virtual time is
        // independent of the cache.
        self.cycles += self.config.costs.decode;
        if self.config.decode_cache {
            self.icache.insert(pc, insn, &self.mem);
        }
        Ok(insn)
    }

    #[allow(clippy::too_many_lines)]
    fn execute(&mut self, pc: Addr, insn: Instruction) -> Option<Exit> {
        use Opcode::*;
        let imm_s = insn.imm as i64 as u64; // sign-extended immediate
        let rs1 = self.cpu.reg(insn.rs1);
        let rs2 = self.cpu.reg(insn.rs2);

        // Privilege check for kernel-only instructions.
        if self.cpu.mode == Mode::User && matches!(insn.op, Hlt | In | Out | Vmcall | Iret | Cli | Sti) {
            return Some(Exit::Fault(FaultKind::Privilege { pc }));
        }

        let mut next_pc = pc + 8;
        let mut exit = None;

        match insn.op {
            Nop => {}
            Hlt => {
                self.cpu.halted = true;
                self.cpu.pc = next_pc;
                self.retire();
                return Some(Exit::Halt);
            }
            Mov => self.cpu.set_reg(insn.rd, rs1),
            MovImm => self.cpu.set_reg(insn.rd, imm_s),
            MovHi => {
                let low = self.cpu.reg(insn.rd) & 0xffff_ffff;
                self.cpu.set_reg(insn.rd, low | (insn.imm as u32 as u64) << 32);
            }
            Add => self.cpu.set_reg(insn.rd, rs1.wrapping_add(rs2)),
            Sub => self.cpu.set_reg(insn.rd, rs1.wrapping_sub(rs2)),
            Mul => self.cpu.set_reg(insn.rd, rs1.wrapping_mul(rs2)),
            Divu => self.cpu.set_reg(insn.rd, rs1.checked_div(rs2).unwrap_or(u64::MAX)),
            And => self.cpu.set_reg(insn.rd, rs1 & rs2),
            Or => self.cpu.set_reg(insn.rd, rs1 | rs2),
            Xor => self.cpu.set_reg(insn.rd, rs1 ^ rs2),
            Shl => self.cpu.set_reg(insn.rd, rs1 << (rs2 & 63)),
            Shr => self.cpu.set_reg(insn.rd, rs1 >> (rs2 & 63)),
            Addi => self.cpu.set_reg(insn.rd, rs1.wrapping_add(imm_s)),
            Andi => self.cpu.set_reg(insn.rd, rs1 & imm_s),
            Ori => self.cpu.set_reg(insn.rd, rs1 | imm_s),
            Xori => self.cpu.set_reg(insn.rd, rs1 ^ imm_s),
            Shli => self.cpu.set_reg(insn.rd, rs1 << (insn.imm as u32 & 63)),
            Shri => self.cpu.set_reg(insn.rd, rs1 >> (insn.imm as u32 & 63)),
            Muli => self.cpu.set_reg(insn.rd, rs1.wrapping_mul(imm_s)),
            Ld | Ld8 => {
                let addr = rs1.wrapping_add(imm_s);
                if is_mmio(addr) {
                    self.pending_io = Some(PendingIo { rd: Some(insn.rd) });
                    return Some(Exit::MmioRead { rd: insn.rd, addr });
                }
                let value = if insn.op == Ld {
                    match self.mem.read_u64(addr) {
                        Ok(v) => v,
                        Err(_) => return Some(Exit::Fault(FaultKind::BadMemory { addr })),
                    }
                } else {
                    match self.mem.read_u8(addr) {
                        Ok(v) => v as u64,
                        Err(_) => return Some(Exit::Fault(FaultKind::BadMemory { addr })),
                    }
                };
                self.cpu.set_reg(insn.rd, value);
            }
            St | St8 => {
                let addr = rs1.wrapping_add(imm_s);
                if let Some(w) = self.watch_addr {
                    if addr <= w && w < addr + 8 {
                        self.watch_hits.push((pc, addr, rs2, self.retired));
                    }
                }
                if is_mmio(addr) {
                    self.pending_io = Some(PendingIo { rd: None });
                    return Some(Exit::MmioWrite { addr, value: rs2 });
                }
                let res = if insn.op == St {
                    self.mem.write_u64(addr, rs2)
                } else {
                    self.mem.write_u8(addr, rs2 as u8)
                };
                if res.is_err() {
                    return Some(Exit::Fault(FaultKind::BadMemory { addr }));
                }
                let sp = self.cpu.sp();
                if let Some(vrt) = &mut self.vrt {
                    if let Some(kind) = vrt.on_store(addr, sp) {
                        // Retire-then-exit: the write landed.
                        exit = Some(Exit::VrtAlarm { kind, addr });
                    }
                }
            }
            Push => {
                if self.push(rs1).is_err() {
                    return Some(Exit::Fault(FaultKind::BadMemory { addr: self.cpu.sp().wrapping_sub(8) }));
                }
                let sp = self.cpu.sp();
                if let Some(vrt) = &mut self.vrt {
                    vrt.note_sp(sp);
                }
            }
            Pop => match self.pop() {
                Ok(v) => self.cpu.set_reg(insn.rd, v),
                Err(_) => return Some(Exit::Fault(FaultKind::BadMemory { addr: self.cpu.sp() })),
            },
            Call | CallR => {
                let target = if insn.op == Call { insn.target() } else { rs1 };
                let ret_addr = pc + 8;
                if self.push(ret_addr).is_err() {
                    return Some(Exit::Fault(FaultKind::BadMemory { addr: self.cpu.sp().wrapping_sub(8) }));
                }
                let outcome = self.cpu.ras.on_call(ret_addr);
                let sp = self.cpu.sp();
                if let Some(vrt) = &mut self.vrt {
                    vrt.on_call(sp);
                }
                next_pc = target;
                if insn.op == CallR {
                    if let Some(table) = &self.config.jop_table {
                        if !table.is_legal(pc, target) {
                            exit = Some(Exit::JopAlarm { branch_pc: pc, target });
                        }
                    }
                }
                if exit.is_none() {
                    if let RasOutcome::Evicted(evicted) = outcome {
                        if self.config.exits.evict_exiting {
                            exit = Some(Exit::RasEvict { evicted, ret_addr });
                        }
                    }
                }
                if exit.is_none() && self.callret_trapped() {
                    exit = Some(Exit::CallTrap { ret_addr, pc });
                }
            }
            Ret => {
                let target = match self.pop() {
                    Ok(v) => v,
                    Err(_) => return Some(Exit::Fault(FaultKind::BadMemory { addr: self.cpu.sp() })),
                };
                let outcome = self.cpu.ras.on_ret(pc, target);
                if let Some(vrt) = &mut self.vrt {
                    vrt.on_ret();
                }
                next_pc = target;
                if let RasOutcome::Mispredict(m) = outcome {
                    if self.cpu.ras.alarms_enabled() {
                        exit = Some(Exit::RasMispredict(m));
                    }
                }
                if exit.is_none() && self.callret_trapped() {
                    exit = Some(Exit::RetTrap { ret_pc: pc, target });
                }
            }
            Jmp => next_pc = insn.target(),
            JmpR => {
                next_pc = rs1;
                if let Some(table) = &self.config.jop_table {
                    if !table.is_legal(pc, rs1) {
                        exit = Some(Exit::JopAlarm { branch_pc: pc, target: rs1 });
                    }
                }
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let taken = match insn.op {
                    Beq => rs1 == rs2,
                    Bne => rs1 != rs2,
                    Blt => (rs1 as i64) < (rs2 as i64),
                    Bge => (rs1 as i64) >= (rs2 as i64),
                    Bltu => rs1 < rs2,
                    Bgeu => rs1 >= rs2,
                    _ => unreachable!(),
                };
                if taken {
                    next_pc = insn.target();
                }
            }
            Rdtsc => {
                if self.config.exits.rdtsc_exiting {
                    self.pending_io = Some(PendingIo { rd: Some(insn.rd) });
                    return Some(Exit::Rdtsc { rd: insn.rd });
                }
                // Native execution: the TSC is the cycle counter.
                self.cpu.set_reg(insn.rd, self.cycles);
            }
            In => {
                self.pending_io = Some(PendingIo { rd: Some(insn.rd) });
                return Some(Exit::PioIn { rd: insn.rd, port: insn.imm as u16 });
            }
            Out => {
                self.pending_io = Some(PendingIo { rd: None });
                return Some(Exit::PioOut { port: insn.imm as u16, value: rs1 });
            }
            Vmcall => {
                self.pending_io = Some(PendingIo { rd: Some(Reg::R1) });
                return Some(Exit::Vmcall);
            }
            Syscall => {
                let flags = self.cpu.mode.to_bits() | (self.cpu.interrupts_enabled as u64) << 1;
                if self.push(pc + 8).is_err() || self.push(flags).is_err() {
                    return Some(Exit::Fault(FaultKind::BadMemory { addr: self.cpu.sp() }));
                }
                self.cpu.set_reg(Reg::R15, insn.imm as u32 as u64);
                self.cpu.mode = Mode::Kernel;
                next_pc = self.config.syscall_entry;
            }
            Sysret | Iret => {
                let flags = match self.pop() {
                    Ok(v) => v,
                    Err(_) => return Some(Exit::Fault(FaultKind::BadMemory { addr: self.cpu.sp() })),
                };
                let target = match self.pop() {
                    Ok(v) => v,
                    Err(_) => return Some(Exit::Fault(FaultKind::BadMemory { addr: self.cpu.sp() })),
                };
                self.cpu.mode = Mode::from_bits(flags);
                if insn.op == Iret {
                    self.cpu.interrupts_enabled = flags & 2 != 0;
                }
                next_pc = target;
            }
            Cli => self.cpu.interrupts_enabled = false,
            Sti => self.cpu.interrupts_enabled = true,
        }

        self.cpu.pc = next_pc;
        self.retire();
        exit
    }
}

/// True for instructions that neither transfer control, touch privileged /
/// device state, nor change the interrupt flag — the block builder packs
/// runs of these; everything else terminates a block. Cli/Sti terminate so
/// an armed interrupt window opening mid-run is observed at exactly the same
/// retirement point as in the single-step interpreter.
fn is_straight(op: Opcode) -> bool {
    use Opcode::*;
    matches!(
        op,
        Nop | Mov
            | MovImm
            | MovHi
            | Add
            | Sub
            | Mul
            | Divu
            | And
            | Or
            | Xor
            | Shl
            | Shr
            | Addi
            | Andi
            | Ori
            | Xori
            | Shli
            | Shri
            | Muli
            | Ld
            | St
            | Ld8
            | St8
            | Push
            | Pop
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnr_isa::Assembler;
    use rnr_ras::RasConfig;

    fn vm_with(build: impl FnOnce(&mut Assembler)) -> GuestVm {
        let mut asm = Assembler::new(0x1000);
        build(&mut asm);
        let image = asm.assemble().unwrap();
        let mut config = MachineConfig::default();
        config.exits.rdtsc_exiting = false;
        let mut vm = GuestVm::new(config, &[&image]);
        vm.set_entry(0x1000);
        vm.cpu_mut().set_sp(0x8_0000);
        vm
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut vm = vm_with(|a| {
            a.movi(Reg::R1, 20);
            a.movi(Reg::R2, 22);
            a.add(Reg::R3, Reg::R1, Reg::R2);
            a.hlt();
        });
        assert_eq!(vm.run(RunBudget::unbounded()), Exit::Halt);
        assert_eq!(vm.cpu().reg(Reg::R3), 42);
        assert_eq!(vm.retired(), 4);
        assert!(vm.cpu().halted);
    }

    #[test]
    fn call_ret_round_trip_no_alarm() {
        let mut vm = vm_with(|a| {
            a.call("f");
            a.hlt();
            a.label("f");
            a.movi(Reg::R1, 7);
            a.ret();
        });
        assert_eq!(vm.run(RunBudget::unbounded()), Exit::Halt);
        assert_eq!(vm.cpu().reg(Reg::R1), 7);
        assert_eq!(vm.cpu().ras.counters().hits, 1);
        assert_eq!(vm.cpu().ras.counters().mispredictions(), 0);
    }

    #[test]
    fn corrupted_return_address_raises_mispredict_exit() {
        let mut vm = vm_with(|a| {
            a.call("f");
            a.label("dead_end");
            a.hlt();
            a.label("f");
            // Overwrite the on-stack return address, like a buffer overflow.
            a.movi(Reg::R1, 0x1000);
            a.st(Reg::SP, 0, Reg::R1);
            a.ret();
        });
        match vm.run(RunBudget::unbounded()) {
            Exit::RasMispredict(m) => {
                assert_eq!(m.actual, 0x1000);
                assert_eq!(m.predicted, Some(0x1008));
            }
            other => panic!("unexpected exit {other:?}"),
        }
        // Execution continued at the actual (attacker) target.
        assert_eq!(vm.cpu().pc, 0x1000);
    }

    #[test]
    fn budget_stops_exactly() {
        let mut vm = vm_with(|a| {
            a.label("spin");
            a.addi(Reg::R1, Reg::R1, 1);
            a.jmp("spin");
        });
        assert_eq!(vm.run(RunBudget::until(7)), Exit::BudgetExhausted);
        assert_eq!(vm.retired(), 7);
        assert_eq!(vm.run(RunBudget::until(7)), Exit::BudgetExhausted);
        assert_eq!(vm.retired(), 7);
    }

    #[test]
    fn rdtsc_native_vs_trapped() {
        let mut vm = vm_with(|a| {
            a.rdtsc(Reg::R1);
            a.hlt();
        });
        assert_eq!(vm.run(RunBudget::unbounded()), Exit::Halt);
        assert_eq!(vm.cpu().reg(Reg::R1), 0); // cycles at fetch time

        let mut vm2 = vm_with(|a| {
            a.rdtsc(Reg::R1);
            a.hlt();
        });
        vm2.exit_controls_mut().rdtsc_exiting = true;
        assert_eq!(vm2.run(RunBudget::unbounded()), Exit::Rdtsc { rd: Reg::R1 });
        vm2.finish_io(FinishIo::Read { rd: Reg::R1, value: 0x5555 });
        assert_eq!(vm2.run(RunBudget::unbounded()), Exit::Halt);
        assert_eq!(vm2.cpu().reg(Reg::R1), 0x5555);
    }

    #[test]
    fn pio_exits_and_completes() {
        let mut vm = vm_with(|a| {
            a.movi(Reg::R2, 0xbeef);
            a.pio_out(0x30, Reg::R2);
            a.pio_in(Reg::R3, 0x40);
            a.hlt();
        });
        assert_eq!(vm.run(RunBudget::unbounded()), Exit::PioOut { port: 0x30, value: 0xbeef });
        vm.finish_io(FinishIo::Write);
        assert_eq!(vm.run(RunBudget::unbounded()), Exit::PioIn { rd: Reg::R3, port: 0x40 });
        vm.finish_io(FinishIo::Read { rd: Reg::R3, value: 9 });
        assert_eq!(vm.run(RunBudget::unbounded()), Exit::Halt);
        assert_eq!(vm.cpu().reg(Reg::R3), 9);
    }

    #[test]
    fn mmio_access_exits() {
        let mut vm = vm_with(|a| {
            a.movi64(Reg::R1, crate::MMIO_NIC_RX_PENDING);
            a.ld(Reg::R2, Reg::R1, 0);
            a.hlt();
        });
        match vm.run(RunBudget::unbounded()) {
            Exit::MmioRead { rd, addr } => {
                assert_eq!(rd, Reg::R2);
                assert_eq!(addr, crate::MMIO_NIC_RX_PENDING);
            }
            other => panic!("unexpected {other:?}"),
        }
        vm.finish_io(FinishIo::Read { rd: Reg::R2, value: 3 });
        assert_eq!(vm.run(RunBudget::unbounded()), Exit::Halt);
        assert_eq!(vm.cpu().reg(Reg::R2), 3);
    }

    #[test]
    fn user_mode_privilege_fault() {
        let mut vm = vm_with(|a| {
            a.cli();
        });
        vm.cpu_mut().mode = Mode::User;
        assert_eq!(vm.run(RunBudget::unbounded()), Exit::Fault(FaultKind::Privilege { pc: 0x1000 }));
    }

    #[test]
    fn syscall_and_sysret() {
        let entry = 0x1000 + 8;
        let mut vm = {
            let mut asm = Assembler::new(0x1000);
            asm.jmp("user");
            asm.label("entry");
            asm.mov(Reg::R5, Reg::R15);
            asm.sysret();
            asm.label("user");
            asm.syscall(42);
            asm.hlt();
            let image = asm.assemble().unwrap();
            let mut config = MachineConfig { syscall_entry: entry, ..MachineConfig::default() };
            config.exits.rdtsc_exiting = false;
            let mut vm = GuestVm::new(config, &[&image]);
            vm.set_entry(0x1000);
            vm.cpu_mut().set_sp(0x8_0000);
            vm
        };
        vm.cpu_mut().mode = Mode::User;
        // User-mode hlt after sysret faults with Privilege; that proves the
        // mode round-tripped through syscall/sysret.
        let user_hlt_pc = vm.config().syscall_entry + 16 + 8;
        assert_eq!(vm.run(RunBudget::unbounded()), Exit::Fault(FaultKind::Privilege { pc: user_hlt_pc }));
        assert_eq!(vm.cpu().reg(Reg::R5), 42);
        assert_eq!(vm.cpu().mode, Mode::User);
        // Syscall/sysret never touch the RAS.
        assert_eq!(vm.cpu().ras.counters().calls, 0);
        assert_eq!(vm.cpu().ras.counters().rets, 0);
    }

    #[test]
    fn interrupt_injection_and_iret() {
        let mut vm = vm_with(|a| {
            a.label("main");
            a.sti();
            a.movi(Reg::R1, 1);
            a.label("loop");
            a.jmp("loop");
            a.label("handler");
            a.movi(Reg::R2, 99);
            a.iret();
        });
        // Install the IVT entry for IRQ 0.
        let handler = 0x1000 + 3 * 8;
        let ivt = vm.config().ivt_base;
        vm.mem_mut().write_u64(ivt, handler).unwrap();
        assert_eq!(vm.run(RunBudget::until(5)), Exit::BudgetExhausted);
        assert!(vm.can_inject());
        vm.inject_interrupt(0).unwrap();
        let sp_in_handler = vm.cpu().sp();
        assert_eq!(vm.cpu().pc, handler);
        assert!(!vm.cpu().interrupts_enabled);
        assert_eq!(vm.run(RunBudget::until(vm.retired() + 2)), Exit::BudgetExhausted);
        // After iret: interrupts re-enabled, back in the loop.
        assert!(vm.cpu().interrupts_enabled);
        assert_eq!(vm.cpu().reg(Reg::R2), 99);
        assert_eq!(vm.cpu().sp(), sp_in_handler + 16);
    }

    #[test]
    fn interrupt_rejected_when_disabled() {
        let mut vm = vm_with(|a| {
            a.nop();
            a.hlt();
        });
        assert_eq!(vm.inject_interrupt(0), Err(InjectError::Disabled));
    }

    #[test]
    fn interrupt_window_exit_on_sti() {
        let mut vm = vm_with(|a| {
            a.nop();
            a.sti();
            a.nop();
            a.hlt();
        });
        vm.request_interrupt_window();
        assert_eq!(vm.run(RunBudget::unbounded()), Exit::InterruptWindow);
        assert!(vm.cpu().interrupts_enabled);
        // Window consumed; next run continues to halt.
        assert_eq!(vm.run(RunBudget::unbounded()), Exit::Halt);
    }

    #[test]
    fn breakpoint_exits_before_instruction_and_skips_once() {
        let mut vm = vm_with(|a| {
            a.movi(Reg::R1, 1);
            a.movi(Reg::R2, 2);
            a.hlt();
        });
        vm.add_breakpoint(0x1008);
        assert_eq!(vm.run(RunBudget::unbounded()), Exit::Breakpoint { pc: 0x1008 });
        assert_eq!(vm.cpu().reg(Reg::R2), 0); // not yet executed
        vm.skip_breakpoint_once();
        assert_eq!(vm.run(RunBudget::unbounded()), Exit::Halt);
        assert_eq!(vm.cpu().reg(Reg::R2), 2);
    }

    #[test]
    fn callret_trap_kernel_only() {
        let build = |a: &mut Assembler| {
            a.call("f");
            a.hlt();
            a.label("f");
            a.ret();
        };
        let mut vm = vm_with(build);
        vm.exit_controls_mut().callret_trap = CallRetTrap::KernelOnly;
        assert_eq!(vm.run(RunBudget::unbounded()), Exit::CallTrap { ret_addr: 0x1008, pc: 0x1000 });
        assert_eq!(vm.run(RunBudget::unbounded()), Exit::RetTrap { ret_pc: 0x1010, target: 0x1008 });
        assert_eq!(vm.run(RunBudget::unbounded()), Exit::Halt);

        // In user mode with KernelOnly, no traps fire.
        let mut vm = vm_with(build);
        vm.exit_controls_mut().callret_trap = CallRetTrap::KernelOnly;
        vm.cpu_mut().mode = Mode::User;
        // hlt faults in user mode; check we got there without traps.
        let r = vm.run(RunBudget::unbounded());
        assert!(matches!(r, Exit::Fault(FaultKind::Privilege { .. })), "{r:?}");
    }

    #[test]
    fn evict_exit_on_ras_overflow() {
        let mut asm = Assembler::new(0x1000);
        // Recursive function that calls itself `r1` times.
        asm.movi(Reg::R1, 5);
        asm.call("rec");
        asm.hlt();
        asm.label("rec");
        asm.movi(Reg::R2, 0);
        asm.beq(Reg::R1, Reg::R2, "done");
        asm.addi(Reg::R1, Reg::R1, -1);
        asm.call("rec");
        asm.label("done");
        asm.ret();
        let image = asm.assemble().unwrap();
        let mut config = MachineConfig::default();
        config.exits.rdtsc_exiting = false;
        config.ras = RasConfig::extended(2);
        let mut vm = GuestVm::new(config, &[&image]);
        vm.set_entry(0x1000);
        vm.cpu_mut().set_sp(0x8_0000);
        // Depth reaches 6 > 2: evict exits fire.
        let mut evicts = 0;
        let mut underflows = 0;
        loop {
            match vm.run(RunBudget::unbounded()) {
                Exit::RasEvict { .. } => evicts += 1,
                Exit::RasMispredict(m) => {
                    assert_eq!(m.kind, rnr_ras::MispredictKind::Underflow);
                    underflows += 1;
                }
                Exit::Halt => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(evicts, 4);
        assert_eq!(underflows, 4);
        // All returns went to the right place despite mispredictions.
        assert_eq!(vm.cpu().reg(Reg::R1), 0);
    }

    #[test]
    fn self_modifying_code_invalidates_decode_cache() {
        // The first pass executes (and caches) `movi r2, 11`, then patches
        // that very instruction to `movi r2, 22` and jumps back to it. The
        // store bumps the page version, so the second pass must re-decode.
        let patched =
            u64::from_le_bytes(Instruction::new(Opcode::MovImm, Reg::R2, Reg::R0, Reg::R0, 22).encode());
        let build = move |a: &mut Assembler| {
            a.label("patchme");
            a.movi(Reg::R2, 11);
            a.movi(Reg::R6, 0);
            a.bne(Reg::R3, Reg::R6, "done");
            a.movi(Reg::R3, 1);
            a.movi64(Reg::R5, patched);
            a.movi64(Reg::R4, 0x1000);
            a.st(Reg::R4, 0, Reg::R5);
            a.jmp("patchme");
            a.label("done");
            a.hlt();
        };
        let run = |decode_cache: bool, block_engine: bool| {
            let mut vm = vm_with(build);
            vm.config.decode_cache = decode_cache;
            vm.config.block_engine = block_engine;
            assert_eq!(vm.run(RunBudget::unbounded()), Exit::Halt);
            vm
        };
        let fresh = run(false, false);
        for (dc, be) in [(true, false), (false, true), (true, true)] {
            let vm = run(dc, be);
            assert_eq!(vm.cpu().reg(Reg::R2), 22, "stale decode executed (dc={dc}, be={be})");
            assert_eq!(vm.digest(), fresh.digest());
            assert_eq!(vm.retired(), fresh.retired());
            assert_eq!(vm.cycles(), fresh.cycles());
        }
    }

    #[test]
    fn decode_cache_does_not_change_execution() {
        let build = |a: &mut Assembler| {
            a.movi(Reg::R1, 50);
            a.label("loop");
            a.st(Reg::SP, -64, Reg::R1);
            a.addi(Reg::R1, Reg::R1, -1);
            a.movi(Reg::R2, 0);
            a.bne(Reg::R1, Reg::R2, "loop");
            a.hlt();
        };
        let mut cached = vm_with(build);
        let mut fresh = vm_with(build);
        fresh.config.decode_cache = false;
        fresh.config.block_engine = false;
        assert_eq!(cached.run(RunBudget::unbounded()), Exit::Halt);
        assert_eq!(fresh.run(RunBudget::unbounded()), Exit::Halt);
        assert_eq!(cached.digest(), fresh.digest());
        assert_eq!(cached.cycles(), fresh.cycles());
        assert_eq!(cached.retired(), fresh.retired());
        let stats = cached.block_stats();
        assert!(stats.hits > 0, "the loop re-enters a cached block: {stats:?}");
    }

    #[test]
    fn block_engine_budgets_stop_exactly_mid_block() {
        // A long straight-line run: the retired and cycle budgets both land
        // in the middle of the cached block and must stop at exactly the
        // same points as the single-step interpreter.
        let build = |a: &mut Assembler| {
            for i in 0..64 {
                a.movi(Reg::R1, i);
            }
            a.hlt();
        };
        let mut blocked = vm_with(build);
        let mut stepped = vm_with(build);
        stepped.config.block_engine = false;
        for vm in [&mut blocked, &mut stepped] {
            assert_eq!(vm.run(RunBudget::until(10)), Exit::BudgetExhausted);
            assert_eq!(vm.retired(), 10);
            assert_eq!(vm.run(RunBudget::until_cycles(25)), Exit::BudgetExhausted);
            assert_eq!(vm.run(RunBudget::unbounded()), Exit::Halt);
        }
        assert_eq!(blocked.retired(), stepped.retired());
        assert_eq!(blocked.cycles(), stepped.cycles());
        assert_eq!(blocked.digest(), stepped.digest());
    }

    #[test]
    fn block_engine_respects_mid_block_breakpoint_and_skip() {
        let build = |a: &mut Assembler| {
            a.movi(Reg::R1, 1);
            a.movi(Reg::R2, 2);
            a.movi(Reg::R3, 3);
            a.hlt();
        };
        let mut blocked = vm_with(build);
        let mut stepped = vm_with(build);
        stepped.config.block_engine = false;
        for vm in [&mut blocked, &mut stepped] {
            vm.add_breakpoint(0x1010);
            assert_eq!(vm.run(RunBudget::unbounded()), Exit::Breakpoint { pc: 0x1010 });
            assert_eq!(vm.cpu().reg(Reg::R3), 0, "breakpointed instruction not yet executed");
            vm.skip_breakpoint_once();
            assert_eq!(vm.run(RunBudget::unbounded()), Exit::Halt);
        }
        assert_eq!(blocked.retired(), stepped.retired());
        assert_eq!(blocked.cycles(), stepped.cycles());
        assert_eq!(blocked.digest(), stepped.digest());
    }

    #[test]
    fn block_engine_handles_unaligned_entry_pc() {
        // A hijacked return can land mid-instruction: hand-place decodable
        // instructions at an unaligned address and enter there. The block
        // engine must fall back to single-stepping with identical results.
        let insn_at =
            |op, rd, imm| u64::from_le_bytes(Instruction::new(op, rd, Reg::R0, Reg::R0, imm).encode());
        let run = |block_engine: bool| {
            let mut vm = vm_with(|a| {
                a.hlt();
            });
            vm.config.block_engine = block_engine;
            vm.mem_mut().write_u64(0x2004, insn_at(Opcode::MovImm, Reg::R1, 77)).unwrap();
            vm.mem_mut().write_u64(0x200c, insn_at(Opcode::Jmp, Reg::R0, 0x1000)).unwrap();
            vm.set_entry(0x2004);
            assert_eq!(vm.run(RunBudget::unbounded()), Exit::Halt);
            vm
        };
        let blocked = run(true);
        let stepped = run(false);
        assert_eq!(blocked.cpu().reg(Reg::R1), 77);
        assert_eq!(blocked.retired(), stepped.retired());
        assert_eq!(blocked.cycles(), stepped.cycles());
        assert_eq!(blocked.digest(), stepped.digest());
    }

    #[test]
    fn digest_changes_with_state() {
        let mut vm = vm_with(|a| {
            a.movi(Reg::R1, 1);
            a.hlt();
        });
        let d0 = vm.digest();
        vm.run(RunBudget::unbounded());
        let d1 = vm.digest();
        assert_ne!(d0, d1);
        vm.mem_mut().write_u8(0x2000, 1).unwrap();
        assert_ne!(vm.digest(), d1);
    }

    #[test]
    fn identical_runs_have_identical_digests() {
        let build = |a: &mut Assembler| {
            a.movi(Reg::R1, 100);
            a.label("loop");
            a.st(Reg::SP, -64, Reg::R1);
            a.addi(Reg::R1, Reg::R1, -1);
            a.movi(Reg::R2, 0);
            a.bne(Reg::R1, Reg::R2, "loop");
            a.hlt();
        };
        let mut a = vm_with(build);
        let mut b = vm_with(build);
        a.run(RunBudget::unbounded());
        b.run(RunBudget::unbounded());
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.retired(), b.retired());
    }

    /// A loop hot enough to cross the trace-heat threshold many times over.
    fn hot_loop(iters: i32) -> impl Fn(&mut Assembler) + Copy {
        move |a: &mut Assembler| {
            a.movi(Reg::R1, iters);
            a.movi(Reg::R2, 0);
            a.label("loop");
            a.st(Reg::SP, -64, Reg::R1);
            a.addi(Reg::R3, Reg::R3, 5);
            a.addi(Reg::R1, Reg::R1, -1);
            a.bne(Reg::R1, Reg::R2, "loop");
            a.hlt();
        }
    }

    /// Three engines over the same program must agree exactly.
    fn assert_engines_agree(build: impl Fn(&mut Assembler) + Copy) -> BlockStats {
        let run = |block: bool, sb: bool| {
            let mut vm = vm_with(build);
            vm.config.block_engine = block;
            vm.config.superblocks = sb;
            assert_eq!(vm.run(RunBudget::unbounded()), Exit::Halt);
            vm
        };
        let traced = run(true, true);
        let blocked = run(true, false);
        let stepped = run(false, false);
        for vm in [&blocked, &stepped] {
            assert_eq!(traced.digest(), vm.digest());
            assert_eq!(traced.retired(), vm.retired());
            assert_eq!(traced.cycles(), vm.cycles());
        }
        traced.block_stats()
    }

    #[test]
    fn superblocks_match_stepped_on_hot_loop() {
        let stats = assert_engines_agree(hot_loop(500));
        assert!(stats.trace_builds > 0, "hot head crossed the heat threshold: {stats:?}");
        assert!(stats.trace_hits > 0, "trace re-dispatched: {stats:?}");
    }

    #[test]
    fn superblocks_match_stepped_on_hot_call_ret() {
        let stats = assert_engines_agree(|a| {
            a.movi(Reg::R1, 300);
            a.movi(Reg::R2, 0);
            a.label("loop");
            a.call("f");
            a.addi(Reg::R1, Reg::R1, -1);
            a.bne(Reg::R1, Reg::R2, "loop");
            a.hlt();
            a.label("f");
            a.addi(Reg::R4, Reg::R4, 1);
            a.ret();
        });
        assert!(stats.trace_hits > 0, "call/ret chain traced: {stats:?}");
    }

    #[test]
    fn superblock_smc_invalidates_whole_trace() {
        // The loop patches one of its own instructions after the trace is
        // hot: every constituent-page bump must flush the trace and the
        // partial commit must match single-stepping exactly.
        let patched =
            u64::from_le_bytes(Instruction::new(Opcode::MovImm, Reg::R5, Reg::R0, Reg::R0, 9).encode());
        let stats = assert_engines_agree(move |a| {
            a.movi(Reg::R1, 300);
            a.movi(Reg::R2, 0);
            a.movi64(Reg::R6, patched);
            a.movi(Reg::R8, 100);
            a.label("loop");
            a.label("patchme");
            a.movi(Reg::R5, 4);
            // Patch the hot loop's own body exactly once, long after the
            // trace has formed (iteration counts down from 300; the store
            // fires at 100).
            a.bne(Reg::R1, Reg::R8, "skip");
            a.lea(Reg::R7, "patchme");
            a.st(Reg::R7, 0, Reg::R6);
            a.label("skip");
            a.addi(Reg::R1, Reg::R1, -1);
            a.bne(Reg::R1, Reg::R2, "loop");
            a.hlt();
        });
        assert!(stats.trace_flushes > 0, "self-patching flushed the trace: {stats:?}");
        assert!(stats.trace_builds >= 2, "the head re-heats and rebuilds after the flush: {stats:?}");
    }

    #[test]
    fn superblock_budget_cuts_dispatch_to_a_prefix() {
        // Tiny retired budgets land mid-trace on every dispatch: the
        // horizon-cut prefix must stop at exactly the same instruction
        // as the stepped engine.
        let run = |sb: bool| {
            let mut vm = vm_with(hot_loop(400));
            vm.config.block_engine = sb;
            vm.config.superblocks = sb;
            let mut stop = 0;
            loop {
                stop += 7;
                match vm.run(RunBudget::until(stop)) {
                    Exit::BudgetExhausted => assert_eq!(vm.retired(), stop),
                    Exit::Halt => return vm,
                    other => panic!("unexpected exit {other:?}"),
                }
            }
        };
        let traced = run(true);
        let stepped = run(false);
        assert_eq!(traced.digest(), stepped.digest());
        assert_eq!(traced.retired(), stepped.retired());
        assert_eq!(traced.cycles(), stepped.cycles());
        let stats = traced.block_stats();
        assert!(stats.trace_hits > 0, "prefix dispatches still count as hits: {stats:?}");
    }

    #[test]
    fn superblock_respects_breakpoint_inside_trace() {
        // Warm the trace, then drop a breakpoint on an op in its middle:
        // the dispatch prefix must stop short and step() must fire the
        // breakpoint at exactly the stepped engine's instruction count.
        let run = |sb: bool| {
            let mut vm = vm_with(hot_loop(400));
            vm.config.block_engine = sb;
            vm.config.superblocks = sb;
            assert_eq!(vm.run(RunBudget::until(1000)), Exit::BudgetExhausted);
            // The `addi r3` op inside the loop body (entry 0x1000, two
            // movi, then the loop's store at 0x1010 and addi at 0x1018).
            vm.add_breakpoint(0x1018);
            assert_eq!(vm.run(RunBudget::unbounded()), Exit::Breakpoint { pc: 0x1018 });
            let at_bp = vm.retired();
            vm.skip_breakpoint_once();
            vm.remove_breakpoint(0x1018);
            assert_eq!(vm.run(RunBudget::unbounded()), Exit::Halt);
            (vm, at_bp)
        };
        let (traced, traced_bp) = run(true);
        let (stepped, stepped_bp) = run(false);
        assert_eq!(traced_bp, stepped_bp);
        assert_eq!(traced.digest(), stepped.digest());
        assert_eq!(traced.retired(), stepped.retired());
        assert_eq!(traced.cycles(), stepped.cycles());
    }

    #[test]
    fn superblock_knob_is_wall_clock_only_on_indirect_code() {
        // Indirect jumps whose target alternates: the trace's
        // expected-target guard mispredicts on every other iteration and
        // must side-exit with exact partial commits.
        assert_engines_agree(|a| {
            a.movi(Reg::R1, 400);
            a.movi(Reg::R2, 0);
            a.label("loop");
            a.andi(Reg::R4, Reg::R1, 1);
            a.lea(Reg::R5, "even");
            a.lea(Reg::R6, "odd");
            a.bne(Reg::R4, Reg::R2, "go_odd");
            a.jmpr(Reg::R5);
            a.label("go_odd");
            a.jmpr(Reg::R6);
            a.label("even");
            a.addi(Reg::R3, Reg::R3, 2);
            a.jmp("next");
            a.label("odd");
            a.addi(Reg::R3, Reg::R3, 3);
            a.label("next");
            a.addi(Reg::R1, Reg::R1, -1);
            a.bne(Reg::R1, Reg::R2, "loop");
            a.hlt();
        });
    }
}
