//! CPU architectural state.

use rnr_isa::{Addr, Reg};
use rnr_ras::{RasConfig, RasUnit};

/// Privilege mode of the guest CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Mode {
    /// Kernel (privileged) mode.
    Kernel,
    /// User (unprivileged) mode.
    User,
}

impl Mode {
    /// Encodes into the on-stack flags word used by interrupt/syscall frames.
    pub fn to_bits(self) -> u64 {
        match self {
            Mode::Kernel => 0,
            Mode::User => 1,
        }
    }

    /// Decodes from on-stack flags (only the low bit is significant).
    pub fn from_bits(bits: u64) -> Mode {
        if bits & 1 == 0 {
            Mode::Kernel
        } else {
            Mode::User
        }
    }
}

/// The guest CPU: registers, PC, privilege mode, interrupt flag, and the
/// hardware RAS unit.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u64; Reg::COUNT],
    /// The program counter.
    pub pc: Addr,
    /// Current privilege mode.
    pub mode: Mode,
    /// External-interrupt enable flag (`cli`/`sti`).
    pub interrupts_enabled: bool,
    /// Set by `hlt`, cleared by interrupt injection.
    pub halted: bool,
    /// The hardware Return Address Stack.
    pub ras: RasUnit,
}

/// Serializable CPU snapshot stored in checkpoints ("a page with the
/// processor state at the time of checkpoint: PC, stack pointer, and the
/// rest of the registers", §4.6.1) plus the RAS contents.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CpuState {
    /// General-purpose registers.
    pub regs: [u64; Reg::COUNT],
    /// Program counter.
    pub pc: Addr,
    /// Privilege mode.
    pub mode: Mode,
    /// Interrupt enable flag.
    pub interrupts_enabled: bool,
    /// Halt state.
    pub halted: bool,
    /// Live RAS entries (bottom first).
    pub ras_entries: Vec<Addr>,
}

impl Cpu {
    /// A CPU reset to kernel mode at `entry`, interrupts disabled.
    pub fn new(entry: Addr, ras: RasConfig) -> Cpu {
        Cpu {
            regs: [0; Reg::COUNT],
            pc: entry,
            mode: Mode::Kernel,
            interrupts_enabled: false,
            halted: false,
            ras: RasUnit::new(ras),
        }
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// The stack pointer (`sp` = `r14`).
    pub fn sp(&self) -> Addr {
        self.reg(Reg::SP)
    }

    /// Sets the stack pointer.
    pub fn set_sp(&mut self, v: Addr) {
        self.set_reg(Reg::SP, v);
    }

    /// Captures a checkpointable snapshot.
    pub fn save_state(&self) -> CpuState {
        CpuState {
            regs: self.regs,
            pc: self.pc,
            mode: self.mode,
            interrupts_enabled: self.interrupts_enabled,
            halted: self.halted,
            ras_entries: self.ras.snapshot(),
        }
    }

    /// Restores a snapshot taken with [`Cpu::save_state`].
    pub fn restore_state(&mut self, s: &CpuState) {
        self.regs = s.regs;
        self.pc = s.pc;
        self.mode = s.mode;
        self.interrupts_enabled = s.interrupts_enabled;
        self.halted = s.halted;
        self.ras.restore_snapshot(&s.ras_entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_bits_round_trip() {
        assert_eq!(Mode::from_bits(Mode::Kernel.to_bits()), Mode::Kernel);
        assert_eq!(Mode::from_bits(Mode::User.to_bits()), Mode::User);
        assert_eq!(Mode::from_bits(0xff), Mode::User);
    }

    #[test]
    fn reset_state() {
        let cpu = Cpu::new(0x1000, RasConfig::default());
        assert_eq!(cpu.pc, 0x1000);
        assert_eq!(cpu.mode, Mode::Kernel);
        assert!(!cpu.interrupts_enabled);
        assert!(!cpu.halted);
        assert_eq!(cpu.reg(Reg::R5), 0);
    }

    #[test]
    fn save_restore_round_trip() {
        let mut cpu = Cpu::new(0, RasConfig::default());
        cpu.set_reg(Reg::R3, 99);
        cpu.set_sp(0x8000);
        cpu.mode = Mode::User;
        cpu.ras.on_call(0x1234);
        let snap = cpu.save_state();

        let mut other = Cpu::new(0, RasConfig::default());
        other.restore_state(&snap);
        assert_eq!(other.reg(Reg::R3), 99);
        assert_eq!(other.sp(), 0x8000);
        assert_eq!(other.mode, Mode::User);
        assert_eq!(other.ras.snapshot(), vec![0x1234]);
    }
}
