//! The platform's I/O port map, MMIO window, and interrupt lines.
//!
//! These constants define the "virtual motherboard" shared by the guest
//! kernel (`rnr-guest`), the device emulation in the hypervisor
//! (`rnr-hypervisor`), and the workload programs.

/// Disk controller: target sector number (write-only latch).
pub const PORT_DISK_SECTOR: u16 = 0x10;
/// Disk controller: guest-physical DMA address (write-only latch).
pub const PORT_DISK_ADDR: u16 = 0x11;
/// Disk controller: sector count (write-only latch).
pub const PORT_DISK_COUNT: u16 = 0x12;
/// Disk controller: command register; writing [`DISK_CMD_READ`] or
/// [`DISK_CMD_WRITE`] starts the operation, completion raises [`IRQ_DISK`].
pub const PORT_DISK_CMD: u16 = 0x13;

/// NIC: guest-physical address of the frame to transmit (write-only latch).
pub const PORT_NIC_TX_ADDR: u16 = 0x20;
/// NIC: length of the frame to transmit (write-only latch).
pub const PORT_NIC_TX_LEN: u16 = 0x21;
/// NIC: transmit command; writing 1 sends the latched frame.
pub const PORT_NIC_TX_CMD: u16 = 0x22;

/// Console output: bytes written appear on the (host-side) console.
pub const PORT_CONSOLE: u16 = 0x30;

/// Hardware random number source (non-deterministic input, logged).
pub const PORT_RNG: u16 = 0x40;

/// VRT doorbell: region base address (write-only latch).
pub const PORT_VRT_BASE: u16 = 0x50;
/// VRT doorbell: region length in bytes (write-only latch).
pub const PORT_VRT_LEN: u16 = 0x51;
/// VRT doorbell: command register; [`VRT_CMD_DECLARE`] inserts the latched
/// region into the Variable Record Table, [`VRT_CMD_RETIRE`] removes the
/// entry declared at the latched base. Deterministic guest-visible no-ops
/// (no readable state, no interrupt), so they need no log records.
pub const PORT_VRT_CMD: u16 = 0x52;

/// VRT command: declare the latched `[base, base + len)` region live.
pub const VRT_CMD_DECLARE: u64 = 1;
/// VRT command: retire the region declared at the latched base.
pub const VRT_CMD_RETIRE: u64 = 2;

/// Disk command: read sectors into guest memory via DMA.
pub const DISK_CMD_READ: u64 = 1;
/// Disk command: write sectors from guest memory.
pub const DISK_CMD_WRITE: u64 = 2;

/// Base of the memory-mapped I/O window (accesses exit to the hypervisor).
pub const MMIO_BASE: u64 = 0xF000_0000;
/// Size of the MMIO window in bytes.
pub const MMIO_LEN: u64 = 0x0010_0000;

/// NIC MMIO register: number of received frames pending in the RX ring.
pub const MMIO_NIC_RX_PENDING: u64 = MMIO_BASE;
/// NIC MMIO register: length of the frame at the RX ring head.
pub const MMIO_NIC_RX_LEN: u64 = MMIO_BASE + 8;
/// NIC MMIO register: writing pops the RX ring head.
pub const MMIO_NIC_RX_POP: u64 = MMIO_BASE + 16;

/// Timer interrupt line.
pub const IRQ_TIMER: u8 = 0;
/// Disk completion interrupt line.
pub const IRQ_DISK: u8 = 1;
/// NIC receive interrupt line.
pub const IRQ_NIC: u8 = 2;
/// Number of interrupt lines.
pub const IRQ_LINES: usize = 3;

/// Disk sector size in bytes.
pub const SECTOR_SIZE: usize = 512;

/// True if `addr` falls inside the MMIO window.
pub fn is_mmio(addr: u64) -> bool {
    (MMIO_BASE..MMIO_BASE + MMIO_LEN).contains(&addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmio_window_bounds() {
        assert!(is_mmio(MMIO_BASE));
        assert!(is_mmio(MMIO_NIC_RX_POP));
        assert!(!is_mmio(MMIO_BASE - 1));
        assert!(!is_mmio(MMIO_BASE + MMIO_LEN));
    }
}
