//! The virtual disk block store.

use std::fmt;
use std::sync::Arc;

use crate::mem::PAGE_SIZE;
use crate::SECTOR_SIZE;

type Block = [u8; PAGE_SIZE];

/// Sector-addressed virtual disk contents.
///
/// Internally page-granular and copy-on-write, exactly like
/// [`Memory`](crate::Memory): checkpoints snapshot "the memory pages **and disk
/// blocks** modified since the prior checkpoint" (§4.6.1), so the disk uses
/// the same epoch-based dirty tracking.
#[derive(Debug, Clone)]
pub struct BlockStore {
    blocks: Vec<Arc<Block>>,
    dirty_epoch: Vec<u64>,
    epoch: u64,
}

/// Error from out-of-range sector access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectorOutOfRange {
    sector: u64,
}

impl fmt::Display for SectorOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "disk sector {} out of range", self.sector)
    }
}

impl std::error::Error for SectorOutOfRange {}

impl BlockStore {
    /// Sectors per internal block/page.
    pub const SECTORS_PER_BLOCK: usize = PAGE_SIZE / SECTOR_SIZE;

    /// Allocates a zeroed disk of `bytes` (rounded up to whole blocks).
    pub fn new(bytes: usize) -> BlockStore {
        let n = bytes.div_ceil(PAGE_SIZE);
        let zero: Arc<Block> = Arc::new([0u8; PAGE_SIZE]);
        BlockStore { blocks: vec![zero; n], dirty_epoch: vec![0; n], epoch: 1 }
    }

    /// Disk capacity in sectors.
    pub fn sector_count(&self) -> u64 {
        (self.blocks.len() * Self::SECTORS_PER_BLOCK) as u64
    }

    /// Disk capacity in bytes.
    pub fn len(&self) -> usize {
        self.blocks.len() * PAGE_SIZE
    }

    /// True for a zero-capacity disk.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    fn locate(&self, sector: u64) -> Result<(usize, usize), SectorOutOfRange> {
        if sector >= self.sector_count() {
            return Err(SectorOutOfRange { sector });
        }
        Ok((
            sector as usize / Self::SECTORS_PER_BLOCK,
            (sector as usize % Self::SECTORS_PER_BLOCK) * SECTOR_SIZE,
        ))
    }

    /// Reads one sector into `buf` (must be [`SECTOR_SIZE`] bytes).
    ///
    /// # Errors
    ///
    /// Fails when `sector` is beyond the disk capacity.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not exactly one sector long.
    pub fn read_sector(&self, sector: u64, buf: &mut [u8]) -> Result<(), SectorOutOfRange> {
        assert_eq!(buf.len(), SECTOR_SIZE);
        let (block, off) = self.locate(sector)?;
        buf.copy_from_slice(&self.blocks[block][off..off + SECTOR_SIZE]);
        Ok(())
    }

    /// Writes one sector from `data` (must be [`SECTOR_SIZE`] bytes).
    ///
    /// # Errors
    ///
    /// Fails when `sector` is beyond the disk capacity.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one sector long.
    pub fn write_sector(&mut self, sector: u64, data: &[u8]) -> Result<(), SectorOutOfRange> {
        assert_eq!(data.len(), SECTOR_SIZE);
        let (block, off) = self.locate(sector)?;
        if self.dirty_epoch[block] < self.epoch {
            self.dirty_epoch[block] = self.epoch;
        }
        Arc::make_mut(&mut self.blocks[block])[off..off + SECTOR_SIZE].copy_from_slice(data);
        Ok(())
    }

    /// Starts a new epoch, returning blocks written during the closing one.
    pub fn begin_epoch(&mut self) -> Vec<usize> {
        let closing = self.epoch;
        self.epoch += 1;
        (0..self.blocks.len()).filter(|&b| self.dirty_epoch[b] == closing).collect()
    }

    /// Cheap reference-counted snapshot of all blocks.
    pub fn snapshot_blocks(&self) -> Vec<Arc<Block>> {
        self.blocks.clone()
    }

    /// Restores a snapshot taken with [`BlockStore::snapshot_blocks`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot has a different block count.
    pub fn restore_blocks(&mut self, blocks: Vec<Arc<Block>>) {
        assert_eq!(blocks.len(), self.blocks.len(), "snapshot size mismatch");
        self.blocks = blocks;
        let e = self.epoch;
        self.dirty_epoch.fill(e);
    }

    /// FNV-1a digest of the full disk contents (combined with the VM digest
    /// for replay verification).
    pub fn digest(&self) -> crate::Digest {
        let mut h = crate::digest::Fnv1a::new();
        for b in &self.blocks {
            h.update_words(&b[..]);
        }
        h.finish()
    }

    /// Fills the disk with deterministic seeded content (the "disk image").
    ///
    /// The generated blocks are memoized process-wide per `(capacity, seed)`:
    /// the recorder and every replayer of a pipeline build the *same* image,
    /// and blocks are copy-on-write behind their `Arc`, so sharing one fill
    /// is invisible to the guest. Dirty-epoch accounting is identical to a
    /// sector-by-sector fill (every block written in the current epoch).
    pub fn fill_deterministic(&mut self, seed: u64) {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        type ImageCache = Mutex<HashMap<(usize, u64), Vec<Arc<Block>>>>;
        static IMAGES: OnceLock<ImageCache> = OnceLock::new();
        let cache = IMAGES.get_or_init(|| Mutex::new(HashMap::new()));
        let key = (self.blocks.len(), seed);
        let cached = cache.lock().unwrap().get(&key).cloned();
        match cached {
            Some(image) => self.blocks = image,
            None => {
                self.fill_deterministic_uncached(seed);
                cache.lock().unwrap().insert(key, self.blocks.clone());
            }
        }
        let e = self.epoch;
        self.dirty_epoch.fill(e);
    }

    fn fill_deterministic_uncached(&mut self, seed: u64) {
        let sectors = self.sector_count();
        let mut buf = [0u8; SECTOR_SIZE];
        for s in 0..sectors {
            let mut x = seed ^ (s.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            for chunk in buf.chunks_mut(8) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                chunk.copy_from_slice(&x.to_le_bytes());
            }
            self.write_sector(s, &buf).expect("in range");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_round_trip() {
        let mut d = BlockStore::new(PAGE_SIZE * 2);
        let data = [0xab; SECTOR_SIZE];
        d.write_sector(9, &data).unwrap();
        let mut out = [0u8; SECTOR_SIZE];
        d.read_sector(9, &mut out).unwrap();
        assert_eq!(out, data);
        // Neighbouring sector untouched.
        d.read_sector(8, &mut out).unwrap();
        assert_eq!(out, [0u8; SECTOR_SIZE]);
    }

    #[test]
    fn out_of_range_rejected() {
        let d = BlockStore::new(PAGE_SIZE);
        let mut buf = [0u8; SECTOR_SIZE];
        assert!(d.read_sector(BlockStore::SECTORS_PER_BLOCK as u64, &mut buf).is_err());
    }

    #[test]
    fn dirty_tracking_per_block() {
        let mut d = BlockStore::new(PAGE_SIZE * 3);
        d.write_sector(0, &[1; SECTOR_SIZE]).unwrap(); // block 0
        d.write_sector((2 * BlockStore::SECTORS_PER_BLOCK) as u64, &[2; SECTOR_SIZE]).unwrap(); // block 2
        assert_eq!(d.begin_epoch(), vec![0, 2]);
        assert!(d.begin_epoch().is_empty());
    }

    #[test]
    fn snapshot_isolation() {
        let mut d = BlockStore::new(PAGE_SIZE);
        d.write_sector(0, &[1; SECTOR_SIZE]).unwrap();
        let snap = d.snapshot_blocks();
        d.write_sector(0, &[2; SECTOR_SIZE]).unwrap();
        d.restore_blocks(snap);
        let mut buf = [0u8; SECTOR_SIZE];
        d.read_sector(0, &mut buf).unwrap();
        assert_eq!(buf, [1; SECTOR_SIZE]);
    }

    #[test]
    fn deterministic_fill_is_reproducible() {
        let mut a = BlockStore::new(PAGE_SIZE * 2);
        let mut b = BlockStore::new(PAGE_SIZE * 2);
        a.fill_deterministic(42);
        b.fill_deterministic(42);
        let mut ba = [0u8; SECTOR_SIZE];
        let mut bb = [0u8; SECTOR_SIZE];
        for s in 0..a.sector_count() {
            a.read_sector(s, &mut ba).unwrap();
            b.read_sector(s, &mut bb).unwrap();
            assert_eq!(ba, bb);
        }
        let mut c = BlockStore::new(PAGE_SIZE * 2);
        c.fill_deterministic(43);
        c.read_sector(0, &mut bb).unwrap();
        a.read_sector(0, &mut ba).unwrap();
        assert_ne!(ba, bb);
    }
}
