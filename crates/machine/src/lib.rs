//! # rnr-machine: the simulated guest machine
//!
//! A deterministic full-system simulator standing in for the paper's
//! KVM/QEMU guest (see DESIGN.md §2 for the substitution argument). It
//! executes the `rnr-isa` instruction set over paged copy-on-write memory,
//! models the hardware Return Address Stack via `rnr-ras`, and surfaces all
//! hypervisor interactions as **VM exits** ([`Exit`]), mirroring Intel VT-x
//! semantics (§5 of the paper):
//!
//! * PIO/MMIO accesses and `vmcall` always exit (hypervisor-mediated I/O,
//!   the paper's assumed model).
//! * `rdtsc` exits only when [`ExitControls::rdtsc_exiting`] is set — this is
//!   how recording mode traps and logs timer reads (Figure 5(b)'s dominant
//!   overhead).
//! * RAS evictions and mispredictions exit according to the RAS
//!   configuration — the alarm channel of RnR-Safe.
//! * Breakpoints ([`GuestVm::add_breakpoint`]) exit before the trapped
//!   instruction — how the hypervisor interposes on guest context switches
//!   (§5.2.1) without modifying the guest kernel.
//! * Optional call/return trapping ([`CallRetTrap`]) — how the alarm
//!   replayer models its software RAS at every kernel call/return (§7.4).
//!
//! The machine is **passive**: devices, logging, and scheduling of
//! asynchronous events live in `rnr-hypervisor`. Everything in this crate is
//! deterministic given the sequence of hypervisor actions, which is the
//! property record-and-replay rests on; [`GuestVm::digest`] summarizes the
//! architectural state so replays can be verified bit-exact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod cost;
mod cpu;
mod digest;
mod disk;
mod exit;
mod icache;
mod jop;
mod mem;
mod ports;
mod vm;

pub use config::MachineConfig;
pub use cost::CostModel;
pub use cpu::{Cpu, CpuState, Mode};
pub use digest::{fnv1a, Digest, Fnv1a};
pub use disk::BlockStore;
pub use exit::{CallRetTrap, Exit, ExitControls, FaultKind, FinishIo};
pub use icache::{BlockCache, BlockInfo, BlockStats, SharedPageCache};
pub use jop::JopTable;
pub use mem::{MemError, Memory, PAGE_SIZE};
pub use ports::*;
pub use vm::{GuestVm, InjectError, RunBudget};
