//! Architectural-state digests for determinism verification.

use std::fmt;

/// A 64-bit FNV-1a state digest.
///
/// Replay correctness is asserted by comparing the digest of the recorded
/// VM's final state with the replayed VM's state at the same instruction
/// count; any divergence in memory, registers, mode, or disk contents
/// changes the digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Digest(pub u64);

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// A fresh hasher.
    pub fn new() -> Fnv1a {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a 64-bit value.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Absorbs bytes word-at-a-time: four interleaved FNV-1a lanes over
    /// little-endian `u64` words, folded back into one state per call. A
    /// *different* stream than [`Fnv1a::update`] — the two must not be mixed
    /// for the same data — but far higher throughput: the per-byte (and
    /// per-word) FNV multiply chain is latency-bound, and four independent
    /// lanes let the multiplier pipeline. That matters when hashing all of
    /// guest memory and disk for replay verification. Lanes are seeded with
    /// distinct constants so words are position-sensitive across lanes, and
    /// any single-bit difference still changes the digest.
    pub fn update_words(&mut self, bytes: &[u8]) {
        // Only lane 0 carries the incoming state; lanes 1-3 start from fixed
        // distinct seeds every call. Each FNV step and each fold step is then
        // a bijection of lane 0's value, so the map from incoming state to
        // outgoing state is injective for any fixed input — no prior-state
        // information can be destroyed by absorbing more data. (Seeding every
        // lane from `self.state` and XOR-folding loses that property: the
        // fold cancels the state's contribution and repeated calls contract
        // distinct states onto one orbit.)
        let mut lanes = [self.state, 0x9e37_79b9_7f4a_7c15, 0xc2b2_ae3d_27d4_eb4f, 0x1656_67b1_9e37_79f9];
        let mut chunks32 = bytes.chunks_exact(32);
        for c in &mut chunks32 {
            for (i, lane) in lanes.iter_mut().enumerate() {
                let w = u64::from_le_bytes(c[i * 8..i * 8 + 8].try_into().expect("8-byte word"));
                *lane = (*lane ^ w).wrapping_mul(FNV_PRIME);
            }
        }
        let mut state = lanes[0];
        for &lane in &lanes[1..] {
            state = (state ^ lane).wrapping_mul(FNV_PRIME);
        }
        let mut chunks = chunks32.remainder().chunks_exact(8);
        for c in &mut chunks {
            let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            state = (state ^ w).wrapping_mul(FNV_PRIME);
        }
        for &b in chunks.remainder() {
            state ^= b as u64;
            state = state.wrapping_mul(FNV_PRIME);
        }
        self.state = state;
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> Digest {
        Digest(self.state)
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> Digest {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        assert_eq!(fnv1a(b"a").0, 0xaf63_dc4c_8601_ec8c);
        // FNV-1a("") = offset basis
        assert_eq!(fnv1a(b"").0, FNV_OFFSET);
    }

    #[test]
    fn sensitive_to_every_byte() {
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"ab"));
    }

    #[test]
    fn word_hash_sensitive_to_every_bit() {
        let mut base = [0u8; 64];
        let mut h0 = Fnv1a::new();
        h0.update_words(&base);
        for bit in 0..512 {
            base[bit / 8] ^= 1 << (bit % 8);
            let mut h = Fnv1a::new();
            h.update_words(&base);
            assert_ne!(h.finish(), h0.finish(), "bit {bit} did not change the digest");
            base[bit / 8] ^= 1 << (bit % 8);
        }
    }

    #[test]
    fn word_hash_remainder_covered() {
        let mut a = Fnv1a::new();
        a.update_words(b"0123456789"); // 8-byte word + 2-byte tail
        let mut b = Fnv1a::new();
        b.update_words(b"0123456798");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn word_hash_lane_swap_detected() {
        // Swapping two whole words between lanes of the same 32-byte chunk
        // must change the digest (the lane fold is XOR-based, so this relies
        // on the distinct lane seeds).
        let mut buf = [0u8; 32];
        buf[0..8].copy_from_slice(&1u64.to_le_bytes());
        buf[8..16].copy_from_slice(&2u64.to_le_bytes());
        let mut a = Fnv1a::new();
        a.update_words(&buf);
        buf[0..8].copy_from_slice(&2u64.to_le_bytes());
        buf[8..16].copy_from_slice(&1u64.to_le_bytes());
        let mut b = Fnv1a::new();
        b.update_words(&buf);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn word_hash_preserves_prior_state_through_many_pages() {
        // Regression: the multi-lane fold must be injective in the incoming
        // state, or absorbing thousands of (mostly zero) guest pages
        // contracts distinct CPU-state prefixes onto the same orbit and the
        // digest stops seeing registers at all.
        let zeros = [0u8; 4096];
        let mut a = Fnv1a::new();
        a.update_u64(7);
        let mut b = Fnv1a::new();
        b.update_u64(8);
        for page in 0..4096 {
            a.update_words(&zeros);
            b.update_words(&zeros);
            assert_ne!(a.finish(), b.finish(), "prefix difference lost after page {page}");
        }
    }

    #[test]
    fn streaming_equals_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finish(), fnv1a(b"hello world"));
    }
}
