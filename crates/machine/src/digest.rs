//! Architectural-state digests for determinism verification.

use std::fmt;

/// A 64-bit FNV-1a state digest.
///
/// Replay correctness is asserted by comparing the digest of the recorded
/// VM's final state with the replayed VM's state at the same instruction
/// count; any divergence in memory, registers, mode, or disk contents
/// changes the digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Digest(pub u64);

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// A fresh hasher.
    pub fn new() -> Fnv1a {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a 64-bit value.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> Digest {
        Digest(self.state)
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> Digest {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        assert_eq!(fnv1a(b"a").0, 0xaf63_dc4c_8601_ec8c);
        // FNV-1a("") = offset basis
        assert_eq!(fnv1a(b"").0, FNV_OFFSET);
    }

    #[test]
    fn sensitive_to_every_byte() {
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"ab"));
    }

    #[test]
    fn streaming_equals_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finish(), fnv1a(b"hello world"));
    }
}
