//! The hardware indirect-branch table for JOP detection (Table 1, row 2).

use rnr_isa::Addr;

/// The hardware's "table of begin and end addresses of the most common
/// functions". An indirect branch or call is *legal* when its target is the
/// first instruction of a tracked function, or stays within the function
/// containing the branch; anything else raises a JOP alarm for the
/// replayers to resolve against the full function list.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct JopTable {
    ranges: Vec<(Addr, Addr)>,
}

impl JopTable {
    /// Builds a table from `(start, end)` function ranges.
    pub fn from_ranges(mut ranges: Vec<(Addr, Addr)>) -> JopTable {
        ranges.sort_unstable();
        ranges.dedup();
        JopTable { ranges }
    }

    /// Number of tracked functions.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The tracked ranges.
    pub fn ranges(&self) -> &[(Addr, Addr)] {
        &self.ranges
    }

    fn containing(&self, addr: Addr) -> Option<(Addr, Addr)> {
        // Ranges are sorted by start: binary-search the candidate.
        let idx = self.ranges.partition_point(|&(s, _)| s <= addr);
        idx.checked_sub(1).map(|i| self.ranges[i]).filter(|&(s, e)| s <= addr && addr < e)
    }

    /// True when the indirect transfer `branch_pc → target` is legal under
    /// this table.
    pub fn is_legal(&self, branch_pc: Addr, target: Addr) -> bool {
        if self.ranges.binary_search_by_key(&target, |&(s, _)| s).is_ok() {
            return true; // function entry
        }
        match self.containing(branch_pc) {
            Some((s, e)) => s <= target && target < e, // intra-function
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> JopTable {
        JopTable::from_ranges(vec![(0x100, 0x200), (0x200, 0x300), (0x500, 0x520)])
    }

    #[test]
    fn entry_targets_are_legal() {
        let t = table();
        assert!(t.is_legal(0x110, 0x200));
        assert!(t.is_legal(0x999, 0x500)); // even from untracked code
    }

    #[test]
    fn intra_function_targets_are_legal() {
        assert!(table().is_legal(0x110, 0x180));
    }

    #[test]
    fn cross_function_mid_body_is_illegal() {
        let t = table();
        assert!(!t.is_legal(0x110, 0x250));
        assert!(!t.is_legal(0x110, 0x510)); // mid-body of a small function
    }

    #[test]
    fn untracked_source_to_mid_body_is_illegal() {
        assert!(!table().is_legal(0x900, 0x180));
    }

    #[test]
    fn empty_table_rejects_everything() {
        assert!(!JopTable::default().is_legal(0x100, 0x100));
        assert!(JopTable::default().is_empty());
    }
}
