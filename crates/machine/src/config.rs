//! Machine configuration.

use rnr_isa::Addr;
use rnr_ras::RasConfig;
use rnr_vrt::VrtParams;

use crate::{CostModel, ExitControls};

/// Static configuration of a [`GuestVm`](crate::GuestVm).
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Guest physical memory size in bytes.
    pub mem_bytes: usize,
    /// Virtual disk size in bytes.
    pub disk_bytes: usize,
    /// Base address of the interrupt vector table (one 8-byte handler
    /// address per IRQ line).
    pub ivt_base: Addr,
    /// Guest-kernel syscall entry point (set after the kernel is assembled).
    pub syscall_entry: Addr,
    /// RAS hardware configuration.
    pub ras: RasConfig,
    /// VM-exit controls (the VMCS execution controls of §5.1).
    pub exits: ExitControls,
    /// Hardware indirect-branch table for JOP detection (Table 1, row 2);
    /// `None` disables JOP alarms.
    pub jop_table: Option<crate::JopTable>,
    /// Variable Record Table memory-safety detector (DESIGN.md §15);
    /// `None` leaves the VM unarmed — replay VMs always are, so VRT alarms
    /// come from the log, never from re-detection.
    pub vrt: Option<VrtParams>,
    /// Cycle cost model.
    pub costs: CostModel,
    /// Use the predecoded instruction cache ([`crate::BlockCache`]). A pure
    /// host-side (wall-clock) optimization: virtual cycles, digests, and
    /// exits are identical either way while [`CostModel::decode`] is 0.
    pub decode_cache: bool,
    /// Execute whole cached basic blocks between event horizons instead of
    /// single-stepping (see `GuestVm::run`). Like `decode_cache`, a pure
    /// wall-clock knob: the retired stream, virtual cycles, digests, and
    /// exits are byte-identical either way. Automatically inert while
    /// [`CostModel::decode`] is non-zero or per-instruction debugging
    /// (tracing, watchpoints) is active.
    pub block_engine: bool,
    /// Chain hot basic blocks across taken branches and page boundaries
    /// into superblock traces with one dispatch and one counter commit per
    /// trace (see `GuestVm::run` and DESIGN.md §12). Requires
    /// `block_engine`; like it, a pure wall-clock knob — the retired
    /// stream, virtual cycles, digests, and exits are byte-identical with
    /// superblocks on or off.
    pub superblocks: bool,
}

impl MachineConfig {
    /// Default guest memory: 4 MiB — small enough that whole-state digests
    /// and checkpoints stay cheap, large enough for the microkernel and all
    /// workloads.
    pub const DEFAULT_MEM: usize = 4 << 20;
    /// Default virtual disk: 8 MiB.
    pub const DEFAULT_DISK: usize = 8 << 20;
    /// Default IVT location.
    pub const DEFAULT_IVT: Addr = 0x100;
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            mem_bytes: MachineConfig::DEFAULT_MEM,
            disk_bytes: MachineConfig::DEFAULT_DISK,
            ivt_base: MachineConfig::DEFAULT_IVT,
            syscall_entry: 0,
            ras: RasConfig::default(),
            exits: ExitControls::default(),
            jop_table: None,
            vrt: None,
            costs: CostModel::default(),
            decode_cache: true,
            block_engine: true,
            superblocks: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = MachineConfig::default();
        assert_eq!(c.mem_bytes % crate::PAGE_SIZE, 0);
        assert_eq!(c.disk_bytes % crate::PAGE_SIZE, 0);
        assert!(c.ivt_base < c.mem_bytes as u64);
    }
}
