//! The virtual-time cost model.
//!
//! All results in the paper are *ratios* of execution times, so the
//! reproduction measures virtual cycles under an explicit cost model. Costs
//! the paper states are used directly ("a transition to the hypervisor takes
//! about 1,000 cycles"; "backing-up the RAS will add about 200 cycles",
//! §4.3); the rest are calibrated to reproduce the relative overheads of
//! Figures 5, 7, and 9 and documented in DESIGN.md.

/// Cycle costs of machine and virtualization events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CostModel {
    /// Base cost of one retired instruction.
    pub insn: u64,
    /// A VM exit + VM entry round trip (paper: ≈1,000 cycles).
    pub vmexit: u64,
    /// Microcode dump of the RAS into the BackRAS on a context-switch exit
    /// (paper: ≈200 cycles).
    pub ras_save: u64,
    /// Microcode reload of the RAS from the BackRAS (paper: ≈200 cycles).
    pub ras_restore: u64,
    /// Fixed cost of appending a log record during recording.
    pub log_fixed: u64,
    /// Additional per-8-bytes cost of logging payload data.
    pub log_per_word: u64,
    /// Delivering a virtual interrupt *without* recording (posted-interrupt
    /// style, no full exit).
    pub irq_virtualized: u64,
    /// Single-step VM exit taken while landing an asynchronous interrupt at
    /// its exact instruction during replay (§7.3: "each step will suffer the
    /// overhead of a VMExit (≈1,000 cycles)").
    pub replay_step: u64,
    /// Maximum number of single-steps needed to land one asynchronous event
    /// (the perf-counter arm overshoot; uniformly 1..=max).
    pub replay_max_steps: u64,
    /// Copying one dirty page or disk block into a checkpoint.
    pub checkpoint_page_copy: u64,
    /// A copy-on-write fault on the first post-checkpoint write to a page.
    pub cow_fault: u64,
    /// Fixed per-checkpoint overhead (processor state dump, bookkeeping).
    pub checkpoint_fixed: u64,
    /// A debug-exception trap on a call/return during alarm replay.
    pub callret_trap: u64,
    /// Servicing one paravirtual `vmcall` (replaces several PIO exits).
    pub pv_hypercall: u64,
    /// Device latency for a disk operation, per sector (virtual cycles from
    /// command to completion interrupt).
    pub disk_latency_per_sector: u64,
    /// Minimum disk latency.
    pub disk_latency_base: u64,
    /// Extra cycles charged when an instruction is fetched and decoded fresh
    /// (a decode-cache miss). The default of 0 keeps decoding
    /// architecturally free, so enabling or disabling the cache cannot move
    /// virtual time; set it non-zero to study front-end sensitivity.
    pub decode: u64,
}

impl CostModel {
    /// Cost of logging a record of `bytes` payload.
    pub fn log_append(&self, bytes: u64) -> u64 {
        self.log_fixed + self.log_per_word * bytes.div_ceil(8)
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            insn: 1,
            vmexit: 1000,
            ras_save: 200,
            ras_restore: 200,
            log_fixed: 60,
            log_per_word: 8,
            irq_virtualized: 200,
            replay_step: 1000,
            replay_max_steps: 12,
            checkpoint_page_copy: 800,
            cow_fault: 1200,
            checkpoint_fixed: 20_000,
            callret_trap: 1000,
            pv_hypercall: 400,
            disk_latency_per_sector: 2_000,
            disk_latency_base: 20_000,
            decode: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sourced_costs() {
        let c = CostModel::default();
        assert_eq!(c.vmexit, 1000);
        assert_eq!(c.ras_save, 200);
        assert_eq!(c.ras_restore, 200);
        assert_eq!(c.replay_step, 1000);
    }

    #[test]
    fn log_append_scales_with_payload() {
        let c = CostModel::default();
        assert_eq!(c.log_append(0), 60);
        assert_eq!(c.log_append(8), 68);
        assert_eq!(c.log_append(9), 76);
    }
}
