//! Paged guest memory with copy-on-write sharing and dirty tracking.

use std::fmt;
use std::sync::Arc;

use rnr_isa::Addr;

/// Guest page size in bytes (matches the paper's x86 hosts).
pub const PAGE_SIZE: usize = 4096;

type Page = [u8; PAGE_SIZE];

/// Errors from guest memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Access touched an address outside guest memory.
    OutOfBounds {
        /// The faulting address.
        addr: Addr,
        /// The access width in bytes.
        len: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr, len } => {
                write!(f, "guest memory access out of bounds: {len} bytes at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Byte-addressable guest physical memory.
///
/// Pages are reference-counted ([`Arc`]), so taking a checkpoint is a cheap
/// clone of the page table; the first write to a shared page copies it —
/// the same copy-on-write scheme the paper borrows from Linux `fork` for its
/// checkpointing replayer (§7.4).
///
/// Each page carries the *epoch* of its last write. Epochs advance at
/// checkpoints, so "pages modified since the previous checkpoint" (the
/// incremental-checkpoint set of Figure 4) falls out of a scan, and the
/// first write per epoch is counted as a copy-on-write fault for the cost
/// model.
#[derive(Debug, Clone)]
pub struct Memory {
    pages: Vec<Arc<Page>>,
    dirty_epoch: Vec<u64>,
    versions: Vec<u64>,
    // Indices of pages written this epoch (unsorted), so closing an epoch is
    // O(dirty) instead of a scan over every page. Invariant: `dirty` holds
    // exactly the indices with `dirty_epoch[i] == epoch`, each once.
    dirty: Vec<usize>,
    epoch: u64,
    cow_faults: u64,
}

impl Memory {
    /// Allocates zeroed guest memory of `bytes` (rounded up to whole pages).
    pub fn new(bytes: usize) -> Memory {
        let n = bytes.div_ceil(PAGE_SIZE);
        let zero: Arc<Page> = Arc::new([0u8; PAGE_SIZE]);
        // Epoch 0 means "never written"; execution starts in epoch 1.
        Memory {
            pages: vec![zero; n],
            dirty_epoch: vec![0; n],
            versions: vec![0; n],
            dirty: Vec::new(),
            epoch: 1,
            cow_faults: 0,
        }
    }

    /// Total size in bytes.
    pub fn len(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// True for a zero-page memory (never in practice).
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn check(&self, addr: Addr, len: usize) -> Result<(), MemError> {
        if (addr as usize).checked_add(len).is_none_or(|end| end > self.len()) {
            Err(MemError::OutOfBounds { addr, len })
        } else {
            Ok(())
        }
    }

    fn page_mut(&mut self, index: usize) -> &mut Page {
        if self.dirty_epoch[index] < self.epoch {
            // First write to this page in the current epoch: with a live
            // checkpoint sharing the page, this is where the copy happens.
            self.cow_faults += 1;
            self.dirty_epoch[index] = self.epoch;
            self.dirty.push(index);
        }
        self.versions[index] = self.versions[index].wrapping_add(1);
        Arc::make_mut(&mut self.pages[index])
    }

    /// Monotonic write-version of a page: bumped on every mutation of the
    /// page (including checkpoint restores), so caches of derived per-page
    /// state — the predecoded instruction cache — can detect staleness with
    /// one comparison.
    pub fn page_version(&self, index: usize) -> u64 {
        self.versions[index]
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::OutOfBounds`] without partial reads.
    pub fn read_bytes(&self, addr: Addr, buf: &mut [u8]) -> Result<(), MemError> {
        self.check(addr, buf.len())?;
        let mut off = addr as usize;
        let mut done = 0;
        while done < buf.len() {
            let page = off / PAGE_SIZE;
            let in_page = off % PAGE_SIZE;
            let n = (PAGE_SIZE - in_page).min(buf.len() - done);
            buf[done..done + n].copy_from_slice(&self.pages[page][in_page..in_page + n]);
            off += n;
            done += n;
        }
        Ok(())
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::OutOfBounds`] without partial writes.
    pub fn write_bytes(&mut self, addr: Addr, data: &[u8]) -> Result<(), MemError> {
        self.check(addr, data.len())?;
        let mut off = addr as usize;
        let mut done = 0;
        while done < data.len() {
            let page = off / PAGE_SIZE;
            let in_page = off % PAGE_SIZE;
            let n = (PAGE_SIZE - in_page).min(data.len() - done);
            self.page_mut(page)[in_page..in_page + n].copy_from_slice(&data[done..done + n]);
            off += n;
            done += n;
        }
        Ok(())
    }

    /// Reads a little-endian 64-bit word.
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::OutOfBounds`].
    pub fn read_u64(&self, addr: Addr) -> Result<u64, MemError> {
        // Fast path: the word lies within one page (the overwhelmingly
        // common case — stacks and code are 8-aligned).
        let off = addr as usize;
        let in_page = off % PAGE_SIZE;
        if in_page <= PAGE_SIZE - 8 {
            let page = self.pages.get(off / PAGE_SIZE).ok_or(MemError::OutOfBounds { addr, len: 8 })?;
            let b: [u8; 8] = page[in_page..in_page + 8].try_into().expect("8-byte slice");
            return Ok(u64::from_le_bytes(b));
        }
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian 64-bit word.
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::OutOfBounds`].
    pub fn write_u64(&mut self, addr: Addr, value: u64) -> Result<(), MemError> {
        // Fast path mirroring `read_u64`.
        let off = addr as usize;
        let in_page = off % PAGE_SIZE;
        if in_page <= PAGE_SIZE - 8 && off / PAGE_SIZE < self.pages.len() {
            self.page_mut(off / PAGE_SIZE)[in_page..in_page + 8].copy_from_slice(&value.to_le_bytes());
            return Ok(());
        }
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::OutOfBounds`].
    pub fn read_u8(&self, addr: Addr) -> Result<u8, MemError> {
        self.check(addr, 1)?;
        Ok(self.pages[addr as usize / PAGE_SIZE][addr as usize % PAGE_SIZE])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::OutOfBounds`].
    pub fn write_u8(&mut self, addr: Addr, value: u8) -> Result<(), MemError> {
        self.check(addr, 1)?;
        self.page_mut(addr as usize / PAGE_SIZE)[addr as usize % PAGE_SIZE] = value;
        Ok(())
    }

    /// Starts a new dirty-tracking epoch (called when a checkpoint is taken)
    /// and returns the indices of pages written during the closing epoch —
    /// the incremental page set stored in the checkpoint.
    pub fn begin_epoch(&mut self) -> Vec<usize> {
        self.epoch += 1;
        let mut dirty = std::mem::take(&mut self.dirty);
        // Writes arrive in execution order; checkpoints store pages in
        // ascending index order.
        dirty.sort_unstable();
        dirty
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Copy-on-write faults (first write to a page after an epoch boundary)
    /// since the last call; resets the counter. The checkpointing replayer
    /// charges these against its cost model.
    pub fn take_cow_faults(&mut self) -> u64 {
        std::mem::take(&mut self.cow_faults)
    }

    /// A cheap snapshot of all pages (reference-counted clones).
    pub fn snapshot_pages(&self) -> Vec<Arc<Page>> {
        self.pages.clone()
    }

    /// The reference-counted page at `index`, if in range. Pointer identity
    /// of these `Arc`s is what lets threads of one run recognise each
    /// other's pages: equal pointers imply equal content, because any write
    /// to a shared page copies it first.
    pub fn page_arc(&self, index: usize) -> Option<&Arc<Page>> {
        self.pages.get(index)
    }

    /// Iterates pages in place — digesting memory without cloning the page
    /// table.
    pub fn pages(&self) -> impl Iterator<Item = &Page> {
        self.pages.iter().map(|p| &**p)
    }

    /// Replaces the entire contents from a snapshot.
    pub fn restore_pages(&mut self, pages: Vec<Arc<Page>>) {
        assert_eq!(pages.len(), self.pages.len(), "snapshot size mismatch");
        // Pages are immutable behind their `Arc`: pointer equality implies
        // identical content, so only pages that actually changed invalidate
        // derived per-page caches (decoded blocks stay warm across the
        // checkpoint restores that alarm replayers start from). The dirty /
        // CoW accounting below stays unconditional — virtual costs must not
        // depend on pointer sharing.
        for (index, new) in pages.iter().enumerate() {
            if !Arc::ptr_eq(&self.pages[index], new) {
                self.versions[index] = self.versions[index].wrapping_add(1);
            }
        }
        self.pages = pages;
        // All restored pages belong to the new epoch's baseline.
        let e = self.epoch;
        self.dirty_epoch.fill(e);
        self.dirty = (0..self.pages.len()).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_at_start() {
        let m = Memory::new(8192);
        assert_eq!(m.read_u64(0).unwrap(), 0);
        assert_eq!(m.read_u8(8191).unwrap(), 0);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = Memory::new(8192);
        m.write_u64(16, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u64(16).unwrap(), 0xdead_beef_cafe_f00d);
        m.write_u8(3, 7).unwrap();
        assert_eq!(m.read_u8(3).unwrap(), 7);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new(8192);
        m.write_u64(PAGE_SIZE as u64 - 4, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.read_u64(PAGE_SIZE as u64 - 4).unwrap(), 0x1122_3344_5566_7788);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = Memory::new(4096);
        assert!(m.read_u64(4090).is_err());
        assert!(m.write_u8(4096, 1).is_err());
        assert!(m.read_u8(4095).is_ok());
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut m = Memory::new(8192);
        m.write_u64(0, 1).unwrap();
        let snap = m.snapshot_pages();
        m.write_u64(0, 2).unwrap();
        assert_eq!(m.read_u64(0).unwrap(), 2);
        m.restore_pages(snap);
        assert_eq!(m.read_u64(0).unwrap(), 1);
    }

    #[test]
    fn begin_epoch_reports_dirty_pages() {
        let mut m = Memory::new(PAGE_SIZE * 4);
        m.write_u8(0, 1).unwrap(); // page 0
        m.write_u8(2 * PAGE_SIZE as u64, 1).unwrap(); // page 2
        let dirty = m.begin_epoch();
        assert_eq!(dirty, vec![0, 2]);
        // Nothing written since: next epoch's dirty set is empty.
        let dirty = m.begin_epoch();
        assert!(dirty.is_empty());
        m.write_u8(PAGE_SIZE as u64, 1).unwrap();
        assert_eq!(m.begin_epoch(), vec![1]);
    }

    #[test]
    fn page_versions_track_writes_and_restores() {
        let mut m = Memory::new(PAGE_SIZE * 2);
        let v0 = m.page_version(0);
        m.write_u8(0, 1).unwrap();
        let v1 = m.page_version(0);
        assert_ne!(v0, v1);
        assert_eq!(m.page_version(1), 0, "untouched page keeps its version");
        let snap = m.snapshot_pages();
        m.write_u8(0, 2).unwrap();
        let v2 = m.page_version(0);
        assert_ne!(v1, v2);
        m.restore_pages(snap);
        // A restore invalidates exactly the pages whose content could have
        // changed: page 0 was written after the snapshot (its Arc differs),
        // page 1 was never touched and still shares the snapshot's Arc.
        assert_ne!(m.page_version(0), v2);
        assert_eq!(m.page_version(1), 0, "identical page stays warm across restore");
    }

    #[test]
    fn begin_epoch_is_o_dirty_and_restore_marks_all() {
        let mut m = Memory::new(PAGE_SIZE * 3);
        m.write_u8(2 * PAGE_SIZE as u64, 1).unwrap();
        m.write_u8(0, 1).unwrap();
        assert_eq!(m.begin_epoch(), vec![0, 2], "dirty list reported in ascending order");
        let snap = m.snapshot_pages();
        m.restore_pages(snap);
        // After a restore every page belongs to the new baseline.
        assert_eq!(m.begin_epoch(), vec![0, 1, 2]);
        assert!(m.begin_epoch().is_empty());
    }

    #[test]
    fn cow_faults_counted_once_per_epoch() {
        let mut m = Memory::new(PAGE_SIZE * 2);
        m.write_u8(0, 1).unwrap();
        m.begin_epoch();
        m.take_cow_faults();
        m.write_u8(1, 1).unwrap(); // first write to page 0 this epoch
        m.write_u8(2, 1).unwrap(); // same page: no new fault
        assert_eq!(m.take_cow_faults(), 1);
    }
}
