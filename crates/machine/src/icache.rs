//! The predecoded instruction cache.
//!
//! The interpreter's hot loop used to fetch 8 bytes from guest memory and
//! re-decode them on **every** executed instruction. Real processors (and
//! fast emulators — QEMU's TB cache plays this role in the paper's setup)
//! decode each instruction once and reuse the result until the code is
//! overwritten. [`DecodeCache`] does the same for the simulator: a per-page
//! array of decoded instructions, filled lazily on first execution and
//! invalidated wholesale when the page's write-version
//! ([`Memory::page_version`]) moves — which is what makes self-modifying
//! code (and checkpoint restores) correct without any explicit flush
//! protocol.
//!
//! Only 8-byte-aligned PCs are cached: aligned fetches never straddle a
//! page, so one `(page, slot)` pair identifies the instruction. Unaligned
//! PCs (possible targets of a hijacked return) fall back to the slow
//! fetch+decode path. Decoding is architecturally free in the cost model by
//! default ([`crate::CostModel::decode`] is 0), so caching changes wall-clock
//! time only, never virtual cycles.

use rnr_isa::{Addr, Instruction};

use crate::mem::{Memory, PAGE_SIZE};

/// Decoded slots per page (8-byte instructions).
const SLOTS: usize = PAGE_SIZE / 8;

/// One page's worth of predecoded instructions, valid for a single write
/// version of the backing page.
#[derive(Debug, Clone)]
struct PageCache {
    version: u64,
    slots: Box<[Option<Instruction>; SLOTS]>,
}

impl PageCache {
    fn new(version: u64) -> PageCache {
        PageCache { version, slots: Box::new([None; SLOTS]) }
    }
}

/// A lazily filled, version-checked decode cache over guest memory.
#[derive(Debug, Clone, Default)]
pub struct DecodeCache {
    pages: Vec<Option<PageCache>>,
}

impl DecodeCache {
    /// An empty cache (sized on first use).
    pub fn new() -> DecodeCache {
        DecodeCache::default()
    }

    /// The cached decode of the instruction at `pc`, if still valid.
    ///
    /// Returns `None` for unaligned or out-of-range PCs, for never-decoded
    /// slots, and whenever the page has been written since the decode.
    #[inline]
    pub fn get(&self, pc: Addr, mem: &Memory) -> Option<Instruction> {
        if pc & 7 != 0 {
            return None;
        }
        let page = (pc as usize) / PAGE_SIZE;
        let cached = self.pages.get(page)?.as_ref()?;
        if cached.version != mem.page_version(page) {
            return None;
        }
        cached.slots[(pc as usize % PAGE_SIZE) / 8]
    }

    /// Stores a fresh decode of the instruction at `pc`.
    ///
    /// If the page's cache is stale it is reset to the current version
    /// first, dropping every slot decoded against old bytes.
    pub fn insert(&mut self, pc: Addr, insn: Instruction, mem: &Memory) {
        if pc & 7 != 0 {
            return;
        }
        let page = (pc as usize) / PAGE_SIZE;
        if page >= mem.page_count() {
            return;
        }
        if self.pages.len() < mem.page_count() {
            self.pages.resize(mem.page_count(), None);
        }
        let version = mem.page_version(page);
        let cached = match &mut self.pages[page] {
            Some(c) if c.version == version => c,
            slot => slot.insert(PageCache::new(version)),
        };
        cached.slots[(pc as usize % PAGE_SIZE) / 8] = Some(insn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnr_isa::{Opcode, Reg};

    fn insn(imm: i32) -> Instruction {
        Instruction::new(Opcode::MovImm, Reg::R1, Reg::R0, Reg::R0, imm)
    }

    #[test]
    fn miss_then_hit() {
        let mem = Memory::new(PAGE_SIZE * 2);
        let mut cache = DecodeCache::new();
        assert_eq!(cache.get(0x8, &mem), None);
        cache.insert(0x8, insn(1), &mem);
        assert_eq!(cache.get(0x8, &mem), Some(insn(1)));
        assert_eq!(cache.get(0x10, &mem), None, "other slots stay cold");
    }

    #[test]
    fn unaligned_pcs_are_never_cached() {
        let mem = Memory::new(PAGE_SIZE);
        let mut cache = DecodeCache::new();
        cache.insert(0x9, insn(1), &mem);
        assert_eq!(cache.get(0x9, &mem), None);
    }

    #[test]
    fn write_to_page_invalidates_its_decodes() {
        let mut mem = Memory::new(PAGE_SIZE * 2);
        let mut cache = DecodeCache::new();
        cache.insert(0x8, insn(1), &mem);
        cache.insert(PAGE_SIZE as u64 + 8, insn(2), &mem);
        mem.write_u8(0x8, 0xff).unwrap();
        assert_eq!(cache.get(0x8, &mem), None, "written page drops");
        assert_eq!(cache.get(PAGE_SIZE as u64 + 8, &mem), Some(insn(2)), "other page survives");
        // Re-inserting against the new version works.
        cache.insert(0x8, insn(3), &mem);
        assert_eq!(cache.get(0x8, &mem), Some(insn(3)));
    }

    #[test]
    fn restore_invalidates_everything() {
        let mut mem = Memory::new(PAGE_SIZE);
        let snap = mem.snapshot_pages();
        let mut cache = DecodeCache::new();
        cache.insert(0x0, insn(1), &mem);
        mem.restore_pages(snap);
        assert_eq!(cache.get(0x0, &mem), None);
    }

    #[test]
    fn out_of_range_pc_is_ignored() {
        let mem = Memory::new(PAGE_SIZE);
        let mut cache = DecodeCache::new();
        cache.insert(PAGE_SIZE as u64 * 10, insn(1), &mem);
        assert_eq!(cache.get(PAGE_SIZE as u64 * 10, &mem), None);
    }
}
