//! The predecoded instruction and basic-block cache.
//!
//! The interpreter's hot loop used to fetch 8 bytes from guest memory and
//! re-decode them on **every** executed instruction. Real processors (and
//! fast emulators — QEMU's TB cache plays this role in the paper's setup)
//! decode each instruction once and reuse the result until the code is
//! overwritten. [`BlockCache`] does the same for the simulator, at two
//! granularities:
//!
//! * **Instructions** — a per-page array of decoded instructions, filled
//!   lazily on first execution ([`BlockCache::get`]/[`BlockCache::insert`]).
//! * **Basic blocks** — decoded straight-line runs terminated at control
//!   transfers, privileged/IO instructions, interrupt-flag writes, and page
//!   boundaries ([`BlockCache::block_info`]/[`BlockCache::insert_block`]).
//!   The block executor in [`crate::GuestVm`] retires whole blocks between
//!   *event horizons* with a single counter bump and no per-instruction
//!   budget/breakpoint checks.
//! * **Superblocks (traces)** — chains of hot blocks across taken branches,
//!   direct calls, profiled indirect targets, and page boundaries, flattened
//!   into one contiguous op array with a single dispatch per trace
//!   ([`BlockCache::trace_at`]/[`BlockCache::install_trace`]). Heads are
//!   found by wall-clock-only heat counters fed from block-exit edge
//!   profiling ([`BlockCache::record_edge`]); loops unroll through the head
//!   until the op cap. Every constituent page contributes a write-version
//!   guard ([`TraceGuards`]) plus a bitmap of the 8-byte slots its ops
//!   decode from ([`TracePage`]): a page bump re-validates the trace
//!   against exactly those slots, so data writes into pages that share
//!   hot code don't kill it.
//!
//! The two lower layers are invalidated wholesale when the page's write-version
//! ([`Memory::page_version`]) moves — which is what makes self-modifying
//! code (and checkpoint restores) correct without any explicit flush
//! protocol.
//!
//! Only 8-byte-aligned PCs are cached: aligned fetches never straddle a
//! page, so one `(page, slot)` pair identifies the instruction. Unaligned
//! PCs (possible targets of a hijacked return) fall back to the slow
//! fetch+decode path. Decoding is architecturally free in the cost model by
//! default ([`crate::CostModel::decode`] is 0), so caching changes wall-clock
//! time only, never virtual cycles.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use rnr_isa::{Addr, Instruction};

use crate::mem::{Memory, PAGE_SIZE};

/// Decoded slots per page (8-byte instructions).
const SLOTS: usize = PAGE_SIZE / 8;

/// Block-head executions before a superblock is chained from that head.
/// High enough that cold code never pays the build, low enough that every
/// hot loop crosses it within its first few thousand retired instructions.
pub const TRACE_HEAT: u16 = 64;

/// Maximum instructions per superblock trace. Loops unroll up to this cap,
/// so one dispatch covers up to this many retirements; it is also the upper
/// bound a dispatch needs below the event horizon.
pub const TRACE_MAX_OPS: usize = 256;

/// Maximum distinct constituent pages per trace (the guard list is a fixed
/// array so dispatch copies it without allocating).
pub const TRACE_MAX_PAGES: usize = 8;

/// Heat sentinel: trace formation failed at this head, stop profiling it.
/// Lives in the (local-only) profile so the `heads` list stays short.
const UNTRACEABLE: u16 = u16::MAX;

/// "No successor observed yet" marker in the edge-profile array.
const NO_SUCC: Addr = Addr::MAX;

/// How a trace op executes: straight-line ops batch through the fast
/// interpreter; control transfers are inlined with a guard on the expected
/// next PC. Every other opcode (privileged, IO, interrupt-flag, `Rdtsc`,
/// `Hlt`, `Syscall`/`Sysret`/`Iret`) ends trace formation, so a running
/// trace can never change the halt/interrupt state or observe the cycle
/// counter mid-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStep {
    /// Non-store straight-line instruction.
    Straight,
    /// Store-class straight-line instruction (`St`/`St8`/`Push`): the
    /// executor checks the written range against the trace's op-slot map
    /// after it (self-modification side-exits).
    StraightStore,
    /// Unconditional direct jump — free at runtime (the next op *is* the
    /// target), it only retires.
    Jmp,
    /// Conditional branch, guarded on the direction observed at build time.
    Branch,
    /// Direct call: push + RAS, target known statically.
    Call,
    /// Indirect call: push + RAS + JOP check, guarded on the profiled
    /// target.
    CallR,
    /// Return: pop + RAS, guarded on the profiled target.
    Ret,
    /// Indirect jump: JOP check, guarded on the profiled target.
    JmpR,
}

/// One flattened instruction of a superblock trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceOp {
    /// The op's own PC (partial commits restore from here).
    pub pc: Addr,
    /// The decoded instruction.
    pub insn: Instruction,
    /// Execution kind, classified at build time.
    pub step: TraceStep,
    /// The next PC the trace expects to execute: the following op's `pc`,
    /// or the trace's `end_pc` for the last op. Control transfers whose
    /// actual next PC differs side-exit the trace here.
    pub expect: Addr,
}

/// One constituent page of a trace body: the build-time page bytes (pinned
/// so pointer equality proves "unchanged"), plus a bitmap of the 8-byte
/// slots the trace's ops actually decode from. The bitmap is what lets
/// data and hot code share a page: writes that miss every op slot leave
/// the trace usable.
#[derive(Debug)]
pub struct TracePage {
    /// Page index.
    pub index: usize,
    /// Full page contents at build time.
    pub bytes: Arc<[u8; PAGE_SIZE]>,
    /// Bit `s` set ⇔ some op decodes from slot `s` (bytes `8s..8s+8`).
    op_slots: [u64; SLOTS / 64],
}

impl TracePage {
    /// A page entry with no op slots marked yet.
    pub fn new(index: usize, bytes: Arc<[u8; PAGE_SIZE]>) -> TracePage {
        TracePage { index, bytes, op_slots: [0; SLOTS / 64] }
    }

    /// Marks slot `s` as holding an op of this trace.
    pub fn mark_slot(&mut self, s: usize) {
        self.op_slots[s / 64] |= 1 << (s % 64);
    }

    /// True when slot `s` holds an op of this trace.
    #[inline]
    fn covers_slot(&self, s: usize) -> bool {
        self.op_slots[s / 64] & (1u64 << (s % 64)) != 0
    }

    /// True when `cur` still decodes every op identically: each op slot's
    /// 8 bytes match the pinned build-time bytes. Non-op bytes are free to
    /// differ — only bytes an op decodes from can change its meaning.
    /// Code is mostly contiguous, so compare maximal runs of set bits as
    /// single slices (memcmp speed) rather than slot by slot.
    fn ops_unchanged(&self, cur: &[u8; PAGE_SIZE]) -> bool {
        self.op_slots.iter().enumerate().all(|(w, &bits)| {
            let mut bits = bits;
            while bits != 0 {
                let first = bits.trailing_zeros() as usize;
                let run = (bits >> first).trailing_ones() as usize;
                let lo = (w * 64 + first) * 8;
                let hi = lo + run * 8;
                if cur[lo..hi] != self.bytes[lo..hi] {
                    return false;
                }
                // A full word (first 0, run 64) must not shift by 64.
                if run == 64 {
                    bits = 0;
                } else {
                    bits &= !(((1u64 << run) - 1) << first);
                }
            }
            true
        })
    }
}

/// The immutable body of a superblock, shared across VMs via `Arc`: the
/// flattened ops plus everything a dispatcher or importer needs to validate
/// it (PC bounds for breakpoint filtering, the exact page `Arc`s it was
/// decoded from for shared-pool identity checks).
#[derive(Debug)]
pub struct TraceBody {
    /// Flattened ops, head first; loops appear unrolled.
    pub ops: Vec<TraceOp>,
    /// Where execution continues after the last op retires.
    pub end_pc: Addr,
    /// Every page the ops decode from, with pinned bytes and op-slot map.
    pub pages: Vec<TracePage>,
    /// Lowest op PC (breakpoint-span prefilter).
    pub min_pc: Addr,
    /// Highest op PC (breakpoint-span prefilter).
    pub max_pc: Addr,
    /// Sorted, deduplicated op PCs, each with the index of its *first*
    /// occurrence in `ops` (loops appear unrolled, so a PC can repeat).
    /// Lets the dispatcher resolve an armed breakpoint to a cut point with
    /// one binary search instead of scanning every op.
    pub pcs: Vec<(Addr, u32)>,
}

impl TraceBody {
    /// True when a write covering the inclusive byte range `[lo, hi]`
    /// overlaps a byte any op decodes from — the store might rewrite trace
    /// code, so the dispatcher must side-exit. Mid-trace, only the guest's
    /// own stores can invalidate decoded code, so this check after each
    /// store *is* re-validation; writes to non-op bytes of a constituent
    /// page (data sharing the page with hot code) deliberately miss.
    #[inline]
    pub fn write_hits_ops(&self, lo: Addr, hi: Addr) -> bool {
        self.pages.iter().any(|p| {
            let base = (p.index * PAGE_SIZE) as Addr;
            if hi < base || lo >= base + PAGE_SIZE as Addr {
                return false;
            }
            let s0 = (lo.max(base) - base) as usize / 8;
            let s1 = (hi.min(base + PAGE_SIZE as Addr - 1) - base) as usize / 8;
            (s0..=s1).any(|s| p.covers_slot(s))
        })
    }

    /// The index of the first op at `pc`, if any op sits there.
    #[inline]
    pub fn first_op_at(&self, pc: Addr) -> Option<usize> {
        self.pcs.binary_search_by_key(&pc, |&(p, _)| p).ok().map(|i| self.pcs[i].1 as usize)
    }
}

/// Per-VM write-version guards of a trace: one `(page, version)` pair per
/// constituent page, stamped at install time against the owning VM's
/// memory (versions are per-VM, so shared-pool imports re-stamp them).
/// `Copy` by design — dispatch grabs a snapshot without allocating.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceGuards {
    len: u8,
    pages: [(u32, u64); TRACE_MAX_PAGES],
}

impl TraceGuards {
    /// Stamps guards for `body`'s pages against `mem`'s current versions.
    fn stamp(body: &TraceBody, mem: &Memory) -> TraceGuards {
        let mut g = TraceGuards::default();
        for p in &body.pages {
            g.pages[g.len as usize] = (p.index as u32, mem.page_version(p.index));
            g.len += 1;
        }
        g
    }

    /// True while no constituent page's write-version has moved.
    #[inline]
    pub fn valid(&self, mem: &Memory) -> bool {
        self.pages[..self.len as usize].iter().all(|&(p, v)| mem.page_version(p as usize) == v)
    }
}

/// Packed block metadata: low 10 bits = length in instructions (1..=512),
/// bit 10 = ends in a terminal (non-straight-line) instruction, bit 11 =
/// contains a store-class instruction (needs self-modification checks).
const META_LEN_MASK: u16 = 0x03ff;
const META_TERMINAL: u16 = 0x0400;
const META_STORE: u16 = 0x0800;

/// Shape of a cached basic block starting at some slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    /// Number of instructions in the block (terminal included).
    pub len: u16,
    /// True when the last instruction is a block terminator (control
    /// transfer, privileged/IO, or interrupt-flag write). False for blocks
    /// truncated by a page boundary or undecodable bytes.
    pub has_terminal: bool,
    /// True when any instruction in the block can write guest memory
    /// (St/St8/Push) — the executor re-checks the page version after those
    /// to catch code that modifies its own block.
    pub has_store: bool,
}

impl BlockInfo {
    fn pack(self) -> u16 {
        debug_assert!(self.len >= 1 && (self.len as usize) <= SLOTS);
        (self.len & META_LEN_MASK)
            | if self.has_terminal { META_TERMINAL } else { 0 }
            | if self.has_store { META_STORE } else { 0 }
    }

    fn unpack(meta: u16) -> Option<BlockInfo> {
        let len = meta & META_LEN_MASK;
        if len == 0 {
            return None;
        }
        Some(BlockInfo { len, has_terminal: meta & META_TERMINAL != 0, has_store: meta & META_STORE != 0 })
    }
}

/// Wall-clock counters of the block cache (never affect virtual time).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockStats {
    /// Block lookups served straight from the cache.
    pub hits: u64,
    /// Blocks decoded and installed (cold misses and rebuilds).
    pub builds: u64,
    /// Page caches dropped because the page's write-version moved.
    pub flushes: u64,
    /// Page caches adopted from the run-wide shared cache instead of being
    /// rebuilt locally.
    pub shared_imports: u64,
    /// Superblock traces chained and installed (locally built or adopted
    /// from the shared pool).
    pub trace_builds: u64,
    /// Superblock dispatches: a valid trace was entered (it may still
    /// side-exit early on a guard mispredict, fault, or SMC).
    pub trace_hits: u64,
    /// Traces dropped because a constituent page's write-version moved
    /// (self-modifying code, checkpoint restores) or its page flushed.
    pub trace_flushes: u64,
    /// Valid traces skipped at dispatch because a budget horizon or a
    /// breakpoint intruded — execution fell back to the block engine.
    pub trace_fallbacks: u64,
    /// Instructions retired through trace dispatches (coverage diagnostic:
    /// divide by `trace_hits` for the mean retirement per dispatch).
    pub trace_insns: u64,
}

impl BlockStats {
    /// Accumulates another stats snapshot into this one.
    pub fn merge(&mut self, other: &BlockStats) {
        self.hits += other.hits;
        self.builds += other.builds;
        self.flushes += other.flushes;
        self.shared_imports += other.shared_imports;
        self.trace_builds += other.trace_builds;
        self.trace_hits += other.trace_hits;
        self.trace_flushes += other.trace_flushes;
        self.trace_fallbacks += other.trace_fallbacks;
        self.trace_insns += other.trace_insns;
    }
}

/// One page's worth of predecoded instructions and block metadata, valid for
/// a single write version of the backing page.
#[derive(Debug, Clone)]
struct PageCache {
    version: u64,
    slots: Box<[Option<Instruction>; SLOTS]>,
    blocks: Box<[u16; SLOTS]>,
    // Live superblock heads: per-slot trace pool id, 0 = none. Allocated
    // on the first install so trace-free pages (and every shared-pool
    // clone — publishing strips heads) stay light; the direct index keeps
    // the per-dispatch lookup O(1). Heads formation gave up on are not
    // recorded here; they carry the `UNTRACEABLE` heat sentinel in the
    // profile instead.
    heads: Option<Box<[u32; SLOTS]>>,
    // Edge profile, allocated on the first profiled block exit. Kept out
    // of the decode arrays on purpose: heat and successors are per-VM
    // profiling state, so the shared pool never carries them — publishing
    // or importing a page clones only the decode, exactly as it did
    // before superblocks existed.
    profile: Option<Box<Profile>>,
}

/// Per-block-head edge profile for one page. `heat` counts block-exit
/// executions (saturating) and `succ` remembers the last observed
/// successor PC (`NO_SUCC` when never seen). All wall-clock-only.
#[derive(Debug, Clone)]
struct Profile {
    heat: [u16; SLOTS],
    succ: [Addr; SLOTS],
}

impl Profile {
    fn boxed() -> Box<Profile> {
        Box::new(Profile { heat: [0; SLOTS], succ: [NO_SUCC; SLOTS] })
    }
}

impl PageCache {
    fn new(version: u64) -> PageCache {
        PageCache {
            version,
            slots: Box::new([None; SLOTS]),
            blocks: Box::new([0; SLOTS]),
            heads: None,
            profile: None,
        }
    }

    /// The trace pool id installed at `slot` (0 = none).
    #[inline]
    fn head(&self, slot: usize) -> u32 {
        self.heads.as_ref().map_or(0, |h| h[slot])
    }

    fn set_head(&mut self, slot: usize, id: u32) {
        self.heads.get_or_insert_with(|| Box::new([0; SLOTS]))[slot] = id;
    }

    fn clear_head(&mut self, slot: usize) {
        if let Some(h) = self.heads.as_mut() {
            h[slot] = 0;
        }
    }
}

/// A pooled superblock: the shared body plus this VM's guard stamps.
#[derive(Debug, Clone)]
struct TraceRef {
    body: Arc<TraceBody>,
    guards: TraceGuards,
}

/// A lazily filled, version-checked decode, basic-block, and superblock
/// cache over guest memory.
#[derive(Debug, Clone, Default)]
pub struct BlockCache {
    pages: Vec<Option<PageCache>>,
    // Superblock pool, referenced by `PageCache::trace_idx` as index + 1.
    // Freed entries recycle through `free_traces`.
    traces: Vec<Option<TraceRef>>,
    free_traces: Vec<u32>,
    stats: BlockStats,
}

impl BlockCache {
    /// An empty cache (sized on first use).
    pub fn new() -> BlockCache {
        BlockCache::default()
    }

    /// Wall-clock hit/build/flush counters.
    pub fn stats(&self) -> BlockStats {
        self.stats
    }

    /// The cached decode of the instruction at `pc`, if still valid.
    ///
    /// Returns `None` for unaligned or out-of-range PCs, for never-decoded
    /// slots, and whenever the page has been written since the decode.
    #[inline]
    pub fn get(&self, pc: Addr, mem: &Memory) -> Option<Instruction> {
        if pc & 7 != 0 {
            return None;
        }
        let page = (pc as usize) / PAGE_SIZE;
        let cached = self.pages.get(page)?.as_ref()?;
        if cached.version != mem.page_version(page) {
            return None;
        }
        cached.slots[(pc as usize % PAGE_SIZE) / 8]
    }

    /// Stores a fresh decode of the instruction at `pc`.
    ///
    /// If the page's cache is stale it is reset to the current version
    /// first, dropping every slot (and block) decoded against old bytes.
    pub fn insert(&mut self, pc: Addr, insn: Instruction, mem: &Memory) {
        if pc & 7 != 0 {
            return;
        }
        let page = (pc as usize) / PAGE_SIZE;
        if page >= mem.page_count() {
            return;
        }
        let cached = self.fresh_page(page, mem);
        cached.slots[(pc as usize % PAGE_SIZE) / 8] = Some(insn);
    }

    /// The cached basic block starting at `pc`, if still valid.
    #[inline]
    pub fn block_info(&mut self, pc: Addr, mem: &Memory) -> Option<BlockInfo> {
        debug_assert_eq!(pc & 7, 0, "block entries are aligned");
        let page = (pc as usize) / PAGE_SIZE;
        let cached = self.pages.get(page)?.as_ref()?;
        if cached.version != mem.page_version(page) {
            return None;
        }
        let info = BlockInfo::unpack(cached.blocks[(pc as usize % PAGE_SIZE) / 8])?;
        self.stats.hits += 1;
        Some(info)
    }

    /// Installs a decoded basic block starting at `pc`.
    ///
    /// The slice must not cross a page boundary. A stale page cache is reset
    /// to the current version first.
    pub fn insert_block(&mut self, pc: Addr, insns: &[Instruction], info: BlockInfo, mem: &Memory) {
        debug_assert_eq!(pc & 7, 0, "block entries are aligned");
        debug_assert_eq!(insns.len(), info.len as usize);
        let page = (pc as usize) / PAGE_SIZE;
        let slot = (pc as usize % PAGE_SIZE) / 8;
        debug_assert!(slot + insns.len() <= SLOTS, "blocks never cross pages");
        if page >= mem.page_count() || insns.is_empty() {
            return;
        }
        self.stats.builds += 1;
        let cached = self.fresh_page(page, mem);
        for (i, insn) in insns.iter().enumerate() {
            cached.slots[slot + i] = Some(*insn);
        }
        cached.blocks[slot] = info.pack();
    }

    /// The decoded instruction at `(page, slot)`.
    ///
    /// Only valid for slots covered by a block previously returned by
    /// [`BlockCache::block_info`] in the same borrow region (no version
    /// re-check — the executor performs its own after stores).
    ///
    /// # Panics
    ///
    /// Panics if the slot was never decoded (an executor bug).
    #[inline]
    pub fn slot_insn(&self, page: usize, slot: usize) -> Instruction {
        self.pages[page].as_ref().expect("block page present")[slot]
    }

    /// Resolves (or resets) the page cache for the current page version.
    fn fresh_page(&mut self, page: usize, mem: &Memory) -> &mut PageCache {
        if self.pages.len() <= page {
            self.pages.resize(page + 1, None);
        }
        let version = mem.page_version(page);
        let stale = matches!(&self.pages[page], Some(c) if c.version != version);
        if stale {
            self.stats.flushes += 1;
            // The page's decodes are gone, but traces headed here may
            // survive: their bodies pin the exact bytes they decoded from,
            // and most version bumps on mixed code/data pages are data
            // writes that touch no op byte. Carry the heads into the fresh
            // cache — the next `trace_at` re-validates each against its
            // op-slot map and frees the ones the write really changed.
            let dropped = self.pages[page].take().expect("stale entry present");
            let fresh = self.pages[page].get_or_insert_with(|| PageCache::new(version));
            fresh.heads = dropped.heads;
            return fresh;
        }
        self.pages[page].get_or_insert_with(|| PageCache::new(version))
    }

    /// Returns a pool entry to the free list (idempotent).
    fn free_trace(&mut self, id: u32) {
        let idx = (id - 1) as usize;
        if self.traces.get(idx).is_some_and(Option::is_some) {
            self.traces[idx] = None;
            self.free_traces.push(id);
            self.stats.trace_flushes += 1;
        }
    }

    /// Allocates a pool slot for a trace, recycling freed entries.
    fn alloc_trace(&mut self, tr: TraceRef) -> u32 {
        if let Some(id) = self.free_traces.pop() {
            self.traces[(id - 1) as usize] = Some(tr);
            id
        } else {
            self.traces.push(Some(tr));
            u32::try_from(self.traces.len()).expect("trace pool fits in u32")
        }
    }

    /// The valid superblock headed at `pc`, as `(shared body, this VM's
    /// guard snapshot)`. A trace whose guards went stale is dropped on the
    /// spot and its head re-heats, so the next threshold crossing rebuilds
    /// against the new bytes.
    #[inline]
    pub fn trace_at(&mut self, pc: Addr, mem: &Memory) -> Option<Arc<TraceBody>> {
        let page = (pc as usize) / PAGE_SIZE;
        let slot = (pc as usize % PAGE_SIZE) / 8;
        let cached = self.pages.get(page)?.as_ref()?;
        if cached.version != mem.page_version(page) {
            return None;
        }
        let id = cached.head(slot);
        if id == 0 {
            return None;
        }
        let tr = self.traces[(id - 1) as usize].as_mut().expect("indexed trace present");
        if !tr.guards.valid(mem) {
            // Version counters are per-VM and bump on every write and
            // checkpoint restore, including ones that change no op byte.
            // The body pins its constituent pages' `Arc`s (refcount ≥ 2 ⇒
            // any write copies first), so pointer equality proves the page
            // never changed; failing that, compare just the op slots —
            // data writes into a page shared with hot code leave them
            // intact. Either way the trace survives: re-stamp the guards
            // instead of burning it and re-heating.
            let unchanged = tr.body.pages.iter().all(|p| {
                mem.page_arc(p.index).is_some_and(|cur| Arc::ptr_eq(&p.bytes, cur) || p.ops_unchanged(cur))
            });
            if unchanged {
                tr.guards = TraceGuards::stamp(&tr.body, mem);
            } else {
                self.free_trace(id);
                let cached = self.pages[page].as_mut().expect("page checked above");
                cached.clear_head(slot);
                if let Some(profile) = cached.profile.as_mut() {
                    profile.heat[slot] = 0;
                }
                return None;
            }
        }
        let tr = self.traces[(id - 1) as usize].as_ref().expect("indexed trace present");
        Some(Arc::clone(&tr.body))
    }

    /// Counts a trace dispatch (the executor entered a valid trace).
    #[inline]
    pub fn note_trace_hit(&mut self) {
        self.stats.trace_hits += 1;
    }

    /// Counts instructions retired by a trace dispatch.
    #[inline]
    pub fn note_trace_insns(&mut self, n: u64) {
        self.stats.trace_insns += n;
    }

    /// Profiles a block-exit edge: remembers `succ` as the last observed
    /// successor of the block headed at `(page, slot)` and bumps the head's
    /// heat. Returns the new heat, or `None` once a trace exists (or
    /// formation was marked hopeless) for this head.
    #[inline]
    pub fn record_edge(&mut self, page: usize, slot: usize, succ: Addr) -> Option<u16> {
        let cached = self.pages.get_mut(page)?.as_mut()?;
        let heat = cached.profile.as_ref().map_or(0, |p| p.heat[slot]);
        if heat == UNTRACEABLE {
            return None;
        }
        if heat >= TRACE_HEAT && cached.head(slot) != 0 {
            // A live trace covers this head; the block path only sees it
            // on horizon or breakpoint fallbacks. (The `heads` scan is
            // gated behind the heat test so cold code never pays it.)
            return None;
        }
        let profile = cached.profile.get_or_insert_with(Profile::boxed);
        profile.succ[slot] = succ;
        // Cap below the sentinel: a head whose install failed must not
        // drift into "untraceable" by sheer execution count.
        let heat = heat.saturating_add(1).min(UNTRACEABLE - 1);
        profile.heat[slot] = heat;
        Some(heat)
    }

    /// The last observed successor of the block headed at `(page, slot)`.
    pub fn observed_succ(&self, page: usize, slot: usize) -> Option<Addr> {
        let succ = self.pages.get(page)?.as_ref()?.profile.as_ref()?.succ[slot];
        (succ != NO_SUCC).then_some(succ)
    }

    /// Marks the block head at `pc` as untraceable (formation produced
    /// nothing worth dispatching) so profiling stops retrying it. Cleared
    /// naturally when the page flushes.
    pub fn mark_untraceable(&mut self, pc: Addr) {
        let page = (pc as usize) / PAGE_SIZE;
        let slot = (pc as usize % PAGE_SIZE) / 8;
        if let Some(Some(cached)) = self.pages.get_mut(page) {
            cached.profile.get_or_insert_with(Profile::boxed).heat[slot] = UNTRACEABLE;
        }
    }

    /// Installs a built superblock at its head `pc`, stamping guards from
    /// `mem`'s current page versions. Returns false (and installs nothing)
    /// when the head's page cache is missing or stale.
    pub fn install_trace(&mut self, pc: Addr, body: Arc<TraceBody>, mem: &Memory) -> bool {
        debug_assert!(body.pages.len() <= TRACE_MAX_PAGES);
        let page = (pc as usize) / PAGE_SIZE;
        let slot = (pc as usize % PAGE_SIZE) / 8;
        let Some(Some(cached)) = self.pages.get(page) else { return false };
        if cached.version != mem.page_version(page) {
            return false;
        }
        let old = cached.head(slot);
        let guards = TraceGuards::stamp(&body, mem);
        let id = self.alloc_trace(TraceRef { body, guards });
        if old != 0 {
            self.free_trace(old);
        }
        self.pages[page].as_mut().expect("page checked above").set_head(slot, id);
        self.stats.trace_builds += 1;
        true
    }

    /// Counts a dispatch fallback: a valid trace was found but a budget
    /// horizon or breakpoint forced block-at-a-time execution instead.
    #[inline]
    pub fn note_trace_fallback(&mut self) {
        self.stats.trace_fallbacks += 1;
    }
}

/// A run-wide, read-mostly pool of decoded page caches shared between the
/// recorder, the CR (or its span workers), and the alarm replayers.
///
/// Each entry pairs a decoded `PageCache` with an `Arc` of the exact page
/// bytes it was decoded from. That pairing is what makes the pool sound
/// across threads with no version protocol: guest pages are immutable behind
/// their `Arc` (every writer goes through `Arc::make_mut`, and the pool's
/// own clone keeps the refcount above one, forcing copy-on-write), so a
/// consumer whose current page is *pointer-equal* to an entry's page is
/// guaranteed the decode is for exactly the bytes it would decode itself.
/// There is no staleness to detect — a stale page is a *different* `Arc`
/// and simply fails the pointer check.
///
/// Publishing and importing touch no guest state, so sharing is wall-clock
/// only: virtual cycles, digests, and verdicts are identical with the pool
/// attached or not.
#[derive(Debug, Default)]
pub struct SharedPageCache {
    entries: Mutex<HashMap<usize, SharedEntry>>,
}

/// The exact page bytes a decode came from, paired with that decode and
/// the superblocks headed in the page (shared by body; guard stamps are
/// per-VM and re-issued on import).
#[derive(Debug)]
struct SharedEntry {
    bytes: Arc<[u8; PAGE_SIZE]>,
    cache: PageCache,
    traces: Vec<(usize, Arc<TraceBody>)>,
}

impl SharedPageCache {
    /// An empty pool.
    pub fn new() -> SharedPageCache {
        SharedPageCache::default()
    }
}

impl BlockCache {
    /// Offers this cache's decode of `page` to the run-wide pool, keyed by
    /// the exact page bytes it was decoded from, together with the
    /// superblocks headed in the page. Later publications simply overwrite
    /// — decodes are a pure function of the page bytes, and any trace that
    /// survives the importer's per-page identity checks is valid for it.
    pub fn publish_to(&self, shared: &SharedPageCache, page: usize, mem: &Memory) {
        let Some(bytes) = mem.page_arc(page) else { return };
        let Some(Some(local)) = self.pages.get(page) else { return };
        if local.version != mem.page_version(page) {
            return;
        }
        // Only the decode travels; heat/succ are per-VM profiling state and
        // pool indices are publisher-local, so importers rebuild their own.
        let cache = PageCache {
            version: local.version,
            slots: local.slots.clone(),
            blocks: local.blocks.clone(),
            heads: None,
            profile: None,
        };
        let traces = local.heads.as_ref().map_or_else(Vec::new, |hs| {
            hs.iter()
                .enumerate()
                .filter(|&(_, &id)| id != 0)
                .map(|(slot, &id)| {
                    (slot, Arc::clone(&self.traces[(id - 1) as usize].as_ref().expect("indexed").body))
                })
                .collect()
        });
        let mut entries = shared.entries.lock().expect("shared cache lock");
        entries.insert(page, SharedEntry { bytes: Arc::clone(bytes), cache, traces });
    }

    /// Adopts the pool's decode of `page` if the pool's entry was decoded
    /// from the very `Arc` this memory currently holds (pointer equality ⇒
    /// identical bytes ⇒ identical decode). Published superblocks ride
    /// along when *every* constituent page passes the same identity check;
    /// their guards are re-stamped against the importer's own versions.
    /// Returns whether an entry was installed.
    pub fn import_from(&mut self, shared: &SharedPageCache, page: usize, mem: &Memory) -> bool {
        let Some(bytes) = mem.page_arc(page) else { return false };
        let entries = shared.entries.lock().expect("shared cache lock");
        let Some(entry) = entries.get(&page) else { return false };
        if !Arc::ptr_eq(&entry.bytes, bytes) {
            return false;
        }
        let mut cache = entry.cache.clone();
        let traces: Vec<(usize, Arc<TraceBody>)> = entry
            .traces
            .iter()
            .filter(|(_, body)| {
                body.pages.iter().all(|p| {
                    mem.page_arc(p.index)
                        .is_some_and(|cur| Arc::ptr_eq(&p.bytes, cur) || p.ops_unchanged(cur))
                })
            })
            .cloned()
            .collect();
        drop(entries);
        // Re-stamp with the importer's own version counter (versions are
        // per-VM, not per-content).
        cache.version = mem.page_version(page);
        if self.pages.len() <= page {
            self.pages.resize(page + 1, None);
        }
        // Keep pool entries whose body the pool would re-install anyway:
        // repeated imports of a hot page then neither free nor re-stamp
        // per trace, and the flush counter stays an invalidation count
        // instead of an import-churn count.
        let mut old_heads = self.pages[page].take().and_then(|old| old.heads);
        for (slot, body) in traces {
            let reusable = old_heads.as_ref().map_or(0, |h| h[slot]);
            let id = if reusable != 0
                && self.traces[(reusable - 1) as usize]
                    .as_ref()
                    .is_some_and(|tr| Arc::ptr_eq(&tr.body, &body))
            {
                let tr = self.traces[(reusable - 1) as usize].as_mut().expect("checked live");
                tr.guards = TraceGuards::stamp(&body, mem);
                old_heads.as_mut().expect("non-empty")[slot] = 0;
                reusable
            } else {
                let guards = TraceGuards::stamp(&body, mem);
                self.alloc_trace(TraceRef { body, guards })
            };
            cache.set_head(slot, id);
        }
        if let Some(h) = old_heads {
            for &id in h.iter() {
                if id != 0 {
                    self.free_trace(id);
                }
            }
        }
        self.pages[page] = Some(cache);
        self.stats.shared_imports += 1;
        true
    }
}

impl std::ops::Index<usize> for PageCache {
    type Output = Instruction;

    fn index(&self, slot: usize) -> &Instruction {
        self.slots[slot].as_ref().expect("slot decoded as part of a block")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnr_isa::{Opcode, Reg};

    fn insn(imm: i32) -> Instruction {
        Instruction::new(Opcode::MovImm, Reg::R1, Reg::R0, Reg::R0, imm)
    }

    #[test]
    fn miss_then_hit() {
        let mem = Memory::new(PAGE_SIZE * 2);
        let mut cache = BlockCache::new();
        assert_eq!(cache.get(0x8, &mem), None);
        cache.insert(0x8, insn(1), &mem);
        assert_eq!(cache.get(0x8, &mem), Some(insn(1)));
        assert_eq!(cache.get(0x10, &mem), None, "other slots stay cold");
    }

    #[test]
    fn unaligned_pcs_are_never_cached() {
        let mem = Memory::new(PAGE_SIZE);
        let mut cache = BlockCache::new();
        cache.insert(0x9, insn(1), &mem);
        assert_eq!(cache.get(0x9, &mem), None);
    }

    #[test]
    fn write_to_page_invalidates_its_decodes() {
        let mut mem = Memory::new(PAGE_SIZE * 2);
        let mut cache = BlockCache::new();
        cache.insert(0x8, insn(1), &mem);
        cache.insert(PAGE_SIZE as u64 + 8, insn(2), &mem);
        mem.write_u8(0x8, 0xff).unwrap();
        assert_eq!(cache.get(0x8, &mem), None, "written page drops");
        assert_eq!(cache.get(PAGE_SIZE as u64 + 8, &mem), Some(insn(2)), "other page survives");
        // Re-inserting against the new version works.
        cache.insert(0x8, insn(3), &mem);
        assert_eq!(cache.get(0x8, &mem), Some(insn(3)));
    }

    #[test]
    fn restore_after_write_invalidates() {
        let mut mem = Memory::new(PAGE_SIZE);
        let snap = mem.snapshot_pages();
        let mut cache = BlockCache::new();
        mem.write_u8(0x10, 7).unwrap();
        cache.insert(0x0, insn(1), &mem);
        mem.restore_pages(snap);
        assert_eq!(cache.get(0x0, &mem), None, "restore of a differing page flushes");
    }

    #[test]
    fn restore_of_identical_pages_keeps_cache_warm() {
        let mut mem = Memory::new(PAGE_SIZE);
        let snap = mem.snapshot_pages();
        let mut cache = BlockCache::new();
        cache.insert(0x0, insn(1), &mem);
        // Nothing was written between snapshot and restore: the pages are
        // the same `Arc`s, the content cannot have changed, and the decode
        // survives (the warm-restore optimization for alarm replayers).
        mem.restore_pages(snap);
        assert_eq!(cache.get(0x0, &mem), Some(insn(1)));
    }

    #[test]
    fn out_of_range_pc_is_ignored() {
        let mem = Memory::new(PAGE_SIZE);
        let mut cache = BlockCache::new();
        cache.insert(PAGE_SIZE as u64 * 10, insn(1), &mem);
        assert_eq!(cache.get(PAGE_SIZE as u64 * 10, &mem), None);
    }

    #[test]
    fn block_round_trip_and_invalidation() {
        let mut mem = Memory::new(PAGE_SIZE);
        let mut cache = BlockCache::new();
        let block = [insn(1), insn(2), insn(3)];
        let info = BlockInfo { len: 3, has_terminal: true, has_store: false };
        assert_eq!(cache.block_info(0x10, &mem), None);
        cache.insert_block(0x10, &block, info, &mem);
        assert_eq!(cache.block_info(0x10, &mem), Some(info));
        assert_eq!(cache.slot_insn(0, 2 + 1), insn(2));
        assert_eq!(cache.get(0x20, &mem), Some(insn(3)), "block slots serve single decodes too");
        // Interior slots are not block entry points.
        assert_eq!(cache.block_info(0x18, &mem), None);
        mem.write_u8(0x18, 0xff).unwrap();
        assert_eq!(cache.block_info(0x10, &mem), None, "write invalidates the block");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.builds), (1, 1));
    }

    #[test]
    fn stale_page_reset_counts_a_flush() {
        let mut mem = Memory::new(PAGE_SIZE);
        let mut cache = BlockCache::new();
        let info = BlockInfo { len: 1, has_terminal: false, has_store: false };
        cache.insert_block(0x0, &[insn(1)], info, &mem);
        mem.write_u8(0x100, 1).unwrap();
        cache.insert_block(0x0, &[insn(2)], info, &mem);
        assert_eq!(cache.stats().flushes, 1);
        assert_eq!(cache.slot_insn(0, 0), insn(2));
    }

    #[test]
    fn meta_packing_round_trips() {
        for len in [1u16, 2, 511, 512] {
            for (t, s) in [(false, false), (true, false), (false, true), (true, true)] {
                let info = BlockInfo { len, has_terminal: t, has_store: s };
                assert_eq!(BlockInfo::unpack(info.pack()), Some(info));
            }
        }
        assert_eq!(BlockInfo::unpack(0), None);
    }
}
