//! The predecoded instruction and basic-block cache.
//!
//! The interpreter's hot loop used to fetch 8 bytes from guest memory and
//! re-decode them on **every** executed instruction. Real processors (and
//! fast emulators — QEMU's TB cache plays this role in the paper's setup)
//! decode each instruction once and reuse the result until the code is
//! overwritten. [`BlockCache`] does the same for the simulator, at two
//! granularities:
//!
//! * **Instructions** — a per-page array of decoded instructions, filled
//!   lazily on first execution ([`BlockCache::get`]/[`BlockCache::insert`]).
//! * **Basic blocks** — decoded straight-line runs terminated at control
//!   transfers, privileged/IO instructions, interrupt-flag writes, and page
//!   boundaries ([`BlockCache::block_info`]/[`BlockCache::insert_block`]).
//!   The block executor in [`crate::GuestVm`] retires whole blocks between
//!   *event horizons* with a single counter bump and no per-instruction
//!   budget/breakpoint checks.
//!
//! Both layers are invalidated wholesale when the page's write-version
//! ([`Memory::page_version`]) moves — which is what makes self-modifying
//! code (and checkpoint restores) correct without any explicit flush
//! protocol.
//!
//! Only 8-byte-aligned PCs are cached: aligned fetches never straddle a
//! page, so one `(page, slot)` pair identifies the instruction. Unaligned
//! PCs (possible targets of a hijacked return) fall back to the slow
//! fetch+decode path. Decoding is architecturally free in the cost model by
//! default ([`crate::CostModel::decode`] is 0), so caching changes wall-clock
//! time only, never virtual cycles.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rnr_isa::{Addr, Instruction};

use crate::mem::{Memory, PAGE_SIZE};

/// Decoded slots per page (8-byte instructions).
const SLOTS: usize = PAGE_SIZE / 8;

/// Packed block metadata: low 10 bits = length in instructions (1..=512),
/// bit 10 = ends in a terminal (non-straight-line) instruction, bit 11 =
/// contains a store-class instruction (needs self-modification checks).
const META_LEN_MASK: u16 = 0x03ff;
const META_TERMINAL: u16 = 0x0400;
const META_STORE: u16 = 0x0800;

/// Shape of a cached basic block starting at some slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    /// Number of instructions in the block (terminal included).
    pub len: u16,
    /// True when the last instruction is a block terminator (control
    /// transfer, privileged/IO, or interrupt-flag write). False for blocks
    /// truncated by a page boundary or undecodable bytes.
    pub has_terminal: bool,
    /// True when any instruction in the block can write guest memory
    /// (St/St8/Push) — the executor re-checks the page version after those
    /// to catch code that modifies its own block.
    pub has_store: bool,
}

impl BlockInfo {
    fn pack(self) -> u16 {
        debug_assert!(self.len >= 1 && (self.len as usize) <= SLOTS);
        (self.len & META_LEN_MASK)
            | if self.has_terminal { META_TERMINAL } else { 0 }
            | if self.has_store { META_STORE } else { 0 }
    }

    fn unpack(meta: u16) -> Option<BlockInfo> {
        let len = meta & META_LEN_MASK;
        if len == 0 {
            return None;
        }
        Some(BlockInfo { len, has_terminal: meta & META_TERMINAL != 0, has_store: meta & META_STORE != 0 })
    }
}

/// Wall-clock counters of the block cache (never affect virtual time).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BlockStats {
    /// Block lookups served straight from the cache.
    pub hits: u64,
    /// Blocks decoded and installed (cold misses and rebuilds).
    pub builds: u64,
    /// Page caches dropped because the page's write-version moved.
    pub flushes: u64,
    /// Page caches adopted from the run-wide shared cache instead of being
    /// rebuilt locally.
    pub shared_imports: u64,
}

impl BlockStats {
    /// Accumulates another stats snapshot into this one.
    pub fn merge(&mut self, other: &BlockStats) {
        self.hits += other.hits;
        self.builds += other.builds;
        self.flushes += other.flushes;
        self.shared_imports += other.shared_imports;
    }
}

/// One page's worth of predecoded instructions and block metadata, valid for
/// a single write version of the backing page.
#[derive(Debug, Clone)]
struct PageCache {
    version: u64,
    slots: Box<[Option<Instruction>; SLOTS]>,
    blocks: Box<[u16; SLOTS]>,
}

impl PageCache {
    fn new(version: u64) -> PageCache {
        PageCache { version, slots: Box::new([None; SLOTS]), blocks: Box::new([0; SLOTS]) }
    }
}

/// A lazily filled, version-checked decode and basic-block cache over guest
/// memory.
#[derive(Debug, Clone, Default)]
pub struct BlockCache {
    pages: Vec<Option<PageCache>>,
    stats: BlockStats,
}

impl BlockCache {
    /// An empty cache (sized on first use).
    pub fn new() -> BlockCache {
        BlockCache::default()
    }

    /// Wall-clock hit/build/flush counters.
    pub fn stats(&self) -> BlockStats {
        self.stats
    }

    /// The cached decode of the instruction at `pc`, if still valid.
    ///
    /// Returns `None` for unaligned or out-of-range PCs, for never-decoded
    /// slots, and whenever the page has been written since the decode.
    #[inline]
    pub fn get(&self, pc: Addr, mem: &Memory) -> Option<Instruction> {
        if pc & 7 != 0 {
            return None;
        }
        let page = (pc as usize) / PAGE_SIZE;
        let cached = self.pages.get(page)?.as_ref()?;
        if cached.version != mem.page_version(page) {
            return None;
        }
        cached.slots[(pc as usize % PAGE_SIZE) / 8]
    }

    /// Stores a fresh decode of the instruction at `pc`.
    ///
    /// If the page's cache is stale it is reset to the current version
    /// first, dropping every slot (and block) decoded against old bytes.
    pub fn insert(&mut self, pc: Addr, insn: Instruction, mem: &Memory) {
        if pc & 7 != 0 {
            return;
        }
        let page = (pc as usize) / PAGE_SIZE;
        if page >= mem.page_count() {
            return;
        }
        let cached = self.fresh_page(page, mem);
        cached.slots[(pc as usize % PAGE_SIZE) / 8] = Some(insn);
    }

    /// The cached basic block starting at `pc`, if still valid.
    #[inline]
    pub fn block_info(&mut self, pc: Addr, mem: &Memory) -> Option<BlockInfo> {
        debug_assert_eq!(pc & 7, 0, "block entries are aligned");
        let page = (pc as usize) / PAGE_SIZE;
        let cached = self.pages.get(page)?.as_ref()?;
        if cached.version != mem.page_version(page) {
            return None;
        }
        let info = BlockInfo::unpack(cached.blocks[(pc as usize % PAGE_SIZE) / 8])?;
        self.stats.hits += 1;
        Some(info)
    }

    /// Installs a decoded basic block starting at `pc`.
    ///
    /// The slice must not cross a page boundary. A stale page cache is reset
    /// to the current version first.
    pub fn insert_block(&mut self, pc: Addr, insns: &[Instruction], info: BlockInfo, mem: &Memory) {
        debug_assert_eq!(pc & 7, 0, "block entries are aligned");
        debug_assert_eq!(insns.len(), info.len as usize);
        let page = (pc as usize) / PAGE_SIZE;
        let slot = (pc as usize % PAGE_SIZE) / 8;
        debug_assert!(slot + insns.len() <= SLOTS, "blocks never cross pages");
        if page >= mem.page_count() || insns.is_empty() {
            return;
        }
        self.stats.builds += 1;
        let cached = self.fresh_page(page, mem);
        for (i, insn) in insns.iter().enumerate() {
            cached.slots[slot + i] = Some(*insn);
        }
        cached.blocks[slot] = info.pack();
    }

    /// The decoded instruction at `(page, slot)`.
    ///
    /// Only valid for slots covered by a block previously returned by
    /// [`BlockCache::block_info`] in the same borrow region (no version
    /// re-check — the executor performs its own after stores).
    ///
    /// # Panics
    ///
    /// Panics if the slot was never decoded (an executor bug).
    #[inline]
    pub fn slot_insn(&self, page: usize, slot: usize) -> Instruction {
        self.pages[page].as_ref().expect("block page present")[slot]
    }

    /// Resolves (or resets) the page cache for the current page version.
    fn fresh_page(&mut self, page: usize, mem: &Memory) -> &mut PageCache {
        if self.pages.len() <= page {
            self.pages.resize(page + 1, None);
        }
        let version = mem.page_version(page);
        let slot = &mut self.pages[page];
        let stale = matches!(slot, Some(c) if c.version != version);
        if stale {
            self.stats.flushes += 1;
            *slot = None;
        }
        slot.get_or_insert_with(|| PageCache::new(version))
    }
}

/// A run-wide, read-mostly pool of decoded page caches shared between the
/// recorder, the CR (or its span workers), and the alarm replayers.
///
/// Each entry pairs a decoded [`PageCache`] with an `Arc` of the exact page
/// bytes it was decoded from. That pairing is what makes the pool sound
/// across threads with no version protocol: guest pages are immutable behind
/// their `Arc` (every writer goes through `Arc::make_mut`, and the pool's
/// own clone keeps the refcount above one, forcing copy-on-write), so a
/// consumer whose current page is *pointer-equal* to an entry's page is
/// guaranteed the decode is for exactly the bytes it would decode itself.
/// There is no staleness to detect — a stale page is a *different* `Arc`
/// and simply fails the pointer check.
///
/// Publishing and importing touch no guest state, so sharing is wall-clock
/// only: virtual cycles, digests, and verdicts are identical with the pool
/// attached or not.
#[derive(Debug, Default)]
pub struct SharedPageCache {
    entries: Mutex<HashMap<usize, SharedEntry>>,
}

/// The exact page bytes a decode came from, paired with that decode.
type SharedEntry = (Arc<[u8; PAGE_SIZE]>, PageCache);

impl SharedPageCache {
    /// An empty pool.
    pub fn new() -> SharedPageCache {
        SharedPageCache::default()
    }
}

impl BlockCache {
    /// Offers this cache's decode of `page` to the run-wide pool, keyed by
    /// the exact page bytes it was decoded from. Later publications simply
    /// overwrite — the decode is a pure function of the page bytes, so any
    /// publication for the same `Arc` is interchangeable.
    pub fn publish_to(&self, shared: &SharedPageCache, page: usize, mem: &Memory) {
        let Some(bytes) = mem.page_arc(page) else { return };
        let Some(Some(local)) = self.pages.get(page) else { return };
        if local.version != mem.page_version(page) {
            return;
        }
        let mut entries = shared.entries.lock().expect("shared cache lock");
        entries.insert(page, (Arc::clone(bytes), local.clone()));
    }

    /// Adopts the pool's decode of `page` if the pool's entry was decoded
    /// from the very `Arc` this memory currently holds (pointer equality ⇒
    /// identical bytes ⇒ identical decode). Returns whether an entry was
    /// installed.
    pub fn import_from(&mut self, shared: &SharedPageCache, page: usize, mem: &Memory) -> bool {
        let Some(bytes) = mem.page_arc(page) else { return false };
        let entries = shared.entries.lock().expect("shared cache lock");
        let Some((published, cache)) = entries.get(&page) else { return false };
        if !Arc::ptr_eq(published, bytes) {
            return false;
        }
        let mut cache = cache.clone();
        drop(entries);
        // Re-stamp with the importer's own version counter (versions are
        // per-VM, not per-content).
        cache.version = mem.page_version(page);
        if self.pages.len() <= page {
            self.pages.resize(page + 1, None);
        }
        self.pages[page] = Some(cache);
        self.stats.shared_imports += 1;
        true
    }
}

impl std::ops::Index<usize> for PageCache {
    type Output = Instruction;

    fn index(&self, slot: usize) -> &Instruction {
        self.slots[slot].as_ref().expect("slot decoded as part of a block")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnr_isa::{Opcode, Reg};

    fn insn(imm: i32) -> Instruction {
        Instruction::new(Opcode::MovImm, Reg::R1, Reg::R0, Reg::R0, imm)
    }

    #[test]
    fn miss_then_hit() {
        let mem = Memory::new(PAGE_SIZE * 2);
        let mut cache = BlockCache::new();
        assert_eq!(cache.get(0x8, &mem), None);
        cache.insert(0x8, insn(1), &mem);
        assert_eq!(cache.get(0x8, &mem), Some(insn(1)));
        assert_eq!(cache.get(0x10, &mem), None, "other slots stay cold");
    }

    #[test]
    fn unaligned_pcs_are_never_cached() {
        let mem = Memory::new(PAGE_SIZE);
        let mut cache = BlockCache::new();
        cache.insert(0x9, insn(1), &mem);
        assert_eq!(cache.get(0x9, &mem), None);
    }

    #[test]
    fn write_to_page_invalidates_its_decodes() {
        let mut mem = Memory::new(PAGE_SIZE * 2);
        let mut cache = BlockCache::new();
        cache.insert(0x8, insn(1), &mem);
        cache.insert(PAGE_SIZE as u64 + 8, insn(2), &mem);
        mem.write_u8(0x8, 0xff).unwrap();
        assert_eq!(cache.get(0x8, &mem), None, "written page drops");
        assert_eq!(cache.get(PAGE_SIZE as u64 + 8, &mem), Some(insn(2)), "other page survives");
        // Re-inserting against the new version works.
        cache.insert(0x8, insn(3), &mem);
        assert_eq!(cache.get(0x8, &mem), Some(insn(3)));
    }

    #[test]
    fn restore_after_write_invalidates() {
        let mut mem = Memory::new(PAGE_SIZE);
        let snap = mem.snapshot_pages();
        let mut cache = BlockCache::new();
        mem.write_u8(0x10, 7).unwrap();
        cache.insert(0x0, insn(1), &mem);
        mem.restore_pages(snap);
        assert_eq!(cache.get(0x0, &mem), None, "restore of a differing page flushes");
    }

    #[test]
    fn restore_of_identical_pages_keeps_cache_warm() {
        let mut mem = Memory::new(PAGE_SIZE);
        let snap = mem.snapshot_pages();
        let mut cache = BlockCache::new();
        cache.insert(0x0, insn(1), &mem);
        // Nothing was written between snapshot and restore: the pages are
        // the same `Arc`s, the content cannot have changed, and the decode
        // survives (the warm-restore optimization for alarm replayers).
        mem.restore_pages(snap);
        assert_eq!(cache.get(0x0, &mem), Some(insn(1)));
    }

    #[test]
    fn out_of_range_pc_is_ignored() {
        let mem = Memory::new(PAGE_SIZE);
        let mut cache = BlockCache::new();
        cache.insert(PAGE_SIZE as u64 * 10, insn(1), &mem);
        assert_eq!(cache.get(PAGE_SIZE as u64 * 10, &mem), None);
    }

    #[test]
    fn block_round_trip_and_invalidation() {
        let mut mem = Memory::new(PAGE_SIZE);
        let mut cache = BlockCache::new();
        let block = [insn(1), insn(2), insn(3)];
        let info = BlockInfo { len: 3, has_terminal: true, has_store: false };
        assert_eq!(cache.block_info(0x10, &mem), None);
        cache.insert_block(0x10, &block, info, &mem);
        assert_eq!(cache.block_info(0x10, &mem), Some(info));
        assert_eq!(cache.slot_insn(0, 2 + 1), insn(2));
        assert_eq!(cache.get(0x20, &mem), Some(insn(3)), "block slots serve single decodes too");
        // Interior slots are not block entry points.
        assert_eq!(cache.block_info(0x18, &mem), None);
        mem.write_u8(0x18, 0xff).unwrap();
        assert_eq!(cache.block_info(0x10, &mem), None, "write invalidates the block");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.builds), (1, 1));
    }

    #[test]
    fn stale_page_reset_counts_a_flush() {
        let mut mem = Memory::new(PAGE_SIZE);
        let mut cache = BlockCache::new();
        let info = BlockInfo { len: 1, has_terminal: false, has_store: false };
        cache.insert_block(0x0, &[insn(1)], info, &mem);
        mem.write_u8(0x100, 1).unwrap();
        cache.insert_block(0x0, &[insn(2)], info, &mem);
        assert_eq!(cache.stats().flushes, 1);
        assert_eq!(cache.slot_insn(0, 0), insn(2));
    }

    #[test]
    fn meta_packing_round_trips() {
        for len in [1u16, 2, 511, 512] {
            for (t, s) in [(false, false), (true, false), (false, true), (true, true)] {
                let info = BlockInfo { len, has_terminal: t, has_store: s };
                assert_eq!(BlockInfo::unpack(info.pack()), Some(info));
            }
        }
        assert_eq!(BlockInfo::unpack(0), None);
    }
}
