//! VM exits and their controls.

use rnr_isa::{Addr, Reg};
use rnr_ras::Mispredict;

/// When call/return instructions trap to the hypervisor.
///
/// The alarm replayer "traps at every call and return instruction, inducing
/// VM exits and transferring control to the hypervisor" (§4.6.2); its
/// measured slowdown "directly relates to how many *kernel* call and return
/// instructions were executed" (§8.3.2), hence the kernel-only variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum CallRetTrap {
    /// Never trap (recording and checkpointing replay).
    #[default]
    None,
    /// Trap calls/returns executed in kernel mode (kernel-ROP alarm replay).
    KernelOnly,
    /// Trap all calls/returns (full-system alarm replay).
    All,
}

/// The VMCS-style execution controls (§5.1, §7.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ExitControls {
    /// Trap `rdtsc` (recording needs the value logged; baselines run it
    /// natively off the cycle counter).
    pub rdtsc_exiting: bool,
    /// Trap when the RAS is about to evict an entry (§4.5). Recording only.
    pub evict_exiting: bool,
    /// Call/return trapping for the alarm replayer.
    pub callret_trap: CallRetTrap,
}

impl Default for ExitControls {
    /// Defaults to the *recording* configuration: rdtsc and evictions trap.
    fn default() -> ExitControls {
        ExitControls { rdtsc_exiting: true, evict_exiting: true, callret_trap: CallRetTrap::None }
    }
}

impl ExitControls {
    /// Controls for a non-recorded baseline run (`NoRec`/`NoRecPV`).
    pub fn baseline() -> ExitControls {
        ExitControls { rdtsc_exiting: false, evict_exiting: false, callret_trap: CallRetTrap::None }
    }

    /// Controls for the checkpointing replayer: synchronous data events
    /// still trap (their values come from the log), but the RAS is silent.
    pub fn checkpointing_replay() -> ExitControls {
        ExitControls { rdtsc_exiting: true, evict_exiting: false, callret_trap: CallRetTrap::None }
    }

    /// Controls for the alarm replayer: additionally trap kernel
    /// calls/returns to drive the software RAS.
    pub fn alarm_replay() -> ExitControls {
        ExitControls { rdtsc_exiting: true, evict_exiting: false, callret_trap: CallRetTrap::KernelOnly }
    }
}

/// Guest faults (treated as guest bugs / attack side effects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// Memory access outside guest physical memory.
    BadMemory {
        /// Faulting address.
        addr: Addr,
    },
    /// Fetch of an undecodable instruction.
    BadInstruction {
        /// PC of the fetch.
        pc: Addr,
    },
    /// A privileged instruction executed in user mode.
    Privilege {
        /// PC of the instruction.
        pc: Addr,
    },
}

/// Reasons control returned from the guest to the hypervisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exit {
    /// The instruction/cycle budget given to [`GuestVm::run`](crate::GuestVm::run)
    /// was exhausted (not a guest-visible event).
    BudgetExhausted,
    /// `hlt` executed: the guest idles until an interrupt.
    Halt,
    /// The guest enabled interrupts while an interrupt window was requested.
    InterruptWindow,
    /// Trapped `rdtsc`; complete with [`FinishIo::Read`].
    Rdtsc {
        /// Destination register.
        rd: Reg,
    },
    /// Trapped port read; complete with [`FinishIo::Read`].
    PioIn {
        /// Destination register.
        rd: Reg,
        /// Port number.
        port: u16,
    },
    /// Trapped port write; complete with [`FinishIo::Write`].
    PioOut {
        /// Port number.
        port: u16,
        /// Value written.
        value: u64,
    },
    /// Trapped MMIO load; complete with [`FinishIo::Read`].
    MmioRead {
        /// Destination register.
        rd: Reg,
        /// Guest physical address.
        addr: Addr,
    },
    /// Trapped MMIO store; complete with [`FinishIo::Write`].
    MmioWrite {
        /// Guest physical address.
        addr: Addr,
        /// Value written.
        value: u64,
    },
    /// Paravirtual hypercall; request in `r1..r4`, complete with
    /// [`FinishIo::Read`] targeting `r1`.
    Vmcall,
    /// A call overflowed the RAS and this entry is about to be evicted
    /// (§4.5). The instruction has retired; resume directly.
    RasEvict {
        /// The evicted return address.
        evicted: Addr,
        /// The return address the overflowing call pushed.
        ret_addr: Addr,
    },
    /// A return mispredicted — the ROP alarm trigger. The instruction has
    /// retired (execution continues at the *actual* target); resume directly.
    RasMispredict(Mispredict),
    /// An indirect branch/call violated the hardware JOP table (Table 1,
    /// row 2). The instruction has retired; resume directly.
    JopAlarm {
        /// PC of the indirect branch or call.
        branch_pc: Addr,
        /// The illegal resolved target.
        target: Addr,
    },
    /// A store tripped the Variable Record Table's noisy memory-safety
    /// rules (DESIGN.md §15). The instruction has retired (the write
    /// landed); resume directly.
    VrtAlarm {
        /// Which watch window fired.
        kind: rnr_vrt::VrtKind,
        /// First byte of the offending store.
        addr: Addr,
    },
    /// A breakpointed instruction is about to execute (context-switch
    /// interposition, §5.2.1). Resume with
    /// [`GuestVm::skip_breakpoint_once`](crate::GuestVm::skip_breakpoint_once).
    Breakpoint {
        /// PC of the trapped instruction.
        pc: Addr,
    },
    /// A trapped call retired (alarm replay); `ret_addr` was pushed.
    CallTrap {
        /// The pushed return address.
        ret_addr: Addr,
        /// PC of the call instruction.
        pc: Addr,
    },
    /// A trapped return retired (alarm replay).
    RetTrap {
        /// PC of the return instruction.
        ret_pc: Addr,
        /// The resolved actual target.
        target: Addr,
    },
    /// The guest faulted.
    Fault(FaultKind),
}

/// Completion actions for exits that interrupted an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishIo {
    /// Provide the result of a trapped read (`rdtsc`, `in`, MMIO load,
    /// `vmcall` return value).
    Read {
        /// Destination register.
        rd: Reg,
        /// The value to deliver.
        value: u64,
    },
    /// Acknowledge a trapped write (`out`, MMIO store).
    Write,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_controls_are_recording() {
        let c = ExitControls::default();
        assert!(c.rdtsc_exiting && c.evict_exiting);
        assert_eq!(c.callret_trap, CallRetTrap::None);
    }

    #[test]
    fn baseline_disables_rdtsc_trap() {
        assert!(!ExitControls::baseline().rdtsc_exiting);
    }

    #[test]
    fn alarm_replay_traps_kernel_callret() {
        assert_eq!(ExitControls::alarm_replay().callret_trap, CallRetTrap::KernelOnly);
        assert!(!ExitControls::alarm_replay().evict_exiting);
    }
}
