//! A replayer's view of the input log: complete or still streaming.

use std::sync::Arc;

use crate::{CodecError, InputLog, LogStream, Record, TransportStats};

/// Where a replayer reads its records from.
///
/// The checkpointing replayer can consume the log **live** while the
/// recorder is still producing it ([`LogSource::Streaming`], §4.6.1's
/// concurrent CR), or replay a finished recording ([`LogSource::Complete`] —
/// alarm replayers and offline audits always use this form, since they start
/// from checkpoints of an already-consumed prefix).
#[derive(Debug)]
pub enum LogSource {
    /// A finished recording, shared without copying.
    Complete(Arc<InputLog>),
    /// A live recording; reads block until the recorder catches up. Boxed:
    /// the stream carries reorder-healing and recovery state, and the
    /// common alarm-replay/audit case is `Complete`.
    Streaming(Box<LogStream>),
    /// One span of a partitioned log: the records of `[base, base +
    /// records.len())`, indexed by their *global* position. Span workers of
    /// a parallel CR read through this without copying the whole log.
    Span {
        /// The span's records, shared without copying.
        records: Arc<[Record]>,
        /// Global index of `records[0]`.
        base: usize,
    },
}

impl LogSource {
    /// The record at `index`. For a streaming source this blocks until the
    /// record arrives; `None` means the log ended before `index`.
    pub fn get(&mut self, index: usize) -> Option<&Record> {
        match self {
            LogSource::Complete(log) => log.records().get(index),
            LogSource::Streaming(stream) => stream.get(index),
            LogSource::Span { records, base } => index.checked_sub(*base).and_then(|i| records.get(i)),
        }
    }

    /// Fault-aware [`LogSource::get`]: a streaming source surfaces detected
    /// transport faults instead of swallowing them.
    ///
    /// # Errors
    ///
    /// Returns the latched [`CodecError`] of a streaming source; complete
    /// logs never fail.
    pub fn try_get(&mut self, index: usize) -> Result<Option<&Record>, CodecError> {
        match self {
            LogSource::Complete(log) => Ok(log.records().get(index)),
            LogSource::Streaming(stream) => stream.try_get(index),
            LogSource::Span { records, base } => Ok(index.checked_sub(*base).and_then(|i| records.get(i))),
        }
    }

    /// Attempts to heal a latched transport fault by re-requesting from the
    /// recorder's retained store ([`LogStream::recover`]). A no-op for
    /// complete logs.
    ///
    /// # Errors
    ///
    /// Returns the fault when recovery is impossible.
    pub fn recover(&mut self) -> Result<(), CodecError> {
        match self {
            LogSource::Complete(_) | LogSource::Span { .. } => Ok(()),
            LogSource::Streaming(stream) => stream.recover(),
        }
    }

    /// Backs a streaming source's refetch recovery with the durable segment
    /// store at `dir` ([`LogStream::attach_durable`]). A no-op for complete
    /// and span sources — they never refetch.
    pub fn attach_durable(&mut self, dir: &std::path::Path) {
        if let LogSource::Streaming(stream) = self {
            stream.attach_durable(dir);
        }
    }

    /// Transport health counters (zero for a complete source).
    pub fn transport_stats(&self) -> TransportStats {
        match self {
            LogSource::Complete(_) | LogSource::Span { .. } => TransportStats::default(),
            LogSource::Streaming(stream) => stream.transport_stats(),
        }
    }

    /// Records known so far (all of them for a complete source) — does not
    /// block.
    pub fn len_so_far(&mut self) -> usize {
        match self {
            LogSource::Complete(log) => log.len(),
            LogSource::Streaming(stream) => stream.received().len(),
            LogSource::Span { records, base } => *base + records.len(),
        }
    }
}

impl From<Arc<InputLog>> for LogSource {
    fn from(log: Arc<InputLog>) -> LogSource {
        LogSource::Complete(log)
    }
}

impl From<InputLog> for LogSource {
    fn from(log: InputLog) -> LogSource {
        LogSource::Complete(Arc::new(log))
    }
}

impl From<LogStream> for LogSource {
    fn from(stream: LogStream) -> LogSource {
        LogSource::Streaming(Box::new(stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log_channel;

    #[test]
    fn complete_source_reads_by_index() {
        let log: InputLog =
            vec![Record::Rdtsc { value: 1 }, Record::End { at_insn: 1, at_cycle: 1 }].into_iter().collect();
        let mut src = LogSource::from(Arc::new(log));
        assert_eq!(src.get(0), Some(&Record::Rdtsc { value: 1 }));
        assert!(matches!(src.get(1), Some(Record::End { .. })));
        assert_eq!(src.get(2), None);
        assert_eq!(src.len_so_far(), 2);
    }

    #[test]
    fn streaming_source_sees_published_records() {
        let (mut sink, stream) = log_channel(1);
        sink.push(Record::Rdtsc { value: 5 });
        sink.finish();
        let mut src = LogSource::from(stream);
        assert_eq!(src.get(0), Some(&Record::Rdtsc { value: 5 }));
        assert_eq!(src.get(1), None);
    }
}
