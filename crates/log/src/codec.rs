//! Compact binary codec for log records.
//!
//! The paper reports *uncompressed* log generation rates (Figure 6(a):
//! "We do not compress the data"), so sizes here are exact wire sizes of a
//! straightforward tag-plus-fields little-endian encoding.

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rnr_ras::{Mispredict, MispredictKind, ThreadId};
use rnr_vrt::VrtKind;

use crate::{AlarmInfo, DmaSource, Record, VrtAlarmInfo};

/// Errors from decoding log bytes ([`crate::InputLog::from_bytes`]) or
/// transport frames ([`crate::decode_frame`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended inside a record.
    Truncated,
    /// Unknown record tag byte.
    BadTag(u8),
    /// Unknown enum discriminant inside a record.
    BadField(&'static str, u8),
    /// A transport frame's CRC32 did not match its payload.
    FrameChecksum {
        /// Sequence number carried by the damaged frame.
        seq: u64,
    },
    /// A transport frame ended before its declared payload length.
    FrameTruncated {
        /// Sequence number carried by the damaged frame (0 when the header
        /// itself was cut short).
        seq: u64,
    },
    /// The transport delivered a frame sequence with a hole in it.
    SequenceGap {
        /// The next sequence number the consumer needed.
        expected: u64,
        /// The smallest out-of-order sequence number actually seen.
        got: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated log data"),
            CodecError::BadTag(t) => write!(f, "unknown record tag {t:#04x}"),
            CodecError::BadField(what, v) => write!(f, "invalid {what} discriminant {v:#04x}"),
            CodecError::FrameChecksum { seq } => write!(f, "frame {seq}: CRC32 mismatch"),
            CodecError::FrameTruncated { seq } => write!(f, "frame {seq}: truncated payload"),
            CodecError::SequenceGap { expected, got } => {
                write!(f, "frame sequence gap: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

pub(crate) const TAG_RDTSC: u8 = 1;
pub(crate) const TAG_PIO_IN: u8 = 2;
pub(crate) const TAG_MMIO_READ: u8 = 3;
pub(crate) const TAG_INTERRUPT: u8 = 4;
pub(crate) const TAG_DMA: u8 = 5;
pub(crate) const TAG_EVICT: u8 = 6;
pub(crate) const TAG_ALARM: u8 = 7;
pub(crate) const TAG_END: u8 = 8;
pub(crate) const TAG_JOP_ALARM: u8 = 9;
pub(crate) const TAG_VRT_ALARM: u8 = 10;

/// Exact encoded size of `record` in bytes.
pub fn encoded_len(record: &Record) -> u64 {
    match record {
        Record::Rdtsc { .. } => 1 + 8,
        Record::PioIn { .. } => 1 + 2 + 8,
        Record::MmioRead { .. } => 1 + 8 + 8,
        Record::Interrupt { .. } => 1 + 1 + 8,
        Record::Dma { data, .. } => 1 + 1 + 8 + 4 + data.len() as u64 + 8,
        Record::Evict { .. } => 1 + 8 + 8,
        // tid + ret_pc + predicted(tag+8) + actual + kind + at_insn + at_cycle
        Record::Alarm(_) => 1 + 8 + 8 + 9 + 8 + 1 + 8 + 8,
        Record::End { .. } => 1 + 8 + 8,
        Record::JopAlarm { .. } => 1 + 8 + 8 + 8 + 8 + 8,
        // tid + kind + addr + at_insn + at_cycle
        Record::VrtAlarm(_) => 1 + 8 + 1 + 8 + 8 + 8,
    }
}

/// Appends the binary form of `record` to `buf`.
pub fn encode(record: &Record, buf: &mut BytesMut) {
    match record {
        Record::Rdtsc { value } => {
            buf.put_u8(TAG_RDTSC);
            buf.put_u64_le(*value);
        }
        Record::PioIn { port, value } => {
            buf.put_u8(TAG_PIO_IN);
            buf.put_u16_le(*port);
            buf.put_u64_le(*value);
        }
        Record::MmioRead { addr, value } => {
            buf.put_u8(TAG_MMIO_READ);
            buf.put_u64_le(*addr);
            buf.put_u64_le(*value);
        }
        Record::Interrupt { irq, at_insn } => {
            buf.put_u8(TAG_INTERRUPT);
            buf.put_u8(*irq);
            buf.put_u64_le(*at_insn);
        }
        Record::Dma { source, addr, data, at_insn } => {
            buf.put_u8(TAG_DMA);
            buf.put_u8(match source {
                DmaSource::Disk => 0,
                DmaSource::Nic => 1,
            });
            buf.put_u64_le(*addr);
            buf.put_u32_le(data.len() as u32);
            buf.put_slice(data);
            buf.put_u64_le(*at_insn);
        }
        Record::Evict { tid, addr } => {
            buf.put_u8(TAG_EVICT);
            buf.put_u64_le(tid.0);
            buf.put_u64_le(*addr);
        }
        Record::Alarm(a) => {
            buf.put_u8(TAG_ALARM);
            buf.put_u64_le(a.tid.0);
            buf.put_u64_le(a.mispredict.ret_pc);
            match a.mispredict.predicted {
                Some(p) => {
                    buf.put_u8(1);
                    buf.put_u64_le(p);
                }
                None => {
                    buf.put_u8(0);
                    buf.put_u64_le(0);
                }
            }
            buf.put_u64_le(a.mispredict.actual);
            buf.put_u8(match a.mispredict.kind {
                MispredictKind::Underflow => 0,
                MispredictKind::TargetMismatch => 1,
                MispredictKind::WhitelistViolation => 2,
            });
            buf.put_u64_le(a.at_insn);
            buf.put_u64_le(a.at_cycle);
        }
        Record::End { at_insn, at_cycle } => {
            buf.put_u8(TAG_END);
            buf.put_u64_le(*at_insn);
            buf.put_u64_le(*at_cycle);
        }
        Record::JopAlarm { tid, branch_pc, target, at_insn, at_cycle } => {
            buf.put_u8(TAG_JOP_ALARM);
            buf.put_u64_le(tid.0);
            buf.put_u64_le(*branch_pc);
            buf.put_u64_le(*target);
            buf.put_u64_le(*at_insn);
            buf.put_u64_le(*at_cycle);
        }
        Record::VrtAlarm(a) => {
            buf.put_u8(TAG_VRT_ALARM);
            buf.put_u64_le(a.tid.0);
            buf.put_u8(a.kind.as_u8());
            buf.put_u64_le(a.addr);
            buf.put_u64_le(a.at_insn);
            buf.put_u64_le(a.at_cycle);
        }
    }
}

fn need(buf: &Bytes, n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

/// Decodes one record from the front of `buf`, advancing it.
///
/// # Errors
///
/// Returns a [`CodecError`] on truncated input or unknown discriminants.
pub fn decode(buf: &mut Bytes) -> Result<Record, CodecError> {
    need(buf, 1)?;
    let tag = buf.get_u8();
    Ok(match tag {
        TAG_RDTSC => {
            need(buf, 8)?;
            Record::Rdtsc { value: buf.get_u64_le() }
        }
        TAG_PIO_IN => {
            need(buf, 10)?;
            Record::PioIn { port: buf.get_u16_le(), value: buf.get_u64_le() }
        }
        TAG_MMIO_READ => {
            need(buf, 16)?;
            Record::MmioRead { addr: buf.get_u64_le(), value: buf.get_u64_le() }
        }
        TAG_INTERRUPT => {
            need(buf, 9)?;
            Record::Interrupt { irq: buf.get_u8(), at_insn: buf.get_u64_le() }
        }
        TAG_DMA => {
            need(buf, 13)?;
            let source = match buf.get_u8() {
                0 => DmaSource::Disk,
                1 => DmaSource::Nic,
                v => return Err(CodecError::BadField("dma source", v)),
            };
            let addr = buf.get_u64_le();
            let len = buf.get_u32_le() as usize;
            need(buf, len + 8)?;
            let data = buf.split_to(len).to_vec();
            Record::Dma { source, addr, data, at_insn: buf.get_u64_le() }
        }
        TAG_EVICT => {
            need(buf, 16)?;
            Record::Evict { tid: ThreadId(buf.get_u64_le()), addr: buf.get_u64_le() }
        }
        TAG_ALARM => {
            need(buf, 8 + 8 + 9 + 8 + 1 + 8 + 8)?;
            let tid = ThreadId(buf.get_u64_le());
            let ret_pc = buf.get_u64_le();
            let has_pred = buf.get_u8();
            let pred_val = buf.get_u64_le();
            let predicted = match has_pred {
                0 => None,
                1 => Some(pred_val),
                v => return Err(CodecError::BadField("prediction presence", v)),
            };
            let actual = buf.get_u64_le();
            let kind = match buf.get_u8() {
                0 => MispredictKind::Underflow,
                1 => MispredictKind::TargetMismatch,
                2 => MispredictKind::WhitelistViolation,
                v => return Err(CodecError::BadField("mispredict kind", v)),
            };
            Record::Alarm(AlarmInfo {
                tid,
                mispredict: Mispredict { ret_pc, predicted, actual, kind },
                at_insn: buf.get_u64_le(),
                at_cycle: buf.get_u64_le(),
            })
        }
        TAG_END => {
            need(buf, 16)?;
            Record::End { at_insn: buf.get_u64_le(), at_cycle: buf.get_u64_le() }
        }
        TAG_JOP_ALARM => {
            need(buf, 40)?;
            Record::JopAlarm {
                tid: ThreadId(buf.get_u64_le()),
                branch_pc: buf.get_u64_le(),
                target: buf.get_u64_le(),
                at_insn: buf.get_u64_le(),
                at_cycle: buf.get_u64_le(),
            }
        }
        TAG_VRT_ALARM => {
            need(buf, 33)?;
            let tid = ThreadId(buf.get_u64_le());
            let raw_kind = buf.get_u8();
            let kind = VrtKind::from_u8(raw_kind).ok_or(CodecError::BadField("vrt kind", raw_kind))?;
            Record::VrtAlarm(VrtAlarmInfo {
                tid,
                kind,
                addr: buf.get_u64_le(),
                at_insn: buf.get_u64_le(),
                at_cycle: buf.get_u64_le(),
            })
        }
        other => return Err(CodecError::BadTag(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(r: Record) {
        let mut buf = BytesMut::new();
        encode(&r, &mut buf);
        assert_eq!(buf.len() as u64, encoded_len(&r), "encoded_len mismatch for {r:?}");
        let mut bytes = buf.freeze();
        let back = decode(&mut bytes).unwrap();
        assert_eq!(back, r);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn all_record_kinds_round_trip() {
        round_trip(Record::Rdtsc { value: u64::MAX });
        round_trip(Record::PioIn { port: 0x1f7, value: 42 });
        round_trip(Record::MmioRead { addr: 0xfee0_0000, value: 7 });
        round_trip(Record::Interrupt { irq: 2, at_insn: 123_456 });
        round_trip(Record::Dma { source: DmaSource::Nic, addr: 0x8000, data: vec![1, 2, 3], at_insn: 99 });
        round_trip(Record::Dma { source: DmaSource::Disk, addr: 0, data: vec![], at_insn: 0 });
        round_trip(Record::Evict { tid: ThreadId(5), addr: 0xdead });
        round_trip(Record::Alarm(AlarmInfo {
            tid: ThreadId(9),
            mispredict: Mispredict {
                ret_pc: 0x100,
                predicted: Some(0x108),
                actual: 0x666,
                kind: MispredictKind::TargetMismatch,
            },
            at_insn: 1,
            at_cycle: 2,
        }));
        round_trip(Record::Alarm(AlarmInfo {
            tid: ThreadId(9),
            mispredict: Mispredict {
                ret_pc: 0x100,
                predicted: None,
                actual: 0x666,
                kind: MispredictKind::Underflow,
            },
            at_insn: 1,
            at_cycle: 2,
        }));
        round_trip(Record::End { at_insn: 10, at_cycle: 20 });
        round_trip(Record::JopAlarm {
            tid: ThreadId(4),
            branch_pc: 0x1470,
            target: 0x9999,
            at_insn: 77,
            at_cycle: 99,
        });
        round_trip(Record::VrtAlarm(VrtAlarmInfo {
            tid: ThreadId(3),
            kind: VrtKind::Heap,
            addr: 0x16_0200,
            at_insn: 55,
            at_cycle: 88,
        }));
        round_trip(Record::VrtAlarm(VrtAlarmInfo {
            tid: ThreadId(3),
            kind: VrtKind::Stack,
            addr: 0x13_f000,
            at_insn: 56,
            at_cycle: 89,
        }));
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = BytesMut::new();
        encode(&Record::Rdtsc { value: 1 }, &mut buf);
        let mut short = buf.freeze().slice(0..4);
        assert_eq!(decode(&mut short), Err(CodecError::Truncated));
    }

    #[test]
    fn bad_tag_errors() {
        let mut bytes = Bytes::from_static(&[0xff]);
        assert_eq!(decode(&mut bytes), Err(CodecError::BadTag(0xff)));
    }

    #[test]
    fn empty_input_errors() {
        let mut bytes = Bytes::new();
        assert_eq!(decode(&mut bytes), Err(CodecError::Truncated));
    }
}
