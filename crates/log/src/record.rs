//! Log record types.

use rnr_isa::Addr;
use rnr_ras::{Mispredict, ThreadId};
use rnr_vrt::VrtKind;

/// Which virtual device wrote a DMA payload into guest memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DmaSource {
    /// The virtual disk controller.
    Disk,
    /// The virtual network interface.
    Nic,
}

/// A ROP alarm as inserted into the log by the recording hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AlarmInfo {
    /// The guest thread running when the alarm fired.
    pub tid: ThreadId,
    /// The RAS misprediction that triggered it.
    pub mispredict: Mispredict,
    /// Retired-instruction count at the alarm.
    pub at_insn: u64,
    /// Virtual cycle count at the alarm (for the §8.4 detection window).
    pub at_cycle: u64,
}

/// A VRT memory-safety alarm (DESIGN.md §15) as inserted into the log by
/// the recording hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct VrtAlarmInfo {
    /// The guest thread running when the alarm fired.
    pub tid: ThreadId,
    /// Which watch window the store tripped.
    pub kind: VrtKind,
    /// First byte of the offending store.
    pub addr: Addr,
    /// Retired-instruction count at the alarm.
    pub at_insn: u64,
    /// Virtual cycle count at the alarm.
    pub at_cycle: u64,
}

/// One entry of the input log.
///
/// *Synchronous* records (`Rdtsc`, `PioIn`, `MmioRead`) are consumed when the
/// replayed guest executes the corresponding trapping instruction, in program
/// order. *Asynchronous* records carry the retired-instruction count
/// (`at_insn`) at which the recorder injected them; the replayer must recreate
/// them at exactly that point (§7.3).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Record {
    /// Result of a trapped `rdtsc`.
    Rdtsc {
        /// The value the recorder returned to the guest.
        value: u64,
    },
    /// Result of a trapped port read.
    PioIn {
        /// The port number.
        port: u16,
        /// The value returned.
        value: u64,
    },
    /// Result of a trapped MMIO load.
    MmioRead {
        /// Guest physical address of the access.
        addr: Addr,
        /// The value returned.
        value: u64,
    },
    /// An external interrupt injected at `at_insn`.
    Interrupt {
        /// Interrupt line (0 = timer, 1 = disk, 2 = NIC).
        irq: u8,
        /// Retired-instruction count at injection.
        at_insn: u64,
    },
    /// Device data copied into guest memory at a VM-exit boundary.
    Dma {
        /// Originating device.
        source: DmaSource,
        /// Guest physical destination address.
        addr: Addr,
        /// The bytes copied (network packet contents, disk sectors, ...).
        data: Vec<u8>,
        /// Retired-instruction count at the copy.
        at_insn: u64,
    },
    /// A RAS entry about to be evicted was dumped (§4.5); used by the
    /// checkpointing replayer to cancel matching underflow alarms.
    Evict {
        /// Thread whose RAS overflowed.
        tid: ThreadId,
        /// The evicted return address.
        addr: Addr,
    },
    /// A ROP alarm marker (§4.2): the replayers resolve it.
    Alarm(AlarmInfo),
    /// A JOP alarm (Table 1, row 2): an indirect branch/call missed the
    /// hardware's common-function table; the replayers re-check it against
    /// the full function list.
    JopAlarm {
        /// The guest thread running the branch.
        tid: ThreadId,
        /// PC of the indirect branch or call.
        branch_pc: Addr,
        /// The resolved target.
        target: Addr,
        /// Retired-instruction count at the alarm.
        at_insn: u64,
        /// Virtual cycle count at the alarm.
        at_cycle: u64,
    },
    /// A VRT memory-safety alarm (DESIGN.md §15): a store tripped the
    /// Variable Record Table's noisy heap/stack rules; the alarm replayer
    /// resolves it against the guest's precise allocation state.
    VrtAlarm(VrtAlarmInfo),
    /// End of the recorded execution.
    End {
        /// Total retired instructions of the recording.
        at_insn: u64,
        /// Total virtual cycles of the recording.
        at_cycle: u64,
    },
}

/// Overhead/size attribution categories, matching the legend of
/// Figures 5(b) and 7(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Category {
    /// Timer reads.
    Rdtsc,
    /// Port and memory-mapped I/O.
    PioMmio,
    /// External interrupt events.
    Interrupt,
    /// Network packet contents.
    Network,
    /// RAS traffic: evict records and alarms.
    Ras,
    /// Everything else (end markers, disk DMA payloads).
    Other,
}

impl Category {
    /// All categories, in the order the figures present them.
    pub const ALL: [Category; 6] = [
        Category::Rdtsc,
        Category::PioMmio,
        Category::Interrupt,
        Category::Network,
        Category::Ras,
        Category::Other,
    ];

    /// A short label for table output.
    pub fn label(self) -> &'static str {
        match self {
            Category::Rdtsc => "rdtsc",
            Category::PioMmio => "pio/mmio",
            Category::Interrupt => "interrupt",
            Category::Network => "network",
            Category::Ras => "ras",
            Category::Other => "other",
        }
    }
}

impl Record {
    /// The attribution category of this record.
    pub fn category(&self) -> Category {
        match self {
            Record::Rdtsc { .. } => Category::Rdtsc,
            Record::PioIn { .. } | Record::MmioRead { .. } => Category::PioMmio,
            Record::Interrupt { .. } => Category::Interrupt,
            Record::Dma { source: DmaSource::Nic, .. } => Category::Network,
            Record::Dma { source: DmaSource::Disk, .. } => Category::Other,
            Record::Evict { .. } | Record::Alarm(_) | Record::JopAlarm { .. } | Record::VrtAlarm(_) => {
                Category::Ras
            }
            Record::End { .. } => Category::Other,
        }
    }

    /// True for records that replay injects at an instruction count rather
    /// than at a trapping instruction.
    pub fn is_asynchronous(&self) -> bool {
        matches!(self, Record::Interrupt { .. } | Record::Dma { .. })
    }

    /// The injection point of asynchronous records.
    pub fn at_insn(&self) -> Option<u64> {
        match self {
            Record::Interrupt { at_insn, .. } | Record::Dma { at_insn, .. } => Some(*at_insn),
            Record::End { at_insn, .. } | Record::JopAlarm { at_insn, .. } => Some(*at_insn),
            Record::VrtAlarm(info) => Some(info.at_insn),
            _ => None,
        }
    }

    /// Exact size of this record in the binary log format, in bytes.
    pub fn encoded_len(&self) -> u64 {
        crate::codec::encoded_len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnr_ras::MispredictKind;

    #[test]
    fn categories_match_figure_legend() {
        assert_eq!(Record::Rdtsc { value: 1 }.category(), Category::Rdtsc);
        assert_eq!(Record::PioIn { port: 1, value: 2 }.category(), Category::PioMmio);
        assert_eq!(Record::MmioRead { addr: 4, value: 2 }.category(), Category::PioMmio);
        assert_eq!(Record::Interrupt { irq: 0, at_insn: 9 }.category(), Category::Interrupt);
        assert_eq!(
            Record::Dma { source: DmaSource::Nic, addr: 0, data: vec![], at_insn: 0 }.category(),
            Category::Network
        );
        assert_eq!(
            Record::Dma { source: DmaSource::Disk, addr: 0, data: vec![], at_insn: 0 }.category(),
            Category::Other
        );
        assert_eq!(Record::Evict { tid: ThreadId(1), addr: 2 }.category(), Category::Ras);
    }

    #[test]
    fn asynchrony_classification() {
        assert!(Record::Interrupt { irq: 1, at_insn: 5 }.is_asynchronous());
        assert!(!Record::Rdtsc { value: 0 }.is_asynchronous());
        assert_eq!(Record::Interrupt { irq: 1, at_insn: 5 }.at_insn(), Some(5));
        assert_eq!(Record::Rdtsc { value: 0 }.at_insn(), None);
    }

    #[test]
    fn alarm_record_is_ras_category() {
        let alarm = Record::Alarm(AlarmInfo {
            tid: ThreadId(1),
            mispredict: Mispredict { ret_pc: 1, predicted: None, actual: 2, kind: MispredictKind::Underflow },
            at_insn: 10,
            at_cycle: 20,
        });
        assert_eq!(alarm.category(), Category::Ras);
    }
}
