//! The durable segmented log store: crash-consistent persistence for the
//! framed record stream.
//!
//! The recorder's retained frame store (PR 3) lives in memory; an always-on
//! deployment must keep the evidence on disk. [`DurableWriter`] groups
//! transport frames into [`crate::Segment`]s and seals each one
//! **atomically**: the compact bytes are written to a `.tmp` sibling,
//! fsynced, renamed into place, and the directory itself is fsynced — a
//! crash at any point leaves either the previous state or the complete new
//! segment, never a half-visible one.
//!
//! [`DurableStore::open`] is the recovery scan run after a crash or against
//! a damaged directory: orphaned `.tmp` files (interrupted finalizations)
//! are removed, a torn tail segment is truncated away, CRC-failed or
//! structurally damaged segments are **quarantined** (renamed to `*.bad`,
//! preserving the evidence), and the frame index is rebuilt from whatever
//! survived — with every gap reported so a higher layer can refetch it.
//!
//! [`durable_fetch`] is the live refetch path: when the CR's
//! rewind-and-refetch ([`crate::LogStream::recover`]) needs a damaged span,
//! it reads the covering segment straight from disk, quarantining at-rest
//! damage it discovers on contact, and regenerates the transport frame
//! byte-identically (frame encoding is deterministic), falling back to the
//! in-memory retained store only when the disk copy is unusable.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::segment::{decode_segment, encode_segment, Segment};
use crate::{encode_frame, splitmix64, DiskFault, DiskFaultKind, FaultPlan, InputLog, Record, DEFAULT_BATCH};

/// File extension of a sealed segment.
pub const SEGMENT_EXT: &str = "rnrseg";

/// Default frames per segment for [`DurableLogConfig`].
pub const DEFAULT_FRAMES_PER_SEGMENT: usize = 8;

/// Configuration of the durable log store (the `durable_log` knob).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableLogConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Frames sealed into one segment file (min 1).
    pub frames_per_segment: usize,
    /// RLE-compress segment bodies (skipped per segment when it doesn't
    /// shrink; the on-disk bytes stay deterministic either way).
    pub compress: bool,
    /// Records per self-batched frame when the writer is fed record-by-
    /// record ([`DurableWriter::push`]); matches the transport batch so a
    /// recorder-side writer produces frames byte-identical to the sink's.
    pub batch_records: usize,
}

impl DurableLogConfig {
    /// A config with the default segment geometry.
    pub fn new(dir: impl Into<PathBuf>) -> DurableLogConfig {
        DurableLogConfig {
            dir: dir.into(),
            frames_per_segment: DEFAULT_FRAMES_PER_SEGMENT,
            compress: true,
            batch_records: DEFAULT_BATCH,
        }
    }
}

/// What the writer persisted (and what faults it was told to inject).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskWriteStats {
    /// Segments sealed (including ones a planned fault then damaged).
    pub segments_sealed: u64,
    /// Frames written across all sealed segments.
    pub frames_written: u64,
    /// Records written across all sealed segments.
    pub records_written: u64,
    /// Bytes of sealed segment files, pre-damage.
    pub bytes_written: u64,
    /// Planned disk faults injected at seal time.
    pub faults_injected: u64,
    /// Write/sync errors swallowed (durability degraded, recording intact).
    pub io_errors: u64,
}

/// The write side of the durable store: frames in, sealed segments out.
#[derive(Debug)]
pub struct DurableWriter {
    cfg: DurableLogConfig,
    /// Frames awaiting their segment seal.
    pending: Vec<Vec<Record>>,
    /// Sequence number of `pending[0]`.
    pending_first_seq: u64,
    /// Records awaiting their frame ([`DurableWriter::push`] mode).
    batch: Vec<Record>,
    next_segment: u64,
    faults: Vec<DiskFault>,
    seed: u64,
    stats: DiskWriteStats,
}

impl DurableWriter {
    /// Creates the store directory (if needed) and a writer whose seals will
    /// inject `plan`'s disk faults deterministically.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failure.
    pub fn create(cfg: DurableLogConfig, plan: &FaultPlan) -> io::Result<DurableWriter> {
        fs::create_dir_all(&cfg.dir)?;
        Ok(DurableWriter {
            faults: plan.disk.clone(),
            seed: plan.seed,
            cfg,
            pending: Vec::new(),
            pending_first_seq: 0,
            batch: Vec::new(),
            next_segment: 0,
            stats: DiskWriteStats::default(),
        })
    }

    /// Appends one transport frame; frames must arrive in sequence order
    /// (the sink's flush order). Seals a segment whenever
    /// [`DurableLogConfig::frames_per_segment`] frames have accumulated.
    pub fn append_frame(&mut self, seq: u64, records: &[Record]) {
        let expected = self.pending_first_seq + self.pending.len() as u64;
        debug_assert_eq!(seq, expected, "frames must be appended in sequence order");
        if seq != expected {
            self.stats.io_errors += 1;
            return;
        }
        self.pending.push(records.to_vec());
        if self.pending.len() >= self.cfg.frames_per_segment.max(1) {
            self.seal();
        }
    }

    /// Appends one record, self-batching into frames of
    /// [`DurableLogConfig::batch_records`] — the recorder-side feed used
    /// when no streaming sink exists. The resulting frames are
    /// byte-identical to what a sink with the same batch size would retain.
    pub fn push(&mut self, record: &Record) {
        self.batch.push(record.clone());
        if self.batch.len() >= self.cfg.batch_records.max(1) {
            self.flush_batch();
        }
    }

    fn flush_batch(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let seq = self.pending_first_seq + self.pending.len() as u64;
        let records = std::mem::take(&mut self.batch);
        self.append_frame(seq, &records);
    }

    /// Flushes any partial batch, seals the remainder, and reports what was
    /// persisted. (Dropping the writer does the same, swallowing errors.)
    pub fn finish(mut self) -> DiskWriteStats {
        self.flush_batch();
        self.seal();
        self.stats
    }

    /// Write stats accumulated so far.
    pub fn stats(&self) -> DiskWriteStats {
        self.stats
    }

    /// Seals the pending frames into one segment file, atomically:
    /// write-temp + fsync + rename + directory fsync. IO errors degrade to
    /// memory-only durability (counted, never fatal — the in-memory log
    /// remains authoritative).
    fn seal(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let segment =
            Segment { first_seq: self.pending_first_seq, frames: std::mem::take(&mut self.pending) };
        let index = self.next_segment;
        self.next_segment += 1;
        self.pending_first_seq = segment.first_seq + segment.frames.len() as u64;
        let fault = self.faults.iter().find(|f| f.segment == index).copied();

        self.stats.segments_sealed += 1;
        self.stats.frames_written += segment.frames.len() as u64;
        self.stats.records_written += segment.record_count() as u64;

        if matches!(fault.map(|f| f.kind), Some(DiskFaultKind::FailedFsync)) {
            // The segment never becomes durable: model the loss by not
            // finalizing at all (the writer believed fsync succeeded).
            self.stats.faults_injected += 1;
            return;
        }

        let bytes = encode_segment(&segment, self.cfg.compress);
        let path = self.cfg.dir.join(segment_file_name(index));
        let tmp = self.cfg.dir.join(format!("{}.tmp", segment_file_name(index)));
        let sealed = (|| -> io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, &path)?;
            if let Ok(dir) = File::open(&self.cfg.dir) {
                let _ = dir.sync_all();
            }
            Ok(())
        })();
        match sealed {
            Ok(()) => self.stats.bytes_written += bytes.len() as u64,
            Err(_) => {
                self.stats.io_errors += 1;
                let _ = fs::remove_file(&tmp);
                return;
            }
        }
        if let Some(fault) = fault {
            if apply_disk_fault(&path, fault.kind, self.seed ^ index).is_ok() {
                self.stats.faults_injected += 1;
            }
        }
    }
}

impl Drop for DurableWriter {
    fn drop(&mut self) {
        self.flush_batch();
        self.seal();
    }
}

/// The canonical file name of segment `index`.
pub fn segment_file_name(index: u64) -> String {
    format!("seg-{index:08}.{SEGMENT_EXT}")
}

/// Damages the segment file at `path` per `kind`, deterministically from
/// `mix` (seed ^ segment index). Shared by the writer's seal-time injection
/// and post-hoc damage in tests/benches, so both inflict identical bytes.
///
/// # Errors
///
/// Propagates filesystem errors from the damage itself.
pub fn apply_disk_fault(path: &Path, kind: DiskFaultKind, mix: u64) -> io::Result<()> {
    match kind {
        DiskFaultKind::TornWrite => {
            let len = fs::metadata(path)?.len();
            let keep = 1 + splitmix64(mix ^ 0x70c4) % len.max(2).wrapping_sub(1);
            let f = fs::OpenOptions::new().write(true).open(path)?;
            f.set_len(keep)?;
            f.sync_all()
        }
        DiskFaultKind::BitRot => {
            let mut bytes = fs::read(path)?;
            if !bytes.is_empty() {
                let r = splitmix64(mix ^ 0xb17);
                let byte = (r % bytes.len() as u64) as usize;
                bytes[byte] ^= 1 << ((r >> 32) % 8);
            }
            fs::write(path, bytes)
        }
        DiskFaultKind::ShortRead => {
            let len = fs::metadata(path)?.len();
            let cut = (1 + splitmix64(mix ^ 0x5407) % 8).min(len.saturating_sub(1));
            let f = fs::OpenOptions::new().write(true).open(path)?;
            f.set_len(len - cut)?;
            f.sync_all()
        }
        // Both erase the segment: one at rest, one before it ever landed.
        DiskFaultKind::MissingSegment | DiskFaultKind::FailedFsync => fs::remove_file(path),
    }
}

/// What [`DurableStore::open`]'s recovery scan found and repaired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryScan {
    /// Segments that decoded cleanly.
    pub segments_ok: u64,
    /// Frames indexed from surviving segments.
    pub frames_indexed: u64,
    /// Records indexed from surviving segments.
    pub records_indexed: u64,
    /// Orphaned `.tmp` files removed (interrupted finalizations).
    pub tmp_removed: u64,
    /// Torn tail segments truncated away (partial final write).
    pub torn_tails_truncated: u64,
    /// Damaged segments renamed to `*.bad`: `(file name, reason)`.
    pub quarantined: Vec<(String, String)>,
    /// Frame-sequence gaps `[start, end)` a higher layer must refetch.
    pub missing_spans: Vec<(u64, u64)>,
}

impl RecoveryScan {
    /// True when the scan found a pristine store.
    pub fn clean(&self) -> bool {
        self.tmp_removed == 0
            && self.torn_tails_truncated == 0
            && self.quarantined.is_empty()
            && self.missing_spans.is_empty()
    }
}

/// The read side of the durable store: the frame index rebuilt by the
/// recovery scan.
#[derive(Debug)]
pub struct DurableStore {
    frames: BTreeMap<u64, Vec<Record>>,
    scan: RecoveryScan,
}

impl DurableStore {
    /// Opens `dir`, running the crash-recovery scan: removes `.tmp` strays,
    /// truncates a torn tail segment, quarantines damaged segments as
    /// `*.bad`, and rebuilds the frame index from the survivors.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures; damage inside segment files is
    /// never an error — it is healed or quarantined and reported in the
    /// [`RecoveryScan`].
    pub fn open(dir: &Path) -> io::Result<DurableStore> {
        let mut scan = RecoveryScan::default();
        let mut segment_files = Vec::new();
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(n) => n.to_string(),
                None => continue,
            };
            if name.ends_with(".tmp") {
                // An interrupted finalization: the rename never happened, so
                // no reader ever saw this data. Discard it.
                let _ = fs::remove_file(&path);
                scan.tmp_removed += 1;
            } else if name.ends_with(&format!(".{SEGMENT_EXT}")) {
                segment_files.push((name, path));
            }
        }
        segment_files.sort();

        let mut frames = BTreeMap::new();
        let last = segment_files.len().saturating_sub(1);
        for (i, (name, path)) in segment_files.iter().enumerate() {
            let decoded = fs::read(path)
                .map_err(|e| e.to_string())
                .and_then(|bytes| decode_segment(&bytes).map_err(|e| e.to_string()));
            match decoded {
                Ok(segment) => {
                    scan.segments_ok += 1;
                    for (k, frame) in segment.frames.into_iter().enumerate() {
                        let seq = segment.first_seq + k as u64;
                        scan.frames_indexed += 1;
                        scan.records_indexed += frame.len() as u64;
                        frames.entry(seq).or_insert(frame);
                    }
                }
                Err(reason) if i == last => {
                    // A damaged *tail* is the signature of a torn final
                    // write: truncate it away — nothing after it exists.
                    let _ = fs::remove_file(path);
                    scan.torn_tails_truncated += 1;
                    let _ = reason;
                }
                Err(reason) => {
                    // Mid-store damage (bit rot, short read): quarantine the
                    // evidence instead of deleting it.
                    let _ = fs::rename(path, quarantine_path(path));
                    scan.quarantined.push((name.clone(), reason));
                }
            }
        }

        // Rebuild the gap map: everything between 0 and the highest
        // surviving frame that is not indexed must be refetched.
        let mut gap_start = None;
        let max = frames.keys().next_back().copied().map_or(0, |m| m + 1);
        for seq in 0..max {
            match (frames.contains_key(&seq), gap_start) {
                (false, None) => gap_start = Some(seq),
                (true, Some(start)) => {
                    scan.missing_spans.push((start, seq));
                    gap_start = None;
                }
                _ => {}
            }
        }
        Ok(DurableStore { frames, scan })
    }

    /// What the recovery scan found and repaired.
    pub fn scan(&self) -> &RecoveryScan {
        &self.scan
    }

    /// The records of frame `seq`, if it survived.
    pub fn frame(&self, seq: u64) -> Option<&[Record]> {
        self.frames.get(&seq).map(Vec::as_slice)
    }

    /// Frame `seq` re-encoded as a transport frame — byte-identical to what
    /// the sink originally sent (frame encoding is deterministic), so the
    /// refetch path can treat disk and the in-memory retained store
    /// interchangeably.
    pub fn frame_bytes(&self, seq: u64) -> Option<Bytes> {
        self.frames.get(&seq).map(|records| encode_frame(seq, records))
    }

    /// Number of frames indexed.
    pub fn frame_count(&self) -> u64 {
        self.frames.len() as u64
    }

    /// One past the highest surviving frame sequence (0 when empty).
    pub fn next_seq(&self) -> u64 {
        self.frames.keys().next_back().map_or(0, |m| m + 1)
    }

    /// Rebuilds the complete input log for frames `0..total_frames`, filling
    /// every hole from `fallback` (the recorder's retained memory copy, a
    /// replica, …). `None` when a hole cannot be filled.
    pub fn restore_with<F>(&self, total_frames: u64, mut fallback: F) -> Option<InputLog>
    where
        F: FnMut(u64) -> Option<Vec<Record>>,
    {
        let mut log = InputLog::new();
        for seq in 0..total_frames {
            let records = match self.frames.get(&seq) {
                Some(r) => r.clone(),
                None => fallback(seq)?,
            };
            for record in records {
                log.push(record);
            }
        }
        Some(log)
    }
}

fn quarantine_path(path: &Path) -> PathBuf {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("segment");
    path.with_file_name(format!("{name}.bad"))
}

/// The live refetch path: reads the segment covering `seq` straight from
/// `dir` and returns its records, or `None` when no usable on-disk copy
/// exists (not yet sealed, missing, or damaged). Damaged segments found on
/// contact are quarantined immediately — the store self-heals as it is read.
pub fn durable_fetch(dir: &Path, seq: u64) -> Option<Vec<Record>> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.ends_with(&format!(".{SEGMENT_EXT}")))
        })
        .collect();
    files.sort();
    for path in files {
        let Ok(bytes) = fs::read(&path) else { continue };
        match decode_segment(&bytes) {
            Ok(segment) => {
                if segment.covers(seq) {
                    let idx = (seq - segment.first_seq) as usize;
                    return Some(segment.frames.into_iter().nth(idx).expect("covers() checked index"));
                }
            }
            Err(_) => {
                let _ = fs::rename(&path, quarantine_path(&path));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_frame, DiskFault};

    /// Unique per-test scratch dir, removed on drop (success or panic) so
    /// `cargo test` leaves no strays behind.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!("rnr-store-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn cfg(dir: &Path, frames_per_segment: usize) -> DurableLogConfig {
        DurableLogConfig { frames_per_segment, compress: true, batch_records: 4, dir: dir.to_path_buf() }
    }

    fn records(n: u64, base: u64) -> Vec<Record> {
        (0..n).map(|i| Record::Rdtsc { value: base + i * 16 }).collect()
    }

    #[test]
    fn write_seal_reopen_roundtrip() {
        let tmp = TempDir::new("roundtrip");
        let mut w = DurableWriter::create(cfg(&tmp.0, 2), &FaultPlan::default()).unwrap();
        for seq in 0..5u64 {
            w.append_frame(seq, &records(3, seq * 100));
        }
        let stats = w.finish();
        assert_eq!(stats.segments_sealed, 3, "2+2+1 frames over 3 segments");
        assert_eq!(stats.frames_written, 5);
        assert_eq!(stats.io_errors, 0);

        let store = DurableStore::open(&tmp.0).unwrap();
        assert!(store.scan().clean(), "{:?}", store.scan());
        assert_eq!(store.frame_count(), 5);
        for seq in 0..5u64 {
            assert_eq!(store.frame(seq).unwrap(), &records(3, seq * 100)[..]);
            // The regenerated transport frame decodes back identically.
            let bytes = store.frame_bytes(seq).unwrap();
            assert_eq!(decode_frame(&bytes).unwrap(), (seq, records(3, seq * 100)));
        }
        assert_eq!(store.scan().missing_spans, Vec::new());
    }

    #[test]
    fn push_mode_matches_frame_mode() {
        let tmp = TempDir::new("push-mode");
        let a = tmp.0.join("a");
        let b = tmp.0.join("b");
        let all: Vec<Record> = (0..10).map(|i| Record::Rdtsc { value: i }).collect();

        let mut wa = DurableWriter::create(cfg(&a, 2), &FaultPlan::default()).unwrap();
        for r in &all {
            wa.push(r);
        }
        wa.finish();

        let mut wb = DurableWriter::create(cfg(&b, 2), &FaultPlan::default()).unwrap();
        for (seq, chunk) in all.chunks(4).enumerate() {
            wb.append_frame(seq as u64, chunk);
        }
        wb.finish();

        // 10 records → frames of 4+4+2 → segments of 2 frames + 1 frame.
        for seg in 0..2u64 {
            let fa = fs::read(a.join(segment_file_name(seg))).unwrap();
            let fb = fs::read(b.join(segment_file_name(seg))).unwrap();
            assert_eq!(fa, fb, "segment {seg} differs between push and frame feeds");
        }
    }

    #[test]
    fn recovery_scan_heals_each_damage_kind() {
        for kind in [
            DiskFaultKind::TornWrite,
            DiskFaultKind::BitRot,
            DiskFaultKind::MissingSegment,
            DiskFaultKind::ShortRead,
            DiskFaultKind::FailedFsync,
        ] {
            let tmp = TempDir::new(&format!("heal-{kind:?}"));
            let plan = FaultPlan {
                seed: 0xD15C,
                disk: vec![DiskFault { segment: 1, kind }],
                ..FaultPlan::default()
            };
            let mut w = DurableWriter::create(cfg(&tmp.0, 1), &plan).unwrap();
            for seq in 0..4u64 {
                w.append_frame(seq, &records(2, seq));
            }
            let stats = w.finish();
            assert_eq!(stats.faults_injected, 1, "{kind:?}");

            let store = DurableStore::open(&tmp.0).unwrap();
            assert!(!store.scan().clean(), "{kind:?} went unnoticed");
            assert_eq!(store.scan().missing_spans, vec![(1, 2)], "{kind:?}");
            for seq in [0u64, 2, 3] {
                assert_eq!(store.frame(seq).unwrap(), &records(2, seq)[..], "{kind:?}");
            }
            assert!(store.frame(1).is_none());
            // The fallback fills the hole and the log is whole again.
            let log = store.restore_with(4, |seq| Some(records(2, seq))).unwrap();
            let want: Vec<Record> = (0..4u64).flat_map(|s| records(2, s)).collect();
            assert_eq!(log.records(), &want[..]);
        }
    }

    #[test]
    fn torn_tail_is_truncated_not_quarantined() {
        let tmp = TempDir::new("torn-tail");
        let mut w = DurableWriter::create(cfg(&tmp.0, 1), &FaultPlan::default()).unwrap();
        for seq in 0..3u64 {
            w.append_frame(seq, &records(2, seq));
        }
        w.finish();
        apply_disk_fault(&tmp.0.join(segment_file_name(2)), DiskFaultKind::TornWrite, 7).unwrap();

        let store = DurableStore::open(&tmp.0).unwrap();
        assert_eq!(store.scan().torn_tails_truncated, 1);
        assert!(store.scan().quarantined.is_empty());
        assert_eq!(store.next_seq(), 2, "the torn tail is gone, not a gap");
        assert!(!tmp.0.join(segment_file_name(2)).exists());
    }

    #[test]
    fn orphaned_tmp_files_are_removed() {
        let tmp = TempDir::new("tmp-orphan");
        let mut w = DurableWriter::create(cfg(&tmp.0, 1), &FaultPlan::default()).unwrap();
        w.append_frame(0, &records(2, 0));
        w.finish();
        fs::write(tmp.0.join(format!("{}.tmp", segment_file_name(1))), b"half-written").unwrap();

        let store = DurableStore::open(&tmp.0).unwrap();
        assert_eq!(store.scan().tmp_removed, 1);
        assert_eq!(store.frame_count(), 1);
        assert!(fs::read_dir(&tmp.0)
            .unwrap()
            .all(|e| { !e.unwrap().file_name().to_string_lossy().ends_with(".tmp") }));
    }

    #[test]
    fn durable_fetch_serves_and_quarantines() {
        let tmp = TempDir::new("fetch");
        let mut w = DurableWriter::create(cfg(&tmp.0, 1), &FaultPlan::default()).unwrap();
        for seq in 0..3u64 {
            w.append_frame(seq, &records(2, seq * 10));
        }
        w.finish();
        assert_eq!(durable_fetch(&tmp.0, 1).unwrap(), records(2, 10));
        assert_eq!(durable_fetch(&tmp.0, 9), None);

        apply_disk_fault(&tmp.0.join(segment_file_name(1)), DiskFaultKind::BitRot, 3).unwrap();
        assert_eq!(durable_fetch(&tmp.0, 1), None, "rotten copy must not be served");
        assert!(
            tmp.0.join(format!("{}.bad", segment_file_name(1))).exists(),
            "damage found on contact is quarantined"
        );
        // The other segments still serve.
        assert_eq!(durable_fetch(&tmp.0, 2).unwrap(), records(2, 20));
    }
}
