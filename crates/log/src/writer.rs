//! The append-only input log and its writer.

use std::collections::HashMap;

use bytes::{Bytes, BytesMut};

use crate::{codec, Category, CodecError, LogCursor, Record};

/// A complete (or growing) input log.
///
/// Byte sizes are tracked exactly per [`Category`] as records are appended,
/// which is what the Figure 6(a) "input log generation rate" and the
/// Figure 5(b) per-class attribution report.
#[derive(Debug, Clone, Default)]
pub struct InputLog {
    records: Vec<Record>,
    total_bytes: u64,
    bytes_by_category: HashMap<Category, u64>,
}

impl InputLog {
    /// An empty log.
    pub fn new() -> InputLog {
        InputLog::default()
    }

    /// Appends a record, accounting its encoded size.
    pub fn push(&mut self, record: Record) {
        let len = record.encoded_len();
        self.total_bytes += len;
        *self.bytes_by_category.entry(record.category()).or_insert(0) += len;
        self.records.push(record);
    }

    /// All records in append order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Exact total size of the binary encoding, in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Bytes attributable to one category.
    pub fn bytes_for(&self, category: Category) -> u64 {
        self.bytes_by_category.get(&category).copied().unwrap_or(0)
    }

    /// A cursor positioned at the first record.
    pub fn cursor(&self) -> LogCursor {
        LogCursor::new(0)
    }

    /// Serializes the whole log to its binary form.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.total_bytes as usize);
        for r in &self.records {
            codec::encode(r, &mut buf);
        }
        buf.freeze()
    }

    /// Parses a log from its binary form.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on malformed input.
    pub fn from_bytes(mut bytes: Bytes) -> Result<InputLog, CodecError> {
        let mut log = InputLog::new();
        while !bytes.is_empty() {
            log.push(codec::decode(&mut bytes)?);
        }
        Ok(log)
    }

    /// The alarms contained in the log, with their record indices.
    pub fn alarms(&self) -> impl Iterator<Item = (usize, &crate::AlarmInfo)> {
        self.records.iter().enumerate().filter_map(|(i, r)| match r {
            Record::Alarm(a) => Some((i, a)),
            _ => None,
        })
    }

    /// The `End` marker, if the recording finished cleanly.
    pub fn end(&self) -> Option<(u64, u64)> {
        self.records.iter().rev().find_map(|r| match r {
            Record::End { at_insn, at_cycle } => Some((*at_insn, *at_cycle)),
            _ => None,
        })
    }
}

impl FromIterator<Record> for InputLog {
    fn from_iter<I: IntoIterator<Item = Record>>(iter: I) -> InputLog {
        let mut log = InputLog::new();
        for r in iter {
            log.push(r);
        }
        log
    }
}

impl Extend<Record> for InputLog {
    fn extend<I: IntoIterator<Item = Record>>(&mut self, iter: I) {
        for r in iter {
            self.push(r);
        }
    }
}

/// Write-side handle used by the recording hypervisor.
///
/// Currently a thin wrapper over [`InputLog`]; it exists so the recorder's
/// dependency is explicit and so write-side policies (flush thresholds,
/// back-pressure as discussed in §8.3.1) have a home.
#[derive(Debug, Default)]
pub struct LogWriter {
    log: InputLog,
}

impl LogWriter {
    /// A writer with an empty log.
    pub fn new() -> LogWriter {
        LogWriter::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: Record) {
        self.log.push(record);
    }

    /// Read access to the log written so far.
    pub fn log(&self) -> &InputLog {
        &self.log
    }

    /// Finishes writing and returns the log.
    pub fn into_log(self) -> InputLog {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DmaSource;

    #[test]
    fn push_accounts_bytes_by_category() {
        let mut log = InputLog::new();
        log.push(Record::Rdtsc { value: 1 });
        log.push(Record::Rdtsc { value: 2 });
        log.push(Record::PioIn { port: 1, value: 3 });
        assert_eq!(log.bytes_for(Category::Rdtsc), 18);
        assert_eq!(log.bytes_for(Category::PioMmio), 11);
        assert_eq!(log.total_bytes(), 29);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn serialization_round_trip_preserves_accounting() {
        let mut log = InputLog::new();
        log.push(Record::Dma { source: DmaSource::Nic, addr: 16, data: vec![9; 100], at_insn: 5 });
        log.push(Record::Interrupt { irq: 2, at_insn: 6 });
        log.push(Record::End { at_insn: 7, at_cycle: 8 });
        let bytes = log.to_bytes();
        assert_eq!(bytes.len() as u64, log.total_bytes());
        let back = InputLog::from_bytes(bytes).unwrap();
        assert_eq!(back.records(), log.records());
        assert_eq!(back.total_bytes(), log.total_bytes());
        assert_eq!(back.bytes_for(Category::Network), log.bytes_for(Category::Network));
    }

    #[test]
    fn alarms_iterator_finds_markers() {
        use rnr_ras::{Mispredict, MispredictKind, ThreadId};
        let mut log = InputLog::new();
        log.push(Record::Rdtsc { value: 0 });
        log.push(Record::Alarm(crate::AlarmInfo {
            tid: ThreadId(1),
            mispredict: Mispredict { ret_pc: 1, predicted: None, actual: 2, kind: MispredictKind::Underflow },
            at_insn: 3,
            at_cycle: 4,
        }));
        let alarms: Vec<_> = log.alarms().collect();
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].0, 1);
    }

    #[test]
    fn end_marker_lookup() {
        let mut log = InputLog::new();
        assert_eq!(log.end(), None);
        log.push(Record::End { at_insn: 10, at_cycle: 30 });
        assert_eq!(log.end(), Some((10, 30)));
    }

    #[test]
    fn from_iterator_collects() {
        let log: InputLog =
            vec![Record::Rdtsc { value: 1 }, Record::Rdtsc { value: 2 }].into_iter().collect();
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn writer_into_log() {
        let mut w = LogWriter::new();
        w.push(Record::Rdtsc { value: 7 });
        assert_eq!(w.log().len(), 1);
        let log = w.into_log();
        assert_eq!(log.records()[0], Record::Rdtsc { value: 7 });
    }
}
