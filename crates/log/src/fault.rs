//! Deterministic, seeded fault injection for the streaming transport and
//! the replay pipeline.
//!
//! Making record/replay deployable is mostly a robustness problem (the rr
//! line of work): the system must detect divergence early, survive partial
//! or corrupt inputs, and degrade gracefully. A [`FaultPlan`] describes a
//! reproducible set of faults — which transport frame to damage and how,
//! where to inject a transient replay divergence, which alarm case should
//! panic — so every failure scenario is replayable from `(seed, plan)` and
//! can gate CI.
//!
//! The transport half of a plan is executed by a [`FaultInjector`] sitting
//! on the *sink* side of [`crate::log_channel_with`]: the pristine frame is
//! retained for re-request before the injector damages the copy in flight
//! (unless the plan poisons the retained store too, which models an
//! unrecoverable loss).

use bytes::Bytes;

/// What to do to one transport frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFaultKind {
    /// Flip one bit of the frame (position derived from the plan seed).
    CorruptBit,
    /// Do not deliver the frame at all.
    DropFrame,
    /// Deliver the frame twice.
    DuplicateFrame,
    /// Hold the frame back and deliver it after its successor.
    DelayFrame,
    /// Deliver only a prefix of the frame.
    TruncateFrame,
}

/// One planned transport fault, keyed by frame sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportFault {
    /// The frame (by sequence number) this fault applies to.
    pub seq: u64,
    /// The damage to inflict.
    pub kind: TransportFaultKind,
    /// Damage the retained copy too, so a re-request cannot heal it.
    /// Models losing both the wire copy and the recorder's retained log —
    /// the unrecoverable case.
    pub poison_retained: bool,
}

/// Damage to one sealed segment of the durable log store.
///
/// Applied deterministically by the [`crate::DurableWriter`] at seal time
/// (modeling latent storage corruption discovered later, at refetch or
/// recovery-scan time) or post-hoc via [`crate::apply_disk_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// A crash mid-write left only a prefix of the segment on disk.
    TornWrite,
    /// One bit flipped at rest (position derived from the plan seed).
    BitRot,
    /// The segment file was lost entirely.
    MissingSegment,
    /// The file was cut a few bytes short of its declared length prefix.
    ShortRead,
    /// The host lied about durability: fsync "succeeded" but the segment
    /// never reached stable storage and vanishes with the page cache.
    FailedFsync,
}

/// One planned disk fault, keyed by segment index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFault {
    /// The segment (by seal order, 0-based) this fault applies to.
    pub segment: u64,
    /// The damage to inflict.
    pub kind: DiskFaultKind,
}

/// A reproducible fault scenario: everything is derived from `seed` and the
/// explicit injection points, never from wall-clock or host randomness.
///
/// An empty (default) plan injects nothing; the pipeline must then behave
/// byte-identically to a build without any fault machinery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for derived choices (e.g. which bit a `CorruptBit` flips).
    pub seed: u64,
    /// Transport-frame faults applied by the sink-side injector.
    pub transport: Vec<TransportFault>,
    /// Durable-store faults applied by the segment writer at seal time.
    pub disk: Vec<DiskFault>,
    /// Inject a transient divergence into the checkpointing replayer once
    /// it has retired this many instructions.
    pub cr_divergence_at_insn: Option<u64>,
    /// Inject a block-engine divergence at this instruction count; recovery
    /// must quarantine block execution for the failed span.
    pub block_divergence_at_insn: Option<u64>,
    /// Panic while resolving this alarm case (first attempt only).
    pub ar_panic_case: Option<usize>,
    /// Fail this alarm case with a transient divergence (first attempt
    /// only).
    pub ar_divergence_case: Option<usize>,
    /// Kill the AR pool worker that picks up this case, before it resolves
    /// anything.
    pub kill_ar_worker_at_case: Option<usize>,
}

impl FaultPlan {
    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.transport.is_empty()
            && self.disk.is_empty()
            && self.cr_divergence_at_insn.is_none()
            && self.block_divergence_at_insn.is_none()
            && self.ar_panic_case.is_none()
            && self.ar_divergence_case.is_none()
            && self.kill_ar_worker_at_case.is_none()
    }

    /// True when any transport fault is planned (the channel then needs an
    /// injector).
    pub fn wants_transport_injection(&self) -> bool {
        !self.transport.is_empty()
    }
}

/// splitmix64: tiny, high-quality mixer for deriving injection positions
/// from `(seed, seq)` deterministically.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sink-side executor of a plan's transport faults.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    faults: Vec<TransportFault>,
}

/// What the sink should do with one frame after injection.
#[derive(Debug)]
pub struct InjectedFrame {
    /// The bytes to retain for re-request (pristine unless poisoned).
    pub retained: Bytes,
    /// The copies to put on the wire now (empty = dropped or delayed).
    pub outgoing: Vec<Bytes>,
    /// True when the frame must be held and sent after its successor.
    pub delay: bool,
}

impl FaultInjector {
    /// Builds the injector for `plan`'s transport faults.
    pub fn from_plan(plan: &FaultPlan) -> FaultInjector {
        FaultInjector { seed: plan.seed, faults: plan.transport.clone() }
    }

    /// Applies any planned fault for frame `seq` to `frame`.
    pub fn apply(&self, seq: u64, frame: Bytes) -> InjectedFrame {
        let Some(fault) = self.faults.iter().find(|f| f.seq == seq) else {
            return InjectedFrame { retained: frame.clone(), outgoing: vec![frame], delay: false };
        };
        match fault.kind {
            TransportFaultKind::CorruptBit => {
                let bad = flip_one_bit(&frame, self.seed ^ seq);
                let retained = if fault.poison_retained { bad.clone() } else { frame };
                InjectedFrame { retained, outgoing: vec![bad], delay: false }
            }
            TransportFaultKind::DropFrame => {
                InjectedFrame { retained: frame, outgoing: vec![], delay: false }
            }
            TransportFaultKind::DuplicateFrame => {
                InjectedFrame { retained: frame.clone(), outgoing: vec![frame.clone(), frame], delay: false }
            }
            TransportFaultKind::DelayFrame => {
                InjectedFrame { retained: frame.clone(), outgoing: vec![frame], delay: true }
            }
            TransportFaultKind::TruncateFrame => {
                let cut = frame.len().saturating_sub(1).max(1);
                let bad = frame.slice(0..cut.min(frame.len()));
                let retained = if fault.poison_retained { bad.clone() } else { frame };
                InjectedFrame { retained, outgoing: vec![bad], delay: false }
            }
        }
    }
}

/// Flips one bit of `frame`, position chosen deterministically from `mix`.
fn flip_one_bit(frame: &Bytes, mix: u64) -> Bytes {
    let mut bytes = frame.to_vec();
    if bytes.is_empty() {
        return frame.clone();
    }
    let r = splitmix64(mix);
    let byte = (r % bytes.len() as u64) as usize;
    let bit = ((r >> 32) % 8) as u8;
    bytes[byte] ^= 1 << bit;
    Bytes::from(bytes)
}

/// The seeded fault matrix: one recoverable scenario per fault class, plus
/// the unrecoverable poisoned-retained-store case. Shared by the CI gate
/// binary and the integration tests so both exercise the same plans.
pub fn fault_scenarios(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    let transport = |kind, seq| FaultPlan {
        seed,
        transport: vec![TransportFault { seq, kind, poison_retained: false }],
        ..FaultPlan::default()
    };
    vec![
        ("corrupt-batch", transport(TransportFaultKind::CorruptBit, 2)),
        ("dropped-batch", transport(TransportFaultKind::DropFrame, 3)),
        ("duplicated-batch", transport(TransportFaultKind::DuplicateFrame, 1)),
        ("truncated-tail", transport(TransportFaultKind::TruncateFrame, 4)),
        ("delayed-batch", transport(TransportFaultKind::DelayFrame, 2)),
        ("ar-worker-panic", FaultPlan { seed, ar_panic_case: Some(0), ..FaultPlan::default() }),
        ("ar-transient-divergence", FaultPlan { seed, ar_divergence_case: Some(0), ..FaultPlan::default() }),
        (
            "cr-mid-stream-rewind",
            FaultPlan { seed, cr_divergence_at_insn: Some(240_000), ..FaultPlan::default() },
        ),
        (
            "block-engine-divergence",
            FaultPlan { seed, block_divergence_at_insn: Some(180_000), ..FaultPlan::default() },
        ),
        ("ar-worker-killed", FaultPlan { seed, kill_ar_worker_at_case: Some(0), ..FaultPlan::default() }),
    ]
}

/// The seeded disk-fault matrix: a dropped transport frame forces the CR to
/// refetch sequence 2, while the durable store's copy of that span is (in
/// all but the first scenario) damaged in a different way each time — so the
/// refetch path must detect the at-rest damage, quarantine the segment, and
/// fall back to the recorder's in-memory retained copy, still producing a
/// byte-identical report. Run with `frames_per_segment = 1` so segment
/// indices equal frame sequence numbers and every frame is sealed (and
/// damaged) before its successors are transmitted.
pub fn disk_fault_scenarios(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    let refetch =
        vec![TransportFault { seq: 2, kind: TransportFaultKind::DropFrame, poison_retained: false }];
    let damaged = |kind| FaultPlan {
        seed,
        transport: refetch.clone(),
        disk: vec![DiskFault { segment: 2, kind }],
        ..FaultPlan::default()
    };
    vec![
        // No disk damage: the refetch is served from the durable store.
        ("disk-serves-refetch", FaultPlan { seed, transport: refetch.clone(), ..FaultPlan::default() }),
        ("disk-torn-write", damaged(DiskFaultKind::TornWrite)),
        ("disk-bit-rot", damaged(DiskFaultKind::BitRot)),
        ("disk-missing-segment", damaged(DiskFaultKind::MissingSegment)),
        ("disk-short-read", damaged(DiskFaultKind::ShortRead)),
        ("disk-failed-fsync", damaged(DiskFaultKind::FailedFsync)),
    ]
}

/// The unrecoverable scenario: the frame is corrupted on the wire *and* in
/// the retained store, so re-requests can never heal it.
pub fn unrecoverable_scenario(seed: u64) -> (&'static str, FaultPlan) {
    (
        "poisoned-retained-store",
        FaultPlan {
            seed,
            transport: vec![TransportFault {
                seq: 2,
                kind: TransportFaultKind::CorruptBit,
                poison_retained: true,
            }],
            ..FaultPlan::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode_frame, Record};

    fn frame() -> Bytes {
        encode_frame(5, &[Record::Rdtsc { value: 1 }, Record::Rdtsc { value: 2 }])
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        assert!(!fault_scenarios(7).iter().any(|(_, p)| p.is_empty()));
    }

    #[test]
    fn injector_passes_unplanned_frames_through() {
        let inj = FaultInjector::from_plan(&FaultPlan::default());
        let f = frame();
        let out = inj.apply(5, f.clone());
        assert_eq!(out.retained, f);
        assert_eq!(out.outgoing, vec![f]);
        assert!(!out.delay);
    }

    #[test]
    fn corrupt_is_deterministic_and_retains_pristine() {
        let plan = FaultPlan {
            seed: 99,
            transport: vec![TransportFault {
                seq: 5,
                kind: TransportFaultKind::CorruptBit,
                poison_retained: false,
            }],
            ..FaultPlan::default()
        };
        let inj = FaultInjector::from_plan(&plan);
        let f = frame();
        let a = inj.apply(5, f.clone());
        let b = inj.apply(5, f.clone());
        assert_eq!(a.outgoing, b.outgoing, "same seed, same flip");
        assert_ne!(a.outgoing[0], f, "wire copy damaged");
        assert_eq!(a.retained, f, "retained copy pristine");
    }

    #[test]
    fn drop_duplicate_delay_truncate_shapes() {
        let mk = |kind| {
            let plan = FaultPlan {
                seed: 1,
                transport: vec![TransportFault { seq: 5, kind, poison_retained: false }],
                ..FaultPlan::default()
            };
            FaultInjector::from_plan(&plan).apply(5, frame())
        };
        assert!(mk(TransportFaultKind::DropFrame).outgoing.is_empty());
        assert_eq!(mk(TransportFaultKind::DuplicateFrame).outgoing.len(), 2);
        assert!(mk(TransportFaultKind::DelayFrame).delay);
        let t = mk(TransportFaultKind::TruncateFrame);
        assert!(t.outgoing[0].len() < frame().len());
    }
}
