//! The versioned compact segment format of the durable log store.
//!
//! A **segment** is the unit of durability: a contiguous run of transport
//! frames (each a batch of [`Record`]s with a global sequence number),
//! encoded into one length-prefixed, CRC32-protected file body. The record
//! payload uses a varint/delta encoding — most records are small deltas on
//! the running instruction/cycle/address counters, so the compact form is a
//! fraction of the fixed-width wire codec — with optional per-segment RLE
//! compression on top (applied only when it actually shrinks the body, so
//! encoding stays deterministic).
//!
//! The format carries an explicit version byte ([`FORMAT_VERSION`]): decode
//! refuses unknown versions instead of guessing, and the golden-file test in
//! `tests/log_properties.rs` pins the byte layout of version 1 so any drift
//! without a version bump fails CI.
//!
//! Every segment also roundtrips losslessly through a human-readable debug
//! JSON form ([`segment_to_json`] / [`segment_from_json`]): compact → JSON →
//! compact is byte-identical, wasm-rr's dual binary/JSON trace idiom.
//!
//! ## Byte layout (version 1)
//!
//! ```text
//! offset  size  field
//!      0     4  magic "RNRS"
//!      4     1  format version (= 1)
//!      5     1  flags (bit 0: body is RLE-compressed)
//!      6     8  first_seq  — sequence number of the first frame (LE)
//!     14     4  frame_count (LE)
//!     18     4  record_count (LE)
//!     22     4  raw_len    — uncompressed body length (LE)
//!     26     4  body_len   — stored body length (LE; the length prefix)
//!     30     4  crc32      — over bytes [0, 30) and the stored body
//!     34     …  body: frame index (one varint record-count per frame),
//!               then the records, varint/delta-encoded in order
//! ```

use std::fmt;

use rnr_ras::{Mispredict, MispredictKind, ThreadId};
use rnr_vrt::VrtKind;

use crate::codec::{
    TAG_ALARM, TAG_DMA, TAG_END, TAG_EVICT, TAG_INTERRUPT, TAG_JOP_ALARM, TAG_MMIO_READ, TAG_PIO_IN,
    TAG_RDTSC, TAG_VRT_ALARM,
};
use crate::{crc32, AlarmInfo, DmaSource, Record, VrtAlarmInfo};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"RNRS";

/// On-disk format version. Bump on any byte-layout change; decode refuses
/// other versions and the golden-file test pins this one's exact bytes.
pub const FORMAT_VERSION: u8 = 1;

/// Fixed header size preceding the segment body.
pub const SEGMENT_HEADER: usize = 34;

const FLAG_COMPRESSED: u8 = 1;

/// A decoded segment: a contiguous run of frames starting at `first_seq`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Segment {
    /// Global sequence number of `frames[0]`.
    pub first_seq: u64,
    /// The record batches, one per transport frame, in sequence order.
    pub frames: Vec<Vec<Record>>,
}

impl Segment {
    /// Sequence numbers covered: `[first_seq, first_seq + frames.len())`.
    pub fn covers(&self, seq: u64) -> bool {
        seq >= self.first_seq && seq < self.first_seq + self.frames.len() as u64
    }

    /// Total records across all frames.
    pub fn record_count(&self) -> usize {
        self.frames.iter().map(Vec::len).sum()
    }
}

/// Errors from decoding a segment ([`decode_segment`] / [`segment_from_json`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// The file's size disagrees with the header's length prefix (a torn or
    /// short write when `actual < expected`, trailing garbage otherwise).
    Length {
        /// Header + declared body length.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The magic bytes are not [`SEGMENT_MAGIC`].
    BadMagic,
    /// The version byte is not one this build can decode.
    Version(u8),
    /// The CRC32 did not match the header + stored body.
    Checksum,
    /// The compressed body failed to decompress to its declared raw length.
    Compression,
    /// A CRC-valid body failed structural decoding (index/record mismatch).
    Malformed(String),
    /// The debug-JSON form failed to parse.
    Json(String),
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Length { expected, actual } => {
                write!(f, "segment length mismatch: header declares {expected} bytes, file has {actual}")
            }
            SegmentError::BadMagic => write!(f, "not a segment file (bad magic)"),
            SegmentError::Version(v) => write!(f, "unsupported segment format version {v}"),
            SegmentError::Checksum => write!(f, "segment CRC32 mismatch"),
            SegmentError::Compression => write!(f, "segment body failed to decompress"),
            SegmentError::Malformed(what) => write!(f, "malformed segment body: {what}"),
            SegmentError::Json(what) => write!(f, "segment debug-JSON: {what}"),
        }
    }
}

impl std::error::Error for SegmentError {}

// ---------------------------------------------------------------------------
// Varint / zigzag primitives.

/// Appends an unsigned LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from `buf` at `*pos`, advancing it.
///
/// # Errors
///
/// [`SegmentError::Malformed`] on truncation or a varint longer than 64 bits.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, SegmentError> {
    let mut v = 0u64;
    for shift in (0..=63).step_by(7) {
        let byte = *buf.get(*pos).ok_or_else(|| SegmentError::Malformed("truncated varint".into()))?;
        *pos += 1;
        if shift == 63 && (byte & !1) != 0 {
            return Err(SegmentError::Malformed("varint overflows 64 bits".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(SegmentError::Malformed("varint overflows 64 bits".into()))
}

/// Zigzag-maps a signed delta so small magnitudes encode small.
pub fn zigzag(v: i64) -> u64 {
    ((v as u64) << 1) ^ ((v >> 63) as u64)
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Running prediction state for the delta codec. Most consecutive records
/// move these counters by small amounts, so deltas varint-encode in 1–3
/// bytes where the wire codec spends 8.
#[derive(Debug, Default, Clone)]
struct DeltaCtx {
    insn: u64,
    cycle: u64,
    rdtsc: u64,
    addr: u64,
}

fn put_delta(buf: &mut Vec<u8>, last: &mut u64, v: u64) {
    put_varint(buf, zigzag(v.wrapping_sub(*last) as i64));
    *last = v;
}

fn get_delta(buf: &[u8], pos: &mut usize, last: &mut u64) -> Result<u64, SegmentError> {
    let d = unzigzag(get_varint(buf, pos)?);
    let v = last.wrapping_add(d as u64);
    *last = v;
    Ok(v)
}

fn get_u8(buf: &[u8], pos: &mut usize) -> Result<u8, SegmentError> {
    let b = *buf.get(*pos).ok_or_else(|| SegmentError::Malformed("truncated record".into()))?;
    *pos += 1;
    Ok(b)
}

// ---------------------------------------------------------------------------
// Compact record codec (shares the wire codec's tag bytes).

fn encode_record(buf: &mut Vec<u8>, ctx: &mut DeltaCtx, record: &Record) {
    match record {
        Record::Rdtsc { value } => {
            buf.push(TAG_RDTSC);
            put_delta(buf, &mut ctx.rdtsc, *value);
        }
        Record::PioIn { port, value } => {
            buf.push(TAG_PIO_IN);
            put_varint(buf, u64::from(*port));
            put_varint(buf, *value);
        }
        Record::MmioRead { addr, value } => {
            buf.push(TAG_MMIO_READ);
            put_delta(buf, &mut ctx.addr, *addr);
            put_varint(buf, *value);
        }
        Record::Interrupt { irq, at_insn } => {
            buf.push(TAG_INTERRUPT);
            buf.push(*irq);
            put_delta(buf, &mut ctx.insn, *at_insn);
        }
        Record::Dma { source, addr, data, at_insn } => {
            buf.push(TAG_DMA);
            buf.push(match source {
                DmaSource::Disk => 0,
                DmaSource::Nic => 1,
            });
            put_delta(buf, &mut ctx.addr, *addr);
            put_varint(buf, data.len() as u64);
            buf.extend_from_slice(data);
            put_delta(buf, &mut ctx.insn, *at_insn);
        }
        Record::Evict { tid, addr } => {
            buf.push(TAG_EVICT);
            put_varint(buf, tid.0);
            put_delta(buf, &mut ctx.addr, *addr);
        }
        Record::Alarm(a) => {
            buf.push(TAG_ALARM);
            put_varint(buf, a.tid.0);
            put_delta(buf, &mut ctx.addr, a.mispredict.ret_pc);
            match a.mispredict.predicted {
                Some(p) => {
                    buf.push(1);
                    put_varint(buf, zigzag(p.wrapping_sub(a.mispredict.ret_pc) as i64));
                }
                None => buf.push(0),
            }
            put_varint(buf, zigzag(a.mispredict.actual.wrapping_sub(a.mispredict.ret_pc) as i64));
            buf.push(match a.mispredict.kind {
                MispredictKind::Underflow => 0,
                MispredictKind::TargetMismatch => 1,
                MispredictKind::WhitelistViolation => 2,
            });
            put_delta(buf, &mut ctx.insn, a.at_insn);
            put_delta(buf, &mut ctx.cycle, a.at_cycle);
        }
        Record::End { at_insn, at_cycle } => {
            buf.push(TAG_END);
            put_delta(buf, &mut ctx.insn, *at_insn);
            put_delta(buf, &mut ctx.cycle, *at_cycle);
        }
        Record::JopAlarm { tid, branch_pc, target, at_insn, at_cycle } => {
            buf.push(TAG_JOP_ALARM);
            put_varint(buf, tid.0);
            put_delta(buf, &mut ctx.addr, *branch_pc);
            put_varint(buf, zigzag(target.wrapping_sub(*branch_pc) as i64));
            put_delta(buf, &mut ctx.insn, *at_insn);
            put_delta(buf, &mut ctx.cycle, *at_cycle);
        }
        Record::VrtAlarm(a) => {
            buf.push(TAG_VRT_ALARM);
            put_varint(buf, a.tid.0);
            buf.push(a.kind.as_u8());
            put_delta(buf, &mut ctx.addr, a.addr);
            put_delta(buf, &mut ctx.insn, a.at_insn);
            put_delta(buf, &mut ctx.cycle, a.at_cycle);
        }
    }
}

fn decode_record(buf: &[u8], pos: &mut usize, ctx: &mut DeltaCtx) -> Result<Record, SegmentError> {
    let tag = get_u8(buf, pos)?;
    Ok(match tag {
        TAG_RDTSC => Record::Rdtsc { value: get_delta(buf, pos, &mut ctx.rdtsc)? },
        TAG_PIO_IN => {
            let port = get_varint(buf, pos)?;
            if port > u64::from(u16::MAX) {
                return Err(SegmentError::Malformed(format!("pio port {port} exceeds u16")));
            }
            Record::PioIn { port: port as u16, value: get_varint(buf, pos)? }
        }
        TAG_MMIO_READ => {
            Record::MmioRead { addr: get_delta(buf, pos, &mut ctx.addr)?, value: get_varint(buf, pos)? }
        }
        TAG_INTERRUPT => {
            Record::Interrupt { irq: get_u8(buf, pos)?, at_insn: get_delta(buf, pos, &mut ctx.insn)? }
        }
        TAG_DMA => {
            let source = match get_u8(buf, pos)? {
                0 => DmaSource::Disk,
                1 => DmaSource::Nic,
                v => return Err(SegmentError::Malformed(format!("dma source discriminant {v}"))),
            };
            let addr = get_delta(buf, pos, &mut ctx.addr)?;
            let len = get_varint(buf, pos)? as usize;
            let data = buf
                .get(*pos..*pos + len)
                .ok_or_else(|| SegmentError::Malformed("truncated dma payload".into()))?
                .to_vec();
            *pos += len;
            Record::Dma { source, addr, data, at_insn: get_delta(buf, pos, &mut ctx.insn)? }
        }
        TAG_EVICT => {
            Record::Evict { tid: ThreadId(get_varint(buf, pos)?), addr: get_delta(buf, pos, &mut ctx.addr)? }
        }
        TAG_ALARM => {
            let tid = ThreadId(get_varint(buf, pos)?);
            let ret_pc = get_delta(buf, pos, &mut ctx.addr)?;
            let predicted = match get_u8(buf, pos)? {
                0 => None,
                1 => Some(ret_pc.wrapping_add(unzigzag(get_varint(buf, pos)?) as u64)),
                v => return Err(SegmentError::Malformed(format!("prediction presence {v}"))),
            };
            let actual = ret_pc.wrapping_add(unzigzag(get_varint(buf, pos)?) as u64);
            let kind = match get_u8(buf, pos)? {
                0 => MispredictKind::Underflow,
                1 => MispredictKind::TargetMismatch,
                2 => MispredictKind::WhitelistViolation,
                v => return Err(SegmentError::Malformed(format!("mispredict kind {v}"))),
            };
            Record::Alarm(AlarmInfo {
                tid,
                mispredict: Mispredict { ret_pc, predicted, actual, kind },
                at_insn: get_delta(buf, pos, &mut ctx.insn)?,
                at_cycle: get_delta(buf, pos, &mut ctx.cycle)?,
            })
        }
        TAG_END => Record::End {
            at_insn: get_delta(buf, pos, &mut ctx.insn)?,
            at_cycle: get_delta(buf, pos, &mut ctx.cycle)?,
        },
        TAG_JOP_ALARM => {
            let tid = ThreadId(get_varint(buf, pos)?);
            let branch_pc = get_delta(buf, pos, &mut ctx.addr)?;
            let target = branch_pc.wrapping_add(unzigzag(get_varint(buf, pos)?) as u64);
            Record::JopAlarm {
                tid,
                branch_pc,
                target,
                at_insn: get_delta(buf, pos, &mut ctx.insn)?,
                at_cycle: get_delta(buf, pos, &mut ctx.cycle)?,
            }
        }
        TAG_VRT_ALARM => {
            let tid = ThreadId(get_varint(buf, pos)?);
            let raw_kind = get_u8(buf, pos)?;
            let kind = VrtKind::from_u8(raw_kind)
                .ok_or_else(|| SegmentError::Malformed(format!("vrt kind discriminant {raw_kind}")))?;
            Record::VrtAlarm(VrtAlarmInfo {
                tid,
                kind,
                addr: get_delta(buf, pos, &mut ctx.addr)?,
                at_insn: get_delta(buf, pos, &mut ctx.insn)?,
                at_cycle: get_delta(buf, pos, &mut ctx.cycle)?,
            })
        }
        other => return Err(SegmentError::Malformed(format!("unknown record tag {other:#04x}"))),
    })
}

// ---------------------------------------------------------------------------
// Per-segment RLE compression (PackBits-style). Delta-encoded bodies are
// zero-heavy, so a byte-level run-length pass wins without external deps.
// Control byte `c`: `c < 0x80` copies `c + 1` literal bytes; otherwise the
// next byte repeats `(c & 0x7f) + 3` times.

fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 8);
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1;
        while i + run < data.len() && data[i + run] == b && run < 130 {
            run += 1;
        }
        if run >= 3 {
            out.push(0x80 | (run - 3) as u8);
            out.push(b);
            i += run;
            continue;
        }
        let start = i;
        let mut j = i;
        while j < data.len() && j - start < 128 {
            if j + 2 < data.len() && data[j] == data[j + 1] && data[j] == data[j + 2] {
                break;
            }
            j += 1;
        }
        out.push((j - start - 1) as u8);
        out.extend_from_slice(&data[start..j]);
        i = j;
    }
    out
}

fn rle_decompress(data: &[u8], raw_len: usize) -> Result<Vec<u8>, SegmentError> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0;
    while i < data.len() {
        let c = data[i];
        i += 1;
        if c & 0x80 != 0 {
            let n = (c & 0x7f) as usize + 3;
            let b = *data.get(i).ok_or(SegmentError::Compression)?;
            i += 1;
            if out.len() + n > raw_len {
                return Err(SegmentError::Compression);
            }
            out.resize(out.len() + n, b);
        } else {
            let n = c as usize + 1;
            let lit = data.get(i..i + n).ok_or(SegmentError::Compression)?;
            i += n;
            if out.len() + n > raw_len {
                return Err(SegmentError::Compression);
            }
            out.extend_from_slice(lit);
        }
    }
    if out.len() != raw_len {
        return Err(SegmentError::Compression);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Segment encode / decode.

/// Encodes `segment` into the version-1 compact byte form. When `compress`
/// is set the body is RLE-compressed, but only if that actually shrinks it —
/// the output is a deterministic function of `(segment, compress)`.
pub fn encode_segment(segment: &Segment, compress: bool) -> Vec<u8> {
    let mut body = Vec::new();
    for frame in &segment.frames {
        put_varint(&mut body, frame.len() as u64);
    }
    let mut ctx = DeltaCtx::default();
    for frame in &segment.frames {
        for record in frame {
            encode_record(&mut body, &mut ctx, record);
        }
    }
    let raw_len = body.len();
    let (stored, flags) = if compress {
        let packed = rle_compress(&body);
        if packed.len() < raw_len {
            (packed, FLAG_COMPRESSED)
        } else {
            (body, 0)
        }
    } else {
        (body, 0)
    };

    let mut out = Vec::with_capacity(SEGMENT_HEADER + stored.len());
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.push(FORMAT_VERSION);
    out.push(flags);
    out.extend_from_slice(&segment.first_seq.to_le_bytes());
    out.extend_from_slice(&(segment.frames.len() as u32).to_le_bytes());
    out.extend_from_slice(&(segment.record_count() as u32).to_le_bytes());
    out.extend_from_slice(&(raw_len as u32).to_le_bytes());
    out.extend_from_slice(&(stored.len() as u32).to_le_bytes());
    let mut covered = out.clone();
    covered.extend_from_slice(&stored);
    out.extend_from_slice(&crc32(&covered).to_le_bytes());
    out.extend_from_slice(&stored);
    out
}

/// Decodes a compact segment, verifying length prefix, version, and CRC32.
///
/// # Errors
///
/// Structured [`SegmentError`]s classifying the damage: torn/short files
/// fail the length prefix, bit rot fails the CRC, foreign files fail the
/// magic or version check. Never panics on arbitrary input.
pub fn decode_segment(bytes: &[u8]) -> Result<Segment, SegmentError> {
    if bytes.len() < SEGMENT_HEADER {
        return Err(SegmentError::Length { expected: SEGMENT_HEADER, actual: bytes.len() });
    }
    if bytes[0..4] != SEGMENT_MAGIC {
        return Err(SegmentError::BadMagic);
    }
    if bytes[4] != FORMAT_VERSION {
        return Err(SegmentError::Version(bytes[4]));
    }
    let flags = bytes[5];
    let first_seq = u64::from_le_bytes(bytes[6..14].try_into().expect("8 header bytes"));
    let frame_count = u32::from_le_bytes(bytes[14..18].try_into().expect("4 header bytes")) as usize;
    let record_count = u32::from_le_bytes(bytes[18..22].try_into().expect("4 header bytes")) as usize;
    let raw_len = u32::from_le_bytes(bytes[22..26].try_into().expect("4 header bytes")) as usize;
    let body_len = u32::from_le_bytes(bytes[26..30].try_into().expect("4 header bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[30..34].try_into().expect("4 header bytes"));

    let expected = SEGMENT_HEADER + body_len;
    if bytes.len() != expected {
        return Err(SegmentError::Length { expected, actual: bytes.len() });
    }
    let mut covered = Vec::with_capacity(30 + body_len);
    covered.extend_from_slice(&bytes[..30]);
    covered.extend_from_slice(&bytes[SEGMENT_HEADER..]);
    if crc32(&covered) != crc {
        return Err(SegmentError::Checksum);
    }

    let stored = &bytes[SEGMENT_HEADER..];
    let body;
    let body = if flags & FLAG_COMPRESSED != 0 {
        body = rle_decompress(stored, raw_len)?;
        &body[..]
    } else {
        if stored.len() != raw_len {
            return Err(SegmentError::Compression);
        }
        stored
    };

    // A CRC-valid body can still be structurally impossible if it was
    // written by a buggy or hostile encoder; bound every allocation by the
    // body size before trusting the declared counts.
    if frame_count > body.len() || record_count > body.len() {
        return Err(SegmentError::Malformed("declared counts exceed body size".into()));
    }
    let mut pos = 0;
    let mut counts = Vec::with_capacity(frame_count);
    for _ in 0..frame_count {
        counts.push(get_varint(body, &mut pos)? as usize);
    }
    if counts.iter().sum::<usize>() != record_count {
        return Err(SegmentError::Malformed("frame index disagrees with record count".into()));
    }
    let mut ctx = DeltaCtx::default();
    let mut frames = Vec::with_capacity(frame_count);
    for n in counts {
        let mut frame = Vec::with_capacity(n.min(body.len()));
        for _ in 0..n {
            frame.push(decode_record(body, &mut pos, &mut ctx)?);
        }
        frames.push(frame);
    }
    if pos != body.len() {
        return Err(SegmentError::Malformed("trailing bytes after last record".into()));
    }
    Ok(Segment { first_seq, frames })
}

// ---------------------------------------------------------------------------
// Debug-JSON dual form.

/// The debug-JSON document: everything needed to regenerate the compact
/// bytes exactly, including the requested compression mode.
#[derive(serde::Serialize, serde::Deserialize)]
struct SegmentDoc {
    format_version: u8,
    compress: bool,
    first_seq: u64,
    frames: Vec<Vec<Record>>,
}

/// Renders `segment` as pretty debug JSON. `compress` records the
/// compression mode so [`segment_from_json`] can regenerate the compact
/// form byte-identically.
pub fn segment_to_json(segment: &Segment, compress: bool) -> String {
    let doc = SegmentDoc {
        format_version: FORMAT_VERSION,
        compress,
        first_seq: segment.first_seq,
        frames: segment.frames.clone(),
    };
    serde_json::to_string_pretty(&doc).expect("segment JSON serialization is infallible")
}

/// Parses the debug-JSON form back into a segment and its compression mode.
///
/// # Errors
///
/// [`SegmentError::Json`] on parse failure, [`SegmentError::Version`] when
/// the document was written by a different format version.
pub fn segment_from_json(json: &str) -> Result<(Segment, bool), SegmentError> {
    let doc: SegmentDoc = serde_json::from_str(json).map_err(|e| SegmentError::Json(e.to_string()))?;
    if doc.format_version != FORMAT_VERSION {
        return Err(SegmentError::Version(doc.format_version));
    }
    Ok((Segment { first_seq: doc.first_seq, frames: doc.frames }, doc.compress))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Segment {
        Segment {
            first_seq: 7,
            frames: vec![
                vec![
                    Record::Rdtsc { value: 1000 },
                    Record::Rdtsc { value: 1016 },
                    Record::PioIn { port: 0x1f7, value: 0x50 },
                    Record::Interrupt { irq: 0, at_insn: 4096 },
                ],
                vec![
                    Record::MmioRead { addr: 0xfee0_0000, value: 9 },
                    Record::Dma { source: DmaSource::Nic, addr: 0x8000, data: vec![0; 64], at_insn: 4200 },
                    Record::Evict { tid: ThreadId(3), addr: 0x40_1000 },
                ],
                vec![Record::End { at_insn: 5000, at_cycle: 12_000 }],
            ],
        }
    }

    #[test]
    fn roundtrip_compact_both_modes() {
        for compress in [false, true] {
            let bytes = encode_segment(&sample(), compress);
            let back = decode_segment(&bytes).unwrap();
            assert_eq!(back, sample());
            // Deterministic: same input, same bytes.
            assert_eq!(bytes, encode_segment(&sample(), compress));
        }
    }

    #[test]
    fn roundtrip_through_debug_json() {
        for compress in [false, true] {
            let bytes = encode_segment(&sample(), compress);
            let json = segment_to_json(&sample(), compress);
            let (seg, mode) = segment_from_json(&json).unwrap();
            assert_eq!(mode, compress);
            assert_eq!(encode_segment(&seg, mode), bytes, "compact → JSON → compact drifted");
        }
    }

    #[test]
    fn compact_beats_wire_codec_on_delta_heavy_logs() {
        let mut frames = Vec::new();
        let mut insn = 0u64;
        for f in 0..8 {
            let mut frame = Vec::new();
            for i in 0..64u64 {
                insn += 37;
                frame.push(match i % 3 {
                    0 => Record::Rdtsc { value: insn * 2 },
                    1 => Record::Interrupt { irq: 0, at_insn: insn },
                    _ => Record::Evict { tid: ThreadId(1), addr: 0x40_0000 + f * 64 + i },
                });
            }
            frames.push(frame);
        }
        let seg = Segment { first_seq: 0, frames };
        let wire: u64 = seg.frames.iter().flatten().map(Record::encoded_len).sum();
        let compact = encode_segment(&seg, true).len() as u64;
        assert!(compact * 2 < wire, "compact {compact} vs wire {wire}: expected >2x shrink");
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = encode_segment(&sample(), true);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(decode_segment(&bad).is_err(), "flip at byte {byte} bit {bit} went undetected");
            }
        }
    }

    #[test]
    fn every_truncation_is_detected_without_panic() {
        let bytes = encode_segment(&sample(), false);
        for cut in 0..bytes.len() {
            assert!(decode_segment(&bytes[..cut]).is_err(), "truncation to {cut} bytes accepted");
        }
    }

    #[test]
    fn version_drift_is_refused() {
        let mut bytes = encode_segment(&sample(), false);
        bytes[4] = FORMAT_VERSION + 1;
        assert!(matches!(decode_segment(&bytes), Err(SegmentError::Version(_))));
        let json = segment_to_json(&sample(), false).replace(
            &format!("\"format_version\": {FORMAT_VERSION}"),
            &format!("\"format_version\": {}", FORMAT_VERSION + 1),
        );
        assert!(matches!(segment_from_json(&json), Err(SegmentError::Version(_))));
    }

    #[test]
    fn varint_zigzag_edge_values() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        for d in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }

    #[test]
    fn rle_roundtrips_adversarial_shapes() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![7],
            vec![0; 1000],
            (0..=255u8).collect(),
            [vec![1, 1], vec![2; 200], vec![3, 4, 5], vec![0; 3]].concat(),
        ];
        for case in cases {
            let packed = rle_compress(&case);
            assert_eq!(rle_decompress(&packed, case.len()).unwrap(), case);
        }
    }
}
