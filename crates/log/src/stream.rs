//! Streaming transport between the recorder and a live consumer.
//!
//! During monitored recording the paper's replayers do not wait for the
//! recording to end: "the CR continuously consumes the input log as it is
//! generated" (§4.6.1). [`log_channel`] gives that shape to the simulator —
//! the recorder publishes records through a [`LogSink`] as it appends them,
//! and the checkpointing replayer pulls them from the matching [`LogStream`]
//! on another thread, blocking only when it has caught up with the recording.
//!
//! Records travel in batches to keep the synchronization cost per record
//! negligible. Because the paper's deployment puts recording and replay on
//! **separate machines** (§4), each batch crosses the channel as a
//! checksummed, sequence-numbered frame ([`crate::encode_frame`]): the
//! stream verifies every frame, so corruption, truncation, reordering,
//! duplication, and drops are *detected* instead of silently replayed. The
//! sink retains a pristine copy of every frame it has published — the
//! recorder's retained log — so the consumer can re-request a damaged frame
//! ([`LogStream::recover`]) with bounded retries and capped backoff charged
//! in virtual cycles, never wall-clock.

use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

use bytes::Bytes;

use crate::{decode_frame, encode_frame, CodecError, FaultInjector, FaultPlan, InputLog, Record};

/// Default number of records per transport batch.
pub const DEFAULT_BATCH: usize = 64;

/// Maximum re-request attempts for one damaged frame.
pub const MAX_REFETCH_RETRIES: u32 = 4;

/// Virtual-cycle backoff charged for the first re-request; doubles per
/// retry, capped at 64x. Charged to the transport stats (the recovery
/// bookkeeping), never to the guest's cycle count — recovered runs must
/// stay cycle-identical to fault-free ones.
pub const BACKOFF_BASE_VCYCLES: u64 = 1024;

const BACKOFF_CAP: u64 = BACKOFF_BASE_VCYCLES << 6;

/// The recorder-side retained frame store, shared with the stream for
/// re-requests.
type Retained = Arc<Mutex<Vec<Bytes>>>;

/// Counters describing what the transport detected and healed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct TransportStats {
    /// Frames admitted in order with a valid checksum.
    pub frames_ok: u64,
    /// Duplicate frames silently discarded.
    pub duplicates_dropped: u64,
    /// Frames that arrived early and were admitted once their predecessor
    /// landed.
    pub reorders_healed: u64,
    /// Faults surfaced to the consumer (checksum, truncation, gaps).
    pub faults_detected: u64,
    /// Frames healed by re-requesting from the retained store.
    pub batches_refetched: u64,
    /// Re-request attempts beyond the first, across all recoveries.
    pub refetch_retries: u64,
    /// Virtual-cycle backoff accumulated by recoveries (diagnostic only).
    pub backoff_vcycles: u64,
    /// Refetches served from the durable on-disk store.
    pub disk_refetches: u64,
    /// Refetches where the disk copy was unusable (unsealed, missing, or
    /// damaged-and-quarantined) and the in-memory retained store served.
    pub disk_fallbacks: u64,
}

/// Creates a connected sink/stream pair carrying record batches of at most
/// `batch_size` records (0 is treated as 1: unbatched).
pub fn log_channel(batch_size: usize) -> (LogSink, LogStream) {
    log_channel_with(batch_size, &FaultPlan::default())
}

/// [`log_channel`] with `plan`'s transport faults injected on the sink
/// side. The pristine copy of each frame is retained before injection
/// (unless the plan poisons the retained store), so recovery re-requests
/// observe exactly what a real recorder would still hold.
pub fn log_channel_with(batch_size: usize, plan: &FaultPlan) -> (LogSink, LogStream) {
    let (tx, rx) = channel();
    let retained: Retained = Arc::new(Mutex::new(Vec::new()));
    let injector = plan.wants_transport_injection().then(|| FaultInjector::from_plan(plan));
    (
        LogSink {
            tx,
            batch: Vec::new(),
            batch_size: batch_size.max(1),
            next_seq: 0,
            retained: Arc::clone(&retained),
            injector,
            delayed: None,
            durable: None,
        },
        LogStream {
            rx,
            log: InputLog::new(),
            finished: false,
            next_seq: 0,
            pending: BTreeMap::new(),
            fault: None,
            retained,
            stats: TransportStats::default(),
            durable: None,
        },
    )
}

/// The write side: the recorder pushes records here as it logs them.
///
/// The channel is unbounded, so the recorder never blocks on a slow
/// consumer; dropping the sink (or calling [`LogSink::finish`]) flushes the
/// pending batch and signals end-of-stream.
#[derive(Debug)]
pub struct LogSink {
    tx: Sender<Bytes>,
    batch: Vec<Record>,
    batch_size: usize,
    next_seq: u64,
    retained: Retained,
    injector: Option<FaultInjector>,
    /// A frame held back by a planned delay; it rides behind its successor.
    delayed: Option<Bytes>,
    /// Mirrors every flushed frame to the durable segment store, pristine
    /// (persistence happens before any planned wire damage).
    durable: Option<crate::DurableWriter>,
}

impl LogSink {
    /// Publishes one record, flushing when the batch fills.
    pub fn push(&mut self, record: Record) {
        self.batch.push(record);
        if self.batch.len() >= self.batch_size {
            self.flush();
        }
    }

    /// Mirrors every frame this sink flushes to `writer`, giving the
    /// recorder's retained log an on-disk life. Frames are persisted before
    /// transport-fault injection, so disk always holds the pristine copy.
    pub fn persist_to(&mut self, writer: crate::DurableWriter) {
        self.durable = Some(writer);
    }

    /// Frames and sends any batched records immediately.
    pub fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let frame = encode_frame(seq, &self.batch);
        if let Some(writer) = &mut self.durable {
            writer.append_frame(seq, &self.batch);
        }
        self.batch.clear();
        let (retained, outgoing, delay) = match &self.injector {
            Some(inj) => {
                let i = inj.apply(seq, frame);
                (i.retained, i.outgoing, i.delay)
            }
            None => (frame.clone(), vec![frame], false),
        };
        self.retained.lock().expect("retained store lock").push(retained);
        if delay {
            self.delayed = outgoing.into_iter().next();
            return;
        }
        // A send can only fail when the stream was dropped; the recorder
        // keeps its own complete log either way.
        for bytes in outgoing {
            let _ = self.tx.send(bytes);
        }
        if let Some(held) = self.delayed.take() {
            let _ = self.tx.send(held);
        }
    }

    /// Flushes and closes the stream (consuming the sink hangs up the
    /// channel, which is what wakes a blocked consumer for the last time).
    pub fn finish(self) {}
}

impl Drop for LogSink {
    fn drop(&mut self) {
        self.flush();
        if let Some(held) = self.delayed.take() {
            let _ = self.tx.send(held);
        }
    }
}

/// The read side: a growing [`InputLog`] fed by a [`LogSink`].
///
/// [`LogStream::get`] blocks until the requested record has been published
/// or the producer has hung up, so a consumer can simply walk indices
/// `0, 1, 2, …` and observe exactly the record sequence the recorder wrote.
/// [`LogStream::try_get`] is the fault-aware form: a detected transport
/// fault surfaces as a [`CodecError`] that [`LogStream::recover`] can heal
/// from the retained store.
#[derive(Debug)]
pub struct LogStream {
    rx: Receiver<Bytes>,
    log: InputLog,
    finished: bool,
    /// Sequence number of the next frame the log is waiting for.
    next_seq: u64,
    /// Frames that arrived ahead of `next_seq`, awaiting their predecessor.
    pending: BTreeMap<u64, Vec<Record>>,
    /// A detected fault; sticky until [`LogStream::recover`] heals it.
    fault: Option<CodecError>,
    retained: Retained,
    stats: TransportStats,
    /// Directory of the durable segment store, when the deployment persists
    /// frames to disk; [`LogStream::recover`] prefers the on-disk copy.
    durable: Option<std::path::PathBuf>,
}

impl LogStream {
    /// Blocks until record `index` is available; `None` once the producer
    /// has finished without publishing that many records. Swallows
    /// transport faults (they still latch for [`LogStream::try_get`]) —
    /// fault-aware consumers should use `try_get` instead.
    pub fn get(&mut self, index: usize) -> Option<&Record> {
        self.try_get(index).ok().flatten()
    }

    /// Blocks until record `index` is available.
    ///
    /// # Errors
    ///
    /// Returns the latched [`CodecError`] when the transport detected
    /// corruption, truncation, or a sequence anomaly; the stream stays
    /// usable after a successful [`LogStream::recover`].
    pub fn try_get(&mut self, index: usize) -> Result<Option<&Record>, CodecError> {
        if let Some(f) = &self.fault {
            return Err(f.clone());
        }
        while self.log.len() <= index && !self.finished {
            match self.rx.recv() {
                Ok(frame) => self.accept(frame)?,
                Err(_) => {
                    self.finished = true;
                    self.check_tail()?;
                }
            }
        }
        Ok(self.log.records().get(index))
    }

    /// Re-requests the missing/damaged frame from the recorder's retained
    /// store, with bounded retries and exponential backoff charged in
    /// virtual cycles to the transport stats.
    ///
    /// # Errors
    ///
    /// Returns the original fault when every retry failed (e.g. the
    /// retained copy is poisoned too) — the unrecoverable case.
    pub fn recover(&mut self) -> Result<(), CodecError> {
        let Some(fault) = self.fault.take() else { return Ok(()) };
        let mut backoff = BACKOFF_BASE_VCYCLES;
        for attempt in 0..MAX_REFETCH_RETRIES {
            if attempt > 0 {
                self.stats.refetch_retries += 1;
            }
            self.stats.backoff_vcycles += backoff;
            backoff = (backoff * 2).min(BACKOFF_CAP);
            // The durable store is the deployment's authoritative retained
            // log: prefer the on-disk copy (quarantining at-rest damage on
            // contact), fall back to the in-memory retained store when the
            // covering segment is unsealed, missing, or unusable.
            if let Some(dir) = self.durable.clone() {
                if let Some(records) = crate::store::durable_fetch(&dir, self.next_seq) {
                    self.admit(records);
                    self.stats.batches_refetched += 1;
                    self.stats.disk_refetches += 1;
                    return Ok(());
                }
                self.stats.disk_fallbacks += 1;
            }
            let bytes =
                self.retained.lock().expect("retained store lock").get(self.next_seq as usize).cloned();
            let Some(bytes) = bytes else { continue };
            match decode_frame(&bytes) {
                Ok((seq, records)) if seq == self.next_seq => {
                    self.admit(records);
                    self.stats.batches_refetched += 1;
                    return Ok(());
                }
                // Poisoned or mislabeled retained copy: retry, then give up.
                _ => continue,
            }
        }
        self.fault = Some(fault.clone());
        Err(fault)
    }

    /// Transport health counters accumulated so far.
    pub fn transport_stats(&self) -> TransportStats {
        self.stats
    }

    /// Backs refetch recovery with the durable segment store at `dir`:
    /// [`LogStream::recover`] will read the damaged span from disk first.
    /// Purely a refetch-source change — records, ordering, and the healed
    /// log are byte-identical with or without it.
    pub fn attach_durable(&mut self, dir: &std::path::Path) {
        self.durable = Some(dir.to_path_buf());
    }

    /// Verifies and files one incoming frame.
    fn accept(&mut self, frame: Bytes) -> Result<(), CodecError> {
        let (seq, records) = match decode_frame(&frame) {
            Ok(v) => v,
            Err(e) => return self.raise(e),
        };
        if seq < self.next_seq {
            self.stats.duplicates_dropped += 1;
            return Ok(());
        }
        if seq > self.next_seq {
            self.pending.insert(seq, records);
            // Tolerate exactly one frame in flight ahead of the expected one
            // (a delayed predecessor still catching up). A second early
            // frame means the expected one was dropped, not delayed.
            if self.pending.len() > 1 {
                let got = *self.pending.keys().next().expect("pending non-empty");
                return self.raise(CodecError::SequenceGap { expected: self.next_seq, got });
            }
            return Ok(());
        }
        self.admit(records);
        Ok(())
    }

    /// Appends an in-order frame's records and drains any pending
    /// successors that were waiting on it.
    fn admit(&mut self, records: Vec<Record>) {
        for r in records {
            self.log.push(r);
        }
        self.stats.frames_ok += 1;
        self.next_seq += 1;
        while let Some(early) = self.pending.remove(&self.next_seq) {
            for r in early {
                self.log.push(r);
            }
            self.stats.frames_ok += 1;
            self.stats.reorders_healed += 1;
            self.next_seq += 1;
        }
    }

    /// After end-of-stream: anything still pending, or retained frames that
    /// never arrived, is a tail truncation of the stream.
    fn check_tail(&mut self) -> Result<(), CodecError> {
        if let Some(&got) = self.pending.keys().next() {
            return self.raise(CodecError::SequenceGap { expected: self.next_seq, got });
        }
        let produced = self.retained.lock().expect("retained store lock").len() as u64;
        if produced > self.next_seq {
            return self.raise(CodecError::SequenceGap { expected: self.next_seq, got: produced });
        }
        Ok(())
    }

    fn raise(&mut self, e: CodecError) -> Result<(), CodecError> {
        self.stats.faults_detected += 1;
        self.fault = Some(e.clone());
        Err(e)
    }

    /// The records received so far, without blocking. Transport faults
    /// latch silently (surfaced by the next [`LogStream::try_get`]).
    pub fn received(&mut self) -> &InputLog {
        if self.fault.is_none() {
            while let Ok(frame) = self.rx.try_recv() {
                if self.accept(frame).is_err() {
                    break;
                }
            }
        }
        &self.log
    }

    /// Drains the remainder of the stream and returns the complete log,
    /// auto-recovering any healable transport fault along the way.
    pub fn into_log(mut self) -> InputLog {
        loop {
            match self.rx.recv() {
                Ok(frame) => {
                    if self.accept(frame).is_err() && self.recover().is_err() {
                        break;
                    }
                }
                Err(_) => {
                    self.finished = true;
                    if self.check_tail().is_err() {
                        let _ = self.recover();
                    }
                    break;
                }
            }
        }
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TransportFault, TransportFaultKind};

    fn plan_with(seq: u64, kind: TransportFaultKind, poison_retained: bool) -> FaultPlan {
        FaultPlan {
            seed: 0xFA57,
            transport: vec![TransportFault { seq, kind, poison_retained }],
            ..FaultPlan::default()
        }
    }

    fn feed(sink: &mut LogSink, n: u64) {
        for v in 0..n {
            sink.push(Record::Rdtsc { value: v });
        }
    }

    #[test]
    fn sink_batches_and_stream_reassembles() {
        let (mut sink, mut stream) = log_channel(3);
        for v in 0..7 {
            sink.push(Record::Rdtsc { value: v });
        }
        sink.finish();
        for v in 0..7 {
            assert_eq!(stream.get(v as usize), Some(&Record::Rdtsc { value: v }));
        }
        assert_eq!(stream.get(7), None);
    }

    #[test]
    fn get_blocks_across_thread_boundary() {
        let (mut sink, mut stream) = log_channel(2);
        let producer = std::thread::spawn(move || {
            for v in 0..100 {
                sink.push(Record::Rdtsc { value: v });
            }
            sink.finish();
        });
        // Consume concurrently; get() must block until each arrives.
        for v in 0..100 {
            assert_eq!(stream.get(v as usize), Some(&Record::Rdtsc { value: v }));
        }
        assert_eq!(stream.get(100), None);
        producer.join().unwrap();
    }

    #[test]
    fn into_log_preserves_byte_accounting() {
        let (mut sink, stream) = log_channel(4);
        let mut reference = InputLog::new();
        for v in 0..10 {
            let r = Record::Rdtsc { value: v };
            reference.push(r.clone());
            sink.push(r);
        }
        sink.finish();
        let collected = stream.into_log();
        assert_eq!(collected.records(), reference.records());
        assert_eq!(collected.total_bytes(), reference.total_bytes());
        assert_eq!(collected.to_bytes(), reference.to_bytes());
    }

    #[test]
    fn dropping_sink_flushes_partial_batch() {
        let (mut sink, mut stream) = log_channel(100);
        sink.push(Record::Rdtsc { value: 9 });
        drop(sink);
        assert_eq!(stream.get(0), Some(&Record::Rdtsc { value: 9 }));
        assert_eq!(stream.get(1), None);
    }

    #[test]
    fn corrupt_frame_detected_and_recovered() {
        let (mut sink, mut stream) =
            log_channel_with(2, &plan_with(1, TransportFaultKind::CorruptBit, false));
        feed(&mut sink, 8);
        sink.finish();
        assert_eq!(stream.try_get(0).unwrap(), Some(&Record::Rdtsc { value: 0 }));
        // The flipped bit may land in the length field, so either detection
        // (checksum mismatch or apparent truncation) is legitimate.
        let err = stream.try_get(3).unwrap_err();
        assert!(
            matches!(err, CodecError::FrameChecksum { seq: 1 } | CodecError::FrameTruncated { seq: 1 }),
            "{err:?}"
        );
        stream.recover().unwrap();
        for v in 2..8 {
            assert_eq!(stream.try_get(v as usize).unwrap(), Some(&Record::Rdtsc { value: v }));
        }
        let stats = stream.transport_stats();
        assert_eq!(stats.faults_detected, 1);
        assert_eq!(stats.batches_refetched, 1);
        assert!(stats.backoff_vcycles >= BACKOFF_BASE_VCYCLES);
    }

    #[test]
    fn dropped_frame_detected_and_recovered() {
        let (mut sink, mut stream) = log_channel_with(2, &plan_with(1, TransportFaultKind::DropFrame, false));
        feed(&mut sink, 10);
        sink.finish();
        let err = stream.try_get(4).unwrap_err();
        assert!(matches!(err, CodecError::SequenceGap { expected: 1, .. }), "{err:?}");
        stream.recover().unwrap();
        for v in 0..10 {
            assert_eq!(stream.try_get(v as usize).unwrap(), Some(&Record::Rdtsc { value: v }));
        }
    }

    #[test]
    fn dropped_tail_frame_detected_and_recovered() {
        let (mut sink, mut stream) = log_channel_with(2, &plan_with(4, TransportFaultKind::DropFrame, false));
        feed(&mut sink, 10);
        sink.finish();
        let err = stream.try_get(9).unwrap_err();
        assert_eq!(err, CodecError::SequenceGap { expected: 4, got: 5 });
        stream.recover().unwrap();
        assert_eq!(stream.try_get(9).unwrap(), Some(&Record::Rdtsc { value: 9 }));
    }

    #[test]
    fn duplicate_frame_silently_dropped() {
        let (mut sink, mut stream) =
            log_channel_with(2, &plan_with(1, TransportFaultKind::DuplicateFrame, false));
        feed(&mut sink, 8);
        sink.finish();
        for v in 0..8 {
            assert_eq!(stream.try_get(v as usize).unwrap(), Some(&Record::Rdtsc { value: v }));
        }
        assert_eq!(stream.try_get(8).unwrap(), None);
        assert_eq!(stream.transport_stats().duplicates_dropped, 1);
        assert_eq!(stream.transport_stats().faults_detected, 0);
    }

    #[test]
    fn delayed_frame_healed_by_reordering() {
        let (mut sink, mut stream) =
            log_channel_with(2, &plan_with(1, TransportFaultKind::DelayFrame, false));
        feed(&mut sink, 8);
        sink.finish();
        for v in 0..8 {
            assert_eq!(stream.try_get(v as usize).unwrap(), Some(&Record::Rdtsc { value: v }));
        }
        let stats = stream.transport_stats();
        assert_eq!(stats.reorders_healed, 1);
        assert_eq!(stats.faults_detected, 0);
    }

    #[test]
    fn poisoned_retained_store_is_unrecoverable() {
        let (mut sink, mut stream) = log_channel_with(2, &plan_with(1, TransportFaultKind::CorruptBit, true));
        feed(&mut sink, 8);
        sink.finish();
        let err = stream.try_get(3).unwrap_err();
        assert!(
            matches!(err, CodecError::FrameChecksum { seq: 1 } | CodecError::FrameTruncated { seq: 1 }),
            "{err:?}"
        );
        assert_eq!(stream.recover(), Err(err.clone()));
        assert_eq!(stream.try_get(3), Err(err), "fault stays latched");
        assert!(stream.transport_stats().refetch_retries >= 1);
    }

    #[test]
    fn truncated_frame_detected_and_recovered() {
        let (mut sink, mut stream) =
            log_channel_with(2, &plan_with(2, TransportFaultKind::TruncateFrame, false));
        feed(&mut sink, 10);
        sink.finish();
        let err = stream.try_get(5).unwrap_err();
        assert_eq!(err, CodecError::FrameTruncated { seq: 2 });
        stream.recover().unwrap();
        for v in 0..10 {
            assert_eq!(stream.try_get(v as usize).unwrap(), Some(&Record::Rdtsc { value: v }));
        }
    }

    #[test]
    fn into_log_auto_recovers() {
        let (mut sink, stream) = log_channel_with(2, &plan_with(1, TransportFaultKind::CorruptBit, false));
        let mut reference = InputLog::new();
        for v in 0..9 {
            let r = Record::Rdtsc { value: v };
            reference.push(r.clone());
            sink.push(r);
        }
        sink.finish();
        let collected = stream.into_log();
        assert_eq!(collected.to_bytes(), reference.to_bytes());
    }
}
