//! Streaming transport between the recorder and a live consumer.
//!
//! During monitored recording the paper's replayers do not wait for the
//! recording to end: "the CR continuously consumes the input log as it is
//! generated" (§4.6.1). [`log_channel`] gives that shape to the simulator —
//! the recorder publishes records through a [`LogSink`] as it appends them,
//! and the checkpointing replayer pulls them from the matching [`LogStream`]
//! on another thread, blocking only when it has caught up with the recording.
//!
//! Records travel in batches to keep the synchronization cost per record
//! negligible; the stream re-assembles them into a growing [`InputLog`] so
//! byte accounting on the consumer side is exact, identical to the
//! recorder's own log.

use std::sync::mpsc::{channel, Receiver, Sender};

use crate::{InputLog, Record};

/// Default number of records per transport batch.
pub const DEFAULT_BATCH: usize = 64;

/// Creates a connected sink/stream pair carrying record batches of at most
/// `batch_size` records (0 is treated as 1: unbatched).
pub fn log_channel(batch_size: usize) -> (LogSink, LogStream) {
    let (tx, rx) = channel();
    (
        LogSink { tx, batch: Vec::new(), batch_size: batch_size.max(1) },
        LogStream { rx, log: InputLog::new(), finished: false },
    )
}

/// The write side: the recorder pushes records here as it logs them.
///
/// The channel is unbounded, so the recorder never blocks on a slow
/// consumer; dropping the sink (or calling [`LogSink::finish`]) flushes the
/// pending batch and signals end-of-stream.
#[derive(Debug)]
pub struct LogSink {
    tx: Sender<Vec<Record>>,
    batch: Vec<Record>,
    batch_size: usize,
}

impl LogSink {
    /// Publishes one record, flushing when the batch fills.
    pub fn push(&mut self, record: Record) {
        self.batch.push(record);
        if self.batch.len() >= self.batch_size {
            self.flush();
        }
    }

    /// Sends any batched records immediately.
    pub fn flush(&mut self) {
        if !self.batch.is_empty() {
            // A send can only fail when the stream was dropped; the recorder
            // keeps its own complete log either way.
            let _ = self.tx.send(std::mem::take(&mut self.batch));
        }
    }

    /// Flushes and closes the stream (consuming the sink hangs up the
    /// channel, which is what wakes a blocked consumer for the last time).
    pub fn finish(mut self) {
        self.flush();
    }
}

impl Drop for LogSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// The read side: a growing [`InputLog`] fed by a [`LogSink`].
///
/// [`LogStream::get`] blocks until the requested record has been published
/// or the producer has hung up, so a consumer can simply walk indices
/// `0, 1, 2, …` and observe exactly the record sequence the recorder wrote.
#[derive(Debug)]
pub struct LogStream {
    rx: Receiver<Vec<Record>>,
    log: InputLog,
    finished: bool,
}

impl LogStream {
    /// Blocks until record `index` is available; `None` once the producer
    /// has finished without publishing that many records.
    pub fn get(&mut self, index: usize) -> Option<&Record> {
        while self.log.len() <= index && !self.finished {
            match self.rx.recv() {
                Ok(batch) => self.log.extend(batch),
                Err(_) => self.finished = true,
            }
        }
        self.log.records().get(index)
    }

    /// The records received so far, without blocking.
    pub fn received(&mut self) -> &InputLog {
        while let Ok(batch) = self.rx.try_recv() {
            self.log.extend(batch);
        }
        &self.log
    }

    /// Drains the remainder of the stream and returns the complete log.
    pub fn into_log(mut self) -> InputLog {
        while let Ok(batch) = self.rx.recv() {
            self.log.extend(batch);
        }
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_batches_and_stream_reassembles() {
        let (mut sink, mut stream) = log_channel(3);
        for v in 0..7 {
            sink.push(Record::Rdtsc { value: v });
        }
        sink.finish();
        for v in 0..7 {
            assert_eq!(stream.get(v as usize), Some(&Record::Rdtsc { value: v }));
        }
        assert_eq!(stream.get(7), None);
    }

    #[test]
    fn get_blocks_across_thread_boundary() {
        let (mut sink, mut stream) = log_channel(2);
        let producer = std::thread::spawn(move || {
            for v in 0..100 {
                sink.push(Record::Rdtsc { value: v });
            }
            sink.finish();
        });
        // Consume concurrently; get() must block until each arrives.
        for v in 0..100 {
            assert_eq!(stream.get(v as usize), Some(&Record::Rdtsc { value: v }));
        }
        assert_eq!(stream.get(100), None);
        producer.join().unwrap();
    }

    #[test]
    fn into_log_preserves_byte_accounting() {
        let (mut sink, stream) = log_channel(4);
        let mut reference = InputLog::new();
        for v in 0..10 {
            let r = Record::Rdtsc { value: v };
            reference.push(r.clone());
            sink.push(r);
        }
        sink.finish();
        let collected = stream.into_log();
        assert_eq!(collected.records(), reference.records());
        assert_eq!(collected.total_bytes(), reference.total_bytes());
        assert_eq!(collected.to_bytes(), reference.to_bytes());
    }

    #[test]
    fn dropping_sink_flushes_partial_batch() {
        let (mut sink, mut stream) = log_channel(100);
        sink.push(Record::Rdtsc { value: 9 });
        drop(sink);
        assert_eq!(stream.get(0), Some(&Record::Rdtsc { value: 9 }));
        assert_eq!(stream.get(1), None);
    }
}
