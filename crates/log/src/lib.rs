//! # rnr-log: the RnR input log
//!
//! During monitored recording, the hypervisor stores **every non-deterministic
//! event** of the guest execution in a software log (§3 of the paper); the
//! checkpointing and alarm replayers consume the log to enforce a
//! deterministic re-execution. This crate defines:
//!
//! * [`Record`] — the log entry types: synchronous data events (`rdtsc`,
//!   PIO/MMIO reads), asynchronous events pinned to an instruction count
//!   (external interrupts, DMA payloads from the disk and NIC), the RAS
//!   *evict* records of §4.5, the ROP *alarm* markers, and the end-of-log
//!   marker.
//! * [`InputLog`] / [`LogWriter`] — an append-only log with exact binary
//!   size accounting per [`Category`] (regenerates the log-rate data of
//!   Figure 6(a) and the overhead attribution of Figure 5(b)).
//! * [`LogCursor`] — the replayers' read position; checkpoints store a
//!   cursor as their `InputLogPtr` (Figure 4).
//! * [`log_channel`] / [`LogSink`] / [`LogStream`] / [`LogSource`] — the
//!   streaming transport that lets the checkpointing replayer consume the
//!   log concurrently with its generation (§4.6.1), instead of waiting for
//!   the recording to finish. Batches travel as checksummed,
//!   sequence-numbered frames ([`encode_frame`] / [`decode_frame`]) so a
//!   faulty transport is detected and healed, not silently replayed.
//! * [`FaultPlan`] / [`FaultInjector`] — deterministic, seeded fault
//!   injection (corrupt/drop/duplicate/delay/truncate a frame, disk faults
//!   against sealed segments, plus replay and AR-supervisor injection
//!   points) so every failure scenario is reproducible from `(seed, plan)`.
//! * [`DurableWriter`] / [`DurableStore`] — the durable segmented log
//!   store: frames sealed into versioned, CRC32-protected, varint/delta-
//!   compact [`Segment`] files (atomic write-temp + fsync + rename), a
//!   crash-recovery scan that truncates torn tails and quarantines damaged
//!   segments, and a disk-first refetch path for the CR's
//!   rewind-and-refetch recovery.
//! * a compact binary codec ([`InputLog::to_bytes`] /
//!   [`InputLog::from_bytes`]) so log sizes are measured, not estimated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod cursor;
mod fault;
mod frame;
mod record;
mod segment;
mod source;
mod store;
mod stream;
mod writer;

pub use codec::CodecError;
pub use cursor::LogCursor;
pub use fault::{
    disk_fault_scenarios, fault_scenarios, splitmix64, unrecoverable_scenario, DiskFault, DiskFaultKind,
    FaultInjector, FaultPlan, InjectedFrame, TransportFault, TransportFaultKind,
};
pub use frame::{crc32, decode_frame, encode_frame, FRAME_HEADER};
pub use record::{AlarmInfo, Category, DmaSource, Record, VrtAlarmInfo};
pub use segment::{
    decode_segment, encode_segment, get_varint, put_varint, segment_from_json, segment_to_json, unzigzag,
    zigzag, Segment, SegmentError, FORMAT_VERSION, SEGMENT_HEADER, SEGMENT_MAGIC,
};
pub use source::LogSource;
pub use store::{
    apply_disk_fault, durable_fetch, segment_file_name, DiskWriteStats, DurableLogConfig, DurableStore,
    DurableWriter, RecoveryScan, DEFAULT_FRAMES_PER_SEGMENT, SEGMENT_EXT,
};
pub use stream::{
    log_channel, log_channel_with, LogSink, LogStream, TransportStats, BACKOFF_BASE_VCYCLES, DEFAULT_BATCH,
    MAX_REFETCH_RETRIES,
};
pub use writer::{InputLog, LogWriter};
