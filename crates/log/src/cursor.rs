//! Read cursors over the input log.

use crate::{InputLog, Record};

/// A replayer's position in the input log.
///
/// Checkpoints store a cursor as their `InputLogPtr` component (Figure 4):
/// "a pointer to the input log buffer... points to the next input log record
/// to be processed after the checkpoint."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct LogCursor {
    index: usize,
}

impl LogCursor {
    /// A cursor at record `index`.
    pub fn new(index: usize) -> LogCursor {
        LogCursor { index }
    }

    /// The index of the next record to process.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The next record, without advancing.
    pub fn peek<'a>(&self, log: &'a InputLog) -> Option<&'a Record> {
        log.records().get(self.index)
    }

    /// Returns the next record and advances.
    pub fn next<'a>(&mut self, log: &'a InputLog) -> Option<&'a Record> {
        let r = log.records().get(self.index)?;
        self.index += 1;
        Some(r)
    }

    /// Advances past the current record without reading it.
    pub fn advance(&mut self) {
        self.index += 1;
    }

    /// True if no records remain.
    pub fn is_done(&self, log: &InputLog) -> bool {
        self.index >= log.len()
    }

    /// Bytes of log remaining from this cursor to the end — the "log
    /// generated during the detection window" measurement of §8.4.
    pub fn remaining_bytes(&self, log: &InputLog) -> u64 {
        log.records()[self.index.min(log.len())..].iter().map(Record::encoded_len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InputLog {
        vec![Record::Rdtsc { value: 1 }, Record::Rdtsc { value: 2 }, Record::End { at_insn: 0, at_cycle: 0 }]
            .into_iter()
            .collect()
    }

    #[test]
    fn next_walks_in_order() {
        let log = sample();
        let mut c = log.cursor();
        assert_eq!(c.next(&log), Some(&Record::Rdtsc { value: 1 }));
        assert_eq!(c.next(&log), Some(&Record::Rdtsc { value: 2 }));
        assert!(matches!(c.next(&log), Some(Record::End { .. })));
        assert_eq!(c.next(&log), None);
        assert!(c.is_done(&log));
    }

    #[test]
    fn peek_does_not_advance() {
        let log = sample();
        let mut c = log.cursor();
        assert_eq!(c.peek(&log), Some(&Record::Rdtsc { value: 1 }));
        assert_eq!(c.peek(&log), Some(&Record::Rdtsc { value: 1 }));
        c.advance();
        assert_eq!(c.peek(&log), Some(&Record::Rdtsc { value: 2 }));
    }

    #[test]
    fn remaining_bytes_shrinks() {
        let log = sample();
        let mut c = log.cursor();
        let all = c.remaining_bytes(&log);
        assert_eq!(all, log.total_bytes());
        c.advance();
        assert_eq!(c.remaining_bytes(&log), all - 9);
    }

    #[test]
    fn cursor_survives_past_end() {
        let log = sample();
        let mut c = LogCursor::new(99);
        assert_eq!(c.peek(&log), None);
        assert_eq!(c.next(&log), None);
        assert_eq!(c.remaining_bytes(&log), 0);
    }
}
