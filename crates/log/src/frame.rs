//! Checksummed framing for the streaming log transport.
//!
//! The paper's deployment records and replays **on separate machines** (§4),
//! so the log crosses a real transport that can corrupt, reorder, truncate,
//! or duplicate data. Each batch of records travels as one frame:
//!
//! ```text
//! [seq: u64 le][payload_len: u32 le][crc32: u32 le][payload bytes]
//! ```
//!
//! The CRC32 (IEEE polynomial) covers the sequence number, the length field,
//! and the payload, so any single-bit flip anywhere in the frame is detected
//! — including flips in a DMA length field that the raw record codec alone
//! could mis-parse into a different, still-valid record sequence. Sequence
//! numbers let the consumer detect drops, duplicates, and reordering.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{codec, CodecError, Record};

/// Size of the frame header: sequence number + payload length + CRC32.
pub const FRAME_HEADER: usize = 8 + 4 + 4;

/// CRC32 lookup table for the IEEE 802.3 polynomial (reflected 0xEDB88320).
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of `bytes`. Table-driven, byte at a time.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Encodes one batch of records as a checksummed frame carrying `seq`.
pub fn encode_frame(seq: u64, records: &[Record]) -> Bytes {
    let mut payload = BytesMut::new();
    for r in records {
        codec::encode(r, &mut payload);
    }
    let mut covered = BytesMut::with_capacity(12 + payload.len());
    covered.put_u64_le(seq);
    covered.put_u32_le(payload.len() as u32);
    covered.put_slice(&payload);
    let crc = crc32(&covered);
    let mut frame = BytesMut::with_capacity(FRAME_HEADER + payload.len());
    frame.put_u64_le(seq);
    frame.put_u32_le(payload.len() as u32);
    frame.put_u32_le(crc);
    frame.put_slice(&payload);
    frame.freeze()
}

/// Decodes and verifies one frame, returning its sequence number and records.
///
/// # Errors
///
/// [`CodecError::FrameTruncated`] when the frame is shorter than its header
/// or declared payload, [`CodecError::FrameChecksum`] when the CRC32 does
/// not match, and any record-level [`CodecError`] from the payload itself.
pub fn decode_frame(frame: &Bytes) -> Result<(u64, Vec<Record>), CodecError> {
    if frame.len() < FRAME_HEADER {
        let seq = if frame.len() >= 8 {
            u64::from_le_bytes(frame[..8].try_into().expect("8-byte slice"))
        } else {
            0
        };
        return Err(CodecError::FrameTruncated { seq });
    }
    let mut buf = frame.clone();
    let seq = buf.get_u64_le();
    let len = buf.get_u32_le() as usize;
    let crc = buf.get_u32_le();
    if buf.remaining() < len {
        return Err(CodecError::FrameTruncated { seq });
    }
    let mut covered = BytesMut::with_capacity(12 + len);
    covered.put_u64_le(seq);
    covered.put_u32_le(len as u32);
    covered.put_slice(&buf[..len]);
    if crc32(&covered) != crc {
        return Err(CodecError::FrameChecksum { seq });
    }
    let mut payload = buf.slice(0..len);
    let mut records = Vec::new();
    while payload.has_remaining() {
        records.push(codec::decode(&mut payload)?);
    }
    Ok((seq, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Record> {
        vec![
            Record::Rdtsc { value: 7 },
            Record::PioIn { port: 0x1f7, value: 9 },
            Record::End { at_insn: 10, at_cycle: 20 },
        ]
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trips() {
        let records = sample();
        let frame = encode_frame(3, &records);
        let (seq, back) = decode_frame(&frame).unwrap();
        assert_eq!(seq, 3);
        assert_eq!(back, records);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame = encode_frame(1, &sample());
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.to_vec();
                bad[byte] ^= 1 << bit;
                assert!(decode_frame(&Bytes::from(bad)).is_err(), "flip at byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn truncations_are_detected() {
        let frame = encode_frame(2, &sample());
        for cut in 0..frame.len() {
            let short = frame.slice(0..cut);
            match decode_frame(&short) {
                Err(CodecError::FrameTruncated { .. }) => {}
                other => panic!("cut at {cut}: expected FrameTruncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_batch_frames_round_trip() {
        let frame = encode_frame(0, &[]);
        assert_eq!(frame.len(), FRAME_HEADER);
        assert_eq!(decode_frame(&frame).unwrap(), (0, vec![]));
    }
}
