//! Guest memory layout and kernel ABI constants.

use rnr_isa::Addr;

/// Load address of the kernel image.
pub const KERNEL_BASE: Addr = 0x1000;

/// Boot table: `[count, (entry, kind) * count]`, written by the workload
/// builder, read by the kernel at boot.
pub const BOOT_TABLE: Addr = 0x800;

/// Workload parameter block: up to 16 `u64`s readable by user programs.
pub const PARAMS_BASE: Addr = 0xA00;

/// The NIC's single-slot receive mailbox: the device DMAs one frame here
/// (located above the kernel image, below the thread stacks).
pub const NIC_RX_BUF: Addr = 0xF_0000;

/// Maximum frame size the NIC mailbox holds.
pub const NIC_MTU: usize = 2048;

/// Base of the per-thread kernel stacks.
pub const STACKS_BASE: Addr = 0x10_0000;

/// Size of one thread stack slot.
pub const STACK_SIZE: u64 = 16 * 1024;

/// Maximum number of threads (stack slots / task structs).
pub const MAX_THREADS: usize = 16;

/// Load address of user workload images.
pub const USER_BASE: Addr = 0x20_0000;

/// Scratch heap available to user programs.
pub const USER_HEAP: Addr = 0x30_0000;

/// Per-thread completed-operation counters (`OPS_BASE + tid * 8`): the
/// work measure used to compare execution time across recording modes.
pub const OPS_BASE: Addr = 0x3F_0000;

/// Size of the task_struct array stride in bytes.
pub const TCB_STRIDE: u64 = 64;

/// `task_struct` field offsets (the introspection contract of §5.2.1: the
/// hypervisor reads these fields directly from guest memory).
pub mod tcb {
    /// Thread state: 0 free, 1 runnable, 2 blocked.
    pub const STATE: i32 = 0;
    /// Thread ID (reused when a slot is reallocated).
    pub const TID: i32 = 8;
    /// Saved stack pointer while switched out.
    pub const SP: i32 = 16;
    /// Initial entry point.
    pub const ENTRY: i32 = 24;
    /// Thread kind: 0 user, 1 kernel.
    pub const KIND: i32 = 32;
    /// Wait reason while blocked: see [`super::wait`].
    pub const WAIT: i32 = 40;
}

/// Wait reasons stored in `tcb::WAIT`.
pub mod wait {
    /// Not waiting.
    pub const NONE: u64 = 0;
    /// Waiting for a disk completion.
    pub const DISK: u64 = 1;
    /// Waiting for network data.
    pub const NET: u64 = 2;
}

/// Thread states stored in `tcb::STATE`.
pub mod state {
    /// Slot unused.
    pub const FREE: u64 = 0;
    /// Ready to run (or running).
    pub const RUNNABLE: u64 = 1;
    /// Waiting for disk or network.
    pub const BLOCKED: u64 = 2;
}

/// System call numbers.
pub mod sys {
    /// Terminate the current thread.
    pub const EXIT: u32 = 0;
    /// Yield the CPU.
    pub const YIELD: u32 = 1;
    /// Read sectors from disk: `r1` = sector, `r2` = buffer, `r3` = count.
    pub const READ: u32 = 2;
    /// Write sectors to disk: same arguments as `READ`.
    pub const WRITE: u32 = 3;
    /// Receive a network frame into `r1`; returns its length.
    pub const NETRECV: u32 = 4;
    /// Transmit a frame: `r1` = buffer, `r2` = length.
    pub const NETTX: u32 = 5;
    /// Read the time-stamp counter.
    pub const GETTIME: u32 = 6;
    /// Spawn a thread: `r1` = entry, `r2` = kind; returns tid or `-1`.
    pub const SPAWN: u32 = 7;
    /// Write one byte (`r1`) to the console.
    pub const LOG: u32 = 8;
    /// Read the hardware random source.
    pub const RAND: u32 = 9;
    /// Current thread ID.
    pub const GETPID: u32 = 10;
    /// Process a message (the **vulnerable** path of §6: unbounded copy
    /// into a 128-byte kernel stack buffer).
    pub const PROCMSG: u32 = 11;
    /// Trigger the kernel bug-recovery path (kills the current thread,
    /// orphaning its RAS entries) — used by tests and ablations.
    pub const OOPS: u32 = 12;
    /// Number of syscalls.
    pub const COUNT: u32 = 13;
}

/// Paravirtual hypercall operation codes (`vmcall`, `r1` = op).
pub mod pv {
    /// Disk read: `r2` = sector, `r3` = buffer, `r4` = count.
    pub const DISK_READ: u64 = 1;
    /// Disk write: same arguments.
    pub const DISK_WRITE: u64 = 2;
    /// Poll/dequeue one received frame into `r2`; returns length or `-1`.
    pub const NET_RECV: u64 = 3;
    /// Transmit: `r2` = buffer, `r3` = length.
    pub const NET_TX: u64 = 4;
}

/// Computes the top of thread slot `i`'s stack.
pub fn stack_top(slot: usize) -> Addr {
    STACKS_BASE + (slot as u64 + 1) * STACK_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_fits_default_memory() {
        let end = stack_top(MAX_THREADS - 1);
        let mem = rnr_isa::Addr::from(4u32 << 20);
        assert!(end <= USER_BASE);
        const { assert!(USER_HEAP < OPS_BASE) };
        assert!(OPS_BASE + 8 * (MAX_THREADS as u64 + 1) <= mem);
        assert!(BOOT_TABLE + 8 + 16 * MAX_THREADS as u64 <= PARAMS_BASE + 0x700);
    }

    #[test]
    fn stack_slots_disjoint() {
        assert_eq!(stack_top(0), STACKS_BASE + STACK_SIZE);
        assert_eq!(stack_top(1) - stack_top(0), STACK_SIZE);
    }
}
