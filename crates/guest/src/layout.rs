//! Guest memory layout and kernel ABI constants.

use rnr_isa::Addr;

/// Load address of the kernel image.
pub const KERNEL_BASE: Addr = 0x1000;

/// Boot table: `[count, (entry, kind) * count]`, written by the workload
/// builder, read by the kernel at boot.
pub const BOOT_TABLE: Addr = 0x800;

/// Workload parameter block: up to 16 `u64`s readable by user programs.
pub const PARAMS_BASE: Addr = 0xA00;

/// The NIC's single-slot receive mailbox: the device DMAs one frame here
/// (located above the kernel image, below the thread stacks).
pub const NIC_RX_BUF: Addr = 0xF_0000;

/// Maximum frame size the NIC mailbox holds.
pub const NIC_MTU: usize = 2048;

/// Base of the per-thread kernel stacks.
pub const STACKS_BASE: Addr = 0x10_0000;

/// Size of one thread stack slot.
pub const STACK_SIZE: u64 = 16 * 1024;

/// Maximum number of threads (stack slots / task structs).
pub const MAX_THREADS: usize = 16;

/// Base of the kernel heap served by `sys::ALLOC`/`sys::FREE` — a
/// fixed-stride slot allocator (DESIGN.md §15). Matches the default VRT
/// heap watch range (`rnr-vrt`'s `VrtParams::default`).
pub const KHEAP_BASE: Addr = 0x16_0000;

/// End of the kernel heap (exclusive).
pub const KHEAP_END: Addr = 0x1A_0000;

/// Stride of one kernel-heap slot. Allocations are capped at
/// [`VRT_MAX_ALLOC`] so at least [`VRT_SLOT_GAP`] bytes separate a live
/// region's end from the next slot — the geometric margin behind the VRT's
/// zero-false-negative guarantee (DESIGN.md §15).
pub const VRT_HEAP_SLOT_STRIDE: u64 = 4096;

/// Number of kernel-heap slots.
pub const VRT_HEAP_SLOTS: usize = ((KHEAP_END - KHEAP_BASE) / VRT_HEAP_SLOT_STRIDE) as usize;

/// VRT watch granule in bytes; must equal `VrtParams::default().granule`
/// (asserted by a guest test — the kernel and the hardware table have to
/// agree on the rounding).
pub const VRT_GRANULE: u64 = 64;

/// Guaranteed minimum gap between a live allocation's end and the next
/// slot's base: two granules, so the first store past an allocation always
/// lands in a granule the table never covered.
pub const VRT_SLOT_GAP: u64 = 2 * VRT_GRANULE;

/// Largest user length `sys::ALLOC` serves (stride minus the gap).
pub const VRT_MAX_ALLOC: u64 = VRT_HEAP_SLOT_STRIDE - VRT_SLOT_GAP;

/// The kernel's *precise* allocation table: [`VRT_HEAP_SLOTS`] entries of
/// `[base: u64, len: u64]` (`len == 0` = slot free), maintained by
/// `sys::ALLOC`/`sys::FREE`. The alarm replayer introspects it from
/// replayed guest memory to classify VRT heap alarms exactly
/// (DESIGN.md §15).
pub const VRT_ALLOC_TABLE: Addr = 0x1A_0000;

/// Load address of user workload images.
pub const USER_BASE: Addr = 0x20_0000;

/// Scratch heap available to user programs.
pub const USER_HEAP: Addr = 0x30_0000;

/// Per-thread completed-operation counters (`OPS_BASE + tid * 8`): the
/// work measure used to compare execution time across recording modes.
pub const OPS_BASE: Addr = 0x3F_0000;

/// Size of the task_struct array stride in bytes.
pub const TCB_STRIDE: u64 = 64;

/// `task_struct` field offsets (the introspection contract of §5.2.1: the
/// hypervisor reads these fields directly from guest memory).
pub mod tcb {
    /// Thread state: 0 free, 1 runnable, 2 blocked.
    pub const STATE: i32 = 0;
    /// Thread ID (reused when a slot is reallocated).
    pub const TID: i32 = 8;
    /// Saved stack pointer while switched out.
    pub const SP: i32 = 16;
    /// Initial entry point.
    pub const ENTRY: i32 = 24;
    /// Thread kind: 0 user, 1 kernel.
    pub const KIND: i32 = 32;
    /// Wait reason while blocked: see [`super::wait`].
    pub const WAIT: i32 = 40;
}

/// Wait reasons stored in `tcb::WAIT`.
pub mod wait {
    /// Not waiting.
    pub const NONE: u64 = 0;
    /// Waiting for a disk completion.
    pub const DISK: u64 = 1;
    /// Waiting for network data.
    pub const NET: u64 = 2;
}

/// Thread states stored in `tcb::STATE`.
pub mod state {
    /// Slot unused.
    pub const FREE: u64 = 0;
    /// Ready to run (or running).
    pub const RUNNABLE: u64 = 1;
    /// Waiting for disk or network.
    pub const BLOCKED: u64 = 2;
}

/// System call numbers.
pub mod sys {
    /// Terminate the current thread.
    pub const EXIT: u32 = 0;
    /// Yield the CPU.
    pub const YIELD: u32 = 1;
    /// Read sectors from disk: `r1` = sector, `r2` = buffer, `r3` = count.
    pub const READ: u32 = 2;
    /// Write sectors to disk: same arguments as `READ`.
    pub const WRITE: u32 = 3;
    /// Receive a network frame into `r1`; returns its length.
    pub const NETRECV: u32 = 4;
    /// Transmit a frame: `r1` = buffer, `r2` = length.
    pub const NETTX: u32 = 5;
    /// Read the time-stamp counter.
    pub const GETTIME: u32 = 6;
    /// Spawn a thread: `r1` = entry, `r2` = kind; returns tid or `-1`.
    pub const SPAWN: u32 = 7;
    /// Write one byte (`r1`) to the console.
    pub const LOG: u32 = 8;
    /// Read the hardware random source.
    pub const RAND: u32 = 9;
    /// Current thread ID.
    pub const GETPID: u32 = 10;
    /// Process a message (the **vulnerable** path of §6: unbounded copy
    /// into a 128-byte kernel stack buffer).
    pub const PROCMSG: u32 = 11;
    /// Trigger the kernel bug-recovery path (kills the current thread,
    /// orphaning its RAS entries) — used by tests and ablations.
    pub const OOPS: u32 = 12;
    /// Allocate `r1` bytes from the kernel heap; returns the base address
    /// or `-1`. Declares the region to the VRT via the doorbell ports and
    /// records it in the precise allocation table (DESIGN.md §15).
    pub const ALLOC: u32 = 13;
    /// Free the allocation at base `r1` (retires the VRT entry and clears
    /// the precise-table slot).
    pub const FREE: u32 = 14;
    /// Number of syscalls.
    pub const COUNT: u32 = 15;
}

/// Paravirtual hypercall operation codes (`vmcall`, `r1` = op).
pub mod pv {
    /// Disk read: `r2` = sector, `r3` = buffer, `r4` = count.
    pub const DISK_READ: u64 = 1;
    /// Disk write: same arguments.
    pub const DISK_WRITE: u64 = 2;
    /// Poll/dequeue one received frame into `r2`; returns length or `-1`.
    pub const NET_RECV: u64 = 3;
    /// Transmit: `r2` = buffer, `r3` = length.
    pub const NET_TX: u64 = 4;
}

/// Computes the top of thread slot `i`'s stack.
pub fn stack_top(slot: usize) -> Addr {
    STACKS_BASE + (slot as u64 + 1) * STACK_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_fits_default_memory() {
        let end = stack_top(MAX_THREADS - 1);
        let mem = rnr_isa::Addr::from(4u32 << 20);
        assert!(end <= USER_BASE);
        const { assert!(USER_HEAP < OPS_BASE) };
        assert!(OPS_BASE + 8 * (MAX_THREADS as u64 + 1) <= mem);
        assert!(BOOT_TABLE + 8 + 16 * MAX_THREADS as u64 <= PARAMS_BASE + 0x700);
    }

    #[test]
    fn stack_slots_disjoint() {
        assert_eq!(stack_top(0), STACKS_BASE + STACK_SIZE);
        assert_eq!(stack_top(1) - stack_top(0), STACK_SIZE);
    }

    #[test]
    fn kernel_heap_fits_between_stacks_and_user_images() {
        assert!(stack_top(MAX_THREADS - 1) <= KHEAP_BASE);
        assert_eq!((KHEAP_END - KHEAP_BASE) % VRT_HEAP_SLOT_STRIDE, 0);
        assert_eq!(VRT_HEAP_SLOTS as u64 * VRT_HEAP_SLOT_STRIDE, KHEAP_END - KHEAP_BASE);
        // The precise table sits right above the heap and below user images.
        assert_eq!(VRT_ALLOC_TABLE, KHEAP_END);
        assert!(VRT_ALLOC_TABLE + 16 * VRT_HEAP_SLOTS as u64 <= USER_BASE);
    }

    #[test]
    fn slot_gap_guarantees_uncovered_granules_past_any_allocation() {
        // The zero-false-negative argument (DESIGN.md §15): the largest
        // served allocation, at the largest jitter, still ends at least two
        // granules before the next slot's earliest coverage.
        let max_jitter = VRT_GRANULE - 8;
        assert!(max_jitter + VRT_MAX_ALLOC - VRT_GRANULE + VRT_SLOT_GAP <= VRT_HEAP_SLOT_STRIDE);
        assert_eq!(VRT_SLOT_GAP, 2 * VRT_GRANULE);
    }

    #[test]
    fn vrt_default_params_match_the_guest_layout() {
        // The hardware table's default watch ranges and granule are
        // hardcoded in rnr-vrt (it cannot depend on this crate); the kernel
        // and the hardware must agree on them.
        let p = rnr_vrt::VrtParams::default();
        assert_eq!(p.heap_lo, KHEAP_BASE);
        assert_eq!(p.heap_hi, KHEAP_END);
        assert_eq!(p.stack_lo, STACKS_BASE);
        assert_eq!(p.stack_hi, stack_top(MAX_THREADS - 1));
        assert_eq!(p.granule, VRT_GRANULE);
    }
}
