//! # rnr-guest: the guest microkernel and user runtime
//!
//! The paper's evaluation runs Linux guests; this crate provides the
//! substituted guest software stack (see DESIGN.md §2): a small
//! multithreaded kernel written in the `rnr-isa` assembly, deliberately
//! shaped so that **every false-positive source the paper enumerates arises
//! organically**:
//!
//! * A Linux-style `context_switch` that saves callee-saved registers,
//!   switches stack pointers at a single instruction
//!   ([`KernelImage::switch_sp_trap`], the hypervisor's interposition point,
//!   §5.2.1) and finishes with a **non-procedural return**
//!   ([`KernelImage::nonproc_ret`]) to one of three well-defined targets —
//!   resume, `ret_from_fork`, `ret_from_kthread` — the §4.4 whitelist case.
//! * Preemptive round-robin scheduling off a timer interrupt, blocking disk
//!   and network I/O, thread creation/kill **with ID reuse** (§5.2.2).
//! * A network driver whose packet copy is recursive
//!   (`pkt_copy_rec`), so large packets under load drive the RAS past its
//!   capacity — the *underflow* false positives Figure 8 reports for apache.
//! * A `setjmp`/`longjmp` pair in the user runtime (imperfect nesting,
//!   §4.5) and a kernel bug-recovery path that terminates the current
//!   thread, orphaning its RAS entries.
//! * A **vulnerable syscall** (`SYS_PROCMSG`) whose word-`strcpy` into a
//!   128-byte stack buffer has no bounds check — the §6/Figure 10 ROP
//!   attack surface — plus genuine utility functions whose epilogues supply
//!   the `pop r1; ret` / `ld r2,[r1]; ret` / `callr r2` gadgets.
//!
//! [`KernelBuilder`] assembles the kernel (optionally in paravirtual mode
//! for the `NoRecPV` baseline of Figure 5); [`KernelImage`] carries the
//! symbol contract the hypervisor needs (trap points, whitelist addresses,
//! introspection offsets). [`runtime`] emits the user-mode runtime
//! (syscall wrappers, `setjmp`/`longjmp`, compute kernels) into workload
//! images, and [`BootTable`] describes the initial thread set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boot;
mod kernel;
pub mod layout;
pub mod runtime;

pub use boot::{BootEntry, BootTable, ThreadKind};
pub use kernel::{KernelBuilder, KernelImage};
