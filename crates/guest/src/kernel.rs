//! The guest microkernel, assembled programmatically.
//!
//! See the crate docs for the design rationale. The kernel is deliberately
//! Linux-shaped where the paper depends on Linux details: a single
//! stack-switch instruction inside `context_switch` (the hypervisor's trap
//! point), a non-procedural return with exactly three legal targets, thread
//! ID reuse, and a recursive network-driver copy path.

use rnr_isa::{Addr, Assembler, Image, Reg};
use rnr_machine::{
    MachineConfig, DISK_CMD_READ, DISK_CMD_WRITE, MMIO_NIC_RX_LEN, MMIO_NIC_RX_POP, PORT_CONSOLE,
    PORT_DISK_ADDR, PORT_DISK_CMD, PORT_DISK_COUNT, PORT_DISK_SECTOR, PORT_NIC_TX_ADDR, PORT_NIC_TX_CMD,
    PORT_NIC_TX_LEN, PORT_RNG, PORT_VRT_BASE, PORT_VRT_CMD, PORT_VRT_LEN, VRT_CMD_DECLARE, VRT_CMD_RETIRE,
};
use rnr_ras::Whitelists;

use crate::layout::{self, state, sys, tcb};

use Reg::{R1, R15, R2, R3, R5, R6, R7, R8, R9};

const SP: Reg = Reg::SP;

/// Builds the guest kernel image.
///
/// ```
/// use rnr_guest::KernelBuilder;
/// let kernel = KernelBuilder::new().build();
/// assert!(kernel.image().len() > 0);
/// assert_eq!(kernel.whitelists().ret_len(), 1); // one non-procedural return
/// ```
#[derive(Debug, Clone, Default)]
pub struct KernelBuilder {
    pv: bool,
}

impl KernelBuilder {
    /// A builder for the standard (fully emulated I/O) kernel.
    pub fn new() -> KernelBuilder {
        KernelBuilder::default()
    }

    /// Selects paravirtual I/O (`vmcall`-based drivers) — the `NoRecPV`
    /// baseline of Figure 5(a). Recording requires hypervisor-mediated I/O,
    /// so PV kernels are never recorded.
    pub fn paravirtual(mut self, pv: bool) -> KernelBuilder {
        self.pv = pv;
        self
    }

    /// Assembles the kernel.
    ///
    /// # Panics
    ///
    /// Panics on internal assembly errors (undefined labels), which are
    /// kernel construction bugs.
    pub fn build(&self) -> KernelImage {
        let mut a = Assembler::new(layout::KERNEL_BASE);
        emit_boot(&mut a);
        emit_scheduler(&mut a);
        emit_thread_mgmt(&mut a);
        emit_syscall_entry(&mut a, self.pv);
        emit_syscall_handlers(&mut a);
        emit_pv_handlers(&mut a);
        emit_irq_handlers(&mut a);
        emit_net_queue(&mut a);
        emit_string_and_msg(&mut a);
        emit_heap(&mut a);
        emit_misc(&mut a);
        emit_data(&mut a, self.pv);
        let image = a.assemble().expect("kernel assembly must succeed");
        KernelImage { image, pv: self.pv }
    }
}

/// An assembled kernel plus the hypervisor's symbol contract.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct KernelImage {
    image: Image,
    pv: bool,
}

impl KernelImage {
    /// The raw binary image (loaded at [`layout::KERNEL_BASE`]).
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// True if this kernel uses paravirtual I/O.
    pub fn is_paravirtual(&self) -> bool {
        self.pv
    }

    /// Boot entry point.
    pub fn entry(&self) -> Addr {
        self.image.require_symbol("kernel_main")
    }

    /// The syscall entry point (programmed into the machine config).
    pub fn syscall_entry(&self) -> Addr {
        self.image.require_symbol("syscall_entry")
    }

    /// PC of the single stack-switch instruction inside `context_switch` —
    /// where the hypervisor sets its interposition trap (§5.2.1).
    pub fn switch_sp_trap(&self) -> Addr {
        self.image.require_symbol("cs_switch_sp")
    }

    /// PC of the non-procedural return ending a context switch (the one
    /// entry of the `RetWhitelist`, §4.4).
    pub fn nonproc_ret(&self) -> Addr {
        self.image.require_symbol("cs_nonproc_ret")
    }

    /// The three legal targets of the non-procedural return (`TarWhitelist`):
    /// resume an existing task, finish a fork, start a kernel thread.
    pub fn whitelist_targets(&self) -> [Addr; 3] {
        [
            self.image.require_symbol("resume_point"),
            self.image.require_symbol("ret_from_fork"),
            self.image.require_symbol("ret_from_kthread"),
        ]
    }

    /// The whitelists the hypervisor programs into the RAS hardware, found
    /// "by analyzing the binary image of the guest kernel" (§4.4).
    pub fn whitelists(&self) -> Whitelists {
        Whitelists::from_addrs([self.nonproc_ret()], self.whitelist_targets())
    }

    /// Trap PC for thread creation (next thread's ID is in `r1`).
    pub fn thread_create_trap(&self) -> Addr {
        self.image.require_symbol("thread_create_commit")
    }

    /// Trap PC for thread exit (dying thread's ID is in `r1`).
    pub fn thread_exit_trap(&self) -> Addr {
        self.image.require_symbol("thread_exit_commit")
    }

    /// Guest address of the `task_struct` array (introspection).
    pub fn task_structs(&self) -> Addr {
        self.image.require_symbol("task_structs")
    }

    /// Guest address of the `current` task pointer.
    pub fn current_ptr(&self) -> Addr {
        self.image.require_symbol("current")
    }

    /// Guest address of the privilege flag the §6 attack escalates.
    pub fn priv_flag(&self) -> Addr {
        self.image.require_symbol("priv_flag")
    }

    /// Guest address of the kernel function-pointer table (the attacker's
    /// source for the `grant_root` pointer).
    pub fn kfunc_table(&self) -> Addr {
        self.image.require_symbol("kfunc_table")
    }

    /// Address of the `grant_root` routine itself.
    pub fn grant_root(&self) -> Addr {
        self.image.require_symbol("grant_root")
    }

    /// Guest address of the kernel oops counter.
    pub fn oops_count(&self) -> Addr {
        self.image.require_symbol("oops_count")
    }

    /// Address of the vulnerable `proc_msg` routine (for reports).
    pub fn proc_msg(&self) -> Addr {
        self.image.require_symbol("proc_msg")
    }

    /// A machine configuration wired to this kernel (syscall entry set).
    pub fn machine_config(&self) -> MachineConfig {
        MachineConfig { syscall_entry: self.syscall_entry(), ..MachineConfig::default() }
    }
}

fn zero(a: &mut Assembler, r: Reg) {
    a.movi(r, 0);
}

fn load_global(a: &mut Assembler, rd: Reg, label: &str) {
    a.lea(R15, label);
    a.ld(rd, R15, 0);
}

fn store_global_reg(a: &mut Assembler, label: &str, rs: Reg) {
    a.lea(R15, label);
    a.st(R15, 0, rs);
}

fn emit_boot(a: &mut Assembler) {
    a.label("kernel_main");
    // Boot stack: slot 0 (the idle/boot thread).
    a.movi(SP, layout::stack_top(0) as i32);
    // task_structs[0] = { state: RUNNABLE, tid: 1, kind: kernel }.
    a.lea(R5, "task_structs");
    a.movi(R6, state::RUNNABLE as i32);
    a.st(R5, tcb::STATE, R6);
    a.movi(R6, 1);
    a.st(R5, tcb::TID, R6);
    a.st(R5, tcb::KIND, R6);
    store_global_reg(a, "current", R5);
    // Install the IVT.
    a.movi(R5, MachineConfig::DEFAULT_IVT as i32);
    a.lea(R6, "irq_timer");
    a.st(R5, 0, R6);
    a.lea(R6, "irq_disk");
    a.st(R5, 8, R6);
    a.lea(R6, "irq_nic");
    a.st(R5, 16, R6);
    // Spawn the boot-table threads. r10..r12 are free in the boot context.
    a.movi(Reg::R10, layout::BOOT_TABLE as i32);
    a.ld(Reg::R11, Reg::R10, 0); // count
    zero(a, Reg::R12); // i
    a.label("boot_loop");
    a.bgeu(Reg::R12, Reg::R11, "boot_done");
    a.muli(R5, Reg::R12, 16);
    a.add(R5, R5, Reg::R10);
    a.ld(R1, R5, 8); // entry
    a.ld(R2, R5, 16); // kind
    a.call("thread_create");
    a.addi(Reg::R12, Reg::R12, 1);
    a.jmp("boot_loop");
    a.label("boot_done");
    a.sti();
    a.label("idle_loop");
    a.hlt();
    a.jmp("idle_loop");
}

fn emit_scheduler(a: &mut Assembler) {
    // schedule(): pick the next runnable thread round-robin; slot 0 (idle)
    // runs only when nothing else can. Clobbers r1-r3, r5-r9, r15.
    a.label("schedule");
    a.cli();
    load_global(a, R1, "current"); // prev tcb
    a.lea(R5, "task_structs");
    a.sub(R6, R1, R5);
    a.movi(R7, layout::TCB_STRIDE as i32);
    a.divu(R6, R6, R7); // prev slot
    a.movi(R7, 1); // i
    a.label("sched_scan");
    a.movi(R8, layout::MAX_THREADS as i32);
    a.bgeu(R7, R8, "sched_no_other");
    a.add(R9, R6, R7); // s = slot + i
    a.divu(R2, R9, R8);
    a.muli(R2, R2, layout::MAX_THREADS as i32);
    a.sub(R9, R9, R2); // s %= MAX
    zero(a, R8);
    a.beq(R9, R8, "sched_next_i"); // never pick idle in the scan
    a.muli(R2, R9, layout::TCB_STRIDE as i32);
    a.add(R2, R2, R5); // candidate tcb
    a.ld(R8, R2, tcb::STATE);
    a.movi(R3, state::RUNNABLE as i32);
    a.beq(R8, R3, "sched_check");
    a.label("sched_next_i");
    a.addi(R7, R7, 1);
    a.jmp("sched_scan");
    a.label("sched_no_other");
    // Nothing else runnable: keep running prev if it still can, else idle.
    a.ld(R8, R1, tcb::STATE);
    a.movi(R3, state::RUNNABLE as i32);
    a.beq(R8, R3, "sched_same");
    a.mov(R2, R5); // &task_structs[0]: the idle thread
    a.label("sched_check");
    a.beq(R2, R1, "sched_same");
    store_global_reg(a, "current", R2);
    a.jmp("context_switch");
    a.label("sched_same");
    a.sti();
    a.ret();

    // context_switch(r1 = prev tcb, r2 = next tcb). Reached by JUMP, not
    // call: the final `ret` has no matching call — the paper's
    // non-procedural return (§4.4).
    a.label("context_switch");
    a.push(Reg::R10);
    a.push(Reg::R11);
    a.push(Reg::R12);
    a.push(Reg::R13);
    a.lea(R15, "resume_point");
    a.push(R15); // manual return-address push: no RAS entry
    a.st(R1, tcb::SP, SP);
    a.ld(R15, R2, tcb::SP);
    a.label("cs_switch_sp");
    a.mov(SP, R15); // THE stack-switch instruction: hypervisor trap point
    a.label("cs_nonproc_ret");
    a.ret(); // whitelisted: resume_point | ret_from_fork | ret_from_kthread
    a.label("resume_point");
    a.pop(Reg::R13);
    a.pop(Reg::R12);
    a.pop(Reg::R11);
    a.pop(Reg::R10);
    a.sti();
    a.ret();

    // First activation of a forked user thread.
    a.label("ret_from_fork");
    load_global(a, R15, "current");
    a.ld(R5, R15, tcb::ENTRY);
    a.sti();
    a.push(R5); // sysret target
    a.movi(R6, 3); // flags: user mode | interrupts enabled
    a.push(R6);
    a.sysret();

    // First activation of a kernel thread.
    a.label("ret_from_kthread");
    load_global(a, R15, "current");
    a.ld(R5, R15, tcb::ENTRY);
    a.sti();
    a.jmpr(R5);
}

fn emit_thread_mgmt(a: &mut Assembler) {
    // thread_create(r1 = entry, r2 = kind) -> r1 = tid | -1.
    a.label("thread_create");
    a.lea(R15, "task_structs");
    a.movi(R5, 1); // slot
    a.label("tc_scan");
    a.movi(R6, layout::MAX_THREADS as i32);
    a.bgeu(R5, R6, "tc_fail");
    a.muli(R6, R5, layout::TCB_STRIDE as i32);
    a.add(R6, R6, R15); // &ts[slot]
    a.ld(R7, R6, tcb::STATE);
    zero(a, R8);
    a.beq(R7, R8, "tc_found");
    a.addi(R5, R5, 1);
    a.jmp("tc_scan");
    a.label("tc_found");
    a.addi(R9, R5, 1); // tid = slot + 1 (IDs are reused, §5.2.2)
    a.st(R6, tcb::TID, R9);
    a.st(R6, tcb::ENTRY, R1);
    a.st(R6, tcb::KIND, R2);
    // Craft the initial stack: one word, the non-procedural return target.
    a.muli(R7, R9, layout::STACK_SIZE as i32); // (slot + 1) * STACK_SIZE
    a.movi(R8, layout::STACKS_BASE as i32);
    a.add(R7, R7, R8);
    a.addi(R7, R7, -8);
    zero(a, R8);
    a.bne(R2, R8, "tc_kthread");
    a.lea(R8, "ret_from_fork");
    a.jmp("tc_stack");
    a.label("tc_kthread");
    a.lea(R8, "ret_from_kthread");
    a.label("tc_stack");
    a.st(R7, 0, R8);
    a.st(R6, tcb::SP, R7);
    a.movi(R8, state::RUNNABLE as i32);
    a.st(R6, tcb::STATE, R8);
    a.mov(R1, R9);
    a.label("thread_create_commit"); // hypervisor trap: r1 = new tid
    a.nop();
    a.ret();
    a.label("tc_fail");
    a.movi(R1, -1);
    a.ret();

    // sys_exit: free the slot, notify the hypervisor, schedule away.
    // Runs with interrupts disabled so the free/notify/switch sequence is
    // atomic — a preemption after `state = FREE` would abandon the thread
    // before the hypervisor's exit trap fires.
    a.label("sys_exit");
    a.cli();
    load_global(a, R5, "current");
    a.ld(R1, R5, tcb::TID);
    zero(a, R6);
    a.st(R5, tcb::STATE, R6);
    a.label("thread_exit_commit"); // hypervisor trap: r1 = dying tid
    a.nop();
    a.call("schedule"); // never returns (thread is not runnable)
    a.label("exit_spin");
    a.jmp("exit_spin");
}

fn emit_syscall_entry(a: &mut Assembler, _pv: bool) {
    a.label("syscall_entry");
    // The hardware leaves the syscall number in the scratch register r15.
    a.movi(R5, sys::COUNT as i32);
    a.bgeu(R15, R5, "sys_bad");
    a.push(R1); // preserve arg 1 across the table walk
    a.call("kaudit_enter"); // accounting helper chain (Linux-like call depth)
    a.lea(R1, "syscall_table");
    a.muli(R5, R15, 8);
    a.add(R1, R1, R5); // &table[nr]
    a.call("fetch_handler"); // r9 = handler
    a.pop(R1);
    a.callr(R9); // dispatch (genuine indirect call; also the G3 gadget)
    a.push(R1); // preserve the handler's return value
    a.call("kaudit_exit");
    a.pop(R1);
    a.sysret();
    a.label("sys_bad");
    a.movi(R1, -1);
    a.sysret();

    // fetch_handler(r1 = table slot) -> r9. Its body is the G2 gadget
    // (`ld r9,[r1]; ret`) of the Figure 10 chain.
    a.label("fetch_handler");
    a.ld(R9, R1, 0);
    a.ret();

    // Syscall accounting: a small helper-call chain on entry and exit,
    // standing in for the audit/tracing/refcount call depth of a real
    // kernel's syscall path (this density drives Figure 9's alarm-replay
    // slowdown). Clobbers r5-r8 only.
    a.label("kaudit_enter");
    a.call("kstat_bump");
    a.call("kquota_note");
    a.call("kctx_note");
    a.ret();
    a.label("kaudit_exit");
    a.call("kstat_bump");
    a.call("kctx_note");
    a.ret();
    a.label("kstat_bump");
    a.call("kstat_inc");
    a.call("kstat_sync");
    a.ret();
    a.label("kstat_inc");
    a.lea(R8, "kstat_syscalls");
    a.ld(R5, R8, 0);
    a.addi(R5, R5, 1);
    a.st(R8, 0, R5);
    a.ret();
    a.label("kstat_sync");
    a.lea(R8, "kstat_syscalls");
    a.ld(R5, R8, 0);
    a.andi(R5, R5, 0xff);
    a.ret();
    a.label("kquota_note");
    a.call("kstat_bump");
    a.lea(R8, "kstat_syscalls");
    a.ld(R5, R8, 0);
    a.andi(R5, R5, 0x3f);
    a.ret();
    a.label("kctx_note");
    a.call("kstat_bump");
    a.lea(R8, "load_avg");
    a.ld(R5, R8, 0);
    a.shri(R5, R5, 1);
    a.ret();
}

fn emit_syscall_handlers(a: &mut Assembler) {
    // sys_yield.
    a.label("sys_yield");
    a.call("schedule");
    a.movi(R1, 0);
    a.ret();

    // sys_gettime: the trapped-and-logged rdtsc of Figure 5(b).
    a.label("sys_gettime");
    a.rdtsc(R1);
    a.ret();

    // sys_rand: hardware random source (non-deterministic, logged).
    a.label("sys_rand");
    a.pio_in(R1, PORT_RNG);
    a.ret();

    // sys_log(r1 = byte).
    a.label("sys_log");
    a.pio_out(PORT_CONSOLE, R1);
    a.movi(R1, 0);
    a.ret();

    // sys_getpid.
    a.label("sys_getpid");
    load_global(a, R5, "current");
    a.ld(R1, R5, tcb::TID);
    a.ret();

    // sys_spawn(r1 = entry, r2 = kind).
    a.label("sys_spawn");
    a.call("thread_create");
    a.ret();

    // sys_read(r1 = sector, r2 = buf, r3 = count): acquire the controller
    // (one operation in flight), program it, block until the completion
    // interrupt. The claim/submit/block sequence runs with interrupts
    // disabled to exclude lost wakeups; `schedule`'s resume path re-enables.
    a.label("sys_read");
    a.push(R1);
    a.mov(R1, R2);
    a.call("validate_buf");
    a.pop(R1);
    a.movi(R9, DISK_CMD_READ as i32);
    a.jmp("disk_claim");

    // sys_write: same flow, write command.
    a.label("sys_write");
    a.push(R1);
    a.mov(R1, R2);
    a.call("validate_buf");
    a.pop(R1);
    a.movi(R9, DISK_CMD_WRITE as i32);
    a.label("disk_claim");
    a.cli();
    load_global(a, R5, "disk_busy");
    zero(a, R6);
    a.beq(R5, R6, "disk_claimed");
    // Controller busy: sleep on the disk wait queue; the completion
    // interrupt wakes every disk waiter and we retry the claim. The request
    // registers must survive the scheduler.
    a.push(R1);
    a.push(R2);
    a.push(R3);
    a.push(R9);
    load_global(a, R5, "current");
    a.movi(R6, state::BLOCKED as i32);
    a.st(R5, tcb::STATE, R6);
    a.movi(R6, layout::wait::DISK as i32);
    a.st(R5, tcb::WAIT, R6);
    a.call("schedule"); // re-enables interrupts on resume
    a.pop(R9);
    a.pop(R3);
    a.pop(R2);
    a.pop(R1);
    a.jmp("disk_claim");
    a.label("disk_claimed");
    a.movi(R6, 1);
    store_global_reg(a, "disk_busy", R6);
    // Register as the waiter and block BEFORE submitting, still under cli,
    // so the completion interrupt can never race the block.
    load_global(a, R5, "current");
    a.movi(R6, state::BLOCKED as i32);
    a.st(R5, tcb::STATE, R6);
    a.movi(R6, layout::wait::DISK as i32);
    a.st(R5, tcb::WAIT, R6);
    store_global_reg(a, "disk_waiter", R5);
    a.mov(R5, R9);
    a.call("disk_submit");
    a.call("schedule");
    a.movi(R1, 0);
    a.ret();

    // disk_submit(r1 = sector, r2 = buf, r3 = count, r5 = command).
    a.label("disk_submit");
    a.pio_out(PORT_DISK_SECTOR, R1);
    a.pio_out(PORT_DISK_ADDR, R2);
    a.pio_out(PORT_DISK_COUNT, R3);
    a.pio_out(PORT_DISK_CMD, R5);
    a.ret();

    // sys_netrecv(r1 = dst buffer) -> r1 = frame length. The empty-check
    // and block are atomic w.r.t. the NIC interrupt (cli), and the NIC
    // handler wakes *all* net waiters, so multiple server threads can block
    // here concurrently.
    a.label("sys_netrecv");
    a.push(Reg::R10);
    a.mov(Reg::R10, R1);
    a.label("nr_loop");
    a.cli();
    a.mov(R1, Reg::R10);
    a.call("pktq_get");
    a.movi(R5, -1);
    a.bne(R1, R5, "nr_done");
    load_global(a, R5, "current");
    a.movi(R6, state::BLOCKED as i32);
    a.st(R5, tcb::STATE, R6);
    a.movi(R6, layout::wait::NET as i32);
    a.st(R5, tcb::WAIT, R6);
    a.call("schedule");
    a.jmp("nr_loop");
    a.label("nr_done");
    a.sti();
    a.pop(Reg::R10);
    a.ret();

    // sys_nettx(r1 = buf, r2 = len): fire-and-forget transmit.
    a.label("sys_nettx");
    a.push(R1);
    a.mov(R1, R2);
    a.call("validate_buf");
    a.pop(R1);
    a.pio_out(PORT_NIC_TX_ADDR, R1);
    a.pio_out(PORT_NIC_TX_LEN, R2);
    a.movi(R5, 1);
    a.pio_out(PORT_NIC_TX_CMD, R5);
    a.movi(R1, 0);
    a.ret();

    // sys_procmsg(r1 = message): the vulnerable path of §6.
    a.label("sys_procmsg");
    a.call("proc_msg");
    a.movi(R1, 0);
    a.ret();

    // sys_oops: exercise the kernel bug-recovery path.
    a.label("sys_oops");
    a.jmp("kassert_fail");

    // validate_buf(r1 = addr): cheap range check (helper-call density).
    a.label("validate_buf");
    a.movi(R5, 0x40_0000);
    a.bltu(R1, R5, "vb_ok");
    a.movi(R1, 0);
    a.label("vb_ok");
    a.ret();
}

fn emit_pv_handlers(a: &mut Assembler) {
    // Paravirtual variants: one vmcall replaces the PIO/MMIO dance.
    a.label("sys_read_pv");
    a.mov(Reg::R4, R3);
    a.mov(R3, R2);
    a.mov(R2, R1);
    a.movi(R1, layout::pv::DISK_READ as i32);
    a.vmcall();
    a.ret();

    a.label("sys_write_pv");
    a.mov(Reg::R4, R3);
    a.mov(R3, R2);
    a.mov(R2, R1);
    a.movi(R1, layout::pv::DISK_WRITE as i32);
    a.vmcall();
    a.ret();

    a.label("sys_netrecv_pv");
    a.push(Reg::R10);
    a.mov(Reg::R10, R1);
    a.label("nrp_loop");
    a.movi(R1, layout::pv::NET_RECV as i32);
    a.mov(R2, Reg::R10);
    a.vmcall(); // blocking poll: hypervisor advances virtual time
    a.movi(R5, -1);
    a.bne(R1, R5, "nrp_done");
    a.call("schedule");
    a.jmp("nrp_loop");
    a.label("nrp_done");
    a.pop(Reg::R10);
    a.ret();

    a.label("sys_nettx_pv");
    a.mov(R3, R2);
    a.mov(R2, R1);
    a.movi(R1, layout::pv::NET_TX as i32);
    a.vmcall();
    a.ret();
}

/// Registers interrupt handlers save around their body (they interrupt
/// arbitrary code, so every clobbered register must be preserved).
const IRQ_SAVED: [Reg; 10] = [R1, R2, R3, Reg::R4, R5, R6, R7, R8, R9, R15];

fn irq_prologue(a: &mut Assembler) {
    for r in IRQ_SAVED {
        a.push(r);
    }
}

fn irq_epilogue(a: &mut Assembler) {
    for r in IRQ_SAVED.iter().rev() {
        a.pop(*r);
    }
    a.iret();
}

fn emit_irq_handlers(a: &mut Assembler) {
    // Timer: bookkeeping + preemptive round-robin.
    a.label("irq_timer");
    irq_prologue(a);
    a.lea(R15, "tick_count");
    a.ld(R5, R15, 0);
    a.addi(R5, R5, 1);
    a.st(R15, 0, R5);
    a.call("timer_tick_work");
    a.call("schedule");
    irq_epilogue(a);

    a.label("timer_tick_work");
    a.call("update_load");
    a.call("check_quota");
    a.ret();

    a.label("update_load");
    a.lea(R15, "load_avg");
    a.ld(R5, R15, 0);
    a.shri(R6, R5, 3);
    a.sub(R5, R5, R6);
    a.addi(R5, R5, 16);
    a.st(R15, 0, R5);
    a.ret();

    a.label("check_quota");
    a.lea(R15, "tick_count");
    a.ld(R5, R15, 0);
    a.andi(R5, R5, 0xff);
    a.ret();

    // Disk completion: release the controller and wake every thread on the
    // disk wait queue (the operation's owner plus queued claimers).
    a.label("irq_disk");
    irq_prologue(a);
    zero(a, R6);
    store_global_reg(a, "disk_waiter", R6);
    store_global_reg(a, "disk_busy", R6);
    a.lea(R5, "task_structs");
    zero(a, R6); // slot
    a.label("id_scan");
    a.movi(R7, layout::MAX_THREADS as i32);
    a.bgeu(R6, R7, "id_done");
    a.muli(R7, R6, layout::TCB_STRIDE as i32);
    a.add(R7, R7, R5);
    a.ld(R8, R7, tcb::STATE);
    a.movi(R9, state::BLOCKED as i32);
    a.bne(R8, R9, "id_next");
    a.ld(R8, R7, tcb::WAIT);
    a.movi(R9, layout::wait::DISK as i32);
    a.bne(R8, R9, "id_next");
    zero(a, R8);
    a.st(R7, tcb::WAIT, R8);
    a.movi(R8, state::RUNNABLE as i32);
    a.st(R7, tcb::STATE, R8);
    a.label("id_next");
    a.addi(R6, R6, 1);
    a.jmp("id_scan");
    a.label("id_done");
    a.call("schedule");
    irq_epilogue(a);

    // NIC receive: read the frame length over MMIO (logged), copy the
    // mailbox into the kernel packet queue — recursively, which is what
    // drives RAS underflows under heavy network load (Figure 8, apache) —
    // pop the mailbox, wake the waiter.
    a.label("irq_nic");
    irq_prologue(a);
    a.movi64(R5, MMIO_NIC_RX_LEN);
    a.ld(R6, R5, 0); // MMIO read: VM exit, value logged
    a.movi(R1, layout::NIC_RX_BUF as i32);
    a.mov(R2, R6);
    a.call("pktq_put");
    a.movi64(R5, MMIO_NIC_RX_POP);
    a.movi(R6, 1);
    a.st(R5, 0, R6); // MMIO write: pops the device mailbox
                     // Wake every thread blocked on the network (several server workers may
                     // be waiting at once).
    a.lea(R5, "task_structs");
    zero(a, R6); // slot
    a.label("in_scan");
    a.movi(R7, layout::MAX_THREADS as i32);
    a.bgeu(R6, R7, "in_done");
    a.muli(R7, R6, layout::TCB_STRIDE as i32);
    a.add(R7, R7, R5); // &ts[slot]
    a.ld(R8, R7, tcb::STATE);
    a.movi(R9, state::BLOCKED as i32);
    a.bne(R8, R9, "in_next");
    a.ld(R8, R7, tcb::WAIT);
    a.movi(R9, layout::wait::NET as i32);
    a.bne(R8, R9, "in_next");
    zero(a, R8);
    a.st(R7, tcb::WAIT, R8);
    a.movi(R8, state::RUNNABLE as i32);
    a.st(R7, tcb::STATE, R8);
    a.label("in_next");
    a.addi(R6, R6, 1);
    a.jmp("in_scan");
    a.label("in_done");
    a.call("schedule");
    irq_epilogue(a);
}

fn emit_net_queue(a: &mut Assembler) {
    const SLOT_STRIDE: i32 = 8 + layout::NIC_MTU as i32; // len word + data

    // pktq_put(r1 = src, r2 = len): enqueue a frame. Saves/restores its
    // first argument — the `pop r1; ret` epilogue is the G1 gadget.
    a.label("pktq_put");
    a.push(R1);
    a.lea(R15, "pktq_head");
    a.ld(R5, R15, 0); // head
    a.ld(R6, R15, 8); // tail
    a.sub(R7, R6, R5);
    a.movi(R8, 8);
    a.bgeu(R7, R8, "pp_out"); // queue full: drop
    a.divu(R9, R6, R8);
    a.muli(R9, R9, 8);
    a.sub(R9, R6, R9); // tail % 8
    a.muli(R9, R9, SLOT_STRIDE);
    a.lea(R8, "pktq_slots");
    a.add(R9, R9, R8); // &slot
    a.st(R9, 0, R2); // length
    a.mov(R3, R2);
    a.addi(R2, R9, 8); // dst
    a.call("pkt_copy_rec");
    a.lea(R15, "pktq_head");
    a.ld(R6, R15, 8);
    a.addi(R6, R6, 1);
    a.st(R15, 8, R6); // tail++
    a.label("pp_out");
    a.pop(R1);
    a.ret();

    // pkt_copy_rec(r1 = src, r2 = dst, r3 = len): 32 bytes per frame, then
    // recurse. `len` is always a multiple of 32 (the device pads frames).
    a.label("pkt_copy_rec");
    zero(a, R5);
    a.beq(R3, R5, "pcr_done");
    for off in (0..32).step_by(8) {
        a.ld(R5, R1, off);
        a.st(R2, off, R5);
    }
    a.addi(R1, R1, 32);
    a.addi(R2, R2, 32);
    a.addi(R3, R3, -32);
    a.call("pkt_copy_rec");
    a.label("pcr_done");
    a.ret();

    // pktq_get(r1 = dst) -> r1 = len | -1: dequeue into a caller buffer.
    a.label("pktq_get");
    a.lea(R15, "pktq_head");
    a.ld(R5, R15, 0); // head
    a.ld(R6, R15, 8); // tail
    a.beq(R5, R6, "pg_empty");
    a.movi(R7, 8);
    a.divu(R8, R5, R7);
    a.muli(R8, R8, 8);
    a.sub(R8, R5, R8); // head % 8
    a.muli(R8, R8, SLOT_STRIDE);
    a.lea(R7, "pktq_slots");
    a.add(R8, R8, R7); // &slot
    a.ld(R3, R8, 0); // len
    a.addi(R2, R8, 8); // src
    a.push(R3);
    a.call("kmemcpy");
    a.pop(R3);
    a.lea(R15, "pktq_head");
    a.ld(R5, R15, 0);
    a.addi(R5, R5, 1);
    a.st(R15, 0, R5); // head++
    a.mov(R1, R3);
    a.ret();
    a.label("pg_empty");
    a.movi(R1, -1);
    a.ret();

    // kmemcpy(r1 = dst, r2 = src, r3 = len): iterative word copy;
    // preserves its arguments.
    a.label("kmemcpy");
    zero(a, R5);
    a.label("km_loop");
    a.bgeu(R5, R3, "km_done");
    a.add(R6, R2, R5);
    a.ld(R7, R6, 0);
    a.add(R6, R1, R5);
    a.st(R6, 0, R7);
    a.addi(R5, R5, 8);
    a.jmp("km_loop");
    a.label("km_done");
    a.ret();
}

fn emit_string_and_msg(a: &mut Assembler) {
    // kstrcpy(r1 = dst, r2 = src): word-at-a-time copy, stops after the
    // first zero word. NO BOUNDS CHECK — the §6 vulnerability.
    a.label("kstrcpy");
    zero(a, R6);
    a.label("ks_loop");
    a.ld(R5, R2, 0);
    a.st(R1, 0, R5);
    a.beq(R5, R6, "ks_done");
    a.addi(R1, R1, 8);
    a.addi(R2, R2, 8);
    a.jmp("ks_loop");
    a.label("ks_done");
    a.ret();

    // proc_msg(r1 = message): copies into a 128-byte stack buffer, then
    // digests it. This is the `Vulnerable` procedure of Figure 10.
    a.label("proc_msg");
    a.addi(SP, SP, -128);
    a.mov(R2, R1); // src
    a.mov(R1, SP); // dst: the stack buffer
    a.call("kstrcpy");
    a.mov(R1, SP);
    a.call("msg_digest");
    a.addi(SP, SP, 128);
    a.ret(); // return address sits right above the buffer

    // msg_digest(r1 = buf) -> r1: xor of the 16 buffer words.
    a.label("msg_digest");
    zero(a, R5);
    zero(a, R6);
    a.movi(R7, 128);
    a.label("md_loop");
    a.bgeu(R6, R7, "md_done");
    a.add(R8, R1, R6);
    a.ld(R9, R8, 0);
    a.xor(R5, R5, R9);
    a.addi(R6, R6, 8);
    a.jmp("md_loop");
    a.label("md_done");
    a.mov(R1, R5);
    a.ret();
}

fn emit_heap(a: &mut Assembler) {
    // The kernel heap (DESIGN.md §15): a fixed-stride slot allocator over
    // [KHEAP_BASE, KHEAP_END). Each live allocation is recorded twice — in
    // the *precise* allocation table the alarm replayer introspects, and in
    // the bounded/rounded hardware VRT via the doorbell ports. Bases carry a
    // deterministic sub-granule jitter so allocations start mid-granule,
    // exercising the VRT's coarse-bounds rounding on benign edge writes.

    // sys_alloc(r1 = len) -> r1 = base, or -1 on bad length / heap full.
    a.label("sys_alloc");
    a.movi(R5, 1);
    a.bltu(R1, R5, "al_bad"); // len == 0
    a.movi(R5, (layout::VRT_MAX_ALLOC - layout::VRT_GRANULE) as i32 + 1);
    a.bgeu(R1, R5, "al_bad"); // too big for a slot (jitter included)
    a.cli();
    // jitter = (alloc_seq++ * 8) & (GRANULE - 8): 0,8,...,56.
    a.lea(R8, "alloc_seq");
    a.ld(R6, R8, 0);
    a.addi(R7, R6, 1);
    a.st(R8, 0, R7);
    a.muli(R6, R6, 8);
    a.andi(R6, R6, (layout::VRT_GRANULE - 8) as i32);
    // First-fit scan of the precise table (len word == 0 means free).
    a.movi(R5, layout::VRT_ALLOC_TABLE as i32); // entry pointer
    zero(a, R7); // slot index
    a.label("al_scan");
    a.movi(R8, layout::VRT_HEAP_SLOTS as i32);
    a.bgeu(R7, R8, "al_full");
    a.ld(R8, R5, 8);
    zero(a, R9);
    a.beq(R8, R9, "al_found");
    a.addi(R5, R5, 16);
    a.addi(R7, R7, 1);
    a.jmp("al_scan");
    a.label("al_found");
    // base = KHEAP_BASE + slot * STRIDE + jitter.
    a.muli(R8, R7, layout::VRT_HEAP_SLOT_STRIDE as i32);
    a.movi(R9, layout::KHEAP_BASE as i32);
    a.add(R8, R8, R9);
    a.add(R8, R8, R6);
    // Precise table entry, then the hardware doorbell.
    a.st(R5, 0, R8);
    a.st(R5, 8, R1);
    a.pio_out(PORT_VRT_BASE, R8);
    a.pio_out(PORT_VRT_LEN, R1);
    a.movi(R9, VRT_CMD_DECLARE as i32);
    a.pio_out(PORT_VRT_CMD, R9);
    a.sti();
    a.mov(R1, R8);
    a.ret();
    a.label("al_full");
    a.sti();
    a.label("al_bad");
    a.movi(R1, -1);
    a.ret();

    // sys_free(r1 = base): clear the precise-table entry and retire the
    // hardware VRT entry. Unknown bases (double free, never allocated) are
    // ignored — the retire doorbell is a no-op for evicted entries anyway.
    a.label("sys_free");
    a.cli();
    a.movi(R5, layout::VRT_ALLOC_TABLE as i32);
    zero(a, R7);
    a.label("fr_scan");
    a.movi(R8, layout::VRT_HEAP_SLOTS as i32);
    a.bgeu(R7, R8, "fr_done");
    a.ld(R8, R5, 0);
    a.bne(R8, R1, "fr_next");
    a.ld(R8, R5, 8);
    zero(a, R9);
    a.beq(R8, R9, "fr_next"); // stale base in a freed slot
    zero(a, R8);
    a.st(R5, 0, R8);
    a.st(R5, 8, R8);
    a.pio_out(PORT_VRT_BASE, R1);
    a.movi(R9, VRT_CMD_RETIRE as i32);
    a.pio_out(PORT_VRT_CMD, R9);
    a.jmp("fr_done");
    a.label("fr_next");
    a.addi(R5, R5, 16);
    a.addi(R7, R7, 1);
    a.jmp("fr_scan");
    a.label("fr_done");
    a.sti();
    a.movi(R1, 0);
    a.ret();
}

fn emit_misc(a: &mut Assembler) {
    // grant_root: privilege escalation target of the §6 attack. Reachable
    // only through the kernel function table.
    a.label("grant_root");
    a.lea(R15, "priv_flag");
    a.movi(R5, 0x1337);
    a.st(R15, 0, R5);
    a.ret();

    // kassert_fail: recoverable-bug path — terminate the current thread,
    // orphaning its RAS entries (§4.1's imperfect-nesting source).
    a.label("kassert_fail");
    a.cli();
    a.movi(R5, b'!' as i32);
    a.pio_out(PORT_CONSOLE, R5);
    a.lea(R15, "oops_count");
    a.ld(R5, R15, 0);
    a.addi(R5, R5, 1);
    a.st(R15, 0, R5);
    load_global(a, R5, "current");
    a.ld(R1, R5, tcb::TID);
    zero(a, R6);
    a.st(R5, tcb::STATE, R6);
    a.jmp("thread_exit_commit");
}

fn emit_data(a: &mut Assembler, pv: bool) {
    a.align(8);
    a.label("current");
    a.word(0);
    a.label("tick_count");
    a.word(0);
    a.label("load_avg");
    a.word(0);
    a.label("kstat_syscalls");
    a.word(0);
    a.label("disk_waiter");
    a.word(0);
    a.label("disk_busy");
    a.word(0);
    a.label("oops_count");
    a.word(0);
    a.label("alloc_seq");
    a.word(0);
    a.label("priv_flag");
    a.word(0);
    // Packet queue: head, tail, then 8 slots of (len, data[MTU]).
    a.label("pktq_head");
    a.word(0);
    a.word(0); // tail, at pktq_head + 8
    a.label("pktq_slots");
    a.space(8 * (8 + layout::NIC_MTU));
    // Task structs.
    a.label("task_structs");
    a.space(layout::MAX_THREADS * layout::TCB_STRIDE as usize);
    // Syscall dispatch table, indexed by syscall number.
    a.label("syscall_table");
    a.word_label("sys_exit");
    a.word_label("sys_yield");
    a.word_label(if pv { "sys_read_pv" } else { "sys_read" });
    a.word_label(if pv { "sys_write_pv" } else { "sys_write" });
    a.word_label(if pv { "sys_netrecv_pv" } else { "sys_netrecv" });
    a.word_label(if pv { "sys_nettx_pv" } else { "sys_nettx" });
    a.word_label("sys_gettime");
    a.word_label("sys_spawn");
    a.word_label("sys_log");
    a.word_label("sys_rand");
    a.word_label("sys_getpid");
    a.word_label("sys_procmsg");
    a.word_label("sys_oops");
    a.word_label("sys_alloc");
    a.word_label("sys_free");
    // Kernel service registry (the attacker's pointer source).
    a.label("kfunc_table");
    a.word_label("grant_root");
    a.word_label("kassert_fail");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnr_isa::{Instruction, Opcode};

    #[test]
    fn kernel_assembles_with_contract_symbols() {
        let k = KernelBuilder::new().build();
        assert!(k.image().len() > 4096);
        // All contract symbols resolve.
        let _ = (
            k.entry(),
            k.syscall_entry(),
            k.switch_sp_trap(),
            k.nonproc_ret(),
            k.whitelist_targets(),
            k.thread_create_trap(),
            k.thread_exit_trap(),
            k.task_structs(),
            k.current_ptr(),
            k.priv_flag(),
            k.kfunc_table(),
            k.grant_root(),
            k.oops_count(),
            k.proc_msg(),
        );
    }

    #[test]
    fn nonproc_ret_is_a_ret_instruction() {
        let k = KernelBuilder::new().build();
        let insn = k.image().decode_at(k.nonproc_ret()).unwrap();
        assert_eq!(insn.op, Opcode::Ret);
    }

    #[test]
    fn switch_sp_trap_moves_into_sp() {
        let k = KernelBuilder::new().build();
        let insn = k.image().decode_at(k.switch_sp_trap()).unwrap();
        assert_eq!(insn.op, Opcode::Mov);
        assert_eq!(insn.rd, Reg::SP);
        assert_eq!(insn.rs1, Reg::R15);
    }

    #[test]
    fn whitelists_have_one_ret_three_targets() {
        let k = KernelBuilder::new().build();
        let wl = k.whitelists();
        assert_eq!(wl.ret_len(), 1);
        assert_eq!(wl.target_len(), 3);
        assert!(wl.is_whitelisted_ret(k.nonproc_ret()));
        for t in k.whitelist_targets() {
            assert!(wl.is_whitelisted_target(t));
        }
    }

    #[test]
    fn syscall_table_points_at_handlers() {
        let k = KernelBuilder::new().build();
        let table = k.image().require_symbol("syscall_table");
        let base = k.image().base();
        let bytes = k.image().bytes();
        let slot = |i: u64| {
            let off = (table - base + i * 8) as usize;
            u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
        };
        assert_eq!(slot(sys::GETTIME as u64), k.image().require_symbol("sys_gettime"));
        assert_eq!(slot(sys::PROCMSG as u64), k.image().require_symbol("sys_procmsg"));
        // Every slot decodes to real code (first instruction decodes).
        for i in 0..sys::COUNT as u64 {
            let target = slot(i);
            assert!(Instruction::decode(&bytes[(target - base) as usize..]).is_ok());
        }
    }

    #[test]
    fn pv_kernel_swaps_io_handlers() {
        let std = KernelBuilder::new().build();
        let pv = KernelBuilder::new().paravirtual(true).build();
        assert!(pv.is_paravirtual());
        let slot = |k: &KernelImage, i: u32| {
            let table = k.image().require_symbol("syscall_table");
            let off = (table - k.image().base() + i as u64 * 8) as usize;
            u64::from_le_bytes(k.image().bytes()[off..off + 8].try_into().unwrap())
        };
        assert_eq!(slot(&pv, sys::READ), pv.image().require_symbol("sys_read_pv"));
        assert_eq!(slot(&std, sys::READ), std.image().require_symbol("sys_read"));
        // Non-I/O syscalls identical.
        assert_eq!(
            slot(&pv, sys::GETTIME) - pv.image().base(),
            slot(&std, sys::GETTIME) - std.image().base()
        );
    }

    #[test]
    fn kfunc_table_first_slot_is_grant_root() {
        let k = KernelBuilder::new().build();
        let table = k.kfunc_table();
        let off = (table - k.image().base()) as usize;
        let ptr = u64::from_le_bytes(k.image().bytes()[off..off + 8].try_into().unwrap());
        assert_eq!(ptr, k.grant_root());
    }

    #[test]
    fn gadget_donors_exist() {
        // The Figure 10 chain needs: pop r1; ret (G1), ld r9,[r1]; ret (G2),
        // callr r9 (G3). All three must exist as genuine code.
        let k = KernelBuilder::new().build();
        let insns: Vec<_> = k.image().iter_insns().collect();
        let mut g1 = false;
        let mut g2 = false;
        let mut g3 = false;
        for w in insns.windows(2) {
            let (a, b) = (w[0].1, w[1].1);
            if a.op == Opcode::Pop && a.rd == R1 && b.op == Opcode::Ret {
                g1 = true;
            }
            if a.op == Opcode::Ld && a.rd == R9 && a.rs1 == R1 && a.imm == 0 && b.op == Opcode::Ret {
                g2 = true;
            }
            if a.op == Opcode::CallR && a.rs1 == R9 {
                g3 = true;
            }
        }
        assert!(g1, "missing pop r1; ret gadget");
        assert!(g2, "missing ld r9,[r1]; ret gadget");
        assert!(g3, "missing callr r9 gadget");
    }

    #[test]
    fn kernel_fits_below_nic_buffer() {
        let k = KernelBuilder::new().build();
        assert!(k.image().end() <= layout::NIC_RX_BUF, "kernel end {:#x}", k.image().end());
    }
}
