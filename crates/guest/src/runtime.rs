//! The user-mode runtime linked into every workload image.
//!
//! [`emit_runtime`] appends syscall wrappers, `setjmp`/`longjmp` (the §4.5
//! imperfect-nesting source), and a small library of compute kernels used by
//! the workload programs. All labels are prefixed `u_`.

use rnr_isa::{Assembler, Reg};

use crate::layout::{self, sys};

use Reg::{R1, R2, R3, R5, R6, R7, R8};

const SP: Reg = Reg::SP;

/// Emits the runtime into `a`. Call exactly once per workload image.
pub fn emit_runtime(a: &mut Assembler) {
    emit_syscall_wrappers(a);
    emit_setjmp(a);
    emit_compute(a);
}

fn wrapper(a: &mut Assembler, name: &str, nr: u32) {
    a.label(name);
    a.syscall(nr);
    a.ret();
}

fn emit_syscall_wrappers(a: &mut Assembler) {
    wrapper(a, "u_exit", sys::EXIT);
    wrapper(a, "u_yield", sys::YIELD);
    wrapper(a, "u_read", sys::READ);
    wrapper(a, "u_write", sys::WRITE);
    wrapper(a, "u_netrecv", sys::NETRECV);
    wrapper(a, "u_nettx", sys::NETTX);
    wrapper(a, "u_gettime", sys::GETTIME);
    wrapper(a, "u_spawn", sys::SPAWN);
    wrapper(a, "u_log", sys::LOG);
    wrapper(a, "u_rand", sys::RAND);
    wrapper(a, "u_getpid", sys::GETPID);
    wrapper(a, "u_procmsg", sys::PROCMSG);
    wrapper(a, "u_oops", sys::OOPS);
    wrapper(a, "u_alloc", sys::ALLOC);
    wrapper(a, "u_free", sys::FREE);

    // u_op_done: bump this thread's completed-operation counter (the
    // fixed-work measure the evaluation harness normalizes by).
    a.label("u_op_done");
    a.call("u_getpid");
    a.muli(R5, R1, 8);
    a.movi(R6, layout::OPS_BASE as i32);
    a.add(R5, R5, R6);
    a.ld(R6, R5, 0);
    a.addi(R6, R6, 1);
    a.st(R5, 0, R6);
    a.ret();

    // u_param(r1 = index) -> r1: read the workload parameter block.
    a.label("u_param");
    a.muli(R5, R1, 8);
    a.movi(R6, layout::PARAMS_BASE as i32);
    a.add(R5, R5, R6);
    a.ld(R1, R5, 0);
    a.ret();
}

fn emit_setjmp(a: &mut Assembler) {
    // u_setjmp(r1 = buf[6 words]) -> 0.
    // Buffer: [return target, post-return sp, r10, r11, r12, r13].
    a.label("u_setjmp");
    a.ld(R5, SP, 0); // our return address
    a.st(R1, 0, R5);
    a.addi(R5, SP, 8); // caller sp after our return
    a.st(R1, 8, R5);
    a.st(R1, 16, Reg::R10);
    a.st(R1, 24, Reg::R11);
    a.st(R1, 32, Reg::R12);
    a.st(R1, 40, Reg::R13);
    a.movi(R1, 0);
    a.ret();

    // u_longjmp(r1 = buf, r2 = value): unwind to the matching u_setjmp.
    // The final `ret` targets a frame the RAS no longer predicts —
    // a guaranteed benign TargetMismatch alarm (imperfect nesting, §4.5).
    a.label("u_longjmp");
    a.ld(Reg::R10, R1, 16);
    a.ld(Reg::R11, R1, 24);
    a.ld(Reg::R12, R1, 32);
    a.ld(Reg::R13, R1, 40);
    a.ld(R5, R1, 8);
    a.mov(SP, R5); // discard the nested frames
    a.ld(R5, R1, 0);
    a.mov(R1, R2); // setjmp "returns" the longjmp value
    a.push(R5);
    a.ret();
}

fn emit_compute(a: &mut Assembler) {
    // u_checksum(r1 = buf, r2 = len) -> r1: word-mix over a buffer.
    a.label("u_checksum");
    a.movi(R5, 0); // acc
    a.movi(R6, 0); // off
    a.label("uc_loop");
    a.bgeu(R6, R2, "uc_done");
    a.add(R7, R1, R6);
    a.ld(R8, R7, 0);
    a.xor(R5, R5, R8);
    a.muli(R5, R5, 0x01000193);
    a.addi(R6, R6, 8);
    a.jmp("uc_loop");
    a.label("uc_done");
    a.mov(R1, R5);
    a.ret();

    // u_compute(r1 = iterations) -> r1: xorshift hash loop (pure CPU work).
    a.label("u_compute");
    a.movi(R5, 0x12345); // state
    a.movi(R6, 0); // i
    a.label("ucp_loop");
    a.bgeu(R6, R1, "ucp_done");
    a.shli(R7, R5, 13);
    a.xor(R5, R5, R7);
    a.shri(R7, R5, 7);
    a.xor(R5, R5, R7);
    a.shli(R7, R5, 17);
    a.xor(R5, R5, R7);
    a.addi(R6, R6, 1);
    a.jmp("ucp_loop");
    a.label("ucp_done");
    a.mov(R1, R5);
    a.ret();

    // u_recurse(r1 = depth) -> r1: self-recursive call chain; with depth
    // beyond the RAS capacity this drives user-mode evictions/underflows.
    a.label("u_recurse");
    a.movi(R5, 0);
    a.bne(R1, R5, "ur_deeper");
    a.movi(R1, 1);
    a.ret();
    a.label("ur_deeper");
    a.push(R1);
    a.addi(R1, R1, -1);
    a.call("u_recurse");
    a.pop(R5);
    a.add(R1, R1, R5);
    a.ret();

    // u_parse(r1 = buf, r2 = len) -> r1: recursive-descent-style walk,
    // 64 bytes per frame with a helper call per chunk (call-tree density).
    a.label("u_parse");
    a.movi(R5, 64);
    a.bgeu(R2, R5, "up_chunk");
    a.call("u_checksum");
    a.ret();
    a.label("up_chunk");
    a.push(Reg::R10);
    a.push(Reg::R11);
    a.mov(Reg::R10, R1);
    a.mov(Reg::R11, R2);
    a.movi(R2, 64);
    a.call("u_checksum"); // digest this chunk
    a.addi(R1, Reg::R10, 64);
    a.addi(R2, Reg::R11, -64);
    a.call("u_parse"); // recurse over the rest
    a.pop(Reg::R11);
    a.pop(Reg::R10);
    a.ret();

    // u_btree_build(r1 = node count): perfect-ish BST in the user heap.
    // Node: [key, left, right], 24 bytes, slot i at HEAP + 24 * i.
    // Children of i are 2i+1, 2i+2 (heap order: an implicit search tree
    // over shuffled keys is fine for lookup traffic).
    a.label("u_btree_build");
    a.push(Reg::R10);
    a.movi(Reg::R10, 0); // i
    a.label("ub_loop");
    a.bgeu(Reg::R10, R1, "ub_done");
    a.muli(R5, Reg::R10, 24);
    a.movi(R6, layout::USER_HEAP as i32);
    a.add(R5, R5, R6); // &node[i]
                       // key = i * 2654435761 mod 2^32 (a scrambled but deterministic key)
    a.muli(R7, Reg::R10, 0x9E3779B1u32 as i32);
    a.movi(R8, -1);
    a.shri(R8, R8, 32);
    a.and(R7, R7, R8);
    a.st(R5, 0, R7);
    // left = 2i+1, right = 2i+2 (as addresses; 0 if out of range)
    a.muli(R7, Reg::R10, 2);
    a.addi(R7, R7, 1);
    a.bgeu(R7, R1, "ub_noleft");
    a.muli(R8, R7, 24);
    a.add(R8, R8, R6);
    a.st(R5, 8, R8);
    a.label("ub_noleft");
    a.addi(R7, R7, 1);
    a.bgeu(R7, R1, "ub_noright");
    a.muli(R8, R7, 24);
    a.add(R8, R8, R6);
    a.st(R5, 16, R8);
    a.label("ub_noright");
    a.addi(Reg::R10, Reg::R10, 1);
    a.jmp("ub_loop");
    a.label("ub_done");
    a.pop(Reg::R10);
    a.ret();

    // u_btree_lookup(r1 = key) -> r1: walk from the root comparing keys;
    // one helper call per visited node (kernel-free pointer chasing).
    a.label("u_btree_lookup");
    a.movi(R5, layout::USER_HEAP as i32); // node
    a.label("ubl_loop");
    a.movi(R6, 0);
    a.beq(R5, R6, "ubl_miss");
    a.push(R1);
    a.push(R5);
    a.mov(R1, R5);
    a.call("u_node_key"); // r1 = key of node
    a.mov(R7, R1);
    a.pop(R5);
    a.pop(R1);
    a.beq(R7, R1, "ubl_hit");
    a.bltu(R1, R7, "ubl_left");
    a.ld(R5, R5, 16); // right
    a.jmp("ubl_loop");
    a.label("ubl_left");
    a.ld(R5, R5, 8); // left
    a.jmp("ubl_loop");
    a.label("ubl_hit");
    a.mov(R1, R5);
    a.ret();
    a.label("ubl_miss");
    a.movi(R1, 0);
    a.ret();

    a.label("u_node_key");
    a.ld(R1, R1, 0);
    a.ret();

    // u_memtouch(r1 = base, r2 = bytes, r3 = stride): dirty pages — drives
    // the checkpoint copy-on-write costs of Figure 7.
    a.label("u_memtouch");
    a.movi(R5, 0);
    a.label("umt_loop");
    a.bgeu(R5, R2, "umt_done");
    a.add(R6, R1, R5);
    a.st(R6, 0, R5);
    a.add(R5, R5, R3);
    a.jmp("umt_loop");
    a.label("umt_done");
    a.ret();

    // u_wordcopy(r1 = dst, r2 = src): word-at-a-time copy, stops after the
    // first zero word. NO BOUNDS CHECK — the user-level sibling of the
    // kernel's vulnerable kstrcpy (used by the JOP scenario).
    a.label("u_wordcopy");
    a.movi(R6, 0);
    a.label("uwc_loop");
    a.ld(R5, R2, 0);
    a.st(R1, 0, R5);
    a.beq(R5, R6, "uwc_done");
    a.addi(R1, R1, 8);
    a.addi(R2, R2, 8);
    a.jmp("uwc_loop");
    a.label("uwc_done");
    a.ret();

    // u_fill(r1 = dst, r2 = len, r3 = seed): deterministic buffer fill.
    a.label("u_fill");
    a.movi(R5, 0);
    a.label("uf_loop");
    a.bgeu(R5, R2, "uf_done");
    a.add(R6, R1, R5);
    a.add(R7, R3, R5);
    a.muli(R7, R7, 0x5DEECE66Du64 as u32 as i32);
    a.ori(R7, R7, 1); // never a zero word (kstrcpy-safe)
    a.st(R6, 0, R7);
    a.addi(R5, R5, 8);
    a.jmp("uf_loop");
    a.label("uf_done");
    a.ret();

    a.label("u_runtime_end");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnr_isa::Opcode;

    #[test]
    fn runtime_assembles() {
        let mut a = Assembler::new(layout::USER_BASE);
        emit_runtime(&mut a);
        let img = a.assemble().unwrap();
        for sym in ["u_gettime", "u_setjmp", "u_longjmp", "u_recurse", "u_btree_lookup", "u_parse"] {
            assert!(img.symbol(sym).is_some(), "missing {sym}");
        }
    }

    #[test]
    fn wrappers_are_syscall_ret_pairs() {
        let mut a = Assembler::new(layout::USER_BASE);
        emit_runtime(&mut a);
        let img = a.assemble().unwrap();
        let addr = img.require_symbol("u_gettime");
        let first = img.decode_at(addr).unwrap();
        assert_eq!(first.op, Opcode::Syscall);
        assert_eq!(first.imm as u32, sys::GETTIME);
        assert_eq!(img.decode_at(addr + 8).unwrap().op, Opcode::Ret);
    }

    #[test]
    fn longjmp_ends_with_push_ret() {
        let mut a = Assembler::new(layout::USER_BASE);
        emit_runtime(&mut a);
        let img = a.assemble().unwrap();
        let lj = img.require_symbol("u_longjmp");
        // Find the terminating ret: the instruction before it is a push.
        let mut addr = lj;
        while img.decode_at(addr).unwrap().op != Opcode::Ret {
            addr += 8;
        }
        assert_eq!(img.decode_at(addr - 8).unwrap().op, Opcode::Push);
    }
}
