//! The boot table: initial threads and workload parameters.

use std::collections::BTreeMap;

use rnr_isa::{Addr, Image};

use crate::layout;

/// Kind of a guest thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ThreadKind {
    /// Runs in user mode (entered via `ret_from_fork` + `sysret`).
    User,
    /// Runs in kernel mode (entered via `ret_from_kthread`).
    Kernel,
}

impl ThreadKind {
    fn to_word(self) -> u64 {
        match self {
            ThreadKind::User => 0,
            ThreadKind::Kernel => 1,
        }
    }
}

/// One initial thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BootEntry {
    /// Entry point of the thread.
    pub entry: Addr,
    /// Privilege kind.
    pub kind: ThreadKind,
}

/// The boot table the kernel walks at startup, plus the workload parameter
/// block user programs read from [`layout::PARAMS_BASE`].
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct BootTable {
    entries: Vec<BootEntry>,
    params: Vec<u64>,
}

impl BootTable {
    /// An empty table.
    pub fn new() -> BootTable {
        BootTable::default()
    }

    /// Adds an initial user thread at `entry`.
    pub fn user_thread(&mut self, entry: Addr) -> &mut BootTable {
        self.entries.push(BootEntry { entry, kind: ThreadKind::User });
        self
    }

    /// Adds an initial kernel thread at `entry`.
    pub fn kernel_thread(&mut self, entry: Addr) -> &mut BootTable {
        self.entries.push(BootEntry { entry, kind: ThreadKind::Kernel });
        self
    }

    /// Sets workload parameter `index` (readable by guest programs at
    /// `PARAMS_BASE + 8 * index`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub fn set_param(&mut self, index: usize, value: u64) -> &mut BootTable {
        assert!(index < 16, "parameter block holds 16 values");
        if self.params.len() <= index {
            self.params.resize(index + 1, 0);
        }
        self.params[index] = value;
        self
    }

    /// The configured entries.
    pub fn entries(&self) -> &[BootEntry] {
        &self.entries
    }

    /// Serializes the table (and parameter block) into a guest image at
    /// [`layout::BOOT_TABLE`].
    ///
    /// # Panics
    ///
    /// Panics if more threads are configured than the kernel supports.
    pub fn to_image(&self) -> Image {
        assert!(
            self.entries.len() < layout::MAX_THREADS,
            "at most {} boot threads (slot 0 is the idle thread)",
            layout::MAX_THREADS - 1
        );
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for e in &self.entries {
            bytes.extend_from_slice(&e.entry.to_le_bytes());
            bytes.extend_from_slice(&e.kind.to_word().to_le_bytes());
        }
        // Pad to the parameter block, then append it.
        let pad = (layout::PARAMS_BASE - layout::BOOT_TABLE) as usize - bytes.len();
        bytes.resize(bytes.len() + pad, 0);
        for p in &self.params {
            bytes.extend_from_slice(&p.to_le_bytes());
        }
        Image::from_parts(layout::BOOT_TABLE, bytes, BTreeMap::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_layout_matches_kernel_expectations() {
        let mut bt = BootTable::new();
        bt.user_thread(0x20_0000).kernel_thread(0x20_1000).set_param(2, 77);
        let img = bt.to_image();
        assert_eq!(img.base(), layout::BOOT_TABLE);
        let w = |addr: Addr| {
            let off = (addr - img.base()) as usize;
            u64::from_le_bytes(img.bytes()[off..off + 8].try_into().unwrap())
        };
        assert_eq!(w(layout::BOOT_TABLE), 2); // count
        assert_eq!(w(layout::BOOT_TABLE + 8), 0x20_0000);
        assert_eq!(w(layout::BOOT_TABLE + 16), 0); // user
        assert_eq!(w(layout::BOOT_TABLE + 24), 0x20_1000);
        assert_eq!(w(layout::BOOT_TABLE + 32), 1); // kernel
        assert_eq!(w(layout::PARAMS_BASE + 16), 77);
    }

    #[test]
    #[should_panic(expected = "boot threads")]
    fn too_many_threads_rejected() {
        let mut bt = BootTable::new();
        for _ in 0..layout::MAX_THREADS {
            bt.user_thread(0x20_0000);
        }
        bt.to_image();
    }

    #[test]
    #[should_panic(expected = "16 values")]
    fn param_index_bounds() {
        BootTable::new().set_param(16, 1);
    }
}
