//! The alarm replayer: resolve an alarm into a false positive, a
//! characterized ROP attack (§4.6.2, §6), or — for the VRT detector family
//! (DESIGN.md §15) — a characterized memory-safety violation.

use std::sync::Arc;

use rnr_guest::layout;
use rnr_hypervisor::{Introspector, VmSpec};
use rnr_isa::{disasm, Addr, Opcode};
use rnr_log::{AlarmInfo, InputLog, VrtAlarmInfo};
use rnr_machine::CallRetTrap;
use rnr_ras::ThreadId;
use rnr_vrt::{coverage, VrtKind};

use crate::engine::ShadowEventKind;
use crate::{AlarmCase, CaseKind, ReplayConfig, ReplayError, ReplayOutcome, Replayer};

/// Why an alarm was *not* an attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FalsePositiveKind {
    /// RAS underflow whose target matched the thread's latest evict record
    /// (§4.5/§4.6.2).
    MatchedEvict,
    /// Imperfect procedure nesting (setjmp/longjmp-style unwind, §4.5).
    ImperfectNesting {
        /// Stack frames the unwind discarded.
        unwound_frames: usize,
    },
    /// The unbounded software RAS predicted the return correctly: the alarm
    /// was an artifact of the bounded hardware RAS.
    HardwareCapacity,
    /// VRT: the store hit a live allocation's partial head/tail granule —
    /// coverage rounding (the table watches whole granules only) made the
    /// hardware blind to the region's exact bounds (DESIGN.md §15).
    CoarseBounds,
    /// VRT: the store hit a live allocation whose table entry had been
    /// capacity-evicted, so the hardware no longer knew the region existed.
    EvictedRegion,
    /// VRT: the store hit a returned-frame watch window that no longer
    /// described dead stack — the frame bytes were live again (reuse by a
    /// deeper call, or a longjmp unwound past the bookkeeping).
    StaleFrame,
}

/// One decoded element of the attacker's stack payload.
#[derive(Debug, Clone)]
pub struct GadgetUse {
    /// Stack slot address the word was read from.
    pub stack_addr: Addr,
    /// The word itself.
    pub value: u64,
    /// Nearest kernel symbol, when the word points into the kernel image.
    pub symbol: Option<String>,
    /// Disassembly of the gadget (up to and including its terminating
    /// control transfer), when the word points at decodable kernel text.
    pub listing: Option<String>,
}

/// The §6 attack characterization: "how was the attack possible", "who
/// attacked the machine", "what did the attacker do".
#[derive(Debug, Clone)]
pub struct RopReport {
    /// Thread executing the hijacked return.
    pub tid: ThreadId,
    /// PC of the hijacked return instruction.
    pub ret_pc: Addr,
    /// Symbol of the vulnerable procedure containing the return.
    pub vulnerable_symbol: Option<String>,
    /// Where control actually went: the first gadget.
    pub actual_target: Addr,
    /// The legitimate return address (top of the simulated RAS) — the call
    /// site of the vulnerable procedure.
    pub call_site: Option<Addr>,
    /// The gadget chain decoded from the corrupted stack.
    pub gadget_chain: Vec<GadgetUse>,
    /// Retired-instruction count of the attack point.
    pub at_insn: u64,
    /// Virtual cycle of the attack point.
    pub at_cycle: u64,
    /// Live guest threads at the attack point (`(tid, state)`).
    pub threads: Vec<(ThreadId, u64)>,
    /// The guest privilege flag at the attack point — still clean, because
    /// the state "has not been polluted by the execution of any gadget".
    pub priv_flag_at_alarm: u64,
}

impl std::fmt::Display for RopReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "ROP attack: return at {:#x} ({}) hijacked to {:#x}",
            self.ret_pc,
            self.vulnerable_symbol.as_deref().unwrap_or("?"),
            self.actual_target
        )?;
        writeln!(f, "  thread: {}; call site: {:?}", self.tid, self.call_site.map(|a| format!("{a:#x}")))?;
        writeln!(f, "  at instruction {}, cycle {}", self.at_insn, self.at_cycle)?;
        writeln!(f, "  stack payload:")?;
        for g in &self.gadget_chain {
            writeln!(
                f,
                "    [{:#x}] {:#018x}  {:<16} {}",
                g.stack_addr,
                g.value,
                g.symbol.as_deref().unwrap_or("-"),
                g.listing.as_deref().unwrap_or("(data)")
            )?;
        }
        Ok(())
    }
}

/// The memory-safety violation characterization (DESIGN.md §15): where the
/// offending store landed, which allocation it escaped, and the machine
/// context at the alarm point.
#[derive(Debug, Clone)]
pub struct MemReport {
    /// Thread executing the offending store.
    pub tid: ThreadId,
    /// Which VRT watch family fired.
    pub kind: VrtKind,
    /// First byte of the offending store.
    pub addr: Addr,
    /// The nearest live allocation at or below `addr` (`(base, len)`), when
    /// one exists — for a heap overflow, the allocation that was overrun.
    pub region: Option<(Addr, u64)>,
    /// The stack pointer at the alarm point.
    pub sp_at_alarm: Addr,
    /// Retired-instruction count of the violation.
    pub at_insn: u64,
    /// Virtual cycle of the violation.
    pub at_cycle: u64,
    /// Live guest threads at the violation (`(tid, state)`).
    pub threads: Vec<(ThreadId, u64)>,
    /// The guest privilege flag at the alarm point.
    pub priv_flag_at_alarm: u64,
}

impl std::fmt::Display for MemReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let family = match self.kind {
            VrtKind::Heap => "heap overflow",
            VrtKind::Stack => "use-after-return",
        };
        writeln!(f, "memory-safety violation ({family}): store to {:#x}", self.addr)?;
        match self.region {
            Some((base, len)) => {
                writeln!(f, "  escaped allocation: [{:#x}, {:#x}) ({len} bytes)", base, base + len)?
            }
            None => writeln!(f, "  no live allocation near the store")?,
        }
        writeln!(f, "  thread: {}; sp at alarm: {:#x}", self.tid, self.sp_at_alarm)?;
        writeln!(f, "  at instruction {}, cycle {}", self.at_insn, self.at_cycle)?;
        Ok(())
    }
}

/// Outcome of alarm resolution.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Benign: the alarm is discarded.
    FalsePositive(FalsePositiveKind),
    /// A real ROP attack, fully characterized.
    RopAttack(Box<RopReport>),
    /// A real heap overflow: the store landed outside every precisely-live
    /// allocation (DESIGN.md §15).
    HeapOverflow(Box<MemReport>),
    /// A real use-after-return: the store landed in dead stack, below the
    /// stack pointer at the alarm point (DESIGN.md §15).
    UseAfterReturn(Box<MemReport>),
}

impl Verdict {
    /// True for every attack verdict ([`Verdict::RopAttack`],
    /// [`Verdict::HeapOverflow`], [`Verdict::UseAfterReturn`]).
    pub fn is_attack(&self) -> bool {
        matches!(self, Verdict::RopAttack(_) | Verdict::HeapOverflow(_) | Verdict::UseAfterReturn(_))
    }
}

/// The alarm replayer (§4.6.2): replays from the checkpoint preceding an
/// alarm, trapping every call and return to model an unbounded multithreaded
/// software RAS, and classifies the alarm.
#[derive(Debug)]
pub struct AlarmReplayer<'a> {
    spec: &'a VmSpec,
    log: Arc<InputLog>,
    config: ReplayConfig,
    shared_cache: Option<Arc<rnr_machine::SharedPageCache>>,
}

impl<'a> AlarmReplayer<'a> {
    /// An alarm replayer over the given recording.
    pub fn new(spec: &'a VmSpec, log: Arc<InputLog>) -> AlarmReplayer<'a> {
        let config = ReplayConfig {
            checkpoint_interval: None,
            callret: CallRetTrap::All,
            collect_cases: false,
            nesting_ret_sites: nesting_sites(spec),
            ..ReplayConfig::default()
        };
        AlarmReplayer { spec, log, config, shared_cache: None }
    }

    /// Shares the run-wide decoded-block cache with every replayer this
    /// launcher spawns (wall-clock only; never affects verdicts or timing).
    pub fn with_shared_cache(mut self, shared: Arc<rnr_machine::SharedPageCache>) -> AlarmReplayer<'a> {
        self.shared_cache = Some(shared);
        self
    }

    /// Overrides the replay configuration (cost model, RAS capacity, ...).
    pub fn with_config(mut self, config: ReplayConfig) -> AlarmReplayer<'a> {
        let sites = if config.nesting_ret_sites.is_empty() {
            nesting_sites(self.spec)
        } else {
            config.nesting_ret_sites.clone()
        };
        self.config = ReplayConfig {
            callret: CallRetTrap::All,
            collect_cases: false,
            nesting_ret_sites: sites,
            ..config
        };
        self
    }

    /// Resolves one alarm case: replays from its checkpoint to the alarm
    /// marker and classifies the violation — a RAS misprediction through the
    /// software shadow RAS, a VRT memory-safety alarm against the guest's
    /// precise allocation state.
    ///
    /// # Errors
    ///
    /// Propagates replay divergence/fault errors.
    pub fn resolve(&self, case: &AlarmCase) -> Result<(Verdict, ReplayOutcome), ReplayError> {
        let mut replayer = Replayer::from_checkpoint(
            self.spec,
            Arc::clone(&self.log),
            self.config.clone(),
            &case.checkpoint,
            true,
        );
        if let Some(shared) = &self.shared_cache {
            replayer.attach_shared_cache(Arc::clone(shared));
        }
        replayer.stop_after_record(case.alarm_index);
        let outcome = replayer.run()?;
        let verdict = match &case.kind {
            CaseKind::Ras(info) => self.classify(info, &outcome),
            CaseKind::Vrt(info) => self.classify_vrt(info, &outcome),
        };
        Ok((verdict, outcome))
    }

    /// Classifies a VRT memory-safety alarm by pure geometry against the
    /// replayed guest state at the alarm point (DESIGN.md §15): the kernel's
    /// precise allocation table says exactly which heap regions were live,
    /// and the replayed stack pointer says exactly where the live stack
    /// ended. The hardware's noisy rules (capacity eviction, coarse granule
    /// rounding, stale frame windows) are each refuted — or confirmed — from
    /// that precise state.
    fn classify_vrt(&self, alarm: &VrtAlarmInfo, outcome: &ReplayOutcome) -> Verdict {
        let params = self.config.vrt.clone().unwrap_or_default();
        let vm = &outcome.vm;
        let addr = alarm.addr;
        match alarm.kind {
            VrtKind::Heap => {
                // Walk the kernel's precise allocation table in replayed
                // guest memory; unlike the bounded hardware table it is
                // never evicted and never rounded.
                let mut nearest: Option<(Addr, u64)> = None;
                for slot in 0..layout::VRT_HEAP_SLOTS as u64 {
                    let entry = layout::VRT_ALLOC_TABLE + slot * 16;
                    let (Ok(base), Ok(len)) = (vm.mem().read_u64(entry), vm.mem().read_u64(entry + 8)) else {
                        continue;
                    };
                    if len == 0 {
                        continue;
                    }
                    if base <= addr && nearest.is_none_or(|(b, _)| b < base) {
                        nearest = Some((base, len));
                    }
                    if !(base..base + len).contains(&addr) {
                        continue;
                    }
                    // The store hit a precisely-live allocation: a false
                    // positive either way — the only question is which noisy
                    // hardware rule caused it.
                    let (lo, hi) = coverage(base, len, params.granule);
                    let fp = if (lo..hi).contains(&addr) {
                        FalsePositiveKind::EvictedRegion
                    } else {
                        FalsePositiveKind::CoarseBounds
                    };
                    return Verdict::FalsePositive(fp);
                }
                Verdict::HeapOverflow(Box::new(self.build_mem_report(alarm, outcome, nearest)))
            }
            VrtKind::Stack => {
                let sp = vm.cpu().sp();
                if addr < sp {
                    // Below the live stack at the alarm point: the store
                    // went through a pointer into a dead frame.
                    Verdict::UseAfterReturn(Box::new(self.build_mem_report(alarm, outcome, None)))
                } else {
                    Verdict::FalsePositive(FalsePositiveKind::StaleFrame)
                }
            }
        }
    }

    fn build_mem_report(
        &self,
        alarm: &VrtAlarmInfo,
        outcome: &ReplayOutcome,
        region: Option<(Addr, u64)>,
    ) -> MemReport {
        let vm = &outcome.vm;
        let intro = Introspector::new(&self.spec.kernel);
        MemReport {
            tid: alarm.tid,
            kind: alarm.kind,
            addr: alarm.addr,
            region,
            sp_at_alarm: vm.cpu().sp(),
            at_insn: alarm.at_insn,
            at_cycle: alarm.at_cycle,
            threads: intro.thread_table(vm),
            priv_flag_at_alarm: intro.priv_flag(vm),
        }
    }

    fn classify(&self, alarm: &AlarmInfo, outcome: &ReplayOutcome) -> Verdict {
        let event = outcome
            .shadow_events
            .iter()
            .rev()
            .find(|e| e.at_insn == alarm.at_insn && e.ret_pc == alarm.mispredict.ret_pc);
        match event.map(|e| e.kind) {
            // The software RAS predicted this return correctly: bounded-
            // hardware artifact.
            None => Verdict::FalsePositive(FalsePositiveKind::HardwareCapacity),
            Some(ShadowEventKind::UnderflowMatched) => {
                Verdict::FalsePositive(FalsePositiveKind::MatchedEvict)
            }
            Some(ShadowEventKind::MismatchUnwound { frames }) => {
                Verdict::FalsePositive(FalsePositiveKind::ImperfectNesting { unwound_frames: frames })
            }
            Some(ShadowEventKind::UnderflowUnexplained) | Some(ShadowEventKind::WhitelistViolation) => {
                Verdict::RopAttack(Box::new(self.build_report(alarm, outcome, None)))
            }
            Some(ShadowEventKind::MismatchUnexplained { predicted }) => {
                Verdict::RopAttack(Box::new(self.build_report(alarm, outcome, Some(predicted))))
            }
        }
    }

    fn build_report(&self, alarm: &AlarmInfo, outcome: &ReplayOutcome, predicted: Option<Addr>) -> RopReport {
        let vm = &outcome.vm;
        let intro = Introspector::new(&self.spec.kernel);
        let image = self.spec.kernel.image();
        let sp = vm.cpu().sp();
        // Decode the attacker's payload: walk the stack words above the
        // consumed return slot (Figure 10(f)).
        let mut chain = Vec::new();
        for i in 0..12u64 {
            let stack_addr = sp + i * 8;
            let Ok(value) = vm.mem().read_u64(stack_addr) else { break };
            let in_text = value >= image.base() && value < image.end();
            let listing = in_text.then(|| self.gadget_listing(value)).flatten();
            let symbol = in_text.then(|| image.symbolize(value).map(|(s, _)| s.to_string())).flatten();
            chain.push(GadgetUse { stack_addr, value, symbol, listing });
        }
        RopReport {
            tid: alarm.tid,
            ret_pc: alarm.mispredict.ret_pc,
            vulnerable_symbol: image.symbolize(alarm.mispredict.ret_pc).map(|(s, _)| s.to_string()),
            actual_target: alarm.mispredict.actual,
            call_site: predicted.or(alarm.mispredict.predicted),
            gadget_chain: chain,
            at_insn: alarm.at_insn,
            at_cycle: alarm.at_cycle,
            threads: intro.thread_table(vm),
            priv_flag_at_alarm: intro.priv_flag(vm),
        }
    }

    /// Disassembles a gadget: instructions from `addr` up to and including
    /// the first control transfer (bounded at 6).
    fn gadget_listing(&self, addr: Addr) -> Option<String> {
        let image = self.spec.kernel.image();
        let mut lines = Vec::new();
        let mut pc = addr;
        for _ in 0..6 {
            let insn = image.decode_at(pc).ok()?;
            lines.push(disasm(&insn));
            if insn.op.is_control_flow() || insn.op == Opcode::Hlt {
                break;
            }
            pc += 8;
        }
        Some(lines.join("; "))
    }
}

/// Finds the return instructions of known non-local-unwind routines in the
/// guest images (the `longjmp` of the user runtime). Real deployments get
/// these from symbol tables the same way.
fn nesting_sites(spec: &VmSpec) -> Vec<Addr> {
    let mut sites = Vec::new();
    for image in std::iter::once(spec.kernel.image()).chain(spec.extra_images.iter()) {
        if let Some(start) = image.symbol("u_longjmp") {
            let mut pc = start;
            while let Ok(insn) = image.decode_at(pc) {
                if insn.op == Opcode::Ret {
                    sites.push(pc);
                    break;
                }
                pc += 8;
            }
        }
    }
    sites
}

/// Replay-side verdict for a JOP alarm (Table 1, row 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JopVerdict {
    /// The target is a function entry in the *full* table: the hardware's
    /// common-function subset simply did not know it — a false positive.
    FalsePositive,
    /// Illegal even against every function in the images: a control-flow
    /// hijack into a function body.
    JopAttack,
}

/// Resolves a JOP alarm against the full function table of the guest
/// images ("the replay verifies the same conditions for the less common
/// functions", Table 1).
pub fn resolve_jop(spec: &VmSpec, case: &crate::JopCase) -> JopVerdict {
    let full = rnr_hypervisor::jop_table_from_spec(spec, usize::MAX);
    if full.is_legal(case.branch_pc, case.target) {
        JopVerdict::FalsePositive
    } else {
        JopVerdict::JopAttack
    }
}
