//! Span-partitioned parallel verification replay (DESIGN.md §11).
//!
//! The recorder's span seeds cut the input log into contiguous **spans**;
//! each span is replayed by an independent worker restored from the seed
//! preceding it, and the workers' per-record [`SpanMark`] traces are folded
//! back into the serial CR's absolute virtual clock, checkpoint schedule,
//! and alarm bookkeeping. Parallelism is strictly a **wall-clock**
//! optimization: cycles, digests, alarm cases, recovery accounting — every
//! byte of the final [`ReplayOutcome`] that reaches a report — is identical
//! to what a serial [`Replayer`] produces over the same log.
//!
//! Correctness rests on three properties of the replay engine:
//!
//! 1. Guest execution never reads the absolute cycle clock — every charge
//!    is a delta — so a worker that starts its clock at zero accumulates
//!    exactly the deltas the serial CR would between the same two records.
//! 2. The only RNG consumed during CR replay is the landing-overshoot draw,
//!    exactly one per `Interrupt` record; pre-positioning a worker's RNG by
//!    the number of prior interrupts reproduces the serial draw sequence.
//! 3. Seeds are captured at quiescent points (no pending IRQs, no in-flight
//!    faults), so a span's final architectural digest must equal the next
//!    span's seeded start digest — the **seam check** that replaces the
//!    serial CR's continuous verification between spans.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};

use rnr_hypervisor::{CycleAttribution, SpanSeed, VmSpec};
use rnr_isa::Addr;
use rnr_log::{Category, FaultPlan, InputLog, LogCursor, LogSource, LogStream, Record, TransportStats};
use rnr_machine::{BlockStats, Digest, SharedPageCache};
use rnr_ras::{MispredictKind, ThreadId};

use crate::engine::SpanRun;
use crate::{
    pool, AlarmCase, CaseKind, Checkpoint, JopCase, ReplayConfig, ReplayError, ReplayOutcome, ReplayRecovery,
    Replayer, RewindStep,
};

/// Re-execution attempts per span before giving up (mirrors the serial
/// engine's per-point recovery bound).
const MAX_SPAN_ATTEMPTS: u32 = 3;

/// Transport faults healed by the orchestrator before the run is declared
/// unrecoverable (mirrors the serial engine's rewind bound).
const MAX_TRANSPORT_HEALS: u32 = 16;

/// Where a parallel replay gets its records and span seeds.
#[derive(Debug)]
pub enum SpanFeed {
    /// A finished recording plus the seeds its recorder captured.
    Complete {
        /// The complete input log.
        log: Arc<InputLog>,
        /// Span seeds, in capture order.
        seeds: Vec<SpanSeed>,
    },
    /// A live recording: records arrive on the stream while seeds arrive on
    /// the channel; spans are dispatched as soon as both sides of their
    /// boundary have been observed, overlapping replay with recording
    /// (§4.6.1's concurrent CR, parallelized).
    Streaming {
        /// The record transport from the recorder.
        stream: Box<LogStream>,
        /// Seed delivery from [`rnr_hypervisor::Recorder::seed_to`].
        seed_rx: Receiver<SpanSeed>,
    },
}

/// Result of [`replay_spans`]: the serial-identical outcome plus the merged
/// wall-clock block-engine statistics of every worker (the outcome's own VM
/// is only the *last* worker's, so its stats alone would undercount).
#[derive(Debug)]
pub struct ParallelReplayOutcome {
    /// The replay outcome, byte-identical to a serial run's.
    pub outcome: ReplayOutcome,
    /// Decoded-block statistics summed across span workers and checkpoint
    /// materialization (diagnostic; never part of a report).
    pub block_stats: BlockStats,
}

/// How a worker (re)constructs its log view for each attempt.
#[derive(Debug, Clone)]
enum JobSource {
    /// The whole log, shared; the worker's cursor does the partitioning.
    Complete(Arc<InputLog>),
    /// Just this span's records, globally indexed from `base`.
    Slice(Arc<[Record]>, usize),
}

impl JobSource {
    fn to_source(&self) -> LogSource {
        match self {
            JobSource::Complete(log) => LogSource::Complete(Arc::clone(log)),
            JobSource::Slice(records, base) => LogSource::Span { records: Arc::clone(records), base: *base },
        }
    }
}

/// One span's work order: everything a worker needs to replay one
/// contiguous slice of the log independently. Opaque outside this crate —
/// built by [`plan_spans`], executed by [`run_planned_span`], and folded
/// back into a serial-identical outcome by [`assemble_spans`], which lets
/// external schedulers (the replay farm) interleave spans from many
/// recordings on one shared pool without touching engine internals.
#[derive(Debug, Clone)]
pub struct SpanJob {
    index: usize,
    /// `None` for span 0 (fresh boot state), the preceding seed otherwise.
    seed: Option<SpanSeed>,
    source: JobSource,
    /// First record index *not* in this span (`None` = run to `End`).
    records_end: Option<usize>,
    /// Seam instruction to run to after the last record (`None` = final span).
    seam: Option<u64>,
    /// Retired-instruction count at span entry.
    start_insn: u64,
    /// `Interrupt` records before this span: landing-RNG pre-positioning.
    prior_interrupts: u64,
    /// Plan injections whose instruction falls inside this span.
    inject_cr: Option<u64>,
    inject_block: Option<u64>,
}

impl SpanJob {
    /// The span's position in record order (the key results are ordered by).
    pub fn index(&self) -> usize {
        self.index
    }
}

/// A finished span: its trace plus what recovery had to do to finish it.
/// Opaque outside this crate; consumed by [`assemble_spans`].
#[derive(Debug)]
pub struct SpanDone {
    run: SpanRun,
    rewinds: u64,
    rewound_insns: u64,
    block_fallbacks: u64,
    trail: Vec<RewindStep>,
}

/// Everything the drain/dispatch phase produced.
struct Harvest {
    records: Vec<Record>,
    jobs: Vec<SpanJob>,
    results: BTreeMap<usize, Result<SpanDone, ReplayError>>,
    transport: TransportStats,
    drain_err: Option<ReplayError>,
}

/// A checkpoint the fold scheduled; materialized only if an alarm case
/// references it.
struct Placement {
    span: usize,
    /// Log index of the record after which the checkpoint was taken
    /// (`None` = the initial checkpoint, before any record).
    at_record: Option<usize>,
    at_insn: u64,
    at_cycle: u64,
    evicts: HashMap<ThreadId, Vec<Addr>>,
    dirty_pages: usize,
    dirty_blocks: usize,
}

/// An alarm case before checkpoint materialization.
struct CaseRef {
    placement: u64,
    kind: CaseKind,
    alarm_index: usize,
    cr_cycle: u64,
}

/// The serial CR's derived state, reconstructed from the span traces.
struct FoldOut {
    cycles: u64,
    checkpoint_cycles: u64,
    taken: u64,
    max_live: usize,
    alarms_seen: u64,
    cancelled: u64,
    jop_cases: Vec<JopCase>,
    case_refs: Vec<CaseRef>,
    placements: Vec<Placement>,
}

/// Replays a recording across `cfg.parallel_spans.max(1)` span workers and
/// reassembles a [`ReplayOutcome`] byte-identical to a serial CR's.
///
/// `expected` arms final-digest verification exactly like
/// [`Replayer::verify_against`]; `shared` plugs every worker into the
/// run-wide decoded-block cache.
///
/// # Errors
///
/// The same failures a serial resilient CR surfaces: an unhealable
/// transport fault, a persistent divergence ([`ReplayError::Unrecoverable`]
/// with the rewind trail), or — with `cfg.resilient` off — the first raw
/// fault. A seam-digest mismatch between adjacent spans surfaces as
/// [`ReplayError::Divergence`].
pub fn replay_spans(
    spec: &VmSpec,
    feed: SpanFeed,
    cfg: &ReplayConfig,
    expected: Option<Digest>,
    shared: Option<&Arc<SharedPageCache>>,
) -> Result<ParallelReplayOutcome, ReplayError> {
    let worker_count = cfg.parallel_spans.max(1);
    match feed {
        SpanFeed::Complete { log, seeds } => {
            let jobs = plan_spans(&log, &seeds, &cfg.fault_plan);
            let results = run_jobs_pooled(spec, cfg, shared, &jobs, worker_count);
            assemble_spans(
                spec,
                cfg,
                shared,
                log.records(),
                &jobs,
                results,
                expected,
                TransportStats::default(),
            )
        }
        SpanFeed::Streaming { stream, seed_rx } => {
            let harvest = run_workers_streaming(spec, stream, seed_rx, cfg, shared, worker_count);
            if let Some(e) = harvest.drain_err {
                return Err(e);
            }
            let mut map = harvest.results;
            let results = (0..harvest.jobs.len())
                .map(|k| map.remove(&k).unwrap_or(Err(ReplayError::UnexpectedEndOfLog)))
                .collect();
            assemble_spans(
                spec,
                cfg,
                shared,
                &harvest.records,
                &harvest.jobs,
                results,
                expected,
                harvest.transport,
            )
        }
    }
}

/// Cuts a finished recording into one [`SpanJob`] per seed interval.
///
/// Each job carries the shared log, its seam bounds, its landing-RNG
/// pre-positioning, and whichever fault-plan injections fall inside it, so
/// the jobs can be executed in any order, by any worker, on any pool.
pub fn plan_spans(log: &Arc<InputLog>, seeds: &[SpanSeed], plan: &FaultPlan) -> Vec<SpanJob> {
    (0..=seeds.len())
        .map(|k| make_job(k, seeds, log.records(), plan, JobSource::Complete(Arc::clone(log))))
        .collect()
}

/// Replays one planned span to completion, retrying transient divergences
/// in place exactly like the in-crate span workers (the span is its own
/// rewind unit; recovery accounting lands in the returned [`SpanDone`]).
///
/// # Errors
///
/// The span's terminal replay failure after the bounded retries:
/// [`ReplayError::Unrecoverable`] with the rewind trail when `cfg.resilient`
/// is set, or the first raw fault when it is not.
pub fn run_planned_span(
    spec: &VmSpec,
    cfg: &ReplayConfig,
    shared: Option<&Arc<SharedPageCache>>,
    job: &SpanJob,
) -> Result<SpanDone, ReplayError> {
    run_one_span(spec, cfg, shared, job)
}

/// Executes a fixed job list on a bounded scoped pool, returning results in
/// span order regardless of completion order.
fn run_jobs_pooled(
    spec: &VmSpec,
    cfg: &ReplayConfig,
    shared: Option<&Arc<SharedPageCache>>,
    jobs: &[SpanJob],
    workers: usize,
) -> Vec<Result<SpanDone, ReplayError>> {
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<SpanDone, ReplayError>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    let slots_ref = &slots;
    pool::drain(workers.clamp(1, jobs.len().max(1)), &|| {
        let k = next.fetch_add(1, Ordering::Relaxed);
        (k < jobs.len()).then(|| {
            Box::new(move || {
                let done = run_one_span(spec, cfg, shared, &jobs[k]);
                *slots_ref[k].lock().expect("span result slot") = Some(done);
            }) as pool::Task<'_>
        })
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("span result slot").unwrap_or(Err(ReplayError::UnexpectedEndOfLog)))
        .collect()
}

/// Reassembles per-span results into a [`ReplayOutcome`] byte-identical to
/// a serial CR's: surfaces the earliest span failure, seam-checks adjacent
/// digests, folds the traces onto the serial clock/checkpoint/alarm
/// bookkeeping, and materializes only the checkpoints alarm cases reference.
///
/// `results` must be in span order (index `k` = `jobs[k]`); `records` is
/// the full record sequence the jobs were planned over, and `transport`
/// carries whatever the feed's drain already healed (zero for a complete
/// log).
///
/// # Errors
///
/// The first failed span's error in span order (deterministic regardless of
/// completion order), a seam-digest [`ReplayError::Divergence`], or a
/// checkpoint-materialization failure.
#[allow(clippy::too_many_arguments)]
pub fn assemble_spans(
    spec: &VmSpec,
    cfg: &ReplayConfig,
    shared: Option<&Arc<SharedPageCache>>,
    records: &[Record],
    jobs: &[SpanJob],
    results: Vec<Result<SpanDone, ReplayError>>,
    expected: Option<Digest>,
    transport: TransportStats,
) -> Result<ParallelReplayOutcome, ReplayError> {
    // Surface the earliest span's failure (deterministic regardless of
    // which worker finished first).
    let mut spans = Vec::with_capacity(results.len());
    for result in results {
        spans.push(result?);
    }

    // Seam check: each span must end in exactly the architectural state the
    // next span was seeded with.
    for k in 0..spans.len().saturating_sub(1) {
        if spans[k].run.outcome.final_digest != spans[k + 1].run.start_digest {
            return Err(ReplayError::Divergence {
                at_insn: jobs[k + 1].start_insn,
                detail: format!("parallel span seam digest mismatch between spans {k} and {}", k + 1),
            });
        }
    }

    let runs: Vec<&SpanRun> = spans.iter().map(|s| &s.run).collect();
    let fold = fold_spans(cfg, records, &runs);
    let (built, mat_stats) = materialize_checkpoints(spec, cfg, shared, jobs, &fold)?;

    let mut block_stats = mat_stats;
    let mut attribution = CycleAttribution::new();
    let mut console = Vec::new();
    let mut callret_traps = 0;
    let mut recovery = ReplayRecovery { transport, ..ReplayRecovery::default() };
    for s in &spans {
        block_stats.merge(&s.run.outcome.vm.block_stats());
        for c in Category::ALL {
            let v = s.run.outcome.attribution.for_category(c);
            if v > 0 {
                attribution.charge(c, v);
            }
        }
        console.extend_from_slice(&s.run.outcome.console);
        callret_traps += s.run.outcome.callret_traps;
        recovery.rewinds += s.rewinds;
        recovery.rewound_insns += s.rewound_insns;
        recovery.block_fallback_spans += s.block_fallbacks;
        recovery.trail.extend(s.trail.iter().cloned());
    }
    attribution.charge_checkpoint(fold.checkpoint_cycles);

    let alarm_cases = fold
        .case_refs
        .iter()
        .map(|c| AlarmCase {
            checkpoint: built.get(&c.placement).cloned().expect("referenced checkpoint materialized"),
            kind: c.kind,
            alarm_index: c.alarm_index,
            cr_cycle: c.cr_cycle,
        })
        .collect();

    let last = spans.pop().expect("at least one span");
    let final_digest = last.run.outcome.final_digest;
    let outcome = ReplayOutcome {
        cycles: fold.cycles,
        retired: last.run.outcome.retired,
        final_digest,
        verified: expected.map(|d| d == final_digest),
        attribution,
        checkpoints_taken: fold.taken,
        checkpoints_live_max: fold.max_live,
        alarms_seen: fold.alarms_seen,
        underflows_cancelled: fold.cancelled,
        alarm_cases,
        jop_cases: fold.jop_cases,
        callret_traps,
        console,
        recovery,
        shadow_events: Vec::new(),
        profile: HashMap::new(),
        vm: last.run.outcome.vm,
    };
    Ok(ParallelReplayOutcome { outcome, block_stats })
}

/// Spawns the worker pool for a live recording, feeds it spans as both
/// sides of each seam arrive, and gathers every result. Never fails itself
/// — drain problems land in [`Harvest::drain_err`] so the pool always joins
/// cleanly.
fn run_workers_streaming(
    spec: &VmSpec,
    mut stream: Box<LogStream>,
    seed_rx: Receiver<SpanSeed>,
    cfg: &ReplayConfig,
    shared: Option<&Arc<SharedPageCache>>,
    worker_count: usize,
) -> Harvest {
    std::thread::scope(|scope| {
        let (job_tx, job_rx) = channel::<SpanJob>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (res_tx, res_rx) = channel::<(usize, Result<SpanDone, ReplayError>)>();
        for _ in 0..worker_count {
            let job_rx = Arc::clone(&job_rx);
            let res_tx = res_tx.clone();
            scope.spawn(move || loop {
                let job = { job_rx.lock().expect("span job queue").recv() };
                let Ok(job) = job else { break };
                let index = job.index;
                let done = run_one_span(spec, cfg, shared, &job);
                if res_tx.send((index, done)).is_err() {
                    break;
                }
            });
        }
        drop(res_tx);

        let mut jobs = Vec::new();
        let mut drain_err = None;
        if let Some(d) = cfg.durable_log.as_ref() {
            stream.attach_durable(&d.dir);
        }
        let mut records: Vec<Record> = Vec::new();
        let mut seeds: Vec<SpanSeed> = Vec::new();
        let mut heals = 0u32;
        loop {
            // The orchestrator owns transport healing: workers only
            // ever see already-verified record slices.
            match stream.try_get(records.len()) {
                Ok(Some(r)) => records.push(r.clone()),
                Ok(None) => break,
                Err(e) => {
                    if !cfg.resilient {
                        drain_err = Some(ReplayError::Transport(e));
                        break;
                    }
                    heals += 1;
                    if heals > MAX_TRANSPORT_HEALS {
                        drain_err = Some(ReplayError::Unrecoverable {
                            fault: Box::new(ReplayError::Transport(e)),
                            trail: Vec::new(),
                        });
                        break;
                    }
                    if let Err(c) = stream.recover() {
                        drain_err = Some(ReplayError::Unrecoverable {
                            fault: Box::new(ReplayError::Transport(c)),
                            trail: Vec::new(),
                        });
                        break;
                    }
                    continue;
                }
            }
            while let Ok(s) = seed_rx.try_recv() {
                seeds.push(s);
            }
            // Dispatch every span whose records are fully drained:
            // replay overlaps the still-running recording.
            while jobs.len() < seeds.len() && records.len() >= seeds[jobs.len()].at_record {
                let k = jobs.len();
                let job = make_job(k, &seeds, &records, &cfg.fault_plan, slice_source(&records, k, &seeds));
                let _ = job_tx.send(job.clone());
                jobs.push(job);
            }
        }
        if drain_err.is_none() {
            // The recorder is done: its seed sends all happened
            // before the sink hung up, so the channel is complete.
            while let Ok(s) = seed_rx.try_recv() {
                seeds.push(s);
            }
            while jobs.len() <= seeds.len() {
                let k = jobs.len();
                let job = make_job(k, &seeds, &records, &cfg.fault_plan, slice_source(&records, k, &seeds));
                let _ = job_tx.send(job.clone());
                jobs.push(job);
            }
        }
        let transport = stream.transport_stats();
        drop(job_tx);

        let mut results = BTreeMap::new();
        for (idx, r) in res_rx {
            results.insert(idx, r);
        }
        Harvest { records, jobs, results, transport, drain_err }
    })
}

/// The record slice for span `k`, globally indexed.
fn slice_source(records: &[Record], k: usize, seeds: &[SpanSeed]) -> JobSource {
    let start = if k == 0 { 0 } else { seeds[k - 1].at_record };
    let end = if k < seeds.len() { seeds[k].at_record } else { records.len() };
    JobSource::Slice(Arc::from(&records[start..end]), start)
}

fn make_job(
    k: usize,
    seeds: &[SpanSeed],
    records: &[Record],
    plan: &FaultPlan,
    source: JobSource,
) -> SpanJob {
    let (start_rec, start_insn, seed) = if k == 0 {
        (0, 0, None)
    } else {
        let s = &seeds[k - 1];
        (s.at_record, s.at_insn, Some(s.clone()))
    };
    let (records_end, seam, end_insn) = if k < seeds.len() {
        (Some(seeds[k].at_record), Some(seeds[k].at_insn), seeds[k].at_insn)
    } else {
        (None, None, u64::MAX)
    };
    let prior_interrupts =
        records[..start_rec].iter().filter(|r| matches!(r, Record::Interrupt { .. })).count() as u64;
    // A planned injection belongs to exactly one span: the one whose
    // instruction range contains it (serial fires it at the first loop-top
    // at or past `at`; the owning worker does the same).
    let in_range = |at: &u64| *at >= start_insn && *at < end_insn;
    SpanJob {
        index: k,
        seed,
        source,
        records_end,
        seam,
        start_insn,
        prior_interrupts,
        inject_cr: plan.cr_divergence_at_insn.filter(in_range),
        inject_block: plan.block_divergence_at_insn.filter(in_range),
    }
}

/// The per-worker replay configuration: span workers never checkpoint, never
/// collect cases (the fold owns both), and never self-recover (the retry
/// loop around them does).
fn worker_cfg(cfg: &ReplayConfig) -> ReplayConfig {
    ReplayConfig {
        checkpoint_interval: None,
        collect_cases: false,
        resilient: false,
        profile_sample_every: None,
        parallel_spans: 0,
        fault_plan: FaultPlan::default(),
        durable_log: None,
        ..cfg.clone()
    }
}

fn build_replayer(
    spec: &VmSpec,
    wcfg: ReplayConfig,
    job: &SpanJob,
    shared: Option<&Arc<SharedPageCache>>,
) -> Replayer {
    let source = job.source.to_source();
    let mut r = match &job.seed {
        None => Replayer::new(spec, source, wcfg),
        Some(seed) => {
            // A span seed is a checkpoint with no replay-side history: the
            // worker's clock starts at zero (the fold re-bases it) and the
            // evict store starts empty (the fold owns alarm bookkeeping).
            let cp = Checkpoint {
                id: 0,
                at_insn: seed.at_insn,
                at_cycle: 0,
                cpu: seed.cpu.clone(),
                mem_pages: seed.mem_pages.clone(),
                disk: seed.disk.clone(),
                backras: seed.backras.clone(),
                current_tid: seed.current_tid,
                dying: seed.dying,
                cursor: LogCursor::new(seed.at_record),
                evict_store: HashMap::new(),
                dirty_pages: 0,
                dirty_blocks: 0,
            };
            Replayer::from_checkpoint(spec, source, wcfg, &cp, false)
        }
    };
    if let Some(s) = shared {
        r.attach_shared_cache(Arc::clone(s));
    }
    r.skip_landing_draws(job.prior_interrupts);
    r
}

/// Runs one span to completion, retrying transient divergences in place:
/// the span *is* the rewind unit (its seed is the checkpoint), so recovery
/// re-executes it from scratch, stepped after a block-engine suspect, and
/// reports the same accounting a serial rewind would.
fn run_one_span(
    spec: &VmSpec,
    cfg: &ReplayConfig,
    shared: Option<&Arc<SharedPageCache>>,
    job: &SpanJob,
) -> Result<SpanDone, ReplayError> {
    let mut rewinds = 0;
    let mut rewound_insns = 0;
    let mut block_fallbacks = 0;
    let mut trail: Vec<RewindStep> = Vec::new();
    let mut degraded = false;
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let mut wcfg = worker_cfg(cfg);
        if attempt == 1 {
            // Injections are one-shot, like the serial engine's fired flags:
            // a retry after a healed transient must not re-fire them.
            wcfg.fault_plan.cr_divergence_at_insn = job.inject_cr;
            wcfg.fault_plan.block_divergence_at_insn = job.inject_block;
        }
        if degraded {
            wcfg.block_engine = false;
            wcfg.superblocks = false;
        }
        let r = build_replayer(spec, wcfg, job, shared);
        match r.run_span(job.records_end, job.seam) {
            Ok(run) => return Ok(SpanDone { run, rewinds, rewound_insns, block_fallbacks, trail }),
            Err(err) => {
                let at = match (&err, cfg.resilient) {
                    (ReplayError::Divergence { at_insn, .. }, true) => *at_insn,
                    // Transport faults cannot reach a worker (its slice was
                    // verified by the drain); everything else is terminal.
                    _ => return Err(err),
                };
                if cfg.block_engine && !degraded {
                    // Quarantine the block engine for the re-execution, as
                    // serial recovery does for a divergence-suspect span.
                    degraded = true;
                    block_fallbacks += 1;
                }
                rewinds += 1;
                rewound_insns += at.saturating_sub(job.start_insn);
                trail.push(RewindStep {
                    at_insn: at,
                    to_insn: job.start_insn,
                    checkpoint_id: job.index as u64,
                    reason: err.to_string(),
                });
                if attempt >= MAX_SPAN_ATTEMPTS {
                    return Err(ReplayError::Unrecoverable { fault: Box::new(err), trail });
                }
            }
        }
    }
}

/// Replays the span traces through the serial CR's bookkeeping: one walk
/// over the records in order, re-basing each worker's relative cycle deltas
/// onto the absolute clock, scheduling checkpoints where the serial CR
/// would (charging their costs into the clock), and reproducing the alarm/
/// evict protocol of §4.6.2.
fn fold_spans(cfg: &ReplayConfig, records: &[Record], spans: &[&SpanRun]) -> FoldOut {
    let costs = &cfg.costs;
    let mut a: u64 = 0;
    let mut last_cp: u64 = 0;
    let mut checkpoint_cycles: u64 = 0;
    let mut taken: u64 = 0;
    let mut max_live: usize = 0;
    // The retained-checkpoint window, as (placement id, at_insn).
    let mut live: VecDeque<(u64, u64)> = VecDeque::new();
    let mut placements: Vec<Placement> = Vec::new();
    let mut dirty_pages: HashSet<usize> = HashSet::new();
    let mut dirty_blocks: HashSet<usize> = HashSet::new();
    let mut evicts: HashMap<ThreadId, Vec<Addr>> = HashMap::new();
    let mut alarms_seen = 0;
    let mut cancelled = 0;
    let mut jop_cases = Vec::new();
    let mut case_refs = Vec::new();
    // A span's record-free tail (seam run) belongs to the serial interval
    // that ends at the *next* record: carry its delta and dirt forward.
    let mut pending_delta: u64 = 0;
    let mut pending_pages: Vec<usize> = Vec::new();
    let mut pending_blocks: Vec<usize> = Vec::new();

    let place = |a: &mut u64,
                 checkpoint_cycles: &mut u64,
                 live: &mut VecDeque<(u64, u64)>,
                 placements: &mut Vec<Placement>,
                 taken: &mut u64,
                 max_live: &mut usize,
                 dirty_pages: &mut HashSet<usize>,
                 dirty_blocks: &mut HashSet<usize>,
                 span: usize,
                 at_record: Option<usize>,
                 at_insn: u64,
                 evicts: HashMap<ThreadId, Vec<Addr>>| {
        let dp = dirty_pages.len();
        let db = dirty_blocks.len();
        // The serial CR's cow-fault counter equals the distinct pages
        // dirtied in the epoch, which is exactly this union's page count.
        let cost = costs.checkpoint_fixed
            + costs.checkpoint_page_copy * (dp + db) as u64
            + costs.cow_fault * dp as u64;
        *a += cost;
        *checkpoint_cycles += cost;
        let id = placements.len() as u64;
        placements.push(Placement {
            span,
            at_record,
            at_insn,
            at_cycle: *a,
            evicts,
            dirty_pages: dp,
            dirty_blocks: db,
        });
        live.push_back((id, at_insn));
        *taken += 1;
        while live.len() > cfg.retain {
            live.pop_front();
        }
        *max_live = (*max_live).max(live.len());
        dirty_pages.clear();
        dirty_blocks.clear();
    };

    if cfg.collect_cases {
        // The initial checkpoint: the serial `run()` takes it before the
        // first record, draining the construction epoch — which is exactly
        // what worker 0's entry mark recorded.
        let entry = &spans[0].marks[0];
        dirty_pages.extend(entry.dirty_pages.iter().copied());
        dirty_blocks.extend(entry.dirty_blocks.iter().copied());
        place(
            &mut a,
            &mut checkpoint_cycles,
            &mut live,
            &mut placements,
            &mut taken,
            &mut max_live,
            &mut dirty_pages,
            &mut dirty_blocks,
            0,
            None,
            0,
            HashMap::new(),
        );
        last_cp = a;
    }

    for (w, span) in spans.iter().enumerate() {
        let mut prev = span.marks[0].cycles;
        for mark in &span.marks[1..] {
            let delta = mark.cycles - prev;
            prev = mark.cycles;
            let Some(j) = mark.record else {
                pending_delta += delta;
                pending_pages.extend_from_slice(&mark.dirty_pages);
                pending_blocks.extend_from_slice(&mark.dirty_blocks);
                continue;
            };
            a += pending_delta + delta;
            pending_delta = 0;
            dirty_pages.extend(pending_pages.drain(..));
            dirty_blocks.extend(pending_blocks.drain(..));
            dirty_pages.extend(mark.dirty_pages.iter().copied());
            dirty_blocks.extend(mark.dirty_blocks.iter().copied());
            let record = &records[j];
            let mut is_end = false;
            match record {
                Record::End { .. } => is_end = true,
                Record::Evict { tid, addr } => evicts.entry(*tid).or_default().push(*addr),
                Record::Alarm(info) => {
                    alarms_seen += 1;
                    let mut matched = false;
                    if info.mispredict.kind == MispredictKind::Underflow {
                        let stack = evicts.entry(info.tid).or_default();
                        if stack.last() == Some(&info.mispredict.actual) {
                            // §4.6.2: matches the thread's latest evict
                            // record — a false alarm; drop both.
                            stack.pop();
                            cancelled += 1;
                            matched = true;
                        }
                    }
                    if !matched && cfg.collect_cases {
                        let placement = live
                            .iter()
                            .rev()
                            .find(|(_, ai)| *ai <= info.at_insn)
                            .or_else(|| live.front())
                            .expect("initial checkpoint always exists")
                            .0;
                        case_refs.push(CaseRef {
                            placement,
                            kind: CaseKind::Ras(*info),
                            alarm_index: j,
                            cr_cycle: a,
                        });
                    }
                }
                Record::VrtAlarm(info) => {
                    // Like the serial drive loop: VRT alarms have no
                    // CR-side cancellation rule, so every one escalates.
                    alarms_seen += 1;
                    if cfg.collect_cases {
                        let placement = live
                            .iter()
                            .rev()
                            .find(|(_, ai)| *ai <= info.at_insn)
                            .or_else(|| live.front())
                            .expect("initial checkpoint always exists")
                            .0;
                        case_refs.push(CaseRef {
                            placement,
                            kind: CaseKind::Vrt(*info),
                            alarm_index: j,
                            cr_cycle: a,
                        });
                    }
                }
                Record::JopAlarm { tid, branch_pc, target, at_insn, at_cycle } => {
                    alarms_seen += 1;
                    jop_cases.push(JopCase {
                        tid: *tid,
                        branch_pc: *branch_pc,
                        target: *target,
                        at_insn: *at_insn,
                        at_cycle: *at_cycle,
                    });
                }
                _ => {}
            }
            if !is_end {
                if let Some(interval) = cfg.checkpoint_interval {
                    if a - last_cp >= interval {
                        place(
                            &mut a,
                            &mut checkpoint_cycles,
                            &mut live,
                            &mut placements,
                            &mut taken,
                            &mut max_live,
                            &mut dirty_pages,
                            &mut dirty_blocks,
                            w,
                            Some(j),
                            mark.retired,
                            evicts.clone(),
                        );
                        last_cp = a;
                    }
                }
            }
        }
    }

    FoldOut {
        cycles: a,
        checkpoint_cycles,
        taken,
        max_live,
        alarms_seen,
        cancelled,
        jop_cases,
        case_refs,
        placements,
    }
}

/// Builds the checkpoints that alarm cases actually reference, by re-running
/// the owning span from its seed (injection-free, self-recovery off) and
/// snapshotting at each scheduled record. Unreferenced placements cost
/// nothing — serially they were taken and recycled unobserved.
fn materialize_checkpoints(
    spec: &VmSpec,
    cfg: &ReplayConfig,
    shared: Option<&Arc<SharedPageCache>>,
    jobs: &[SpanJob],
    fold: &FoldOut,
) -> Result<(HashMap<u64, Checkpoint>, BlockStats), ReplayError> {
    let needed: BTreeSet<u64> = fold.case_refs.iter().map(|c| c.placement).collect();
    let mut by_span: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for id in needed {
        by_span.entry(fold.placements[id as usize].span).or_default().push(id);
    }
    let mut built = HashMap::new();
    let mut stats = BlockStats::default();
    for (span, ids) in by_span {
        let mut r = build_replayer(spec, worker_cfg(cfg), &jobs[span], shared);
        // Placement ids ascend with record order, so one pass per span
        // reaches every snapshot point without restarting.
        for id in ids {
            let p = &fold.placements[id as usize];
            if let Some(rec) = p.at_record {
                r.drive_to_record(rec)?;
            }
            let cursor = LogCursor::new(p.at_record.map_or(0, |rec| rec + 1));
            built.insert(
                id,
                r.snapshot_checkpoint(
                    id,
                    p.at_insn,
                    p.at_cycle,
                    cursor,
                    p.evicts.clone(),
                    p.dirty_pages,
                    p.dirty_blocks,
                ),
            );
        }
        stats.merge(&r.block_stats());
    }
    Ok((built, stats))
}
