//! Incremental checkpoints (Figure 4) and their retention policy.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use rnr_hypervisor::DiskDevice;
use rnr_isa::Addr;
use rnr_log::LogCursor;
use rnr_machine::{CpuState, PAGE_SIZE};
use rnr_ras::{BackRasTable, ThreadId};

type Page = [u8; PAGE_SIZE];

/// One checkpoint of the replayed VM.
///
/// Matches the three components of Figure 4: (1) all VM state — memory
/// pages, a processor-state page, and the virtual disk contents; (2) the
/// `InputLogPtr`; (3) the BackRAS. Pages and blocks are reference-counted,
/// so consecutive checkpoints share everything that did not change — the
/// paper's incremental scheme ("for each unmodified page or block, it keeps
/// a pointer to it in the latest checkpoint that modified it").
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Sequence number.
    pub id: u64,
    /// Retired-instruction count at capture.
    pub at_insn: u64,
    /// Virtual cycle count at capture.
    pub at_cycle: u64,
    /// Processor state (PC, stack pointer, all registers — §4.6.1) plus the
    /// live RAS entries.
    pub cpu: CpuState,
    /// All memory pages (shared `Arc`s; only dirty ones were copied).
    pub mem_pages: Vec<Arc<Page>>,
    /// The virtual disk controller: contents (shared `Arc` blocks), latched
    /// request registers, and any in-flight operation awaiting its logged
    /// completion interrupt.
    pub disk: DiskDevice,
    /// The BackRAS at the checkpoint, including the running thread's RAS
    /// ("the hardware automatically saves the RAS into the BackRAS" before
    /// the dump, §4.6.1).
    pub backras: BackRasTable,
    /// The thread scheduled at capture.
    pub current_tid: ThreadId,
    /// A thread that has exited but not yet been switched away from.
    pub dying: Option<ThreadId>,
    /// The `InputLogPtr`: next record to process after restoring.
    pub cursor: LogCursor,
    /// Outstanding evict records per thread (§4.6.2 matching state).
    pub evict_store: HashMap<ThreadId, Vec<Addr>>,
    /// Pages dirtied in the interval ending at this checkpoint (accounting).
    pub dirty_pages: usize,
    /// Disk blocks dirtied in the interval (accounting).
    pub dirty_blocks: usize,
}

/// A bounded window of recent checkpoints.
///
/// "RnR-Safe only needs to keep as many checkpoints as the duration of the
/// time window... plus two — to ensure the correct checkpoint is not
/// prematurely overwritten" (§8.4). Old checkpoints are recycled; dropping
/// the `Arc`s releases any page whose content no later checkpoint shares.
#[derive(Debug)]
pub struct CheckpointStore {
    retain: usize,
    window: VecDeque<Checkpoint>,
    taken: u64,
    max_live: usize,
}

impl CheckpointStore {
    /// A store retaining the most recent `retain` checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `retain` is zero — the alarm replayer always needs a base.
    pub fn new(retain: usize) -> CheckpointStore {
        assert!(retain > 0, "must retain at least one checkpoint");
        CheckpointStore { retain, window: VecDeque::new(), taken: 0, max_live: 0 }
    }

    /// Adds a checkpoint, recycling the oldest beyond the retention window.
    pub fn push(&mut self, checkpoint: Checkpoint) {
        self.window.push_back(checkpoint);
        self.taken += 1;
        while self.window.len() > self.retain {
            self.window.pop_front();
        }
        self.max_live = self.max_live.max(self.window.len());
    }

    /// The most recent checkpoint (what an alarm replayer typically starts
    /// from).
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.window.back()
    }

    /// The latest checkpoint at or before instruction `at_insn` — the
    /// "checkpoint immediately preceding the alarm" (§4.6.2). Falls back to
    /// the oldest retained checkpoint if the alarm predates the window.
    pub fn before(&self, at_insn: u64) -> Option<&Checkpoint> {
        self.window.iter().rev().find(|c| c.at_insn <= at_insn).or_else(|| self.window.front())
    }

    /// Checkpoints currently retained.
    pub fn live(&self) -> usize {
        self.window.len()
    }

    /// Total checkpoints ever taken.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// High-water mark of simultaneously retained checkpoints.
    pub fn max_live(&self) -> usize {
        self.max_live
    }

    /// Iterates over retained checkpoints, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Checkpoint> {
        self.window.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnr_isa::Reg;
    use rnr_machine::Mode;

    fn checkpoint(id: u64, at_insn: u64) -> Checkpoint {
        Checkpoint {
            id,
            at_insn,
            at_cycle: at_insn * 2,
            cpu: CpuState {
                regs: [0; Reg::COUNT],
                pc: 0,
                mode: Mode::Kernel,
                interrupts_enabled: false,
                halted: false,
                ras_entries: vec![],
            },
            mem_pages: vec![],
            disk: DiskDevice::new(4096, 0),
            backras: BackRasTable::new(),
            current_tid: ThreadId(1),
            dying: None,
            cursor: LogCursor::new(0),
            evict_store: HashMap::new(),
            dirty_pages: 0,
            dirty_blocks: 0,
        }
    }

    #[test]
    fn recycles_beyond_retention() {
        let mut store = CheckpointStore::new(3);
        for i in 0..5 {
            store.push(checkpoint(i, i * 100));
        }
        assert_eq!(store.live(), 3);
        assert_eq!(store.taken(), 5);
        assert_eq!(store.max_live(), 3);
        assert_eq!(store.latest().unwrap().id, 4);
        assert_eq!(store.iter().next().unwrap().id, 2);
    }

    #[test]
    fn before_finds_preceding_checkpoint() {
        let mut store = CheckpointStore::new(10);
        for i in 0..4 {
            store.push(checkpoint(i, i * 100));
        }
        assert_eq!(store.before(250).unwrap().id, 2);
        assert_eq!(store.before(300).unwrap().id, 3);
        // Alarm predating the window: oldest retained is the best base.
        let mut small = CheckpointStore::new(1);
        small.push(checkpoint(9, 900));
        assert_eq!(small.before(100).unwrap().id, 9);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_retention_rejected() {
        CheckpointStore::new(0);
    }
}
