//! The deterministic replay engine.

use std::collections::HashMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnr_hypervisor::{CycleAttribution, DiskDevice, Introspector, VmSpec};
use rnr_isa::Addr;
use rnr_log::{AlarmInfo, Category, LogCursor, LogSource, Record, VrtAlarmInfo};
use rnr_machine::{
    CallRetTrap, CostModel, Digest, Exit, ExitControls, FaultKind, FinishIo, Fnv1a, GuestVm, MachineConfig,
    RunBudget, IRQ_DISK, PORT_CONSOLE, PORT_DISK_ADDR, PORT_DISK_CMD, PORT_DISK_COUNT, PORT_DISK_SECTOR,
};
use rnr_ras::{BackRasEntry, BackRasTable, MispredictKind, RasConfig, ShadowOutcome, ShadowRas, ThreadId};

use crate::{Checkpoint, CheckpointStore};

/// Replay engine configuration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Checkpoint every this many virtual cycles (`None` = `RepNoChk`).
    pub checkpoint_interval: Option<u64>,
    /// Checkpoints retained (window + 2, §8.4).
    pub retain: usize,
    /// Call/return trapping: `None` for the CR, `KernelOnly` for the
    /// paper's kernel-ROP alarm replayer timing (Figure 9), `All` when the
    /// software RAS must observe every return.
    pub callret: CallRetTrap,
    /// Cycle cost model (must match the recording's).
    pub costs: CostModel,
    /// RAS capacity (must match the recording's).
    pub ras_capacity: usize,
    /// Seed of the deterministic model for asynchronous-event landing
    /// overshoot (the §7.3 single-stepping).
    pub landing_seed: u64,
    /// Collect unresolved alarms as [`AlarmCase`]s (the CR behaviour).
    pub collect_cases: bool,
    /// Return-instruction PCs belonging to known non-local-unwind routines
    /// (`longjmp` implementations), identified from the binary images; the
    /// software RAS treats them as stack unwinds, not hijacks (§4.5).
    pub nesting_ret_sites: Vec<Addr>,
    /// Use the predecoded instruction cache (wall-clock optimization; never
    /// changes virtual cycles or digests).
    pub decode_cache: bool,
    /// Execute whole cached basic blocks between event horizons (wall-clock
    /// optimization; never changes virtual cycles or digests).
    pub block_engine: bool,
    /// Chain hot blocks into superblock traces (wall-clock optimization;
    /// never changes virtual cycles or digests). Requires `block_engine`.
    pub superblocks: bool,
    /// Sample the guest PC every `n` retired instructions — a heavier
    /// instrumentation level for re-running alarm replayers ("with
    /// increasing levels of instrumentation", §4.6.2) and for the DOS
    /// replay role ("the replay analyzes the code that has dominated the
    /// system's execution time", Table 1).
    pub profile_sample_every: Option<u64>,
    /// Recover from transport faults and transient divergences by rewinding
    /// to the last retained checkpoint and re-requesting the span (the CR's
    /// deployment posture). Off by default: alarm replayers and the tamper
    /// tests want divergence surfaced immediately.
    pub resilient: bool,
    /// Deterministic fault injections for this replay (empty = none).
    pub fault_plan: rnr_log::FaultPlan,
    /// Verification-replay worker count for span-partitioned parallel replay
    /// (`0` = serial, the classic single-threaded CR). Like
    /// [`ReplayConfig::block_engine`] this is a wall-clock-only knob: the
    /// fold in [`crate::replay_spans`] reconstructs cycles, checkpoints, and
    /// alarm bookkeeping byte-identically to a serial run.
    pub parallel_spans: usize,
    /// Back a streaming source's refetch recovery with the durable segment
    /// store at this config's directory (DESIGN.md §13): damaged or dropped
    /// spans are re-read from sealed segments first, falling back to the
    /// recorder's in-memory retained store. Resilience-only knob — never
    /// changes cycles, digests, or the report.
    pub durable_log: Option<rnr_log::DurableLogConfig>,
    /// VRT hardware parameters of the recording (granule, watched ranges),
    /// for the alarm replayer's precise memory-safety classification
    /// (DESIGN.md §15). Never arms a replay VM — replay VMs are always
    /// unarmed, so VRT alarms come from the log only. `None` falls back to
    /// [`rnr_vrt::VrtParams::default`].
    pub vrt: Option<rnr_vrt::VrtParams>,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig {
            checkpoint_interval: Some(crate::VIRTUAL_HZ),
            retain: 8,
            callret: CallRetTrap::None,
            costs: CostModel::default(),
            ras_capacity: RasConfig::DEFAULT_CAPACITY,
            landing_seed: 0x1a5d,
            collect_cases: true,
            nesting_ret_sites: Vec::new(),
            decode_cache: true,
            block_engine: true,
            superblocks: true,
            profile_sample_every: None,
            resilient: false,
            fault_plan: rnr_log::FaultPlan::default(),
            parallel_spans: 0,
            durable_log: None,
            vrt: None,
        }
    }
}

/// Per-record trace entry a span worker leaves behind for the parallel-replay
/// fold (`crate::parallel`): worker-relative cycles plus the pages and disk
/// blocks dirtied since the previous mark. The fold turns these deltas into
/// the serial CR's absolute clock, checkpoint schedule, and checkpoint costs.
#[derive(Debug, Clone)]
pub(crate) struct SpanMark {
    /// Global log index of the record just consumed; `None` for the entry
    /// mark (epoch baseline) and the post-seam tail mark.
    pub record: Option<usize>,
    /// Retired instructions at the mark.
    pub retired: u64,
    /// Worker-local virtual cycles at the mark (workers start at cycle 0).
    pub cycles: u64,
    /// Pages dirtied since the previous mark.
    pub dirty_pages: Vec<usize>,
    /// Disk blocks dirtied since the previous mark.
    pub dirty_blocks: Vec<usize>,
}

/// What [`Replayer::run_span`] returns: the worker's outcome plus the seam
/// digest and the per-record marks the fold consumes.
#[derive(Debug)]
pub(crate) struct SpanRun {
    /// Architectural digest at the worker's starting state (its seam with
    /// the previous span).
    pub start_digest: Digest,
    /// Per-record marks, starting with the entry mark.
    pub marks: Vec<SpanMark>,
    /// The worker's replay outcome (cycles are worker-relative).
    pub outcome: ReplayOutcome,
}

/// A JOP alarm lifted from the log (Table 1, row 2), for replay-side
/// verification against the full function table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JopCase {
    /// Thread running the indirect branch.
    pub tid: rnr_ras::ThreadId,
    /// PC of the indirect branch or call.
    pub branch_pc: Addr,
    /// The resolved target.
    pub target: Addr,
    /// Retired-instruction count at the alarm.
    pub at_insn: u64,
    /// Virtual cycle at the alarm.
    pub at_cycle: u64,
}

/// Which detector family raised an escalated alarm, with its payload.
///
/// Both families share the escalation machinery end to end — checkpoints,
/// the AR worker pool, span-parallel case collection, the farm's AR lane —
/// so a case carries its detector-specific payload behind one type.
#[derive(Debug, Clone, Copy)]
pub enum CaseKind {
    /// A RAS return misprediction — the ROP detector (§4.5).
    Ras(AlarmInfo),
    /// A Variable Record Table memory-safety alarm (DESIGN.md §15).
    Vrt(VrtAlarmInfo),
}

impl CaseKind {
    /// Retired-instruction count at the alarm.
    pub fn at_insn(&self) -> u64 {
        match self {
            CaseKind::Ras(info) => info.at_insn,
            CaseKind::Vrt(info) => info.at_insn,
        }
    }

    /// Virtual cycle at the alarm.
    pub fn at_cycle(&self) -> u64 {
        match self {
            CaseKind::Ras(info) => info.at_cycle,
            CaseKind::Vrt(info) => info.at_cycle,
        }
    }

    /// Thread running when the alarm fired.
    pub fn tid(&self) -> ThreadId {
        match self {
            CaseKind::Ras(info) => info.tid,
            CaseKind::Vrt(info) => info.tid,
        }
    }
}

/// An alarm the CR could not discard, packaged for an alarm replayer.
#[derive(Debug, Clone)]
pub struct AlarmCase {
    /// The checkpoint immediately preceding the alarm.
    pub checkpoint: Checkpoint,
    /// The alarm itself, tagged by detector family.
    pub kind: CaseKind,
    /// Index of the alarm record in the input log.
    pub alarm_index: usize,
    /// The CR's own virtual clock when it processed the alarm record — the
    /// measured CR position behind the recorded execution, used for the §8.4
    /// detection window.
    pub cr_cycle: u64,
}

impl AlarmCase {
    /// Retired-instruction count at the alarm.
    pub fn at_insn(&self) -> u64 {
        self.kind.at_insn()
    }

    /// Virtual cycle at the alarm.
    pub fn at_cycle(&self) -> u64 {
        self.kind.at_cycle()
    }
}

/// Replay failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The replayed execution diverged from the log.
    Divergence {
        /// Retired instructions at the divergence.
        at_insn: u64,
        /// Human-readable detail.
        detail: String,
    },
    /// The guest faulted during replay.
    GuestFault(FaultKind),
    /// The log ended without an `End` marker.
    UnexpectedEndOfLog,
    /// The log transport detected corruption, truncation, or a sequence
    /// anomaly that has not (yet) been healed.
    Transport(rnr_log::CodecError),
    /// Recovery was attempted and exhausted: the named fault persisted
    /// through every rewind/re-request the policy allows.
    Unrecoverable {
        /// The fault that could not be healed.
        fault: Box<ReplayError>,
        /// Every rewind the replayer performed before giving up.
        trail: Vec<RewindStep>,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Divergence { at_insn, detail } => {
                write!(f, "replay diverged at instruction {at_insn}: {detail}")
            }
            ReplayError::GuestFault(k) => write!(f, "guest fault during replay: {k:?}"),
            ReplayError::UnexpectedEndOfLog => write!(f, "input log ended without an End marker"),
            ReplayError::Transport(e) => write!(f, "log transport fault: {e}"),
            ReplayError::Unrecoverable { fault, trail } => {
                write!(f, "unrecoverable after {} rewind(s): {fault}", trail.len())
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// One checkpoint rewind performed during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewindStep {
    /// Retired-instruction count when the fault surfaced.
    pub at_insn: u64,
    /// The checkpoint instruction count rewound to.
    pub to_insn: u64,
    /// Id of the checkpoint restored.
    pub checkpoint_id: u64,
    /// The fault that forced the rewind.
    pub reason: String,
}

/// What recovery did during one replay run (all zeros when nothing faulted).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayRecovery {
    /// Checkpoint rewinds performed.
    pub rewinds: u64,
    /// Instructions re-executed across all rewinds.
    pub rewound_insns: u64,
    /// Divergence-quarantined spans re-executed with the block engine off.
    pub block_fallback_spans: u64,
    /// Transport-level detections and healings.
    pub transport: rnr_log::TransportStats,
    /// The rewind trail, in order.
    pub trail: Vec<RewindStep>,
}

impl ReplayRecovery {
    /// True when any fault was detected, healed, or worked around.
    pub fn any(&self) -> bool {
        self.rewinds > 0
            || self.block_fallback_spans > 0
            || self.transport.faults_detected > 0
            || self.transport.duplicates_dropped > 0
            || self.transport.reorders_healed > 0
            || self.transport.batches_refetched > 0
    }
}

/// A shadow-RAS anomaly observed at a trapped return (alarm replay).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShadowEventKind {
    /// Underflow that matched an evict record (benign).
    UnderflowMatched,
    /// Underflow with no matching evict record.
    UnderflowUnexplained,
    /// Mismatch explained by unwinding to a live frame (setjmp/longjmp).
    MismatchUnwound {
        /// Frames discarded by the unwind.
        frames: usize,
    },
    /// Mismatch with no live frame matching the target.
    MismatchUnexplained {
        /// The shadow prediction.
        predicted: Addr,
    },
    /// Whitelisted return to an illegal target.
    WhitelistViolation,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct ShadowEvent {
    pub at_insn: u64,
    pub ret_pc: Addr,
    #[allow(dead_code)]
    pub actual: Addr,
    pub kind: ShadowEventKind,
}

/// Results of a replay run.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Total virtual cycles spent replaying (from the engine's start point).
    pub cycles: u64,
    /// Retired instructions at the end.
    pub retired: u64,
    /// Final architectural digest (compare with the recording's).
    pub final_digest: Digest,
    /// True if `expected_digest` was provided and matched.
    pub verified: Option<bool>,
    /// Overhead attribution (Figure 7(b), including the `Chk` bucket).
    pub attribution: CycleAttribution,
    /// Checkpoints taken / retained high-water mark.
    pub checkpoints_taken: u64,
    /// Maximum checkpoints simultaneously retained.
    pub checkpoints_live_max: usize,
    /// Alarm records encountered.
    pub alarms_seen: u64,
    /// Underflow alarms cancelled by evict matching (§4.6.2).
    pub underflows_cancelled: u64,
    /// Alarms needing an alarm replayer.
    pub alarm_cases: Vec<AlarmCase>,
    /// JOP alarms found in the log (Table 1, row 2).
    pub jop_cases: Vec<JopCase>,
    /// Call/return traps taken (alarm-replay timing driver, Figure 9).
    pub callret_traps: u64,
    /// Console output reproduced by the replayed guest.
    pub console: Vec<u8>,
    /// What fault recovery did during this run (all zeros when clean).
    pub recovery: ReplayRecovery,
    /// Shadow-RAS anomalies (alarm replay only).
    pub(crate) shadow_events: Vec<ShadowEvent>,
    /// PC-sample histogram (`pc -> samples`), when profiling was enabled.
    pub profile: std::collections::HashMap<Addr, u64>,
    /// The VM at the stop point (alarm forensics reads its memory).
    pub(crate) vm: GuestVm,
}

impl ReplayOutcome {
    /// The guest VM at the stop point, for state auditing (§3.2). Exposes
    /// registers, memory, and introspectable kernel structures.
    pub fn vm(&self) -> &GuestVm {
        &self.vm
    }
}

/// The deterministic replayer (both CR and AR are configurations of it).
#[derive(Debug)]
pub struct Replayer {
    vm: GuestVm,
    disk: DiskDevice,
    console: Vec<u8>,
    intro: Introspector,
    backras: BackRasTable,
    current_tid: ThreadId,
    dying: Option<ThreadId>,
    source: LogSource,
    cursor: LogCursor,
    store: CheckpointStore,
    evict_store: HashMap<ThreadId, Vec<Addr>>,
    attribution: CycleAttribution,
    landing: StdRng,
    cfg: ReplayConfig,
    last_checkpoint_cycle: u64,
    start_cycles: u64,
    alarms_seen: u64,
    cancelled: u64,
    cases: Vec<AlarmCase>,
    jop_cases: Vec<JopCase>,
    callret_traps: u64,
    shadow: Option<ShadowRas>,
    shadow_events: Vec<ShadowEvent>,
    expected_digest: Option<Digest>,
    stop_after_record: Option<usize>,
    stop_at_insn: Option<u64>,
    next_checkpoint_id: u64,
    profile: std::collections::HashMap<Addr, u64>,
    next_sample: u64,
    /// Side-state snapshot matching the latest checkpoint, for in-place
    /// rewinds (resilient mode only).
    recovery_point: Option<Box<RecoveryPoint>>,
    recovery: ReplayRecovery,
    /// Retired count of the last recovered fault + attempts at that point.
    last_fault_insn: Option<u64>,
    same_point_attempts: u32,
    /// Block engine disabled for the current span after a divergence.
    block_quarantined: bool,
    injected_cr_fired: bool,
    injected_block_fired: bool,
    /// Leave a [`SpanMark`] after every consumed record (parallel span
    /// workers; mutually exclusive with checkpointing).
    span_trace: bool,
    span_marks: Vec<SpanMark>,
}

/// Everything [`Replayer::rewind`] needs beyond the [`Checkpoint`] itself:
/// the replayer-level accumulators that the checkpoint (sized for alarm
/// replay) does not carry. Captured at every checkpoint in resilient mode,
/// so a rewound span never contains a checkpoint boundary.
#[derive(Debug, Clone)]
struct RecoveryPoint {
    checkpoint: Checkpoint,
    /// The replayer's own table *without* the checkpoint's extra
    /// save of the running thread's RAS — exact continuation state.
    backras: BackRasTable,
    attribution: CycleAttribution,
    landing: StdRng,
    alarms_seen: u64,
    cancelled: u64,
    cases_len: usize,
    jop_len: usize,
    callret_traps: u64,
    console_len: usize,
    shadow_events_len: usize,
    last_checkpoint_cycle: u64,
    next_checkpoint_id: u64,
    next_sample: u64,
    profile: std::collections::HashMap<Addr, u64>,
}

/// Total checkpoint rewinds a resilient replay may perform.
const MAX_REWINDS: u64 = 16;
/// Recovery attempts allowed for a fault recurring at one instruction.
const MAX_ATTEMPTS_PER_POINT: u32 = 3;

impl Replayer {
    /// A replayer starting from the initial VM state (the CR, §4.6.1).
    ///
    /// The log may be a complete [`Arc<InputLog>`](std::sync::Arc) or a live
    /// [`rnr_log::LogStream`] fed by a still-running recorder — replay is
    /// identical either way; a streaming source simply blocks when it
    /// catches up to the recorder.
    pub fn new(spec: &VmSpec, log: impl Into<LogSource>, cfg: ReplayConfig) -> Replayer {
        let machine = MachineConfig {
            syscall_entry: spec.kernel.syscall_entry(),
            ras: RasConfig::replay(cfg.ras_capacity),
            exits: ExitControls { rdtsc_exiting: true, evict_exiting: false, callret_trap: cfg.callret },
            costs: cfg.costs,
            decode_cache: cfg.decode_cache,
            block_engine: cfg.block_engine,
            superblocks: cfg.superblocks,
            ..MachineConfig::default()
        };
        let mut images = vec![spec.kernel.image().clone()];
        images.extend(spec.extra_images.iter().cloned());
        images.push(spec.boot.to_image());
        let image_refs: Vec<&rnr_isa::Image> = images.iter().collect();
        let mut vm = GuestVm::new(machine, &image_refs);
        vm.set_entry(spec.kernel.entry());
        vm.cpu_mut().ras.set_whitelists(spec.kernel.whitelists());
        let intro = Introspector::new(&spec.kernel);
        let disk = DiskDevice::new(spec.disk_bytes, spec.disk_seed);
        Self::finish_setup(vm, intro, disk, log.into(), cfg)
    }

    /// A replayer resuming from a checkpoint (the AR, §4.6.2). When
    /// `shadow` is true, a software unbounded multithreaded RAS is modeled
    /// from the checkpoint's BackRAS.
    pub fn from_checkpoint(
        spec: &VmSpec,
        log: impl Into<LogSource>,
        cfg: ReplayConfig,
        checkpoint: &Checkpoint,
        shadow: bool,
    ) -> Replayer {
        let machine = MachineConfig {
            syscall_entry: spec.kernel.syscall_entry(),
            ras: RasConfig::replay(cfg.ras_capacity),
            exits: ExitControls { rdtsc_exiting: true, evict_exiting: false, callret_trap: cfg.callret },
            costs: cfg.costs,
            decode_cache: cfg.decode_cache,
            block_engine: cfg.block_engine,
            superblocks: cfg.superblocks,
            ..MachineConfig::default()
        };
        let mut vm = GuestVm::new(machine, &[]);
        vm.mem_mut().restore_pages(checkpoint.mem_pages.clone());
        vm.cpu_mut().restore_state(&checkpoint.cpu);
        vm.cpu_mut().ras.set_whitelists(spec.kernel.whitelists());
        vm.restore_counters(checkpoint.at_insn, checkpoint.at_cycle);
        let intro = Introspector::new(&spec.kernel);
        // The checkpoint's disk replaces the boot image outright — building
        // (and deterministically filling) a fresh one here would be pure
        // waste, and it used to dominate alarm-replay setup time.
        let mut r = Self::finish_setup(vm, intro, checkpoint.disk.clone(), log.into(), cfg);
        r.backras = checkpoint.backras.clone();
        r.current_tid = checkpoint.current_tid;
        r.dying = checkpoint.dying;
        r.cursor = checkpoint.cursor;
        r.evict_store = checkpoint.evict_store.clone();
        r.start_cycles = checkpoint.at_cycle;
        r.last_checkpoint_cycle = checkpoint.at_cycle;
        if shadow {
            let current = checkpoint.current_tid;
            let entry = checkpoint.backras.load(current);
            r.shadow = Some(ShadowRas::from_backras(
                &checkpoint.backras,
                current,
                entry.entries(),
                spec.kernel.whitelists(),
            ));
        }
        r
    }

    fn finish_setup(
        mut vm: GuestVm,
        intro: Introspector,
        disk: DiskDevice,
        mut source: LogSource,
        cfg: ReplayConfig,
    ) -> Replayer {
        if let Some(d) = cfg.durable_log.as_ref() {
            source.attach_durable(&d.dir);
        }
        vm.add_breakpoint(intro.switch_sp_trap());
        vm.add_breakpoint(intro.thread_create_trap());
        vm.add_breakpoint(intro.thread_exit_trap());
        let landing = StdRng::seed_from_u64(cfg.landing_seed);
        Replayer {
            vm,
            disk,
            console: Vec::new(),
            intro,
            backras: BackRasTable::new(),
            current_tid: ThreadId(1),
            dying: None,
            cursor: LogCursor::new(0),
            source,
            store: CheckpointStore::new(cfg.retain),
            evict_store: HashMap::new(),
            attribution: CycleAttribution::new(),
            landing,
            last_checkpoint_cycle: 0,
            start_cycles: 0,
            alarms_seen: 0,
            cancelled: 0,
            cases: Vec::new(),
            jop_cases: Vec::new(),
            callret_traps: 0,
            shadow: None,
            shadow_events: Vec::new(),
            expected_digest: None,
            stop_after_record: None,
            stop_at_insn: None,
            next_checkpoint_id: 0,
            profile: std::collections::HashMap::new(),
            next_sample: cfg.profile_sample_every.unwrap_or(0),
            recovery_point: None,
            recovery: ReplayRecovery::default(),
            last_fault_insn: None,
            same_point_attempts: 0,
            block_quarantined: false,
            injected_cr_fired: false,
            injected_block_fired: false,
            span_trace: false,
            span_marks: Vec::new(),
            cfg,
        }
    }

    /// Arms final-state verification against the recording's digest.
    pub fn verify_against(&mut self, digest: Digest) {
        self.expected_digest = Some(digest);
    }

    /// Stops after the log record at `index` has been consumed (the alarm
    /// replayer's "replay until the alarm marker", §4.6.2).
    pub fn stop_after_record(&mut self, index: usize) {
        self.stop_after_record = Some(index);
    }

    /// Stops at (or just past) retired-instruction count `insn` — the §3.2
    /// execution-auditing entry point: "an execution context can be
    /// replayed to audit the code and data state". The stop is exact at
    /// asynchronous-record boundaries; a synchronous data record in flight
    /// may overshoot to its trapping instruction.
    pub fn stop_at_insn(&mut self, insn: u64) {
        self.stop_at_insn = Some(insn);
    }

    /// Runs the replay to the end of the log (or the configured stop point).
    ///
    /// In resilient mode ([`ReplayConfig::resilient`]), transport faults
    /// and transient divergences trigger recovery — rewind to the latest
    /// retained checkpoint, re-request the damaged span from the recorder's
    /// retained log, re-execute — before any error is surfaced.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::Divergence`] when the execution does not match
    /// the log — which, under RnR's determinism guarantee, indicates a bug
    /// or tampering, not a tolerable condition — and
    /// [`ReplayError::Unrecoverable`] when resilient-mode recovery was
    /// exhausted without healing the fault.
    pub fn run(mut self) -> Result<ReplayOutcome, ReplayError> {
        if self.cfg.collect_cases {
            // The initial checkpoint: alarms before the first interval need
            // a base to replay from.
            self.take_checkpoint();
        }
        loop {
            match self.drive() {
                Ok(()) => return Ok(self.finish()),
                Err(e) => self.try_recover(e)?,
            }
        }
    }

    /// The main replay loop; returns `Ok(())` at the end of the log or a
    /// configured stop point, and bubbles every fault to [`Replayer::run`]
    /// for the recovery decision.
    fn drive(&mut self) -> Result<(), ReplayError> {
        loop {
            self.check_injected_faults()?;
            if let Some(stop) = self.stop_after_record {
                if self.cursor.index() > stop {
                    return Ok(());
                }
            }
            if let Some(stop) = self.stop_at_insn {
                if self.vm.retired() >= stop {
                    return Ok(());
                }
                // Do not run past the audit point for records with a known
                // injection/arrival instruction.
                let idx = self.cursor.index();
                let next = self.source.try_get(idx).map_err(ReplayError::Transport)?;
                if let Some(at) = next.and_then(rnr_log::Record::at_insn) {
                    if at > stop {
                        self.run_to(stop)?;
                        return Ok(());
                    }
                }
            }
            let index = self.cursor.index();
            let record = match self.source.try_get(index) {
                Ok(Some(r)) => r.clone(),
                Ok(None) => return Err(ReplayError::UnexpectedEndOfLog),
                Err(e) => return Err(ReplayError::Transport(e)),
            };
            match record {
                Record::End { at_insn, .. } => {
                    self.run_to(at_insn)?;
                    self.cursor.advance();
                    if self.span_trace {
                        self.push_span_mark(Some(index));
                    }
                    return Ok(());
                }
                Record::Evict { tid, addr } => {
                    self.evict_store.entry(tid).or_default().push(addr);
                    self.cursor.advance();
                }
                Record::Alarm(info) => {
                    // Reach the alarm point first: the alarm replayer's
                    // software RAS must observe the mispredicting return
                    // itself ("consuming the input log until it reaches the
                    // alarm marker", §4.6.2).
                    self.run_to(info.at_insn)?;
                    self.cursor.advance();
                    self.alarms_seen += 1;
                    self.handle_alarm(info, index);
                }
                Record::JopAlarm { tid, branch_pc, target, at_insn, at_cycle } => {
                    self.run_to(at_insn)?;
                    self.cursor.advance();
                    self.alarms_seen += 1;
                    self.jop_cases.push(JopCase { tid, branch_pc, target, at_insn, at_cycle });
                }
                Record::VrtAlarm(info) => {
                    // The CR has no precise allocation view, so (unlike RAS
                    // underflows) no VRT alarm can be discarded here: every
                    // one escalates to an alarm replayer.
                    self.run_to(info.at_insn)?;
                    self.cursor.advance();
                    self.alarms_seen += 1;
                    if self.cfg.collect_cases {
                        let checkpoint = self
                            .store
                            .before(info.at_insn)
                            .cloned()
                            .expect("initial checkpoint always exists");
                        self.cases.push(AlarmCase {
                            checkpoint,
                            kind: CaseKind::Vrt(info),
                            alarm_index: index,
                            cr_cycle: self.vm.cycles(),
                        });
                    }
                }
                Record::Interrupt { irq, at_insn } => {
                    self.run_to(at_insn)?;
                    self.charge_landing();
                    if irq == IRQ_DISK {
                        if self.disk.in_flight().is_none() {
                            return Err(self.diverge("disk interrupt with no in-flight operation"));
                        }
                        self.disk.complete(&mut self.vm);
                    }
                    self.vm
                        .inject_interrupt(irq)
                        .map_err(|e| self.diverge_msg(format!("interrupt injection failed: {e}")))?;
                    self.cursor.advance();
                }
                Record::Dma { addr, data, at_insn, .. } => {
                    self.run_to(at_insn)?;
                    let bytes = data.len() as u64;
                    self.vm
                        .mem_mut()
                        .write_bytes(addr, &data)
                        .map_err(|_| self.diverge_msg(format!("DMA outside guest memory at {addr:#x}")))?;
                    self.charge(Category::Network, self.cfg.costs.log_per_word * bytes.div_ceil(8));
                    self.cursor.advance();
                }
                Record::Rdtsc { value } => {
                    match self.run_to_sync()? {
                        Exit::Rdtsc { rd } => {
                            self.charge(Category::Rdtsc, self.cfg.costs.vmexit);
                            self.vm.finish_io(FinishIo::Read { rd, value });
                        }
                        other => return Err(self.diverge_msg(format!("expected rdtsc exit, got {other:?}"))),
                    }
                    self.cursor.advance();
                }
                Record::PioIn { port, value } => {
                    match self.run_to_sync()? {
                        Exit::PioIn { rd, port: p } if p == port => {
                            self.charge(Category::PioMmio, self.cfg.costs.vmexit);
                            self.vm.finish_io(FinishIo::Read { rd, value });
                        }
                        other => {
                            return Err(self.diverge_msg(format!("expected in({port:#x}), got {other:?}")))
                        }
                    }
                    self.cursor.advance();
                }
                Record::MmioRead { addr, value } => {
                    match self.run_to_sync()? {
                        Exit::MmioRead { rd, addr: a } if a == addr => {
                            self.charge(Category::PioMmio, self.cfg.costs.vmexit);
                            self.vm.finish_io(FinishIo::Read { rd, value });
                        }
                        other => {
                            return Err(
                                self.diverge_msg(format!("expected mmio read {addr:#x}, got {other:?}"))
                            )
                        }
                    }
                    self.cursor.advance();
                }
            }
            self.maybe_checkpoint();
            if self.span_trace {
                self.push_span_mark(Some(index));
            }
        }
    }

    /// Runs this replayer as one span worker of a parallel CR: consume the
    /// records before `records_end` (all remaining records when `None` — the
    /// final span, which ends at the log's `End` marker), then run to the
    /// `seam` instruction where the next span's seed was captured, leaving a
    /// [`SpanMark`] after every record plus a tail mark at the seam.
    pub(crate) fn run_span(
        mut self,
        records_end: Option<usize>,
        seam: Option<u64>,
    ) -> Result<SpanRun, ReplayError> {
        let start_digest = self.current_digest();
        self.span_trace = true;
        // Entry mark: drains the epoch noise of construction/restore and
        // baselines dirty tracking. For the first span this is exactly what
        // the serial CR's initial checkpoint would have drained.
        self.push_span_mark(None);
        if let Some(end) = records_end {
            if end > self.cursor.index() {
                self.stop_after_record = Some(end - 1);
                self.drive()?;
            }
        } else {
            self.drive()?;
        }
        if let Some(s) = seam {
            self.run_to(s)?;
            // A fault-plan injection point inside the record-free tail must
            // still fire in this span's worker, as it would have in the
            // serial drive loop.
            self.check_injected_faults()?;
            self.push_span_mark(None);
        }
        let marks = std::mem::take(&mut self.span_marks);
        Ok(SpanRun { start_digest, marks, outcome: self.finish() })
    }

    /// Drives until the record at `index` has been consumed, without
    /// finishing — the parallel fold's checkpoint-materialization pass calls
    /// this repeatedly with ascending indices.
    pub(crate) fn drive_to_record(&mut self, index: usize) -> Result<(), ReplayError> {
        self.stop_after_record = Some(index);
        self.drive()
    }

    /// The combined VM + disk digest at the current state (same combination
    /// as [`ReplayOutcome::final_digest`]).
    /// Decoded-block statistics of this replayer's VM (wall-clock
    /// diagnostics for the parallel orchestrator).
    pub(crate) fn block_stats(&self) -> rnr_machine::BlockStats {
        self.vm.block_stats()
    }

    pub(crate) fn current_digest(&self) -> Digest {
        let mut h = Fnv1a::new();
        h.update_u64(self.vm.digest().0);
        h.update_u64(self.disk.store().digest().0);
        h.finish()
    }

    /// Advances the landing RNG past `draws` asynchronous-event landings, so
    /// a mid-log span worker observes exactly the draws the serial CR would
    /// have at its position. Each `Record::Interrupt` consumes exactly one
    /// bounded draw, so the draw count is the interrupt-record count before
    /// the span.
    pub(crate) fn skip_landing_draws(&mut self, draws: u64) {
        for _ in 0..draws {
            let _ = self.landing.gen_range(1..=self.cfg.costs.replay_max_steps.max(1));
        }
    }

    /// Packages the current state as a [`Checkpoint`] under externally
    /// supplied identity/schedule fields (the parallel fold's absolute clock
    /// and record position). The running thread's RAS is folded into the
    /// BackRAS copy exactly as [`Replayer::take_checkpoint`] does.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn snapshot_checkpoint(
        &mut self,
        id: u64,
        at_insn: u64,
        at_cycle: u64,
        cursor: LogCursor,
        evict_store: HashMap<ThreadId, Vec<Addr>>,
        dirty_pages: usize,
        dirty_blocks: usize,
    ) -> Checkpoint {
        // Drain the dirty-tracking epochs exactly as `take_checkpoint` does
        // before cloning: the disk clone carries its dirty bookkeeping into
        // the checkpoint, and an alarm replayer restored from it must see
        // the same (empty) baseline either way — a stale dirty list would
        // inflate its first periodic checkpoint's cost.
        let _ = self.vm.mem_mut().begin_epoch();
        let _ = self.vm.mem_mut().take_cow_faults();
        let _ = self.disk.store_mut().begin_epoch();
        let mut backras = self.backras.clone();
        backras.save(self.current_tid, BackRasEntry::from_entries(self.vm.cpu().ras.snapshot()));
        Checkpoint {
            id,
            at_insn,
            at_cycle,
            cpu: self.vm.cpu().save_state(),
            mem_pages: self.vm.mem().snapshot_pages(),
            disk: self.disk.clone(),
            backras,
            current_tid: self.current_tid,
            dying: self.dying,
            cursor,
            evict_store,
            dirty_pages,
            dirty_blocks,
        }
    }

    /// Attaches the run-wide shared decoded-block cache (wall-clock only;
    /// never affects cycles, digests, or verdicts).
    pub fn attach_shared_cache(&mut self, shared: std::sync::Arc<rnr_machine::SharedPageCache>) {
        self.vm.attach_shared_cache(shared);
    }

    fn push_span_mark(&mut self, record: Option<usize>) {
        let dirty_pages = self.vm.mem_mut().begin_epoch();
        let _ = self.vm.mem_mut().take_cow_faults();
        let dirty_blocks = self.disk.store_mut().begin_epoch();
        self.span_marks.push(SpanMark {
            record,
            retired: self.vm.retired(),
            cycles: self.vm.cycles(),
            dirty_pages,
            dirty_blocks,
        });
    }

    fn finish(mut self) -> ReplayOutcome {
        let final_digest = {
            let mut h = Fnv1a::new();
            h.update_u64(self.vm.digest().0);
            h.update_u64(self.disk.store().digest().0);
            h.finish()
        };
        let mut recovery = std::mem::take(&mut self.recovery);
        recovery.transport = self.source.transport_stats();
        ReplayOutcome {
            cycles: self.vm.cycles() - self.start_cycles,
            retired: self.vm.retired(),
            final_digest,
            verified: self.expected_digest.map(|d| d == final_digest),
            attribution: std::mem::take(&mut self.attribution),
            checkpoints_taken: self.store.taken(),
            checkpoints_live_max: self.store.max_live(),
            alarms_seen: self.alarms_seen,
            underflows_cancelled: self.cancelled,
            alarm_cases: std::mem::take(&mut self.cases),
            jop_cases: std::mem::take(&mut self.jop_cases),
            callret_traps: self.callret_traps,
            console: std::mem::take(&mut self.console),
            recovery,
            shadow_events: std::mem::take(&mut self.shadow_events),
            profile: std::mem::take(&mut self.profile),
            vm: self.vm,
        }
    }

    /// Fires the fault plan's replay-level injections (transient CR
    /// divergence, block-engine divergence) exactly once each. The fired
    /// flags are deliberately *not* rolled back by a rewind — a healed
    /// transient fault must not re-fire, or recovery would loop forever.
    fn check_injected_faults(&mut self) -> Result<(), ReplayError> {
        if let Some(at) = self.cfg.fault_plan.cr_divergence_at_insn {
            if !self.injected_cr_fired && self.vm.retired() >= at {
                self.injected_cr_fired = true;
                return Err(self.diverge("injected transient divergence (fault plan)"));
            }
        }
        if let Some(at) = self.cfg.fault_plan.block_divergence_at_insn {
            if !self.injected_block_fired && self.vm.retired() >= at {
                self.injected_block_fired = true;
                return Err(self.diverge("injected block-engine divergence (fault plan)"));
            }
        }
        Ok(())
    }

    /// The recovery decision: heal and rewind, or surface the fault.
    ///
    /// Recoverable faults (resilient mode only) are transport faults —
    /// healed by re-requesting the span from the recorder's retained log —
    /// and divergences, treated as transient and re-executed from the last
    /// checkpoint (with the block engine quarantined for the span, since a
    /// block-engine bug is one plausible cause). Bounded: a fault that
    /// recurs at the same instruction [`MAX_ATTEMPTS_PER_POINT`] times, or
    /// more than [`MAX_REWINDS`] rewinds overall, becomes
    /// [`ReplayError::Unrecoverable`] carrying the rewind trail.
    fn try_recover(&mut self, err: ReplayError) -> Result<(), ReplayError> {
        let retriable = matches!(err, ReplayError::Transport(_) | ReplayError::Divergence { .. });
        if !self.cfg.resilient || !retriable || self.recovery_point.is_none() {
            return Err(err);
        }
        let at = self.vm.retired();
        if self.last_fault_insn == Some(at) {
            self.same_point_attempts += 1;
        } else {
            self.last_fault_insn = Some(at);
            self.same_point_attempts = 1;
        }
        if self.recovery.rewinds >= MAX_REWINDS || self.same_point_attempts > MAX_ATTEMPTS_PER_POINT {
            return Err(self.unrecoverable(err));
        }
        if let ReplayError::Transport(_) = &err {
            // Re-request the damaged frame (bounded retries, backoff in
            // virtual time) before re-executing the span.
            if let Err(c) = self.source.recover() {
                return Err(self.unrecoverable(ReplayError::Transport(c)));
            }
        }
        if matches!(err, ReplayError::Divergence { .. }) && self.vm.block_engine_enabled() {
            // Graceful degradation: re-execute the failed span stepped; the
            // next checkpoint lifts the quarantine.
            self.vm.set_block_engine(false);
            self.block_quarantined = true;
            self.recovery.block_fallback_spans += 1;
        }
        let step = self.rewind(&err.to_string());
        self.recovery.rewinds += 1;
        self.recovery.rewound_insns += step.at_insn.saturating_sub(step.to_insn);
        self.recovery.trail.push(step);
        Ok(())
    }

    fn unrecoverable(&mut self, fault: ReplayError) -> ReplayError {
        ReplayError::Unrecoverable { fault: Box::new(fault), trail: self.recovery.trail.clone() }
    }

    /// In-place rewind to the latest recovery point: restores the VM (warm
    /// page restore — unchanged pages stay `Arc`-shared), the disk, and
    /// every replayer-level accumulator, so re-execution is bit-identical
    /// to a run that never faulted.
    fn rewind(&mut self, reason: &str) -> RewindStep {
        let rp = self.recovery_point.clone().expect("try_recover checked the recovery point");
        let cp = &rp.checkpoint;
        let from = self.vm.retired();
        self.vm.mem_mut().restore_pages(cp.mem_pages.clone());
        // Discard the restore's epoch noise (restore marks every page dirty
        // and may count CoW activity): the re-executed span must observe
        // exactly the fault-free run's dirtying, or checkpoint costs would
        // drift.
        let _ = self.vm.mem_mut().begin_epoch();
        let _ = self.vm.mem_mut().take_cow_faults();
        self.vm.cpu_mut().restore_state(&cp.cpu);
        self.vm.restore_counters(cp.at_insn, cp.at_cycle);
        self.disk = cp.disk.clone();
        self.backras = rp.backras.clone();
        self.current_tid = cp.current_tid;
        self.dying = cp.dying;
        self.cursor = cp.cursor;
        self.evict_store = cp.evict_store.clone();
        self.attribution = rp.attribution.clone();
        self.landing = rp.landing.clone();
        self.alarms_seen = rp.alarms_seen;
        self.cancelled = rp.cancelled;
        self.cases.truncate(rp.cases_len);
        self.jop_cases.truncate(rp.jop_len);
        self.callret_traps = rp.callret_traps;
        self.console.truncate(rp.console_len);
        self.shadow_events.truncate(rp.shadow_events_len);
        self.last_checkpoint_cycle = rp.last_checkpoint_cycle;
        self.next_checkpoint_id = rp.next_checkpoint_id;
        self.next_sample = rp.next_sample;
        self.profile = rp.profile.clone();
        RewindStep { at_insn: from, to_insn: cp.at_insn, checkpoint_id: cp.id, reason: reason.to_string() }
    }

    fn diverge(&self, detail: &str) -> ReplayError {
        ReplayError::Divergence { at_insn: self.vm.retired(), detail: detail.to_string() }
    }

    fn diverge_msg(&self, detail: String) -> ReplayError {
        ReplayError::Divergence { at_insn: self.vm.retired(), detail }
    }

    fn charge(&mut self, category: Category, cycles: u64) {
        self.vm.add_cycles(cycles);
        self.attribution.charge(category, cycles);
    }

    /// The §7.3 asynchronous-event landing: arm a performance counter, take
    /// the overshoot, single-step back to the exact instruction — modeled
    /// as 1..=max single-step VM exits.
    fn charge_landing(&mut self) {
        let steps = self.landing.gen_range(1..=self.cfg.costs.replay_max_steps.max(1));
        let cost = steps * self.cfg.costs.replay_step;
        self.charge(Category::Interrupt, cost);
    }

    fn handle_alarm(&mut self, info: AlarmInfo, index: usize) {
        if info.mispredict.kind == MispredictKind::Underflow {
            // In alarm replay the shadow-RAS handler may already have
            // consumed the matching evict entry for this very return; a
            // second pop here would starve later matches (duplicate evict
            // values are common). Each alarm consumes at most one entry.
            let shadow_handled = self.shadow.is_some()
                && self.shadow_events.last().is_some_and(|e| {
                    e.at_insn == info.at_insn
                        && e.ret_pc == info.mispredict.ret_pc
                        && matches!(e.kind, ShadowEventKind::UnderflowMatched)
                });
            if shadow_handled {
                self.cancelled += 1;
                return;
            }
            let stack = self.evict_store.entry(info.tid).or_default();
            if stack.last() == Some(&info.mispredict.actual) {
                // §4.6.2: matches the latest evict record from this thread —
                // a false alarm; drop both.
                stack.pop();
                self.cancelled += 1;
                return;
            }
        }
        if self.cfg.collect_cases {
            let checkpoint =
                self.store.before(info.at_insn).cloned().expect("initial checkpoint always exists");
            self.cases.push(AlarmCase {
                checkpoint,
                kind: CaseKind::Ras(info),
                alarm_index: index,
                cr_cycle: self.vm.cycles(),
            });
        }
    }

    fn maybe_checkpoint(&mut self) {
        if let Some(interval) = self.cfg.checkpoint_interval {
            if self.vm.cycles() - self.last_checkpoint_cycle >= interval {
                self.take_checkpoint();
            }
        }
    }

    fn take_checkpoint(&mut self) {
        if self.block_quarantined {
            // The quarantined span reached a clean checkpoint: lift the
            // stepped-execution fallback.
            self.vm.set_block_engine(true);
            self.block_quarantined = false;
        }
        let dirty_pages = self.vm.mem_mut().begin_epoch().len();
        let cow_faults = self.vm.mem_mut().take_cow_faults();
        let dirty_blocks = self.disk.store_mut().begin_epoch().len();
        let costs = self.cfg.costs;
        let cost = costs.checkpoint_fixed
            + costs.checkpoint_page_copy * (dirty_pages + dirty_blocks) as u64
            + costs.cow_fault * cow_faults;
        self.vm.add_cycles(cost);
        self.attribution.charge_checkpoint(cost);
        // "The hardware automatically saves the RAS into the BackRAS"
        // (§4.6.1) so the checkpoint captures the running thread's RAS too.
        let mut backras = self.backras.clone();
        backras.save(self.current_tid, BackRasEntry::from_entries(self.vm.cpu().ras.snapshot()));
        let checkpoint = Checkpoint {
            id: self.next_checkpoint_id,
            at_insn: self.vm.retired(),
            at_cycle: self.vm.cycles(),
            cpu: self.vm.cpu().save_state(),
            mem_pages: self.vm.mem().snapshot_pages(),
            disk: self.disk.clone(),
            backras,
            current_tid: self.current_tid,
            dying: self.dying,
            cursor: self.cursor,
            evict_store: self.evict_store.clone(),
            dirty_pages,
            dirty_blocks,
        };
        self.next_checkpoint_id += 1;
        self.last_checkpoint_cycle = self.vm.cycles();
        if self.cfg.resilient {
            self.recovery_point = Some(Box::new(RecoveryPoint {
                checkpoint: checkpoint.clone(),
                backras: self.backras.clone(),
                attribution: self.attribution.clone(),
                landing: self.landing.clone(),
                alarms_seen: self.alarms_seen,
                cancelled: self.cancelled,
                cases_len: self.cases.len(),
                jop_len: self.jop_cases.len(),
                callret_traps: self.callret_traps,
                console_len: self.console.len(),
                shadow_events_len: self.shadow_events.len(),
                last_checkpoint_cycle: self.last_checkpoint_cycle,
                next_checkpoint_id: self.next_checkpoint_id,
                next_sample: self.next_sample,
                profile: self.profile.clone(),
            }));
        }
        self.store.push(checkpoint);
    }

    /// Runs until exactly `target` instructions have retired, servicing
    /// breakpoints, device-output exits, and call/return traps on the way.
    fn run_to(&mut self, target: u64) -> Result<(), ReplayError> {
        if self.vm.retired() > target {
            return Err(self.diverge_msg(format!(
                "already past target instruction {target} (at {})",
                self.vm.retired()
            )));
        }
        loop {
            // With profiling on, stop early at sampling points.
            let stop = self.next_profile_stop(Some(target));
            let exit = self.vm.run(RunBudget::until(stop));
            if matches!(exit, Exit::BudgetExhausted) && stop < target {
                self.take_profile_sample();
                continue;
            }
            match exit {
                Exit::BudgetExhausted => return Ok(()),
                Exit::Halt => {
                    if self.vm.retired() == target {
                        return Ok(());
                    }
                    return Err(self.diverge("guest halted before the next event's instruction count"));
                }
                other => self.handle_intermediate(other)?,
            }
        }
    }

    /// Runs until a synchronous-data exit (rdtsc / pio-in / mmio-read).
    fn run_to_sync(&mut self) -> Result<Exit, ReplayError> {
        loop {
            let stop = self.next_profile_stop(None);
            let exit = self
                .vm
                .run(RunBudget { until_retired: (stop != u64::MAX).then_some(stop), until_cycles: None });
            match exit {
                Exit::BudgetExhausted => self.take_profile_sample(),
                Exit::Rdtsc { .. } | Exit::PioIn { .. } | Exit::MmioRead { .. } => return Ok(exit),
                Exit::Halt => return Err(self.diverge("guest halted while a data record was pending")),
                other => self.handle_intermediate(other)?,
            }
        }
    }

    /// The next instruction count to pause at for a profile sample, bounded
    /// by `target` when given. `u64::MAX` means "no sampling stop".
    fn next_profile_stop(&mut self, target: Option<u64>) -> u64 {
        let Some(step) = self.cfg.profile_sample_every else {
            return target.unwrap_or(u64::MAX);
        };
        if self.next_sample <= self.vm.retired() {
            self.next_sample = self.vm.retired() + step.max(1);
        }
        match target {
            Some(t) => self.next_sample.min(t),
            None => self.next_sample,
        }
    }

    /// Exits that replay handles locally, without consuming log records.
    fn handle_intermediate(&mut self, exit: Exit) -> Result<(), ReplayError> {
        let costs = self.cfg.costs;
        match exit {
            Exit::PioOut { port, value } => {
                self.charge(Category::PioMmio, costs.vmexit);
                match port {
                    PORT_DISK_SECTOR | PORT_DISK_ADDR | PORT_DISK_COUNT | PORT_DISK_CMD => {
                        self.disk.handle_out(port, value, 0);
                    }
                    PORT_CONSOLE => self.console.push(value as u8),
                    _ => {} // NIC transmit: outputs need no replay effect
                }
                self.vm.finish_io(FinishIo::Write);
            }
            Exit::MmioWrite { .. } => {
                self.charge(Category::PioMmio, costs.vmexit);
                self.vm.finish_io(FinishIo::Write);
            }
            Exit::Breakpoint { pc } => self.handle_breakpoint(pc),
            Exit::CallTrap { ret_addr, .. } => {
                self.callret_traps += 1;
                self.charge(Category::Other, costs.callret_trap);
                // After a retired call, sp names the slot holding ret_addr.
                let slot = self.vm.cpu().sp();
                if let Some(shadow) = self.shadow.as_mut() {
                    shadow.on_call(ret_addr, slot);
                }
            }
            Exit::RetTrap { ret_pc, target } => {
                self.callret_traps += 1;
                self.charge(Category::Other, costs.callret_trap);
                self.handle_shadow_ret(ret_pc, target);
            }
            Exit::Fault(kind) => return Err(ReplayError::GuestFault(kind)),
            other => {
                return Err(self.diverge_msg(format!("unexpected exit {other:?}")));
            }
        }
        Ok(())
    }

    fn handle_shadow_ret(&mut self, ret_pc: Addr, actual: Addr) {
        // After a retired ret, sp sits one word above the popped slot.
        let slot = self.vm.cpu().sp().wrapping_sub(8);
        let at_insn = self.vm.retired();
        if self.cfg.nesting_ret_sites.contains(&ret_pc) {
            // A known longjmp-style routine: fix the software RAS by
            // discarding the frames the unwind skipped (§4.5).
            let frames = self.shadow.as_mut().map_or(0, |s| s.on_nesting_ret(slot));
            self.shadow_events.push(ShadowEvent {
                at_insn,
                ret_pc,
                actual,
                kind: ShadowEventKind::MismatchUnwound { frames },
            });
            return;
        }
        let Some(shadow) = self.shadow.as_mut() else { return };
        let kind = match shadow.on_ret(ret_pc, actual, slot) {
            ShadowOutcome::Hit { .. } | ShadowOutcome::Whitelisted => return,
            ShadowOutcome::WhitelistViolation { .. } => ShadowEventKind::WhitelistViolation,
            ShadowOutcome::Underflow { .. } => {
                let tid = shadow.current_thread();
                let stack = self.evict_store.entry(tid).or_default();
                if stack.last() == Some(&actual) {
                    stack.pop();
                    ShadowEventKind::UnderflowMatched
                } else {
                    ShadowEventKind::UnderflowUnexplained
                }
            }
            ShadowOutcome::Mismatch { predicted, .. } => ShadowEventKind::MismatchUnexplained { predicted },
        };
        self.shadow_events.push(ShadowEvent { at_insn, ret_pc, actual, kind });
    }

    fn take_profile_sample(&mut self) {
        let step = self.cfg.profile_sample_every.unwrap_or(0).max(1);
        *self.profile.entry(self.vm.cpu().pc).or_insert(0) += 1;
        self.next_sample = self.vm.retired() + step;
    }

    fn handle_breakpoint(&mut self, pc: Addr) {
        let costs = self.cfg.costs;
        if pc == self.intro.switch_sp_trap() {
            let next = self.intro.next_thread_at_switch(&self.vm).unwrap_or(self.current_tid);
            let prev = self.current_tid;
            if let Some(saved) = self.vm.cpu_mut().ras.save_backras() {
                if self.dying == Some(prev) {
                    self.backras.remove(prev);
                    self.dying = None;
                } else {
                    self.backras.save(prev, saved);
                }
            }
            let entry = self.backras.load(next);
            self.vm.cpu_mut().ras.restore_backras(&entry);
            self.charge(Category::Ras, costs.vmexit + costs.ras_save + costs.ras_restore);
            if let Some(shadow) = self.shadow.as_mut() {
                if self.dying == Some(prev) {
                    shadow.kill_thread(prev);
                }
                shadow.context_switch(next);
            }
            self.current_tid = next;
        } else if pc == self.intro.thread_create_trap() {
            let tid = self.intro.thread_at_commit(&self.vm);
            self.backras.allocate(tid);
            if let Some(shadow) = self.shadow.as_mut() {
                shadow.seed_thread(tid, &BackRasEntry::new());
            }
            self.charge(Category::Ras, costs.vmexit);
        } else if pc == self.intro.thread_exit_trap() {
            let tid = self.intro.thread_at_commit(&self.vm);
            self.dying = Some(tid);
            if let Some(shadow) = self.shadow.as_mut() {
                shadow.kill_thread(tid);
            }
            self.charge(Category::Ras, costs.vmexit);
        }
        self.vm.skip_breakpoint_once();
    }
}
