//! A minimal scoped worker pool shared by span replay and the replay farm.
//!
//! The pool owns no queue and no policy: callers hand it a *source* — a
//! closure that either produces the next runnable task (possibly blocking
//! until one exists) or reports that the work is drained — and the pool
//! simply keeps `workers` threads pulling from it. Scheduling decisions
//! (span order, fleet fairness, budget backpressure) live entirely in the
//! source, which keeps this primitive reusable across very different
//! consumers: `replay_spans` feeds it a fixed job list through an atomic
//! cursor, while the farm feeds it a weighted round-robin scheduler behind
//! a condvar.

/// A unit of pooled work.
pub type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Runs `workers` threads, each repeatedly pulling a task from `next` and
/// executing it, until `next` returns `None`. Returns once every worker has
/// observed the drain and every pulled task has finished.
///
/// `next` is shared by all workers concurrently, so it must serialize its
/// own state (atomics, a mutex). It may block until a task becomes
/// runnable; a `None` is permanent for the worker that sees it, so the
/// source must only report drained when no further tasks will ever appear.
/// With `workers <= 1` the tasks run inline on the calling thread.
pub fn drain<'env, F>(workers: usize, next: &F)
where
    F: Fn() -> Option<Task<'env>> + Sync,
{
    if workers <= 1 {
        while let Some(task) = next() {
            task();
        }
        return;
    }
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || {
                while let Some(task) = next() {
                    task();
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn drains_every_task_once() {
        for workers in [1, 2, 5] {
            let next_idx = AtomicUsize::new(0);
            let hits: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
            let hits_ref = &hits;
            drain(workers, &|| {
                let k = next_idx.fetch_add(1, Ordering::Relaxed);
                (k < hits_ref.len()).then(|| {
                    Box::new(move || {
                        hits_ref[k].fetch_add(1, Ordering::Relaxed);
                    }) as Task<'_>
                })
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "workers={workers}");
        }
    }

    #[test]
    fn inline_mode_preserves_order() {
        let order = Mutex::new(Vec::new());
        let next_idx = AtomicUsize::new(0);
        let order_ref = &order;
        drain(1, &|| {
            let k = next_idx.fetch_add(1, Ordering::Relaxed);
            (k < 4).then(|| Box::new(move || order_ref.lock().unwrap().push(k)) as Task<'_>)
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }
}
