//! # rnr-replay: the checkpointing and alarm replayers
//!
//! The replay side of RnR-Safe (§4.6): a second platform consumes the input
//! log and deterministically re-executes the recorded VM.
//!
//! * [`Replayer`] — the deterministic replay engine. Synchronous
//!   non-deterministic events (rdtsc, PIO/MMIO reads) are injected when the
//!   guest traps on the corresponding instruction; asynchronous events
//!   (interrupts, DMA payloads) are landed at their exact recorded
//!   instruction counts, paying the paper's single-stepping cost (§7.3).
//!   Replay correctness is checked by comparing architectural-state digests
//!   with the recording.
//! * [`Checkpoint`] / [`CheckpointStore`] — incremental copy-on-write
//!   checkpoints (Figure 4): all VM pages and disk blocks (shared
//!   reference-counted, copied only on write), the processor-state page,
//!   the BackRAS, and the `InputLogPtr`, with the recycling policy of §8.4.
//! * The **checkpointing replayer** (CR) is a [`Replayer`] with a
//!   checkpoint interval; it also performs the §4.6.2 special case:
//!   matching RAS-underflow alarms against *evict* records and discarding
//!   the false ones without launching an alarm replayer. The CR can run
//!   serially or span-partitioned across workers ([`replay_spans`],
//!   DESIGN.md §11): the fold reconstructs the serial CR's clock,
//!   checkpoint schedule, and alarm bookkeeping byte-identically, so
//!   `parallel_spans` is a wall-clock-only knob.
//! * [`AlarmReplayer`] — launched from the checkpoint preceding an
//!   unresolved alarm of *either detector family* ([`CaseKind`]). For RAS
//!   cases it traps every call/return, models the unbounded multithreaded
//!   software RAS (`rnr_ras::ShadowRas`), and resolves the alarm into a
//!   [`Verdict`]: a classified false positive or a [`RopReport`] with the
//!   hijacked return, call site, thread, and decoded gadget chain (§6's
//!   "how was the attack possible / who / what did they do" analysis). For
//!   VRT memory-safety cases (DESIGN.md §15) it replays to the alarm point
//!   and classifies the store against the guest's *precise* allocation
//!   state, producing [`Verdict::HeapOverflow`], [`Verdict::UseAfterReturn`],
//!   or a named false positive for each noisy hardware rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alarm;
mod checkpoint;
mod engine;
mod parallel;
pub mod pool;

pub use alarm::{resolve_jop, JopVerdict};
pub use alarm::{AlarmReplayer, FalsePositiveKind, GadgetUse, MemReport, RopReport, Verdict};
pub use checkpoint::{Checkpoint, CheckpointStore};
pub use engine::{
    AlarmCase, CaseKind, JopCase, ReplayConfig, ReplayError, ReplayOutcome, ReplayRecovery, Replayer,
    RewindStep,
};
pub use parallel::{
    assemble_spans, plan_spans, replay_spans, run_planned_span, ParallelReplayOutcome, SpanDone, SpanFeed,
    SpanJob,
};

/// Virtual cycles per "second" of guest time. The paper quotes checkpoint
/// intervals in seconds (RepChk5/RepChk1/RepChk02); this constant maps them
/// onto the simulator's cycle clock. Documented in EXPERIMENTS.md.
pub const VIRTUAL_HZ: u64 = 4_000_000;
