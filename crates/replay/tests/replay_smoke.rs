//! The central RnR property: record once, replay deterministically.

use std::sync::Arc;

use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_machine::CallRetTrap;
use rnr_replay::{ReplayConfig, Replayer, VIRTUAL_HZ};
use rnr_workloads::Workload;

fn record(w: Workload, insns: u64) -> (rnr_hypervisor::VmSpec, rnr_hypervisor::RecordOutcome) {
    let spec = w.spec(false);
    let out = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 42, insns)).unwrap().run();
    assert!(out.fault.is_none(), "{}: fault {:?}", w.label(), out.fault);
    (spec, out)
}

#[test]
fn all_workloads_replay_bit_exact() {
    for w in Workload::ALL {
        let (spec, rec) = record(w, 300_000);
        let log = Arc::clone(&rec.log);
        let mut replayer = Replayer::new(&spec, log, ReplayConfig::default());
        replayer.verify_against(rec.final_digest);
        let out = replayer.run().unwrap_or_else(|e| panic!("{}: {e}", w.label()));
        assert_eq!(out.verified, Some(true), "{}: digest mismatch", w.label());
        assert_eq!(out.retired, rec.retired, "{}", w.label());
        // The guest's outputs are reproduced too.
        assert_eq!(out.console, rec.console, "{}", w.label());
    }
}

#[test]
fn checkpointing_replay_is_slower_than_norec_but_comparable_to_rec() {
    let (spec, rec) = record(Workload::Fileio, 400_000);
    let log = Arc::clone(&rec.log);
    let cfg = ReplayConfig { checkpoint_interval: Some(VIRTUAL_HZ / 4), ..ReplayConfig::default() };
    let out = Replayer::new(&spec, log, cfg).run().unwrap();
    assert!(out.checkpoints_taken >= 2, "expected periodic checkpoints, got {}", out.checkpoints_taken);
    // §8.3.1: checkpointing replay runs at a speed roughly comparable to
    // recording (well within an order of magnitude).
    assert!(out.cycles > rec.cycles / 2, "replay suspiciously fast: {} vs {}", out.cycles, rec.cycles);
    assert!(out.cycles < rec.cycles * 4, "replay too slow: {} vs {}", out.cycles, rec.cycles);
}

#[test]
fn rep_no_chk_takes_only_initial_checkpoint() {
    let (spec, rec) = record(Workload::Radiosity, 200_000);
    let log = Arc::clone(&rec.log);
    let cfg = ReplayConfig { checkpoint_interval: None, ..ReplayConfig::default() };
    let mut r = Replayer::new(&spec, log, cfg);
    r.verify_against(rec.final_digest);
    let out = r.run().unwrap();
    assert_eq!(out.checkpoints_taken, 1);
    assert_eq!(out.verified, Some(true));
}

#[test]
fn kernel_callret_trapping_slows_replay_down() {
    let (spec, rec) = record(Workload::Mysql, 300_000);
    let log = Arc::clone(&rec.log);
    let plain = Replayer::new(
        &spec,
        Arc::clone(&log),
        ReplayConfig { checkpoint_interval: None, collect_cases: false, ..ReplayConfig::default() },
    )
    .run()
    .unwrap();
    let trapped = Replayer::new(
        &spec,
        log,
        ReplayConfig {
            checkpoint_interval: None,
            collect_cases: false,
            callret: CallRetTrap::KernelOnly,
            ..ReplayConfig::default()
        },
    )
    .run()
    .unwrap();
    assert!(trapped.callret_traps > 0);
    assert_eq!(plain.callret_traps, 0);
    assert!(
        trapped.cycles > plain.cycles * 2,
        "alarm-replay trapping should dominate: {} vs {}",
        trapped.cycles,
        plain.cycles
    );
    // Trapping must not perturb the replayed execution itself.
    assert_eq!(trapped.final_digest, plain.final_digest);
}

#[test]
fn benign_apache_alarms_resolve_via_evict_matching() {
    // Apache's bursty packets drive deep recursive driver copies; with a
    // small RAS, evictions + underflow alarms occur and the CR cancels them.
    let spec = Workload::Apache.spec(false);
    let mut rc = RecordConfig::new(RecordMode::Rec, 7, 600_000);
    rc.ras_capacity = 16;
    let rec = Recorder::new(&spec, rc).unwrap().run();
    assert!(rec.fault.is_none());
    let log = Arc::clone(&rec.log);
    let cfg = ReplayConfig { ras_capacity: 16, ..ReplayConfig::default() };
    let mut r = Replayer::new(&spec, log, cfg);
    r.verify_against(rec.final_digest);
    let out = r.run().unwrap();
    assert_eq!(out.verified, Some(true));
    if rec.alarms > 0 {
        assert!(
            out.underflows_cancelled > 0 || !out.alarm_cases.is_empty(),
            "alarms must be matched or escalated"
        );
    }
}
