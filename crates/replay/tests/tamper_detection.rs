//! Replay as an integrity check: a tampered or truncated input log can not
//! silently produce a "verified" replay.

use std::sync::Arc;

use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_log::{InputLog, Record};
use rnr_replay::{ReplayConfig, ReplayError, Replayer};
use rnr_workloads::Workload;

fn recording() -> (rnr_hypervisor::VmSpec, rnr_hypervisor::RecordOutcome) {
    let spec = Workload::Mysql.spec(false);
    let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 5, 150_000)).unwrap().run();
    assert!(rec.fault.is_none());
    (spec, rec)
}

fn replay_with(
    spec: &rnr_hypervisor::VmSpec,
    log: InputLog,
    digest: rnr_machine::Digest,
) -> Result<Option<bool>, ReplayError> {
    let mut r = Replayer::new(spec, Arc::new(log), ReplayConfig::default());
    r.verify_against(digest);
    r.run().map(|o| o.verified)
}

#[test]
fn tampered_rng_value_fails_verification() {
    // fileio turns the logged RNG value into a disk sector: tampering it
    // redirects the replayed I/O and the disk/memory digests split. (A
    // tampered value that flows nowhere — e.g. a discarded timestamp —
    // legitimately still verifies; replay checks *state*, not the log.)
    let spec = Workload::Fileio.spec(false);
    let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 5, 200_000)).unwrap().run();
    assert!(rec.fault.is_none());
    let mut records: Vec<Record> = rec.log.records().to_vec();
    let idx = records
        .iter()
        .position(|r| matches!(r, Record::PioIn { port, .. } if *port == rnr_machine::PORT_RNG))
        .expect("fileio rolls random sectors");
    if let Record::PioIn { value, .. } = &mut records[idx] {
        *value ^= 0x1fff;
    }
    let tampered: InputLog = records.into_iter().collect();
    match replay_with(&spec, tampered, rec.final_digest) {
        // The guest consumed a different value: the final digest changes...
        Ok(verified) => assert_eq!(verified, Some(false)),
        // ...or control flow diverged outright.
        Err(ReplayError::Divergence { .. }) | Err(ReplayError::GuestFault(_)) => {}
        Err(e) => panic!("unexpected error {e}"),
    }
}

#[test]
fn shifted_interrupt_injection_point_is_caught() {
    let (spec, rec) = recording();
    let mut records: Vec<Record> = rec.log.records().to_vec();
    let idx =
        records.iter().position(|r| matches!(r, Record::Interrupt { .. })).expect("timer interrupts exist");
    if let Record::Interrupt { at_insn, .. } = &mut records[idx] {
        *at_insn += 37; // land the asynchronous event at the wrong instruction
    }
    let tampered: InputLog = records.into_iter().collect();
    match replay_with(&spec, tampered, rec.final_digest) {
        Ok(verified) => assert_eq!(verified, Some(false)),
        Err(ReplayError::Divergence { .. }) | Err(ReplayError::GuestFault(_)) => {}
        Err(e) => panic!("unexpected error {e}"),
    }
}

#[test]
fn truncated_log_reports_unexpected_end() {
    let (spec, rec) = recording();
    let records: Vec<Record> = rec.log.records().to_vec();
    let cut: InputLog = records[..records.len() / 2].iter().cloned().collect();
    // Half a log has no End marker: the replayer must say so, not "verify".
    match replay_with(&spec, cut, rec.final_digest) {
        Err(ReplayError::UnexpectedEndOfLog) | Err(ReplayError::Divergence { .. }) => {}
        other => panic!("truncation not detected: {other:?}"),
    }
}

#[test]
fn dropped_dma_record_is_caught() {
    let spec = Workload::Apache.spec(false);
    let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 5, 250_000)).unwrap().run();
    assert!(rec.fault.is_none());
    let mut records: Vec<Record> = rec.log.records().to_vec();
    // Drop the most recent packet payload: earlier payloads may be dead
    // data by the end of the run, but the last one still sits in the NIC
    // mailbox / packet queue.
    let idx = records.iter().rposition(|r| matches!(r, Record::Dma { .. })).expect("apache receives packets");
    records.remove(idx);
    let tampered: InputLog = records.into_iter().collect();
    match replay_with(&spec, tampered, rec.final_digest) {
        Ok(verified) => assert_eq!(verified, Some(false)),
        Err(ReplayError::Divergence { .. }) | Err(ReplayError::GuestFault(_)) => {}
        Err(e) => panic!("unexpected error {e}"),
    }
}
