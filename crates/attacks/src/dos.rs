//! Denial-of-service detection (Table 1, third row).

use rnr_hypervisor::VmSpec;
use rnr_isa::{Assembler, Reg};
use rnr_workloads::{Workload, WorkloadParams};

/// Verdict of the DOS watchdog over one observation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DosVerdict {
    /// Scheduling activity looks healthy.
    Healthy,
    /// Context-switch frequency collapsed: raise an alarm; "the replay
    /// analyzes the code that has dominated the system's execution time".
    Alarm {
        /// Switches observed in the stalled window.
        observed: u64,
        /// The minimum expected.
        expected: u64,
    },
}

/// Table 1's DOS first-line detector: "a counter that increments every time
/// the kernel performs a context switch. If the counter has not increased
/// much for a while, an alarm is raised."
///
/// Feed it context-switch timestamps (virtual cycles) via
/// [`DosDetector::on_switch`] and poll it with [`DosDetector::check`].
#[derive(Debug, Clone)]
pub struct DosDetector {
    window: u64,
    min_switches: u64,
    window_start: u64,
    switches_in_window: u64,
}

impl DosDetector {
    /// A watchdog expecting at least `min_switches` context switches per
    /// `window` cycles.
    pub fn new(window: u64, min_switches: u64) -> DosDetector {
        DosDetector { window, min_switches, window_start: 0, switches_in_window: 0 }
    }

    /// Records a context switch at `cycle`.
    pub fn on_switch(&mut self, cycle: u64) {
        self.roll(cycle);
        self.switches_in_window += 1;
    }

    /// Checks the watchdog at `cycle`.
    pub fn check(&mut self, cycle: u64) -> DosVerdict {
        if cycle < self.window_start + self.window {
            return DosVerdict::Healthy;
        }
        let observed = self.switches_in_window;
        self.roll(cycle);
        if observed < self.min_switches {
            DosVerdict::Alarm { observed, expected: self.min_switches }
        } else {
            DosVerdict::Healthy
        }
    }

    fn roll(&mut self, cycle: u64) {
        while cycle >= self.window_start + self.window {
            self.window_start += self.window;
            self.switches_in_window = 0;
        }
    }

    /// Runs the watchdog over a full trace of switch timestamps, returning
    /// the cycle of the first alarm, if any.
    pub fn first_alarm(mut self, switches: &[u64], until_cycle: u64) -> Option<u64> {
        let mut i = 0;
        let mut t = self.window;
        while t <= until_cycle {
            while i < switches.len() && switches[i] < t {
                self.on_switch(switches[i]);
                i += 1;
            }
            if let DosVerdict::Alarm { .. } = self.check(t) {
                return Some(t);
            }
            t += self.window;
        }
        None
    }
}

/// The healthy baseline for the DOS experiment: two compute threads, so
/// round-robin context switches tick steadily.
pub fn dos_control(params: &WorkloadParams) -> VmSpec {
    let mut spec = Workload::Radiosity.spec_with(false, params);
    let entry = spec.extra_images[0].require_symbol("radiosity_main");
    spec.boot.user_thread(entry);
    spec.name = "radiosity-x2".to_string();
    spec
}

/// Builds the DOS attack scenario: the two-thread baseline plus a malicious
/// **kernel thread** that disables interrupts and spins, starving the
/// scheduler — the paper's kernel-scheduler-inactivity trigger (cf. the
/// CVE-2015-5364 style interrupt-storm DoS it cites).
///
/// The spin starts only after a warm-up loop, so the detector observes a
/// healthy phase first.
pub fn dos_scenario(params: &WorkloadParams, warmup_iterations: u32) -> VmSpec {
    let mut spec = dos_control(params);
    // A separate image at a free address hosts the malicious thread.
    let base = rnr_guest::layout::USER_BASE + 0x4_0000;
    let mut a = Assembler::new(base);
    a.label("dos_main");
    a.movi(Reg::R10, warmup_iterations as i32);
    a.label("dos_warm");
    a.movi(Reg::R1, 50);
    a.call("dos_u_compute");
    a.addi(Reg::R10, Reg::R10, -1);
    a.movi(Reg::R5, 0);
    a.bne(Reg::R10, Reg::R5, "dos_warm");
    // The attack: kernel-mode cli + spin. Timer interrupts stop being
    // delivered; context switches cease.
    a.cli();
    a.label("dos_spin");
    a.jmp("dos_spin");
    // A local compute kernel (kernel threads cannot share the user image's
    // runtime labels across images).
    a.label("dos_u_compute");
    a.movi(Reg::R5, 0x9e37);
    a.movi(Reg::R6, 0);
    a.label("dos_cl");
    a.bgeu(Reg::R6, Reg::R1, "dos_cd");
    a.muli(Reg::R5, Reg::R5, 0x01000193);
    a.addi(Reg::R6, Reg::R6, 1);
    a.jmp("dos_cl");
    a.label("dos_cd");
    a.ret();
    let image = a.assemble().expect("dos image assembles");
    let entry = image.require_symbol("dos_main");
    spec.extra_images.push(image);
    spec.boot.kernel_thread(entry);
    spec.name = "radiosity+dos".to_string();
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_schedule_never_alarms() {
        let switches: Vec<u64> = (1..200).map(|i| i * 1000).collect();
        let det = DosDetector::new(10_000, 5);
        assert_eq!(det.first_alarm(&switches, 200_000), None);
    }

    #[test]
    fn stalled_schedule_alarms_after_the_stall() {
        // Healthy for 100k cycles, then silence.
        let switches: Vec<u64> = (1..100).map(|i| i * 1000).collect();
        let det = DosDetector::new(10_000, 5);
        let alarm = det.first_alarm(&switches, 300_000).expect("must alarm");
        assert!(alarm > 100_000, "alarm at {alarm}");
        assert!(alarm <= 120_000, "alarm too late: {alarm}");
    }

    #[test]
    fn windows_roll_independently() {
        let mut det = DosDetector::new(1000, 2);
        det.on_switch(100);
        det.on_switch(200);
        assert_eq!(det.check(1000), DosVerdict::Healthy);
        // Next window: only one switch.
        det.on_switch(1500);
        assert_eq!(det.check(2000), DosVerdict::Alarm { observed: 1, expected: 2 });
    }

    #[test]
    fn scenario_adds_kernel_thread() {
        let spec = dos_scenario(&WorkloadParams::default(), 10);
        // Two compute threads (the healthy baseline) plus the spin thread.
        assert_eq!(spec.boot.entries().len(), 3);
        assert_eq!(spec.name, "radiosity+dos");
        assert_eq!(dos_control(&WorkloadParams::default()).boot.entries().len(), 2);
    }
}
