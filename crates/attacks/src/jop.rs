//! Jump-oriented-programming detection (Table 1, second row).

use rnr_isa::{Addr, Image};

/// Outcome of checking one indirect branch/call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JopCheck {
    /// Target is the first instruction of a tracked function.
    FunctionEntry,
    /// Target lies within the same function as the branch.
    IntraFunction,
    /// Target is not explainable with the tracked set — raise an alarm; the
    /// replayer re-checks against the full (less common) function list.
    Alarm,
}

/// Table 1's first-line JOP detector: "a table of begin and end addresses
/// of the most common functions. An indirect branch or call target is
/// compared to the table and is legal if the target is the first
/// instruction of a function. Indirect branch targets within the current
/// function are also fine."
///
/// The hardware tracks only the `common` hottest functions (a small table);
/// the replay-side instance tracks everything, resolving the false
/// positives — the RnR-Safe division of labour.
#[derive(Debug, Clone)]
pub struct JopDetector {
    /// Sorted (start, end) ranges of tracked functions.
    functions: Vec<(Addr, Addr)>,
}

impl JopDetector {
    /// Builds a detector from explicit function ranges.
    pub fn from_ranges(mut ranges: Vec<(Addr, Addr)>) -> JopDetector {
        ranges.sort_unstable();
        JopDetector { functions: ranges }
    }

    /// Derives function ranges from an image's symbols (each symbol starts
    /// a function that extends to the next symbol), keeping only the first
    /// `limit` functions — the hardware's "most common functions" table.
    /// `usize::MAX` gives the replayer's full table.
    pub fn from_image(image: &Image, limit: usize) -> JopDetector {
        let mut addrs: Vec<Addr> = image.symbols().map(|(_, a)| a).collect();
        addrs.sort_unstable();
        addrs.dedup();
        let mut ranges = Vec::new();
        for (i, &start) in addrs.iter().enumerate() {
            let end = addrs.get(i + 1).copied().unwrap_or(image.end());
            ranges.push((start, end));
        }
        ranges.truncate(limit);
        JopDetector { functions: ranges }
    }

    /// Number of tracked functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True when no functions are tracked.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    fn containing(&self, addr: Addr) -> Option<(Addr, Addr)> {
        self.functions.iter().copied().find(|&(s, e)| s <= addr && addr < e)
    }

    /// Checks an indirect branch at `branch_pc` targeting `target`.
    pub fn check(&self, branch_pc: Addr, target: Addr) -> JopCheck {
        if self.functions.iter().any(|&(s, _)| s == target) {
            return JopCheck::FunctionEntry;
        }
        if let Some(range) = self.containing(branch_pc) {
            if range.0 <= target && target < range.1 {
                return JopCheck::IntraFunction;
            }
        }
        JopCheck::Alarm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnr_guest::KernelBuilder;

    fn detector() -> JopDetector {
        JopDetector::from_ranges(vec![(0x100, 0x200), (0x200, 0x300)])
    }

    #[test]
    fn function_entry_is_legal() {
        assert_eq!(detector().check(0x110, 0x200), JopCheck::FunctionEntry);
    }

    #[test]
    fn intra_function_is_legal() {
        assert_eq!(detector().check(0x110, 0x180), JopCheck::IntraFunction);
    }

    #[test]
    fn cross_function_mid_body_alarms() {
        // The classic JOP dispatcher jump: into the middle of another
        // function.
        assert_eq!(detector().check(0x110, 0x250), JopCheck::Alarm);
    }

    #[test]
    fn unknown_source_mid_target_alarms() {
        assert_eq!(detector().check(0x900, 0x180), JopCheck::Alarm);
    }

    #[test]
    fn hardware_table_vs_replay_table() {
        let kernel = KernelBuilder::new().build();
        let hw = JopDetector::from_image(kernel.image(), 8);
        let replay = JopDetector::from_image(kernel.image(), usize::MAX);
        assert!(hw.len() < replay.len());
        // A legitimate call to a *less common* function: the hardware
        // alarms (imprecise), the replayer resolves it as a function entry
        // — the RnR-Safe pattern.
        let uncommon_entry = replay.functions[replay.len() - 2].0;
        assert_eq!(hw.check(replay.functions[0].0, uncommon_entry), JopCheck::Alarm);
        assert_eq!(replay.check(replay.functions[0].0, uncommon_entry), JopCheck::FunctionEntry);
        // A true JOP-style target (mid-function) alarms on both.
        let mid = uncommon_entry + 8;
        assert_eq!(replay.check(0x1000, mid), JopCheck::Alarm);
    }
}
