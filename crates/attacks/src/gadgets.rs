//! ROP gadget scanning (Figure 10(a)).

use rnr_isa::{disasm, Addr, Image, Instruction, Opcode, Reg, INSN_BYTES};

/// A gadget: a short instruction sequence ending in `ret`.
#[derive(Debug, Clone)]
pub struct Gadget {
    /// Address of the gadget's first instruction.
    pub addr: Addr,
    /// The instructions, ending with the `ret`.
    pub insns: Vec<Instruction>,
}

impl Gadget {
    /// One-line disassembly.
    pub fn listing(&self) -> String {
        self.insns.iter().map(disasm).collect::<Vec<_>>().join("; ")
    }

    /// Number of instructions before the terminating `ret`.
    pub fn body_len(&self) -> usize {
        self.insns.len() - 1
    }
}

/// Scans a binary image for gadgets: "the executable is scanned for
/// instances of the return instruction; we decode a few bytes before" —
/// with our fixed 8-byte encoding the decode is exact.
#[derive(Debug)]
pub struct GadgetScanner<'a> {
    image: &'a Image,
    max_body: usize,
}

impl<'a> GadgetScanner<'a> {
    /// A scanner over `image` collecting gadgets with at most `max_body`
    /// instructions before the `ret`.
    pub fn new(image: &'a Image, max_body: usize) -> GadgetScanner<'a> {
        GadgetScanner { image, max_body }
    }

    /// All gadgets in the image.
    ///
    /// For every `ret`, the scanner emits one gadget per usable prefix
    /// (`pop r1; ret` and `addi ...; pop r1; ret` are distinct gadgets),
    /// skipping prefixes that contain control flow (they would not fall
    /// through to the `ret`).
    pub fn scan(&self) -> Vec<Gadget> {
        let mut out = Vec::new();
        for (ret_addr, insn) in self.image.iter_insns() {
            if insn.op != Opcode::Ret {
                continue;
            }
            for body in 0..=self.max_body {
                let start = match ret_addr.checked_sub(body as u64 * INSN_BYTES) {
                    Some(s) if s >= self.image.base() => s,
                    _ => break,
                };
                let mut insns = Vec::with_capacity(body + 1);
                let mut ok = true;
                for i in 0..=body {
                    match self.image.decode_at(start + i as u64 * INSN_BYTES) {
                        Ok(d) => {
                            // Control flow inside the body would not reach
                            // the ret (except the ret itself).
                            if i < body && d.op.is_control_flow() {
                                ok = false;
                                break;
                            }
                            insns.push(d);
                        }
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    out.push(Gadget { addr: start, insns });
                }
            }
        }
        out
    }

    /// Finds a `pop <reg>; ret` gadget (Figure 10's G1).
    pub fn find_pop_ret(&self, reg: Reg) -> Option<Gadget> {
        self.scan()
            .into_iter()
            .find(|g| g.body_len() == 1 && g.insns[0].op == Opcode::Pop && g.insns[0].rd == reg)
    }

    /// Finds a `ld <rd>, [<base>+0]; ret` gadget (G2: load through a
    /// pointer).
    pub fn find_load_ret(&self, rd: Reg, base: Reg) -> Option<Gadget> {
        self.scan().into_iter().find(|g| {
            g.body_len() == 1
                && g.insns[0].op == Opcode::Ld
                && g.insns[0].rd == rd
                && g.insns[0].rs1 == base
                && g.insns[0].imm == 0
        })
    }

    /// Finds an indirect call through `reg` (G3). Returns its address.
    pub fn find_callr(&self, reg: Reg) -> Option<Addr> {
        self.image.iter_insns().find(|(_, i)| i.op == Opcode::CallR && i.rs1 == reg).map(|(a, _)| a)
    }

    /// Total `ret` instructions in the image (gadget supply, for reports).
    pub fn ret_count(&self) -> usize {
        self.image.iter_insns().filter(|(_, i)| i.op == Opcode::Ret).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnr_guest::KernelBuilder;
    use rnr_isa::Assembler;

    #[test]
    fn finds_planted_gadgets() {
        let mut asm = Assembler::new(0x1000);
        asm.nop();
        asm.pop(Reg::R1);
        asm.ret();
        asm.ld(Reg::R9, Reg::R1, 0);
        asm.ret();
        asm.callr(Reg::R9);
        let image = asm.assemble().unwrap();
        let scanner = GadgetScanner::new(&image, 3);
        let g1 = scanner.find_pop_ret(Reg::R1).expect("pop gadget");
        assert_eq!(g1.listing(), "pop r1; ret");
        let g2 = scanner.find_load_ret(Reg::R9, Reg::R1).expect("load gadget");
        assert_eq!(g2.listing(), "ld r9, [r1+0]; ret");
        assert!(scanner.find_callr(Reg::R9).is_some());
        assert!(scanner.find_pop_ret(Reg::R5).is_none());
    }

    #[test]
    fn bodies_with_control_flow_are_rejected() {
        let mut asm = Assembler::new(0);
        asm.label("f");
        asm.jmp("f"); // control flow: cannot fall through
        asm.pop(Reg::R2);
        asm.ret();
        let image = asm.assemble().unwrap();
        let scanner = GadgetScanner::new(&image, 3);
        let gadgets = scanner.scan();
        // `pop r2; ret` and bare `ret` survive; the jmp-prefixed one doesn't.
        assert!(gadgets.iter().all(|g| g.insns.iter().take(g.body_len()).all(|i| !i.op.is_control_flow())));
        assert!(gadgets.iter().any(|g| g.listing() == "pop r2; ret"));
    }

    #[test]
    fn kernel_supplies_the_figure_10_chain() {
        let kernel = KernelBuilder::new().build();
        let scanner = GadgetScanner::new(kernel.image(), 2);
        assert!(scanner.find_pop_ret(Reg::R1).is_some(), "G1 missing");
        assert!(scanner.find_load_ret(Reg::R9, Reg::R1).is_some(), "G2 missing");
        assert!(scanner.find_callr(Reg::R9).is_some(), "G3 missing");
        assert!(scanner.ret_count() > 20, "kernel should be ret-rich");
    }
}
