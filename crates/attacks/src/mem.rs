//! Memory-safety attacks resolved by the VRT detector (DESIGN.md §15):
//! a linear kernel-heap overflow and a stack use-after-return.
//!
//! Both attacks are built to demonstrate the VRT's **zero-false-negative**
//! guarantee for linear heap overflows: the guest allocator leaves at
//! least two never-covered granules past every allocation, so the first
//! overflowing store always raises a hardware alarm, and the Alarm
//! Replayer convicts it from the kernel's precise allocation table.

use rnr_guest::{layout, runtime, KernelBuilder};
use rnr_hypervisor::VmSpec;
use rnr_isa::{Assembler, Reg};
use rnr_workloads::{Workload, WorkloadParams};

use Reg::{R1, R5, R6, R7};

const SP: Reg = Reg::SP;

/// Everything known about a mounted heap-overflow attack, for verification
/// against the alarm replayer's [`MemReport`](rnr_replay::MemReport).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapOverflowPlan {
    /// Length of the victim allocation.
    pub region_len: u64,
    /// Total bytes the unbounded copy writes from the region base — the
    /// overflow spills `copy_len - region_len` bytes past the region, but
    /// stays well inside the allocator's 4 KiB slot.
    pub copy_len: u64,
    /// Warm-up compute rounds before the overflow (so the alarm lands
    /// mid-trace, after checkpoints exist).
    pub warmup_rounds: u32,
}

/// Everything known about a mounted use-after-return attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UarPlan {
    /// Span of the victim's stack frame (past the VRT `min_frame`, so its
    /// dead window is filed when the victim returns).
    pub frame_len: u64,
    /// Times the victim-then-dereference sequence repeats. Each attempt
    /// stores through the leaked frame pointer immediately after the
    /// return; an interrupt in that tiny window could consume the filed
    /// window first (a StaleFrame false positive), so the attack retries.
    pub attempts: u32,
    /// The user-memory slot holding the leaked frame pointer.
    pub ptr_slot: u64,
}

/// Mounts the kernel-heap overflow on top of the benign
/// [`Workload::HeapServer`] churn: a second user thread allocates a
/// 256-byte region and then runs an unbounded copy 512 bytes long through
/// it — the classic missing-length-check memcpy. The churn thread keeps
/// raising VRT false positives throughout, so the run exercises both
/// conviction and dismissal.
pub fn mount_heap_overflow(params: &WorkloadParams, warmup_rounds: u32) -> (VmSpec, HeapOverflowPlan) {
    let plan = HeapOverflowPlan { region_len: 256, copy_len: 512, warmup_rounds };
    let mut spec = Workload::HeapServer.spec_with(false, params);

    // The attacker rides in a separate image with its own runtime copy
    // (labels cannot be shared across images).
    let mut a = Assembler::new(layout::USER_BASE + 0x4_0000);
    a.label("hov_main");
    a.movi(Reg::R10, warmup_rounds as i32);
    a.label("hov_warm");
    a.movi(R1, 300);
    a.call("u_compute");
    a.call("u_op_done");
    a.addi(Reg::R10, Reg::R10, -1);
    a.movi(R5, 0);
    a.bne(Reg::R10, R5, "hov_warm");
    // Allocate the victim region.
    a.movi(R1, plan.region_len as i32);
    a.call("u_alloc");
    a.mov(Reg::R10, R1);
    // The unbounded copy: writes straight through the region's end into
    // the slot gap. The first store past the coverage end is guaranteed
    // to hit a never-covered granule (zero false negatives).
    a.movi(Reg::R11, 0);
    a.label("hov_copy");
    a.movi(R5, plan.copy_len as i32);
    a.bgeu(Reg::R11, R5, "hov_done");
    a.add(R6, Reg::R10, Reg::R11);
    a.movi(R7, 0x4545);
    a.st(R6, 0, R7);
    a.addi(Reg::R11, Reg::R11, 8);
    a.jmp("hov_copy");
    a.label("hov_done");
    // Getaway: look like an ordinary compute thread afterwards.
    a.label("hov_idle");
    a.movi(R1, 500);
    a.call("u_compute");
    a.call("u_op_done");
    a.jmp("hov_idle");
    runtime::emit_runtime(&mut a);
    let image = a.assemble().expect("heap-overflow image assembles");
    let entry = image.require_symbol("hov_main");
    spec.extra_images.push(image);
    spec.boot.user_thread(entry);
    spec.name = "heapserver+overflow".to_string();
    (spec, plan)
}

/// Mounts the stack use-after-return: a victim function with a 512-byte
/// frame leaks a pointer to its locals, returns (filing its dead window
/// into the VRT ring), and the caller immediately stores through the
/// leaked pointer — an address **below** the live stack pointer, which the
/// Alarm Replayer convicts as [`Verdict::UseAfterReturn`].
///
/// [`Verdict::UseAfterReturn`]: rnr_replay::Verdict::UseAfterReturn
pub fn mount_stack_uar(params: &WorkloadParams, attempts: u32) -> (VmSpec, UarPlan) {
    let plan = UarPlan { frame_len: 512, attempts, ptr_slot: layout::USER_HEAP };
    let kernel = KernelBuilder::new().build();
    let mut spec = VmSpec::new(kernel, "uar-attack");
    spec.timer_period = params.timer_period;

    let mut a = Assembler::new(layout::USER_BASE);
    a.label("uar_main");
    a.movi(Reg::R13, attempts as i32);
    a.label("uar_loop");
    a.movi(R1, 250);
    a.call("u_compute");
    a.call("uar_victim");
    // Dereference the leaked frame pointer straight after the return —
    // before anything else can touch the dead window.
    a.movi(R5, plan.ptr_slot as i32);
    a.ld(R6, R5, 0);
    a.movi(R7, 0x6b6b);
    a.st(R6, 0, R7);
    a.call("u_op_done");
    a.addi(Reg::R13, Reg::R13, -1);
    a.movi(R5, 0);
    a.bne(Reg::R13, R5, "uar_loop");
    a.label("uar_idle");
    a.movi(R1, 400);
    a.call("u_compute");
    a.call("u_op_done");
    a.jmp("uar_idle");

    // uar_victim: 512-byte frame, written across its span (so the VRT
    // tracks the full extent), leaking &local before returning.
    a.label("uar_victim");
    a.addi(SP, SP, -(plan.frame_len as i32));
    a.movi(R5, 0x11);
    a.st(SP, 0, R5);
    a.st(SP, 256, R5);
    a.st(SP, 504, R5);
    a.addi(R5, SP, 256);
    a.movi(R6, plan.ptr_slot as i32);
    a.st(R6, 0, R5);
    a.addi(SP, SP, plan.frame_len as i32);
    a.ret();
    runtime::emit_runtime(&mut a);
    let image = a.assemble().expect("uar image assembles");
    let entry = image.require_symbol("uar_main");
    spec.extra_images.push(image);
    spec.boot.user_thread(entry);
    (spec, plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_overflow_rides_on_the_churn_workload() {
        let (spec, plan) = mount_heap_overflow(&WorkloadParams::default(), 40);
        assert_eq!(spec.name, "heapserver+overflow");
        assert_eq!(spec.boot.entries().len(), 2, "churn thread + attacker");
        assert!(plan.copy_len > plan.region_len, "must actually overflow");
        // The copy never escapes the 4 KiB slot: all spilled bytes land in
        // the never-covered gap, not in a neighbouring allocation.
        assert!(plan.copy_len <= 4096);
    }

    #[test]
    fn uar_spec_is_self_contained() {
        let (spec, plan) = mount_stack_uar(&WorkloadParams::default(), 4);
        assert_eq!(spec.name, "uar-attack");
        assert_eq!(spec.boot.entries().len(), 1);
        assert!(plan.frame_len >= 256, "frame must clear the VRT min_frame");
        assert!(!spec.net.has_traffic());
    }
}
