//! The §6 kernel ROP attack: payload construction and mounting.

use std::fmt;

use rnr_guest::KernelImage;
use rnr_hypervisor::{PacketInjection, VmSpec};
use rnr_isa::{Addr, Reg};
use rnr_workloads::{Workload, WorkloadParams};

use crate::GadgetScanner;

/// Errors from payload construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RopChainError {
    /// A required gadget is missing from the kernel image.
    MissingGadget(&'static str),
    /// The resume target is unknown (user image lacks the symbol).
    MissingResumeTarget,
}

impl fmt::Display for RopChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RopChainError::MissingGadget(g) => write!(f, "kernel image lacks a usable {g} gadget"),
            RopChainError::MissingResumeTarget => write!(f, "no resume target for the getaway sysret"),
        }
    }
}

impl std::error::Error for RopChainError {}

/// Everything known about a constructed attack, for verification against
/// the alarm replayer's report.
#[derive(Debug, Clone)]
pub struct AttackPlan {
    /// The crafted packet payload.
    pub payload: Vec<u8>,
    /// Address of G1 (`pop r1; ret`).
    pub g1: Addr,
    /// Address of G2 (`ld r9,[r1]; ret`).
    pub g2: Addr,
    /// Address of G3 (`callr r9`).
    pub g3: Addr,
    /// The kernel-table slot holding the `grant_root` pointer.
    pub fptr_slot: Addr,
    /// The escalation target the chain calls.
    pub grant_root: Addr,
    /// Where the chain sysrets back to user code.
    pub resume: Addr,
}

/// Builds the Figure 10 payload from scanned gadgets.
///
/// Layout written into `proc_msg`'s 128-byte stack buffer by the kernel's
/// unbounded word-copy (all words non-zero, so the copy does not stop
/// early):
///
/// ```text
/// [128 bytes junk][G1][&fptr_slot][G2][G3][flags][resume][0-terminator]
/// ```
#[derive(Debug)]
pub struct RopChainBuilder<'a> {
    kernel: &'a KernelImage,
}

impl<'a> RopChainBuilder<'a> {
    /// A builder over the victim kernel.
    pub fn new(kernel: &'a KernelImage) -> RopChainBuilder<'a> {
        RopChainBuilder { kernel }
    }

    /// Constructs the payload, taking the post-attack resume address (user
    /// code to `sysret` into for a clean getaway).
    ///
    /// # Errors
    ///
    /// Fails if the kernel image does not supply the required gadgets.
    pub fn build(&self, resume: Addr) -> Result<AttackPlan, RopChainError> {
        let scanner = GadgetScanner::new(self.kernel.image(), 2);
        let g1 = scanner.find_pop_ret(Reg::R1).ok_or(RopChainError::MissingGadget("pop r1; ret"))?.addr;
        let g2 = scanner
            .find_load_ret(Reg::R9, Reg::R1)
            .ok_or(RopChainError::MissingGadget("ld r9,[r1]; ret"))?
            .addr;
        let g3 = scanner.find_callr(Reg::R9).ok_or(RopChainError::MissingGadget("callr r9"))?;
        let fptr_slot = self.kernel.kfunc_table(); // slot 0 = grant_root
        let mut payload = Vec::with_capacity(192);
        // 16 junk words: non-zero so the word-strcpy keeps copying.
        for i in 0..16u64 {
            payload.extend_from_slice(&(0x4a4a_4a4a_4a4a_4a00u64 | (i + 1)).to_le_bytes());
        }
        payload.extend_from_slice(&g1.to_le_bytes()); // overwrites proc_msg's return
        payload.extend_from_slice(&fptr_slot.to_le_bytes()); // popped into r1
        payload.extend_from_slice(&g2.to_le_bytes()); // r9 = grant_root
        payload.extend_from_slice(&g3.to_le_bytes()); // call it
        payload.extend_from_slice(&3u64.to_le_bytes()); // sysret flags: user | IE
        payload.extend_from_slice(&resume.to_le_bytes()); // getaway target
                                                          // The terminating zero word is supplied by the copy itself; pad the
                                                          // frame so the NIC's 32-byte granule never truncates the chain.
        payload.extend_from_slice(&0u64.to_le_bytes());
        Ok(AttackPlan { payload, g1, g2, g3, fptr_slot, grant_root: self.kernel.grant_root(), resume })
    }
}

/// Builds the full §6 scenario: the vulnerable server workload with the
/// crafted packet injected at `attack_cycle` — a remote attacker exploiting
/// the message-processing path over the network.
///
/// # Errors
///
/// Propagates gadget-scan failures.
pub fn mount_kernel_rop(
    params: &WorkloadParams,
    attack_cycle: u64,
) -> Result<(VmSpec, AttackPlan), RopChainError> {
    let mut spec = Workload::vulnerable_server(params);
    let resume = spec.extra_images[0].symbol("ap_loop").ok_or(RopChainError::MissingResumeTarget)?;
    let plan = RopChainBuilder::new(&spec.kernel).build(resume)?;
    spec.net.injections.push(PacketInjection { at_cycle: attack_cycle, payload: plan.payload.clone() });
    spec.name = "apache-vuln+rop".to_string();
    Ok((spec, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnr_guest::KernelBuilder;

    #[test]
    fn payload_has_figure_10_layout() {
        let kernel = KernelBuilder::new().build();
        let plan = RopChainBuilder::new(&kernel).build(0x20_0000).unwrap();
        let words: Vec<u64> =
            plan.payload.chunks(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(words.len(), 23);
        assert!(words[..16].iter().all(|&w| w != 0), "junk must be non-zero");
        assert_eq!(words[16], plan.g1);
        assert_eq!(words[17], plan.fptr_slot);
        assert_eq!(words[18], plan.g2);
        assert_eq!(words[19], plan.g3);
        assert_eq!(words[20], 3);
        assert_eq!(words[21], 0x20_0000);
        assert_eq!(words[22], 0);
    }

    #[test]
    fn fptr_slot_contains_grant_root() {
        let kernel = KernelBuilder::new().build();
        let plan = RopChainBuilder::new(&kernel).build(0x20_0000).unwrap();
        let image = kernel.image();
        let off = (plan.fptr_slot - image.base()) as usize;
        let stored = u64::from_le_bytes(image.bytes()[off..off + 8].try_into().unwrap());
        assert_eq!(stored, plan.grant_root);
    }

    #[test]
    fn mount_injects_one_packet() {
        let (spec, plan) = mount_kernel_rop(&WorkloadParams::default(), 1_500_000).unwrap();
        assert_eq!(spec.net.injections.len(), 1);
        assert_eq!(spec.net.injections[0].at_cycle, 1_500_000);
        assert_eq!(spec.net.injections[0].payload, plan.payload);
        assert_eq!(spec.name, "apache-vuln+rop");
    }
}
