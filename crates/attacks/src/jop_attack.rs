//! A mounted JOP attack scenario (Table 1, row 2), exercising the hardware
//! indirect-branch table end to end.

use rnr_guest::{layout, runtime, KernelBuilder};
use rnr_hypervisor::{jop_table_from_spec, PacketInjection, VmSpec};
use rnr_isa::{Addr, Assembler, Reg};

/// Guest staging buffer the server copies "configuration" packets into;
/// the dispatch function pointer sits immediately above it.
const STAGING: Addr = layout::USER_HEAP - 0x80;
/// The corruptible dispatch pointer.
const FPTR: Addr = layout::USER_HEAP;

/// Everything known about the mounted JOP scenario.
#[derive(Debug, Clone)]
pub struct JopPlan {
    /// Address of the corruptible function pointer.
    pub fptr: Addr,
    /// The common (hardware-tracked) handler.
    pub handler_common: Addr,
    /// The uncommon handler (legal, but outside the hardware table):
    /// dispatching to it is the *false positive* the replayer clears.
    pub handler_uncommon: Addr,
    /// The attack's mid-function target.
    pub jop_target: Addr,
    /// The crafted packet.
    pub payload: Vec<u8>,
    /// Hardware table size to record with (excludes the uncommon handler).
    pub hw_table_limit: usize,
}

/// Builds the JOP scenario: a dispatch server whose handler pointer sits
/// right above an unbounded-copy staging buffer. The guest periodically
/// dispatches through an *uncommon* handler (hardware false positives), and
/// the injected packet overwrites the pointer with a **mid-function**
/// address (the real JOP).
pub fn mount_jop(attack_cycle: u64) -> (VmSpec, JopPlan) {
    let kernel = KernelBuilder::new().build();
    let mut a = Assembler::new(layout::USER_BASE);
    a.label("jop_main");
    // fptr starts at the common handler.
    a.lea(Reg::R5, "jop_handler_common");
    a.movi(Reg::R6, FPTR as i32);
    a.st(Reg::R6, 0, Reg::R5);
    a.movi(Reg::R13, 0); // iteration counter
    a.label("jop_loop");
    // Receive a "configuration" packet...
    a.movi(Reg::R1, 0x34_0000);
    a.call("u_netrecv");
    // ...and stage it with the unbounded word copy (stops at a zero word;
    // benign packets carry one early, the attack packet does not).
    a.movi(Reg::R1, STAGING as i32);
    a.movi(Reg::R2, 0x34_0000);
    a.call("u_wordcopy");
    // Every 8th iteration the server legitimately switches to the uncommon
    // handler — the hardware table alarms, the replayer clears it.
    a.andi(Reg::R5, Reg::R13, 7);
    a.movi(Reg::R6, 0);
    a.bne(Reg::R5, Reg::R6, "jop_dispatch");
    a.lea(Reg::R5, "jop_handler_uncommon");
    a.movi(Reg::R6, FPTR as i32);
    a.st(Reg::R6, 0, Reg::R5);
    a.label("jop_dispatch");
    a.movi(Reg::R5, FPTR as i32);
    a.ld(Reg::R5, Reg::R5, 0);
    a.callr(Reg::R5); // the checked indirect call
                      // Reset to the common handler for the next rounds.
    a.lea(Reg::R5, "jop_handler_common");
    a.movi(Reg::R6, FPTR as i32);
    a.st(Reg::R6, 0, Reg::R5);
    a.addi(Reg::R13, Reg::R13, 1);
    a.jmp("jop_loop");

    a.label("jop_handler_common");
    a.movi(Reg::R1, 80);
    a.call("u_compute");
    a.ret();

    runtime::emit_runtime(&mut a);

    // The uncommon handler sits at the image's end, past every runtime
    // function: address-ordered truncation drops it from the hardware table.
    a.label("jop_handler_uncommon");
    a.movi(Reg::R1, 40);
    a.call("u_compute");
    a.nop();
    a.nop(); // the attack's landing pad is inside this body
    a.movi(Reg::R1, 20);
    a.call("u_compute");
    a.ret();
    let image = a.assemble().expect("jop image assembles");

    let handler_common = image.require_symbol("jop_handler_common");
    let handler_uncommon = image.require_symbol("jop_handler_uncommon");
    let jop_target = handler_uncommon + 16; // mid-function: the nop pad

    let mut spec = VmSpec::new(kernel, "jop-server");
    spec.boot.user_thread(image.require_symbol("jop_main"));
    spec.extra_images.push(image);
    // Light benign "configuration" traffic.
    spec.net = rnr_hypervisor::NetProfile {
        mean_interarrival: Some(40_000),
        size_range: (96, 256),
        large_every: None,
        injections: vec![],
    };

    // Full table size, then exclude the tail so the uncommon handler (and
    // only it plus the scenario's own tail) is outside the hardware table.
    let full = jop_table_from_spec(&spec, usize::MAX);
    let hw_table_limit = full
        .ranges()
        .iter()
        .position(|&(s, _)| s == handler_uncommon)
        .expect("uncommon handler is a function");

    // The payload: 16 non-zero junk words fill the staging buffer, the 17th
    // overwrites the function pointer with the mid-function target.
    let mut payload = Vec::with_capacity(19 * 8);
    for i in 0..16u64 {
        payload.extend_from_slice(&(0x6a6f_7021_0000_0001u64 | (i << 8)).to_le_bytes());
    }
    payload.extend_from_slice(&jop_target.to_le_bytes());
    payload.extend_from_slice(&0u64.to_le_bytes());
    spec.net.injections.push(PacketInjection { at_cycle: attack_cycle, payload: payload.clone() });

    (spec, JopPlan { fptr: FPTR, handler_common, handler_uncommon, jop_target, payload, hw_table_limit })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_geometry() {
        let (spec, plan) = mount_jop(500_000);
        assert_eq!(plan.fptr - STAGING, 0x80, "staging buffer sits right below the pointer");
        assert!(plan.jop_target > plan.handler_uncommon);
        assert_eq!(spec.net.injections.len(), 1);
        // The hardware table excludes the uncommon handler; the full one has it.
        let hw = jop_table_from_spec(&spec, plan.hw_table_limit);
        let full = jop_table_from_spec(&spec, usize::MAX);
        assert!(!hw.is_legal(plan.handler_common, plan.handler_uncommon));
        assert!(full.is_legal(plan.handler_common, plan.handler_uncommon));
        // The true JOP target is illegal on both.
        assert!(!full.is_legal(plan.handler_common, plan.jop_target));
    }
}
