//! # rnr-attacks: attack construction and the Table 1 detectors
//!
//! The offensive half of the reproduction, plus the non-ROP detector
//! examples the paper sketches in Table 1:
//!
//! * [`GadgetScanner`] — scans a binary image for ROP gadgets exactly as
//!   Figure 10(a) describes: find `ret` opcodes, decode the instructions
//!   before them.
//! * [`RopChainBuilder`] — assembles the §6 kernel attack payload from
//!   *scanned* gadgets: smash the 128-byte `proc_msg` stack buffer through
//!   the kernel's unbounded word-copy, chain `pop r1; ret` →
//!   `ld r9,[r1]; ret` → `callr r9` to call `grant_root` through the kernel
//!   function table, then `sysret` back to user code for a clean getaway.
//! * [`mount_kernel_rop`] — packages the payload as a network packet
//!   injected into the vulnerable-server workload at a chosen virtual time
//!   (the remote attacker of the threat model).
//! * [`JopDetector`] — Table 1's jump-oriented-programming first-line
//!   detector: a table of function begin/end addresses; stray indirect
//!   branches alarm, and a second (replay-side) pass checks the full table.
//! * [`DosDetector`] — Table 1's denial-of-service detector: a watchdog
//!   over the kernel context-switch counter; [`dos_scenario`] builds a
//!   guest whose malicious kernel thread disables interrupts and spins.
//! * [`mount_heap_overflow`] / [`mount_stack_uar`] — the memory-safety
//!   attacks the VRT detector family (DESIGN.md §15) resolves: a linear
//!   kernel-heap overflow caught with zero false negatives, and a stack
//!   use-after-return through a leaked frame pointer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dos;
mod gadgets;
mod jop;
mod jop_attack;
mod mem;
mod rop;

pub use dos::{dos_control, dos_scenario, DosDetector, DosVerdict};
pub use gadgets::{Gadget, GadgetScanner};
pub use jop::{JopCheck, JopDetector};
pub use jop_attack::{mount_jop, JopPlan};
pub use mem::{mount_heap_overflow, mount_stack_uar, HeapOverflowPlan, UarPlan};
pub use rop::{mount_kernel_rop, AttackPlan, RopChainBuilder, RopChainError};
