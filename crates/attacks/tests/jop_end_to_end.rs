//! Table 1 row 2 end to end: hardware JOP alarms during recording,
//! replay-side resolution against the full function table.

use std::sync::Arc;

use rnr_attacks::mount_jop;
use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_replay::{resolve_jop, JopVerdict, ReplayConfig, Replayer};

const ATTACK_CYCLE: u64 = 900_000;
const RUN_INSNS: u64 = 700_000;

fn record(spec: &rnr_hypervisor::VmSpec, hw_limit: usize) -> rnr_hypervisor::RecordOutcome {
    let mut rc = RecordConfig::new(RecordMode::Rec, 42, RUN_INSNS);
    rc.jop_common_functions = Some(hw_limit);
    let out = Recorder::new(spec, rc).unwrap().run();
    assert!(out.fault.is_none(), "{:?}", out.fault);
    out
}

#[test]
fn jop_attack_is_detected_and_convicted() {
    let (spec, plan) = mount_jop(ATTACK_CYCLE);
    let rec = record(&spec, plan.hw_table_limit);
    // The CR lifts JOP cases from the log while verifying the replay.
    let log = Arc::clone(&rec.log);
    let mut cr = Replayer::new(&spec, log, ReplayConfig::default());
    cr.verify_against(rec.final_digest);
    let out = cr.run().unwrap();
    assert_eq!(out.verified, Some(true), "JOP trapping must not perturb determinism");
    assert!(!out.jop_cases.is_empty(), "JOP alarms expected");

    let mut attacks = 0;
    let mut false_positives = 0;
    for case in &out.jop_cases {
        match resolve_jop(&spec, case) {
            JopVerdict::JopAttack => {
                attacks += 1;
                assert_eq!(case.target, plan.jop_target, "conviction names the landing pad");
            }
            JopVerdict::FalsePositive => {
                false_positives += 1;
                // Every cleared alarm was a legitimate dispatch to the
                // uncommon handler.
                assert_eq!(case.target, plan.handler_uncommon, "{case:?}");
            }
        }
    }
    assert!(attacks >= 1, "the mid-function dispatch must be convicted");
    assert!(false_positives >= 1, "uncommon-handler dispatches must occur and be cleared");
}

#[test]
fn benign_jop_server_raises_only_resolvable_alarms() {
    let (mut spec, plan) = mount_jop(ATTACK_CYCLE);
    spec.net.injections.clear(); // no attack packet
    let rec = record(&spec, plan.hw_table_limit);
    let log = Arc::clone(&rec.log);
    let out = Replayer::new(&spec, log, ReplayConfig::default()).run().unwrap();
    for case in &out.jop_cases {
        assert_eq!(resolve_jop(&spec, case), JopVerdict::FalsePositive, "{case:?}");
    }
}

#[test]
fn full_hardware_table_raises_no_benign_alarms() {
    let (mut spec, _plan) = mount_jop(ATTACK_CYCLE);
    spec.net.injections.clear();
    let mut rc = RecordConfig::new(RecordMode::Rec, 42, RUN_INSNS);
    rc.jop_common_functions = Some(usize::MAX); // perfect (expensive) hardware
    let rec = Recorder::new(&spec, rc).unwrap().run();
    assert!(rec.fault.is_none());
    let log = Arc::clone(&rec.log);
    let out = Replayer::new(&spec, log, ReplayConfig::default()).run().unwrap();
    assert!(out.jop_cases.is_empty(), "{:?}", out.jop_cases);
}
