//! The heavier instrumentation level of §4.6.2 / Table 1: replay-side PC
//! profiling, including the DOS replay role ("analyze the code that has
//! dominated the system's execution time").

use std::sync::Arc;

use rnr_attacks::{dos_scenario, DosDetector};
use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_replay::{ReplayConfig, Replayer};
use rnr_workloads::{Workload, WorkloadParams};

#[test]
fn profiling_does_not_perturb_determinism() {
    let spec = Workload::Mysql.spec(false);
    let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 3, 200_000)).unwrap().run();
    let log = Arc::clone(&rec.log);
    let cfg = ReplayConfig { profile_sample_every: Some(97), ..ReplayConfig::default() };
    let mut r = Replayer::new(&spec, log, cfg);
    r.verify_against(rec.final_digest);
    let out = r.run().unwrap();
    assert_eq!(out.verified, Some(true));
    let samples: u64 = out.profile.values().sum();
    assert!(samples >= rec.retired / 97 - 2, "expected dense sampling, got {samples}");
}

#[test]
fn dos_replay_role_identifies_the_spinning_code() {
    // Record the interrupt-starvation DOS; the watchdog alarms; the replay
    // role profiles the execution and names the dominant code region.
    let params = WorkloadParams::default();
    let spec = dos_scenario(&params, 600);
    let mut rc = RecordConfig::new(RecordMode::Rec, 42, 1_500_000);
    rc.trace = 1;
    let rec = Recorder::new(&spec, rc).unwrap().run();
    let alarm_at = DosDetector::new(params.timer_period * 4, 1)
        .first_alarm(&rec.switch_trace, rec.cycles)
        .expect("DOS detected");
    assert!(alarm_at > 0);

    // Replay with profiling (the "analysis" replayer of Table 1 row 3).
    let log = Arc::clone(&rec.log);
    let cfg = ReplayConfig { profile_sample_every: Some(101), ..ReplayConfig::default() };
    let out = Replayer::new(&spec, log, cfg).run().unwrap();
    // The dominant PC must be inside the spin loop of the malicious image.
    let (&dominant, &hits) = out.profile.iter().max_by_key(|&(_, &n)| n).expect("samples taken");
    let spin = spec.extra_images[1].require_symbol("dos_spin");
    assert!(
        dominant >= spin - 16 && dominant <= spin + 16,
        "dominant pc {dominant:#x} should be the spin at {spin:#x}"
    );
    let total: u64 = out.profile.values().sum();
    assert!(hits * 2 > total, "spin should dominate: {hits}/{total}");
}
