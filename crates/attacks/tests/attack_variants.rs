//! Soundness across attack variants: no matter when the exploit packet
//! lands or which escalation target it uses, the hijacked return always
//! alarms and the alarm replayer always convicts.

use std::sync::Arc;

use proptest::prelude::*;
use rnr_attacks::{mount_kernel_rop, RopChainBuilder};
use rnr_hypervisor::{PacketInjection, RecordConfig, RecordMode, Recorder};
use rnr_replay::{AlarmReplayer, ReplayConfig, Replayer, VIRTUAL_HZ};
use rnr_workloads::{Workload, WorkloadParams};

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Vary the attack's arrival time and the recording seed: detection and
    /// conviction are invariant.
    #[test]
    fn attack_timing_does_not_evade_detection(
        attack_cycle in 600_000u64..2_000_000,
        seed in 0u64..100,
    ) {
        let (spec, plan) = mount_kernel_rop(&WorkloadParams::attack_demo(), attack_cycle).unwrap();
        let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, seed, 1_200_000))
            .unwrap()
            .run();
        prop_assert!(rec.fault.is_none());
        // The exploit packet may still be in flight at the budget's end;
        // otherwise the hijack must have alarmed.
        if rec.priv_flag == 0x1337 {
            prop_assert!(rec.alarms > 0, "escalation without an alarm = false negative");
            let log = Arc::clone(&rec.log);
            let cfg = ReplayConfig {
                checkpoint_interval: Some(VIRTUAL_HZ / 8),
                ..ReplayConfig::default()
            };
            let out = Replayer::new(&spec, Arc::clone(&log), cfg.clone()).run().unwrap();
            prop_assert!(!out.alarm_cases.is_empty());
            let ar = AlarmReplayer::new(&spec, log).with_config(cfg);
            let convicted = out
                .alarm_cases
                .iter()
                .map(|c| ar.resolve(c).unwrap().0)
                .filter(|v| v.is_attack())
                .count();
            prop_assert!(convicted >= 1, "attack escaped conviction");
            // The first conviction names the right entry point.
            let (first, _) = ar.resolve(&out.alarm_cases[0]).unwrap();
            if let rnr_replay::Verdict::RopAttack(report) = first {
                prop_assert_eq!(report.actual_target, plan.g1);
            }
        }
    }
}

/// A chain with a different getaway target and extra junk still convicts
/// (the detector keys on the hijacked return, not the payload's shape).
#[test]
fn payload_shape_variants_are_convicted() {
    for junk_seed in [1u64, 7, 99] {
        let mut spec = Workload::vulnerable_server(&WorkloadParams::attack_demo());
        let resume = spec.extra_images[0].require_symbol("ap_loop");
        let mut plan = RopChainBuilder::new(&spec.kernel).build(resume).unwrap();
        // Re-skin the junk words; keep them non-zero.
        for (i, word) in plan.payload.chunks_mut(8).take(16).enumerate() {
            let v = 0x4b4b_4b4b_0000_0001u64 | (junk_seed << 16) | (i as u64) << 8;
            word.copy_from_slice(&v.to_le_bytes());
        }
        spec.net.injections.push(PacketInjection { at_cycle: 1_200_000, payload: plan.payload.clone() });
        let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 42, 900_000)).unwrap().run();
        assert!(rec.alarms > 0, "junk_seed {junk_seed}");
        let log = Arc::clone(&rec.log);
        let cfg = ReplayConfig { checkpoint_interval: Some(VIRTUAL_HZ / 8), ..ReplayConfig::default() };
        let out = Replayer::new(&spec, Arc::clone(&log), cfg.clone()).run().unwrap();
        let ar = AlarmReplayer::new(&spec, log).with_config(cfg);
        let convicted =
            out.alarm_cases.iter().map(|c| ar.resolve(c).unwrap().0).filter(|v| v.is_attack()).count();
        assert!(convicted >= 1, "junk_seed {junk_seed}: attack escaped");
    }
}
