//! The paper's headline flow, end to end: mount the §6 kernel ROP attack,
//! record it, replay it, resolve the alarm, characterize the attack.

use std::sync::Arc;

use rnr_attacks::{dos_control, dos_scenario, mount_kernel_rop, DosDetector};
use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_replay::{AlarmReplayer, ReplayConfig, Replayer, Verdict, VIRTUAL_HZ};
use rnr_workloads::{Workload, WorkloadParams};

const ATTACK_CYCLE: u64 = 1_200_000;
const RUN_INSNS: u64 = 900_000;

fn attack_recording() -> (rnr_hypervisor::VmSpec, rnr_attacks::AttackPlan, rnr_hypervisor::RecordOutcome) {
    let (spec, plan) = mount_kernel_rop(&WorkloadParams::attack_demo(), ATTACK_CYCLE).unwrap();
    let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 42, RUN_INSNS)).unwrap().run();
    (spec, plan, rec)
}

#[test]
fn attack_raises_alarms_and_escalates_privilege() {
    let (_spec, _plan, rec) = attack_recording();
    assert!(rec.fault.is_none(), "attack should get away cleanly: {:?}", rec.fault);
    assert!(rec.alarms > 0, "the hijacked return must mispredict");
    // The recorded VM was NOT stalled at the alarm (continue policy), so
    // the gadget chain ran and escalated privilege.
    assert_eq!(rec.priv_flag, 0x1337, "grant_root must have run");
}

#[test]
fn benign_vulnerable_server_raises_no_mismatch_alarms() {
    // Same server, no crafted packet: benign traffic must stay quiet.
    let spec = Workload::vulnerable_server(&WorkloadParams::attack_demo());
    let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 42, RUN_INSNS)).unwrap().run();
    assert!(rec.fault.is_none());
    assert_eq!(rec.priv_flag, 0, "no escalation without the exploit");
    // Any alarms present must be underflows (deep driver recursion), never
    // target mismatches.
    for (_, alarm) in rec.log.alarms() {
        assert_eq!(alarm.mispredict.kind, rnr_ras::MispredictKind::Underflow, "{alarm:?}");
    }
}

#[test]
fn checkpointing_replayer_escalates_the_attack_alarm() {
    let (spec, _plan, rec) = attack_recording();
    let log = Arc::clone(&rec.log);
    let cfg = ReplayConfig { checkpoint_interval: Some(VIRTUAL_HZ / 8), ..ReplayConfig::default() };
    let mut cr = Replayer::new(&spec, log, cfg);
    cr.verify_against(rec.final_digest);
    let out = cr.run().unwrap();
    assert_eq!(out.verified, Some(true), "attack replays deterministically");
    assert!(!out.alarm_cases.is_empty(), "the ROP alarm must escalate to an alarm replayer");
    // The checkpoint handed over precedes the alarm.
    let case = &out.alarm_cases[0];
    assert!(case.checkpoint.at_insn <= case.at_insn());
}

#[test]
fn alarm_replayer_convicts_the_attack_and_characterizes_it() {
    let (spec, plan, rec) = attack_recording();
    let log = Arc::clone(&rec.log);
    let cfg = ReplayConfig { checkpoint_interval: Some(VIRTUAL_HZ / 8), ..ReplayConfig::default() };
    let out = Replayer::new(&spec, Arc::clone(&log), cfg).run().unwrap();
    assert!(!out.alarm_cases.is_empty());

    let ar = AlarmReplayer::new(&spec, log);
    let (verdict, _ar_out) = ar.resolve(&out.alarm_cases[0]).unwrap();
    let Verdict::RopAttack(report) = verdict else {
        panic!("expected a ROP conviction, got {verdict:?}");
    };
    // "How was the attack possible": the vulnerable procedure.
    assert_eq!(report.vulnerable_symbol.as_deref(), Some("proc_msg"));
    // Control went to G1.
    assert_eq!(report.actual_target, plan.g1);
    // The decoded payload exposes the rest of the chain on the stack.
    let chain_values: Vec<u64> = report.gadget_chain.iter().map(|g| g.value).collect();
    assert!(chain_values.contains(&plan.fptr_slot), "chain {chain_values:#x?}");
    assert!(chain_values.contains(&plan.g2));
    assert!(chain_values.contains(&plan.g3));
    // At the alarm point the gadgets have NOT run yet: state unpolluted.
    assert_eq!(report.priv_flag_at_alarm, 0);
    // "Who attacked": a live thread table is part of the report.
    assert!(!report.threads.is_empty());
    // The G2 gadget listing names the fetch through the pointer.
    let g2_use = report.gadget_chain.iter().find(|g| g.value == plan.g2).unwrap();
    assert_eq!(g2_use.listing.as_deref(), Some("ld r9, [r1+0]; ret"));
}

#[test]
fn benign_alarms_resolve_as_false_positives() {
    // Force benign alarms: make's longjmp (imperfect nesting) with a small
    // RAS also produces underflows.
    let spec = Workload::Make.spec(false);
    let mut rc = RecordConfig::new(RecordMode::Rec, 11, 700_000);
    rc.ras_capacity = 12;
    let rec = Recorder::new(&spec, rc).unwrap().run();
    assert!(rec.fault.is_none());
    assert_eq!(rec.priv_flag, 0);
    let log = Arc::clone(&rec.log);
    let cfg = ReplayConfig {
        checkpoint_interval: Some(VIRTUAL_HZ / 8),
        ras_capacity: 12,
        ..ReplayConfig::default()
    };
    let mut cr = Replayer::new(&spec, Arc::clone(&log), cfg);
    cr.verify_against(rec.final_digest);
    let out = cr.run().unwrap();
    assert_eq!(out.verified, Some(true));
    let ar = AlarmReplayer::new(&spec, log)
        .with_config(ReplayConfig { ras_capacity: 12, ..ReplayConfig::default() });
    for case in &out.alarm_cases {
        let (verdict, _) = ar.resolve(case).unwrap();
        assert!(!verdict.is_attack(), "benign alarm misclassified as attack: {:?} -> {verdict:?}", case.kind);
    }
}

#[test]
fn dos_watchdog_fires_on_scheduler_starvation() {
    let spec = dos_scenario(&WorkloadParams::default(), 600);
    let mut rc = RecordConfig::new(RecordMode::Rec, 42, 1_500_000);
    rc.trace = 1; // enables the switch-timestamp trace
    let rec = Recorder::new(&spec, rc).unwrap().run();
    assert!(rec.fault.is_none());
    // The spin thread eventually wedges the scheduler.
    let det = DosDetector::new(spec.timer_period * 4, 1);
    let alarm = det.first_alarm(&rec.switch_trace, rec.cycles);
    assert!(alarm.is_some(), "DOS must be detected (switches: {})", rec.switch_trace.len());

    // Control: the same workload without the malicious thread stays quiet.
    let benign = dos_control(&WorkloadParams::default());
    let mut rc = RecordConfig::new(RecordMode::Rec, 42, 1_500_000);
    rc.trace = 1;
    let brec = Recorder::new(&benign, rc).unwrap().run();
    let det = DosDetector::new(benign.timer_period * 4, 1);
    assert_eq!(det.first_alarm(&brec.switch_trace, brec.cycles), None);
}
