//! A programmatic assembler with labels, fixups, and data directives.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Addr, Image, Instruction, Opcode, Reg};

/// Errors reported by [`Assembler::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A label address does not fit the 32-bit immediate field.
    TargetOutOfRange {
        /// The offending label.
        label: String,
        /// Its resolved address.
        addr: Addr,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::TargetOutOfRange { label, addr } => {
                write!(f, "label `{label}` at {addr:#x} does not fit in a 32-bit immediate")
            }
        }
    }
}

impl std::error::Error for AsmError {}

/// A target operand: either a resolved absolute address or a label name.
///
/// Every direct-control-flow emitter accepts `impl Into<Target>`, so both
/// `asm.jmp("loop")` and `asm.jmp(0x4000u64)` work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// An absolute guest address.
    Abs(Addr),
    /// A label to be resolved at [`Assembler::assemble`] time.
    Label(String),
}

impl From<&str> for Target {
    fn from(s: &str) -> Target {
        Target::Label(s.to_string())
    }
}

impl From<String> for Target {
    fn from(s: String) -> Target {
        Target::Label(s)
    }
}

impl From<Addr> for Target {
    fn from(a: Addr) -> Target {
        Target::Abs(a)
    }
}

#[derive(Debug)]
enum FixupKind {
    /// Patch the 32-bit `imm` field of the instruction at `offset`.
    Imm,
    /// Patch a full 64-bit data word at `offset`.
    Word,
}

#[derive(Debug)]
struct Fixup {
    /// Offset of the instruction or data word receiving the address.
    offset: usize,
    label: String,
    kind: FixupKind,
}

/// A programmatic assembler.
///
/// Instructions and data are emitted in order from a base address; labels may
/// be referenced before they are defined. [`Assembler::assemble`] resolves all
/// fixups and returns an [`Image`].
///
/// The guest kernel, workload programs, and attack payload builders are all
/// written against this API.
#[derive(Debug)]
pub struct Assembler {
    base: Addr,
    bytes: Vec<u8>,
    symbols: BTreeMap<String, Addr>,
    fixups: Vec<Fixup>,
    error: Option<AsmError>,
}

impl Assembler {
    /// Creates an assembler emitting from `base`.
    pub fn new(base: Addr) -> Assembler {
        Assembler { base, bytes: Vec::new(), symbols: BTreeMap::new(), fixups: Vec::new(), error: None }
    }

    /// The address of the next byte to be emitted.
    pub fn here(&self) -> Addr {
        self.base + self.bytes.len() as u64
    }

    /// Defines `name` at the current position.
    ///
    /// Duplicate definitions are reported by [`Assembler::assemble`].
    pub fn label(&mut self, name: &str) -> &mut Assembler {
        if self.symbols.insert(name.to_string(), self.here()).is_some() && self.error.is_none() {
            self.error = Some(AsmError::DuplicateLabel(name.to_string()));
        }
        self
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, insn: Instruction) -> &mut Assembler {
        self.bytes.extend_from_slice(&insn.encode());
        self
    }

    fn emit_target(&mut self, op: Opcode, rd: Reg, rs1: Reg, rs2: Reg, target: Target) -> &mut Assembler {
        match target {
            Target::Abs(a) => {
                self.emit(Instruction::new(op, rd, rs1, rs2, a as u32 as i32));
            }
            Target::Label(l) => {
                self.fixups.push(Fixup { offset: self.bytes.len(), label: l, kind: FixupKind::Imm });
                self.emit(Instruction::new(op, rd, rs1, rs2, 0));
            }
        }
        self
    }

    // ---- data directives -------------------------------------------------

    /// Emits raw bytes.
    pub fn bytes(&mut self, data: &[u8]) -> &mut Assembler {
        self.bytes.extend_from_slice(data);
        self
    }

    /// Emits a little-endian 64-bit word.
    pub fn word(&mut self, w: u64) -> &mut Assembler {
        self.bytes.extend_from_slice(&w.to_le_bytes());
        self
    }

    /// Emits a 64-bit data word holding the address of `label` (resolved at
    /// assembly time). Used for in-image pointer tables such as the guest
    /// kernel's syscall dispatch table.
    pub fn word_label(&mut self, label: &str) -> &mut Assembler {
        self.fixups.push(Fixup { offset: self.bytes.len(), label: label.to_string(), kind: FixupKind::Word });
        self.word(0)
    }

    /// Emits `n` zero bytes.
    pub fn space(&mut self, n: usize) -> &mut Assembler {
        self.bytes.resize(self.bytes.len() + n, 0);
        self
    }

    /// Pads with zero bytes to the next multiple of `align` (a power of two).
    pub fn align(&mut self, align: u64) -> &mut Assembler {
        debug_assert!(align.is_power_of_two());
        while !self.here().is_multiple_of(align) {
            self.bytes.push(0);
        }
        self
    }

    // ---- moves and ALU ---------------------------------------------------

    /// `nop`.
    pub fn nop(&mut self) -> &mut Assembler {
        self.emit(Instruction::bare(Opcode::Nop))
    }

    /// `hlt` — idle until the next interrupt.
    pub fn hlt(&mut self) -> &mut Assembler {
        self.emit(Instruction::bare(Opcode::Hlt))
    }

    /// `rd = rs`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Mov, rd, rs, Reg::R0, 0))
    }

    /// `rd = imm` (sign-extended 32-bit immediate).
    pub fn movi(&mut self, rd: Reg, imm: i32) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::MovImm, rd, Reg::R0, Reg::R0, imm))
    }

    /// Loads a full 64-bit constant via `movi` + `movhi`.
    pub fn movi64(&mut self, rd: Reg, value: u64) -> &mut Assembler {
        let low = (value & 0xffff_ffff) as u32 as i32;
        self.movi(rd, low);
        // `movi` sign-extends; emit `movhi` whenever that is not the value.
        if low as i64 as u64 != value {
            self.emit(Instruction::new(Opcode::MovHi, rd, Reg::R0, Reg::R0, (value >> 32) as u32 as i32));
        }
        self
    }

    /// Loads the address of `label` into `rd`.
    pub fn lea(&mut self, rd: Reg, label: impl Into<Target>) -> &mut Assembler {
        self.emit_target(Opcode::MovImm, rd, Reg::R0, Reg::R0, label.into())
    }

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Add, rd, rs1, rs2, 0))
    }

    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Sub, rd, rs1, rs2, 0))
    }

    /// `rd = rs1 * rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Mul, rd, rs1, rs2, 0))
    }

    /// `rd = rs1 / rs2` (unsigned).
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Divu, rd, rs1, rs2, 0))
    }

    /// `rd = rs1 & rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::And, rd, rs1, rs2, 0))
    }

    /// `rd = rs1 | rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Or, rd, rs1, rs2, 0))
    }

    /// `rd = rs1 ^ rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Xor, rd, rs1, rs2, 0))
    }

    /// `rd = rs1 << rs2`.
    pub fn shl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Shl, rd, rs1, rs2, 0))
    }

    /// `rd = rs1 >> rs2`.
    pub fn shr(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Shr, rd, rs1, rs2, 0))
    }

    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Addi, rd, rs1, Reg::R0, imm))
    }

    /// `rd = rs1 & imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Andi, rd, rs1, Reg::R0, imm))
    }

    /// `rd = rs1 | imm`.
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Ori, rd, rs1, Reg::R0, imm))
    }

    /// `rd = rs1 ^ imm`.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Xori, rd, rs1, Reg::R0, imm))
    }

    /// `rd = rs1 << imm`.
    pub fn shli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Shli, rd, rs1, Reg::R0, imm))
    }

    /// `rd = rs1 >> imm`.
    pub fn shri(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Shri, rd, rs1, Reg::R0, imm))
    }

    /// `rd = rs1 * imm`.
    pub fn muli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Muli, rd, rs1, Reg::R0, imm))
    }

    // ---- memory ------------------------------------------------------------

    /// `rd = mem64[rs1 + imm]`.
    pub fn ld(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Ld, rd, rs1, Reg::R0, imm))
    }

    /// `mem64[rs1 + imm] = rs2`.
    pub fn st(&mut self, rs1: Reg, imm: i32, rs2: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::St, Reg::R0, rs1, rs2, imm))
    }

    /// `rd = mem8[rs1 + imm]`.
    pub fn ld8(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Ld8, rd, rs1, Reg::R0, imm))
    }

    /// `mem8[rs1 + imm] = rs2`.
    pub fn st8(&mut self, rs1: Reg, imm: i32, rs2: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::St8, Reg::R0, rs1, rs2, imm))
    }

    /// `push rs`.
    pub fn push(&mut self, rs: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Push, Reg::R0, rs, Reg::R0, 0))
    }

    /// `pop rd`.
    pub fn pop(&mut self, rd: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Pop, rd, Reg::R0, Reg::R0, 0))
    }

    // ---- control flow ------------------------------------------------------

    /// `call target` — pushes the return address on the software stack and
    /// the hardware RAS.
    pub fn call(&mut self, target: impl Into<Target>) -> &mut Assembler {
        self.emit_target(Opcode::Call, Reg::R0, Reg::R0, Reg::R0, target.into())
    }

    /// `callr rs` — indirect call.
    pub fn callr(&mut self, rs: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::CallR, Reg::R0, rs, Reg::R0, 0))
    }

    /// `ret`.
    pub fn ret(&mut self) -> &mut Assembler {
        self.emit(Instruction::bare(Opcode::Ret))
    }

    /// `jmp target`.
    pub fn jmp(&mut self, target: impl Into<Target>) -> &mut Assembler {
        self.emit_target(Opcode::Jmp, Reg::R0, Reg::R0, Reg::R0, target.into())
    }

    /// `jmpr rs` — indirect jump.
    pub fn jmpr(&mut self, rs: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::JmpR, Reg::R0, rs, Reg::R0, 0))
    }

    /// `beq rs1, rs2, target`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: impl Into<Target>) -> &mut Assembler {
        self.emit_target(Opcode::Beq, Reg::R0, rs1, rs2, target.into())
    }

    /// `bne rs1, rs2, target`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: impl Into<Target>) -> &mut Assembler {
        self.emit_target(Opcode::Bne, Reg::R0, rs1, rs2, target.into())
    }

    /// `blt rs1, rs2, target` (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: impl Into<Target>) -> &mut Assembler {
        self.emit_target(Opcode::Blt, Reg::R0, rs1, rs2, target.into())
    }

    /// `bge rs1, rs2, target` (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: impl Into<Target>) -> &mut Assembler {
        self.emit_target(Opcode::Bge, Reg::R0, rs1, rs2, target.into())
    }

    /// `bltu rs1, rs2, target` (unsigned).
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: impl Into<Target>) -> &mut Assembler {
        self.emit_target(Opcode::Bltu, Reg::R0, rs1, rs2, target.into())
    }

    /// `bgeu rs1, rs2, target` (unsigned).
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, target: impl Into<Target>) -> &mut Assembler {
        self.emit_target(Opcode::Bgeu, Reg::R0, rs1, rs2, target.into())
    }

    // ---- privileged / device -----------------------------------------------

    /// `rdtsc rd`.
    pub fn rdtsc(&mut self, rd: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Rdtsc, rd, Reg::R0, Reg::R0, 0))
    }

    /// `in rd, port`.
    pub fn pio_in(&mut self, rd: Reg, port: u16) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::In, rd, Reg::R0, Reg::R0, port as i32))
    }

    /// `out port, rs`.
    pub fn pio_out(&mut self, port: u16, rs: Reg) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Out, Reg::R0, rs, Reg::R0, port as i32))
    }

    /// `vmcall` — paravirtual hypercall (request code in `r1`).
    pub fn vmcall(&mut self) -> &mut Assembler {
        self.emit(Instruction::bare(Opcode::Vmcall))
    }

    /// `syscall nr`.
    pub fn syscall(&mut self, nr: u32) -> &mut Assembler {
        self.emit(Instruction::new(Opcode::Syscall, Reg::R0, Reg::R0, Reg::R0, nr as i32))
    }

    /// `sysret`.
    pub fn sysret(&mut self) -> &mut Assembler {
        self.emit(Instruction::bare(Opcode::Sysret))
    }

    /// `iret`.
    pub fn iret(&mut self) -> &mut Assembler {
        self.emit(Instruction::bare(Opcode::Iret))
    }

    /// `cli`.
    pub fn cli(&mut self) -> &mut Assembler {
        self.emit(Instruction::bare(Opcode::Cli))
    }

    /// `sti`.
    pub fn sti(&mut self) -> &mut Assembler {
        self.emit(Instruction::bare(Opcode::Sti))
    }

    // ---- finalization -------------------------------------------------------

    /// Resolves all fixups and produces the final [`Image`].
    ///
    /// # Errors
    ///
    /// Reports undefined or duplicate labels and label addresses that do not
    /// fit the 32-bit immediate field.
    pub fn assemble(mut self) -> Result<Image, AsmError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        for fixup in &self.fixups {
            let addr = *self
                .symbols
                .get(&fixup.label)
                .ok_or_else(|| AsmError::UndefinedLabel(fixup.label.clone()))?;
            match fixup.kind {
                FixupKind::Imm => {
                    if addr > u32::MAX as u64 {
                        return Err(AsmError::TargetOutOfRange { label: fixup.label.clone(), addr });
                    }
                    self.bytes[fixup.offset + 4..fixup.offset + 8]
                        .copy_from_slice(&(addr as u32).to_le_bytes());
                }
                FixupKind::Word => {
                    self.bytes[fixup.offset..fixup.offset + 8].copy_from_slice(&addr.to_le_bytes());
                }
            }
        }
        Ok(Image::from_parts(self.base, self.bytes, self.symbols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::INSN_BYTES;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Assembler::new(0x1000);
        asm.label("top");
        asm.jmp("bottom"); // forward
        asm.nop();
        asm.label("bottom");
        asm.jmp("top"); // backward
        let img = asm.assemble().unwrap();
        let first = img.decode_at(0x1000).unwrap();
        assert_eq!(first.target(), 0x1000 + 2 * INSN_BYTES);
        let last = img.decode_at(0x1000 + 2 * INSN_BYTES).unwrap();
        assert_eq!(last.target(), 0x1000);
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut asm = Assembler::new(0);
        asm.call("missing");
        assert_eq!(asm.assemble().unwrap_err(), AsmError::UndefinedLabel("missing".into()));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut asm = Assembler::new(0);
        asm.label("x").nop();
        asm.label("x");
        assert_eq!(asm.assemble().unwrap_err(), AsmError::DuplicateLabel("x".into()));
    }

    #[test]
    fn movi64_expands_when_needed() {
        let mut asm = Assembler::new(0);
        asm.movi64(Reg::R1, 7); // 1 insn
        asm.movi64(Reg::R2, 0x1_0000_0000); // 2 insns
        let img = asm.assemble().unwrap();
        assert_eq!(img.len() as u64, 3 * INSN_BYTES);
        assert_eq!(img.decode_at(8).unwrap().op, Opcode::MovImm);
        assert_eq!(img.decode_at(16).unwrap().op, Opcode::MovHi);
    }

    #[test]
    fn align_and_space() {
        let mut asm = Assembler::new(0x10);
        asm.nop(); // here = 0x18
        asm.align(16); // pad to 0x20
        assert_eq!(asm.here(), 0x20);
        asm.space(3);
        assert_eq!(asm.here(), 0x23);
    }

    #[test]
    fn data_directives_emit_bytes() {
        let mut asm = Assembler::new(0);
        asm.word(0x1122_3344_5566_7788);
        asm.bytes(b"hi");
        let img = asm.assemble().unwrap();
        assert_eq!(&img.bytes()[..8], &0x1122_3344_5566_7788u64.to_le_bytes());
        assert_eq!(&img.bytes()[8..10], b"hi");
    }

    #[test]
    fn lea_resolves_to_label_address() {
        let mut asm = Assembler::new(0x2000);
        asm.lea(Reg::R1, "data");
        asm.hlt();
        asm.label("data");
        asm.word(42);
        let img = asm.assemble().unwrap();
        let insn = img.decode_at(0x2000).unwrap();
        assert_eq!(insn.imm as u32 as u64, img.symbol("data").unwrap());
    }

    #[test]
    fn absolute_targets_need_no_fixup() {
        let mut asm = Assembler::new(0);
        asm.call(0x4000u64);
        let img = asm.assemble().unwrap();
        assert_eq!(img.decode_at(0).unwrap().target(), 0x4000);
    }
}
