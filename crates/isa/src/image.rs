//! Assembled binary images with symbol tables.

use std::collections::BTreeMap;

use crate::{Addr, DecodeError, Instruction, INSN_BYTES};

/// An assembled guest binary: raw bytes plus a symbol table.
///
/// Images are loaded into guest memory at [`Image::base`]. The symbol table
/// is what the paper's hypervisor obtains by "analyzing the binary image of
/// the guest kernel" (§4.4): it is used to program the return/target
/// whitelists and to set introspection traps, never consulted by the guest
/// itself.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Image {
    base: Addr,
    bytes: Vec<u8>,
    symbols: BTreeMap<String, Addr>,
}

impl Image {
    /// Builds an image from raw parts.
    pub fn from_parts(base: Addr, bytes: Vec<u8>, symbols: BTreeMap<String, Addr>) -> Image {
        Image { base, bytes, symbols }
    }

    /// The load address of the first byte.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// The raw image bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the image contains no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The address one past the last byte.
    pub fn end(&self) -> Addr {
        self.base + self.bytes.len() as u64
    }

    /// Looks up a symbol's address.
    pub fn symbol(&self, name: &str) -> Option<Addr> {
        self.symbols.get(name).copied()
    }

    /// Looks up a symbol, panicking with a clear message when absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not defined; intended for host-side tooling where
    /// a missing kernel symbol is a build error, not a runtime condition.
    pub fn require_symbol(&self, name: &str) -> Addr {
        match self.symbol(name) {
            Some(a) => a,
            None => panic!("symbol `{name}` not defined in image"),
        }
    }

    /// All symbols, ordered by name.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, Addr)> {
        self.symbols.iter().map(|(n, a)| (n.as_str(), *a))
    }

    /// The symbol with the greatest address not exceeding `addr`, if any —
    /// the classic "nearest symbol below" lookup used in attack reports.
    pub fn symbolize(&self, addr: Addr) -> Option<(&str, Addr)> {
        self.symbols
            .iter()
            .filter(|&(_, &a)| a <= addr)
            .max_by_key(|&(_, &a)| a)
            .map(|(n, a)| (n.as_str(), *a))
    }

    /// Decodes the instruction located at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if `addr` is outside the image or the bytes
    /// there do not decode.
    pub fn decode_at(&self, addr: Addr) -> Result<Instruction, DecodeError> {
        if addr < self.base {
            return Err(DecodeError::Truncated);
        }
        let off = (addr - self.base) as usize;
        if off + INSN_BYTES as usize > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        Instruction::decode(&self.bytes[off..off + INSN_BYTES as usize])
    }

    /// Iterates over `(addr, instruction)` pairs for every aligned slot that
    /// decodes successfully; slots that fail to decode are skipped. Used by
    /// the gadget scanner.
    pub fn iter_insns(&self) -> impl Iterator<Item = (Addr, Instruction)> + '_ {
        (0..self.bytes.len() / INSN_BYTES as usize).filter_map(move |i| {
            let off = i * INSN_BYTES as usize;
            Instruction::decode(&self.bytes[off..off + INSN_BYTES as usize])
                .ok()
                .map(|insn| (self.base + off as u64, insn))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Opcode, Reg};

    fn sample() -> Image {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&Instruction::bare(Opcode::Nop).encode());
        bytes.extend_from_slice(&Instruction::bare(Opcode::Ret).encode());
        let mut symbols = BTreeMap::new();
        symbols.insert("start".to_string(), 0x100);
        symbols.insert("fini".to_string(), 0x108);
        Image::from_parts(0x100, bytes, symbols)
    }

    #[test]
    fn geometry() {
        let img = sample();
        assert_eq!(img.base(), 0x100);
        assert_eq!(img.len(), 16);
        assert_eq!(img.end(), 0x110);
        assert!(!img.is_empty());
    }

    #[test]
    fn symbol_lookup() {
        let img = sample();
        assert_eq!(img.symbol("fini"), Some(0x108));
        assert_eq!(img.symbol("missing"), None);
        assert_eq!(img.require_symbol("start"), 0x100);
    }

    #[test]
    #[should_panic(expected = "symbol `nope` not defined")]
    fn require_symbol_panics() {
        sample().require_symbol("nope");
    }

    #[test]
    fn symbolize_finds_nearest_below() {
        let img = sample();
        assert_eq!(img.symbolize(0x104), Some(("start", 0x100)));
        assert_eq!(img.symbolize(0x108), Some(("fini", 0x108)));
        assert_eq!(img.symbolize(0x50), None);
    }

    #[test]
    fn decode_at_bounds() {
        let img = sample();
        assert_eq!(img.decode_at(0x108).unwrap().op, Opcode::Ret);
        assert!(img.decode_at(0x110).is_err());
        assert!(img.decode_at(0x0).is_err());
    }

    #[test]
    fn iter_insns_walks_image() {
        let img = sample();
        let insns: Vec<_> = img.iter_insns().collect();
        assert_eq!(insns.len(), 2);
        assert_eq!(insns[1].0, 0x108);
        assert_eq!(insns[1].1.op, Opcode::Ret);
        assert_eq!(insns[0].1.rd, Reg::R0);
    }
}
