//! Instruction formats, opcodes, and the fixed 8-byte encoding.

use std::fmt;

use crate::Reg;

/// Size of every encoded instruction in bytes.
///
/// The fixed size is a deliberate simplification over x86's variable-length
/// encoding: it keeps the interpreter fast and makes the ROP gadget scan of
/// the paper's Figure 10 (`scan image for ret opcodes, decode backwards`)
/// exact rather than heuristic.
pub const INSN_BYTES: u64 = 8;

/// Operation codes of the guest ISA.
///
/// Encodings are stable (`#[repr(u8)]`): guest images embed them, and the
/// gadget scanner of `rnr-attacks` matches on the raw opcode byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// No operation.
    Nop = 0x00,
    /// Halt until the next interrupt (guest idle loop).
    Hlt = 0x01,
    /// `rd = rs1`.
    Mov = 0x02,
    /// `rd = sext(imm)`.
    MovImm = 0x03,
    /// `rd = (rd & 0xffff_ffff) | (imm as u64) << 32` — builds 64-bit consts.
    MovHi = 0x04,

    /// `rd = rs1 + rs2`.
    Add = 0x10,
    /// `rd = rs1 - rs2`.
    Sub = 0x11,
    /// `rd = rs1 * rs2` (wrapping).
    Mul = 0x12,
    /// `rd = rs1 / rs2` unsigned; division by zero yields all-ones.
    Divu = 0x13,
    /// `rd = rs1 & rs2`.
    And = 0x14,
    /// `rd = rs1 | rs2`.
    Or = 0x15,
    /// `rd = rs1 ^ rs2`.
    Xor = 0x16,
    /// `rd = rs1 << (rs2 & 63)`.
    Shl = 0x17,
    /// `rd = rs1 >> (rs2 & 63)` (logical).
    Shr = 0x18,
    /// `rd = rs1 + sext(imm)`.
    Addi = 0x19,
    /// `rd = rs1 & sext(imm)`.
    Andi = 0x1a,
    /// `rd = rs1 | sext(imm)`.
    Ori = 0x1b,
    /// `rd = rs1 ^ sext(imm)`.
    Xori = 0x1c,
    /// `rd = rs1 << (imm & 63)`.
    Shli = 0x1d,
    /// `rd = rs1 >> (imm & 63)` (logical).
    Shri = 0x1e,
    /// `rd = rs1 * sext(imm)` (wrapping).
    Muli = 0x1f,

    /// `rd = mem64[rs1 + sext(imm)]`.
    Ld = 0x20,
    /// `mem64[rs1 + sext(imm)] = rs2`.
    St = 0x21,
    /// `rd = zext(mem8[rs1 + sext(imm)])`.
    Ld8 = 0x22,
    /// `mem8[rs1 + sext(imm)] = rs2 & 0xff`.
    St8 = 0x23,
    /// `sp -= 8; mem64[sp] = rs1`.
    Push = 0x24,
    /// `rd = mem64[sp]; sp += 8`.
    Pop = 0x25,

    /// Direct call: push `pc + 8` to the software stack **and** the hardware
    /// RAS, then `pc = imm as u32`.
    Call = 0x30,
    /// Indirect call through `rs1`; same stack/RAS behaviour as [`Opcode::Call`].
    CallR = 0x31,
    /// Return: pop target from the software stack; the hardware RAS provides
    /// the prediction that RnR-Safe checks for ROP alarms.
    Ret = 0x32,
    /// Direct jump: `pc = imm as u32`. No stack or RAS interaction.
    Jmp = 0x33,
    /// Indirect jump through `rs1` (the JOP attack vector of Table 1).
    JmpR = 0x34,

    /// Branch if `rs1 == rs2` to `imm as u32`.
    Beq = 0x38,
    /// Branch if `rs1 != rs2`.
    Bne = 0x39,
    /// Branch if `rs1 < rs2` (signed).
    Blt = 0x3a,
    /// Branch if `rs1 >= rs2` (signed).
    Bge = 0x3b,
    /// Branch if `rs1 < rs2` (unsigned).
    Bltu = 0x3c,
    /// Branch if `rs1 >= rs2` (unsigned).
    Bgeu = 0x3d,

    /// `rd = time-stamp counter` — non-deterministic; trapped and logged when
    /// the VMCS `rdtsc_exiting` control is set (recording mode).
    Rdtsc = 0x40,
    /// Port input: `rd = io[imm]`. Always exits to the hypervisor
    /// (hypervisor-mediated I/O, as assumed by the paper §2.1).
    In = 0x41,
    /// Port output: `io[imm] = rs1`. Always exits to the hypervisor.
    Out = 0x42,
    /// Paravirtual hypercall (`NoRecPV` baseline of Figure 5): `r1..r4` carry
    /// the request, the hypervisor services it in a single exit.
    Vmcall = 0x43,

    /// System call: pushes `pc + 8` and the current privilege mode onto the
    /// stack, enters kernel mode at the machine's syscall entry point with the
    /// syscall number in `r15`. **Does not touch the RAS** (like x86).
    Syscall = 0x50,
    /// Return from syscall: pops mode and return address. No RAS interaction.
    Sysret = 0x51,
    /// Return from interrupt: pops mode and return address pushed by the
    /// hardware interrupt entry sequence, re-enables interrupts.
    Iret = 0x52,
    /// Disable external interrupts.
    Cli = 0x53,
    /// Enable external interrupts.
    Sti = 0x54,
}

impl Opcode {
    /// Decodes an opcode byte.
    pub fn from_byte(b: u8) -> Result<Opcode, DecodeError> {
        use Opcode::*;
        Ok(match b {
            0x00 => Nop,
            0x01 => Hlt,
            0x02 => Mov,
            0x03 => MovImm,
            0x04 => MovHi,
            0x10 => Add,
            0x11 => Sub,
            0x12 => Mul,
            0x13 => Divu,
            0x14 => And,
            0x15 => Or,
            0x16 => Xor,
            0x17 => Shl,
            0x18 => Shr,
            0x19 => Addi,
            0x1a => Andi,
            0x1b => Ori,
            0x1c => Xori,
            0x1d => Shli,
            0x1e => Shri,
            0x1f => Muli,
            0x20 => Ld,
            0x21 => St,
            0x22 => Ld8,
            0x23 => St8,
            0x24 => Push,
            0x25 => Pop,
            0x30 => Call,
            0x31 => CallR,
            0x32 => Ret,
            0x33 => Jmp,
            0x34 => JmpR,
            0x38 => Beq,
            0x39 => Bne,
            0x3a => Blt,
            0x3b => Bge,
            0x3c => Bltu,
            0x3d => Bgeu,
            0x40 => Rdtsc,
            0x41 => In,
            0x42 => Out,
            0x43 => Vmcall,
            0x50 => Syscall,
            0x51 => Sysret,
            0x52 => Iret,
            0x53 => Cli,
            0x54 => Sti,
            other => return Err(DecodeError::InvalidOpcode(other)),
        })
    }

    /// The opcode byte used in the encoded form.
    pub fn to_byte(self) -> u8 {
        self as u8
    }

    /// True for instructions that transfer control (used by gadget analysis).
    pub fn is_control_flow(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Call | CallR | Ret | Jmp | JmpR | Beq | Bne | Blt | Bge | Bltu | Bgeu | Syscall | Sysret | Iret
        )
    }

    /// The mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Nop => "nop",
            Hlt => "hlt",
            Mov => "mov",
            MovImm => "movi",
            MovHi => "movhi",
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Divu => "divu",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            Addi => "addi",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Shli => "shli",
            Shri => "shri",
            Muli => "muli",
            Ld => "ld",
            St => "st",
            Ld8 => "ld8",
            St8 => "st8",
            Push => "push",
            Pop => "pop",
            Call => "call",
            CallR => "callr",
            Ret => "ret",
            Jmp => "jmp",
            JmpR => "jmpr",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            Rdtsc => "rdtsc",
            In => "in",
            Out => "out",
            Vmcall => "vmcall",
            Syscall => "syscall",
            Sysret => "sysret",
            Iret => "iret",
            Cli => "cli",
            Sti => "sti",
        }
    }
}

/// Error produced when decoding instruction bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte does not name an instruction.
    InvalidOpcode(u8),
    /// Fewer than [`INSN_BYTES`] bytes were available.
    Truncated,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::InvalidOpcode(b) => write!(f, "invalid opcode byte {b:#04x}"),
            DecodeError::Truncated => write!(f, "truncated instruction (need 8 bytes)"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A decoded instruction.
///
/// All instructions carry the full field set; fields unused by a given opcode
/// are zero. The encoded layout is:
///
/// ```text
/// byte 0    1     2     3     4..7
///      op   rd    rs1   rs2   imm (i32, little-endian)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Operation.
    pub op: Opcode,
    /// Destination register.
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// Second source register.
    pub rs2: Reg,
    /// Immediate operand (sign-extended where the opcode says so; branch and
    /// call targets are absolute addresses interpreted as `u32`).
    pub imm: i32,
}

impl Instruction {
    /// Builds an instruction with all fields explicit.
    pub fn new(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg, imm: i32) -> Instruction {
        Instruction { op, rd, rs1, rs2, imm }
    }

    /// Shorthand for instructions with no operands.
    pub fn bare(op: Opcode) -> Instruction {
        Instruction::new(op, Reg::R0, Reg::R0, Reg::R0, 0)
    }

    /// Encodes into the fixed 8-byte form.
    pub fn encode(&self) -> [u8; INSN_BYTES as usize] {
        let mut b = [0u8; INSN_BYTES as usize];
        b[0] = self.op.to_byte();
        b[1] = self.rd.into();
        b[2] = self.rs1.into();
        b[3] = self.rs2.into();
        b[4..8].copy_from_slice(&self.imm.to_le_bytes());
        b
    }

    /// Decodes from raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if fewer than 8 bytes are given and
    /// [`DecodeError::InvalidOpcode`] for an unknown opcode byte.
    pub fn decode(bytes: &[u8]) -> Result<Instruction, DecodeError> {
        if bytes.len() < INSN_BYTES as usize {
            return Err(DecodeError::Truncated);
        }
        let op = Opcode::from_byte(bytes[0])?;
        let imm = i32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        Ok(Instruction {
            op,
            rd: Reg::from_index(bytes[1]),
            rs1: Reg::from_index(bytes[2]),
            rs2: Reg::from_index(bytes[3]),
            imm,
        })
    }

    /// The absolute branch/call/jump target, for direct control transfers.
    pub fn target(&self) -> u64 {
        self.imm as u32 as u64
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::disasm(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_opcodes() -> Vec<Opcode> {
        (0u8..=0xff).filter_map(|b| Opcode::from_byte(b).ok()).collect()
    }

    #[test]
    fn opcode_bytes_round_trip() {
        for op in all_opcodes() {
            assert_eq!(Opcode::from_byte(op.to_byte()), Ok(op));
        }
    }

    #[test]
    fn there_are_47_opcodes() {
        assert_eq!(all_opcodes().len(), 47);
    }

    #[test]
    fn encode_decode_round_trip() {
        for op in all_opcodes() {
            let insn = Instruction::new(op, Reg::R3, Reg::R7, Reg::R14, -12345);
            let decoded = Instruction::decode(&insn.encode()).unwrap();
            assert_eq!(decoded, insn);
        }
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        let bytes = [0xee, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(Instruction::decode(&bytes), Err(DecodeError::InvalidOpcode(0xee)));
    }

    #[test]
    fn decode_rejects_short_input() {
        assert_eq!(Instruction::decode(&[0u8; 7]), Err(DecodeError::Truncated));
    }

    #[test]
    fn target_is_unsigned_32_bit() {
        let insn = Instruction::new(Opcode::Jmp, Reg::R0, Reg::R0, Reg::R0, -1);
        assert_eq!(insn.target(), u32::MAX as u64);
    }

    #[test]
    fn control_flow_classification() {
        assert!(Opcode::Ret.is_control_flow());
        assert!(Opcode::CallR.is_control_flow());
        assert!(Opcode::JmpR.is_control_flow());
        assert!(!Opcode::Add.is_control_flow());
        assert!(!Opcode::Rdtsc.is_control_flow());
    }
}
