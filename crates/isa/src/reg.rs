//! General-purpose register names.

use std::fmt;

/// A general-purpose register of the guest CPU.
///
/// The machine has 16 registers. By software convention:
///
/// * `R0` is the scratch/zero-ish register (not hardwired to zero),
/// * `R1`–`R5` carry syscall/function arguments and return values,
/// * `R10`–`R13` are callee-saved by the guest kernel ABI,
/// * [`Reg::SP`] (`R14`) is the stack pointer,
/// * `R15` is the assembler temporary used by macro-instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Reg {
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    /// The stack pointer register (`R14`).
    pub const SP: Reg = Reg::R14;

    /// Number of general-purpose registers.
    pub const COUNT: usize = 16;

    /// All registers in index order.
    pub const ALL: [Reg; Reg::COUNT] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Returns the register with the given hardware index.
    ///
    /// Indices are taken modulo 16, so any `u8` decodes to a valid register;
    /// this mirrors hardware decoders that simply use the low 4 bits.
    pub fn from_index(index: u8) -> Reg {
        Reg::ALL[(index & 0xf) as usize]
    }

    /// The hardware index of this register.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Reg::SP {
            write!(f, "sp")
        } else {
            write!(f, "r{}", self.index())
        }
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_index_round_trips() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index() as u8), r);
        }
    }

    #[test]
    fn from_index_masks_high_bits() {
        assert_eq!(Reg::from_index(0x13), Reg::R3);
        assert_eq!(Reg::from_index(0xff), Reg::R15);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::R3.to_string(), "r3");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::R14.to_string(), "sp");
    }

    #[test]
    fn sp_is_r14() {
        assert_eq!(Reg::SP, Reg::R14);
        assert_eq!(Reg::SP.index(), 14);
    }
}
