//! Textual disassembly, used by debug output and attack reports.

use crate::{Addr, Image, Instruction, Opcode};

/// Renders one instruction as assembly text.
///
/// ```
/// use rnr_isa::{disasm, Instruction, Opcode, Reg};
/// let insn = Instruction::new(Opcode::Addi, Reg::R1, Reg::R2, Reg::R0, -8);
/// assert_eq!(disasm(&insn), "addi r1, r2, -8");
/// ```
pub fn disasm(insn: &Instruction) -> String {
    use Opcode::*;
    let m = insn.op.mnemonic();
    match insn.op {
        Nop | Hlt | Ret | Sysret | Iret | Cli | Sti | Vmcall => m.to_string(),
        Mov => format!("{m} {}, {}", insn.rd, insn.rs1),
        MovImm | MovHi => format!("{m} {}, {}", insn.rd, insn.imm),
        Add | Sub | Mul | Divu | And | Or | Xor | Shl | Shr => {
            format!("{m} {}, {}, {}", insn.rd, insn.rs1, insn.rs2)
        }
        Addi | Andi | Ori | Xori | Shli | Shri | Muli => {
            format!("{m} {}, {}, {}", insn.rd, insn.rs1, insn.imm)
        }
        Ld | Ld8 => format!("{m} {}, [{}{:+}]", insn.rd, insn.rs1, insn.imm),
        St | St8 => format!("{m} [{}{:+}], {}", insn.rs1, insn.imm, insn.rs2),
        Push => format!("{m} {}", insn.rs1),
        Pop => format!("{m} {}", insn.rd),
        Call | Jmp => format!("{m} {:#x}", insn.target()),
        CallR | JmpR => format!("{m} {}", insn.rs1),
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            format!("{m} {}, {}, {:#x}", insn.rs1, insn.rs2, insn.target())
        }
        Rdtsc => format!("{m} {}", insn.rd),
        In => format!("{m} {}, {:#x}", insn.rd, insn.imm as u16),
        Out => format!("{m} {:#x}, {}", insn.imm as u16, insn.rs1),
        Syscall => format!("{m} {}", insn.imm as u32),
    }
}

/// Disassembles `[start, end)` within `image`, one line per instruction,
/// annotated with addresses and nearest symbols.
///
/// Slots that do not decode are rendered as `.byte` lines, so the listing is
/// total — important when dumping attacker-corrupted memory.
pub fn disasm_range(image: &Image, start: Addr, end: Addr) -> String {
    let mut out = String::new();
    let mut addr = start;
    while addr < end {
        if let Some((sym, sym_addr)) = image.symbolize(addr) {
            if sym_addr == addr {
                out.push_str(&format!("{sym}:\n"));
            }
        }
        match image.decode_at(addr) {
            Ok(insn) => out.push_str(&format!("  {addr:#8x}: {}\n", disasm(&insn))),
            Err(_) => out.push_str(&format!("  {addr:#8x}: .byte ??\n")),
        }
        addr += crate::INSN_BYTES;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assembler, Reg};

    #[test]
    fn mnemonic_forms() {
        use crate::Opcode::*;
        let cases = [
            (Instruction::bare(Ret), "ret"),
            (Instruction::new(Mov, Reg::R1, Reg::R2, Reg::R0, 0), "mov r1, r2"),
            (Instruction::new(Ld, Reg::R1, Reg::SP, Reg::R0, 16), "ld r1, [sp+16]"),
            (Instruction::new(St, Reg::R0, Reg::R3, Reg::R4, -8), "st [r3-8], r4"),
            (Instruction::new(Call, Reg::R0, Reg::R0, Reg::R0, 0x100), "call 0x100"),
            (Instruction::new(Beq, Reg::R0, Reg::R1, Reg::R2, 0x40), "beq r1, r2, 0x40"),
            (Instruction::new(Syscall, Reg::R0, Reg::R0, Reg::R0, 3), "syscall 3"),
            (Instruction::new(In, Reg::R5, Reg::R0, Reg::R0, 0x10), "in r5, 0x10"),
        ];
        for (insn, expect) in cases {
            assert_eq!(disasm(&insn), expect);
        }
    }

    #[test]
    fn range_listing_includes_symbols() {
        let mut asm = Assembler::new(0x100);
        asm.label("f");
        asm.nop();
        asm.ret();
        let img = asm.assemble().unwrap();
        let text = disasm_range(&img, 0x100, 0x110);
        assert!(text.contains("f:"));
        assert!(text.contains("nop"));
        assert!(text.contains("ret"));
    }

    #[test]
    fn display_uses_disasm() {
        let insn = Instruction::bare(crate::Opcode::Hlt);
        assert_eq!(insn.to_string(), "hlt");
    }
}
