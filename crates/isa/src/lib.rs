//! # rnr-isa: the guest instruction-set architecture
//!
//! This crate defines the instruction set executed by the simulated guest
//! machine of the RnR-Safe reproduction (HPCA 2018, "Record-Replay
//! Architecture as a General Security Framework").
//!
//! The ISA is a small 64-bit RISC-like machine language with a **fixed 8-byte
//! instruction encoding**. A fixed encoding keeps the gadget scan of the
//! paper's Figure 10 faithful: a ROP attacker (and our `rnr-attacks` crate)
//! scans the binary image for `ret` opcodes and decodes the instructions that
//! precede them.
//!
//! Key properties mirrored from real hardware that the paper relies on:
//!
//! * [`Opcode::Call`]/[`Opcode::CallR`] push the return address both onto the
//!   **software stack** (in guest memory, attackable) and onto the hardware
//!   **Return Address Stack** (modeled in `rnr-ras`, not software visible).
//! * [`Opcode::Ret`] pops the return target from the software stack and is
//!   where RAS mispredictions — the paper's ROP alarm trigger — are detected.
//! * [`Opcode::Syscall`]/[`Opcode::Sysret`] and interrupt entry/[`Opcode::Iret`]
//!   do **not** touch the RAS, exactly like x86 `syscall`/`iret`.
//!
//! The crate provides:
//!
//! * [`Instruction`] and [`Opcode`]: decoded instruction forms with
//!   [`Instruction::encode`]/[`Instruction::decode`].
//! * [`Assembler`]: a programmatic assembler with labels, fixups and data
//!   directives, producing an [`Image`] with a symbol table.
//! * [`disasm`]: a disassembler used by debugging aids and by the attack
//!   characterization reports of the alarm replayer.
//!
//! ## Example
//!
//! ```
//! use rnr_isa::{Assembler, Reg};
//!
//! # fn main() -> Result<(), rnr_isa::AsmError> {
//! let mut asm = Assembler::new(0x1000);
//! asm.label("start");
//! asm.movi(Reg::R1, 41);
//! asm.addi(Reg::R1, Reg::R1, 1);
//! asm.call("helper");
//! asm.hlt();
//! asm.label("helper");
//! asm.ret();
//! let image = asm.assemble()?;
//! assert_eq!(image.symbol("helper"), Some(0x1000 + 4 * 8));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod disasm;
mod image;
mod insn;
mod reg;

pub use asm::{AsmError, Assembler};
pub use disasm::{disasm, disasm_range};
pub use image::Image;
pub use insn::{DecodeError, Instruction, Opcode, INSN_BYTES};
pub use reg::Reg;

/// A guest byte address.
pub type Addr = u64;

/// A 64-bit machine word.
pub type Word = u64;
