//! # rnr-workloads: the five evaluation workloads (Table 3)
//!
//! Synthetic guest programs whose *event mixes* match the paper's
//! characterization of its benchmarks (Figures 5(b), 7(b), 8, 9):
//!
//! | Paper benchmark | Here | Dominant events |
//! |---|---|---|
//! | `apache -n100000 -c20` | [`Workload::Apache`] | network receive (logged payloads), per-packet NIC MMIO, deep recursive driver copies under bursts, timer reads |
//! | `fileio` (SysBench) | [`Workload::Fileio`] | disk PIO + DMA completion interrupts, very frequent rdtsc (per-op latency timing) |
//! | `make` (kernel build) | [`Workload::Make`] | thread spawn/exit (ID reuse), compute, occasional `setjmp`/`longjmp` error recovery |
//! | `mysql` (SysBench OLTP) | [`Workload::Mysql`] | rdtsc-dominated (transaction timing), pointer-chasing lookups, rare disk reads |
//! | `radiosity` (SPLASH-2) | [`Workload::Radiosity`] | pure user-mode compute + recursion, minimal kernel activity |
//!
//! [`Workload::ADVERSARIAL`] adds three stress extensions beyond the
//! paper's set: [`Workload::Jit`] (self-modifying hot loops — worst case
//! for host-side predecode/trace caches), [`Workload::HeapServer`]
//! (kernel-heap allocator churn tripping every VRT false-positive class,
//! DESIGN.md §15), and [`Workload::Longjmp`] (`setjmp`/`longjmp` storms
//! over large frames — worst case for returned-window tracking).
//! [`WorkloadParams::interrupt_flood`] turns any of them into an
//! asynchronous-interrupt flood.
//!
//! Each workload yields a [`VmSpec`](rnr_hypervisor::VmSpec) consumable by the recorder and the
//! replayers. [`Workload::vulnerable_server`] is the apache variant whose
//! worker passes raw network input to the kernel's vulnerable `SYS_PROCMSG`
//! path — the attack surface mounted in §6 (see `rnr-attacks`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod programs;

pub use programs::{Workload, WorkloadParams};
