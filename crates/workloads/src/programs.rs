//! The five workload programs and their `VmSpec` builders.

use rnr_guest::{layout, runtime, KernelBuilder};
use rnr_hypervisor::{NetProfile, VmSpec};
use rnr_isa::{Assembler, Image, Instruction, Opcode, Reg};

use Reg::{R1, R2, R3, R5, R6};

/// Guest scratch addresses used by the workload programs.
mod bufs {
    /// Per-thread network receive buffers: `RX_BASE + tid * 0x1000`.
    pub const RX_BASE: u64 = 0x34_0000;
    /// fileio's disk I/O buffer.
    pub const FILEIO: u64 = 0x36_0000;
    /// mysql's occasional disk read buffer.
    pub const MYSQL_DISK: u64 = 0x36_8000;
    /// Per-thread short message buffers: `MSG_BASE + tid * 0x100`.
    pub const MSG_BASE: u64 = 0x37_0000;
    /// radiosity's page-dirtying region.
    pub const TOUCH: u64 = 0x38_0000;
    /// Per-thread setjmp buffers: `JMPBUF + tid * 0x40`.
    pub const JMPBUF: u64 = 0x39_0000;
    /// Per-thread make-job disk buffers: `MAKE_DISK + tid * 0x800`.
    pub const MAKE_DISK: u64 = 0x3A_0000;
    /// jit's generated-code buffer (written, then executed, then patched).
    pub const JIT_CODE: u64 = 0x3B_0000;
    /// heap-server's table of live kernel-heap allocation bases.
    pub const HEAP_PTRS: u64 = 0x3C_0000;
}

/// Tunable workload parameters (Table 3 analogue).
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    /// Timer interrupt period (virtual cycles).
    pub timer_period: u64,
    /// Mean packet interarrival for network workloads (virtual cycles).
    pub net_mean: u64,
    /// Benign packet size range.
    pub packet_sizes: (usize, usize),
    /// Every n-th packet is MTU-sized (driver-recursion bursts).
    pub large_every: u64,
    /// Number of apache worker threads.
    pub workers: usize,
    /// Compute-loop scale factor.
    pub compute: u64,
}

impl WorkloadParams {
    /// Parameters for attack demonstrations: moderate benign traffic, so
    /// the crafted packet is neither dropped by a saturated receive queue
    /// nor buried in unrelated burst-recursion alarms.
    pub fn attack_demo() -> WorkloadParams {
        WorkloadParams { net_mean: 30_000, large_every: 1_000, ..WorkloadParams::default() }
    }

    /// Parameters for the interrupt-flood variant: a timer period an order
    /// of magnitude below the default floods the guest with asynchronous
    /// interrupts — maximal context-switch pressure on the detectors'
    /// frame tracking and on replay timing (every delivery is a logged
    /// asynchronous event that must land on the exact instruction).
    pub fn interrupt_flood() -> WorkloadParams {
        WorkloadParams { timer_period: 15_000, ..WorkloadParams::default() }
    }
}

impl Default for WorkloadParams {
    fn default() -> WorkloadParams {
        WorkloadParams {
            timer_period: 150_000,
            net_mean: 10_000,
            packet_sizes: (256, 1024),
            large_every: 100,
            workers: 3,
            compute: 1,
        }
    }
}

/// The five benchmarks of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Web server: network-dominated.
    Apache,
    /// SysBench file I/O: disk + rdtsc dominated.
    Fileio,
    /// Kernel build: fork/exit churn + compute.
    Make,
    /// SysBench OLTP: rdtsc dominated, pointer chasing.
    Mysql,
    /// SPLASH-2 radiosity: pure user-mode compute.
    Radiosity,
    /// Adversarial JIT-style self-modifying workload (not in the paper):
    /// the guest synthesizes a hot loop into a data buffer, executes it,
    /// and patches it on every pass — the worst case for host-side
    /// predecode/block/trace caches, which must invalidate on each write.
    Jit,
    /// Adversarial allocator-churn workload (not in the paper): batches of
    /// kernel-heap allocations past the VRT table capacity plus edge
    /// writes and big-frame reuse, deliberately tripping every VRT
    /// false-positive class (coarse bounds, capacity eviction, stale
    /// frames) while staying completely benign.
    HeapServer,
    /// Adversarial `setjmp`/`longjmp` storm (not in the paper): deep call
    /// chains with large frames alternately unwound normally (filing VRT
    /// returned-frame windows) and abandoned via `longjmp` (misaligning
    /// the frame stack) — the worst case for returned-window tracking and
    /// a steady source of benign RAS target mismatches.
    Longjmp,
}

impl Workload {
    /// All workloads, in the paper's figure order.
    pub const ALL: [Workload; 5] =
        [Workload::Apache, Workload::Fileio, Workload::Make, Workload::Mysql, Workload::Radiosity];

    /// The paper's five plus the adversarial extensions (self-modifying
    /// JIT, allocator churn, longjmp storms) — the set equivalence and
    /// fault matrices sweep. [`Workload::ALL`] keeps the paper's figure
    /// order for tables and benchmarks.
    pub const ADVERSARIAL: [Workload; 8] = [
        Workload::Apache,
        Workload::Fileio,
        Workload::Make,
        Workload::Mysql,
        Workload::Radiosity,
        Workload::Jit,
        Workload::HeapServer,
        Workload::Longjmp,
    ];

    /// Figure/table label.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Apache => "apache",
            Workload::Fileio => "fileio",
            Workload::Make => "make",
            Workload::Mysql => "mysql",
            Workload::Radiosity => "radiosity",
            Workload::Jit => "jit",
            Workload::HeapServer => "heapserver",
            Workload::Longjmp => "longjmp",
        }
    }

    /// The paper's benchmark parameters (Table 3), for documentation output.
    pub fn paper_parameters(self) -> &'static str {
        match self {
            Workload::Apache => "-n100000 -c20",
            Workload::Fileio => {
                "--file-total-size=6G --file-test-mode=rndrw --file-extra-flags=direct --max-requests=10000"
            }
            Workload::Make => "linux-4.0 config with all-no",
            Workload::Mysql => {
                "--test=oltp --oltp-test-mode=simple --max-requests=500000 --table-size=4000000"
            }
            Workload::Radiosity => "-p1 -bf 0.005 -batch -largeroom",
            Workload::Jit => "self-modifying hot loops (adversarial extension; not in the paper)",
            Workload::HeapServer => "kernel-heap allocator churn (adversarial extension; not in the paper)",
            Workload::Longjmp => "setjmp/longjmp storms (adversarial extension; not in the paper)",
        }
    }

    /// Builds the VM spec with default parameters.
    pub fn spec(self, pv: bool) -> VmSpec {
        self.spec_with(pv, &WorkloadParams::default())
    }

    /// Builds the VM spec with explicit parameters.
    pub fn spec_with(self, pv: bool, params: &WorkloadParams) -> VmSpec {
        build_spec(self, pv, params, false)
    }

    /// The **vulnerable server** variant of apache: workers pass raw packet
    /// contents to the kernel's unbounded-copy `SYS_PROCMSG` (the §6 attack
    /// surface). Benign traffic is still safe (packets carry an early zero
    /// word); a crafted injection exploits it.
    pub fn vulnerable_server(params: &WorkloadParams) -> VmSpec {
        build_spec(Workload::Apache, false, params, true)
    }
}

fn build_spec(kind: Workload, pv: bool, params: &WorkloadParams, vulnerable: bool) -> VmSpec {
    let kernel = KernelBuilder::new().paravirtual(pv).build();
    let image = build_user_image(kind, params, vulnerable);
    let entry = |sym: &str| image.require_symbol(sym);

    let mut spec =
        VmSpec::new(kernel, if vulnerable { "apache-vuln".to_string() } else { kind.label().to_string() });
    spec.timer_period = params.timer_period;
    spec.extra_images.push(image.clone());

    match kind {
        Workload::Apache => {
            for _ in 0..params.workers {
                spec.boot.user_thread(entry("apache_main"));
            }
            spec.net = NetProfile {
                mean_interarrival: Some(params.net_mean),
                size_range: params.packet_sizes,
                large_every: Some(params.large_every),
                injections: vec![],
            };
        }
        Workload::Fileio => {
            spec.boot.user_thread(entry("fileio_main"));
        }
        Workload::Make => {
            spec.boot.user_thread(entry("make_main"));
        }
        Workload::Mysql => {
            spec.boot.user_thread(entry("mysql_main"));
        }
        Workload::Radiosity => {
            spec.boot.user_thread(entry("radiosity_main"));
        }
        Workload::Jit => {
            spec.boot.user_thread(entry("jit_main"));
        }
        Workload::HeapServer => {
            spec.boot.user_thread(entry("heap_main"));
        }
        Workload::Longjmp => {
            spec.boot.user_thread(entry("longjmp_main"));
        }
    }
    spec.boot.set_param(0, params.compute);
    spec
}

/// Assembles the user-mode image for one workload.
fn build_user_image(kind: Workload, params: &WorkloadParams, vulnerable: bool) -> Image {
    let mut a = Assembler::new(layout::USER_BASE);
    match kind {
        Workload::Apache => emit_apache(&mut a, vulnerable),
        Workload::Fileio => emit_fileio(&mut a),
        Workload::Make => emit_make(&mut a, params),
        Workload::Mysql => emit_mysql(&mut a),
        Workload::Radiosity => emit_radiosity(&mut a),
        Workload::Jit => emit_jit(&mut a),
        Workload::HeapServer => emit_heapserver(&mut a),
        Workload::Longjmp => emit_longjmp(&mut a),
    }
    runtime::emit_runtime(&mut a);
    a.assemble().expect("workload assembly must succeed")
}

fn emit_apache(a: &mut Assembler, vulnerable: bool) {
    a.label("apache_main");
    // r10 = per-thread rx buffer, r11 = per-thread message buffer.
    a.call("u_getpid");
    a.muli(Reg::R10, R1, 0x1000);
    a.addi(Reg::R10, Reg::R10, bufs::RX_BASE as i32);
    a.call("u_getpid");
    a.muli(Reg::R11, R1, 0x100);
    a.addi(Reg::R11, Reg::R11, bufs::MSG_BASE as i32);
    // Prepare the benign log message: 24 non-zero bytes + terminator word.
    a.mov(R1, Reg::R11);
    a.movi(R2, 24);
    a.movi(R3, 7);
    a.call("u_fill");
    a.movi(R5, 0);
    a.st(Reg::R11, 24, R5);
    a.label("ap_loop");
    a.mov(R1, Reg::R10);
    a.call("u_netrecv"); // blocks for a request
    a.mov(Reg::R12, R1); // length
    a.mov(R1, Reg::R10);
    a.mov(R2, Reg::R12);
    a.call("u_parse");
    a.movi(R1, 200);
    a.call("u_compute");
    // Log the request: the vulnerable server passes RAW packet bytes to the
    // kernel's unbounded copy; the hardened one passes its own short message.
    if vulnerable {
        a.mov(R1, Reg::R10);
    } else {
        a.mov(R1, Reg::R11);
    }
    a.call("u_procmsg");
    a.mov(R1, Reg::R10);
    a.movi(R2, 128);
    a.call("u_nettx"); // response
    a.call("u_gettime");
    a.call("u_gettime");
    a.call("u_op_done"); // one request served
    a.jmp("ap_loop");
}

fn emit_fileio(a: &mut Assembler) {
    a.label("fileio_main");
    a.movi(Reg::R10, bufs::FILEIO as i32);
    a.movi(Reg::R13, 0); // op counter
    a.label("fi_loop");
    a.call("u_rand");
    a.andi(R1, R1, 8191); // random sector
    a.mov(Reg::R11, R1);
    a.mov(R2, Reg::R10);
    a.movi(R3, 4);
    a.call("u_read");
    a.mov(R1, Reg::R10);
    a.movi(R2, 2048);
    a.call("u_checksum");
    a.call("u_gettime"); // per-op latency timing, SysBench-style
    a.call("u_gettime");
    a.andi(R5, Reg::R13, 3);
    a.movi(R6, 0);
    a.bne(R5, R6, "fi_nowrite");
    // rndrw: update the block before writing it back.
    a.ld(R5, Reg::R10, 0);
    a.addi(R5, R5, 1);
    a.st(Reg::R10, 0, R5);
    a.mov(R1, Reg::R11);
    a.mov(R2, Reg::R10);
    a.movi(R3, 4);
    a.call("u_write");
    a.label("fi_nowrite");
    a.call("u_gettime");
    a.call("u_gettime");
    a.call("u_op_done"); // one file operation done
    a.addi(Reg::R13, Reg::R13, 1);
    a.jmp("fi_loop");
}

fn emit_make(a: &mut Assembler, params: &WorkloadParams) {
    // Coordinator: keep spawning compile jobs; jobs exit, IDs get reused.
    a.label("make_main");
    a.label("mk_loop");
    a.lea(R1, "make_job");
    a.movi(R2, 0); // user thread
    a.call("u_spawn");
    a.movi(R5, -1);
    a.bne(R1, R5, "mk_loop"); // keep filling slots
    a.call("u_yield");
    a.movi(R1, 150);
    a.call("u_compute");
    a.jmp("mk_loop");

    // One compile job: setjmp error scaffold, parse + compute + one header
    // read, occasional simulated failure via longjmp, then exit.
    a.label("make_job");
    a.call("u_getpid");
    a.muli(Reg::R10, R1, 0x40);
    a.addi(Reg::R10, Reg::R10, bufs::JMPBUF as i32);
    a.call("u_getpid");
    a.muli(Reg::R11, R1, 0x800);
    a.addi(Reg::R11, Reg::R11, bufs::MAKE_DISK as i32);
    a.mov(R1, Reg::R10);
    a.call("u_setjmp");
    a.movi(R5, 0);
    a.bne(R1, R5, "mk_recovered");
    a.movi(R1, 18);
    a.call("u_recurse");
    a.movi(R1, 600 * params.compute.max(1) as i32);
    a.call("u_compute");
    a.call("u_rand");
    a.andi(R1, R1, 4095);
    a.mov(R2, Reg::R11);
    a.movi(R3, 1);
    a.call("u_read"); // pull a "header" from disk
    a.call("u_rand");
    a.andi(R1, R1, 7);
    a.movi(R5, 0);
    a.bne(R1, R5, "mk_done");
    // Simulated compile error: unwind to the setjmp (imperfect nesting).
    a.mov(R1, Reg::R10);
    a.movi(R2, 1);
    a.call("u_longjmp");
    a.label("mk_recovered");
    a.movi(R1, 100);
    a.call("u_compute");
    a.label("mk_done");
    a.call("u_op_done"); // one compile job finished
    a.call("u_exit");
}

fn emit_mysql(a: &mut Assembler) {
    a.label("mysql_main");
    a.movi(R1, 4000);
    a.call("u_btree_build");
    a.movi(Reg::R13, 0);
    a.label("my_loop");
    a.call("u_gettime"); // transaction-start timestamp
    a.movi(R1, 600);
    a.call("u_compute"); // query planning / row processing
    a.call("u_rand");
    // key = (rand % 4000) * golden-ratio scramble, matching build keys.
    a.movi(R5, 4000);
    a.divu(R6, R1, R5);
    a.muli(R6, R6, 4000);
    a.sub(R1, R1, R6);
    a.muli(R1, R1, 0x9E3779B1u32 as i32);
    a.movi(R5, -1);
    a.shri(R5, R5, 32);
    a.and(R1, R1, R5);
    a.call("u_btree_lookup");
    a.call("u_gettime");
    a.andi(R5, Reg::R13, 15);
    a.movi(R6, 0);
    a.bne(R5, R6, "my_nodisk");
    a.call("u_rand");
    a.andi(R1, R1, 8191);
    a.movi(R2, bufs::MYSQL_DISK as i32);
    a.movi(R3, 1);
    a.call("u_read"); // cold row: table cache miss
    a.label("my_nodisk");
    a.call("u_gettime"); // transaction-end timestamp
    a.call("u_op_done"); // one transaction committed
    a.addi(Reg::R13, Reg::R13, 1);
    a.jmp("my_loop");
}

fn emit_radiosity(a: &mut Assembler) {
    a.label("radiosity_main");
    a.movi(Reg::R13, 0);
    a.label("rad_loop");
    a.movi(R1, 22);
    a.call("u_recurse");
    a.movi(R1, 1500);
    a.call("u_compute");
    a.andi(R5, Reg::R13, 7);
    a.movi(R6, 0);
    a.bne(R5, R6, "rad_skip");
    a.movi(R1, bufs::TOUCH as i32);
    a.movi(R2, 0x1_0000);
    a.movi(R3, 256);
    a.call("u_memtouch"); // scene updates dirty pages
    a.label("rad_skip");
    a.andi(R5, Reg::R13, 31);
    a.movi(R6, 0);
    a.bne(R5, R6, "rad_nt");
    a.call("u_gettime");
    a.label("rad_nt");
    a.call("u_op_done"); // one scene iteration
    a.addi(Reg::R13, Reg::R13, 1);
    a.jmp("rad_loop");
}

fn emit_jit(a: &mut Assembler) {
    // The guest "compiles" this loop into `bufs::JIT_CODE` and calls it:
    //
    //   gen+0x00:  addi r3, r3, <imm>   ; patched on every pass
    //   gen+0x08:  xor  r5, r3, r2
    //   gen+0x10:  addi r2, r2, -1
    //   gen+0x18:  bne  r2, r4, gen     ; absolute branch back to the head
    //   gen+0x20:  ret
    //
    // Each pass rewrites the first instruction's immediate in place, so the
    // host's predecoded blocks and superblock traces over the generated
    // page are invalidated and rebuilt continuously — a JIT recompiling
    // its hot loop, the adversarial case for trace caching.
    let gen = bufs::JIT_CODE;
    let enc = |op, rd, rs1, rs2, imm| u64::from_le_bytes(Instruction::new(op, rd, rs1, rs2, imm).encode());
    let body: [u64; 5] = [
        enc(Opcode::Addi, R3, R3, Reg::R0, 0),
        enc(Opcode::Xor, R5, R3, R2, 0),
        enc(Opcode::Addi, R2, R2, Reg::R0, -1),
        enc(Opcode::Bne, Reg::R0, R2, Reg::R4, gen as i32),
        enc(Opcode::Ret, Reg::R0, Reg::R0, Reg::R0, 0),
    ];

    a.label("jit_main");
    // Emit the generated function once.
    a.movi64(Reg::R10, gen);
    for (i, word) in body.iter().enumerate() {
        a.movi64(R5, *word);
        a.st(Reg::R10, 8 * i as i32, R5);
    }
    a.movi(Reg::R13, 0); // pass counter
    a.label("jit_loop");
    // Recompile: patch the first instruction's immediate to 1 + (pass & 63)
    // (the immediate lives in the encoding's top four bytes).
    a.movi64(R5, body[0]);
    a.andi(R6, Reg::R13, 63);
    a.addi(R6, R6, 1);
    a.shli(R6, R6, 32);
    a.or(R5, R5, R6);
    a.st(Reg::R10, 0, R5);
    // Run the generated loop for 40 iterations.
    a.movi(R2, 40);
    a.movi(Reg::R4, 0);
    a.callr(Reg::R10);
    a.movi(R1, 60);
    a.call("u_compute");
    a.call("u_op_done"); // one recompile+run pass
    a.addi(Reg::R13, Reg::R13, 1);
    a.jmp("jit_loop");
}

fn emit_heapserver(a: &mut Assembler) {
    const SP: Reg = Reg::SP;
    // Benign allocator churn tuned to trip every VRT false-positive class
    // (DESIGN.md §15): batches two past the table capacity force FIFO
    // eviction of live regions, pokes at jittered bases land in uncovered
    // partial head granules, and paired big-frame calls reuse a returned
    // window. Every alarm this program raises is a false positive.
    a.label("heap_main");
    a.movi(Reg::R13, 0); // iteration counter
    a.label("hp_loop");
    // Allocate a batch of 10 (VRT capacity is 8): the two oldest batch
    // entries are FIFO-evicted from the hardware table while still live.
    a.movi(Reg::R10, bufs::HEAP_PTRS as i32);
    a.movi(Reg::R11, 0);
    a.label("hp_alloc");
    a.movi(R5, 10);
    a.bgeu(Reg::R11, R5, "hp_allocd");
    a.muli(R1, Reg::R11, 96);
    a.addi(R1, R1, 200); // sizes 200..1064: varied partial tail granules
    a.call("u_alloc");
    a.muli(R5, Reg::R11, 8);
    a.add(R5, R5, Reg::R10);
    a.st(R5, 0, R1);
    a.addi(Reg::R11, Reg::R11, 1);
    a.jmp("hp_alloc");
    a.label("hp_allocd");
    // Interior write into the youngest region: granule-covered, quiet.
    a.ld(R5, Reg::R10, 72);
    a.st(R5, 128, R5);
    // Every 8th iteration: poke the oldest (evicted-but-live) region's
    // interior and the youngest region's jittered base — one EvictedRegion
    // and one CoarseBounds false positive.
    a.andi(R5, Reg::R13, 7);
    a.movi(R6, 0);
    a.bne(R5, R6, "hp_noedge");
    a.ld(R5, Reg::R10, 0);
    a.st(R5, 128, R5);
    a.ld(R5, Reg::R10, 72);
    a.st(R5, 0, R5);
    a.label("hp_noedge");
    // Every 8th iteration (offset 4): a pair of big-frame calls — the
    // first files its dead window into the ring, the second's locals land
    // inside it (ordinary frame reuse → StaleFrame false positive).
    a.andi(R5, Reg::R13, 7);
    a.movi(R6, 4);
    a.bne(R5, R6, "hp_noframe");
    a.call("hs_bigframe");
    a.call("hs_bigframe");
    a.label("hp_noframe");
    // Free the whole batch (retires of evicted entries are no-ops).
    a.movi(Reg::R11, 0);
    a.label("hp_free");
    a.movi(R5, 10);
    a.bgeu(Reg::R11, R5, "hp_freed");
    a.muli(R5, Reg::R11, 8);
    a.add(R5, R5, Reg::R10);
    a.ld(R1, R5, 0);
    a.call("u_free");
    a.addi(Reg::R11, Reg::R11, 1);
    a.jmp("hp_free");
    a.label("hp_freed");
    a.movi(R1, 800);
    a.call("u_compute");
    a.call("u_op_done"); // one churn round
    a.addi(Reg::R13, Reg::R13, 1);
    a.jmp("hp_loop");

    // hs_bigframe: a 384-byte stack frame written end to end — past
    // min_frame, so its window enters the ring when it returns.
    a.label("hs_bigframe");
    a.addi(SP, SP, -384);
    a.movi(R5, 0x42);
    a.st(SP, 0, R5);
    a.st(SP, 184, R5);
    a.st(SP, 376, R5);
    a.movi(R1, 60);
    a.call("u_compute");
    a.addi(SP, SP, 384);
    a.ret();
}

fn emit_longjmp(a: &mut Assembler) {
    const SP: Reg = Reg::SP;
    // setjmp/longjmp storm over deep chains of 448-byte frames. Every 16th
    // iteration the chain unwinds normally, filing each frame's window
    // into the VRT ring; the next iteration's chain reuses the same stack
    // and abandons its frames via longjmp from the bottom — stores land in
    // the filed windows (StaleFrame false positives) and the longjmp's
    // final ret is a guaranteed benign RAS target mismatch (§4.5).
    a.label("longjmp_main");
    a.call("u_getpid");
    a.muli(Reg::R10, R1, 0x40);
    a.addi(Reg::R10, Reg::R10, bufs::JMPBUF as i32);
    a.movi(Reg::R13, 0); // iteration counter
    a.label("lj_loop");
    a.mov(R1, Reg::R10);
    a.call("u_setjmp");
    a.movi(R5, 0);
    a.bne(R1, R5, "lj_recovered");
    a.andi(R5, Reg::R13, 15);
    a.movi(R6, 0);
    a.beq(R5, R6, "lj_file");
    a.movi(R6, 1);
    a.beq(R5, R6, "lj_storm");
    a.jmp("lj_quiet");
    a.label("lj_file");
    a.movi(Reg::R11, 0); // unwind normally: file the frame windows
    a.movi(R1, 2);
    a.call("lj_deep");
    a.jmp("lj_quiet");
    a.label("lj_storm");
    a.movi(Reg::R11, 1); // abandon the chain via longjmp from depth 0
    a.movi(R1, 2);
    a.call("lj_deep"); // never returns here: depth 0 longjmps out
    a.label("lj_recovered");
    a.movi(R1, 150);
    a.call("u_compute"); // "error recovery" work
    a.label("lj_quiet");
    a.movi(R1, 900);
    a.call("u_compute");
    a.call("u_op_done"); // one iteration survived
    a.addi(Reg::R13, Reg::R13, 1);
    a.jmp("lj_loop");

    // lj_deep(r1 = depth; r11 = unwind-via-longjmp flag): recursive chain
    // of 448-byte frames, each written at both ends and the middle.
    a.label("lj_deep");
    a.addi(SP, SP, -448);
    a.movi(R5, 0x5A);
    a.st(SP, 0, R5);
    a.st(SP, 216, R5);
    a.st(SP, 440, R5);
    a.movi(R5, 0);
    a.bne(R1, R5, "lj_deeper");
    a.bne(Reg::R11, R5, "lj_unwind");
    a.addi(SP, SP, 448);
    a.ret();
    a.label("lj_deeper");
    a.addi(R1, R1, -1);
    a.call("lj_deep");
    a.addi(SP, SP, 448);
    a.ret();
    a.label("lj_unwind");
    a.mov(R1, Reg::R10);
    a.movi(R2, 1);
    a.call("u_longjmp"); // never returns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_build() {
        for w in Workload::ADVERSARIAL {
            let spec = w.spec(false);
            assert!(!spec.boot.entries().is_empty(), "{}", w.label());
            assert!(!spec.kernel.is_paravirtual());
            let pv = w.spec(true);
            assert!(pv.kernel.is_paravirtual());
        }
    }

    #[test]
    fn apache_has_workers_and_traffic() {
        let spec = Workload::Apache.spec(false);
        assert_eq!(spec.boot.entries().len(), 3);
        assert!(spec.net.has_traffic());
        let quiet = Workload::Radiosity.spec(false);
        assert!(!quiet.net.has_traffic());
        assert_eq!(quiet.boot.entries().len(), 1);
    }

    #[test]
    fn vulnerable_server_differs_from_benign() {
        let benign = Workload::Apache.spec(false);
        let vuln = Workload::vulnerable_server(&WorkloadParams::default());
        assert_eq!(vuln.name, "apache-vuln");
        // The images differ exactly at the procmsg argument selection.
        assert_ne!(benign.extra_images[0].bytes(), vuln.extra_images[0].bytes());
        assert_eq!(benign.extra_images[0].len(), vuln.extra_images[0].len());
    }

    #[test]
    fn vrt_workloads_join_the_adversarial_set() {
        assert!(Workload::ADVERSARIAL.contains(&Workload::HeapServer));
        assert!(Workload::ADVERSARIAL.contains(&Workload::Longjmp));
        for w in [Workload::HeapServer, Workload::Longjmp] {
            let spec = w.spec(false);
            assert_eq!(spec.boot.entries().len(), 1, "{}", w.label());
            assert!(!spec.net.has_traffic(), "{}", w.label());
        }
        let flood = WorkloadParams::interrupt_flood();
        assert!(flood.timer_period * 10 == WorkloadParams::default().timer_period);
        let spec = Workload::HeapServer.spec_with(false, &flood);
        assert_eq!(spec.timer_period, flood.timer_period);
    }

    #[test]
    fn labels_match_paper_order() {
        let labels: Vec<_> = Workload::ALL.iter().map(|w| w.label()).collect();
        assert_eq!(labels, ["apache", "fileio", "make", "mysql", "radiosity"]);
        for w in Workload::ALL {
            assert!(!w.paper_parameters().is_empty());
        }
    }
}
