//! End-to-end smoke tests: boot the guest kernel and record workloads.

use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_workloads::Workload;

fn record(w: Workload, mode: RecordMode, insns: u64) -> rnr_hypervisor::RecordOutcome {
    let spec = w.spec(mode.is_pv());
    let config = RecordConfig::new(mode, 42, insns);
    Recorder::new(&spec, config).expect("mode matches kernel").run()
}

#[test]
fn radiosity_boots_and_runs() {
    let out = record(Workload::Radiosity, RecordMode::Rec, 400_000);
    assert!(out.fault.is_none(), "guest fault: {:?}", out.fault);
    assert_eq!(out.retired, 400_000);
    assert!(out.cycles >= out.retired);
    assert!(out.context_switches > 0, "timer preemption must occur");
    assert!(!out.log.is_empty());
    assert!(out.log.end().is_some());
}

#[test]
fn all_workloads_record_without_faults() {
    for w in Workload::ALL {
        let out = record(w, RecordMode::Rec, 300_000);
        assert!(out.fault.is_none(), "{}: fault {:?}", w.label(), out.fault);
        assert_eq!(out.retired, 300_000, "{}", w.label());
        assert!(out.ras_counters.calls > 0, "{}: no calls observed", w.label());
        assert!(out.ras_counters.hits > 0, "{}: no RAS hits", w.label());
    }
}

#[test]
fn apache_logs_network_payloads() {
    let out = record(Workload::Apache, RecordMode::Rec, 600_000);
    assert!(out.fault.is_none());
    let net = out.log.bytes_for(rnr_log::Category::Network);
    assert!(net > 0, "apache must log packet contents");
    assert!(out.tx_frames > 0, "apache must respond to requests");
}

#[test]
fn fileio_performs_disk_io() {
    let out = record(Workload::Fileio, RecordMode::Rec, 600_000);
    assert!(out.fault.is_none());
    let interrupts =
        out.log.records().iter().filter(|r| matches!(r, rnr_log::Record::Interrupt { irq: 1, .. })).count();
    assert!(interrupts > 0, "disk completion interrupts expected");
}

#[test]
fn benign_runs_raise_no_or_few_alarms() {
    for w in [Workload::Mysql, Workload::Radiosity, Workload::Fileio] {
        let out = record(w, RecordMode::Rec, 400_000);
        assert_eq!(out.alarms, 0, "{}: unexpected alarms", w.label());
    }
}

#[test]
fn recording_modes_are_ordered_by_cost() {
    let w = Workload::Fileio;
    let per_op = |o: &rnr_hypervisor::RecordOutcome| o.cycles as f64 / o.ops.max(1) as f64;
    let norec_pv = record(w, RecordMode::NoRecPv, 300_000);
    let norec = record(w, RecordMode::NoRec, 300_000);
    let rec_noras = record(w, RecordMode::RecNoRas, 300_000);
    let rec = record(w, RecordMode::Rec, 300_000);
    // Comparisons are per completed operation: the modes do different
    // amounts of work in the same instruction budget.
    assert!(
        per_op(&norec_pv) < per_op(&norec),
        "PV must be faster per op: {} vs {}",
        per_op(&norec_pv),
        per_op(&norec)
    );
    assert!(
        per_op(&norec) < per_op(&rec_noras),
        "recording must cost: {} vs {}",
        per_op(&norec),
        per_op(&rec_noras)
    );
    assert!(
        per_op(&rec_noras) < per_op(&rec),
        "RAS save/restore must cost: {} vs {}",
        per_op(&rec_noras),
        per_op(&rec)
    );
    // Baselines write no log.
    assert_eq!(norec.log.len(), 0);
    assert!(!rec.log.is_empty());
}

#[test]
fn same_seed_reproduces_identical_recordings() {
    let a = record(Workload::Apache, RecordMode::Rec, 300_000);
    let b = record(Workload::Apache, RecordMode::Rec, 300_000);
    assert_eq!(a.final_digest, b.final_digest);
    assert_eq!(a.log.records().len(), b.log.records().len());
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn different_seeds_diverge() {
    let spec = Workload::Apache.spec(false);
    let a = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 1, 300_000)).unwrap().run();
    let b = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 2, 300_000)).unwrap().run();
    assert_ne!(a.final_digest, b.final_digest);
}

#[test]
fn pv_mode_requires_pv_kernel() {
    let spec = Workload::Fileio.spec(false);
    let err = Recorder::new(&spec, RecordConfig::new(RecordMode::NoRecPv, 1, 1000));
    assert!(err.is_err());
}
