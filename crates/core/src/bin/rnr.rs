//! `rnr` — the RnR-Safe command line.
//!
//! ```text
//! rnr record  --workload mysql [--insns N] [--seed S] [--ras N] -o run.rnr
//! rnr attack  [--at-cycle C] [--insns N] -o attack.rnr
//! rnr info    run.rnr
//! rnr replay  run.rnr [--checkpoint-secs X]
//! rnr resolve run.rnr [--checkpoint-secs X] [--json]
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_replay::{AlarmReplayer, ReplayConfig, Replayer, Verdict, VIRTUAL_HZ};
use rnr_safe::Session;
use rnr_workloads::{Workload, WorkloadParams};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("attack") => cmd_attack(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("replay") => cmd_replay(&args[1..], false),
        Some("resolve") => cmd_replay(&args[1..], true),
        Some("audit") => cmd_audit(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rnr: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
rnr — record-and-replay as a security framework (RnR-Safe, HPCA 2018)

USAGE:
  rnr record  --workload <apache|fileio|make|mysql|radiosity>
              [--insns N] [--seed S] [--ras N] -o FILE
  rnr attack  [--at-cycle C] [--insns N] [--seed S] -o FILE
  rnr info    FILE
  rnr replay  FILE [--checkpoint-secs X]
  rnr resolve FILE [--checkpoint-secs X] [--json]
  rnr audit   FILE --insn N
";

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flag(args, name) {
        Some(v) => v.parse().map_err(|e| format!("bad {name}: {e}")),
        None => Ok(default),
    }
}

fn cmd_record(args: &[String]) -> CliResult {
    let workload = flag(args, "--workload").ok_or("record needs --workload")?;
    let out = flag(args, "-o").ok_or("record needs -o FILE")?;
    let insns: u64 = parse(args, "--insns", 1_000_000)?;
    let seed: u64 = parse(args, "--seed", 42)?;
    let ras: usize = parse(args, "--ras", 48)?;
    let w = Workload::ALL
        .into_iter()
        .find(|w| w.label() == workload)
        .ok_or_else(|| format!("unknown workload `{workload}`"))?;
    let spec = w.spec(false);
    save_recording(spec, seed, insns, ras, &out)
}

fn cmd_attack(args: &[String]) -> CliResult {
    let out = flag(args, "-o").ok_or("attack needs -o FILE")?;
    let at_cycle: u64 = parse(args, "--at-cycle", 1_200_000)?;
    let insns: u64 = parse(args, "--insns", 900_000)?;
    let seed: u64 = parse(args, "--seed", 42)?;
    let (spec, plan) = rnr_attacks::mount_kernel_rop(&WorkloadParams::attack_demo(), at_cycle)?;
    eprintln!(
        "mounting the §6 kernel ROP: G1={:#x} G2={:#x} G3={:#x} -> grant_root={:#x}",
        plan.g1, plan.g2, plan.g3, plan.grant_root
    );
    save_recording(spec, seed, insns, 48, &out)
}

fn save_recording(spec: rnr_hypervisor::VmSpec, seed: u64, insns: u64, ras: usize, out: &str) -> CliResult {
    let mut rc = RecordConfig::new(RecordMode::Rec, seed, insns);
    rc.ras_capacity = ras;
    let outcome = Recorder::new(&spec, rc)?.run();
    if let Some(fault) = outcome.fault {
        return Err(format!("guest fault while recording: {fault:?}").into());
    }
    eprintln!(
        "recorded {} instructions in {} cycles; {} alarms; log {} bytes",
        outcome.retired,
        outcome.cycles,
        outcome.alarms,
        outcome.log.total_bytes()
    );
    Session::from_recording(spec, seed, ras, &outcome).save(out)?;
    eprintln!("session written to {out}");
    Ok(())
}

fn cmd_info(args: &[String]) -> CliResult {
    let path = args.first().ok_or("info needs FILE")?;
    let session = Session::load(path)?;
    let h = &session.header;
    println!("workload:      {}", h.spec.name);
    println!("seed:          {}", h.seed);
    println!("ras capacity:  {}", h.ras_capacity);
    println!("instructions:  {}", h.retired);
    println!("cycles:        {} ({:.3} virtual s)", h.cycles, h.cycles as f64 / VIRTUAL_HZ as f64);
    println!("alarms:        {}", h.alarms);
    println!("log:           {} bytes, {} records", h.log_bytes, session.log.len());
    println!("final digest:  {:016x}", h.final_digest);
    Ok(())
}

fn replay_config(args: &[String]) -> Result<ReplayConfig, String> {
    let secs: f64 = parse(args, "--checkpoint-secs", 1.0)?;
    Ok(ReplayConfig {
        checkpoint_interval: Some((secs * VIRTUAL_HZ as f64) as u64),
        ..ReplayConfig::default()
    })
}

fn cmd_replay(args: &[String], resolve: bool) -> CliResult {
    let path = args.first().ok_or("replay/resolve need FILE")?;
    let session = Session::load(path)?;
    let spec = session.header.spec.clone();
    let digest = session.expected_digest();
    let log = session.log;
    let cfg = replay_config(args)?;
    let mut r = Replayer::new(&spec, Arc::clone(&log), cfg.clone());
    r.verify_against(digest);
    let out = r.run()?;
    println!("replayed {} instructions in {} cycles", out.retired, out.cycles);
    println!("verified:              {}", out.verified == Some(true));
    println!("checkpoints taken:     {}", out.checkpoints_taken);
    println!("alarms seen:           {}", out.alarms_seen);
    println!("underflows cancelled:  {}", out.underflows_cancelled);
    println!("escalated (ROP):       {}", out.alarm_cases.len());
    println!("escalated (JOP):       {}", out.jop_cases.len());
    if out.verified != Some(true) {
        return Err("replayed state diverged from the recording".into());
    }
    if !resolve {
        return Ok(());
    }

    let ar = AlarmReplayer::new(&spec, log).with_config(cfg);
    let mut verdicts = Vec::new();
    for case in &out.alarm_cases {
        let (verdict, _) = ar.resolve(case)?;
        verdicts.push((case.at_insn(), verdict));
    }
    let json = has_flag(args, "--json");
    for (at_insn, verdict) in &verdicts {
        match verdict {
            Verdict::RopAttack(report) if json => {
                println!(
                    "{}",
                    serde_json::json!({
                        "at_insn": at_insn,
                        "verdict": "rop-attack",
                        "vulnerable": report.vulnerable_symbol,
                        "hijacked_to": format!("{:#x}", report.actual_target),
                        "thread": report.tid.0,
                        "chain": report.gadget_chain.iter().map(|g| format!("{:#x}", g.value)).collect::<Vec<_>>(),
                    })
                );
            }
            Verdict::RopAttack(report) => {
                println!(
                    "insn {at_insn}: ROP ATTACK in {:?} (thread {}), hijacked to {:#x}",
                    report.vulnerable_symbol, report.tid, report.actual_target
                );
                for g in &report.gadget_chain {
                    if let Some(listing) = &g.listing {
                        println!("    gadget {:#x}: {listing}", g.value);
                    }
                }
            }
            Verdict::HeapOverflow(report) if json => {
                println!(
                    "{}",
                    serde_json::json!({
                        "at_insn": at_insn,
                        "verdict": "heap-overflow",
                        "addr": format!("{:#x}", report.addr),
                        "region": report.region.map(|(b, l)| format!("{b:#x}+{l}")),
                        "thread": report.tid,
                    })
                );
            }
            Verdict::UseAfterReturn(report) if json => {
                println!(
                    "{}",
                    serde_json::json!({
                        "at_insn": at_insn,
                        "verdict": "use-after-return",
                        "addr": format!("{:#x}", report.addr),
                        "thread": report.tid,
                    })
                );
            }
            Verdict::HeapOverflow(report) => {
                println!(
                    "insn {at_insn}: HEAP OVERFLOW at {:#x} (thread {}), escaped region {:?}",
                    report.addr, report.tid, report.region
                );
            }
            Verdict::UseAfterReturn(report) => {
                println!(
                    "insn {at_insn}: USE-AFTER-RETURN at {:#x} (thread {}), sp at alarm {:#x}",
                    report.addr, report.tid, report.sp_at_alarm
                );
            }
            Verdict::FalsePositive(kind) => {
                println!("insn {at_insn}: false positive ({kind:?})");
            }
        }
    }
    for case in &out.jop_cases {
        match rnr_replay::resolve_jop(&spec, case) {
            rnr_replay::JopVerdict::JopAttack => println!(
                "insn {}: JOP ATTACK — indirect branch at {:#x} into function body {:#x}",
                case.at_insn, case.branch_pc, case.target
            ),
            rnr_replay::JopVerdict::FalsePositive => {
                println!("insn {}: JOP false positive (uncommon function {:#x})", case.at_insn, case.target)
            }
        }
    }
    let attacks = verdicts.iter().filter(|(_, v)| v.is_attack()).count();
    println!(
        "\n{} ROP alarm(s): {attacks} attack(s), {} false positive(s)",
        verdicts.len(),
        verdicts.len() - attacks
    );
    Ok(())
}

fn cmd_audit(args: &[String]) -> CliResult {
    let path = args.first().ok_or("audit needs FILE")?;
    let insn: u64 = parse(args, "--insn", u64::MAX)?;
    if insn == u64::MAX {
        return Err("audit needs --insn N".into());
    }
    let session = Session::load(path)?;
    let spec = session.header.spec.clone();
    let log = session.log;
    let cfg = ReplayConfig { checkpoint_interval: None, collect_cases: false, ..ReplayConfig::default() };
    let mut r = Replayer::new(&spec, log, cfg);
    r.stop_at_insn(insn);
    let out = r.run()?;
    let vm = out.vm();
    let intro = rnr_hypervisor::Introspector::new(&spec.kernel);
    println!("audit point: instruction {} (requested {insn}), cycle {}", out.retired, out.cycles);
    let pc = vm.cpu().pc;
    let symbol = spec
        .kernel
        .image()
        .symbolize(pc)
        .or_else(|| spec.extra_images.first().and_then(|i| i.symbolize(pc)))
        .map(|(s, base)| format!("{s}+{:#x}", pc - base))
        .unwrap_or_else(|| "?".to_string());
    println!("pc:          {pc:#x} ({symbol})");
    println!("mode:        {:?}; interrupts: {}", vm.cpu().mode, vm.cpu().interrupts_enabled);
    for reg in rnr_isa::Reg::ALL {
        println!("  {reg:<4} = {:#018x}", vm.cpu().reg(reg));
    }
    println!("current thread: {:?}", intro.current_thread(vm));
    println!("threads (tid, state): {:?}", intro.thread_table(vm));
    println!("privilege flag: {:#x}", intro.priv_flag(vm));
    println!("kernel oopses:  {}", intro.oops_count(vm));
    Ok(())
}
