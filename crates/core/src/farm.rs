//! The replay farm: many concurrent sessions on one shared worker pool
//! (DESIGN.md §14).
//!
//! A [`Farm`] is a fleet manager. Each [`SessionSpec`] is one full RnR-Safe
//! pipeline — record → checkpointing replay → alarm replay — but instead of
//! every session privately owning recorder threads, span workers, and an AR
//! pool, the farm multiplexes **one** global bounded pool (sized from the
//! host's cores) across all of them. Session phases are decomposed into
//! unified work items — `Record`, one `CrSpan` per span, `Finalize`, one
//! `ArCase` per escalated alarm — and a deterministic weighted round-robin
//! scheduler drains them so an alarm-storming session cannot starve its
//! quiet siblings. One run-wide [`SharedPageCache`] spans the fleet, so
//! identical guest images decode once and every session's workers adopt the
//! published blocks.
//!
//! **Invariance:** a farm of N sessions produces per-session
//! [`PipelineReport`]s byte-identical (via `to_json()`) to N serial
//! [`Pipeline`](crate::Pipeline) runs of the same specs, for every pool
//! size, interleaving, and per-session knob corner. This falls out of the
//! spine the farm is built on: recording is sequential (streaming is a
//! wall-clock-only knob, and seed capture is pure reads), span replay folds
//! index-keyed results in span order regardless of execution order, and
//! alarm cases resolve into index-keyed slots — nothing the scheduler
//! decides can reach a report. Failures are isolated the same way: a
//! session that panics, exhausts a [`SessionBudget`], or trips its fault
//! plan fails with a structured [`FarmError`] while its siblings' reports
//! stay untouched.

mod budget;
mod scheduler;

pub use budget::{BudgetKind, SessionBudget};

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use rnr_hypervisor::{RecordOutcome, VmSpec};
use rnr_log::{DurableLogConfig, TransportStats};
use rnr_machine::SharedPageCache;
use rnr_replay::{
    assemble_spans, plan_spans, pool, run_planned_span, AlarmCase, ReplayConfig, ReplayError, ReplayOutcome,
    SpanDone, SpanJob,
};

use crate::pipeline::{
    ar_replay_config, durable_writer_for, finish_report, panic_text, record_config, replay_config,
    run_recorder_sequential, ArStats, CaseResolver,
};
use crate::{AlarmResolution, FailedCase, PipelineConfig, PipelineError, PipelineReport};

use scheduler::{LaneConfig, Scheduler, WorkItem, WorkKind};

/// A fleet-unique session identifier (the session's position in the batch
/// submitted to [`Farm::run`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub u32);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One session the farm will run: a workload spec, its pipeline
/// configuration, a resource budget, and a scheduling weight.
#[derive(Debug)]
pub struct SessionSpec {
    /// Caller-chosen session name (reported in [`SessionOutcome`]; need not
    /// be unique, but [`FarmReport::session`] returns the first match).
    pub name: String,
    /// The guest to record and replay.
    pub vm: VmSpec,
    /// The session's pipeline knobs. The farm honours everything that can
    /// reach the report (seed, duration, RAS capacity, checkpoint interval,
    /// cost model, fault plan, …) and treats the wall-clock-only execution
    /// knobs (`streaming`, `parallel_spans`, `ar_workers`) as satisfied by
    /// the shared pool — the report is byte-identical either way.
    pub config: PipelineConfig,
    /// Resource limits; [`SessionBudget::unlimited`] by default.
    pub budget: SessionBudget,
    /// Scheduler weight: dispatches granted per round-robin cycle (≥ 1).
    /// Wall-clock only.
    pub weight: u32,
}

impl SessionSpec {
    /// A session named `name` over `vm` with an unlimited budget and
    /// weight 1.
    pub fn new(name: impl Into<String>, vm: VmSpec, config: PipelineConfig) -> SessionSpec {
        SessionSpec { name: name.into(), vm, config, budget: SessionBudget::unlimited(), weight: 1 }
    }
}

/// Farm-wide configuration.
#[derive(Debug, Clone, Default)]
pub struct FarmConfig {
    /// Global pool size; `0` sizes it to the host's available parallelism.
    /// Wall-clock only: reports are byte-identical for every pool size.
    pub workers: usize,
    /// Root directory for per-session durable stores. A session whose own
    /// `config.durable_log` is unset gets
    /// `<root>/session-<id>` ([DESIGN.md §13] segment store); sessions that
    /// set their own path keep it.
    pub durable_root: Option<PathBuf>,
}

/// How a fleet session failed. Sibling sessions are unaffected — each
/// [`SessionOutcome`] carries its own result.
#[derive(Debug)]
pub enum FarmError {
    /// The session exhausted one of its [`SessionBudget`] limits.
    BudgetExceeded {
        /// The session that exceeded its budget.
        session: SessionId,
        /// Which budget, with observed and permitted amounts.
        budget: BudgetKind,
    },
    /// The scheduler had runnable work for this session but no clamp will
    /// ever admit it (and nothing else was in flight to change that).
    Starved {
        /// The starved session.
        session: SessionId,
        /// Work items still queued when starvation was declared.
        pending: usize,
    },
    /// The session's own pipeline failed (recording setup, guest fault,
    /// replay divergence, failed verification).
    Pipeline(PipelineError),
    /// A pooled worker panicked while executing this session's work; the
    /// panic was caught and confined to the session.
    WorkerPanicked {
        /// The session whose work item panicked.
        session: SessionId,
        /// Best-effort panic message.
        detail: String,
    },
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::BudgetExceeded { session, budget } => {
                write!(f, "session {session} exceeded its {budget}")
            }
            FarmError::Starved { session, pending } => {
                write!(f, "session {session} starved with {pending} items queued and none admissible")
            }
            FarmError::Pipeline(e) => write!(f, "pipeline failed: {e}"),
            FarmError::WorkerPanicked { session, detail } => {
                write!(f, "farm worker panicked on session {session}: {detail}")
            }
        }
    }
}

impl std::error::Error for FarmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FarmError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PipelineError> for FarmError {
    fn from(e: PipelineError) -> FarmError {
        FarmError::Pipeline(e)
    }
}

/// One session's result and wall-clock accounting.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The session's fleet identifier.
    pub id: SessionId,
    /// The session's caller-chosen name.
    pub name: String,
    /// The session's report, or the structured reason it failed.
    pub result: Result<PipelineReport, FarmError>,
    /// Milliseconds from farm start to this session's completion
    /// (scheduling latency included).
    pub wall_ms: f64,
}

/// What [`Farm::run`] returns: every session's outcome, in submission
/// order, plus fleet wall-clock.
#[derive(Debug)]
pub struct FarmReport {
    /// Per-session outcomes, indexed by submission order.
    pub sessions: Vec<SessionOutcome>,
    /// Total fleet wall-clock in milliseconds.
    pub wall_ms: f64,
}

impl FarmReport {
    /// The first session named `name`, if any.
    pub fn session(&self, name: &str) -> Option<&SessionOutcome> {
        self.sessions.iter().find(|s| s.name == name)
    }

    /// True when every session produced a report.
    pub fn all_ok(&self) -> bool {
        self.sessions.iter().all(|s| s.result.is_ok())
    }
}

/// The fleet manager. Construct once, then [`Farm::run`] batches of
/// sessions on the shared pool.
#[derive(Debug, Clone, Default)]
pub struct Farm {
    config: FarmConfig,
}

impl Farm {
    /// A farm with `config`.
    pub fn new(config: FarmConfig) -> Farm {
        Farm { config }
    }

    /// Runs every session to completion on the shared pool and returns all
    /// outcomes. Never fails as a whole: per-session failures are carried
    /// in each [`SessionOutcome::result`].
    pub fn run(&self, sessions: &[SessionSpec]) -> FarmReport {
        let started = Instant::now();
        if sessions.is_empty() {
            return FarmReport { sessions: Vec::new(), wall_ms: 0.0 };
        }
        let workers = match self.config.workers {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            w => w,
        };
        let fleet = Fleet::new(sessions, &self.config, started);
        pool::drain(workers, &|| fleet.next_task());
        let state = fleet.state.into_inner().expect("fleet lock");
        let outcomes = state
            .phases
            .into_iter()
            .zip(state.latencies)
            .enumerate()
            .map(|(s, (phase, wall_ms))| {
                let id = SessionId(s as u32);
                let result = match phase {
                    Phase::Done(result) => *result,
                    // Unreachable by construction (the pool only drains once
                    // every session is Done), but never panic the report.
                    _ => Err(FarmError::Starved { session: id, pending: 0 }),
                };
                SessionOutcome { id, name: sessions[s].name.clone(), result, wall_ms }
            })
            .collect();
        FarmReport { sessions: outcomes, wall_ms: started.elapsed().as_secs_f64() * 1e3 }
    }
}

/// Farm span cadence: ~16 spans per session so the pool always has CR work
/// to interleave, floored so tiny sessions don't drown in restore overhead.
/// Wall-clock only — seed capture is pure reads and span count never
/// reaches a report.
fn farm_span_cadence(cfg: &PipelineConfig) -> u64 {
    (cfg.duration_insns / 16).max(15_000)
}

/// Per-session configuration derived once at admission.
struct SessionPlan {
    replay_cfg: ReplayConfig,
    ar_cfg: ReplayConfig,
    durable: Option<DurableLogConfig>,
    cadence: u64,
}

/// Where one session is in its record → replay → finalize → resolve life
/// cycle. Holds the phase's index-keyed result slots; the borrow parameter
/// is the fleet's borrow of the session specs (the resolver replays
/// against a session's `VmSpec`).
enum Phase<'s> {
    /// Waiting for / executing its `Record` item.
    Recording,
    /// CR spans in flight.
    Replaying(Box<ReplayPhase>),
    /// Span results moved into a `Finalize` (or final report-assembly)
    /// task; transient.
    Finalizing,
    /// Alarm cases in flight.
    Resolving(Box<ResolvePhase<'s>>),
    /// Terminal.
    Done(Box<Result<PipelineReport, FarmError>>),
}

struct ReplayPhase {
    rec: RecordOutcome,
    jobs: Arc<Vec<SpanJob>>,
    slots: Vec<Option<Result<SpanDone, ReplayError>>>,
    remaining: usize,
}

struct ResolvePhase<'s> {
    rec: RecordOutcome,
    cr_out: ReplayOutcome,
    cr_stats: rnr_machine::BlockStats,
    resolver: Arc<CaseResolver<'s>>,
    cases: Arc<Vec<AlarmCase>>,
    slots: Vec<Option<Result<AlarmResolution, FailedCase>>>,
    remaining: usize,
    workers_lost: u64,
}

/// What `Finalize` hands back: everything the resolve phase needs.
struct FinalizeOut<'s> {
    rec: RecordOutcome,
    cr_out: ReplayOutcome,
    cr_stats: rnr_machine::BlockStats,
    resolver: Arc<CaseResolver<'s>>,
    workers_lost: u64,
}

/// A work item's result, computed OUTSIDE the fleet lock and applied under
/// it.
enum Executed<'s> {
    Recorded(Box<Result<RecordOutcome, FarmError>>),
    Span(usize, Box<Result<SpanDone, ReplayError>>),
    Finalized(Result<Box<FinalizeOut<'s>>, FarmError>),
    Resolved(usize, Result<AlarmResolution, FailedCase>),
}

struct FleetState<'s> {
    phases: Vec<Phase<'s>>,
    sched: Scheduler,
    inflight: usize,
    done: usize,
    latencies: Vec<f64>,
}

/// The live fleet: immutable per-session plans plus the locked mutable
/// state the pool workers coordinate through.
struct Fleet<'s> {
    sessions: &'s [SessionSpec],
    plans: Vec<SessionPlan>,
    shared: Arc<SharedPageCache>,
    state: Mutex<FleetState<'s>>,
    cvar: Condvar,
    started: Instant,
}

impl<'s> Fleet<'s> {
    fn new(sessions: &'s [SessionSpec], config: &FarmConfig, started: Instant) -> Fleet<'s> {
        let plans = sessions
            .iter()
            .enumerate()
            .map(|(s, spec)| {
                let replay_cfg = replay_config(&spec.config);
                let ar_cfg = ar_replay_config(&replay_cfg);
                let durable = spec.config.durable_log.clone().or_else(|| {
                    config
                        .durable_root
                        .as_ref()
                        .map(|root| DurableLogConfig::new(root.join(format!("session-{s}"))))
                });
                SessionPlan { replay_cfg, ar_cfg, durable, cadence: farm_span_cadence(&spec.config) }
            })
            .collect();
        let lanes = sessions
            .iter()
            .map(|spec| LaneConfig {
                weight: spec.weight.max(1),
                span_slots: spec.budget.span_slots.unwrap_or(usize::MAX),
                ar_slots: spec.budget.ar_slots.unwrap_or(usize::MAX),
            })
            .collect();
        let mut sched = Scheduler::new(lanes);
        for s in 0..sessions.len() {
            sched.enqueue(WorkItem { session: s, kind: WorkKind::Record, index: 0 });
        }
        Fleet {
            sessions,
            plans,
            shared: Arc::new(SharedPageCache::new()),
            state: Mutex::new(FleetState {
                phases: (0..sessions.len()).map(|_| Phase::Recording).collect(),
                sched,
                inflight: 0,
                done: 0,
                latencies: vec![0.0; sessions.len()],
            }),
            cvar: Condvar::new(),
            started,
        }
    }

    fn id(&self, s: usize) -> SessionId {
        SessionId(s as u32)
    }

    /// The pool's pull hook: the next task, blocking while other workers'
    /// in-flight items might unlock more, `None` once the fleet is done.
    fn next_task(&self) -> Option<pool::Task<'_>> {
        let mut st = self.state.lock().expect("fleet lock");
        loop {
            if st.done == self.sessions.len() && st.inflight == 0 {
                return None;
            }
            if let Some(item) = st.sched.next() {
                st.inflight += 1;
                return Some(self.build_task(&mut st, item));
            }
            if st.inflight == 0 {
                // Queued work exists (some session is not Done) but nothing
                // is admissible and nothing in flight can change that:
                // structural starvation. Fail the stuck sessions instead of
                // deadlocking the pool.
                self.starve_incomplete(&mut st);
                continue;
            }
            st = self.cvar.wait(st).expect("fleet lock");
        }
    }

    /// Packages `item` as a pool task: a payload that runs OUTSIDE the
    /// fleet lock (all the heavy guest re-execution), then a short
    /// apply-under-lock epilogue. Panics in the payload are caught and
    /// confined to the item's session.
    fn build_task<'a>(&'a self, st: &mut FleetState<'s>, item: WorkItem) -> pool::Task<'a> {
        let s = item.session;
        let payload: Box<dyn FnOnce() -> Executed<'s> + Send + 'a> = match item.kind {
            WorkKind::Record => Box::new(move || Executed::Recorded(Box::new(self.record_session(s)))),
            WorkKind::CrSpan => {
                let Phase::Replaying(rp) = &st.phases[s] else {
                    unreachable!("span dispatched outside replay phase")
                };
                let jobs = Arc::clone(&rp.jobs);
                let k = item.index;
                Box::new(move || {
                    let result = run_planned_span(
                        &self.sessions[s].vm,
                        &self.plans[s].replay_cfg,
                        Some(&self.shared),
                        &jobs[k],
                    );
                    Executed::Span(k, Box::new(result))
                })
            }
            WorkKind::Finalize => {
                // Finalize owns the whole replay phase (its slots are
                // complete); move it into the task.
                let phase = std::mem::replace(&mut st.phases[s], Phase::Finalizing);
                let Phase::Replaying(rp) = phase else {
                    unreachable!("finalize dispatched outside replay phase")
                };
                Box::new(move || Executed::Finalized(self.finalize_session(s, *rp)))
            }
            WorkKind::ArCase => {
                let Phase::Resolving(rs) = &st.phases[s] else {
                    unreachable!("case dispatched outside resolve phase")
                };
                let resolver = Arc::clone(&rs.resolver);
                let cases = Arc::clone(&rs.cases);
                let i = item.index;
                Box::new(move || Executed::Resolved(i, resolver.resolve(i, &cases[i])))
            }
        };
        Box::new(move || {
            let executed = catch_unwind(AssertUnwindSafe(payload));
            let mut st = self.state.lock().expect("fleet lock");
            st.sched.finished(&item);
            match executed {
                Ok(executed) => self.apply(&mut st, s, executed),
                Err(payload) => {
                    let err = FarmError::WorkerPanicked {
                        session: self.id(s),
                        detail: panic_text(payload.as_ref()),
                    };
                    self.finish(&mut st, s, Err(err));
                }
            }
            st.inflight -= 1;
            self.cvar.notify_all();
        })
    }

    /// Record payload: sequential recording with the farm's span cadence,
    /// the session's durable store, and the post-record log-byte budget
    /// check.
    fn record_session(&self, s: usize) -> Result<RecordOutcome, FarmError> {
        let spec = &self.sessions[s];
        let rc = record_config(&spec.config, Some(self.plans[s].cadence));
        let writer = durable_writer_for(self.plans[s].durable.as_ref(), &spec.config.fault_plan)?;
        let rec = run_recorder_sequential(&spec.vm, rc, &self.shared, writer)?;
        if let Some(max) = spec.budget.log_bytes {
            let used = rec.log.total_bytes();
            if used > max {
                return Err(FarmError::BudgetExceeded {
                    session: self.id(s),
                    budget: BudgetKind::LogBytes { used, max },
                });
            }
        }
        Ok(rec)
    }

    /// Finalize payload: seam-check and fold the finished spans, verify the
    /// final digest, apply the rewind and AR-case budgets, and build the
    /// shared case resolver.
    fn finalize_session(&self, s: usize, rp: ReplayPhase) -> Result<Box<FinalizeOut<'s>>, FarmError> {
        // Borrow the spec through the fleet's `'s` sessions slice (not
        // through `&self`): the resolver keeps it for the resolve phase.
        let sessions: &'s [SessionSpec] = self.sessions;
        let spec = &sessions[s];
        let results: Vec<Result<SpanDone, ReplayError>> =
            rp.slots.into_iter().map(|slot| slot.unwrap_or(Err(ReplayError::UnexpectedEndOfLog))).collect();
        let par = assemble_spans(
            &spec.vm,
            &self.plans[s].replay_cfg,
            Some(&self.shared),
            rp.rec.log.records(),
            &rp.jobs,
            results,
            Some(rp.rec.final_digest),
            TransportStats::default(),
        )
        .map_err(|e| FarmError::Pipeline(PipelineError::Replay(e)))?;
        if par.outcome.verified != Some(true) {
            return Err(FarmError::Pipeline(PipelineError::VerificationFailed));
        }
        if let Some(max) = spec.budget.rewind_quota {
            let used = par.outcome.recovery.rewinds;
            if used > max {
                return Err(FarmError::BudgetExceeded {
                    session: self.id(s),
                    budget: BudgetKind::Rewinds { used, max },
                });
            }
        }
        let cases = par.outcome.alarm_cases.len();
        if let Some(max) = spec.budget.ar_slots {
            if cases > max {
                return Err(FarmError::BudgetExceeded {
                    session: self.id(s),
                    budget: BudgetKind::ArSlots { needed: cases, max },
                });
            }
        }
        // The fault plan's worker-kill models the same way the serial
        // pipeline's inline path does: the kill is recorded, the case is
        // resolved anyway (here by whichever pool worker draws it).
        let workers_lost =
            u64::from(spec.config.fault_plan.kill_ar_worker_at_case.is_some_and(|k| k < cases));
        let resolver = Arc::new(CaseResolver::new(
            &spec.vm,
            Arc::clone(&rp.rec.log),
            self.plans[s].ar_cfg.clone(),
            Arc::clone(&self.shared),
            &spec.config.fault_plan,
        ));
        Ok(Box::new(FinalizeOut {
            rec: rp.rec,
            cr_out: par.outcome,
            cr_stats: par.block_stats,
            resolver,
            workers_lost,
        }))
    }

    /// Applies a payload's result under the fleet lock: stores it in its
    /// index-keyed slot and advances the session's phase when the slot set
    /// completes. Results for already-terminated sessions are dropped.
    fn apply(&self, st: &mut FleetState<'s>, s: usize, executed: Executed<'s>) {
        if matches!(st.phases[s], Phase::Done(_)) {
            return; // A straggler for a session that already failed.
        }
        match executed {
            Executed::Recorded(recorded) => match *recorded {
                Err(e) => self.finish(st, s, Err(e)),
                Ok(rec) => {
                    if self.sessions[s].budget.span_slots == Some(0) {
                        // A zero span budget admits no replay work, ever;
                        // fail fast instead of queueing items the clamp
                        // will never release (structural starvation).
                        let err = FarmError::BudgetExceeded {
                            session: self.id(s),
                            budget: BudgetKind::SpanSlots { max: 0 },
                        };
                        self.finish(st, s, Err(err));
                        return;
                    }
                    let jobs =
                        Arc::new(plan_spans(&rec.log, &rec.span_seeds, &self.sessions[s].config.fault_plan));
                    let n = jobs.len();
                    for k in 0..n {
                        st.sched.enqueue(WorkItem { session: s, kind: WorkKind::CrSpan, index: k });
                    }
                    st.phases[s] = Phase::Replaying(Box::new(ReplayPhase {
                        rec,
                        jobs,
                        slots: (0..n).map(|_| None).collect(),
                        remaining: n,
                    }));
                }
            },
            Executed::Span(k, result) => {
                let Phase::Replaying(rp) = &mut st.phases[s] else { return };
                if rp.slots[k].is_none() {
                    rp.remaining -= 1;
                }
                rp.slots[k] = Some(*result);
                if rp.remaining == 0 {
                    st.sched.enqueue(WorkItem { session: s, kind: WorkKind::Finalize, index: 0 });
                }
            }
            Executed::Finalized(Err(e)) => self.finish(st, s, Err(e)),
            Executed::Finalized(Ok(out)) => {
                let fin = *out;
                let cases = Arc::new(fin.cr_out.alarm_cases.clone());
                let n = cases.len();
                if n == 0 {
                    let report = finish_report(
                        self.sessions[s].vm.name.clone(),
                        &self.sessions[s].config,
                        &fin.rec,
                        &fin.cr_out,
                        fin.cr_stats,
                        Vec::new(),
                        ArStats { retries: 0, panics: 0, workers_lost: fin.workers_lost },
                    );
                    self.finish(st, s, Ok(report));
                    return;
                }
                for i in 0..n {
                    st.sched.enqueue(WorkItem { session: s, kind: WorkKind::ArCase, index: i });
                }
                st.phases[s] = Phase::Resolving(Box::new(ResolvePhase {
                    rec: fin.rec,
                    cr_out: fin.cr_out,
                    cr_stats: fin.cr_stats,
                    resolver: fin.resolver,
                    cases,
                    slots: (0..n).map(|_| None).collect(),
                    remaining: n,
                    workers_lost: fin.workers_lost,
                }));
            }
            Executed::Resolved(i, result) => {
                let Phase::Resolving(rs) = &mut st.phases[s] else { return };
                if rs.slots[i].is_none() {
                    rs.remaining -= 1;
                }
                rs.slots[i] = Some(result);
                if rs.remaining > 0 {
                    return;
                }
                let phase = std::mem::replace(&mut st.phases[s], Phase::Finalizing);
                let Phase::Resolving(rs) = phase else { unreachable!("checked above") };
                let outcomes: Vec<Result<AlarmResolution, FailedCase>> =
                    rs.slots.into_iter().map(|slot| slot.expect("every case resolved")).collect();
                let (retries, panics) = rs.resolver.counters();
                let report = finish_report(
                    self.sessions[s].vm.name.clone(),
                    &self.sessions[s].config,
                    &rs.rec,
                    &rs.cr_out,
                    rs.cr_stats,
                    outcomes,
                    ArStats { retries, panics, workers_lost: rs.workers_lost },
                );
                self.finish(st, s, Ok(report));
            }
        }
    }

    /// Terminates session `s` (idempotent): stamps its latency, drops its
    /// queued work, and wakes the pool.
    fn finish(&self, st: &mut FleetState<'s>, s: usize, result: Result<PipelineReport, FarmError>) {
        if matches!(st.phases[s], Phase::Done(_)) {
            return;
        }
        st.phases[s] = Phase::Done(Box::new(result));
        st.latencies[s] = self.started.elapsed().as_secs_f64() * 1e3;
        st.done += 1;
        st.sched.clear_session(s);
    }

    /// Fails every incomplete session as starved (no admissible work, none
    /// in flight).
    fn starve_incomplete(&self, st: &mut FleetState<'s>) {
        for s in 0..self.sessions.len() {
            if !matches!(st.phases[s], Phase::Done(_)) {
                let pending = st.sched.pending(s);
                let err = FarmError::Starved { session: self.id(s), pending };
                self.finish(st, s, Err(err));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pipeline;
    use rnr_attacks::mount_kernel_rop;
    use rnr_log::FaultPlan;
    use rnr_workloads::{Workload, WorkloadParams};

    fn quick(name: &str, workload: Workload, insns: u64) -> SessionSpec {
        let config = PipelineConfig { duration_insns: insns, ..PipelineConfig::default() };
        SessionSpec::new(name, workload.spec(false), config)
    }

    fn serial_json(workload: Workload, config: &PipelineConfig) -> String {
        Pipeline::new(workload.spec(false), config.clone()).run().unwrap().to_json()
    }

    #[test]
    fn farm_reports_match_serial_pipelines() {
        let make_cfg = PipelineConfig { duration_insns: 150_000, ..PipelineConfig::default() };
        let mysql_cfg = PipelineConfig { duration_insns: 120_000, ..PipelineConfig::default() };
        let expected_make = serial_json(Workload::Make, &make_cfg);
        let expected_mysql = serial_json(Workload::Mysql, &mysql_cfg);
        for workers in [1, 3] {
            let farm = Farm::new(FarmConfig { workers, ..FarmConfig::default() });
            let report = farm.run(&[
                SessionSpec::new("make", Workload::Make.spec(false), make_cfg.clone()),
                SessionSpec::new("mysql", Workload::Mysql.spec(false), mysql_cfg.clone()),
            ]);
            assert!(report.all_ok(), "workers={workers}: {report:?}");
            let got_make = report.session("make").unwrap().result.as_ref().unwrap().to_json();
            let got_mysql = report.session("mysql").unwrap().result.as_ref().unwrap().to_json();
            assert_eq!(got_make, expected_make, "workers={workers}");
            assert_eq!(got_mysql, expected_mysql, "workers={workers}");
            assert!(report.wall_ms > 0.0);
            assert!(report.sessions.iter().all(|s| s.wall_ms > 0.0));
        }
    }

    #[test]
    fn log_byte_budget_fails_session_without_touching_sibling() {
        let expected = serial_json(
            Workload::Make,
            &PipelineConfig { duration_insns: 150_000, ..PipelineConfig::default() },
        );
        let mut capped = quick("capped", Workload::Mysql, 120_000);
        capped.budget.log_bytes = Some(1);
        let report = Farm::new(FarmConfig::default()).run(&[capped, quick("quiet", Workload::Make, 150_000)]);
        let failed = &report.session("capped").unwrap().result;
        match failed {
            Err(FarmError::BudgetExceeded { session, budget: BudgetKind::LogBytes { used, max } }) => {
                assert_eq!(*session, SessionId(0));
                assert_eq!(*max, 1);
                assert!(*used > 1);
            }
            other => panic!("expected log-byte budget failure, got {other:?}"),
        }
        let quiet = report.session("quiet").unwrap().result.as_ref().unwrap();
        assert_eq!(quiet.to_json(), expected);
        assert!(!quiet.recovery.any());
    }

    #[test]
    fn zero_span_slot_budget_fails_fast() {
        let mut capped = quick("capped", Workload::Make, 120_000);
        capped.budget.span_slots = Some(0);
        let report = Farm::new(FarmConfig::default()).run(&[capped]);
        match &report.sessions[0].result {
            Err(FarmError::BudgetExceeded { budget: BudgetKind::SpanSlots { max: 0 }, .. }) => {}
            other => panic!("expected span-slot budget failure, got {other:?}"),
        }
    }

    #[test]
    fn rewind_quota_fails_recovering_session() {
        let mut capped = quick("capped", Workload::Mysql, 150_000);
        capped.config.fault_plan = FaultPlan { cr_divergence_at_insn: Some(60_000), ..FaultPlan::default() };
        capped.budget.rewind_quota = Some(0);
        let report = Farm::new(FarmConfig::default()).run(&[capped]);
        match &report.sessions[0].result {
            Err(FarmError::BudgetExceeded { budget: BudgetKind::Rewinds { used, max: 0 }, .. }) => {
                assert!(*used > 0);
            }
            other => panic!("expected rewind quota failure, got {other:?}"),
        }
    }

    #[test]
    fn ar_slot_budget_fails_alarm_storm() {
        let (spec, _plan) = mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).unwrap();
        let config = PipelineConfig {
            duration_insns: 900_000,
            checkpoint_interval_secs: Some(0.125),
            ..PipelineConfig::default()
        };
        let mut stormy = SessionSpec::new("stormy", spec, config);
        stormy.budget.ar_slots = Some(0);
        let report = Farm::new(FarmConfig::default()).run(&[stormy]);
        match &report.sessions[0].result {
            Err(FarmError::BudgetExceeded { budget: BudgetKind::ArSlots { needed, max: 0 }, .. }) => {
                assert!(*needed > 0);
            }
            other => panic!("expected AR-slot budget failure, got {other:?}"),
        }
    }

    #[test]
    fn farm_error_display_names_the_session() {
        let e = FarmError::BudgetExceeded {
            session: SessionId(3),
            budget: BudgetKind::LogBytes { used: 10, max: 5 },
        };
        let text = e.to_string();
        assert!(text.contains("s3"), "{text}");
        assert!(text.contains("log-byte"), "{text}");
        let starved = FarmError::Starved { session: SessionId(1), pending: 4 };
        assert!(starved.to_string().contains("s1"));
    }
}
