//! The full RnR-Safe pipeline: record → checkpointing replay → alarm replay.

use std::fmt;
use std::sync::Arc;

use rnr_hypervisor::{RecordConfig, RecordError, RecordMode, RecordOutcome, Recorder, VmSpec};
use rnr_log::{log_channel, Category, DEFAULT_BATCH};
use rnr_machine::CostModel;
use rnr_ras::RasConfig;
use rnr_replay::{AlarmReplayer, ReplayConfig, ReplayError, ReplayOutcome, Replayer, Verdict, VIRTUAL_HZ};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Seed for all host non-determinism.
    pub seed: u64,
    /// Guest instructions to record.
    pub duration_insns: u64,
    /// RAS capacity.
    pub ras_capacity: usize,
    /// Checkpoint interval in virtual seconds (the paper's `RepChkN`
    /// naming: 1.0 = RepChk1). `None` replays without periodic checkpoints.
    pub checkpoint_interval_secs: Option<f64>,
    /// Checkpoints retained (window + 2, §8.4).
    pub retain: usize,
    /// Cycle cost model shared by recorder and replayers.
    pub costs: CostModel,
    /// Stall the recorded VM at the first alarm (§3's risk-tolerance knob)
    /// instead of letting it continue while the replayers investigate.
    pub stall_on_alarm: bool,
    /// Resolve escalated alarms on parallel alarm replayers ("our design
    /// allows running multiple ARs concurrently", §6).
    pub parallel_alarm_replay: bool,
    /// Alarm-replayer pool size when `parallel_alarm_replay` is set; `0`
    /// sizes the pool to the host's available parallelism. Resolution order
    /// (and therefore the report) is deterministic for any pool size.
    pub ar_workers: usize,
    /// Run the CR concurrently with the recorder, consuming the input log
    /// as a live stream (the paper's deployment: recording and replay
    /// proceed in parallel on separate machines, §4). `false` records to
    /// completion first — the result is identical either way.
    pub streaming: bool,
    /// Use the predecoded instruction cache in the recorder and all
    /// replayers (wall-clock optimization; virtual cycles, digests, and
    /// verdicts are identical either way).
    pub decode_cache: bool,
    /// Execute whole cached basic blocks between event horizons in the
    /// recorder and all replayers (wall-clock optimization; virtual cycles,
    /// digests, and verdicts are identical either way).
    pub block_engine: bool,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            seed: 42,
            duration_insns: 1_000_000,
            ras_capacity: RasConfig::DEFAULT_CAPACITY,
            checkpoint_interval_secs: Some(1.0),
            retain: 8,
            costs: CostModel::default(),
            stall_on_alarm: false,
            parallel_alarm_replay: true,
            ar_workers: 0,
            streaming: true,
            decode_cache: true,
            block_engine: true,
        }
    }
}

/// Pipeline failures.
#[derive(Debug)]
pub enum PipelineError {
    /// The recorder rejected the spec/mode combination.
    Record(RecordError),
    /// The guest faulted during recording.
    GuestFault(rnr_machine::FaultKind),
    /// Replay failed or diverged.
    Replay(ReplayError),
    /// The replayed state did not match the recording.
    VerificationFailed,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Record(e) => write!(f, "recording setup failed: {e}"),
            PipelineError::GuestFault(k) => write!(f, "guest fault while recording: {k:?}"),
            PipelineError::Replay(e) => write!(f, "replay failed: {e}"),
            PipelineError::VerificationFailed => write!(f, "replayed state diverged from the recording"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<RecordError> for PipelineError {
    fn from(e: RecordError) -> PipelineError {
        PipelineError::Record(e)
    }
}

impl From<ReplayError> for PipelineError {
    fn from(e: ReplayError) -> PipelineError {
        PipelineError::Replay(e)
    }
}

/// Summary of the recording phase.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RecordSummary {
    /// Workload name.
    pub workload: String,
    /// Virtual cycles of the monitored recording.
    pub cycles: u64,
    /// Guest instructions retired.
    pub retired: u64,
    /// ROP alarms inserted into the log.
    pub alarms: usize,
    /// Input log size in bytes (uncompressed, exact).
    pub log_bytes: u64,
    /// Log bytes that are network payloads (Figure 6(a) dominant class).
    pub network_log_bytes: u64,
    /// BackRAS save/restore traffic in bytes (Figure 6(b)).
    pub backras_bytes: u64,
    /// Guest kernel context switches.
    pub context_switches: u64,
    /// True when the stall-on-alarm policy stopped the recorded VM.
    pub stalled: bool,
    /// Final guest privilege flag (non-zero = escalation happened).
    pub priv_flag: u64,
}

/// Summary of the checkpointing-replay phase.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ReplaySummary {
    /// Virtual cycles of the replay.
    pub cycles: u64,
    /// True when the final state digest matched the recording.
    pub verified: bool,
    /// Checkpoints taken.
    pub checkpoints_taken: u64,
    /// Maximum checkpoints retained at once.
    pub checkpoints_live_max: usize,
    /// Alarms seen in the log.
    pub alarms_seen: u64,
    /// Underflow alarms cancelled by evict matching (§4.6.2).
    pub underflows_cancelled: u64,
    /// Alarms escalated to alarm replayers.
    pub alarms_escalated: usize,
}

/// A serializable verdict summary.
#[derive(Debug, Clone, serde::Serialize)]
pub enum VerdictSummary {
    /// Benign, with the false-positive class.
    FalsePositive {
        /// `matched-evict`, `imperfect-nesting`, or `hardware-capacity`.
        class: String,
    },
    /// A confirmed ROP attack.
    RopAttack {
        /// Symbol of the vulnerable procedure.
        vulnerable: Option<String>,
        /// First gadget address.
        first_gadget: u64,
        /// Number of payload words decoded from the stack.
        chain_len: usize,
        /// Thread that executed the hijacked return.
        tid: u64,
    },
}

/// One resolved alarm.
#[derive(Debug)]
pub struct AlarmResolution {
    /// The recorded alarm.
    pub at_insn: u64,
    /// Cycle at which the recording logged it.
    pub at_cycle: u64,
    /// The CR's own virtual clock when it escalated the alarm (its measured
    /// position behind the recorded execution).
    pub cr_cycle: u64,
    /// The serializable summary.
    pub summary: VerdictSummary,
    /// The full verdict (reports, gadget chains).
    pub verdict: Verdict,
    /// Alarm-replay cycles spent resolving it.
    pub ar_cycles: u64,
    /// Block-cache counters of the resolving alarm replayer (wall-clock
    /// diagnostics only).
    pub ar_block_stats: rnr_machine::BlockStats,
}

/// The §8.4 detection-window analysis for the first confirmed attack.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DetectionWindow {
    /// Virtual cycle when the recording logged the alarm.
    pub alarm_at_cycle: u64,
    /// The CR's measured lag behind the recording at the alarm, in virtual
    /// cycles: its own clock when it consumed the alarm record minus the
    /// recording's clock when it logged it.
    pub cr_lag_cycles: u64,
    /// Window between the alarm and the AR's confirmation, in virtual
    /// cycles: the CR's measured lag at the alarm plus the AR's resolution
    /// time (recording and replay run concurrently on separate machines).
    pub window_cycles: u64,
    /// Same, in virtual seconds.
    pub window_secs: f64,
    /// Log bytes generated during the window (at the recording's log rate).
    pub log_bytes_in_window: u64,
    /// Checkpoints that must be retained to cover the window (+2, §8.4).
    pub checkpoints_needed: u64,
}

/// The full pipeline report.
#[derive(Debug)]
pub struct PipelineReport {
    /// Recording summary.
    pub record: RecordSummary,
    /// Checkpointing-replay summary.
    pub replay: ReplaySummary,
    /// Per-alarm resolutions, in log order.
    pub resolutions: Vec<AlarmResolution>,
    /// Detection window of the first confirmed attack, if any.
    pub detection: Option<DetectionWindow>,
    /// Basic-block cache counters summed over the recorder, the CR, and
    /// every alarm replayer. Wall-clock diagnostics only — deliberately NOT
    /// part of [`PipelineReport::to_json`], which must stay byte-identical
    /// across wall-clock knobs.
    pub block_stats: rnr_machine::BlockStats,
}

impl PipelineReport {
    /// Number of alarms confirmed as real attacks.
    pub fn attacks_confirmed(&self) -> usize {
        self.resolutions.iter().filter(|r| r.verdict.is_attack()).count()
    }

    /// Number of alarms resolved as false positives by the alarm replayer.
    pub fn false_positives_resolved(&self) -> usize {
        self.resolutions.len() - self.attacks_confirmed()
    }

    /// A machine-readable JSON summary (reports, EXPERIMENTS.md generation).
    pub fn to_json(&self) -> String {
        #[derive(serde::Serialize)]
        struct Doc<'a> {
            record: &'a RecordSummary,
            replay: &'a ReplaySummary,
            verdicts: Vec<&'a VerdictSummary>,
            detection: &'a Option<DetectionWindow>,
        }
        serde_json::to_string_pretty(&Doc {
            record: &self.record,
            replay: &self.replay,
            verdicts: self.resolutions.iter().map(|r| &r.summary).collect(),
            detection: &self.detection,
        })
        .expect("report serializes")
    }
}

/// The end-to-end RnR-Safe pipeline over one workload.
#[derive(Debug)]
pub struct Pipeline {
    spec: VmSpec,
    config: PipelineConfig,
}

impl Pipeline {
    /// A pipeline over `spec`.
    pub fn new(spec: VmSpec, config: PipelineConfig) -> Pipeline {
        Pipeline { spec, config }
    }

    /// Records, replays with verification, and resolves every alarm.
    ///
    /// # Errors
    ///
    /// Fails on recording setup errors, guest faults, replay divergence, or
    /// failed final-state verification.
    pub fn run(&self) -> Result<PipelineReport, PipelineError> {
        let cfg = &self.config;
        let mut rc = RecordConfig::new(RecordMode::Rec, cfg.seed, cfg.duration_insns);
        rc.ras_capacity = cfg.ras_capacity;
        rc.costs = cfg.costs;
        rc.stall_on_alarm = cfg.stall_on_alarm;
        rc.decode_cache = cfg.decode_cache;
        rc.block_engine = cfg.block_engine;
        let replay_cfg = ReplayConfig {
            checkpoint_interval: cfg.checkpoint_interval_secs.map(|s| (s * VIRTUAL_HZ as f64) as u64),
            retain: cfg.retain,
            ras_capacity: cfg.ras_capacity,
            costs: cfg.costs,
            decode_cache: cfg.decode_cache,
            block_engine: cfg.block_engine,
            ..ReplayConfig::default()
        };
        // Phases 1 + 2: monitored recording and checkpointing replay —
        // concurrent (the CR consumes the log as a live stream) or
        // sequential, with identical results.
        let (rec, cr_out) = if cfg.streaming {
            self.record_and_replay_streaming(rc, replay_cfg.clone())?
        } else {
            self.record_and_replay_sequential(rc, replay_cfg.clone())?
        };
        // Phase 3: alarm replay for every escalated case — on a bounded
        // worker pool when configured ("multiple ARs… in parallel", §6).
        // Resolution order (and therefore the report) stays deterministic.
        let ar = AlarmReplayer::new(&self.spec, Arc::clone(&rec.log)).with_config(replay_cfg);
        let resolve_one = |case: &rnr_replay::AlarmCase| -> Result<AlarmResolution, ReplayError> {
            let (verdict, ar_out) = ar.resolve(case)?;
            Ok(AlarmResolution {
                at_insn: case.alarm.at_insn,
                at_cycle: case.alarm.at_cycle,
                cr_cycle: case.cr_cycle,
                summary: summarize(&verdict),
                verdict,
                ar_cycles: ar_out.cycles,
                ar_block_stats: ar_out.vm().block_stats(),
            })
        };
        let cases = &cr_out.alarm_cases;
        let workers = ar_worker_count(cfg, cases.len());
        let resolutions: Vec<AlarmResolution> = if workers > 1 {
            let next = std::sync::atomic::AtomicUsize::new(0);
            let (tx, rx) = std::sync::mpsc::channel();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    let resolve_one = &resolve_one;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(case) = cases.get(i) else { break };
                        if tx.send((i, resolve_one(case))).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                let mut slots: Vec<Option<Result<AlarmResolution, ReplayError>>> =
                    (0..cases.len()).map(|_| None).collect();
                for (i, result) in rx {
                    slots[i] = Some(result);
                }
                slots
                    .into_iter()
                    .map(|s| s.expect("worker pool resolves every case"))
                    .collect::<Result<Vec<_>, _>>()
            })?
        } else {
            cases.iter().map(resolve_one).collect::<Result<Vec<_>, _>>()?
        };
        let detection = detection_window(cfg, &rec, &resolutions);
        let mut block_stats = rec.block_stats;
        block_stats.merge(&cr_out.vm().block_stats());
        for r in &resolutions {
            block_stats.merge(&r.ar_block_stats);
        }
        Ok(PipelineReport {
            record: RecordSummary {
                workload: self.spec.name.clone(),
                cycles: rec.cycles,
                retired: rec.retired,
                alarms: rec.alarms,
                log_bytes: rec.log.total_bytes(),
                network_log_bytes: rec.log.bytes_for(Category::Network),
                backras_bytes: rec.ras_counters.backras_bytes(),
                context_switches: rec.context_switches,
                stalled: rec.stalled,
                priv_flag: rec.priv_flag,
            },
            replay: ReplaySummary {
                cycles: cr_out.cycles,
                verified: true,
                checkpoints_taken: cr_out.checkpoints_taken,
                checkpoints_live_max: cr_out.checkpoints_live_max,
                alarms_seen: cr_out.alarms_seen,
                underflows_cancelled: cr_out.underflows_cancelled,
                alarms_escalated: cr_out.alarm_cases.len(),
            },
            resolutions,
            detection,
            block_stats,
        })
    }

    /// Phases 1 + 2, sequential: record to completion, then replay the
    /// finished log with digest verification armed up front.
    fn record_and_replay_sequential(
        &self,
        rc: RecordConfig,
        replay_cfg: ReplayConfig,
    ) -> Result<(RecordOutcome, ReplayOutcome), PipelineError> {
        let rec = Recorder::new(&self.spec, rc)?.run();
        if let Some(fault) = rec.fault {
            return Err(PipelineError::GuestFault(fault));
        }
        let mut cr = Replayer::new(&self.spec, Arc::clone(&rec.log), replay_cfg);
        cr.verify_against(rec.final_digest);
        let cr_out = cr.run()?;
        if cr_out.verified != Some(true) {
            return Err(PipelineError::VerificationFailed);
        }
        Ok((rec, cr_out))
    }

    /// Phases 1 + 2, concurrent: the recorder publishes each record to a
    /// live stream as it is logged, and the CR consumes the stream on this
    /// thread, trailing the recording (§4: recording and replay proceed in
    /// parallel). The final digest is only known once recording ends, so
    /// verification happens after the join; a guest fault while recording
    /// takes precedence over whatever truncated-log error it induced in
    /// the CR.
    fn record_and_replay_streaming(
        &self,
        rc: RecordConfig,
        replay_cfg: ReplayConfig,
    ) -> Result<(RecordOutcome, ReplayOutcome), PipelineError> {
        let mut recorder = Recorder::new(&self.spec, rc)?;
        let (sink, stream) = log_channel(DEFAULT_BATCH);
        recorder.stream_to(sink);
        let (rec, cr_result) = std::thread::scope(|scope| {
            let handle = scope.spawn(move || recorder.run());
            let cr = Replayer::new(&self.spec, stream, replay_cfg);
            let cr_result = cr.run();
            let rec = handle.join().expect("recorder thread panicked");
            (rec, cr_result)
        });
        if let Some(fault) = rec.fault {
            return Err(PipelineError::GuestFault(fault));
        }
        let cr_out = cr_result?;
        if cr_out.final_digest != rec.final_digest {
            return Err(PipelineError::VerificationFailed);
        }
        Ok((rec, cr_out))
    }
}

/// Pool size for the alarm-replay phase: 1 unless parallel alarm replay is
/// on, else the configured size (0 = the host's available parallelism),
/// never more than there are cases.
fn ar_worker_count(cfg: &PipelineConfig, cases: usize) -> usize {
    if !cfg.parallel_alarm_replay || cases <= 1 {
        return 1;
    }
    let configured = if cfg.ar_workers == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        cfg.ar_workers
    };
    configured.clamp(1, cases)
}

fn summarize(verdict: &Verdict) -> VerdictSummary {
    match verdict {
        Verdict::FalsePositive(kind) => VerdictSummary::FalsePositive {
            class: match kind {
                rnr_replay::FalsePositiveKind::MatchedEvict => "matched-evict".to_string(),
                rnr_replay::FalsePositiveKind::ImperfectNesting { .. } => "imperfect-nesting".to_string(),
                rnr_replay::FalsePositiveKind::HardwareCapacity => "hardware-capacity".to_string(),
            },
        },
        Verdict::RopAttack(report) => VerdictSummary::RopAttack {
            vulnerable: report.vulnerable_symbol.clone(),
            first_gadget: report.actual_target,
            chain_len: report.gadget_chain.len(),
            tid: report.tid.0,
        },
    }
}

fn detection_window(
    cfg: &PipelineConfig,
    rec: &RecordOutcome,
    resolutions: &[AlarmResolution],
) -> Option<DetectionWindow> {
    let first_attack = resolutions.iter().find(|r| r.verdict.is_attack())?;
    // The CR runs concurrently with recording; its lag at the alarm is
    // measured directly — its own clock position when it consumed the alarm
    // record, minus the recording's clock when it logged it.
    let cr_lag = first_attack.cr_cycle.saturating_sub(first_attack.at_cycle);
    let window_cycles = cr_lag + first_attack.ar_cycles;
    let log_rate = rec.log.total_bytes() as f64 / rec.cycles.max(1) as f64;
    let interval = cfg.checkpoint_interval_secs.map(|s| (s * VIRTUAL_HZ as f64) as u64).unwrap_or(VIRTUAL_HZ);
    Some(DetectionWindow {
        alarm_at_cycle: first_attack.at_cycle,
        cr_lag_cycles: cr_lag,
        window_cycles,
        window_secs: window_cycles as f64 / VIRTUAL_HZ as f64,
        log_bytes_in_window: (log_rate * window_cycles as f64) as u64,
        checkpoints_needed: window_cycles.div_ceil(interval.max(1)) + 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnr_attacks::mount_kernel_rop;
    use rnr_workloads::{Workload, WorkloadParams};

    #[test]
    fn benign_pipeline_verifies_and_clears_alarms() {
        let spec = Workload::Mysql.spec(false);
        let cfg = PipelineConfig { duration_insns: 250_000, ..PipelineConfig::default() };
        let report = Pipeline::new(spec, cfg).run().unwrap();
        assert!(report.replay.verified);
        assert_eq!(report.attacks_confirmed(), 0);
        assert_eq!(report.record.priv_flag, 0);
        assert!(report.detection.is_none());
        // The JSON report round-trips through serde.
        let json = report.to_json();
        assert!(json.contains("\"workload\""));
    }

    #[test]
    fn attack_pipeline_confirms_rop_and_measures_window() {
        let (spec, plan) = mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).unwrap();
        let cfg = PipelineConfig {
            duration_insns: 900_000,
            checkpoint_interval_secs: Some(0.125),
            ..PipelineConfig::default()
        };
        let report = Pipeline::new(spec, cfg).run().unwrap();
        assert!(report.attacks_confirmed() >= 1, "{:?}", report.replay);
        let attack = report.resolutions.iter().find(|r| r.verdict.is_attack()).unwrap();
        match &attack.summary {
            VerdictSummary::RopAttack { vulnerable, first_gadget, .. } => {
                assert_eq!(vulnerable.as_deref(), Some("proc_msg"));
                assert_eq!(*first_gadget, plan.g1);
            }
            other => panic!("unexpected {other:?}"),
        }
        let window = report.detection.expect("attack implies a detection window");
        assert!(window.window_cycles > 0);
        assert!(window.checkpoints_needed >= 2);
        // The recorded run escalated privilege (continue policy)...
        assert_eq!(report.record.priv_flag, 0x1337);
    }

    #[test]
    fn pipeline_error_display() {
        let e = PipelineError::VerificationFailed;
        assert!(e.to_string().contains("diverged"));
    }
}
