//! The full RnR-Safe pipeline: record → checkpointing replay → alarm replay.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use rnr_hypervisor::{RecordConfig, RecordError, RecordMode, RecordOutcome, Recorder, VmSpec};
use rnr_log::{
    log_channel_with, Category, DurableLogConfig, DurableWriter, FaultPlan, InputLog, DEFAULT_BATCH,
};
use rnr_machine::{BlockStats, CostModel, SharedPageCache};
use rnr_ras::RasConfig;
use rnr_replay::{
    replay_spans, AlarmCase, AlarmReplayer, ReplayConfig, ReplayError, ReplayOutcome, Replayer, SpanFeed,
    Verdict, VIRTUAL_HZ,
};

/// Attempts the AR supervisor makes per alarm case before giving up and
/// shipping a partial report.
const MAX_CASE_ATTEMPTS: u32 = 3;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Seed for all host non-determinism.
    pub seed: u64,
    /// Guest instructions to record.
    pub duration_insns: u64,
    /// RAS capacity.
    pub ras_capacity: usize,
    /// Checkpoint interval in virtual seconds (the paper's `RepChkN`
    /// naming: 1.0 = RepChk1). `None` replays without periodic checkpoints.
    pub checkpoint_interval_secs: Option<f64>,
    /// Checkpoints retained (window + 2, §8.4).
    pub retain: usize,
    /// Cycle cost model shared by recorder and replayers.
    pub costs: CostModel,
    /// Stall the recorded VM at the first alarm (§3's risk-tolerance knob)
    /// instead of letting it continue while the replayers investigate.
    pub stall_on_alarm: bool,
    /// Resolve escalated alarms on parallel alarm replayers ("our design
    /// allows running multiple ARs concurrently", §6).
    pub parallel_alarm_replay: bool,
    /// Alarm-replayer pool size when `parallel_alarm_replay` is set; `0`
    /// sizes the pool to the host's available parallelism. Resolution order
    /// (and therefore the report) is deterministic for any pool size.
    pub ar_workers: usize,
    /// Run the CR concurrently with the recorder, consuming the input log
    /// as a live stream (the paper's deployment: recording and replay
    /// proceed in parallel on separate machines, §4). `false` records to
    /// completion first — the result is identical either way.
    pub streaming: bool,
    /// Use the predecoded instruction cache in the recorder and all
    /// replayers (wall-clock optimization; virtual cycles, digests, and
    /// verdicts are identical either way).
    pub decode_cache: bool,
    /// Execute whole cached basic blocks between event horizons in the
    /// recorder and all replayers (wall-clock optimization; virtual cycles,
    /// digests, and verdicts are identical either way).
    pub block_engine: bool,
    /// Chain hot blocks into superblock traces in the recorder and all
    /// replayers (wall-clock optimization; virtual cycles, digests, and
    /// verdicts are identical either way). Requires `block_engine`.
    pub superblocks: bool,
    /// Partition verification replay across this many span workers along
    /// the recorder's seed stream (DESIGN.md §11). `0` replays serially.
    /// Wall-clock only: the report, logs, virtual cycles, digests, and
    /// recovery accounting are byte-identical for every worker count.
    pub parallel_spans: usize,
    /// Deterministic fault injections (transport damage, injected
    /// divergences, AR panics/kills). Empty by default; with an empty plan
    /// the pipeline's logs, digests, verdicts, and `to_json()` output are
    /// byte-identical to a run without any fault machinery.
    pub fault_plan: FaultPlan,
    /// Persist the recording to a durable segment store (DESIGN.md §13) and
    /// back the CR's refetch recovery with it: damaged or dropped spans are
    /// re-read from sealed segments first, falling back to the recorder's
    /// in-memory retained store. The plan's disk faults are injected against
    /// this store. Resilience-only knob — the report is byte-identical with
    /// persistence on or off.
    pub durable_log: Option<DurableLogConfig>,
    /// Arm the Variable Record Table memory-safety detector on the recorded
    /// VM (DESIGN.md §15) and give the alarm replayers its parameters for
    /// precise classification. `None` records without the second detector
    /// family.
    pub vrt: Option<rnr_vrt::VrtParams>,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            seed: 42,
            duration_insns: 1_000_000,
            ras_capacity: RasConfig::DEFAULT_CAPACITY,
            checkpoint_interval_secs: Some(1.0),
            retain: 8,
            costs: CostModel::default(),
            stall_on_alarm: false,
            parallel_alarm_replay: true,
            ar_workers: 0,
            streaming: true,
            decode_cache: true,
            block_engine: true,
            superblocks: true,
            parallel_spans: 0,
            fault_plan: FaultPlan::default(),
            durable_log: None,
            vrt: None,
        }
    }
}

/// Pipeline failures.
#[derive(Debug)]
pub enum PipelineError {
    /// The recorder rejected the spec/mode combination.
    Record(RecordError),
    /// The guest faulted during recording.
    GuestFault(rnr_machine::FaultKind),
    /// Replay failed or diverged.
    Replay(ReplayError),
    /// The replayed state did not match the recording.
    VerificationFailed,
    /// The recorder thread panicked; the payload is the panic message.
    RecorderPanicked(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Record(e) => write!(f, "recording setup failed: {e}"),
            PipelineError::GuestFault(k) => write!(f, "guest fault while recording: {k:?}"),
            PipelineError::Replay(e) => write!(f, "replay failed: {e}"),
            PipelineError::VerificationFailed => write!(f, "replayed state diverged from the recording"),
            PipelineError::RecorderPanicked(msg) => write!(f, "recorder thread panicked: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<RecordError> for PipelineError {
    fn from(e: RecordError) -> PipelineError {
        PipelineError::Record(e)
    }
}

impl From<ReplayError> for PipelineError {
    fn from(e: ReplayError) -> PipelineError {
        PipelineError::Replay(e)
    }
}

/// Summary of the recording phase.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RecordSummary {
    /// Workload name.
    pub workload: String,
    /// Virtual cycles of the monitored recording.
    pub cycles: u64,
    /// Guest instructions retired.
    pub retired: u64,
    /// ROP alarms inserted into the log.
    pub alarms: usize,
    /// Input log size in bytes (uncompressed, exact).
    pub log_bytes: u64,
    /// Log bytes that are network payloads (Figure 6(a) dominant class).
    pub network_log_bytes: u64,
    /// BackRAS save/restore traffic in bytes (Figure 6(b)).
    pub backras_bytes: u64,
    /// Guest kernel context switches.
    pub context_switches: u64,
    /// True when the stall-on-alarm policy stopped the recorded VM.
    pub stalled: bool,
    /// Final guest privilege flag (non-zero = escalation happened).
    pub priv_flag: u64,
}

/// Summary of the checkpointing-replay phase.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ReplaySummary {
    /// Virtual cycles of the replay.
    pub cycles: u64,
    /// True when the final state digest matched the recording.
    pub verified: bool,
    /// Checkpoints taken.
    pub checkpoints_taken: u64,
    /// Maximum checkpoints retained at once.
    pub checkpoints_live_max: usize,
    /// Alarms seen in the log.
    pub alarms_seen: u64,
    /// Underflow alarms cancelled by evict matching (§4.6.2).
    pub underflows_cancelled: u64,
    /// Alarms escalated to alarm replayers.
    pub alarms_escalated: usize,
}

/// A serializable verdict summary.
#[derive(Debug, Clone, serde::Serialize)]
pub enum VerdictSummary {
    /// Benign, with the false-positive class: `matched-evict`,
    /// `imperfect-nesting`, or `hardware-capacity` from the RAS family;
    /// `coarse-bounds`, `evicted-region`, or `stale-frame` from the VRT
    /// family (DESIGN.md §15).
    FalsePositive {
        /// The false-positive class label.
        class: String,
    },
    /// A confirmed ROP attack.
    RopAttack {
        /// Symbol of the vulnerable procedure.
        vulnerable: Option<String>,
        /// First gadget address.
        first_gadget: u64,
        /// Number of payload words decoded from the stack.
        chain_len: usize,
        /// Thread that executed the hijacked return.
        tid: u64,
    },
    /// A confirmed memory-safety violation (VRT family, DESIGN.md §15):
    /// `heap-overflow` or `use-after-return`.
    MemoryViolation {
        /// The violation class label.
        class: String,
        /// First byte of the offending store.
        addr: u64,
        /// The escaped allocation (`[base, len]`), when one exists.
        region: Option<(u64, u64)>,
        /// Thread that executed the store.
        tid: u64,
    },
}

/// One resolved alarm.
#[derive(Debug)]
pub struct AlarmResolution {
    /// The recorded alarm.
    pub at_insn: u64,
    /// Cycle at which the recording logged it.
    pub at_cycle: u64,
    /// The CR's own virtual clock when it escalated the alarm (its measured
    /// position behind the recorded execution).
    pub cr_cycle: u64,
    /// The serializable summary.
    pub summary: VerdictSummary,
    /// The full verdict (reports, gadget chains).
    pub verdict: Verdict,
    /// Alarm-replay cycles spent resolving it.
    pub ar_cycles: u64,
    /// Block-cache counters of the resolving alarm replayer (wall-clock
    /// diagnostics only).
    pub ar_block_stats: rnr_machine::BlockStats,
}

/// The §8.4 detection-window analysis for the first confirmed attack.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DetectionWindow {
    /// Virtual cycle when the recording logged the alarm.
    pub alarm_at_cycle: u64,
    /// The CR's measured lag behind the recording at the alarm, in virtual
    /// cycles: its own clock when it consumed the alarm record minus the
    /// recording's clock when it logged it.
    pub cr_lag_cycles: u64,
    /// Window between the alarm and the AR's confirmation, in virtual
    /// cycles: the CR's measured lag at the alarm plus the AR's resolution
    /// time (recording and replay run concurrently on separate machines).
    pub window_cycles: u64,
    /// Same, in virtual seconds.
    pub window_secs: f64,
    /// Log bytes generated during the window (at the recording's log rate).
    pub log_bytes_in_window: u64,
    /// Checkpoints that must be retained to cover the window (+2, §8.4).
    pub checkpoints_needed: u64,
}

/// An alarm case the supervisor could not resolve after every retry. The
/// rest of the report still ships — one failed alarm never discards the
/// other verdicts.
#[derive(Debug, Clone)]
pub struct FailedCase {
    /// Index of the alarm record in the input log.
    pub alarm_index: usize,
    /// Retired-instruction count of the alarm.
    pub at_insn: u64,
    /// Resolution attempts made.
    pub attempts: u32,
    /// The last error or panic message.
    pub error: String,
}

/// What the pipeline's fault-recovery machinery did during one run. All
/// zeros on a clean run; excluded from [`PipelineReport::to_json`] like
/// `block_stats`, because recovery activity is a wall-clock/transport
/// matter that must never change the report.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Checkpoint rewinds performed by the CR.
    pub cr_rewinds: u64,
    /// Instructions the CR re-executed across rewinds.
    pub cr_rewound_insns: u64,
    /// Divergence-quarantined spans re-executed with the block engine off.
    pub block_fallback_spans: u64,
    /// Transport-level detections and healings (checksum failures,
    /// re-fetched batches, healed reorders, virtual-time backoff).
    pub transport: rnr_log::TransportStats,
    /// The CR's rewind trail, in order.
    pub rewind_trail: Vec<rnr_replay::RewindStep>,
    /// AR case retries beyond each first attempt.
    pub ar_case_retries: u64,
    /// AR panics caught and isolated by the supervisor.
    pub ar_panics_caught: u64,
    /// AR pool workers lost (their cases were re-resolved inline).
    pub ar_workers_lost: u64,
    /// Cases that stayed unresolved after every retry (partial report).
    pub failed_cases: Vec<FailedCase>,
}

impl RecoveryReport {
    /// True when any fault was detected, healed, or worked around.
    pub fn any(&self) -> bool {
        self.cr_rewinds > 0
            || self.block_fallback_spans > 0
            || self.transport.faults_detected > 0
            || self.transport.duplicates_dropped > 0
            || self.transport.reorders_healed > 0
            || self.transport.batches_refetched > 0
            || self.ar_case_retries > 0
            || self.ar_panics_caught > 0
            || self.ar_workers_lost > 0
            || !self.failed_cases.is_empty()
    }
}

/// The full pipeline report.
#[derive(Debug)]
pub struct PipelineReport {
    /// Recording summary.
    pub record: RecordSummary,
    /// Checkpointing-replay summary.
    pub replay: ReplaySummary,
    /// Per-alarm resolutions, in log order.
    pub resolutions: Vec<AlarmResolution>,
    /// Detection window of the first confirmed attack, if any.
    pub detection: Option<DetectionWindow>,
    /// Basic-block cache counters summed over the recorder, the CR, and
    /// every alarm replayer. Wall-clock diagnostics only — deliberately NOT
    /// part of [`PipelineReport::to_json`], which must stay byte-identical
    /// across wall-clock knobs.
    pub block_stats: rnr_machine::BlockStats,
    /// Fault-recovery activity. Like `block_stats`, deliberately NOT part
    /// of [`PipelineReport::to_json`]: a recovered run's report is
    /// byte-identical to a fault-free run's.
    pub recovery: RecoveryReport,
}

impl PipelineReport {
    /// Number of alarms confirmed as real attacks.
    pub fn attacks_confirmed(&self) -> usize {
        self.resolutions.iter().filter(|r| r.verdict.is_attack()).count()
    }

    /// Number of alarms resolved as false positives by the alarm replayer.
    pub fn false_positives_resolved(&self) -> usize {
        self.resolutions.len() - self.attacks_confirmed()
    }

    /// A machine-readable JSON summary (reports, EXPERIMENTS.md generation).
    pub fn to_json(&self) -> String {
        #[derive(serde::Serialize)]
        struct Doc<'a> {
            record: &'a RecordSummary,
            replay: &'a ReplaySummary,
            verdicts: Vec<&'a VerdictSummary>,
            detection: &'a Option<DetectionWindow>,
        }
        serde_json::to_string_pretty(&Doc {
            record: &self.record,
            replay: &self.replay,
            verdicts: self.resolutions.iter().map(|r| &r.summary).collect(),
            detection: &self.detection,
        })
        .expect("report serializes")
    }
}

/// The end-to-end RnR-Safe pipeline over one workload.
#[derive(Debug)]
pub struct Pipeline {
    spec: VmSpec,
    config: PipelineConfig,
}

impl Pipeline {
    /// A pipeline over `spec`.
    pub fn new(spec: VmSpec, config: PipelineConfig) -> Pipeline {
        Pipeline { spec, config }
    }

    /// Records, replays with verification, and resolves every alarm.
    ///
    /// # Errors
    ///
    /// Fails on recording setup errors, guest faults, replay divergence, or
    /// failed final-state verification.
    pub fn run(&self) -> Result<PipelineReport, PipelineError> {
        let cfg = &self.config;
        let rc = record_config(cfg, (cfg.parallel_spans > 0).then(|| span_seed_cadence(cfg)));
        let replay_cfg = replay_config(cfg);
        // One read-mostly decoded-block pool for the whole run: the
        // recorder, the CR (or its span workers), and every alarm replayer
        // publish and adopt page decodes through it (wall-clock only; every
        // consumer revalidates against its own page contents).
        let shared = Arc::new(SharedPageCache::new());
        // Phases 1 + 2: monitored recording and checkpointing replay —
        // concurrent (the CR consumes the log as a live stream) or
        // sequential, with identical results.
        let (rec, cr_out, cr_block_stats) = if cfg.streaming {
            self.record_and_replay_streaming(rc, replay_cfg.clone(), &shared)?
        } else {
            self.record_and_replay_sequential(rc, replay_cfg.clone(), &shared)?
        };
        // Phase 3: alarm replay for every escalated case — on a bounded,
        // supervised worker pool when configured ("multiple ARs… in
        // parallel", §6). Each case is resolved under `catch_unwind` with
        // bounded retries; a killed worker's abandoned cases are
        // re-resolved inline. Resolution order (and therefore the report)
        // stays deterministic.
        let resolver = CaseResolver::new(
            &self.spec,
            Arc::clone(&rec.log),
            ar_replay_config(&replay_cfg),
            Arc::clone(&shared),
            &cfg.fault_plan,
        );
        let cases = &cr_out.alarm_cases;
        let workers = ar_worker_count(cfg, cases.len());
        let kill_at = cfg.fault_plan.kill_ar_worker_at_case;
        let workers_lost = AtomicU64::new(0);
        let mut slots: Vec<Option<Result<AlarmResolution, FailedCase>>> = if workers > 1 {
            let next = AtomicUsize::new(0);
            let killed = AtomicBool::new(false);
            let (tx, rx) = std::sync::mpsc::channel();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    let killed = &killed;
                    let resolver = &resolver;
                    let workers_lost = &workers_lost;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(case) = cases.get(i) else { break };
                        // The fault plan may kill one worker as it picks
                        // up this case: it abandons the case unresolved
                        // and exits; the supervisor fills the hole below.
                        if kill_at == Some(i) && !killed.swap(true, Ordering::Relaxed) {
                            workers_lost.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        if tx.send((i, resolver.resolve(i, case))).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                let mut slots: Vec<Option<_>> = (0..cases.len()).map(|_| None).collect();
                for (i, result) in rx {
                    slots[i] = Some(result);
                }
                slots
            })
        } else {
            // Inline resolution: the "pool" of one is the supervisor
            // itself, so a kill spec is recorded and the case resolved
            // immediately anyway.
            if kill_at.is_some_and(|k| k < cases.len()) {
                workers_lost.fetch_add(1, Ordering::Relaxed);
            }
            cases.iter().enumerate().map(|(i, case)| Some(resolver.resolve(i, case))).collect()
        };
        // Cases abandoned by a killed worker are re-resolved inline — the
        // report never silently drops a verdict.
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(resolver.resolve(i, &cases[i]));
            }
        }
        let outcomes: Vec<Result<AlarmResolution, FailedCase>> = slots.into_iter().flatten().collect();
        let (ar_retries, ar_panics) = resolver.counters();
        let ar = ArStats {
            retries: ar_retries,
            panics: ar_panics,
            workers_lost: workers_lost.load(Ordering::Relaxed),
        };
        Ok(finish_report(self.spec.name.clone(), cfg, &rec, &cr_out, cr_block_stats, outcomes, ar))
    }

    /// Phases 1 + 2, sequential: record to completion, then replay the
    /// finished log with digest verification armed up front. Returns the
    /// recording, the CR outcome, and the CR phase's block-cache counters
    /// (summed across span workers when replay is parallel).
    fn record_and_replay_sequential(
        &self,
        rc: RecordConfig,
        replay_cfg: ReplayConfig,
        shared: &Arc<SharedPageCache>,
    ) -> Result<(RecordOutcome, ReplayOutcome, BlockStats), PipelineError> {
        let writer = durable_writer_for(self.config.durable_log.as_ref(), &self.config.fault_plan)?;
        let rec = run_recorder_sequential(&self.spec, rc, shared, writer)?;
        if replay_cfg.parallel_spans > 0 {
            let feed = SpanFeed::Complete { log: Arc::clone(&rec.log), seeds: rec.span_seeds.clone() };
            let par = replay_spans(&self.spec, feed, &replay_cfg, Some(rec.final_digest), Some(shared))?;
            if par.outcome.verified != Some(true) {
                return Err(PipelineError::VerificationFailed);
            }
            return Ok((rec, par.outcome, par.block_stats));
        }
        let mut cr = Replayer::new(&self.spec, Arc::clone(&rec.log), replay_cfg);
        cr.attach_shared_cache(Arc::clone(shared));
        cr.verify_against(rec.final_digest);
        let cr_out = cr.run()?;
        if cr_out.verified != Some(true) {
            return Err(PipelineError::VerificationFailed);
        }
        let stats = cr_out.vm().block_stats();
        Ok((rec, cr_out, stats))
    }

    /// Phases 1 + 2, concurrent: the recorder publishes each record to a
    /// live stream as it is logged, and the CR consumes the stream on this
    /// thread, trailing the recording (§4: recording and replay proceed in
    /// parallel). The final digest is only known once recording ends, so
    /// verification happens after the join; a guest fault while recording
    /// takes precedence over whatever truncated-log error it induced in
    /// the CR.
    fn record_and_replay_streaming(
        &self,
        rc: RecordConfig,
        replay_cfg: ReplayConfig,
        shared: &Arc<SharedPageCache>,
    ) -> Result<(RecordOutcome, ReplayOutcome, BlockStats), PipelineError> {
        let mut recorder = Recorder::new(&self.spec, rc)?;
        recorder.attach_shared_cache(Arc::clone(shared));
        let (mut sink, stream) = log_channel_with(DEFAULT_BATCH, &self.config.fault_plan);
        if let Some(writer) = durable_writer_for(self.config.durable_log.as_ref(), &self.config.fault_plan)? {
            // Sink-side persistence: each pristine frame is written to disk
            // as it is flushed, *before* transport injection can damage it.
            sink.persist_to(writer);
        }
        recorder.stream_to(sink);
        let (rec_result, cr_result) = if replay_cfg.parallel_spans > 0 {
            // Parallel CR: seeds stream from the recorder alongside the
            // records, and span workers launch as soon as both sides of a
            // boundary have been observed.
            let (seed_tx, seed_rx) = std::sync::mpsc::channel();
            recorder.seed_to(seed_tx);
            std::thread::scope(|scope| {
                let handle = scope.spawn(move || catch_unwind(AssertUnwindSafe(move || recorder.run())));
                let feed = SpanFeed::Streaming { stream: Box::new(stream), seed_rx };
                let cr_result = replay_spans(&self.spec, feed, &replay_cfg, None, Some(shared))
                    .map(|par| (par.outcome, par.block_stats));
                let rec_result = handle.join().unwrap_or_else(Err);
                (rec_result, cr_result)
            })
        } else {
            std::thread::scope(|scope| {
                let handle = scope.spawn(move || catch_unwind(AssertUnwindSafe(move || recorder.run())));
                let mut cr = Replayer::new(&self.spec, stream, replay_cfg);
                cr.attach_shared_cache(Arc::clone(shared));
                let cr_result = cr.run().map(|out| {
                    let stats = out.vm().block_stats();
                    (out, stats)
                });
                // `catch_unwind` inside the thread carries any recorder panic
                // out as a value, so `join` itself cannot fail here; fold the
                // two layers into one.
                let rec_result = handle.join().unwrap_or_else(Err);
                (rec_result, cr_result)
            })
        };
        // Precedence: a recorder panic explains everything downstream
        // (including whatever truncated-log error it induced in the CR),
        // then a guest fault, then the CR's own result.
        let rec = match rec_result {
            Ok(rec) => rec,
            Err(payload) => return Err(PipelineError::RecorderPanicked(panic_text(payload.as_ref()))),
        };
        if let Some(fault) = rec.fault {
            return Err(PipelineError::GuestFault(fault));
        }
        let (mut cr_out, cr_stats) = cr_result?;
        cr_out.verified = Some(cr_out.final_digest == rec.final_digest);
        if cr_out.verified != Some(true) {
            return Err(PipelineError::VerificationFailed);
        }
        Ok((rec, cr_out, cr_stats))
    }
}

/// The recorder configuration a [`PipelineConfig`] implies. `span_cadence`
/// arms seed capture for parallel replay; seed capture is pure reads, so
/// the recording is byte-identical whether or not it is set.
pub(crate) fn record_config(cfg: &PipelineConfig, span_cadence: Option<u64>) -> RecordConfig {
    let mut rc = RecordConfig::new(RecordMode::Rec, cfg.seed, cfg.duration_insns);
    rc.ras_capacity = cfg.ras_capacity;
    rc.costs = cfg.costs;
    rc.stall_on_alarm = cfg.stall_on_alarm;
    rc.decode_cache = cfg.decode_cache;
    rc.block_engine = cfg.block_engine;
    rc.superblocks = cfg.superblocks;
    rc.span_seed_every_insns = span_cadence;
    rc.vrt = cfg.vrt.clone();
    rc
}

/// The CR configuration a [`PipelineConfig`] implies. The CR is supervised:
/// it retains recovery points and heals transport faults and transient
/// divergences by rewinding to the last good checkpoint (recovery activity
/// never changes the report — see [`RecoveryReport`]).
pub(crate) fn replay_config(cfg: &PipelineConfig) -> ReplayConfig {
    ReplayConfig {
        checkpoint_interval: cfg.checkpoint_interval_secs.map(|s| (s * VIRTUAL_HZ as f64) as u64),
        retain: cfg.retain,
        ras_capacity: cfg.ras_capacity,
        costs: cfg.costs,
        decode_cache: cfg.decode_cache,
        block_engine: cfg.block_engine,
        superblocks: cfg.superblocks,
        resilient: true,
        parallel_spans: cfg.parallel_spans,
        fault_plan: cfg.fault_plan.clone(),
        durable_log: cfg.durable_log.clone(),
        vrt: cfg.vrt.clone(),
        ..ReplayConfig::default()
    }
}

/// The alarm replayers' configuration, scrubbed from the CR's: the plan's
/// injections target the CR and must not re-fire during alarm replay, and
/// an AR surfaces divergence as evidence instead of healing it.
pub(crate) fn ar_replay_config(replay_cfg: &ReplayConfig) -> ReplayConfig {
    ReplayConfig {
        resilient: false,
        fault_plan: FaultPlan::default(),
        durable_log: None,
        ..replay_cfg.clone()
    }
}

/// The fault-plan-aware durable segment writer when a `durable_log` knob is
/// set: every record path persists through this, so the plan's disk faults
/// hit the same sealed segments in any mode.
pub(crate) fn durable_writer_for(
    durable: Option<&DurableLogConfig>,
    plan: &FaultPlan,
) -> Result<Option<DurableWriter>, PipelineError> {
    match durable {
        Some(d) => DurableWriter::create(d.clone(), plan)
            .map(Some)
            .map_err(|e| PipelineError::Record(RecordError::DurableLog(e.to_string()))),
        None => Ok(None),
    }
}

/// Records to completion on the calling thread, with recorder panics caught
/// and guest faults surfaced as structured errors. The shared cache and the
/// optional durable writer are attached before the run.
pub(crate) fn run_recorder_sequential(
    spec: &VmSpec,
    rc: RecordConfig,
    shared: &Arc<SharedPageCache>,
    writer: Option<DurableWriter>,
) -> Result<RecordOutcome, PipelineError> {
    let mut recorder = Recorder::new(spec, rc)?;
    recorder.attach_shared_cache(Arc::clone(shared));
    if let Some(writer) = writer {
        recorder.persist_to(writer);
    }
    let rec = match catch_unwind(AssertUnwindSafe(move || recorder.run())) {
        Ok(rec) => rec,
        Err(payload) => return Err(PipelineError::RecorderPanicked(panic_text(payload.as_ref()))),
    };
    if let Some(fault) = rec.fault {
        return Err(PipelineError::GuestFault(fault));
    }
    Ok(rec)
}

/// The supervised per-case alarm resolver shared by [`Pipeline::run`] and
/// the replay farm: one [`AlarmReplayer`] over the finished recording, a
/// bounded retry loop per case under `catch_unwind`, and the fault plan's
/// AR injections (panic, transient divergence) fired on first attempts
/// only. Thread-safe: any number of workers may call
/// [`CaseResolver::resolve`] concurrently; retry/panic accounting is
/// atomic.
pub(crate) struct CaseResolver<'a> {
    ar: AlarmReplayer<'a>,
    panic_case: Option<usize>,
    divergence_case: Option<usize>,
    retries: AtomicU64,
    panics: AtomicU64,
}

impl<'a> CaseResolver<'a> {
    /// A resolver over `log` with the scrubbed AR config (see
    /// [`ar_replay_config`]); `plan` supplies the AR-targeted injections.
    pub(crate) fn new(
        spec: &'a VmSpec,
        log: Arc<InputLog>,
        ar_cfg: ReplayConfig,
        shared: Arc<SharedPageCache>,
        plan: &FaultPlan,
    ) -> CaseResolver<'a> {
        CaseResolver {
            ar: AlarmReplayer::new(spec, log).with_config(ar_cfg).with_shared_cache(shared),
            panic_case: plan.ar_panic_case,
            divergence_case: plan.ar_divergence_case,
            retries: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        }
    }

    fn resolve_once(&self, i: usize, case: &AlarmCase, attempt: u32) -> Result<AlarmResolution, String> {
        // Injections fire on the first attempt only: a retry of the
        // same case models the transient fault having cleared.
        if attempt == 0 && self.panic_case == Some(i) {
            panic!("injected alarm-replayer panic (fault plan)");
        }
        if attempt == 0 && self.divergence_case == Some(i) {
            return Err("injected transient alarm-replay divergence (fault plan)".to_string());
        }
        let (verdict, ar_out) = self.ar.resolve(case).map_err(|e| e.to_string())?;
        Ok(AlarmResolution {
            at_insn: case.at_insn(),
            at_cycle: case.at_cycle(),
            cr_cycle: case.cr_cycle,
            summary: summarize(&verdict),
            verdict,
            ar_cycles: ar_out.cycles,
            ar_block_stats: ar_out.vm().block_stats(),
        })
    }

    /// Resolves case `i` with bounded retries; a case that stays
    /// unresolved ships as a [`FailedCase`] instead of discarding the rest
    /// of the report.
    pub(crate) fn resolve(&self, i: usize, case: &AlarmCase) -> Result<AlarmResolution, FailedCase> {
        let mut last_error = String::new();
        for attempt in 0..MAX_CASE_ATTEMPTS {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            match catch_unwind(AssertUnwindSafe(|| self.resolve_once(i, case, attempt))) {
                Ok(Ok(resolution)) => return Ok(resolution),
                Ok(Err(msg)) => last_error = msg,
                Err(payload) => {
                    self.panics.fetch_add(1, Ordering::Relaxed);
                    last_error = format!("panic: {}", panic_text(payload.as_ref()));
                }
            }
        }
        Err(FailedCase {
            alarm_index: i,
            at_insn: case.at_insn(),
            attempts: MAX_CASE_ATTEMPTS,
            error: last_error,
        })
    }

    /// (retries, panics) accounting so far.
    pub(crate) fn counters(&self) -> (u64, u64) {
        (self.retries.load(Ordering::Relaxed), self.panics.load(Ordering::Relaxed))
    }
}

/// AR-phase recovery accounting for [`finish_report`].
pub(crate) struct ArStats {
    pub(crate) retries: u64,
    pub(crate) panics: u64,
    pub(crate) workers_lost: u64,
}

/// Assembles the final [`PipelineReport`] from the three phases' outputs.
/// Shared by [`Pipeline::run`] and the replay farm so both produce
/// byte-identical reports from identical phase results. `outcomes` must be
/// in alarm-case order.
pub(crate) fn finish_report(
    workload: String,
    cfg: &PipelineConfig,
    rec: &RecordOutcome,
    cr_out: &ReplayOutcome,
    cr_block_stats: BlockStats,
    outcomes: Vec<Result<AlarmResolution, FailedCase>>,
    ar: ArStats,
) -> PipelineReport {
    let mut resolutions = Vec::with_capacity(outcomes.len());
    let mut failed_cases = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(resolution) => resolutions.push(resolution),
            Err(failed) => failed_cases.push(failed),
        }
    }
    let detection = detection_window(cfg, rec, &resolutions);
    let mut block_stats = rec.block_stats;
    block_stats.merge(&cr_block_stats);
    for r in &resolutions {
        block_stats.merge(&r.ar_block_stats);
    }
    let recovery = RecoveryReport {
        cr_rewinds: cr_out.recovery.rewinds,
        cr_rewound_insns: cr_out.recovery.rewound_insns,
        block_fallback_spans: cr_out.recovery.block_fallback_spans,
        transport: cr_out.recovery.transport,
        rewind_trail: cr_out.recovery.trail.clone(),
        ar_case_retries: ar.retries,
        ar_panics_caught: ar.panics,
        ar_workers_lost: ar.workers_lost,
        failed_cases,
    };
    PipelineReport {
        record: RecordSummary {
            workload,
            cycles: rec.cycles,
            retired: rec.retired,
            alarms: rec.alarms,
            log_bytes: rec.log.total_bytes(),
            network_log_bytes: rec.log.bytes_for(Category::Network),
            backras_bytes: rec.ras_counters.backras_bytes(),
            context_switches: rec.context_switches,
            stalled: rec.stalled,
            priv_flag: rec.priv_flag,
        },
        replay: ReplaySummary {
            cycles: cr_out.cycles,
            verified: cr_out.verified == Some(true),
            checkpoints_taken: cr_out.checkpoints_taken,
            checkpoints_live_max: cr_out.checkpoints_live_max,
            alarms_seen: cr_out.alarms_seen,
            underflows_cancelled: cr_out.underflows_cancelled,
            alarms_escalated: cr_out.alarm_cases.len(),
        },
        resolutions,
        detection,
        block_stats,
        recovery,
    }
}

/// Seed-capture cadence for parallel replay: aim for ~4 spans per worker so
/// the span pipeline stays busy, floored so tiny runs don't drown in
/// restore overhead. The cadence shapes wall-clock only — seed capture is
/// pure reads, so the recording is byte-identical regardless.
fn span_seed_cadence(cfg: &PipelineConfig) -> u64 {
    let workers = cfg.parallel_spans.max(1) as u64;
    (cfg.duration_insns / (workers * 4)).max(15_000)
}

/// Pool size for the alarm-replay phase: 1 unless parallel alarm replay is
/// on, else the configured size (0 = the host's available parallelism),
/// never more than there are cases.
fn ar_worker_count(cfg: &PipelineConfig, cases: usize) -> usize {
    if !cfg.parallel_alarm_replay || cases <= 1 {
        return 1;
    }
    let configured = if cfg.ar_workers == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        cfg.ar_workers
    };
    configured.clamp(1, cases)
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn summarize(verdict: &Verdict) -> VerdictSummary {
    match verdict {
        Verdict::FalsePositive(kind) => VerdictSummary::FalsePositive {
            class: match kind {
                rnr_replay::FalsePositiveKind::MatchedEvict => "matched-evict".to_string(),
                rnr_replay::FalsePositiveKind::ImperfectNesting { .. } => "imperfect-nesting".to_string(),
                rnr_replay::FalsePositiveKind::HardwareCapacity => "hardware-capacity".to_string(),
                rnr_replay::FalsePositiveKind::CoarseBounds => "coarse-bounds".to_string(),
                rnr_replay::FalsePositiveKind::EvictedRegion => "evicted-region".to_string(),
                rnr_replay::FalsePositiveKind::StaleFrame => "stale-frame".to_string(),
            },
        },
        Verdict::RopAttack(report) => VerdictSummary::RopAttack {
            vulnerable: report.vulnerable_symbol.clone(),
            first_gadget: report.actual_target,
            chain_len: report.gadget_chain.len(),
            tid: report.tid.0,
        },
        Verdict::HeapOverflow(report) => VerdictSummary::MemoryViolation {
            class: "heap-overflow".to_string(),
            addr: report.addr,
            region: report.region,
            tid: report.tid.0,
        },
        Verdict::UseAfterReturn(report) => VerdictSummary::MemoryViolation {
            class: "use-after-return".to_string(),
            addr: report.addr,
            region: report.region,
            tid: report.tid.0,
        },
    }
}

fn detection_window(
    cfg: &PipelineConfig,
    rec: &RecordOutcome,
    resolutions: &[AlarmResolution],
) -> Option<DetectionWindow> {
    let first_attack = resolutions.iter().find(|r| r.verdict.is_attack())?;
    // The CR runs concurrently with recording; its lag at the alarm is
    // measured directly — its own clock position when it consumed the alarm
    // record, minus the recording's clock when it logged it.
    let cr_lag = first_attack.cr_cycle.saturating_sub(first_attack.at_cycle);
    let window_cycles = cr_lag + first_attack.ar_cycles;
    let log_rate = rec.log.total_bytes() as f64 / rec.cycles.max(1) as f64;
    let interval = cfg.checkpoint_interval_secs.map(|s| (s * VIRTUAL_HZ as f64) as u64).unwrap_or(VIRTUAL_HZ);
    Some(DetectionWindow {
        alarm_at_cycle: first_attack.at_cycle,
        cr_lag_cycles: cr_lag,
        window_cycles,
        window_secs: window_cycles as f64 / VIRTUAL_HZ as f64,
        log_bytes_in_window: (log_rate * window_cycles as f64) as u64,
        checkpoints_needed: window_cycles.div_ceil(interval.max(1)) + 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnr_attacks::mount_kernel_rop;
    use rnr_workloads::{Workload, WorkloadParams};

    #[test]
    fn benign_pipeline_verifies_and_clears_alarms() {
        let spec = Workload::Mysql.spec(false);
        let cfg = PipelineConfig { duration_insns: 250_000, ..PipelineConfig::default() };
        let report = Pipeline::new(spec, cfg).run().unwrap();
        assert!(report.replay.verified);
        assert_eq!(report.attacks_confirmed(), 0);
        assert_eq!(report.record.priv_flag, 0);
        assert!(report.detection.is_none());
        // The JSON report round-trips through serde.
        let json = report.to_json();
        assert!(json.contains("\"workload\""));
    }

    #[test]
    fn attack_pipeline_confirms_rop_and_measures_window() {
        let (spec, plan) = mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).unwrap();
        let cfg = PipelineConfig {
            duration_insns: 900_000,
            checkpoint_interval_secs: Some(0.125),
            ..PipelineConfig::default()
        };
        let report = Pipeline::new(spec, cfg).run().unwrap();
        assert!(report.attacks_confirmed() >= 1, "{:?}", report.replay);
        let attack = report.resolutions.iter().find(|r| r.verdict.is_attack()).unwrap();
        match &attack.summary {
            VerdictSummary::RopAttack { vulnerable, first_gadget, .. } => {
                assert_eq!(vulnerable.as_deref(), Some("proc_msg"));
                assert_eq!(*first_gadget, plan.g1);
            }
            other => panic!("unexpected {other:?}"),
        }
        let window = report.detection.expect("attack implies a detection window");
        assert!(window.window_cycles > 0);
        assert!(window.checkpoints_needed >= 2);
        // The recorded run escalated privilege (continue policy)...
        assert_eq!(report.record.priv_flag, 0x1337);
    }

    #[test]
    fn pipeline_error_display() {
        let e = PipelineError::VerificationFailed;
        assert!(e.to_string().contains("diverged"));
    }
}
