//! The evaluated system configuration (the paper's Table 2, mapped onto the
//! simulator).

use rnr_machine::CostModel;
use rnr_ras::RasConfig;
use rnr_replay::VIRTUAL_HZ;

/// One row of the configuration table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ConfigRow {
    /// Setting name.
    pub name: &'static str,
    /// The paper's value.
    pub paper: &'static str,
    /// This reproduction's value.
    pub repro: String,
}

/// The full configuration table: the paper's host/guest description next to
/// the simulator parameters that stand in for them.
pub fn rows() -> Vec<ConfigRow> {
    let costs = CostModel::default();
    vec![
        ConfigRow {
            name: "host CPU",
            paper: "Xeon E3, 64-bit, 4 cores, 3.1 GHz",
            repro: format!("cycle-accurate interpreter, VIRTUAL_HZ = {VIRTUAL_HZ} cycles/s"),
        },
        ConfigRow { name: "host memory", paper: "8 GB", repro: "host-native (simulation)".to_string() },
        ConfigRow {
            name: "host OS / hypervisor",
            paper: "Ubuntu, Linux 2.6.38-rc8 + modified KVM/QEMU (Insight)",
            repro: "rnr-hypervisor (device emulation, introspection, recorder)".to_string(),
        },
        ConfigRow {
            name: "guest CPU",
            paper: "uniprocessor",
            repro: "uniprocessor rnr-machine VM".to_string(),
        },
        ConfigRow {
            name: "guest memory",
            paper: "1 GB",
            repro: format!("{} MiB", rnr_machine::MachineConfig::DEFAULT_MEM >> 20),
        },
        ConfigRow {
            name: "guest OS",
            paper: "Debian, Linux 3.19.0",
            repro: "rnr-guest microkernel (Linux-shaped context switch, threads, drivers)".to_string(),
        },
        ConfigRow {
            name: "guest disk",
            paper: "32 GB",
            repro: format!("{} MiB virtual disk", rnr_machine::MachineConfig::DEFAULT_DISK >> 20),
        },
        ConfigRow {
            name: "RAS",
            paper: "48 entries (simulated)",
            repro: format!("{} entries", RasConfig::DEFAULT_CAPACITY),
        },
        ConfigRow { name: "VM exit", paper: "~1,000 cycles", repro: format!("{} cycles", costs.vmexit) },
        ConfigRow {
            name: "RAS save / restore",
            paper: "~200 / ~200 cycles",
            repro: format!("{} / {} cycles", costs.ras_save, costs.ras_restore),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_paper_rows() {
        let rows = rows();
        assert!(rows.len() >= 8);
        assert!(rows.iter().any(|r| r.name == "RAS"));
        assert!(rows.iter().any(|r| r.paper.contains("3.1 GHz")));
    }
}
