//! Deterministic weighted round-robin scheduling of fleet work items.
//!
//! One lane per session holds that session's runnable [`WorkItem`]s in
//! FIFO order; a cyclic cursor with per-lane credits drains the lanes so a
//! session flooding the pool with alarm cases gets at most its weight's
//! share of dispatches per cycle, and quiet sessions are visited every
//! cycle regardless. Per-kind in-flight clamps (span slots, AR slots)
//! implement budget backpressure: a clamped item stays queued — never
//! dropped — and other sessions' items are dispatched around it.
//!
//! The scheduler orders only *wall-clock execution*. Results are written
//! into index-keyed slots and folded in span/case order, so the per-session
//! reports are byte-identical for every dispatch order the scheduler (or
//! any other) could produce — the determinism argument in DESIGN.md §14.

use std::collections::VecDeque;

/// What one unit of pooled fleet work does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkKind {
    /// Record the session's guest to completion (one item per session).
    Record,
    /// Replay one CR span (item `index` = span index).
    CrSpan,
    /// Seam-check, fold, verify, and budget-check the finished spans.
    Finalize,
    /// Resolve one escalated alarm case (item `index` = case index).
    ArCase,
}

/// One schedulable unit: a session, a kind, and the kind's index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WorkItem {
    pub(crate) session: usize,
    pub(crate) kind: WorkKind,
    pub(crate) index: usize,
}

/// Per-session scheduling parameters.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LaneConfig {
    /// Dispatches granted per scheduler cycle (≥ 1).
    pub(crate) weight: u32,
    /// Concurrent `CrSpan` items allowed in flight.
    pub(crate) span_slots: usize,
    /// Concurrent `ArCase` items allowed in flight.
    pub(crate) ar_slots: usize,
}

#[derive(Debug)]
struct Lane {
    config: LaneConfig,
    runnable: VecDeque<WorkItem>,
    inflight_spans: usize,
    inflight_ars: usize,
}

impl Lane {
    fn dispatchable(&self, kind: WorkKind) -> bool {
        match kind {
            WorkKind::Record | WorkKind::Finalize => true,
            WorkKind::CrSpan => self.inflight_spans < self.config.span_slots,
            WorkKind::ArCase => self.inflight_ars < self.config.ar_slots,
        }
    }

    fn note_dispatch(&mut self, kind: WorkKind) {
        match kind {
            WorkKind::CrSpan => self.inflight_spans += 1,
            WorkKind::ArCase => self.inflight_ars += 1,
            _ => {}
        }
    }

    fn note_finish(&mut self, kind: WorkKind) {
        match kind {
            WorkKind::CrSpan => self.inflight_spans -= 1,
            WorkKind::ArCase => self.inflight_ars -= 1,
            _ => {}
        }
    }
}

/// The fleet scheduler. All methods are called under the fleet lock.
#[derive(Debug)]
pub(crate) struct Scheduler {
    lanes: Vec<Lane>,
    cursor: usize,
    credit: u32,
}

impl Scheduler {
    pub(crate) fn new(configs: Vec<LaneConfig>) -> Scheduler {
        let first_weight = configs.first().map_or(1, |c| c.weight.max(1));
        let lanes = configs
            .into_iter()
            .map(|config| Lane { config, runnable: VecDeque::new(), inflight_spans: 0, inflight_ars: 0 })
            .collect();
        Scheduler { lanes, cursor: 0, credit: first_weight }
    }

    /// Appends `item` to its session's lane.
    pub(crate) fn enqueue(&mut self, item: WorkItem) {
        self.lanes[item.session].runnable.push_back(item);
    }

    /// The next dispatchable item under weighted round-robin, or `None`
    /// when every queued item is clamped (or nothing is queued). The chosen
    /// item's in-flight slot is taken; release it with
    /// [`Scheduler::finished`].
    pub(crate) fn next(&mut self) -> Option<WorkItem> {
        let n = self.lanes.len();
        let mut scanned = 0;
        while scanned < n {
            let lane = &mut self.lanes[self.cursor];
            let pos = lane.runnable.iter().position(|it| lane.dispatchable(it.kind));
            if let Some(pos) = pos {
                let item = lane.runnable.remove(pos).expect("position exists");
                lane.note_dispatch(item.kind);
                self.credit = self.credit.saturating_sub(1);
                if self.credit == 0 {
                    self.advance();
                }
                return Some(item);
            }
            self.advance();
            scanned += 1;
        }
        None
    }

    /// Releases the in-flight slot `item` held.
    pub(crate) fn finished(&mut self, item: &WorkItem) {
        self.lanes[item.session].note_finish(item.kind);
    }

    /// Drops everything still queued for session `s` (it terminated).
    pub(crate) fn clear_session(&mut self, s: usize) {
        self.lanes[s].runnable.clear();
    }

    /// Queued (not yet dispatched) items for session `s`.
    pub(crate) fn pending(&self, s: usize) -> usize {
        self.lanes[s].runnable.len()
    }

    fn advance(&mut self) {
        if self.lanes.is_empty() {
            return;
        }
        self.cursor = (self.cursor + 1) % self.lanes.len();
        self.credit = self.lanes[self.cursor].config.weight.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(weight: u32) -> LaneConfig {
        LaneConfig { weight, span_slots: usize::MAX, ar_slots: usize::MAX }
    }

    fn case(session: usize, index: usize) -> WorkItem {
        WorkItem { session, kind: WorkKind::ArCase, index }
    }

    #[test]
    fn equal_weights_alternate_fairly() {
        let mut s = Scheduler::new(vec![lane(1), lane(1)]);
        for i in 0..3 {
            s.enqueue(case(0, i));
            s.enqueue(case(1, i));
        }
        let order: Vec<usize> = std::iter::from_fn(|| s.next()).map(|it| it.session).collect();
        // An alarm storm in session 0 cannot starve session 1: dispatches
        // strictly alternate.
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn weights_bias_dispatch_share() {
        let mut s = Scheduler::new(vec![lane(2), lane(1)]);
        for i in 0..4 {
            s.enqueue(case(0, i));
        }
        for i in 0..2 {
            s.enqueue(case(1, i));
        }
        let order: Vec<usize> = std::iter::from_fn(|| s.next()).map(|it| it.session).collect();
        assert_eq!(order, vec![0, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn clamped_items_stay_queued_and_others_proceed() {
        let mut s =
            Scheduler::new(vec![LaneConfig { weight: 1, span_slots: usize::MAX, ar_slots: 1 }, lane(1)]);
        s.enqueue(case(0, 0));
        s.enqueue(case(0, 1));
        s.enqueue(case(1, 0));
        let first = s.next().unwrap();
        assert_eq!(first, case(0, 0));
        // Session 0's second case is clamped (1 slot, 1 in flight); the
        // scheduler moves on to session 1 instead of stalling.
        let second = s.next().unwrap();
        assert_eq!(second.session, 1);
        assert!(s.next().is_none(), "remaining item is clamped");
        assert_eq!(s.pending(0), 1);
        // Completing the in-flight case releases the clamp.
        s.finished(&first);
        assert_eq!(s.next().unwrap(), case(0, 1));
    }

    #[test]
    fn zero_slots_never_dispatch() {
        // The starvation shape the farm surfaces as `FarmError::Starved`:
        // items are queued, nothing is in flight, and no clamp will ever
        // open. The scheduler reports "nothing dispatchable" rather than
        // busy-looping or dropping the items.
        let mut s = Scheduler::new(vec![LaneConfig { weight: 1, span_slots: 0, ar_slots: 0 }]);
        s.enqueue(WorkItem { session: 0, kind: WorkKind::CrSpan, index: 0 });
        assert!(s.next().is_none());
        assert_eq!(s.pending(0), 1);
    }

    #[test]
    fn clear_session_drops_queued_work() {
        let mut s = Scheduler::new(vec![lane(1), lane(1)]);
        s.enqueue(case(0, 0));
        s.enqueue(case(1, 0));
        s.clear_session(0);
        assert_eq!(s.pending(0), 0);
        assert_eq!(s.next().unwrap().session, 1);
        assert!(s.next().is_none());
    }

    #[test]
    fn record_and_finalize_ignore_slot_clamps() {
        let mut s = Scheduler::new(vec![LaneConfig { weight: 1, span_slots: 0, ar_slots: 0 }]);
        s.enqueue(WorkItem { session: 0, kind: WorkKind::Record, index: 0 });
        s.enqueue(WorkItem { session: 0, kind: WorkKind::Finalize, index: 0 });
        assert_eq!(s.next().unwrap().kind, WorkKind::Record);
        assert_eq!(s.next().unwrap().kind, WorkKind::Finalize);
    }
}
