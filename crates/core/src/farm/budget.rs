//! Per-session resource budgets and their structured exhaustion reports.

use std::fmt;

/// Resource limits one fleet session may consume. Every limit is optional;
/// `None` means unbounded. Budgets are *admission* controls: slot budgets
/// cap how much of the shared pool a session may occupy at once
/// (backpressure — the session just proceeds more slowly), while quota
/// budgets (`log_bytes`, `rewind_quota`, the `ar_slots` case count) fail
/// the session with a structured [`BudgetKind`] when exceeded, without
/// disturbing its siblings.
///
/// Budgets never change a surviving session's report: they only decide
/// whether and how fast a session runs, both of which are wall-clock
/// matters outside `PipelineReport::to_json()`.
#[derive(Debug, Clone, Default)]
pub struct SessionBudget {
    /// Maximum input-log size the recording may produce, in bytes. Checked
    /// when recording completes; an oversized session fails with
    /// [`BudgetKind::LogBytes`] before any replay work is admitted.
    pub log_bytes: Option<u64>,
    /// Maximum alarm cases the session may escalate, and simultaneously the
    /// cap on its concurrently running alarm replayers. A session whose CR
    /// escalates more cases than this fails with [`BudgetKind::ArSlots`].
    pub ar_slots: Option<usize>,
    /// Cap on the session's concurrently running CR span workers. Zero
    /// admits no replay work at all: the session fails with
    /// [`BudgetKind::SpanSlots`] instead of stalling silently.
    pub span_slots: Option<usize>,
    /// Maximum CR rewinds the session's recovery machinery may perform.
    /// Checked after span replay; a session that needed more fails with
    /// [`BudgetKind::Rewinds`] (its recovery was drowning the pool).
    pub rewind_quota: Option<u64>,
}

impl SessionBudget {
    /// An unbounded budget (every limit `None`).
    pub fn unlimited() -> SessionBudget {
        SessionBudget::default()
    }
}

/// Which budget a session exhausted, with the observed and permitted
/// amounts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetKind {
    /// The recording's input log outgrew [`SessionBudget::log_bytes`].
    LogBytes {
        /// Bytes the recording produced.
        used: u64,
        /// The configured limit.
        max: u64,
    },
    /// The CR escalated more alarm cases than [`SessionBudget::ar_slots`].
    ArSlots {
        /// Cases the CR escalated.
        needed: usize,
        /// The configured limit.
        max: usize,
    },
    /// [`SessionBudget::span_slots`] admits no span workers.
    SpanSlots {
        /// The configured limit.
        max: usize,
    },
    /// CR recovery rewound more than [`SessionBudget::rewind_quota`] allows.
    Rewinds {
        /// Rewinds recovery performed.
        used: u64,
        /// The configured limit.
        max: u64,
    },
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::LogBytes { used, max } => {
                write!(f, "log-byte budget (recorded {used} bytes, limit {max})")
            }
            BudgetKind::ArSlots { needed, max } => {
                write!(f, "alarm-replay slot budget (escalated {needed} cases, limit {max})")
            }
            BudgetKind::SpanSlots { max } => {
                write!(f, "span slot budget (limit {max} admits no replay workers)")
            }
            BudgetKind::Rewinds { used, max } => {
                write!(f, "rewind quota (recovery rewound {used} times, limit {max})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_kinds_display_amounts() {
        let cases = [
            (BudgetKind::LogBytes { used: 9, max: 5 }, "log-byte"),
            (BudgetKind::ArSlots { needed: 3, max: 1 }, "alarm-replay"),
            (BudgetKind::SpanSlots { max: 0 }, "span slot"),
            (BudgetKind::Rewinds { used: 2, max: 0 }, "rewind quota"),
        ];
        for (kind, needle) in cases {
            let text = kind.to_string();
            assert!(text.contains(needle), "{text}");
        }
    }
}
